package dialite

import (
	"repro/internal/analyze"
)

// Analysis helpers (stage 3), re-exported from the analytics engine.

// Agg enumerates group-by aggregate functions.
type Agg = analyze.Agg

// The supported aggregates.
const (
	AggCount = analyze.Count
	AggSum   = analyze.Sum
	AggAvg   = analyze.Avg
	AggMin   = analyze.Min
	AggMax   = analyze.Max
)

// ColumnStats summarizes one column numerically.
type ColumnStats = analyze.Stats

// Extreme is one end of Extremes.
type Extreme = analyze.Extreme

// Pearson computes the Pearson correlation between two columns over
// pairwise-complete, numerically-coercible rows.
func Pearson(t *Table, colA, colB int) (r float64, n int, err error) {
	return analyze.Pearson(t, colA, colB)
}

// GroupBy groups rows by keyCol and aggregates valCol.
func GroupBy(t *Table, keyCol, valCol int, agg Agg) (*Table, error) {
	return analyze.GroupBy(t, keyCol, valCol, agg)
}

// Extremes finds the labels with the minimum and maximum value — "Boston
// is the city with the lowest vaccination rate and Toronto has the
// highest" (Example 3).
func Extremes(t *Table, labelCol, valCol int) (min, max Extreme, err error) {
	return analyze.ExtremesBy(t, labelCol, valCol)
}

// Stats computes numeric summary statistics for one column.
func Stats(t *Table, col int) (ColumnStats, error) {
	return analyze.ColumnStats(t, col)
}

// Profile summarizes every column of a table (non-null, numeric and
// distinct counts, null fraction) — the per-stage validation view the
// demo shows users.
func Profile(t *Table) *Table { return analyze.Profile(t) }

// Coerce interprets a cell numerically, understanding open-data spellings
// like "63%", "1.4M" and "1,234".
func Coerce(v Value) (float64, bool) { return analyze.Coerce(v) }

// CorrelationPair is one scored column pair from TopCorrelations.
type CorrelationPair = analyze.CorrelationPair

// TopCorrelations ranks all numeric column pairs of an integrated table by
// correlation strength — the automated version of Example 3's exploration.
func TopCorrelations(t *Table, k int) ([]CorrelationPair, error) {
	return analyze.TopCorrelations(t, k)
}

// CorrelationMatrix renders pairwise Pearson correlations of the numeric
// columns as a table.
func CorrelationMatrix(t *Table) (*Table, error) { return analyze.CorrelationMatrix(t) }
