// bench_test.go exposes one testing.B benchmark per reproduced artifact of
// the paper (F-rows: Figures 1-8 and Example 3) and per scaling experiment
// (X-rows), matching the per-experiment index in DESIGN.md. Run:
//
//	go test -bench=. -benchmem .
package dialite_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	dialite "repro"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/experiments"
	"repro/internal/fd"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/minhash"
	"repro/internal/paperdata"
	"repro/internal/persist"
	"repro/internal/schemamatch"
	"repro/internal/sketch"
	"repro/internal/synth"
	"repro/internal/table"
)

// benchPipeline builds the demo pipeline once per benchmark.
func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig1Pipeline measures the full discover+integrate pipeline of
// Fig. 1 on the demo lake.
func BenchmarkFig1Pipeline(b *testing.B) {
	p := benchPipeline(b)
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(context.Background(), core.RunRequest{Query: q, QueryColumn: city}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Discovery measures the Example 1 discovery step (SANTOS +
// LSH Ensemble over the prebuilt indexes).
func BenchmarkFig2Discovery(b *testing.B) {
	p := benchPipeline(b)
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Discover(context.Background(), core.DiscoverRequest{Query: q, QueryColumn: city}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Integration measures ALITE (holistic matching + FD) over
// the Fig. 2 integration set.
func BenchmarkFig3Integration(b *testing.B) {
	p := benchPipeline(b)
	set := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: set}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample3Analytics measures the correlation analytics of
// Example 3 over the Fig. 3 table.
func BenchmarkExample3Analytics(b *testing.B) {
	fig3 := paperdata.Fig3Expected()
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	death, _ := fig3.ColumnIndex(paperdata.ColDeathRate)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dialite.Pearson(fig3, vacc, death); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4UserDiscovery measures a user-defined similarity discoverer
// scanning the demo lake.
func BenchmarkFig4UserDiscovery(b *testing.B) {
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		b.Fatal(err)
	}
	q := paperdata.T1()
	sim := dialite.SimilarityFunc{
		FuncName: "bench-sim",
		Sim: func(query, cand *table.Table) float64 {
			return float64(query.NumRows() * cand.NumRows())
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Discover(context.Background(), l, q, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5QueryGen measures prompt-based query-table generation.
func BenchmarkFig5QueryGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dialite.GenerateQueryTable("COVID-19 cases", 5, 5, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6OuterJoinOp measures the user-registrable outer-join
// operator over the Fig. 7 set.
func BenchmarkFig6OuterJoinOp(b *testing.B) {
	matcher := schemamatch.Holistic{Knowledge: kb.Demo()}
	set := paperdata.VaccineSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := integrate.Apply(context.Background(), integrate.FullOuterJoin{}, set, matcher, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8aOuterJoin measures the Fig. 8(a) outer-join chain.
func BenchmarkFig8aOuterJoin(b *testing.B) {
	benchOperator(b, integrate.FullOuterJoin{})
}

// BenchmarkFig8bFD measures the Fig. 8(b) Full Disjunction.
func BenchmarkFig8bFD(b *testing.B) {
	benchOperator(b, integrate.ALITEFD{})
}

func benchOperator(b *testing.B, op integrate.Operator) {
	b.Helper()
	schema, sets, err := integrate.Prepare(paperdata.VaccineSet(), schemamatch.Holistic{Knowledge: kb.Demo()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Run(context.Background(), schema, sets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8cEROuterJoin measures ER over the outer-join result.
func BenchmarkFig8cEROuterJoin(b *testing.B) {
	benchER(b, paperdata.Fig8aExpected())
}

// BenchmarkFig8dERFD measures ER over the FD result.
func BenchmarkFig8dERFD(b *testing.B) {
	benchER(b, paperdata.Fig8bExpected())
}

func benchER(b *testing.B, t *table.Table) {
	b.Helper()
	know := kb.Demo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := er.Resolve(context.Background(), t, er.Options{Knowledge: know}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX1Completeness compares FD and outer-join integration cost on
// fragmented entities (the completeness experiment's workload).
func BenchmarkX1Completeness(b *testing.B) {
	fs := synth.Fragments(synth.FragmentOptions{Seed: 5, Entities: 40})
	for _, op := range []integrate.Operator{integrate.ALITEFD{}, integrate.FullOuterJoin{}} {
		b.Run(op.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.IntegrateFragments(fs, op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX2FDScaling compares the FD algorithms across input sizes.
func BenchmarkX2FDScaling(b *testing.B) {
	small, err := experiments.FragmentInput(7, 7)
	if err != nil {
		b.Fatal(err)
	}
	big, err := experiments.FragmentInput(150, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("Naive/n=%d", len(small.Tuples)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.Naive(small); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("ALITE/n=%d", len(small.Tuples)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.ALITE(small)
		}
	})
	b.Run(fmt.Sprintf("ALITE/n=%d", len(big.Tuples)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.ALITE(big)
		}
	})
	b.Run(fmt.Sprintf("Parallel/n=%d", len(big.Tuples)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.Parallel(big, 0)
		}
	})
}

// BenchmarkLakeBuild measures offline lake preprocessing (SANTOS
// annotation, domain extraction, LSH Ensemble and JOSIE index builds) on
// the 640-domain synthetic lake — the cost DIALITE pays per lake, amortized
// across every query.
func BenchmarkLakeBuild(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLakeBuildStages reports the per-stage breakdown of lake
// preprocessing (KB compile, domain extraction, SANTOS annotation, LSH
// Ensemble, JOSIE) as custom metrics, so "which stage dominates the build"
// is a measured claim tracked across PRs.
func BenchmarkLakeBuildStages(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	var sum lake.BuildStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()})
		if err != nil {
			b.Fatal(err)
		}
		st := l.Stats()
		sum.KBPrep += st.KBPrep
		sum.DomainExtraction += st.DomainExtraction
		sum.Santos += st.Santos
		sum.LSH += st.LSH
		sum.Josie += st.Josie
	}
	n := float64(b.N)
	b.ReportMetric(float64(sum.KBPrep.Nanoseconds())/n, "kbprep-ns/op")
	b.ReportMetric(float64(sum.DomainExtraction.Nanoseconds())/n, "extract-ns/op")
	b.ReportMetric(float64(sum.Santos.Nanoseconds())/n, "santos-ns/op")
	b.ReportMetric(float64(sum.LSH.Nanoseconds())/n, "lsh-ns/op")
	b.ReportMetric(float64(sum.Josie.Nanoseconds())/n, "josie-ns/op")
}

// mutationFixture builds the 360-table X3 lake plus one extra table (a
// renamed clone of a family partition, so its domains overlap the lake) for
// the incremental-maintenance benchmarks.
func mutationFixture(b *testing.B) (*lake.Lake, *table.Table) {
	b.Helper()
	sl := experiments.JoinSearchLake(17)
	l, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		b.Fatal(err)
	}
	src := sl.Tables[0]
	extra := table.New("bench_extra", src.Columns...)
	extra.Rows = src.Rows
	return l, extra
}

// BenchmarkLakeAdd measures adding one table to the 360-table lake with
// incremental index maintenance — the serving-path alternative to the full
// rebuild measured by BenchmarkLakeRebuild (and the per-table amortized
// cost of BenchmarkLakeBuild).
func BenchmarkLakeAdd(b *testing.B) {
	l, extra := mutationFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Add(extra); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := l.Remove(extra.Name); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkLakeRemove measures removing one table from the 360-table lake
// (SANTOS eviction, LSH re-shard, JOSIE tombstoning, catalog rebuild).
func BenchmarkLakeRemove(b *testing.B) {
	l, extra := mutationFixture(b)
	if err := l.Add(extra); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Remove(extra.Name); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := l.Add(extra); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkLakeRebuild is the baseline BenchmarkLakeAdd displaces: reaching
// the same 361-table state via a from-scratch lake.New — what adding one
// table cost before the lake was mutable.
func BenchmarkLakeRebuild(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	src := sl.Tables[0]
	extra := table.New("bench_extra", src.Columns...)
	extra.Rows = src.Rows
	all := append(append([]*table.Table(nil), sl.Tables...), extra)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lake.New(all, lake.Options{Knowledge: kb.Demo()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedBuild measures building the same 361-table catalog as a
// lake.Sharded: per-shard private interners and indexes built in parallel,
// no shared-dictionary locks on the build path. Compare ns/op against
// BenchmarkLakeRebuild (the single-lake build of the identical table set).
func BenchmarkShardedBuild(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	src := sl.Tables[0]
	extra := table.New("bench_extra", src.Columns...)
	extra.Rows = src.Rows
	all := append(append([]*table.Table(nil), sl.Tables...), extra)
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lake.NewSharded(all, shards, lake.Options{Knowledge: kb.Demo()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedDiscovery measures the full discovery fan-out — every
// built-in method across every shard, merged to one ranking per method —
// against the 360-table lake, sharded and not. shards=1 is the unsharded
// baseline (same lake.Lake the serve path uses today); the sharded runs
// pay the scatter-gather merge and (for foreign queries) per-shard query
// re-extraction.
func BenchmarkShardedDiscovery(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	q := sl.Tables[0]
	methods := []string{"santos-union", "lsh-join", "josie-join", "syntactic-union"}
	reg := discovery.NewRegistry()
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		var target discovery.Target
		var err error
		if shards == 1 {
			target, err = lake.New(sl.Tables, lake.Options{SynthesizeKB: true})
		} else {
			target, err = lake.NewSharded(sl.Tables, shards, lake.Options{SynthesizeKB: true})
		}
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := discovery.Discover(ctx, reg, target, q, 0, 10, methods); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotLoad measures recovering the 360-table lake through the
// durability layer (persist.Open: read the checksummed snapshot, verify,
// decode, lake.Restore, replay the empty WAL) — the warm-restart path that
// displaces the from-scratch rebuild measured by BenchmarkLakeRebuild.
func BenchmarkSnapshotLoad(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	l, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		b.Fatal(err)
	}
	fsys := persist.NewMemFS()
	st, err := persist.Create("lake", l, persist.Options{FS: fsys})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := persist.Open("lake", persist.Options{FS: fsys})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkKBAnnotate isolates the SANTOS annotation engine: the compiled
// integer-ID vote path (entity codes resolved through the annotation cache,
// flattened vote programs, packed relation keys) against the retained
// string reference that re-normalizes and re-walks the hierarchy per value.
func BenchmarkKBAnnotate(b *testing.B) {
	know := kb.Demo()
	var colVals, subjVals, objVals []string
	for _, city := range kb.DemoCities() {
		colVals = append(colVals, city, city+" x") // known + near-miss unknown
		subjVals = append(subjVals, city)
		objVals = append(objVals, kb.DemoCountryOf(city))
	}
	pairs := make([][2]string, len(subjVals))
	for i := range subjVals {
		pairs[i] = [2]string{subjVals[i], objVals[i]}
	}
	ck := know.Compiled()
	ann := kb.NewAnnotator(ck, nil)
	s := ck.NewScratch()
	colCodes := ann.CodeStrings(colVals, nil)
	subjCodes := ann.CodeStrings(subjVals, nil)
	objCodes := ann.CodeStrings(objVals, nil)
	b.Run("ColumnCompiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ann.CodeStrings(colVals, colCodes) // steady state: cache hits
			ck.AnnotateColumnCodes(colCodes, s)
		}
	})
	b.Run("ColumnString", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			know.AnnotateColumn(colVals)
		}
	})
	b.Run("PairCompiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ann.CodeStrings(subjVals, subjCodes)
			ann.CodeStrings(objVals, objCodes)
			ck.AnnotatePairCodes(subjCodes, objCodes, s)
		}
	})
	b.Run("PairString", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			know.AnnotateColumnPair(pairs)
		}
	})
}

// BenchmarkSignKernel measures the signing kernels behind the sketch
// engines on one 512-value domain at the default sketch size: the batched
// MinHash kernel against the retained scalar reference (the bit-identical
// pair pinned by TestSignBatchedMatchesScalar), and the KMV bottom-k
// signer, whose speed is the reason the second engine exists.
func BenchmarkSignKernel(b *testing.B) {
	const k, n = 128, 512
	rng := rand.New(rand.NewSource(9))
	fps := make([]uint64, n)
	for i := range fps {
		fps[i] = rng.Uint64()
	}
	fam := minhash.NewFamily(k, 1)
	sig := make(minhash.Signature, k)
	b.Run("MinHashBatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fam.SignFingerprintsInto(fps, sig)
		}
	})
	b.Run("MinHashScalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fam.SignScalarInto(fps, sig)
		}
	})
	b.Run("KMV", func(b *testing.B) {
		builder, err := sketch.New(sketch.Params{Engine: sketch.KMV, Size: k, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var s sketch.Sketch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s = builder.SignInto(fps, s[:0])
		}
	})
}

// BenchmarkX7SketchEngines compares the sketch engines end-to-end on the
// X3 lake: ns/op is a full index build over the lake's 640 extracted
// domains, and the f1 metric is micro-averaged discovery accuracy against
// the exact containment scan on the X3 key-column queries — the
// speed/accuracy trade the pluggable engine interface exists to expose.
func BenchmarkX7SketchEngines(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	l, err := lake.New(sl.Tables, lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	domains := l.Domains()
	var queries [][]string
	for _, qn := range []string{"family0_part0", "family7_part2", "family21_part1", "family33_part4"} {
		q, ok := l.Get(qn)
		if !ok {
			b.Fatalf("query table %s missing", qn)
		}
		vals, err := lake.QueryDomain(q, sl.Truth.KeyColumn[qn])
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, vals)
	}
	const threshold = 0.5
	truth := make([]map[string]bool, len(queries))
	for i, q := range queries {
		truth[i] = benchKeySet(lshensemble.ExactQuery(domains, q, threshold, 0))
	}
	for _, eng := range []sketch.Engine{sketch.MinHash, sketch.KMV} {
		b.Run(string(eng), func(b *testing.B) {
			opts := lshensemble.Options{Engine: eng}
			var ix *lshensemble.Index
			for i := 0; i < b.N; i++ {
				ix = lshensemble.Build(domains, opts)
			}
			b.StopTimer()
			tp, fp, fn := 0, 0, 0
			for i, q := range queries {
				got := benchKeySet(ix.Query(q, threshold, 0))
				for k := range got {
					if truth[i][k] {
						tp++
					} else {
						fp++
					}
				}
				for k := range truth[i] {
					if !got[k] {
						fn++
					}
				}
			}
			p := float64(tp) / float64(max(tp+fp, 1))
			r := float64(tp) / float64(max(tp+fn, 1))
			f1 := 0.0
			if p+r > 0 {
				f1 = 2 * p * r / (p + r)
			}
			b.ReportMetric(f1, "f1")
			b.StartTimer()
		})
	}
}

func benchKeySet(rs []lshensemble.Result) map[string]bool {
	out := make(map[string]bool, len(rs))
	for _, r := range rs {
		out[r.Domain.Key()] = true
	}
	return out
}

// BenchmarkX3JoinSearch compares LSH Ensemble queries against the exact
// containment scan on a 640-domain lake.
func BenchmarkX3JoinSearch(b *testing.B) {
	sl := experiments.JoinSearchLake(17)
	l, err := lake.New(sl.Tables, lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q, _ := l.Get("family0_part0")
	domain, err := lake.QueryDomain(q, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("LSHEnsemble", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.Join().Query(domain, 0.5, 0)
		}
	})
	b.Run("LSHEnsembleCached", func(b *testing.B) {
		// The lake-domain fast path: pre-interned token IDs and cached
		// MinHash fingerprints, no per-query re-tokenization or hashing.
		d := l.DomainFor("family0_part0", 0)
		if d == nil {
			b.Fatal("no cached domain for query column")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Join().QueryDomain(d, 0.5, 0)
		}
	})
	b.Run("JOSIE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.Josie().TopK(domain, 10)
		}
	})
	b.Run("JOSIECached", func(b *testing.B) {
		d := l.DomainFor("family0_part0", 0)
		if d == nil {
			b.Fatal("no cached domain for query column")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Josie().TopKIDs(d.IDs, 10)
		}
	})
	b.Run("ExactScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lshensemble.ExactQuery(l.Domains(), domain, 0.5, 0)
		}
	})
}

// BenchmarkX4UnionSearch compares SANTOS and the syntactic baseline on the
// disjoint-value semantic lake.
func BenchmarkX4UnionSearch(b *testing.B) {
	sl := experiments.UnionSearchLake(23)
	l, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		b.Fatal(err)
	}
	q, _ := l.Get("sem_union0")
	b.Run("SANTOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Santos().Query(q, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Syntactic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (discovery.SyntacticUnion{}).Discover(context.Background(), l, q, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkX5SchemaMatch compares the holistic matcher against the header
// baseline on a corrupted-header integration set.
func BenchmarkX5SchemaMatch(b *testing.B) {
	_, set := experiments.AlignmentLake(0.9, 31)
	syn := kb.Synthesize(set, kb.SynthesizeOptions{})
	b.Run("Holistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.Holistic{Knowledge: syn}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HeaderBaseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.HeaderMatcher{}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkX6ERQuality measures ER over FD output versus outer-join output
// on fragmented entities.
func BenchmarkX6ERQuality(b *testing.B) {
	fs := synth.Fragments(synth.FragmentOptions{Seed: 41, Entities: 25})
	fdTab, err := experiments.IntegrateFragments(fs, integrate.ALITEFD{})
	if err != nil {
		b.Fatal(err)
	}
	ojTab, err := experiments.IntegrateFragments(fs, integrate.FullOuterJoin{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("OverFD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := er.Resolve(context.Background(), fdTab, er.Options{Knowledge: fs.Knowledge}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OverOuterJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := er.Resolve(context.Background(), ojTab, er.Options{Knowledge: fs.Knowledge}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ablationChainInput builds m entities fragmented across three relations
// that share only a selective key — the regime the (position,value)
// candidate index is built for (each key bucket holds a handful of
// tuples, while exhaustive pairing scans everything).
func ablationChainInput(m int) fd.Input {
	schema := []string{"K", "A", "B", "C"}
	in := fd.Input{Schema: schema}
	pn := table.ProducedNull()
	for i := 0; i < m; i++ {
		key := table.StringValue(fmt.Sprintf("k%05d", i))
		rows := [][]table.Value{
			{key, table.IntValue(int64(i)), pn, pn},
			{key, pn, table.IntValue(int64(i + 1000000)), pn},
			{key, pn, pn, table.IntValue(int64(i + 2000000))},
		}
		for r, row := range rows {
			in.Tuples = append(in.Tuples, fd.Tuple{
				Values: row,
				Prov:   []string{fmt.Sprintf("t%d_%d", r, i)},
			})
		}
	}
	return in
}

// BenchmarkAblationFDCandidateIndex isolates ALITE's (position,value)
// candidate index — the design choice that makes the closure practical —
// by comparing against the identical closure with exhaustive pair
// scanning, on a selective-key workload.
func BenchmarkAblationFDCandidateIndex(b *testing.B) {
	in := ablationChainInput(400)
	b.Run("Indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.ALITE(in)
		}
	})
	b.Run("Unindexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.ALITEUnindexed(in)
		}
	})
}

// BenchmarkAblationKBEmbeddings isolates the knowledge-base semantic-type
// features of the column embeddings (the fastText substitute): matching
// the paper's tables with and without them.
func BenchmarkAblationKBEmbeddings(b *testing.B) {
	set := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	know := kb.Demo()
	b.Run("WithKB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.Holistic{Knowledge: know}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WithoutKB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.Holistic{}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAutoCut compares the fixed-threshold holistic matcher
// against the silhouette auto-cut variant on the paper's tables.
func BenchmarkAblationAutoCut(b *testing.B) {
	set := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	know := kb.Demo()
	b.Run("FixedThreshold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.Holistic{Knowledge: know}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SilhouetteAutoCut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (schemamatch.AutoHolistic{Knowledge: know}).Align(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationERMatchers compares the rule matcher against the
// learned logistic matcher on the Fig. 8(b) resolution.
func BenchmarkAblationERMatchers(b *testing.B) {
	know := kb.Demo()
	model, err := er.TrainLogistic(er.TrainingPairsFromFigures(know), er.TrainOptions{Knowledge: know})
	if err != nil {
		b.Fatal(err)
	}
	in := paperdata.Fig8bExpected()
	b.Run("Rule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := er.Resolve(context.Background(), in, er.Options{Knowledge: know}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Learned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := er.ResolveLearned(context.Background(), in, model, know, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalFD compares adding one late-arriving table to a
// maintained closure against recomputing the Full Disjunction from
// scratch, on the selective-key workload.
func BenchmarkIncrementalFD(b *testing.B) {
	in := ablationChainInput(400)
	split := len(in.Tuples) - 3*40 // the last 40 entities arrive late
	b.Run("Recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.ALITE(in)
		}
	})
	b.Run("IncrementalAdd", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			inc := fd.NewIncremental(in.Schema, in.Tuples[:split])
			b.StartTimer()
			inc.Add(in.Tuples[split:])
			_ = inc.Result()
			b.StopTimer()
		}
	})
}

// BenchmarkCancellationLatency measures the serving-grade cancellation
// bound: the time from cancelling a context to the FD closure returning,
// mid-flight on the X2 n=399 ALITE workload. The acceptance criterion is
// 50ms (in practice the checkpoint granularity keeps it far below); the
// interesting number is the custom cancel-ns/op metric, not ns/op, which is
// dominated by the deliberate mid-closure sleep.
func BenchmarkCancellationLatency(b *testing.B) {
	in, err := experiments.FragmentInput(150, 11)
	if err != nil {
		b.Fatal(err)
	}
	uncancelled, err := fd.ALITECtx(context.Background(), in)
	if err != nil || len(uncancelled) == 0 {
		b.Fatalf("workload broken: %d tuples, %v", len(uncancelled), err)
	}
	var total time.Duration
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		// The worker re-runs the closure until the cancel lands mid-run, so
		// the measured latency is always checkpoint latency — sleeping until
		// "mid-closure" would be at the mercy of the scheduler's timer
		// resolution instead.
		go func() {
			for {
				if _, err := fd.ALITECtx(ctx, in); err != nil {
					errc <- err
					return
				}
			}
		}()
		time.Sleep(time.Millisecond)
		t0 := time.Now()
		cancel()
		<-errc
		total += time.Since(t0)
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "cancel-ns/op")
}
