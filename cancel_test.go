// cancel_test.go pins the serving-grade cancellation contract end to end:
// cancelling a request mid-FD (the X2 n=399 ALITE workload) or mid-
// discovery returns ctx.Err() promptly — the acceptance bound is 50ms from
// cancel to return — and leaves no goroutine behind.
package dialite_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/experiments"
	"repro/internal/fd"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/testutil"
)

// cancelLatency runs fn under a context cancelled roughly midway through
// the uncancelled runtime and reports (latency from cancel to return, err).
func cancelLatency(t *testing.T, delay time.Duration, fn func(ctx context.Context) error) (time.Duration, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- fn(ctx) }()
	time.Sleep(delay)
	t0 := time.Now()
	cancel()
	err := <-errc
	return time.Since(t0), err
}

func TestCancelMidFDPrompt(t *testing.T) {
	// The X2 benchmark workload: 399 outer-union tuples whose closure runs
	// for several milliseconds — long enough that a 1ms-delayed cancel
	// reliably lands mid-closure on any machine.
	in, err := experiments.FragmentInput(150, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tuples) != 399 {
		t.Fatalf("workload has %d tuples, want 399", len(in.Tuples))
	}
	before := runtime.NumGoroutine()
	for _, alg := range []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"ALITE", func(ctx context.Context) error { _, err := fd.ALITECtx(ctx, in); return err }},
		{"Parallel", func(ctx context.Context) error { _, err := fd.ParallelCtx(ctx, in, 4); return err }},
	} {
		t.Run(alg.name, func(t *testing.T) {
			lat, err := cancelLatency(t, time.Millisecond, alg.run)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want Canceled (or nil when the closure won the race)", err)
			}
			if err == nil {
				t.Skip("closure finished before the cancel landed (fast machine); covered by the pre-cancel tests")
			}
			if lat > 50*time.Millisecond {
				t.Errorf("cancel-to-return latency %v exceeds the 50ms acceptance bound", lat)
			}
		})
	}
	testutil.WaitGoroutinesSettle(t, before)
}

func TestCancelMidPipelineStages(t *testing.T) {
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	if _, err := p.Discover(ctx, core.DiscoverRequest{Query: paperdata.T1(), QueryColumn: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("Discover err = %v", err)
	}
	if _, err := p.Integrate(ctx, core.IntegrateRequest{Tables: paperdata.VaccineSet()}); !errors.Is(err, context.Canceled) {
		t.Errorf("Integrate err = %v", err)
	}
	if _, err := p.Run(ctx, core.RunRequest{Query: paperdata.T1(), QueryColumn: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v", err)
	}
	if _, _, err := p.Correlate(ctx, paperdata.T3(), paperdata.ColCases, paperdata.ColDeathRate); !errors.Is(err, context.Canceled) {
		t.Errorf("Correlate err = %v", err)
	}
	if _, err := p.ResolveEntities(ctx, paperdata.Fig8bExpected(), er.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ResolveEntities err = %v", err)
	}
	testutil.WaitGoroutinesSettle(t, before)
}
