// Command dialite is the command-line face of the DIALITE pipeline over a
// CSV data lake.
//
// Usage:
//
//	dialite serve     -lake DIR [-persist DIR] [-addr :8080] [-timeout 30s] [-max-inflight N] [-max-queue-wait 1s] [-max-body-bytes N] [-sketch minhash|kmv]
//	dialite serve     -coordinator -shard-addrs HOST:PORT,... [-persist DIR] [-addr :8080] [-sketch minhash|kmv]
//	dialite serve     -lake DIR -shard-of I/N [-persist DIR] [-addr :8080]
//	dialite shardctl  -shard-addrs HOST:PORT,... | -persist DIR
//	dialite snapshot  -persist DIR [-lake DIR] [-sketch minhash|kmv]
//	dialite loadtest  -url http://HOST:PORT [-qps N] [-duration 2s] [-saturate]
//	dialite discover  -lake DIR -query Q.csv -col N [-methods m1,m2] [-k K] [-grow DIR] [-drop t1,t2] [-sketch minhash|kmv]
//	dialite integrate -lake DIR -tables a,b,c [-op alite-fd|outer-join|inner-join|union] [-prov]
//	dialite pipeline  -lake DIR -query Q.csv -col N [-op OP] [-prov] [-sketch minhash|kmv]
//	dialite analyze   -table T.csv -corr colA,colB | -groupby key,val,agg | -profile
//	dialite resolve   -table T.csv
//	dialite generate  -prompt "covid cases" [-rows 5] [-cols 5] [-seed 1] [-out Q.csv]
//
// The demo knowledge base (world cities, vaccines, agencies and their
// aliases) is always loaded; -synth additionally synthesizes a knowledge
// base from the lake itself.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/loadharness"
	"repro/internal/persist"
	"repro/internal/serve"
	"repro/internal/sketch"
	"repro/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels the context; every pipeline stage is cancellation-
	// aware, so an interrupted discover/integrate aborts at its next
	// checkpoint instead of running the full computation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "discover":
		err = cmdDiscover(ctx, os.Args[2:])
	case "integrate":
		err = cmdIntegrate(ctx, os.Args[2:])
	case "pipeline":
		err = cmdPipeline(ctx, os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "resolve":
		err = cmdResolve(ctx, os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "shardctl":
		err = cmdShardctl(ctx, os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(ctx, os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dialite: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dialite:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dialite — Discover, Align and Integrate Open Data Tables

commands:
  serve      serve the pipeline over HTTP (JSON endpoints, mutable lake);
             -coordinator scatter-gathers over remote shard servers,
             -shard-of I/N serves one shard's slice of a CSV directory
  shardctl   inspect a cluster: placement manifest + per-shard health probe
  snapshot   compact a durable lake directory: fold the WAL into a snapshot
  loadtest   drive a running server with load and report QPS + p50/p99
  discover   find unionable/joinable tables for a query table
  integrate  align and integrate a set of lake tables
  pipeline   discover then integrate, end to end
  analyze    aggregation, correlation and profiling over a table
  resolve    entity resolution over a table
  generate   fabricate a query table from a prompt (GPT-3 substitute)`)
}

// newPipeline builds the pipeline over -lake with the demo KB. engine is
// the -sketch flag value: the sketch engine the containment index signs
// with (empty means MinHash; lake.New rejects unknown names).
func newPipeline(lakeDir string, synthKB bool, engine string, shards int) (*core.Pipeline, error) {
	if lakeDir == "" {
		return nil, fmt.Errorf("-lake directory is required")
	}
	cfg := core.Config{Knowledge: kb.Demo(), SynthesizeKB: synthKB, Shards: shards}
	cfg.LakeOptions.LSH.Engine = sketch.Engine(engine)
	return core.FromDir(lakeDir, cfg)
}

// sketchFlag registers the -sketch engine flag on commands that build a
// lake from CSVs. Warm restarts ignore it: a persisted lake's engine is
// recorded in its snapshot.
func sketchFlag(fs *flag.FlagSet) *string {
	return fs.String("sketch", "", `sketch engine for the containment index: "minhash" (default) or "kmv"`)
}

// mutateLake applies the -grow / -drop lake mutations: growDir's CSVs are
// added to the already-built lake incrementally (no index rebuild), and the
// drop list is removed — the CLI face of lake.Lake.Add / Remove.
func mutateLake(p *core.Pipeline, growDir, drop string) error {
	if growDir != "" {
		tables, err := table.LoadDir(growDir)
		if err != nil {
			return err
		}
		if err := p.AddTables(tables...); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "added %d tables from %s (lake now %d tables)\n", len(tables), growDir, p.Lake().Size())
	}
	if drop != "" {
		names := strings.Split(drop, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		if err := p.RemoveTables(names...); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "removed %d tables (lake now %d tables)\n", len(names), p.Lake().Size())
	}
	return nil
}

// cmdServe stands the pipeline up as an HTTP service: JSON endpoints for
// discover/integrate/pipeline/correlate/resolve and lake add/remove, with
// per-request timeouts and graceful shutdown on SIGINT/SIGTERM (the
// process-level signal context).
//
// With -persist the lake is durable: a new directory is created from the
// -lake CSVs (snapshot + write-ahead log), an existing one is recovered —
// the listener comes up immediately and answers 503 + Retry-After until
// replay finishes, and shutdown drains in-flight mutations and syncs the
// log before the process exits.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "directory of lake CSVs")
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request timeout (must be positive)")
	synthKB := fs.Bool("synth", false, "synthesize a KB from the lake")
	persistDir := fs.String("persist", "", "durable lake directory (snapshot + WAL); created from -lake when new, recovered otherwise")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing compute requests (0 picks 4x GOMAXPROCS; negative disables the cap)")
	maxQueueWait := fs.Duration("max-queue-wait", 0, "max time an at-capacity request may queue before shedding with 429 (0 picks the default; negative disables queueing)")
	maxBodyBytes := fs.Int64("max-body-bytes", 0, "max request body size in bytes (0 picks the 32 MiB default)")
	shards := fs.Int("shards", 0, "shard the lake across N in-process shard lakes with scatter-gather discovery (0 or 1 = unsharded; for durable sharding use -coordinator)")
	coordinator := fs.Bool("coordinator", false, "serve as a cluster coordinator: scatter-gather over the -shard-addrs shard servers instead of a local lake")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard server base URLs, in shard order (coordinator mode)")
	shardOf := fs.String("shard-of", "", `serve shard I of an N-shard cluster as "I/N": load only the -lake tables that lake.ShardIndex routes to shard I`)
	engine := sketchFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateServeFlags(*addr, *timeout, *maxBodyBytes, *lakeDir, *persistDir, *shards, *coordinator, *shardAddrs, *shardOf); err != nil {
		return err
	}
	cfg := serve.Config{Timeout: *timeout, MaxBodyBytes: *maxBodyBytes, MaxInflight: *maxInflight, MaxQueueWait: *maxQueueWait, RequestedSketchEngine: *engine}
	if *coordinator {
		return serveCoordinator(ctx, cfg, *addr, *shardAddrs, *persistDir, *engine, *timeout)
	}
	// buildLocal builds the lake-backed pipeline, honoring -shard-of: a
	// shard server loads only its slice of the CSV directory (possibly
	// empty — a valid shard holds no tables until mutations route to it).
	buildLocal := func() (*core.Pipeline, error) {
		if *shardOf != "" {
			return newShardPipeline(*lakeDir, *synthKB, *engine, *shardOf)
		}
		return newPipeline(*lakeDir, *synthKB, *engine, *shards)
	}
	if *persistDir == "" {
		p, err := buildLocal()
		if err != nil {
			return err
		}
		if *shards > 1 {
			fmt.Fprintf(os.Stderr, "dialite: serving %d-table lake from %s on %s across %d shards (request timeout %s)\n",
				p.Lake().Size(), *lakeDir, *addr, *shards, *timeout)
		} else {
			fmt.Fprintf(os.Stderr, "dialite: serving %d-table lake from %s on %s (request timeout %s)\n",
				p.Lake().Size(), *lakeDir, *addr, *timeout)
		}
		return serve.New(p, cfg).ListenAndServe(ctx, *addr)
	}
	if persist.Exists(*persistDir, persist.Options{}) {
		// Warm restart: the lake lives in the snapshot + WAL, not in -lake
		// (validateServeFlags already refused a conflicting -lake).
		// Listen immediately and recover in the background; endpoints answer
		// 503 + Retry-After until the replayed lake is attached.
		if *engine != "" {
			fmt.Fprintf(os.Stderr, "dialite: -sketch %s ignored: %s exists and its snapshot records the engine\n", *engine, *persistDir)
		}
		s := serve.NewWarming(cfg)
		ctx, fail := context.WithCancelCause(ctx)
		defer fail(nil)
		go func() {
			st, err := persist.Open(*persistDir, persist.Options{})
			if err != nil {
				fail(fmt.Errorf("recovering %s: %w", *persistDir, err))
				return
			}
			fmt.Fprintf(os.Stderr, "dialite: recovered %d-table lake from %s (seq %d)\n",
				st.Lake().Size(), *persistDir, st.Status().Seq)
			s.Attach(core.FromLake(st.Lake()), st)
		}()
		fmt.Fprintf(os.Stderr, "dialite: serving on %s while recovering lake from %s (request timeout %s)\n",
			*addr, *persistDir, *timeout)
		err := s.ListenAndServe(ctx, *addr)
		if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
			return cause
		}
		return err
	}
	// Cold start: build from the -lake CSVs, then make the directory the
	// lake's durable home before taking traffic. validateServeFlags refused
	// -shards with -persist, so the catalog here is always a concrete
	// single lake — what the persistence layer snapshots. A -shard-of
	// server persists exactly its slice: each shard process owns its own
	// durable store, which is what cluster mode's manifest coordinates.
	p, err := buildLocal()
	if err != nil {
		return err
	}
	single, ok := p.Lake().(*lake.Lake)
	if !ok {
		return fmt.Errorf("persisting a sharded lake is not supported (got %T)", p.Lake())
	}
	st, err := persist.Create(*persistDir, single, persist.Options{})
	if err != nil {
		return err
	}
	s := serve.NewWarming(cfg)
	s.Attach(p, st)
	fmt.Fprintf(os.Stderr, "dialite: serving %d-table lake from %s on %s, persisted in %s (request timeout %s)\n",
		p.Lake().Size(), *lakeDir, *addr, *persistDir, *timeout)
	return s.ListenAndServe(ctx, *addr)
}

// validateServeFlags rejects broken serve flags up front with a one-line
// error — a bad listen address or a nonsensical timeout should fail before
// the lake is built, not as a late bind error or a silently applied
// default.
func validateServeFlags(addr string, timeout time.Duration, maxBodyBytes int64, lakeDir, persistDir string, shards int, coordinator bool, shardAddrs, shardOf string) error {
	if timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %s (the per-request deadline is what load shedding budgets against)", timeout)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if _, err := net.ResolveTCPAddr("tcp", addr); err != nil {
		return fmt.Errorf("-addr %q is not a usable listen address: %v", addr, err)
	}
	if maxBodyBytes < 0 {
		return fmt.Errorf("-max-body-bytes must be >= 0, got %d", maxBodyBytes)
	}
	if coordinator {
		// Coordinator mode: the shards are the lake. -persist is the
		// manifest directory, not a lake store.
		if shardAddrs == "" {
			return fmt.Errorf("-coordinator requires -shard-addrs (comma-separated shard server URLs, in shard order)")
		}
		if lakeDir != "" {
			return fmt.Errorf("-coordinator conflicts with -lake: a coordinator holds no tables; point the shard servers at their CSV slices instead")
		}
		if shards > 1 {
			return fmt.Errorf("-coordinator conflicts with -shards: the shard count is len(-shard-addrs)")
		}
		if shardOf != "" {
			return fmt.Errorf("-coordinator conflicts with -shard-of: a process is either the coordinator or a shard, not both")
		}
		return nil
	}
	if shardAddrs != "" {
		return fmt.Errorf("-shard-addrs requires -coordinator")
	}
	if shardOf != "" {
		if _, _, err := parseShardOf(shardOf); err != nil {
			return err
		}
		if shards > 1 {
			return fmt.Errorf("-shard-of conflicts with -shards: a shard server is a single lake")
		}
		if lakeDir == "" && !persist.Exists(persistDir, persist.Options{}) {
			return fmt.Errorf("-shard-of needs -lake to slice (warm restarts recover the slice from -persist and may drop -shard-of)")
		}
	}
	if shards > 1 && persistDir != "" {
		return fmt.Errorf("-shards %d conflicts with -persist %s: the durability layer snapshots a single lake; for durable sharding run one `serve -shard-of` per shard plus `serve -coordinator -persist` (see SHARDING.md)", shards, persistDir)
	}
	if lakeDir == "" && persistDir == "" {
		return fmt.Errorf("one of -lake (CSV directory) or -persist (durable lake directory) is required")
	}
	if lakeDir != "" && persistDir != "" && persist.Exists(persistDir, persist.Options{}) {
		return fmt.Errorf("-lake %s conflicts with existing -persist %s: the durable directory already records the lake; drop -lake or point -persist at a new directory", lakeDir, persistDir)
	}
	return nil
}

// parseShardOf parses "I/N" into (shard, count).
func parseShardOf(s string) (shard, count int, err error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`-shard-of wants "I/N" (e.g. 0/3), got %q`, s)
	}
	shard, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	count, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || count < 1 || shard < 0 || shard >= count {
		return 0, 0, fmt.Errorf(`-shard-of wants "I/N" with 0 <= I < N, got %q`, s)
	}
	return shard, count, nil
}

// newShardPipeline builds a single-lake pipeline over shard I's slice of
// the -lake directory: exactly the tables lake.ShardIndex(name, N) routes
// to shard I, so N such servers partition the directory with no overlap
// and no gaps. An empty slice is valid — the shard fills via routed
// mutations.
func newShardPipeline(lakeDir string, synthKB bool, engine, shardOf string) (*core.Pipeline, error) {
	if lakeDir == "" {
		return nil, fmt.Errorf("-lake directory is required")
	}
	shard, count, err := parseShardOf(shardOf)
	if err != nil {
		return nil, err
	}
	all, err := table.LoadDir(lakeDir)
	if err != nil {
		return nil, err
	}
	mine := make([]*table.Table, 0, len(all)/count+1)
	for _, t := range all {
		if lake.ShardIndex(t.Name, count) == shard {
			mine = append(mine, t)
		}
	}
	fmt.Fprintf(os.Stderr, "dialite: shard %d/%d holds %d of %d tables from %s\n", shard, count, len(mine), len(all), lakeDir)
	cfg := core.Config{Knowledge: kb.Demo(), SynthesizeKB: synthKB}
	cfg.LakeOptions.LSH.Engine = sketch.Engine(engine)
	return core.New(mine, cfg)
}

// serveCoordinator stands up cluster mode's front door: a serve.Server
// whose catalog is a cluster.Coordinator scatter-gathering over the shard
// servers. With -persist the placement manifest lives there — first boot
// pins the shard count and (probed or flagged) sketch engine, later boots
// refuse a drifted shard count or engine before taking any traffic.
func serveCoordinator(ctx context.Context, cfg serve.Config, addr, shardAddrs, persistDir, engine string, timeout time.Duration) error {
	addrs := splitCommaList(shardAddrs)
	if len(addrs) == 0 {
		return fmt.Errorf("-shard-addrs is empty after trimming")
	}
	eng := sketch.Engine(engine)
	if persistDir != "" && eng == "" {
		// An existing manifest supplies the engine so cluster.New can
		// cross-check the shards against it rather than trusting a probe.
		if m, err := cluster.LoadManifest(persistDir); err == nil {
			eng = m.Engine
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	coord, err := cluster.New(cluster.Config{
		Addrs:       addrs,
		Knowledge:   kb.Demo(),
		Engine:      eng,
		CallTimeout: timeout,
	})
	if err != nil {
		return err
	}
	if persistDir != "" {
		if _, err := cluster.ReconcileManifest(persistDir, coord.Addrs(), coord.SketchEngine()); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dialite: coordinating %d shards (%s) on %s, engine %s (request timeout %s)\n",
		coord.NumShards(), strings.Join(coord.Addrs(), ", "), addr, coord.SketchEngine(), timeout)
	return serve.New(core.FromCatalog(coord), cfg).ListenAndServe(ctx, addr)
}

// cmdShardctl inspects a cluster without serving: print the placement
// manifest (if -persist names one) and probe each shard's health and size.
// Exit status is nonzero when any probed shard is unreachable, so scripts
// can gate on a fully-up cluster.
func cmdShardctl(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("shardctl", flag.ExitOnError)
	persistDir := fs.String("persist", "", "coordinator persist directory holding cluster.json")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard server URLs to probe (default: the manifest's recorded addresses)")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-shard probe deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var manifest *cluster.Manifest
	if *persistDir != "" {
		m, err := cluster.LoadManifest(*persistDir)
		if err != nil {
			return err
		}
		manifest = m
	}
	addrs := splitCommaList(*shardAddrs)
	if len(addrs) == 0 && manifest != nil {
		addrs = manifest.Addrs
	}
	if len(addrs) == 0 && manifest == nil {
		return fmt.Errorf("nothing to inspect: give -persist (manifest) and/or -shard-addrs (probe targets)")
	}
	if manifest != nil && len(addrs) != 0 && len(addrs) != manifest.Shards {
		fmt.Fprintf(os.Stderr, "shardctl: warning: probing %d addresses but the manifest pins %d shards\n", len(addrs), manifest.Shards)
	}
	out := struct {
		Manifest *cluster.Manifest   `json:"manifest,omitempty"`
		Shards   []serve.ShardHealth `json:"shards,omitempty"`
	}{Manifest: manifest}
	down := 0
	if len(addrs) > 0 {
		health, err := cluster.ProbeShards(ctx, addrs, *probeTimeout)
		if err != nil {
			return err
		}
		out.Shards = health
		for _, h := range health {
			if h.Status == "down" {
				down++
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if down > 0 {
		return fmt.Errorf("%d of %d shards down", down, len(out.Shards))
	}
	return nil
}

// fetchShardFanout asks the target for its per-shard fan-out counters.
// Empty (and silent) against a non-coordinator server — the scope=shards
// metrics view answers null outside cluster mode.
func fetchShardFanout(ctx context.Context, baseURL string) []serve.ShardMetrics {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(baseURL, "/")+"/metrics?format=json&scope=shards", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var out []serve.ShardMetrics
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil
	}
	return out
}

// splitCommaList splits a comma-separated flag value, trimming whitespace
// and dropping empties.
func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// cmdLoadtest drives a running dialite server (see internal/loadharness):
// a fixed-rate or closed-loop run by default, or -saturate to step the
// rate upward until the server stops keeping up. The measurement is
// printed as JSON on stdout. The target may be a cluster coordinator — the
// API surface is identical — in which case the result also captures the
// coordinator's per-shard fan-out counters, so a bench trajectory over
// cluster mode records where the fan-out spent its time.
func cmdLoadtest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of a running dialite serve")
	qps := fs.Float64("qps", 100, "paced arrival rate; 0 drives closed-loop instead")
	workers := fs.Int("workers", 0, "concurrency (0 picks the mode default)")
	duration := fs.Duration("duration", 2*time.Second, "drive time (per step with -saturate)")
	method := fs.String("method", http.MethodGet, "request method")
	path := fs.String("path", "/v1/lake", "request path")
	body := fs.String("body", "", "inline JSON request body for POST endpoints")
	saturate := fs.Bool("saturate", false, "step the rate upward to find max sustainable QPS")
	startQPS := fs.Float64("start-qps", 50, "first step rate with -saturate")
	steps := fs.Int("steps", 8, "max steps with -saturate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %s", *duration)
	}
	if *qps < 0 {
		return fmt.Errorf("-qps must be >= 0, got %g", *qps)
	}
	wl := []loadharness.Request{{Method: *method, Path: *path, Body: []byte(*body)}}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if *saturate {
		res, err := loadharness.Saturate(ctx, nil, *url, wl, loadharness.SaturateOptions{
			StartQPS: *startQPS, StepDuration: *duration, MaxSteps: *steps,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dialite: max sustainable %.0f qps (p50 %s, p99 %s) over %d steps\n",
			res.MaxQPS, res.Best.P50, res.Best.P99, len(res.Steps))
		return enc.Encode(res)
	}
	res, err := loadharness.Run(ctx, nil, *url, loadharness.Options{
		QPS: *qps, Workers: *workers, Duration: *duration, Requests: wl,
	})
	if err != nil {
		return err
	}
	out := struct {
		loadharness.Result
		ShardFanout []serve.ShardMetrics `json:"shard_fanout,omitempty"`
	}{Result: res, ShardFanout: fetchShardFanout(ctx, *url)}
	if err := enc.Encode(out); err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests errored", res.Errors, res.Sent) // scripts gate on a clean run
	}
	return nil
}

// cmdSnapshot maintains a durable lake directory offline. An existing
// directory is recovered and its WAL folded into a fresh snapshot
// generation, so the next serve -persist starts without replay; a new
// directory is created from the -lake CSVs.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	persistDir := fs.String("persist", "", "durable lake directory")
	lakeDir := fs.String("lake", "", "CSVs to build from when the directory is new")
	synthKB := fs.Bool("synth", false, "synthesize a KB from the lake (new directories only)")
	engine := sketchFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *persistDir == "" {
		return fmt.Errorf("-persist directory is required")
	}
	if !persist.Exists(*persistDir, persist.Options{}) {
		p, err := newPipeline(*lakeDir, *synthKB, *engine, 0)
		if err != nil {
			return err
		}
		single, ok := p.Lake().(*lake.Lake)
		if !ok {
			return fmt.Errorf("persisting a sharded lake is not supported (got %T)", p.Lake())
		}
		st, err := persist.Create(*persistDir, single, persist.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("created %s: %d tables, snapshot seq %d\n", *persistDir, st.Lake().Size(), st.Status().SnapshotSeq)
		return st.Close()
	}
	st, err := persist.Open(*persistDir, persist.Options{})
	if err != nil {
		return err
	}
	before := st.Status()
	if err := st.Snapshot(); err != nil {
		st.Close()
		return err
	}
	after := st.Status()
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d tables, %d WAL records folded into snapshot seq %d\n",
		*persistDir, st.Lake().Size(), before.WALRecords, after.SnapshotSeq)
	return nil
}

func cmdDiscover(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "directory of lake CSVs")
	queryPath := fs.String("query", "", "query table CSV")
	col := fs.Int("col", 0, "intent/query column index")
	methods := fs.String("methods", "", "comma-separated discovery methods (default santos-union,lsh-join)")
	k := fs.Int("k", 10, "results per method")
	synthKB := fs.Bool("synth", false, "synthesize a KB from the lake")
	growDir := fs.String("grow", "", "directory of CSVs to add to the lake incrementally after the build")
	drop := fs.String("drop", "", "comma-separated table names to remove from the lake before querying")
	engine := sketchFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(*lakeDir, *synthKB, *engine, 0)
	if err != nil {
		return err
	}
	if err := mutateLake(p, *growDir, *drop); err != nil {
		return err
	}
	q, err := table.ReadCSVFile(*queryPath)
	if err != nil {
		return err
	}
	var ms []string
	if *methods != "" {
		ms = strings.Split(*methods, ",")
	}
	resp, err := p.Discover(ctx, core.DiscoverRequest{Query: q, QueryColumn: *col, Methods: ms, K: *k})
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		ms = core.DefaultMethods
	}
	for _, method := range ms {
		fmt.Printf("-- %s --\n", method)
		for i, r := range resp.PerMethod[method] {
			fmt.Printf("%2d. %-30s score=%.3f\n", i+1, r.Table.Name, r.Score)
		}
	}
	names := make([]string, len(resp.IntegrationSet))
	for i, t := range resp.IntegrationSet {
		names[i] = t.Name
	}
	fmt.Printf("integration set: %s\n", strings.Join(names, ", "))
	return nil
}

func cmdIntegrate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("integrate", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "directory of lake CSVs")
	tables := fs.String("tables", "", "comma-separated lake table names")
	op := fs.String("op", "alite-fd", "integration operator")
	prov := fs.Bool("prov", false, "include the TIDs provenance column")
	out := fs.String("out", "", "write the integrated table to this CSV path")
	synthKB := fs.Bool("synth", false, "synthesize a KB from the lake")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(*lakeDir, *synthKB, "", 0)
	if err != nil {
		return err
	}
	if *tables == "" {
		return fmt.Errorf("-tables is required")
	}
	var set []*table.Table
	for _, name := range strings.Split(*tables, ",") {
		t, ok := p.Lake().Get(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("table %q not in lake", name)
		}
		set = append(set, t)
	}
	resp, err := p.Integrate(ctx, core.IntegrateRequest{Tables: set, Operator: *op, WithProvenance: *prov})
	if err != nil {
		return err
	}
	fmt.Println(resp.Table)
	if *out != "" {
		return resp.Table.WriteCSVFile(*out)
	}
	return nil
}

func cmdPipeline(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "directory of lake CSVs")
	queryPath := fs.String("query", "", "query table CSV")
	col := fs.Int("col", 0, "intent/query column index")
	op := fs.String("op", "alite-fd", "integration operator")
	prov := fs.Bool("prov", false, "include the TIDs provenance column")
	synthKB := fs.Bool("synth", false, "synthesize a KB from the lake")
	out := fs.String("out", "", "write the integrated table to this CSV path")
	engine := sketchFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(*lakeDir, *synthKB, *engine, 0)
	if err != nil {
		return err
	}
	q, err := table.ReadCSVFile(*queryPath)
	if err != nil {
		return err
	}
	res, err := p.Run(ctx, core.RunRequest{Query: q, QueryColumn: *col, Operator: *op, WithProvenance: *prov})
	if err != nil {
		return err
	}
	names := make([]string, len(res.Discovery.IntegrationSet))
	for i, t := range res.Discovery.IntegrationSet {
		names[i] = t.Name
	}
	fmt.Printf("integration set: %s\n\n", strings.Join(names, ", "))
	fmt.Println(res.Integration.Table)
	if *out != "" {
		return res.Integration.Table.WriteCSVFile(*out)
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	tablePath := fs.String("table", "", "table CSV to analyze")
	corr := fs.String("corr", "", "colA,colB: Pearson correlation by header name")
	groupby := fs.String("groupby", "", "key,val,agg: group-by aggregate (agg: count,sum,avg,min,max)")
	profile := fs.Bool("profile", false, "print per-column profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := table.ReadCSVFile(*tablePath)
	if err != nil {
		return err
	}
	if *profile {
		fmt.Println(analyze.Profile(t))
	}
	if *corr != "" {
		parts := strings.SplitN(*corr, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-corr wants colA,colB")
		}
		a, err := columnByName(t, parts[0])
		if err != nil {
			return err
		}
		b, err := columnByName(t, parts[1])
		if err != nil {
			return err
		}
		r, n, err := analyze.Pearson(t, a, b)
		if err != nil {
			return err
		}
		fmt.Printf("pearson(%s, %s) = %.4f over %d pairs\n", parts[0], parts[1], r, n)
	}
	if *groupby != "" {
		parts := strings.Split(*groupby, ",")
		if len(parts) != 3 {
			return fmt.Errorf("-groupby wants key,val,agg")
		}
		key, err := columnByName(t, parts[0])
		if err != nil {
			return err
		}
		val, err := columnByName(t, parts[1])
		if err != nil {
			return err
		}
		agg, err := parseAgg(parts[2])
		if err != nil {
			return err
		}
		out, err := analyze.GroupBy(t, key, val, agg)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}

func cmdResolve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("resolve", flag.ExitOnError)
	tablePath := fs.String("table", "", "table CSV to resolve")
	threshold := fs.Float64("threshold", 0, "match threshold (default 0.6)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := table.ReadCSVFile(*tablePath)
	if err != nil {
		return err
	}
	res, err := er.Resolve(ctx, t, er.Options{Knowledge: kb.Demo(), Threshold: *threshold})
	if err != nil {
		return err
	}
	fmt.Printf("%d rows -> %d entities\n\n", t.NumRows(), len(res.Clusters))
	fmt.Println(res.Resolved)
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	prompt := fs.String("prompt", "", "free-text prompt (picks a domain template)")
	rows := fs.Int("rows", 5, "rows to generate")
	cols := fs.Int("cols", 5, "columns to generate")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "write the generated table to this CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := core.New(nil, core.Config{})
	if err != nil {
		return err
	}
	q, err := p.GenerateQueryTable(*prompt, *rows, *cols, *seed)
	if err != nil {
		return err
	}
	fmt.Println(q)
	if *out != "" {
		return q.WriteCSVFile(*out)
	}
	return nil
}

func columnByName(t *table.Table, name string) (int, error) {
	name = strings.TrimSpace(name)
	if i, ok := t.ColumnIndex(name); ok {
		return i, nil
	}
	if i, err := strconv.Atoi(name); err == nil && i >= 0 && i < t.NumCols() {
		return i, nil
	}
	return 0, fmt.Errorf("no column %q in %q (have %v)", name, t.Name, t.Columns)
}

func parseAgg(s string) (analyze.Agg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "count":
		return analyze.Count, nil
	case "sum":
		return analyze.Sum, nil
	case "avg":
		return analyze.Avg, nil
	case "min":
		return analyze.Min, nil
	case "max":
		return analyze.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}
