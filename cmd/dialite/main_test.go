package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analyze"
	"repro/internal/paperdata"
	"repro/internal/persist"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/testutil"
)

// writeDemoLake writes T2 and T3 as a CSV lake and T1 as the query table,
// returning (lakeDir, queryPath).
func writeDemoLake(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	lakeDir := filepath.Join(dir, "lake")
	for _, tb := range paperdata.CovidLake() {
		if err := tb.WriteCSVFile(filepath.Join(lakeDir, tb.Name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	queryPath := filepath.Join(dir, "T1.csv")
	if err := paperdata.T1().WriteCSVFile(queryPath); err != nil {
		t.Fatal(err)
	}
	return lakeDir, queryPath
}

func TestCmdDiscover(t *testing.T) {
	lakeDir, queryPath := writeDemoLake(t)
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1"}); err != nil {
		t.Fatal(err)
	}
	// Explicit methods.
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1", "-methods", "lsh-join", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	// Missing lake errors.
	if err := cmdDiscover(context.Background(), []string{"-query", queryPath}); err == nil {
		t.Error("missing -lake must error")
	}
	// Missing query file errors.
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", filepath.Join(lakeDir, "nope.csv")}); err == nil {
		t.Error("missing query must error")
	}
}

func TestCmdIntegrate(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := cmdIntegrate(context.Background(), []string{"-lake", lakeDir, "-tables", "T2,T3", "-prov", "-out", out}); err != nil {
		t.Fatal(err)
	}
	written, err := table.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if written.NumRows() == 0 || written.Columns[0] != "TIDs" {
		t.Errorf("written table wrong: %v", written.Columns)
	}
	if err := cmdIntegrate(context.Background(), []string{"-lake", lakeDir, "-tables", "T2,missing"}); err == nil {
		t.Error("unknown table must error")
	}
	if err := cmdIntegrate(context.Background(), []string{"-lake", lakeDir}); err == nil {
		t.Error("missing -tables must error")
	}
	if err := cmdIntegrate(context.Background(), []string{"-lake", lakeDir, "-tables", "T2,T3", "-op", "bogus"}); err == nil {
		t.Error("unknown operator must error")
	}
}

func TestCmdPipeline(t *testing.T) {
	lakeDir, queryPath := writeDemoLake(t)
	out := filepath.Join(t.TempDir(), "integrated.csv")
	if err := cmdPipeline(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1", "-out", out}); err != nil {
		t.Fatal(err)
	}
	written, err := table.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if written.NumRows() != 7 {
		t.Errorf("pipeline output rows = %d, want 7 (Fig. 3)", written.NumRows())
	}
}

func TestCmdAnalyze(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.csv")
	if err := paperdata.Fig3Expected().WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	err := cmdAnalyze([]string{
		"-table", path,
		"-profile",
		"-corr", paperdata.ColVaccRate + "," + paperdata.ColDeathRate,
		"-groupby", paperdata.ColCountry + "," + paperdata.ColVaccRate + ",avg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-table", path, "-corr", "only-one"}); err == nil {
		t.Error("malformed -corr must error")
	}
	if err := cmdAnalyze([]string{"-table", path, "-groupby", "a,b"}); err == nil {
		t.Error("malformed -groupby must error")
	}
	if err := cmdAnalyze([]string{"-table", path, "-corr", "nope,also-nope"}); err == nil {
		t.Error("unknown column must error")
	}
}

func TestCmdResolve(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fd.csv")
	if err := paperdata.Fig8bExpected().WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	if err := cmdResolve(context.Background(), []string{"-table", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdResolve(context.Background(), []string{"-table", filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("missing table must error")
	}
}

func TestCmdGenerate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "q.csv")
	if err := cmdGenerate([]string{"-prompt", "covid cases", "-rows", "4", "-cols", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	q, err := table.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 4 || q.NumCols() != 3 {
		t.Errorf("generated %dx%d", q.NumRows(), q.NumCols())
	}
	if err := cmdGenerate([]string{"-rows", "0"}); err == nil {
		t.Error("zero rows must error")
	}
}

func TestColumnByName(t *testing.T) {
	tb := paperdata.T1()
	if i, err := columnByName(tb, "City"); err != nil || i != 1 {
		t.Errorf("by name = %d, %v", i, err)
	}
	if i, err := columnByName(tb, " 2 "); err != nil || i != 2 {
		t.Errorf("by index = %d, %v", i, err)
	}
	if _, err := columnByName(tb, "nope"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := columnByName(tb, "99"); err == nil {
		t.Error("out-of-range index must error")
	}
}

func TestParseAgg(t *testing.T) {
	for s, want := range map[string]analyze.Agg{
		"count": analyze.Count, "SUM": analyze.Sum, " avg ": analyze.Avg,
		"min": analyze.Min, "max": analyze.Max,
	} {
		got, err := parseAgg(s)
		if err != nil || got != want {
			t.Errorf("parseAgg(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseAgg("median"); err == nil {
		t.Error("unknown aggregate must error")
	}
}

func TestCmdDiscoverGrowDrop(t *testing.T) {
	lakeDir, queryPath := writeDemoLake(t)
	// A second directory to grow the lake from, containing a T1-overlapping
	// table, plus dropping T3 — the incremental-mutation CLI path.
	growDir := filepath.Join(t.TempDir(), "grow")
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	extra.MustAddRow(table.StringValue("Manchester"), table.IntValue(20))
	if err := extra.WriteCSVFile(filepath.Join(growDir, "T9.csv")); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1", "-grow", growDir, "-drop", "T3"}); err != nil {
		t.Fatal(err)
	}
	// Errors propagate: growing with a duplicate name, dropping an unknown.
	dupDir := filepath.Join(t.TempDir(), "dup")
	if err := paperdata.T2().WriteCSVFile(filepath.Join(dupDir, "T2.csv")); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1", "-grow", dupDir}); err == nil {
		t.Error("growing a duplicate table must error")
	}
	if err := cmdDiscover(context.Background(), []string{"-lake", lakeDir, "-query", queryPath, "-col", "1", "-drop", "nope"}); err == nil {
		t.Error("dropping an unknown table must error")
	}
}

func TestCmdServeValidation(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	if err := cmdServe(context.Background(), []string{}); err == nil {
		t.Error("missing -lake and -persist must error")
	}
	if err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-timeout", "-5s"}); err == nil {
		t.Error("negative -timeout must error")
	}
	if err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-timeout", "0"}); err == nil {
		t.Error("zero -timeout must error")
	}
	if err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-addr", "not-an-address:nope"}); err == nil {
		t.Error("bad -addr must error")
	}
	if err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-max-body-bytes", "-1"}); err == nil {
		t.Error("negative -max-body-bytes must error")
	}
	// -lake alongside an existing durable directory is a conflict: the
	// durable directory already records the lake and -lake would be
	// silently ignored.
	persistDir := filepath.Join(t.TempDir(), "durable")
	if err := cmdSnapshot([]string{"-persist", persistDir, "-lake", lakeDir}); err != nil {
		t.Fatal(err)
	}
	err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-persist", persistDir})
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("-lake with existing -persist = %v, want conflict error", err)
	}
	// Sharding flags: negative counts are nonsense, and sharded lakes are
	// in-memory only — the durability layer snapshots a single lake.
	if err := cmdServe(context.Background(), []string{"-lake", lakeDir, "-shards", "-1"}); err == nil {
		t.Error("negative -shards must error")
	}
	freshPersist := filepath.Join(t.TempDir(), "fresh")
	err = cmdServe(context.Background(), []string{"-lake", lakeDir, "-persist", freshPersist, "-shards", "2"})
	if err == nil || !strings.Contains(err.Error(), "-shards") || !strings.Contains(err.Error(), "-persist") {
		t.Errorf("-shards with -persist = %v, want conflict error naming both flags", err)
	}
	// 0 and 1 are legal no-op values; exercised end to end below.
}

// TestCmdServeSharded boots `dialite serve -shards 2` end to end and
// checks the catalog and a discover round trip answer exactly as the
// unsharded server does.
func TestCmdServeSharded(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	base, stop := startServe(t, []string{"-lake", lakeDir, "-shards", "2"})
	resp, err := http.Get(base + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	var lakeInfo struct {
		Size   int      `json:"size"`
		Tables []string `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lakeInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lakeInfo.Size != 2 || strings.Join(lakeInfo.Tables, ",") != "T2,T3" {
		t.Errorf("sharded /v1/lake = %+v", lakeInfo)
	}
	if err := stop(); err != nil {
		t.Fatalf("serve exited with %v", err)
	}
}

// TestCmdLoadtest drives a live server through the loadtest subcommand:
// a short fixed-rate run against /v1/lake must come back clean, and flag
// validation must refuse nonsense up front.
func TestCmdLoadtest(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	base, _ := startServe(t, []string{"-lake", lakeDir})
	if err := cmdLoadtest(context.Background(), []string{"-url", base, "-qps", "50", "-duration", "300ms"}); err != nil {
		t.Fatalf("loadtest against live server: %v", err)
	}
	if err := cmdLoadtest(context.Background(), []string{"-url", base, "-duration", "0"}); err == nil {
		t.Error("zero -duration must error")
	}
	if err := cmdLoadtest(context.Background(), []string{"-url", base, "-qps", "-3"}); err == nil {
		t.Error("negative -qps must error")
	}
	// A dead target is errors, not a hang: the command reports the failure.
	if err := cmdLoadtest(context.Background(), []string{"-url", "http://127.0.0.1:1", "-qps", "10", "-duration", "200ms"}); err == nil {
		t.Error("unreachable target must error")
	}
}

// TestCmdServeRoundTrip boots the HTTP server on an ephemeral port, drives
// one discover request through it, and shuts it down via context
// cancellation (the SIGINT path).
func TestCmdServeRoundTrip(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := testutil.FreeLocalAddr(t)
	done := make(chan error, 1)
	go func() { done <- cmdServe(ctx, []string{"-lake", lakeDir, "-addr", addr}) }()
	// Wait for the server to come up.
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get("http://" + addr + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "T2") {
		t.Errorf("lake listing = %s", body)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// startServe launches cmdServe with args in a goroutine and waits until
// /healthz answers, returning the shutdown function (cancel + wait) and
// the base URL.
func startServe(t *testing.T, args []string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addr := testutil.FreeLocalAddr(t)
	done := make(chan error, 1)
	go func() { done <- cmdServe(ctx, append([]string{"-addr", addr}, args...)) }()
	var err error
	for i := 0; i < 200; i++ {
		var resp *http.Response
		if resp, err = http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		cancel()
		t.Fatalf("server never came up: %v", err)
	}
	var once sync.Once
	var stopErr error
	stop := func() error {
		once.Do(func() {
			cancel()
			select {
			case stopErr = <-done:
			case <-time.After(10 * time.Second):
				stopErr = context.DeadlineExceeded
			}
		})
		return stopErr
	}
	t.Cleanup(func() { stop() })
	return "http://" + addr, stop
}

// TestCmdServePersistLifecycle drives the durable serving story end to end
// on the real filesystem: cold start creates the directory from -lake, a
// mutation over HTTP is logged, a warm restart (no -lake at all) recovers
// it, and the offline snapshot command folds the WAL away.
func TestCmdServePersistLifecycle(t *testing.T) {
	lakeDir, _ := writeDemoLake(t)
	persistDir := filepath.Join(t.TempDir(), "durable")

	// Cold start: -lake + -persist creates the durable directory.
	base, stop := startServe(t, []string{"-lake", lakeDir, "-persist", persistDir})
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	raw, err := json.Marshal(serve.LakeAddRequest{Tables: []serve.TableJSON{serve.EncodeTable(extra)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/lake/add", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("durable add over HTTP = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("cold-start shutdown returned %v", err)
	}

	// Warm restart: no -lake; the directory alone restores lake + mutation,
	// and /healthz carries the persistence counters.
	base, stop = startServe(t, []string{"-persist", persistDir})
	var body []byte
	for i := 0; i < 200; i++ { // the listener is up before replay finishes
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"status":"ok"`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(string(body), `"persistence"`) || !strings.Contains(string(body), `"wal_records":1`) {
		t.Fatalf("healthz after warm restart = %s", body)
	}
	resp, err = http.Get(base + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "T9") {
		t.Fatalf("warm-restarted lake lost the durable add: %s", body)
	}
	if err := stop(); err != nil {
		t.Fatalf("warm shutdown returned %v", err)
	}

	// Offline compaction folds the WAL record into a fresh snapshot
	// generation. The previous generation and the record it may still need
	// are retained (the two-generation fallback), but the newest snapshot
	// now covers every mutation, so recovery replays nothing.
	if err := cmdSnapshot([]string{"-persist", persistDir}); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(persistDir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Status(); got.SnapshotSeq != got.Seq || got.Snapshots != 2 {
		t.Fatalf("status after compaction = %+v", got)
	}
	if _, ok := st.Lake().Get("T9"); !ok {
		t.Fatal("compaction lost the durable add")
	}
}

// TestCmdSnapshotValidation pins the snapshot command's edges: a missing
// -persist flag errors, and a new directory can be seeded from -lake.
func TestCmdSnapshotValidation(t *testing.T) {
	if err := cmdSnapshot([]string{}); err == nil {
		t.Error("missing -persist must error")
	}
	if err := cmdSnapshot([]string{"-persist", filepath.Join(t.TempDir(), "new")}); err == nil {
		t.Error("new directory without -lake must error")
	}
	lakeDir, _ := writeDemoLake(t)
	dir := filepath.Join(t.TempDir(), "seeded")
	if err := cmdSnapshot([]string{"-persist", dir, "-lake", lakeDir}); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Lake().Size() != 2 {
		t.Fatalf("seeded lake size = %d", st.Lake().Size())
	}
}
