// Command lakegen writes a synthetic open-data lake (CSV files plus a
// ground-truth manifest) to disk, for driving the dialite CLI and the
// discovery experiments on data whose unionable/joinable structure is
// known.
//
// Usage:
//
//	lakegen -out DIR [-seed 1] [-families 4] [-parts 4] [-rows 20]
//	        [-joinable 2] [-noise 5] [-corrupt 0.0] [-nulls 0.05]
//
// The manifest (truth.csv) lists, for every table, its family, key column
// and unionable/joinable partners.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/synth"
	"repro/internal/table"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generation seed")
	families := flag.Int("families", 4, "unionable families")
	parts := flag.Int("parts", 4, "partitions per family")
	rows := flag.Int("rows", 20, "rows per table")
	joinable := flag.Int("joinable", 2, "joinable companions per family")
	noise := flag.Int("noise", 5, "off-topic noise tables")
	corrupt := flag.Float64("corrupt", 0, "header corruption probability")
	nulls := flag.Float64("nulls", 0.05, "missing-null rate in measure cells")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "lakegen: -out is required")
		os.Exit(2)
	}
	lake := synth.GenerateLake(synth.LakeOptions{
		Seed:              *seed,
		Families:          *families,
		TablesPerFamily:   *parts,
		RowsPerTable:      *rows,
		JoinablePerFamily: *joinable,
		NoiseTables:       *noise,
		HeaderCorruption:  *corrupt,
		NullRate:          *nulls,
	})
	if err := writeLake(lake, *out); err != nil {
		fmt.Fprintln(os.Stderr, "lakegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d tables and truth.csv to %s\n", len(lake.Tables), *out)
}

func writeLake(lake *synth.Lake, dir string) error {
	for _, t := range lake.Tables {
		if err := t.WriteCSVFile(filepath.Join(dir, t.Name+".csv")); err != nil {
			return err
		}
	}
	manifest := table.New("truth", "table", "family", "key_column", "unionable_with", "joinable_with")
	names := make([]string, 0, len(lake.Tables))
	for _, t := range lake.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		manifest.MustAddRow(
			table.StringValue(name),
			table.IntValue(int64(lake.Truth.FamilyOf[name])),
			table.IntValue(int64(lake.Truth.KeyColumn[name])),
			table.StringValue(strings.Join(lake.Truth.UnionableWith[name], "|")),
			table.StringValue(strings.Join(lake.Truth.JoinableWith[name], "|")),
		)
	}
	return manifest.WriteCSVFile(filepath.Join(dir, "truth.csv"))
}
