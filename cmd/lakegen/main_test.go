package main

import (
	"path/filepath"
	"testing"

	"repro/internal/synth"
	"repro/internal/table"
)

func TestWriteLake(t *testing.T) {
	lake := synth.GenerateLake(synth.LakeOptions{
		Seed: 3, Families: 2, TablesPerFamily: 2, JoinablePerFamily: 1,
		NoiseTables: 1, RowsPerTable: 5,
	})
	dir := t.TempDir()
	if err := writeLake(lake, dir); err != nil {
		t.Fatal(err)
	}
	tables, err := table.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// All lake tables plus the truth manifest.
	if len(tables) != len(lake.Tables)+1 {
		t.Fatalf("wrote %d CSVs, want %d", len(tables), len(lake.Tables)+1)
	}
	truth, err := table.ReadCSVFile(filepath.Join(dir, "truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if truth.NumRows() != len(lake.Tables) {
		t.Errorf("truth rows = %d, want %d", truth.NumRows(), len(lake.Tables))
	}
	if _, ok := truth.ColumnIndex("unionable_with"); !ok {
		t.Errorf("truth manifest columns = %v", truth.Columns)
	}
}
