// Command repro regenerates every figure and worked example of the
// DIALITE paper plus the X-series scaling experiments, printing a
// paper-vs-measured report (the source of EXPERIMENTS.md) and, with
// -tables, the reproduced tables themselves next to the figure numbers.
//
// Usage:
//
//	repro            # run everything, print the report table
//	repro -tables    # additionally print each reproduced table
//	repro -only F3   # run a single experiment by ID
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/experiments"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func main() {
	tables := flag.Bool("tables", false, "print the reproduced tables for each figure")
	only := flag.String("only", "", "run a single experiment by ID (F1..F8d, E3, X1..X6)")
	flag.Parse()

	if *tables {
		if err := printFigures(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}

	rows := experiments.All()
	if *only != "" {
		var filtered []experiments.Row
		for _, r := range rows {
			if strings.EqualFold(r.ID, *only) {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "repro: no experiment with ID %q\n", *only)
			os.Exit(1)
		}
		rows = filtered
	}
	fmt.Print(experiments.Report(rows))
	for _, r := range rows {
		if !r.Pass {
			os.Exit(1)
		}
	}
}

// printFigures renders the paper's tables and this build's reproductions.
func printFigures() error {
	fmt.Println("== Fig. 2: input tables ==")
	for _, t := range []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()} {
		fmt.Println(t)
	}

	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		return err
	}
	rowIDs := func(name string, row int) string { return paperdata.TupleID(name, row) }

	fmt.Println("== Fig. 3: FD(T1,T2,T3) by ALITE ==")
	fig3, err := p.Integrate(context.Background(), core.IntegrateRequest{
		Tables:         []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()},
		RowIDs:         rowIDs,
		WithProvenance: true,
	})
	if err != nil {
		return err
	}
	fmt.Println(fig3.Table)

	fmt.Println("== Fig. 7: vaccine integration set ==")
	for _, t := range paperdata.VaccineSet() {
		fmt.Println(t)
	}

	fmt.Println("== Fig. 8(a): T4 ⟗ T5 ⟗ T6 (outer join) ==")
	oj, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: paperdata.VaccineSet(), Operator: "outer-join", RowIDs: rowIDs, WithProvenance: true})
	if err != nil {
		return err
	}
	fmt.Println(oj.Table)

	fmt.Println("== Fig. 8(b): FD(T4,T5,T6) by ALITE ==")
	fdRes, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: paperdata.VaccineSet(), RowIDs: rowIDs, WithProvenance: true})
	if err != nil {
		return err
	}
	fmt.Println(fdRes.Table)

	fmt.Println("== Fig. 8(c): ER over outer join ==")
	erOJ, err := er.Resolve(context.Background(), paperdata.Fig8aExpected(), er.Options{Knowledge: kb.Demo()})
	if err != nil {
		return err
	}
	fmt.Println(erOJ.Resolved)

	fmt.Println("== Fig. 8(d): ER over FD ==")
	erFD, err := er.Resolve(context.Background(), paperdata.Fig8bExpected(), er.Options{Knowledge: kb.Demo()})
	if err != nil {
		return err
	}
	fmt.Println(erFD.Resolved)
	return nil
}
