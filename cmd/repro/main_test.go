package main

import "testing"

func TestPrintFigures(t *testing.T) {
	// The figure renderer must produce every table without error; the
	// correctness of the contents is asserted by internal/experiments.
	if err := printFigures(); err != nil {
		t.Fatal(err)
	}
}
