// Package dialite is a Go implementation of DIALITE (Khatiwada, Shraga,
// Miller — SIGMOD 2023): a pipeline that lets users Discover open-data
// tables related to a query table, Align & Integrate them with ALITE's
// holistic schema matching and Full Disjunction, and Analyze the
// integrated result with downstream applications (aggregation, correlation
// and entity resolution).
//
// The package is a façade over the implementation packages under
// internal/: it re-exports the table engine, the pipeline, the extension
// points (user-defined discoverers and integration operators) and the
// synthetic-data generators, so a downstream user imports only this
// package.
//
// Quickstart:
//
//	lake := []*dialite.Table{ ... }             // or dialite.LoadDir(dir)
//	p, err := dialite.New(lake, dialite.Config{Knowledge: dialite.DemoKB()})
//	res, err := p.Run(dialite.RunRequest{Query: q, QueryColumn: 1})
//	r, n, err := p.Correlate(res.Integration.Table, "Vaccination Rate", "Death Rate")
package dialite

import (
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/table"
)

// Core pipeline types, re-exported.
type (
	// Pipeline is a DIALITE instance bound to one data lake.
	Pipeline = core.Pipeline
	// Config configures pipeline construction.
	Config = core.Config
	// DiscoverRequest configures the discovery stage.
	DiscoverRequest = core.DiscoverRequest
	// DiscoverResponse is the discovery stage output.
	DiscoverResponse = core.DiscoverResponse
	// IntegrateRequest configures the align-and-integrate stage.
	IntegrateRequest = core.IntegrateRequest
	// IntegrateResponse is the integration stage output.
	IntegrateResponse = core.IntegrateResponse
	// RunRequest configures an end-to-end run.
	RunRequest = core.RunRequest
	// RunResult bundles the stage outputs of an end-to-end run.
	RunResult = core.RunResult
	// Lake is a preprocessed table repository.
	Lake = lake.Lake
	// LakeIndexOptions tunes lake preprocessing.
	LakeIndexOptions = lake.Options
	// KB is a knowledge base (semantic types, aliases, relationships).
	KB = kb.KB
)

// New preprocesses the lake tables and returns a DIALITE pipeline.
func New(tables []*Table, cfg Config) (*Pipeline, error) { return core.New(tables, cfg) }

// FromDir loads every CSV file in dir as the data lake and returns a
// pipeline over it.
func FromDir(dir string, cfg Config) (*Pipeline, error) { return core.FromDir(dir, cfg) }

// DefaultMethods are the discovery methods used when a request names none:
// SANTOS unionable search and LSH Ensemble joinable search.
var DefaultMethods = core.DefaultMethods

// NewKB returns an empty knowledge base.
func NewKB() *KB { return kb.New() }

// DemoKB returns the curated demonstration knowledge base (world cities
// and countries, COVID-19 vaccines, regulatory agencies, and the aliases
// the paper's examples depend on).
func DemoKB() *KB { return kb.Demo() }

// SynthesizeKB builds a knowledge base from the lake tables themselves
// (SANTOS's synthesized KB), for domains without curated coverage.
func SynthesizeKB(tables []*Table) *KB {
	return kb.Synthesize(tables, kb.SynthesizeOptions{})
}

// tableAlias keeps the Table alias near its constructors in tables.go.
type tableAlias = table.Table
