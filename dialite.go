// Package dialite is a Go implementation of DIALITE (Khatiwada, Shraga,
// Miller — SIGMOD 2023): a pipeline that lets users Discover open-data
// tables related to a query table, Align & Integrate them with ALITE's
// holistic schema matching and Full Disjunction, and Analyze the
// integrated result with downstream applications (aggregation, correlation
// and entity resolution).
//
// The package is a façade over the implementation packages under
// internal/: it re-exports the table engine, the pipeline, the extension
// points (user-defined discoverers and integration operators), the HTTP
// serving layer and the synthetic-data generators, so a downstream user
// imports only this package.
//
// The API is context-first: every pipeline stage takes a context.Context
// and observes it cooperatively, so callers can bound, cancel or deadline
// any stage — the FD closure, the index scans, the ER pair loop all abort
// at their next checkpoint and return ctx.Err(). An uncancelled context
// costs nothing and changes nothing.
//
// Quickstart:
//
//	ctx := context.Background()                 // or a per-request context
//	lake := []*dialite.Table{ ... }             // or dialite.LoadDir(dir)
//	p, err := dialite.New(lake, dialite.Config{Knowledge: dialite.DemoKB()})
//	res, err := p.Run(ctx, dialite.RunRequest{Query: q, QueryColumn: 1})
//	r, n, err := p.Correlate(ctx, res.Integration.Table, "Vaccination Rate", "Death Rate")
//
// With a deadline instead:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	res, err := p.Run(ctx, dialite.RunRequest{Query: q, QueryColumn: 1})
//	// err == context.DeadlineExceeded if the budget ran out mid-stage
//
// The lake is mutable (p.AddTables / p.RemoveTables maintain every
// discovery index incrementally) and queries run concurrently with
// mutations, which is what makes the pipeline servable. To serve it:
//
//	srv := dialite.NewServer(p, dialite.ServeConfig{Timeout: 10 * time.Second})
//	err = srv.ListenAndServe(ctx, ":8080")      // graceful shutdown on ctx cancel
//
// or, from a CSV directory, `dialite serve -lake DIR -addr :8080`
// (`-shards N` partitions the catalog across N shard lakes with
// scatter-gather discovery and identical answers — see SHARDING.md). The
// server exposes JSON endpoints for every stage (POST /v1/discover,
// /v1/integrate, /v1/pipeline, /v1/correlate, /v1/resolve) and for lake
// mutation (POST /v1/lake/add, /v1/lake/remove, GET /v1/lake), each request
// running under its own timeout with request-scoped entity resolution (see
// examples/serve for a round trip).
//
// The server is hardened for heavy traffic: bounded per-class admission
// control sheds excess load with structured 429/503 + Retry-After before
// any pipeline work runs, request bodies are capped (413), a persist-store
// write failure degrades to read-only serving rather than cascading, and
// GET /metrics publishes per-endpoint counters and latency quantiles
// (Prometheus text, or ?format=json as []MetricsSnapshot). Semantics,
// tuning flags and the metrics reference are documented in SERVING.md.
package dialite

import (
	"context"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/serve"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Core pipeline types, re-exported.
type (
	// Pipeline is a DIALITE instance bound to one data lake.
	Pipeline = core.Pipeline
	// Config configures pipeline construction.
	Config = core.Config
	// DiscoverRequest configures the discovery stage.
	DiscoverRequest = core.DiscoverRequest
	// DiscoverResponse is the discovery stage output.
	DiscoverResponse = core.DiscoverResponse
	// IntegrateRequest configures the align-and-integrate stage.
	IntegrateRequest = core.IntegrateRequest
	// IntegrateResponse is the integration stage output.
	IntegrateResponse = core.IntegrateResponse
	// RunRequest configures an end-to-end run.
	RunRequest = core.RunRequest
	// RunResult bundles the stage outputs of an end-to-end run.
	RunResult = core.RunResult
	// Lake is a preprocessed table repository.
	Lake = lake.Lake
	// ShardedLake partitions the catalog across shard lakes with private
	// per-shard indexes, hash-routed mutations, and scatter-gather
	// discovery whose rankings are byte-identical to an unsharded Lake
	// (set Config.Shards > 1, see SHARDING.md).
	ShardedLake = lake.Sharded
	// LakeCatalog is the catalog interface both Lake and ShardedLake
	// satisfy; Pipeline.Lake returns it.
	LakeCatalog = lake.Catalog
	// LakeIndexOptions tunes lake preprocessing.
	LakeIndexOptions = lake.Options
	// KB is a knowledge base (semantic types, aliases, relationships).
	KB = kb.KB
)

// New preprocesses the lake tables and returns a DIALITE pipeline.
func New(tables []*Table, cfg Config) (*Pipeline, error) { return core.New(tables, cfg) }

// FromDir loads every CSV file in dir as the data lake and returns a
// pipeline over it.
func FromDir(dir string, cfg Config) (*Pipeline, error) { return core.FromDir(dir, cfg) }

// DefaultMethods are the discovery methods used when a request names none:
// SANTOS unionable search and LSH Ensemble joinable search.
var DefaultMethods = core.DefaultMethods

// Serving layer, re-exported.
type (
	// Server serves one pipeline over HTTP (see package-level quickstart).
	Server = serve.Server
	// ServeConfig tunes the server (per-request timeout, body limit,
	// admission capacity and queue-wait budget).
	ServeConfig = serve.Config
	// TableJSON is the wire form of a table on the serve endpoints.
	TableJSON = serve.TableJSON
	// MetricsSnapshot is one endpoint's point-in-time serving metrics — the
	// element type of Server.MetricsSnapshot and GET /metrics?format=json.
	MetricsSnapshot = serve.EndpointMetrics
	// ServerLoad aggregates the per-endpoint counters, as surfaced on
	// /healthz.
	ServerLoad = serve.LoadSummary
)

// NewServer builds an HTTP server over a constructed pipeline. Mount
// srv.Handler() on your own http.Server, or srv.ListenAndServe(ctx, addr)
// to serve with graceful shutdown when ctx is cancelled.
func NewServer(p *Pipeline, cfg ServeConfig) *Server { return serve.New(p, cfg) }

// EncodeTableJSON converts a table to the serve endpoints' wire form — what
// a client posts as a query or inline integration member.
func EncodeTableJSON(t *Table) TableJSON { return serve.EncodeTable(t) }

// Cluster mode (shard-per-process over HTTP), re-exported.
type (
	// Coordinator is a lake catalog whose shards are remote dialite serve
	// processes: hash-routed mutations, scatter-gather discovery with
	// rankings byte-identical to an in-process ShardedLake, and explicit
	// partial-result degradation when shards are down (see SHARDING.md,
	// "Cluster mode").
	Coordinator = cluster.Coordinator
	// ClusterConfig configures a Coordinator (shard addresses, call
	// deadlines, retry policy).
	ClusterConfig = cluster.Config
	// ClusterManifest is the coordinator-side placement record pinning
	// shard count and sketch engine across restarts.
	ClusterManifest = cluster.Manifest
	// ShardHealth is one shard's entry in a coordinator health report.
	ShardHealth = serve.ShardHealth
)

// NewCoordinator connects to the shard servers and returns a coordinator
// catalog over them; pass it to NewPipelineFromCatalog (or run `dialite
// serve -coordinator`).
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// NewPipelineFromCatalog builds a pipeline over an already-constructed
// catalog (a ShardedLake or a cluster Coordinator).
func NewPipelineFromCatalog(c LakeCatalog) *Pipeline { return core.FromCatalog(c) }

// ProbeClusterShards health-checks shard servers without building a
// coordinator — what `dialite shardctl` runs.
func ProbeClusterShards(ctx context.Context, addrs []string, timeout time.Duration) ([]serve.ShardHealth, error) {
	return cluster.ProbeShards(ctx, addrs, timeout)
}

// ReconcileClusterManifest loads (or first-boot writes) a cluster persist
// directory's placement manifest and checks it against the given shard
// addresses and engine.
func ReconcileClusterManifest(dir string, addrs []string, engine string) (*ClusterManifest, error) {
	return cluster.ReconcileManifest(dir, addrs, sketch.Engine(engine))
}

// NewKB returns an empty knowledge base.
func NewKB() *KB { return kb.New() }

// DemoKB returns the curated demonstration knowledge base (world cities
// and countries, COVID-19 vaccines, regulatory agencies, and the aliases
// the paper's examples depend on).
func DemoKB() *KB { return kb.Demo() }

// SynthesizeKB builds a knowledge base from the lake tables themselves
// (SANTOS's synthesized KB), for domains without curated coverage.
func SynthesizeKB(tables []*Table) *KB {
	return kb.Synthesize(tables, kb.SynthesizeOptions{})
}

// tableAlias keeps the Table alias near its constructors in tables.go.
type tableAlias = table.Table
