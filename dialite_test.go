package dialite_test

import (
	"context"
	"math"
	"strings"
	"testing"

	dialite "repro"
	"repro/internal/paperdata"
)

// publicPipeline builds the demo pipeline through the public API only.
func publicPipeline(t *testing.T) *dialite.Pipeline {
	t.Helper()
	p, err := dialite.New(paperdata.CovidLake(), dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p := publicPipeline(t)
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	res, err := p.Run(context.Background(), dialite.RunRequest{Query: q, QueryColumn: city})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discovery.IntegrationSet) != 3 {
		t.Fatalf("integration set = %d tables", len(res.Discovery.IntegrationSet))
	}
	r, _, err := p.Correlate(context.Background(), res.Integration.Table, paperdata.ColVaccRate, paperdata.ColDeathRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Round(r*100)/100-0.16) > 1e-9 {
		t.Errorf("public API correlation = %v, want 0.16", r)
	}
}

func TestPublicTableConstruction(t *testing.T) {
	tb := dialite.NewTable("mine", "a", "b")
	tb.MustAddRow(dialite.String("x"), dialite.Int(1))
	tb.MustAddRow(dialite.Null(), dialite.Float(2.5))
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Error("table construction broken")
	}
	if dialite.ParseValue("42").Kind() != dialite.KindInt {
		t.Error("ParseValue broken")
	}
	if !dialite.ProducedNull().IsProduced() {
		t.Error("ProducedNull broken")
	}
	if dialite.Bool(true).Kind() != dialite.KindBool {
		t.Error("Bool broken")
	}
	if dialite.ParseValue("").Kind() != dialite.KindNull {
		t.Error("null parse broken")
	}
	if dialite.ParseValue("2.5").Kind() != dialite.KindFloat {
		t.Error("float parse broken")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	tb := dialite.NewTable("rt", "x")
	tb.MustAddRow(dialite.String("v"))
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := dialite.ReadCSV(strings.NewReader(sb.String()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Equal(back) {
		t.Error("public CSV round trip failed")
	}
}

func TestPublicExtensionPoints(t *testing.T) {
	p := publicPipeline(t)
	if err := p.Operators().Register(dialite.OperatorFunc{
		OpName: "noop",
		F: func(ctx context.Context, schema []string, sets []dialite.AlignedSet) ([]dialite.Tuple, error) {
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Discoverers().Register(dialite.SimilarityFunc{
		FuncName: "always",
		Sim:      func(q, c *dialite.Table) float64 { return 1 },
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Discover(context.Background(), dialite.DiscoverRequest{Query: paperdata.T1(), QueryColumn: 1, Methods: []string{"always"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IntegrationSet) != 3 {
		t.Errorf("custom discoverer should find both lake tables: %d", len(resp.IntegrationSet))
	}
}

func TestPublicBuiltinOperators(t *testing.T) {
	for _, op := range []dialite.Operator{dialite.OpALITEFD, dialite.OpOuterJoin, dialite.OpInnerJoin, dialite.OpUnion} {
		if op.Name() == "" {
			t.Error("operator with empty name")
		}
	}
}

func TestPublicQueryGenAndLakeGen(t *testing.T) {
	q, err := dialite.GenerateQueryTable("covid cases", 5, 5, 1)
	if err != nil || q.NumRows() != 5 {
		t.Fatalf("GenerateQueryTable: %v", err)
	}
	lake := dialite.GenerateSyntheticLake(dialite.SyntheticLakeOptions{Seed: 2, Families: 1, TablesPerFamily: 2, NoiseTables: 1, RowsPerTable: 5})
	if len(lake.Tables) == 0 {
		t.Fatal("synthetic lake empty")
	}
}

func TestPublicAnalysisHelpers(t *testing.T) {
	fig3 := paperdata.Fig3Expected()
	city, _ := fig3.ColumnIndex(paperdata.ColCity)
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	min, max, err := dialite.Extremes(fig3, city, vacc)
	if err != nil || min.Label != "Boston" || max.Label != "Toronto" {
		t.Errorf("Extremes = %v %v (%v)", min, max, err)
	}
	if _, err := dialite.GroupBy(fig3, 0, 2, dialite.AggAvg); err != nil {
		t.Error(err)
	}
	if p := dialite.Profile(fig3); p.NumRows() != fig3.NumCols() {
		t.Error("Profile broken")
	}
	if f, ok := dialite.Coerce(dialite.String("1.4M")); !ok || f != 1.4e6 {
		t.Error("Coerce broken")
	}
	if s, err := dialite.Stats(fig3, vacc); err != nil || s.Numeric != 5 {
		t.Errorf("Stats = %+v, %v", s, err)
	}
	if _, _, err := dialite.Pearson(fig3, vacc, 4); err != nil {
		t.Error(err)
	}
}

func TestPublicKBAndMatchers(t *testing.T) {
	k := dialite.NewKB()
	k.AddAlias("a", "b")
	if !k.SameEntity("a", "b") {
		t.Error("KB alias broken via facade")
	}
	syn := dialite.SynthesizeKB(paperdata.CovidLake())
	if !syn.HasEntity("berlin") {
		t.Error("SynthesizeKB broken")
	}
	var m dialite.Matcher = dialite.HolisticMatcher{Knowledge: dialite.DemoKB()}
	if _, err := m.Align(paperdata.VaccineSet()); err != nil {
		t.Error(err)
	}
	var hm dialite.Matcher = dialite.HeaderMatcher{}
	if _, err := hm.Align(paperdata.VaccineSet()); err != nil {
		t.Error(err)
	}
}

func TestPublicER(t *testing.T) {
	p := publicPipeline(t)
	resp, err := p.Integrate(context.Background(), dialite.IntegrateRequest{Tables: paperdata.VaccineSet()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ResolveEntities(context.Background(), resp.Table, dialite.EROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved.NumRows() != 2 {
		t.Errorf("public ER = %d entities, want 2", res.Resolved.NumRows())
	}
}
