// Covid walks through the paper's running example (Figures 2 and 3,
// Examples 1-3): query table T1 discovers the unionable table T2 (SANTOS)
// and the joinable table T3 (LSH Ensemble); ALITE integrates all three
// into the Fig. 3 table; and the analysis stage reproduces Example 3's
// correlations (0.16 between vaccination and death rates, 0.9 between case
// counts and vaccination rates).
//
//	go run ./examples/covid
package main

import (
	"context"
	"fmt"
	"log"

	dialite "repro"
)

// The paper's tables, built through the public API. "±" marks a missing
// null in the source data.
func t1() *dialite.Table {
	t := dialite.NewTable("T1", "Country", "City", "Vaccination Rate (1+ dose)")
	t.MustAddRow(dialite.String("Germany"), dialite.String("Berlin"), dialite.String("63%"))
	t.MustAddRow(dialite.String("England"), dialite.String("Manchester"), dialite.String("78%"))
	t.MustAddRow(dialite.String("Spain"), dialite.String("Barcelona"), dialite.String("82%"))
	return t
}

func t2() *dialite.Table {
	t := dialite.NewTable("T2", "Country", "City", "Vaccination Rate (1+ dose)")
	t.MustAddRow(dialite.String("Canada"), dialite.String("Toronto"), dialite.String("83%"))
	t.MustAddRow(dialite.String("Mexico"), dialite.String("Mexico City"), dialite.Null())
	t.MustAddRow(dialite.String("USA"), dialite.String("Boston"), dialite.String("62%"))
	return t
}

func t3() *dialite.Table {
	t := dialite.NewTable("T3", "City", "Total Cases", "Death Rate (per 100k residents)")
	t.MustAddRow(dialite.String("Berlin"), dialite.String("1.4M"), dialite.Int(147))
	t.MustAddRow(dialite.String("Barcelona"), dialite.String("2.68M"), dialite.Int(275))
	t.MustAddRow(dialite.String("Boston"), dialite.String("263k"), dialite.Int(335))
	t.MustAddRow(dialite.String("New Delhi"), dialite.String("2M"), dialite.Int(158))
	return t
}

func main() {
	ctx := context.Background()
	// The data lake holds T2 and T3; T1 is the user's query table.
	p, err := dialite.New([]*dialite.Table{t2(), t3()}, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		log.Fatal(err)
	}
	q := t1()
	city, _ := q.ColumnIndex("City")

	// Example 1: discovery with intent column City. SANTOS finds T2
	// unionable (same city->country relationship semantics, even though
	// the tables share no values); LSH Ensemble finds T3 joinable (its
	// city column contains the query's cities).
	disc, err := p.Discover(ctx, dialite.DiscoverRequest{Query: q, QueryColumn: city})
	if err != nil {
		log.Fatal(err)
	}
	for method, results := range disc.PerMethod {
		for _, r := range results {
			fmt.Printf("%-14s -> %-4s score=%.3f\n", method, r.Table.Name, r.Score)
		}
	}

	// Example 2: ALITE aligns the columns holistically (no trust in
	// headers) and applies the Full Disjunction. The TIDs column shows
	// which source tuples each integrated tuple was assembled from.
	integ, err := p.Integrate(ctx, dialite.IntegrateRequest{
		Tables:         disc.IntegrationSet,
		WithProvenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(integ.Table)

	// Example 3: analytics over the integrated table. Open-data spellings
	// like "63%" and "1.4M" are coerced numerically.
	flat, err := p.Integrate(ctx, dialite.IntegrateRequest{Tables: disc.IntegrationSet})
	if err != nil {
		log.Fatal(err)
	}
	cityIdx, _ := flat.Table.ColumnIndex("City")
	vaccIdx, _ := flat.Table.ColumnIndex("Vaccination Rate (1+ dose)")
	min, max, err := dialite.Extremes(flat.Table, cityIdx, vaccIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lowest vaccination rate:  %s (%.0f%%)\n", min.Label, min.Value)
	fmt.Printf("highest vaccination rate: %s (%.0f%%)\n", max.Label, max.Value)

	r1, n1, err := p.Correlate(ctx, flat.Table, "Vaccination Rate (1+ dose)", "Death Rate (per 100k residents)")
	if err != nil {
		log.Fatal(err)
	}
	r2, _, err := p.Correlate(ctx, flat.Table, "Total Cases", "Vaccination Rate (1+ dose)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corr(vaccination, death rate) = %.2f  (over %d cities)\n", r1, n1)
	fmt.Printf("corr(cases, vaccination)      = %.1f\n", r2)
}
