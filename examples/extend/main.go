// Extend demonstrates DIALITE's extensibility (paper §3.2, Figures 4-6):
//
//   - a user-defined discovery algorithm (a similarity function between
//     two tables, here the size of the best inner join) registered next to
//     the built-ins (Fig. 4);
//
//   - query-table generation from a free-text prompt, the GPT-3 substitute
//     (Fig. 5);
//
//   - a user-defined integration operator registered next to ALITE
//     (Fig. 6) — here a "left join" that keeps only the first table's rows
//     enriched with matches.
//
//     go run ./examples/extend
package main

import (
	"context"
	"fmt"
	"log"

	dialite "repro"
)

func main() {
	ctx := context.Background()
	// A small lake to discover over: generated COVID-style tables.
	lakeTable1, err := dialite.GenerateQueryTable("covid cases by city", 8, 5, 101)
	if err != nil {
		log.Fatal(err)
	}
	lakeTable1.Name = "cases_by_city"
	lakeTable2, err := dialite.GenerateQueryTable("weather by city", 8, 4, 102)
	if err != nil {
		log.Fatal(err)
	}
	lakeTable2.Name = "weather"
	p, err := dialite.New([]*dialite.Table{lakeTable1, lakeTable2}, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 5: no query table at hand — generate one from a prompt. The
	// same prompt and seed always produce the same table.
	q, err := p.GenerateQueryTable("COVID-19 cases", 5, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated query table:")
	fmt.Println(q)

	// Fig. 4: user-defined discovery — score a candidate by the number of
	// rows its best column shares with the query (an inner-join size).
	err = p.Discoverers().Register(dialite.SimilarityFunc{
		FuncName: "inner-join-size",
		Sim: func(query, candidate *dialite.Table) float64 {
			best := 0
			for qc := 0; qc < query.NumCols(); qc++ {
				qvals := map[string]bool{}
				for _, v := range query.Column(qc) {
					if !v.IsNull() {
						qvals[v.String()] = true
					}
				}
				for cc := 0; cc < candidate.NumCols(); cc++ {
					n := 0
					for _, v := range candidate.Column(cc) {
						if !v.IsNull() && qvals[v.String()] {
							n++
						}
					}
					if n > best {
						best = n
					}
				}
			}
			return float64(best)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	city, _ := q.ColumnIndex("City")
	disc, err := p.Discover(ctx, dialite.DiscoverRequest{
		Query:       q,
		QueryColumn: city,
		Methods:     []string{"inner-join-size"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user-defined discovery results:")
	for _, r := range disc.PerMethod["inner-join-size"] {
		fmt.Printf("  %-14s score=%.0f\n", r.Table.Name, r.Score)
	}

	// Fig. 6: user-defined integration operator — a left join keeping the
	// first aligned set's tuples, merged with any matching tuple from the
	// later sets.
	err = p.Operators().Register(dialite.OperatorFunc{
		OpName: "left-join",
		F: func(ctx context.Context, schema []string, sets []dialite.AlignedSet) ([]dialite.Tuple, error) {
			if len(sets) == 0 {
				return nil, nil
			}
			out := append([]dialite.Tuple(nil), sets[0].Tuples...)
			for _, next := range sets[1:] {
				for i, left := range out {
					for _, right := range next.Tuples {
						merged, ok := tryMerge(left, right)
						if ok {
							out[i] = merged
							break
						}
					}
				}
			}
			return out, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	integ, err := p.Integrate(ctx, dialite.IntegrateRequest{
		Tables:   disc.IntegrationSet,
		Operator: "left-join",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrated with the user-defined left-join operator:")
	fmt.Println(integ.Table)
}

// tryMerge combines two aligned tuples when they share a non-null value
// and never conflict — the merge rule integration operators build on.
func tryMerge(a, b dialite.Tuple) (dialite.Tuple, bool) {
	shares := false
	for i := range a.Values {
		av, bv := a.Values[i], b.Values[i]
		if av.IsNull() || bv.IsNull() {
			continue
		}
		if av.Equal(bv) {
			shares = true
		} else {
			return dialite.Tuple{}, false
		}
	}
	if !shares {
		return dialite.Tuple{}, false
	}
	merged := a.Clone()
	for i := range merged.Values {
		if merged.Values[i].IsNull() && !b.Values[i].IsNull() {
			merged.Values[i] = b.Values[i]
		}
	}
	return merged, true
}
