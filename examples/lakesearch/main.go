// Lakesearch runs discovery at scale on a generated open-data lake with
// known ground truth: it generates a lake of unionable families, joinable
// companions and noise tables, queries it with every discovery method, and
// scores the results against the truth — the experiment a user would run
// before trusting a discovery method on their own lake.
//
//	go run ./examples/lakesearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dialite "repro"
)

func main() {
	ctx := context.Background()
	// A lake with ground truth: 8 families x 4 partitions, 2 joinable
	// companions each, 10 noise tables — 58 tables.
	lake := dialite.GenerateSyntheticLake(dialite.SyntheticLakeOptions{
		Seed:              7,
		Families:          8,
		TablesPerFamily:   4,
		RowsPerTable:      40,
		JoinablePerFamily: 2,
		NoiseTables:       10,
	})
	start := time.Now()
	p, err := dialite.New(lake.Tables, dialite.Config{SynthesizeKB: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed %d tables in %v (SANTOS annotations, LSH Ensemble, JOSIE index)\n\n",
		len(lake.Tables), time.Since(start).Round(time.Millisecond))

	queries := []string{"family0_part0", "family3_part1", "family6_part2"}
	methods := []string{"santos-union", "lsh-join", "josie-join", "syntactic-union"}

	for _, qname := range queries {
		q, ok := p.Lake().Get(qname)
		if !ok {
			log.Fatalf("query table %s missing", qname)
		}
		keyCol := lake.Truth.KeyColumn[qname]
		fmt.Printf("query %s (key column %d)\n", qname, keyCol)
		for _, m := range methods {
			resp, err := p.Discover(ctx, dialite.DiscoverRequest{
				Query:       q,
				QueryColumn: keyCol,
				Methods:     []string{m},
				K:           5,
			})
			if err != nil {
				log.Fatal(err)
			}
			results := resp.PerMethod[m]
			fmt.Printf("  %-16s", m)
			for _, r := range results {
				marker := " "
				if contains(lake.Truth.UnionableWith[qname], r.Table.Name) {
					marker = "U" // true unionable partner
				} else if contains(lake.Truth.JoinableWith[qname], r.Table.Name) {
					marker = "J" // true joinable companion
				}
				fmt.Printf("  %s:%s", r.Table.Name, marker)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("U = ground-truth unionable partner, J = ground-truth joinable companion")
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
