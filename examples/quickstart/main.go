// Quickstart: the smallest complete DIALITE run — build a tiny data lake,
// discover tables related to a query table, integrate them with ALITE's
// Full Disjunction, and run an aggregation over the result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	dialite "repro"
)

func main() {
	ctx := context.Background()
	// A two-table data lake: population figures and GDP figures keyed by
	// city, with different column headers (open data is inconsistent).
	pop := dialite.NewTable("city_population", "Town", "Population")
	pop.MustAddRow(dialite.String("Berlin"), dialite.Int(3_700_000))
	pop.MustAddRow(dialite.String("Paris"), dialite.Int(2_100_000))
	pop.MustAddRow(dialite.String("Rome"), dialite.Int(2_800_000))

	gdp := dialite.NewTable("city_gdp", "City", "GDP (B$)")
	gdp.MustAddRow(dialite.String("Berlin"), dialite.Int(160))
	gdp.MustAddRow(dialite.String("Rome"), dialite.Int(120))
	gdp.MustAddRow(dialite.String("Madrid"), dialite.Int(140))

	// Preprocess the lake. The demo knowledge base supplies semantic types
	// (Berlin is a city) used by discovery and schema matching.
	p, err := dialite.New([]*dialite.Table{pop, gdp}, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		log.Fatal(err)
	}

	// The query table: cities we care about.
	q := dialite.NewTable("my_cities", "Name")
	q.MustAddRow(dialite.String("Berlin"))
	q.MustAddRow(dialite.String("Rome"))

	// Stage 1+2 end to end: discover related tables (joinable on the city
	// column), then integrate everything with ALITE's Full Disjunction.
	res, err := p.Run(ctx, dialite.RunRequest{
		Query:       q,
		QueryColumn: 0, // the intent/query column: Name
		Methods:     []string{"lsh-join", "josie-join"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered integration set:")
	for _, t := range res.Discovery.IntegrationSet {
		fmt.Println(" -", t.Name)
	}
	fmt.Println()
	fmt.Println(res.Integration.Table)

	// Stage 3: analytics over the integrated table.
	profile := dialite.Profile(res.Integration.Table)
	fmt.Println(profile)
}
