// Serve stands the DIALITE pipeline up as an HTTP service and drives a full
// discover + integrate round trip against it over the wire — the paper's
// web-served demonstration system (Fig. 1 behind an interactive UI) as a
// programmatic client session. The same endpoints are reachable with curl:
//
//	dialite serve -lake DIR -addr :8080 &
//	curl -s :8080/v1/discover  -d '{"query": {...}, "queryColumn": 1}'
//	curl -s :8080/v1/integrate -d '{"names": ["T1","T2","T3"]}'
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	dialite "repro"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The demo lake: T2 (unionable with T1) and T3 (joinable with T1).
	p, err := dialite.New([]*dialite.Table{t2(), t3()}, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		log.Fatal(err)
	}

	// Start the server; ListenAndServe shuts down gracefully when ctx is
	// cancelled at the end of this session.
	const addr = "127.0.0.1:8321"
	srv := dialite.NewServer(p, dialite.ServeConfig{Timeout: 10 * time.Second})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, addr) }()
	waitHealthy(addr)
	fmt.Printf("serving %d-table lake on %s\n\n", p.Lake().Size(), addr)

	// Round trip 1: discover related tables for the query table T1.
	q := t1()
	var disc struct {
		PerMethod map[string][]struct {
			Table string  `json:"table"`
			Score float64 `json:"score"`
		} `json:"perMethod"`
		IntegrationSet []string `json:"integrationSet"`
	}
	post(addr, "/v1/discover", map[string]any{
		"query":       dialite.EncodeTableJSON(q),
		"queryColumn": 1, // the City intent column
	}, &disc)
	for method, results := range disc.PerMethod {
		fmt.Printf("%-14s", method)
		for _, r := range results {
			fmt.Printf("  %s (%.2f)", r.Table, r.Score)
		}
		fmt.Println()
	}
	fmt.Printf("integration set: %v\n\n", disc.IntegrationSet)

	// Round trip 2: integrate the discovered set — lake tables by name, the
	// query table inline — with ALITE's Full Disjunction.
	var integ struct {
		Table    dialite.TableJSON `json:"table"`
		Operator string            `json:"operator"`
	}
	post(addr, "/v1/integrate", map[string]any{
		"names":  disc.IntegrationSet[1:], // lake members (T2, T3)
		"tables": []any{dialite.EncodeTableJSON(q)},
	}, &integ)
	fmt.Printf("%s integrated %d tuples over schema %v\n",
		integ.Operator, len(integ.Table.Rows), integ.Table.Columns)

	// Round trip 3: analysis over the integrated table, still on the wire.
	var corr struct {
		R float64 `json:"r"`
		N int     `json:"n"`
	}
	post(addr, "/v1/correlate", map[string]any{
		"table": integ.Table,
		"colA":  "Vaccination Rate (1+ dose)",
		"colB":  "Death Rate (per 100k residents)",
	}, &corr)
	fmt.Printf("correlation(vaccination, death) = %.2f over %d cities\n", corr.R, corr.N)

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver shut down gracefully")
}

// post sends one JSON request and decodes the response into out, failing
// loudly on any error — examples trade robustness for readability.
func post(addr, path string, body any, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %d %s", path, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// The paper's tables (Fig. 2), built through the public API.
func t1() *dialite.Table {
	t := dialite.NewTable("T1", "Country", "City", "Vaccination Rate (1+ dose)")
	t.MustAddRow(dialite.String("Germany"), dialite.String("Berlin"), dialite.String("63%"))
	t.MustAddRow(dialite.String("England"), dialite.String("Manchester"), dialite.String("78%"))
	t.MustAddRow(dialite.String("Spain"), dialite.String("Barcelona"), dialite.String("82%"))
	return t
}

func t2() *dialite.Table {
	t := dialite.NewTable("T2", "Country", "City", "Vaccination Rate (1+ dose)")
	t.MustAddRow(dialite.String("Canada"), dialite.String("Toronto"), dialite.String("83%"))
	t.MustAddRow(dialite.String("Mexico"), dialite.String("Mexico City"), dialite.Null())
	t.MustAddRow(dialite.String("USA"), dialite.String("Boston"), dialite.String("62%"))
	return t
}

func t3() *dialite.Table {
	t := dialite.NewTable("T3", "City", "Total Cases", "Death Rate (per 100k residents)")
	t.MustAddRow(dialite.String("Berlin"), dialite.String("1.4M"), dialite.Int(147))
	t.MustAddRow(dialite.String("Barcelona"), dialite.String("2.68M"), dialite.Int(275))
	t.MustAddRow(dialite.String("Boston"), dialite.String("263k"), dialite.Int(335))
	t.MustAddRow(dialite.String("New Delhi"), dialite.String("2M"), dialite.Int(158))
	return t
}

func waitHealthy(addr string) {
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("server never became healthy")
}
