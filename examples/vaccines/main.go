// Vaccines reproduces the paper's Example 5 (Figures 7 and 8): the same
// integration set integrated with the standard full outer join and with
// ALITE's Full Disjunction, followed by entity resolution over both
// results. FD recovers the fact that the FDA approved the J&J vaccine —
// derivable from t13 and t15 — which the outer join chain loses; and ER
// over the FD result resolves the alias pair (JnJ ~ J&J, USA ~ United
// States) that stays unresolved over the outer-join result.
//
//	go run ./examples/vaccines
package main

import (
	"context"
	"fmt"
	"log"

	dialite "repro"
)

func vaccineTables() []*dialite.Table {
	t4 := dialite.NewTable("T4", "Vaccine", "Approver")
	t4.MustAddRow(dialite.String("Pfizer"), dialite.String("FDA"))
	t4.MustAddRow(dialite.String("JnJ"), dialite.Null())

	t5 := dialite.NewTable("T5", "Country", "Approver")
	t5.MustAddRow(dialite.String("United States"), dialite.String("FDA"))
	t5.MustAddRow(dialite.String("USA"), dialite.Null())

	t6 := dialite.NewTable("T6", "Vaccine", "Country")
	t6.MustAddRow(dialite.String("J&J"), dialite.String("United States"))
	t6.MustAddRow(dialite.String("JnJ"), dialite.String("USA"))
	return []*dialite.Table{t4, t5, t6}
}

func main() {
	ctx := context.Background()
	// No discovery here: the integration set is given (the "traditional
	// data integration scenario" of paper §2.2). The lake can be empty.
	p, err := dialite.New(nil, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		log.Fatal(err)
	}
	set := vaccineTables()

	// Integration operator 1: the user-chosen outer join (Fig. 8a).
	oj, err := p.Integrate(ctx, dialite.IntegrateRequest{Tables: set, Operator: "outer-join"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— outer join —")
	fmt.Println(oj.Table)

	// Integration operator 2: ALITE's Full Disjunction (Fig. 8b). Note
	// the extra tuple (J&J, FDA, United States): FD connects t13 and t15
	// through their shared country.
	fd, err := p.Integrate(ctx, dialite.IntegrateRequest{Tables: set})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— full disjunction (ALITE) —")
	fmt.Println(fd.Table)

	// Downstream application: entity resolution (Fig. 8c/8d). The demo KB
	// knows J&J ≈ JnJ and USA ≈ United States.
	erOJ, err := p.ResolveEntities(ctx, oj.Table, dialite.EROptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— ER over outer join: %d rows -> %d entities —\n", oj.Table.NumRows(), erOJ.Resolved.NumRows())
	fmt.Println(erOJ.Resolved)

	erFD, err := p.ResolveEntities(ctx, fd.Table, dialite.EROptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— ER over FD: %d rows -> %d entities —\n", fd.Table.NumRows(), erFD.Resolved.NumRows())
	fmt.Println(erFD.Resolved)

	fmt.Println("The outer join never derives J&J's approver; FD does, and ER")
	fmt.Println("over the FD result collapses the J&J/JnJ alias pair into one")
	fmt.Println("fully-resolved entity.")
}
