package dialite

import (
	"context"

	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/fd"
	"repro/internal/integrate"
	"repro/internal/schemamatch"
	"repro/internal/synth"
)

// Extension points (paper §3.2): users add discovery algorithms and
// integration operators next to the built-ins.
type (
	// Discoverer finds lake tables related to a query table.
	Discoverer = discovery.Discoverer
	// DiscoveryResult is one discovered table with its method score.
	DiscoveryResult = discovery.Result
	// SimilarityFunc turns a user-defined table-similarity function into a
	// Discoverer (the paper's Fig. 4).
	SimilarityFunc = discovery.SimilarityFunc
	// Operator is a pluggable integration method.
	Operator = integrate.Operator
	// OperatorFunc turns a plain function into an Operator (Fig. 6).
	OperatorFunc = integrate.Func
	// AlignedSet is one source table projected onto the integration
	// schema, the representation operators consume.
	AlignedSet = integrate.AlignedSet
	// Tuple is an integrated tuple with provenance (the figures' TIDs).
	Tuple = fd.Tuple
	// Matcher assigns integration IDs to columns.
	Matcher = schemamatch.Matcher
	// HolisticMatcher is ALITE's constrained-clustering matcher.
	HolisticMatcher = schemamatch.Holistic
	// AutoMatcher is the holistic matcher with silhouette-based automatic
	// cut selection (no similarity threshold to tune).
	AutoMatcher = schemamatch.AutoHolistic
	// HeaderMatcher is the trust-the-headers baseline matcher.
	HeaderMatcher = schemamatch.HeaderMatcher
	// OracleMatcher clusters columns by caller-provided truth labels.
	OracleMatcher = schemamatch.Oracle
	// Alignment maps columns of an integration set to integration IDs.
	Alignment = schemamatch.Alignment
	// EROptions configures entity resolution.
	EROptions = er.Options
	// ERResolution is the output of entity resolution.
	ERResolution = er.Resolution
	// ERTrainingPair is one labeled example for TrainERMatcher.
	ERTrainingPair = er.TrainingPair
	// ERTrainOptions configures TrainERMatcher.
	ERTrainOptions = er.TrainOptions
	// ERModel is a trained logistic-regression match classifier.
	ERModel = er.LogisticModel
)

// TrainERMatcher fits a logistic-regression entity matcher on labeled row
// pairs — the learned alternative to the rule matcher, standing in for
// py_entitymatching's trainable matchers.
func TrainERMatcher(pairs []ERTrainingPair, opts ERTrainOptions) (*ERModel, error) {
	return er.TrainLogistic(pairs, opts)
}

// ResolveWithModel runs entity resolution with a trained matcher. ctx is
// observed across the pair-scoring loop, like every pipeline stage.
func ResolveWithModel(ctx context.Context, t *Table, model *ERModel, knowledge *KB, threshold float64) (*ERResolution, error) {
	return er.ResolveLearned(ctx, t, model, knowledge, threshold)
}

// DemoERTrainingPairs returns the built-in labeled pairs derived from the
// demonstration domain, enough to train a matcher that reproduces the
// paper's Fig. 8(c)/(d) behaviour.
func DemoERTrainingPairs(knowledge *KB) []ERTrainingPair {
	return er.TrainingPairsFromFigures(knowledge)
}

// Built-in integration operators.
var (
	// OpALITEFD is ALITE's Full Disjunction (the default).
	OpALITEFD Operator = integrate.ALITEFD{}
	// OpOuterJoin is the left-deep full-outer-join chain (Fig. 6).
	OpOuterJoin Operator = integrate.FullOuterJoin{}
	// OpInnerJoin is the left-deep inner-join chain.
	OpInnerJoin Operator = integrate.InnerJoin{}
	// OpUnion is the plain deduplicated outer union.
	OpUnion Operator = integrate.Union{}
)

// GenerateQueryTable fabricates a query table from a free-text prompt —
// the GPT-3 substitute of the paper's Fig. 5. Deterministic per seed.
func GenerateQueryTable(prompt string, rows, cols int, seed int64) (*Table, error) {
	return synth.GenerateQueryTable(prompt, rows, cols, seed)
}

// SyntheticLakeOptions configures GenerateSyntheticLake.
type SyntheticLakeOptions = synth.LakeOptions

// SyntheticLake is a generated lake with discovery/alignment ground truth.
type SyntheticLake = synth.Lake

// GenerateSyntheticLake builds a synthetic open-data lake with ground
// truth (unionable families, joinable companions, noise), used by the
// benchmark harness and available for downstream evaluation.
func GenerateSyntheticLake(opts SyntheticLakeOptions) *SyntheticLake {
	return synth.GenerateLake(opts)
}

// IncrementalFD maintains a Full Disjunction as tuples arrive, retaining
// the closure state so that late-arriving tables still connect through
// tuples an earlier result had subsumed (the Fig. 8 t13 situation).
type IncrementalFD = fd.Incremental

// NewIncrementalFD starts an incremental Full Disjunction over an
// integration schema, optionally seeded with aligned tuples.
func NewIncrementalFD(schema []string, initial []Tuple) *IncrementalFD {
	return fd.NewIncremental(schema, initial)
}
