package dialite_test

import (
	"context"
	"math"
	"testing"

	dialite "repro"
	"repro/internal/paperdata"
)

func TestPublicTopCorrelations(t *testing.T) {
	fig3 := paperdata.Fig3Expected()
	pairs, err := dialite.TopCorrelations(fig3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if math.Abs(math.Round(pairs[0].R*10)/10-0.9) > 1e-9 {
		t.Errorf("strongest correlation = %v, want 0.9", pairs[0].R)
	}
	m, err := dialite.CorrelationMatrix(fig3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 {
		t.Errorf("matrix rows = %d", m.NumRows())
	}
}

func TestPublicLearnedERMatcher(t *testing.T) {
	k := dialite.DemoKB()
	model, err := dialite.TrainERMatcher(dialite.DemoERTrainingPairs(k), dialite.ERTrainOptions{Knowledge: k})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dialite.ResolveWithModel(context.Background(), paperdata.Fig8bExpected(), model, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved.NumRows() != 2 {
		t.Errorf("learned ER via facade = %d entities, want 2", res.Resolved.NumRows())
	}
}

func TestPublicAutoMatcher(t *testing.T) {
	var m dialite.Matcher = dialite.AutoMatcher{Knowledge: dialite.DemoKB()}
	align, err := m.Align(paperdata.VaccineSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(align.Schema) != 3 {
		t.Errorf("auto matcher schema = %v", align.Schema)
	}
	// The auto matcher plugs into integration like any Matcher.
	p, err := dialite.New(nil, dialite.Config{Knowledge: dialite.DemoKB()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Integrate(context.Background(), dialite.IntegrateRequest{Tables: paperdata.VaccineSet(), Matcher: m})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8bExpected()
	got := resp.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Errorf("auto-matched integration != Fig. 8(b):\n%s", resp.Table)
	}
}

func TestPublicDefaultMethods(t *testing.T) {
	if len(dialite.DefaultMethods) != 2 {
		t.Errorf("DefaultMethods = %v", dialite.DefaultMethods)
	}
}

func TestPublicIncrementalFD(t *testing.T) {
	// Build an incremental FD through the public API: two fragments of one
	// entity connect through a shared key.
	inc := dialite.NewIncrementalFD([]string{"K", "A", "B"}, nil)
	inc.Add([]dialite.Tuple{
		{Values: []dialite.Value{dialite.String("k"), dialite.Int(1), dialite.ProducedNull()}, Prov: []string{"r1"}},
	})
	inc.Add([]dialite.Tuple{
		{Values: []dialite.Value{dialite.String("k"), dialite.ProducedNull(), dialite.Int(2)}, Prov: []string{"r2"}},
	})
	out := inc.Result()
	if len(out) != 1 {
		t.Fatalf("incremental result = %d tuples, want 1 merged", len(out))
	}
	if out[0].Values[1].IntVal() != 1 || out[0].Values[2].IntVal() != 2 {
		t.Errorf("merged tuple = %v", out[0].Values)
	}
	if len(out[0].Prov) != 2 {
		t.Errorf("merged provenance = %v", out[0].Prov)
	}
}
