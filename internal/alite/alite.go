// Package alite ties together ALITE's two halves — holistic schema
// matching (package schemamatch) and Full Disjunction (package fd) — into
// the integration system DIALITE applies to a discovered integration set
// (Khatiwada et al., VLDB 2022): columns get integration IDs, the tables
// are outer-unioned onto the integration schema, and the FD produces the
// integrated table with maximally-connected tuples and provenance.
package alite

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/fd"
	"repro/internal/kb"
	"repro/internal/schemamatch"
	"repro/internal/table"
)

// RowIDFunc names source rows for provenance. The paper's figures use
// global IDs t1..t16; the default is "<table>:<row>".
type RowIDFunc func(tableName string, row int) string

// Options configures Integrate.
type Options struct {
	// Matcher aligns the integration set; nil uses the holistic matcher
	// with Knowledge.
	Matcher schemamatch.Matcher
	// Knowledge feeds semantic features to the default matcher; ignored
	// when Matcher is set.
	Knowledge *kb.KB
	// Workers > 0 computes the FD with the parallel algorithm.
	Workers int
	// RowIDs names source rows for provenance; nil uses the default.
	RowIDs RowIDFunc
	// WithProvenance adds the figures' TIDs column to the rendered table.
	WithProvenance bool
	// Dict optionally shares a value dictionary (usually the lake's) with
	// the FD closure, so cell interning is reused across integrations.
	Dict *table.Dict
}

// Result is an integrated table plus the intermediate artifacts a DIALITE
// user can inspect after the align-and-integrate stage.
type Result struct {
	// Table is the integrated table (with a TIDs column when requested).
	Table *table.Table
	// Schema holds the integration IDs.
	Schema []string
	// Tuples are the FD output tuples with provenance.
	Tuples []fd.Tuple
	// Alignment is the column-to-integration-ID assignment used.
	Alignment schemamatch.Alignment
}

// Integrate aligns and integrates an integration set with ALITE.
// Cancelling ctx aborts the Full Disjunction mid-closure with ctx.Err();
// an uncancelled call is byte-identical to running without a context.
func Integrate(ctx context.Context, tables []*table.Table, opts Options) (*Result, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("alite: empty integration set")
	}
	matcher := opts.Matcher
	if matcher == nil {
		matcher = schemamatch.Holistic{Knowledge: opts.Knowledge}
	}
	align, err := matcher.Align(tables)
	if err != nil {
		return nil, fmt.Errorf("alite: align: %w", err)
	}
	in, err := BuildInput(tables, align, opts.RowIDs)
	if err != nil {
		return nil, err
	}
	in.Dict = opts.Dict
	var tuples []fd.Tuple
	if opts.Workers > 0 {
		tuples, err = fd.ParallelCtx(ctx, in, opts.Workers)
	} else {
		tuples, err = fd.ALITECtx(ctx, in)
	}
	if err != nil {
		return nil, err
	}
	name := integratedName(tables)
	return &Result{
		Table:     fd.ToTable(name, in.Schema, tuples, opts.WithProvenance),
		Schema:    in.Schema,
		Tuples:    tuples,
		Alignment: align,
	}, nil
}

// BuildInput outer-unions the tables onto the alignment's integration
// schema, attaching provenance row IDs.
func BuildInput(tables []*table.Table, align schemamatch.Alignment, rowIDs RowIDFunc) (fd.Input, error) {
	rels := make([]fd.Relation, 0, len(tables))
	for ti, t := range tables {
		colPos := make([]int, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			p, ok := align.PositionOf(ti, c)
			if !ok {
				return fd.Input{}, fmt.Errorf("alite: alignment misses column %d of table %q", c, t.Name)
			}
			colPos[c] = p
		}
		rel := fd.Relation{Table: t, ColPos: colPos}
		if rowIDs != nil {
			ids := make([]string, t.NumRows())
			for r := range ids {
				ids[r] = rowIDs(t.Name, r)
			}
			rel.RowIDs = ids
		}
		rels = append(rels, rel)
	}
	in, err := fd.OuterUnion(align.Schema, rels)
	if err != nil {
		return fd.Input{}, fmt.Errorf("alite: outer union: %w", err)
	}
	return in, nil
}

// integratedName renders "FD(T1,T2,T3)" like the paper's figures.
func integratedName(tables []*table.Table) string {
	name := "FD("
	for i, t := range tables {
		if i > 0 {
			name += ","
		}
		if t.Name != "" {
			name += t.Name
		} else {
			name += "R" + strconv.Itoa(i+1)
		}
	}
	return name + ")"
}
