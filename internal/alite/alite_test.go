package alite

import (
	"context"
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/schemamatch"
	"repro/internal/table"
)

func paperRowIDs(tableName string, row int) string {
	return paperdata.TupleID(tableName, row)
}

func TestIntegrateFig3EndToEnd(t *testing.T) {
	// Full ALITE: holistic matching + FD over the paper's three tables,
	// compared against Fig. 3 including null kinds.
	res, err := Integrate(context.Background(), []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}, Options{
		Knowledge: kb.Demo(),
		RowIDs:    paperRowIDs,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig3Expected()
	got := res.Table.Clone()
	got.Columns = want.Columns // integration IDs carry the same headers here
	if !got.EqualUnordered(want) {
		t.Fatalf("ALITE integration != Fig. 3:\ngot:\n%s\nwant:\n%s", res.Table, want)
	}
	if len(res.Schema) != 5 {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestIntegrateFig8bEndToEnd(t *testing.T) {
	res, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{
		Knowledge: kb.Demo(),
		RowIDs:    paperRowIDs,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8bExpected()
	got := res.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Fatalf("ALITE != Fig. 8(b):\ngot:\n%s\nwant:\n%s", res.Table, want)
	}
	// Provenance sets match the figure.
	wantProv := paperdata.Fig8bProvenance()
	vacPos := -1
	for i, s := range res.Schema {
		if s == paperdata.ColVaccine {
			vacPos = i
		}
	}
	if vacPos < 0 {
		t.Fatalf("no Vaccine integration ID in %v", res.Schema)
	}
	for _, tu := range res.Tuples {
		vac := tu.Values[vacPos].String()
		want := wantProv[vac]
		if len(tu.Prov) != len(want) {
			t.Errorf("prov of %s = %v, want %v", vac, tu.Prov, want)
			continue
		}
		for i := range want {
			if tu.Prov[i] != want[i] {
				t.Errorf("prov of %s = %v, want %v", vac, tu.Prov, want)
			}
		}
	}
}

func TestIntegrateWithProvenanceColumn(t *testing.T) {
	res, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{
		Knowledge:      kb.Demo(),
		RowIDs:         paperRowIDs,
		WithProvenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Columns[0] != "TIDs" {
		t.Fatalf("first column = %q, want TIDs", res.Table.Columns[0])
	}
	found := false
	for r := 0; r < res.Table.NumRows(); r++ {
		if res.Table.Cell(r, 0).Str() == "{t13, t15}" {
			found = true
		}
	}
	if !found {
		t.Error("f13's TIDs {t13, t15} not rendered")
	}
	if !strings.HasPrefix(res.Table.Name, "FD(") {
		t.Errorf("integrated name = %q", res.Table.Name)
	}
}

func TestIntegrateParallelMatchesSequential(t *testing.T) {
	seq, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{Knowledge: kb.Demo(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Table.EqualUnordered(par.Table) {
		t.Error("parallel integration differs from sequential")
	}
}

func TestIntegrateWithOracleMatcher(t *testing.T) {
	oracle := schemamatch.Oracle{Label: func(name string, col int) string {
		switch name {
		case "T4":
			return []string{"vaccine", "approver"}[col]
		case "T5":
			return []string{"country", "approver"}[col]
		case "T6":
			return []string{"vaccine", "country"}[col]
		}
		return ""
	}}
	res, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{Matcher: oracle, RowIDs: paperRowIDs})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8bExpected()
	got := res.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Fatalf("oracle-matched integration != Fig. 8(b):\n%s", res.Table)
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := Integrate(context.Background(), nil, Options{}); err == nil {
		t.Error("empty integration set must error")
	}
}

func TestDefaultRowIDs(t *testing.T) {
	res, err := Integrate(context.Background(), paperdata.VaccineSet(), Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	foundDefault := false
	for _, tu := range res.Tuples {
		for _, p := range tu.Prov {
			if strings.Contains(p, ":") {
				foundDefault = true
			}
		}
	}
	if !foundDefault {
		t.Error("default provenance IDs must be table:row")
	}
}
