// Package analyze implements DIALITE's downstream analytics stage (paper
// §2.3, Example 3): null-aware aggregation, group-by, extremes, Pearson
// correlation, and table profiling over integrated tables. Integrated
// open-data tables carry values like "63%", "1.4M" or "263k"; a numeric
// coercion layer interprets those the way the demo's analyst would, so the
// paper's correlations (0.16 between vaccination and death rates, 0.9
// between cases and vaccination) compute directly from the integrated
// table of Fig. 3.
package analyze

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Coerce interprets a cell numerically. Ints and floats pass through;
// strings are parsed after stripping currency symbols, commas and spaces,
// honoring a trailing percent sign (stripped) or magnitude suffix
// (k=1e3, M=1e6, B/G=1e9). Nulls and non-numeric strings fail.
func Coerce(v table.Value) (float64, bool) {
	if f, ok := v.AsFloat(); ok {
		return f, true
	}
	if v.Kind() != table.String {
		return 0, false
	}
	s := strings.TrimSpace(v.Str())
	s = strings.ReplaceAll(s, ",", "")
	s = strings.ReplaceAll(s, " ", "")
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimPrefix(s, "€")
	if s == "" {
		return 0, false
	}
	mult := 1.0
	switch s[len(s)-1] {
	case '%':
		s = s[:len(s)-1]
	case 'k', 'K':
		mult = 1e3
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1e6
		s = s[:len(s)-1]
	case 'b', 'B', 'g', 'G':
		mult = 1e9
		s = s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f * mult, true
}

// Stats summarizes one column numerically.
type Stats struct {
	Rows    int // total rows
	NonNull int // non-null cells
	Numeric int // cells that coerced to numbers
	Sum     float64
	Mean    float64
	Min     float64
	Max     float64
	Std     float64 // population standard deviation
}

// ColumnStats computes Stats for column col.
func ColumnStats(t *table.Table, col int) (Stats, error) {
	if col < 0 || col >= t.NumCols() {
		return Stats{}, fmt.Errorf("analyze: column %d out of range for table %q", col, t.Name)
	}
	s := Stats{Rows: t.NumRows(), Min: math.Inf(1), Max: math.Inf(-1)}
	var xs []float64
	for _, row := range t.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		s.NonNull++
		f, ok := Coerce(v)
		if !ok {
			continue
		}
		s.Numeric++
		s.Sum += f
		xs = append(xs, f)
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	if s.Numeric == 0 {
		s.Min, s.Max = 0, 0
		return s, nil
	}
	s.Mean = s.Sum / float64(s.Numeric)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.Numeric))
	return s, nil
}

// Pearson computes the Pearson correlation coefficient between two columns
// over the rows where both coerce to numbers (pairwise-complete, exactly
// how the demo's analyst computes over an integrated table with nulls).
// It also reports how many rows contributed. Fewer than two complete pairs
// or a zero-variance side is an error.
func Pearson(t *table.Table, colA, colB int) (r float64, n int, err error) {
	if colA < 0 || colA >= t.NumCols() || colB < 0 || colB >= t.NumCols() {
		return 0, 0, fmt.Errorf("analyze: column out of range for table %q", t.Name)
	}
	var xs, ys []float64
	for _, row := range t.Rows {
		x, okx := Coerce(row[colA])
		y, oky := Coerce(row[colB])
		if okx && oky {
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	n = len(xs)
	if n < 2 {
		return 0, n, fmt.Errorf("analyze: only %d complete pairs between columns %d and %d", n, colA, colB)
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, n, fmt.Errorf("analyze: zero variance in correlation input")
	}
	return sxy / math.Sqrt(sxx*syy), n, nil
}

// Agg enumerates group-by aggregate functions.
type Agg int

// The supported aggregates.
const (
	Count Agg = iota
	Sum
	Avg
	Min
	Max
)

// String returns the aggregate's SQL-ish name.
func (a Agg) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "agg?"
	}
}

// GroupBy groups rows by the rendering of keyCol and aggregates the
// coerced values of valCol. Null keys group under "±". Count counts
// non-null values; the other aggregates skip cells that do not coerce.
// The result has columns (key, "<agg>(<valHeader>)") and is sorted by key.
func GroupBy(t *table.Table, keyCol, valCol int, agg Agg) (*table.Table, error) {
	if keyCol < 0 || keyCol >= t.NumCols() || valCol < 0 || valCol >= t.NumCols() {
		return nil, fmt.Errorf("analyze: column out of range for table %q", t.Name)
	}
	type acc struct {
		count    int
		sum      float64
		min, max float64
		any      bool
	}
	groups := make(map[string]*acc)
	for _, row := range t.Rows {
		key := row[keyCol].String()
		g := groups[key]
		if g == nil {
			g = &acc{min: math.Inf(1), max: math.Inf(-1)}
			groups[key] = g
		}
		v := row[valCol]
		if v.IsNull() {
			continue
		}
		if agg == Count {
			g.count++
			continue
		}
		f, ok := Coerce(v)
		if !ok {
			continue
		}
		g.any = true
		g.count++
		g.sum += f
		if f < g.min {
			g.min = f
		}
		if f > g.max {
			g.max = f
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := table.New(
		fmt.Sprintf("%s by %s", agg, t.Columns[keyCol]),
		t.Columns[keyCol],
		fmt.Sprintf("%s(%s)", agg, t.Columns[valCol]),
	)
	for _, k := range keys {
		g := groups[k]
		var v table.Value
		switch agg {
		case Count:
			v = table.IntValue(int64(g.count))
		case Sum:
			v = table.FloatValue(g.sum)
		case Avg:
			if g.count == 0 {
				v = table.NullValue()
			} else {
				v = table.FloatValue(g.sum / float64(g.count))
			}
		case Min:
			if !g.any {
				v = table.NullValue()
			} else {
				v = table.FloatValue(g.min)
			}
		case Max:
			if !g.any {
				v = table.NullValue()
			} else {
				v = table.FloatValue(g.max)
			}
		default:
			return nil, fmt.Errorf("analyze: unknown aggregate %d", agg)
		}
		out.MustAddRow(table.StringValue(k), v)
	}
	return out, nil
}

// Extreme is one end of ExtremesBy.
type Extreme struct {
	Label string
	Value float64
}

// ExtremesBy finds the labels with the minimum and maximum coerced value —
// Example 3's "Boston is the city with the lowest vaccination rate and
// Toronto has the highest". Rows whose value does not coerce are skipped;
// ties keep the first in row order.
func ExtremesBy(t *table.Table, labelCol, valCol int) (min, max Extreme, err error) {
	if labelCol < 0 || labelCol >= t.NumCols() || valCol < 0 || valCol >= t.NumCols() {
		return Extreme{}, Extreme{}, fmt.Errorf("analyze: column out of range for table %q", t.Name)
	}
	found := false
	for _, row := range t.Rows {
		f, ok := Coerce(row[valCol])
		if !ok {
			continue
		}
		label := row[labelCol].String()
		if !found {
			min = Extreme{label, f}
			max = Extreme{label, f}
			found = true
			continue
		}
		if f < min.Value {
			min = Extreme{label, f}
		}
		if f > max.Value {
			max = Extreme{label, f}
		}
	}
	if !found {
		return Extreme{}, Extreme{}, fmt.Errorf("analyze: no numeric values in column %d of table %q", valCol, t.Name)
	}
	return min, max, nil
}

// Profile summarizes every column of a table: non-null count, numeric
// count, distinct count and null fraction. DIALITE shows this after each
// stage so users can validate intermediate results.
func Profile(t *table.Table) *table.Table {
	out := table.New(t.Name+" profile", "column", "non_null", "numeric", "distinct", "null_frac")
	for c := 0; c < t.NumCols(); c++ {
		nonNull, numeric := 0, 0
		distinct := make(map[string]bool)
		for _, row := range t.Rows {
			v := row[c]
			if v.IsNull() {
				continue
			}
			nonNull++
			distinct[v.Key()] = true
			if _, ok := Coerce(v); ok {
				numeric++
			}
		}
		frac := 0.0
		if t.NumRows() > 0 {
			frac = float64(t.NumRows()-nonNull) / float64(t.NumRows())
		}
		out.MustAddRow(
			table.StringValue(t.Columns[c]),
			table.IntValue(int64(nonNull)),
			table.IntValue(int64(numeric)),
			table.IntValue(int64(len(distinct))),
			table.FloatValue(math.Round(frac*1000)/1000),
		)
	}
	return out
}
