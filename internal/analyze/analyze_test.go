package analyze

import (
	"math"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/table"
)

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   table.Value
		want float64
		ok   bool
	}{
		{table.IntValue(42), 42, true},
		{table.FloatValue(2.5), 2.5, true},
		{table.StringValue("63%"), 63, true},
		{table.StringValue("1.4M"), 1.4e6, true},
		{table.StringValue("263k"), 263e3, true},
		{table.StringValue("2B"), 2e9, true},
		{table.StringValue("1,234"), 1234, true},
		{table.StringValue("$99"), 99, true},
		{table.StringValue("Berlin"), 0, false},
		{table.NullValue(), 0, false},
		{table.ProducedNull(), 0, false},
		{table.StringValue(""), 0, false},
		{table.StringValue("%"), 0, false},
		{table.BoolValue(true), 0, false},
	}
	for _, c := range cases {
		got, ok := Coerce(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-9) {
			t.Errorf("Coerce(%v) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestExample3Correlations(t *testing.T) {
	// The paper's Example 3, computed over the Fig. 3 integrated table:
	// corr(vaccination rate, death rate) = 0.16 and
	// corr(total cases, vaccination rate) = 0.9.
	fig3 := paperdata.Fig3Expected()
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	death, _ := fig3.ColumnIndex(paperdata.ColDeathRate)
	cases, _ := fig3.ColumnIndex(paperdata.ColCases)

	r1, n1, err := Pearson(fig3, vacc, death)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 3 {
		t.Errorf("vacc/death pairs = %d, want 3", n1)
	}
	if math.Abs(math.Round(r1*100)/100-0.16) > 1e-9 {
		t.Errorf("corr(vacc,death) = %v, want 0.16 at 2dp", r1)
	}
	r2, n2, err := Pearson(fig3, cases, vacc)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 3 {
		t.Errorf("cases/vacc pairs = %d, want 3", n2)
	}
	if math.Abs(math.Round(r2*10)/10-0.9) > 1e-9 {
		t.Errorf("corr(cases,vacc) = %v, want 0.9 at 1dp", r2)
	}
}

func TestExample3Extremes(t *testing.T) {
	// "Boston is the city with the lowest vaccination rate and Toronto has
	// the highest."
	fig3 := paperdata.Fig3Expected()
	city, _ := fig3.ColumnIndex(paperdata.ColCity)
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	min, max, err := ExtremesBy(fig3, city, vacc)
	if err != nil {
		t.Fatal(err)
	}
	if min.Label != "Boston" || min.Value != 62 {
		t.Errorf("min = %+v, want Boston/62", min)
	}
	if max.Label != "Toronto" || max.Value != 83 {
		t.Errorf("max = %+v, want Toronto/83", max)
	}
}

func TestPearsonErrors(t *testing.T) {
	tb := table.New("t", "a", "b")
	tb.MustAddRow(table.IntValue(1), table.IntValue(1))
	if _, _, err := Pearson(tb, 0, 1); err == nil {
		t.Error("one pair must error")
	}
	tb.MustAddRow(table.IntValue(1), table.IntValue(2))
	if _, _, err := Pearson(tb, 0, 1); err == nil {
		t.Error("zero variance must error")
	}
	if _, _, err := Pearson(tb, 0, 9); err == nil {
		t.Error("out of range must error")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	tb := table.New("t", "x", "y", "z")
	for i := 1; i <= 5; i++ {
		tb.MustAddRow(table.IntValue(int64(i)), table.IntValue(int64(2*i)), table.IntValue(int64(-i)))
	}
	r, n, err := Pearson(tb, 0, 1)
	if err != nil || n != 5 || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect corr = %v (%d), err %v", r, n, err)
	}
	r, _, err = Pearson(tb, 0, 2)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorr = %v", r)
	}
}

func TestColumnStats(t *testing.T) {
	tb := table.New("t", "v")
	tb.MustAddRow(table.StringValue("10"))
	tb.MustAddRow(table.StringValue("20%"))
	tb.MustAddRow(table.NullValue())
	tb.MustAddRow(table.StringValue("not-a-number"))
	s, err := ColumnStats(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.NonNull != 3 || s.Numeric != 2 {
		t.Errorf("counts = %+v", s)
	}
	if s.Sum != 30 || s.Mean != 15 || s.Min != 10 || s.Max != 20 || s.Std != 5 {
		t.Errorf("stats = %+v", s)
	}
	if _, err := ColumnStats(tb, 3); err == nil {
		t.Error("out of range must error")
	}
	empty, err := ColumnStats(table.New("e", "x"), 0)
	if err != nil || empty.Numeric != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("empty stats = %+v, err %v", empty, err)
	}
}

func TestGroupBy(t *testing.T) {
	tb := table.New("t", "Country", "Rate")
	tb.MustAddRow(table.StringValue("Germany"), table.IntValue(63))
	tb.MustAddRow(table.StringValue("Germany"), table.IntValue(71))
	tb.MustAddRow(table.StringValue("Spain"), table.IntValue(82))
	tb.MustAddRow(table.StringValue("Spain"), table.NullValue())
	for _, c := range []struct {
		agg  Agg
		g    string
		want float64
	}{
		{Count, "Germany", 2}, {Count, "Spain", 1},
		{Sum, "Germany", 134}, {Avg, "Germany", 67},
		{Min, "Spain", 82}, {Max, "Germany", 71},
	} {
		out, err := GroupBy(tb, 0, 1, c.agg)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for r := 0; r < out.NumRows(); r++ {
			if out.Cell(r, 0).Str() == c.g {
				found = true
				got, _ := Coerce(out.Cell(r, 1))
				if got != c.want {
					t.Errorf("%v(%s) = %v, want %v", c.agg, c.g, got, c.want)
				}
			}
		}
		if !found {
			t.Errorf("group %s missing for %v", c.g, c.agg)
		}
	}
	if _, err := GroupBy(tb, 0, 9, Sum); err == nil {
		t.Error("out of range must error")
	}
}

func TestGroupByNullKeyAndAllNullGroup(t *testing.T) {
	tb := table.New("t", "k", "v")
	tb.MustAddRow(table.NullValue(), table.IntValue(1))
	tb.MustAddRow(table.StringValue("x"), table.StringValue("text"))
	out, err := GroupBy(tb, 0, 1, Avg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	// Group "x" has no coercible values -> null aggregate.
	for r := 0; r < out.NumRows(); r++ {
		if out.Cell(r, 0).Str() == "x" && !out.Cell(r, 1).IsNull() {
			t.Error("all-text group must aggregate to null")
		}
	}
}

func TestAggString(t *testing.T) {
	names := map[Agg]string{Count: "count", Sum: "sum", Avg: "avg", Min: "min", Max: "max", Agg(99): "agg?"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("Agg(%d).String() = %q", a, a.String())
		}
	}
}

func TestExtremesByErrors(t *testing.T) {
	tb := table.New("t", "l", "v")
	tb.MustAddRow(table.StringValue("a"), table.StringValue("text"))
	if _, _, err := ExtremesBy(tb, 0, 1); err == nil {
		t.Error("no numeric values must error")
	}
	if _, _, err := ExtremesBy(tb, 0, 9); err == nil {
		t.Error("out of range must error")
	}
}

func TestProfile(t *testing.T) {
	fig3 := paperdata.Fig3Expected()
	p := Profile(fig3)
	if p.NumRows() != fig3.NumCols() {
		t.Fatalf("profile rows = %d", p.NumRows())
	}
	// City column: 7 non-null, 0 numeric, 7 distinct, 0 null fraction.
	for r := 0; r < p.NumRows(); r++ {
		if p.Cell(r, 0).Str() == paperdata.ColCity {
			if p.Cell(r, 1).IntVal() != 7 || p.Cell(r, 3).IntVal() != 7 {
				t.Errorf("city profile row = %v", p.Rows[r])
			}
		}
		if p.Cell(r, 0).Str() == paperdata.ColCases {
			if p.Cell(r, 1).IntVal() != 4 || p.Cell(r, 2).IntVal() != 4 {
				t.Errorf("cases profile row = %v", p.Rows[r])
			}
		}
	}
}
