package analyze

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
)

// CorrelationPair is one scored column pair.
type CorrelationPair struct {
	ColA, ColB int     // column indices, ColA < ColB
	R          float64 // Pearson correlation
	N          int     // complete pairs that contributed
}

// minPairsForCorrelation is the minimum number of complete pairs for a
// correlation to be reported by the exploration helpers.
const minPairsForCorrelation = 3

// TopCorrelations scans every pair of numeric-coercible columns and
// returns the pairs ranked by |r| descending (ties by column order),
// truncated to k (k<=0 returns all). It is the COCOA-style
// correlation-exploration step the paper's analyze stage motivates: after
// integration, the user looks for relationships that span the source
// tables — Example 3's vaccination/death-rate finding, automated.
func TopCorrelations(t *table.Table, k int) ([]CorrelationPair, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("analyze: nil or zero-column table")
	}
	numeric := numericColumns(t)
	var out []CorrelationPair
	for i := 0; i < len(numeric); i++ {
		for j := i + 1; j < len(numeric); j++ {
			a, b := numeric[i], numeric[j]
			r, n, err := Pearson(t, a, b)
			if err != nil || n < minPairsForCorrelation {
				continue
			}
			out = append(out, CorrelationPair{ColA: a, ColB: b, R: r, N: n})
		}
	}
	sort.Slice(out, func(x, y int) bool {
		ax, ay := math.Abs(out[x].R), math.Abs(out[y].R)
		if ax != ay {
			return ax > ay
		}
		if out[x].ColA != out[y].ColA {
			return out[x].ColA < out[y].ColA
		}
		return out[x].ColB < out[y].ColB
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// CorrelationMatrix renders the pairwise Pearson correlations of the
// numeric-coercible columns as a table (first column names the row
// attribute). Cells without enough complete pairs are nulls.
func CorrelationMatrix(t *table.Table) (*table.Table, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("analyze: nil or zero-column table")
	}
	numeric := numericColumns(t)
	if len(numeric) == 0 {
		return nil, fmt.Errorf("analyze: table %q has no numeric columns", t.Name)
	}
	headers := []string{""}
	for _, c := range numeric {
		headers = append(headers, t.Columns[c])
	}
	out := table.New(t.Name+" correlations", headers...)
	for _, a := range numeric {
		row := make([]table.Value, 0, len(numeric)+1)
		row = append(row, table.StringValue(t.Columns[a]))
		for _, b := range numeric {
			if a == b {
				row = append(row, table.FloatValue(1))
				continue
			}
			r, n, err := Pearson(t, a, b)
			if err != nil || n < minPairsForCorrelation {
				row = append(row, table.NullValue())
				continue
			}
			row = append(row, table.FloatValue(math.Round(r*1000)/1000))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// numericColumns lists columns where at least two cells coerce to numbers.
func numericColumns(t *table.Table) []int {
	var out []int
	for c := 0; c < t.NumCols(); c++ {
		count := 0
		for _, row := range t.Rows {
			if _, ok := Coerce(row[c]); ok {
				count++
				if count >= 2 {
					break
				}
			}
		}
		if count >= 2 {
			out = append(out, c)
		}
	}
	return out
}
