package analyze

import (
	"math"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/table"
)

func TestTopCorrelationsOnFig3(t *testing.T) {
	fig3 := paperdata.Fig3Expected()
	got, err := TopCorrelations(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("pairs = %d, want 3 (vacc/cases/death choose 2)", len(got))
	}
	// The strongest correlation in Example 3 is cases~vaccination (0.9).
	cases, _ := fig3.ColumnIndex(paperdata.ColCases)
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	top := got[0]
	if !(top.ColA == vacc && top.ColB == cases || top.ColA == cases && top.ColB == vacc) {
		t.Errorf("top pair = %+v, want cases~vaccination", top)
	}
	if math.Abs(math.Round(top.R*10)/10-0.9) > 1e-9 {
		t.Errorf("top |r| = %v, want 0.9", top.R)
	}
	// Truncation.
	one, err := TopCorrelations(fig3, 1)
	if err != nil || len(one) != 1 {
		t.Errorf("top-1 = %v (%v)", one, err)
	}
}

func TestTopCorrelationsSkipsShortPairs(t *testing.T) {
	tb := table.New("t", "a", "b")
	tb.MustAddRow(table.IntValue(1), table.IntValue(2))
	tb.MustAddRow(table.IntValue(2), table.IntValue(4))
	// Only two complete pairs: below the minimum, no output.
	got, err := TopCorrelations(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("short pairs must be skipped: %v", got)
	}
	if _, err := TopCorrelations(nil, 0); err == nil {
		t.Error("nil table must error")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	fig3 := paperdata.Fig3Expected()
	m, err := CorrelationMatrix(fig3)
	if err != nil {
		t.Fatal(err)
	}
	// Three numeric columns -> 3 rows x 4 cols (label + 3).
	if m.NumRows() != 3 || m.NumCols() != 4 {
		t.Fatalf("matrix = %dx%d", m.NumRows(), m.NumCols())
	}
	// Diagonal is 1.
	for r := 0; r < m.NumRows(); r++ {
		if v := m.Cell(r, r+1); v.Kind() != table.Float || v.FloatVal() != 1 {
			t.Errorf("diagonal[%d] = %v", r, v)
		}
	}
	// Symmetric off-diagonal values.
	if !m.Cell(0, 3).Equal(m.Cell(2, 1)) {
		t.Error("matrix must be symmetric")
	}
	// No numeric columns is an error.
	text := table.New("t", "x")
	text.MustAddRow(table.StringValue("a"))
	if _, err := CorrelationMatrix(text); err == nil {
		t.Error("all-text table must error")
	}
}

func TestNumericColumns(t *testing.T) {
	tb := table.New("t", "text", "num", "pct", "single")
	tb.MustAddRow(table.StringValue("a"), table.IntValue(1), table.StringValue("10%"), table.IntValue(5))
	tb.MustAddRow(table.StringValue("b"), table.IntValue(2), table.StringValue("20%"), table.NullValue())
	got := numericColumns(tb)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("numericColumns = %v, want [1 2]", got)
	}
}
