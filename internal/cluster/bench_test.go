package cluster_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/discovery"
)

// BenchmarkClusterDiscovery measures a full coordinator discovery fan-out —
// all diff methods scattered over three HTTP shard servers, merged, and the
// integration set's tables resolved — against in-process httptest shards.
// It is the cluster-mode counterpart of the in-process sharded discovery
// benchmarks: the delta between the two is the serialization + HTTP cost of
// the scatter-gather seam.
func BenchmarkClusterDiscovery(b *testing.B) {
	pool := diffPool(91, 12)
	tc := startCluster(b, pool, 3)
	reg := discovery.NewRegistry()
	query := difftest.DiffTable(rand.New(rand.NewSource(17)), "benchq")
	ctx := context.Background()

	// One warm-up fan-out so connection setup is off the clock.
	if _, _, serrs, err := discovery.Discover(ctx, reg, tc.coord, query, 0, 5, difftest.DiffMethods); err != nil || len(serrs) > 0 {
		b.Fatalf("warm-up fan-out failed: err=%v shardErrs=%v", err, serrs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perMethod, _, serrs, err := discovery.Discover(ctx, reg, tc.coord, query, 0, 5, difftest.DiffMethods)
		if err != nil {
			b.Fatal(err)
		}
		if len(serrs) > 0 {
			b.Fatalf("benchmark run went partial: %v", serrs)
		}
		if len(perMethod) != len(difftest.DiffMethods) {
			b.Fatalf("got %d method result sets, want %d", len(perMethod), len(difftest.DiffMethods))
		}
	}
}
