package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/discovery"
	"repro/internal/serve"
)

// ShardError is the typed failure of one coordinator-to-shard call. It
// carries the shard's HTTP status (0 for a transport failure — connection
// refused, reset, DNS) and maps it onto the coordinator's own response
// semantics via HTTPStatus: a shard shedding under load (429) sheds the
// coordinator request, a shard timeout (504) is a coordinator timeout, a
// down or unavailable shard (transport, 503) degrades the coordinator
// (503), and a shard-side client error (400/404/413) passes through — the
// coordinator merely relayed a bad request. Errors from down/unavailable
// shards also match discovery.ErrShardUnavailable under errors.Is, which
// is what lets partial discovery tolerate them.
type ShardError struct {
	// Shard and Addr identify the failing shard.
	Shard int
	Addr  string
	// Op is the logical operation ("discover", "add", "epoch", ...).
	Op string
	// Status is the HTTP status the shard answered, or 0 when the call
	// never completed (transport failure or per-call deadline).
	Status int
	// RetryAfter is the shard's Retry-After header, if it sent one.
	RetryAfter string
	// Err is the underlying cause: the shard's structured error message,
	// or the transport error.
	Err error
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: shard %d (%s) %s: status %d: %v", e.Shard, e.Addr, e.Op, e.Status, e.Err)
	}
	return fmt.Sprintf("cluster: shard %d (%s) %s: %v", e.Shard, e.Addr, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Is makes errors wrapping a down-shard ShardError match
// discovery.ErrShardUnavailable: transport failures, per-call deadline
// expiries, and shard 503s (warming, degraded store, shutting down) all
// mean "this shard cannot answer right now", which partial reads tolerate.
// A 429 is deliberately excluded — the shard is alive but overloaded, and
// dropping its results would silently degrade answers exactly when load is
// highest; the coordinator sheds instead. A 504 is excluded too: the query
// was too slow, not the shard absent.
func (e *ShardError) Is(target error) bool {
	if target != discovery.ErrShardUnavailable {
		return false
	}
	return e.Status == 0 || e.Status == http.StatusServiceUnavailable
}

// HTTPStatus maps the shard failure onto the coordinator's response —
// consumed structurally by serve.statusFor.
func (e *ShardError) HTTPStatus() int {
	switch {
	case e.Status == 0, e.Status == http.StatusServiceUnavailable:
		return http.StatusServiceUnavailable
	case e.Status == http.StatusGatewayTimeout:
		return http.StatusGatewayTimeout
	case e.Status >= 400 && e.Status < 500:
		return e.Status
	default:
		return http.StatusServiceUnavailable
	}
}

// RetryAfterHint passes the shard's own Retry-After through to the
// coordinator's client when the shard sent one, and supplies a short
// default for down shards — consumed structurally by serve's handler.
func (e *ShardError) RetryAfterHint() string {
	if e.RetryAfter != "" {
		return e.RetryAfter
	}
	if e.HTTPStatus() == http.StatusServiceUnavailable {
		return "1"
	}
	return ""
}

// shardClient is one shard's HTTP transport: a shared pooled client
// (connection reuse across calls and shards), per-call deadlines derived
// from the request context and capped by the configured call timeout, and
// bounded backoff retries for idempotent reads. Mutations are never
// retried — a timed-out Add may have been applied, and blind re-execution
// would turn one fault into a duplicate-name error.
type shardClient struct {
	shard int
	addr  string // base URL, e.g. "http://127.0.0.1:7001"
	hc    *http.Client

	callTimeout time.Duration
	retries     int
	backoff     time.Duration

	// Fan-out metrics behind the coordinator's /metrics: logical calls,
	// calls that failed after retries, retry attempts, and round-trip
	// latency (per logical call, retries included — it is what the
	// fan-out felt).
	calls      atomic.Uint64
	errs       atomic.Uint64
	retryCount atomic.Uint64
	lat        serve.Latency
}

// errorBody mirrors serve's structured error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// do runs one logical call against the shard: marshal body (nil means no
// body), POST/GET path, decode a 200 into out (json.Number preserved, so
// int64 cells and float64 scores round-trip bit-exactly), map any failure
// to a *ShardError. Idempotent calls retry transport failures and 503s
// with linear backoff; the caller's ctx bounds the whole loop and each
// attempt is additionally capped by callTimeout.
func (c *shardClient) do(ctx context.Context, op, method, path string, body, out any) error {
	return c.doRetry(ctx, op, method, path, body, out, false)
}

func (c *shardClient) doIdempotent(ctx context.Context, op, method, path string, body, out any) error {
	return c.doRetry(ctx, op, method, path, body, out, true)
}

func (c *shardClient) doRetry(ctx context.Context, op, method, path string, body, out any, idempotent bool) error {
	c.calls.Add(1)
	start := time.Now()
	defer func() { c.lat.Observe(time.Since(start)) }()
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			c.errs.Add(1)
			return &ShardError{Shard: c.shard, Addr: c.addr, Op: op, Err: fmt.Errorf("encode request: %w", err)}
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var last *ShardError
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retryCount.Add(1)
			select {
			case <-ctx.Done():
				c.errs.Add(1)
				last.Err = fmt.Errorf("%w (retries abandoned: %v)", last.Err, ctx.Err())
				return last
			case <-time.After(c.backoff * time.Duration(attempt)):
			}
		}
		serr := c.attempt(ctx, op, method, path, payload, out)
		if serr == nil {
			return nil
		}
		last = serr
		if !retryable(serr) {
			break
		}
	}
	c.errs.Add(1)
	return last
}

// retryable: transport failures and 503 (warming shard, degraded store)
// are worth a bounded retry; everything else — 429 (retrying adds load
// exactly when the shard is shedding it), 504 (the work is the problem,
// not the connection), 4xx (the request is wrong) — is not.
func retryable(e *ShardError) bool {
	return e.Status == 0 || e.Status == http.StatusServiceUnavailable
}

// attempt is one HTTP round trip.
func (c *shardClient) attempt(ctx context.Context, op, method, path string, payload []byte, out any) *ShardError {
	ctx, cancel := context.WithTimeout(ctx, c.callTimeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.addr+path, rd)
	if err != nil {
		return &ShardError{Shard: c.shard, Addr: c.addr, Op: op, Err: err}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &ShardError{Shard: c.shard, Addr: c.addr, Op: op, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		serr := &ShardError{Shard: c.shard, Addr: c.addr, Op: op, Status: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
		var eb errorBody
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); jerr == nil && eb.Error != "" {
			serr.Err = fmt.Errorf("%s", eb.Error)
		} else {
			serr.Err = fmt.Errorf("%s", resp.Status)
		}
		return serr
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber() // int64 cells survive the round trip bit-exactly
	if err := dec.Decode(out); err != nil {
		return &ShardError{Shard: c.shard, Addr: c.addr, Op: op, Err: fmt.Errorf("decode response: %w", err)}
	}
	return nil
}

// Typed calls over do/doIdempotent. Reads are idempotent and retry;
// mutations never do.

func (c *shardClient) epochs(ctx context.Context) (serve.EpochResponse, error) {
	var out serve.EpochResponse
	err := c.doIdempotent(ctx, "epoch", http.MethodGet, "/v1/lake/epoch", nil, &out)
	return out, err
}

func (c *shardClient) health(ctx context.Context) (serve.HealthResponse, error) {
	var out serve.HealthResponse
	// No retries: health sampling wants the current answer, not a lucky one.
	err := c.do(ctx, "healthz", http.MethodGet, "/healthz", nil, &out)
	return out, err
}

func (c *shardClient) discover(ctx context.Context, req serve.DiscoverRequest) (serve.DiscoverResponse, error) {
	var out serve.DiscoverResponse
	err := c.doIdempotent(ctx, "discover", http.MethodPost, "/v1/discover", req, &out)
	return out, err
}

func (c *shardClient) lakeInfo(ctx context.Context) (serve.LakeResponse, error) {
	var out serve.LakeResponse
	err := c.doIdempotent(ctx, "lake-info", http.MethodGet, "/v1/lake", nil, &out)
	return out, err
}

func (c *shardClient) getTables(ctx context.Context, names []string) (serve.LakeTablesResponse, error) {
	var out serve.LakeTablesResponse
	err := c.doIdempotent(ctx, "tables", http.MethodPost, "/v1/lake/tables", serve.LakeTablesRequest{Names: names}, &out)
	return out, err
}

func (c *shardClient) add(ctx context.Context, tables []serve.TableJSON) error {
	return c.do(ctx, "add", http.MethodPost, "/v1/lake/add", addRequest{Tables: tables}, nil)
}

func (c *shardClient) remove(ctx context.Context, names []string) error {
	return c.do(ctx, "remove", http.MethodPost, "/v1/lake/remove", removeRequest{Names: names}, nil)
}

func (c *shardClient) compact(ctx context.Context) error {
	return c.do(ctx, "compact", http.MethodPost, "/v1/lake/compact", struct{}{}, nil)
}

// addRequest / removeRequest mirror serve's mutation bodies.
type addRequest struct {
	Tables []serve.TableJSON `json:"tables"`
}
type removeRequest struct {
	Names []string `json:"names"`
}

// normalizeAddr turns an operator-supplied shard address into a base URL:
// "host:port" gains "http://", schemes pass through, trailing slashes are
// trimmed.
func normalizeAddr(addr string) (string, error) {
	if addr == "" {
		return "", fmt.Errorf("cluster: empty shard address")
	}
	if !bytes.Contains([]byte(addr), []byte("://")) {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("cluster: shard address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: shard address %q: unsupported scheme %q", addr, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: shard address %q: no host", addr)
	}
	return u.Scheme + "://" + u.Host, nil
}
