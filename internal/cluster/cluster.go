// Package cluster is DIALITE's shard-per-process deployment: a
// coordinator-side lake.Catalog / discovery target whose shards are remote
// `dialite serve` processes instead of in-process *lake.Lakes. PR 9's
// in-process lake.Sharded established everything the transport change
// needs — name-hash routing recomputable from names alone (lake.ShardIndex),
// self-contained shard lakes, a deterministic (score desc, name asc)
// rank merge consuming only (table, score, column) tuples, and a mutation
// epoch that generalizes to a per-shard vector — so the coordinator is
// deliberately thin: it speaks serve's own JSON API to each shard and
// reuses discovery's merge and torn-read machinery unchanged.
//
// Equivalence: coordinator discovery answers are float64-bit-exact against
// an in-process lake.Sharded over the same tables — JSON encodes float64
// shortest-round-trip and both sides decode with full precision — pinned
// by the multi-process differential harness.
//
// Degradation: reads tolerate down shards, returning partial results with
// an explicit marker plus per-shard error detail (discovery.RunAllPartial);
// mutations touching a down shard refuse fast with 503 before anything is
// applied anywhere. See SHARDING.md's "Cluster mode" section for the
// failure-semantics contract.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/discovery"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/serve"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Config configures a Coordinator.
type Config struct {
	// Addrs are the shard base URLs in shard order: the table placement
	// rule is lake.ShardIndex(name, len(Addrs)), so the order and count
	// must match how the shard stores were populated (the manifest pins
	// the count; see Manifest).
	Addrs []string
	// Knowledge is the coordinator-side knowledge base for the cross-shard
	// stages (integration matching, entity resolution); nil means none.
	// Shard processes hold their own copies for SANTOS annotation.
	Knowledge *kb.KB
	// Engine is the sketch engine the shards run. Empty probes the
	// reachable shards at construction and adopts their (unanimous)
	// engine; the serve CLI passes the manifest's pinned engine instead.
	Engine sketch.Engine
	// CallTimeout caps each shard call that carries no tighter request
	// deadline of its own. 0 means 15s.
	CallTimeout time.Duration
	// ProbeTimeout caps the cheap sampling calls (epoch vectors, health,
	// mutation pre-probes). 0 means 2s.
	ProbeTimeout time.Duration
	// Retries bounds per-call retry attempts for idempotent reads against
	// a transiently failing shard. 0 means 2; negative disables.
	Retries int
	// RetryBackoff is the base backoff between retry attempts (linear:
	// attempt n waits n*RetryBackoff). 0 means 50ms.
	RetryBackoff time.Duration
	// Client overrides the HTTP client; nil builds a pooled transport
	// shared by every shard (connection reuse across the fan-out).
	Client *http.Client
}

// Coordinator implements lake.Catalog and discovery's remote target over a
// set of shard processes. It holds no table data: reads scatter to the
// shards and gather deterministically, mutations route by lake.ShardIndex,
// and the composite-level state (value dictionary, KB annotator) lives
// coordinator-side exactly as lake.Sharded keeps it composite-side.
type Coordinator struct {
	cfg    Config
	shards []*shardClient
	// epoch is the coordinator-local seqlock counter over routed
	// mutations; Epochs prepends it to the concatenated shard vectors.
	epoch     atomic.Uint64
	knowledge *kb.KB
	annotator *kb.Annotator
	dict      *table.Dict
	engine    sketch.Engine
}

var (
	_ lake.Catalog               = (*Coordinator)(nil)
	_ discovery.Remote           = (*Coordinator)(nil)
	_ serve.ShardHealthReporter  = (*Coordinator)(nil)
	_ serve.ShardMetricsReporter = (*Coordinator)(nil)
	_ serve.NameLister           = (*Coordinator)(nil)
)

// New builds a coordinator over the configured shard addresses. Shards may
// be down at construction: the coordinator starts degraded rather than
// failing, except when no engine was configured and no shard is reachable
// to probe one from — then there is nothing to validate mutations or
// health against and construction fails.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses")
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 15 * time.Second
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	c := &Coordinator{cfg: cfg, knowledge: cfg.Knowledge, dict: table.NewDict()}
	if c.knowledge == nil {
		c.knowledge = kb.New()
	}
	c.annotator = kb.NewAnnotator(c.knowledge.Compiled(), c.dict)
	c.shards = make([]*shardClient, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		base, err := normalizeAddr(addr)
		if err != nil {
			return nil, err
		}
		c.shards[i] = &shardClient{
			shard:       i,
			addr:        base,
			hc:          hc,
			callTimeout: cfg.CallTimeout,
			retries:     cfg.Retries,
			backoff:     cfg.RetryBackoff,
		}
	}
	c.engine = cfg.Engine
	if err := c.resolveEngine(); err != nil {
		return nil, err
	}
	return c, nil
}

// resolveEngine validates or probes the shard sketch engine. With a
// configured engine (manifest-pinned), reachable shards merely cross-check
// it; without one, the reachable shards must agree and at least one must
// answer.
func (c *Coordinator) resolveEngine() error {
	if c.engine != "" && !sketch.Known(c.engine) {
		return fmt.Errorf("cluster: unknown sketch engine %q", c.engine)
	}
	type probe struct {
		engine string
		err    error
	}
	probes := make([]probe, len(c.shards))
	par.For(len(c.shards), func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		h, err := c.shards[i].health(ctx)
		probes[i] = probe{engine: h.SketchEngine, err: err}
	})
	for i, p := range probes {
		if p.err != nil || p.engine == "" {
			continue // down or warming; the manifest or another shard decides
		}
		switch {
		case c.engine == "":
			c.engine = sketch.Engine(p.engine)
		case string(c.engine) != p.engine:
			return fmt.Errorf("cluster: shard %d (%s) runs sketch engine %q, want %q — shard stores disagree with the manifest", i, c.shards[i].addr, p.engine, c.engine)
		}
	}
	if c.engine == "" {
		return fmt.Errorf("cluster: no sketch engine configured and no shard reachable to probe one from")
	}
	return nil
}

// NumShards reports the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// ShardFor reports which shard the named table routes to — the same
// unkeyed FNV-1a rule every deployment shape uses.
func (c *Coordinator) ShardFor(name string) int { return lake.ShardIndex(name, len(c.shards)) }

// epochDown is the vector element substituted for an unreachable shard:
// even (a down shard is not "mutating", and an all-even vector must remain
// achievable so degraded reads settle) and implausible as a live counter,
// so a shard flapping between down and up never produces two equal
// vectors across the transition.
const epochDown = ^uint64(0) - 1

// Epochs samples the cluster's mutation-epoch vector: the coordinator's
// local counter (routed mutations tick it) followed by each shard's own
// vector, in shard order. Down shards contribute the epochDown sentinel,
// so a shard dying or recovering mid-fan-out perturbs the vector and the
// read retries, while a steadily-down shard leaves it stable (no retry
// storm while degraded).
func (c *Coordinator) Epochs() []uint64 {
	per := make([][]uint64, len(c.shards))
	par.For(len(c.shards), func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		ep, err := c.shards[i].epochs(ctx)
		if err != nil || len(ep.Epochs) == 0 {
			per[i] = []uint64{epochDown}
			return
		}
		per[i] = ep.Epochs
	})
	out := make([]uint64, 0, 1+2*len(c.shards))
	out = append(out, c.epoch.Load())
	for _, v := range per {
		out = append(out, v...)
	}
	return out
}

func (c *Coordinator) beginMutation() { c.epoch.Add(1) }
func (c *Coordinator) endMutation()   { c.epoch.Add(1) }

// callCtx is the context for catalog methods that have none of their own
// (lake.Catalog predates the transport): the per-call timeout is the only
// deadline.
func (c *Coordinator) callCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), c.cfg.CallTimeout)
}

// Get fetches a table from the shard its name routes to. Any failure —
// including the shard being down — reports the table as absent; callers
// needing the distinction use the serving layer, where a down shard
// surfaces as 503 on the operations that touch it.
func (c *Coordinator) Get(name string) (*table.Table, bool) {
	ctx, cancel := c.callCtx()
	defer cancel()
	var out serve.LakeTableResponse
	sc := c.shards[c.ShardFor(name)]
	if err := sc.doIdempotent(ctx, "table", http.MethodGet, "/v1/lake/table?name="+url.QueryEscape(name), nil, &out); err != nil {
		return nil, false
	}
	t, err := out.Table.DecodeTable()
	if err != nil {
		return nil, false
	}
	return t, true
}

// TableNames enumerates the catalog's table names: shard 0..N-1, each in
// its shard-local catalog order. Cluster mode cannot reproduce global
// insertion order — it is not persisted anywhere a restarted coordinator
// could recover it from — and SHARDING.md documents the divergence.
func (c *Coordinator) TableNames(ctx context.Context) ([]string, error) {
	infos := make([]serve.LakeResponse, len(c.shards))
	errs := make([]error, len(c.shards))
	par.For(len(c.shards), func(i int) {
		infos[i], errs[i] = c.shards[i].lakeInfo(ctx)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var names []string
	for _, info := range infos {
		names = append(names, info.Tables...)
	}
	return names, nil
}

// Tables materializes every table in the catalog — the full-catalog fetch
// integration falls back on. Down shards' tables are skipped (the method
// has no error channel; serving paths that must distinguish use
// TableNames + Get). Order matches TableNames.
func (c *Coordinator) Tables() []*table.Table {
	ctx, cancel := c.callCtx()
	defer cancel()
	per := make([][]*table.Table, len(c.shards))
	par.For(len(c.shards), func(i int) {
		info, err := c.shards[i].lakeInfo(ctx)
		if err != nil || len(info.Tables) == 0 {
			return
		}
		resp, err := c.shards[i].getTables(ctx, info.Tables)
		if err != nil {
			return
		}
		out := make([]*table.Table, 0, len(resp.Tables))
		for _, tj := range resp.Tables {
			if t, derr := tj.DecodeTable(); derr == nil {
				out = append(out, t)
			}
		}
		per[i] = out
	})
	var all []*table.Table
	for _, ts := range per {
		all = append(all, ts...)
	}
	return all
}

// Size sums the reachable shards' table counts (down shards contribute
// zero; /healthz carries the per-shard detail).
func (c *Coordinator) Size() int {
	per := make([]int, len(c.shards))
	par.For(len(c.shards), func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		if ep, err := c.shards[i].epochs(ctx); err == nil {
			per[i] = ep.Size
		}
	})
	n := 0
	for _, v := range per {
		n += v
	}
	return n
}

// probeInvolved refuses a mutation fast when any shard it must touch is
// unreachable: nothing has been applied anywhere yet, so the refusal is
// clean — no partial batch, no rollback. The returned error is a
// *ShardError carrying 503.
func (c *Coordinator) probeInvolved(involved []int) error {
	errs := make([]error, len(involved))
	par.For(len(involved), func(j int) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		defer cancel()
		_, errs[j] = c.shards[involved[j]].epochs(ctx)
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: mutation refused, shard unreachable: %w", err)
		}
	}
	return nil
}

// Add routes the batch by table name and applies each shard's sub-batch
// concurrently, after validating the whole batch coordinator-side (the
// same atomic-validation contract lake.Sharded keeps) and probing every
// involved shard. Cross-shard atomicity is compensated, not transactional:
// if any shard rejects its sub-batch (e.g. a duplicate name), sub-batches
// already applied elsewhere are rolled back with best-effort removes, and
// the first shard's error (in shard order) is returned.
func (c *Coordinator) Add(tables ...*table.Table) error {
	if len(tables) == 0 {
		return nil
	}
	batch := make(map[string]bool, len(tables))
	perShard := make([][]serve.TableJSON, len(c.shards))
	perShardNames := make([][]string, len(c.shards))
	for _, t := range tables {
		if t == nil {
			return fmt.Errorf("lake: add: nil table")
		}
		if t.Name == "" {
			return fmt.Errorf("lake: add: table with empty name")
		}
		if batch[t.Name] {
			return fmt.Errorf("lake: add: duplicate table name %q", t.Name)
		}
		batch[t.Name] = true
		shard := c.ShardFor(t.Name)
		perShard[shard] = append(perShard[shard], serve.EncodeTable(t))
		perShardNames[shard] = append(perShardNames[shard], t.Name)
	}
	involved := involvedShards(perShardNames)
	if err := c.probeInvolved(involved); err != nil {
		return err
	}
	c.beginMutation()
	defer c.endMutation()
	ctx, cancel := c.callCtx()
	defer cancel()
	errs := make([]error, len(involved))
	par.For(len(involved), func(j int) {
		i := involved[j]
		errs[j] = c.shards[i].add(ctx, perShard[i])
	})
	if firstErr(errs) == nil {
		return nil
	}
	// Compensate: remove the sub-batches that did apply, so the catalog
	// returns to its pre-Add state. Best effort — a shard dying between
	// apply and rollback leaves its sub-batch behind, which the error
	// makes loud rather than silent.
	rbCtx, rbCancel := c.callCtx()
	defer rbCancel()
	par.For(len(involved), func(j int) {
		if errs[j] == nil {
			_ = c.shards[involved[j]].remove(rbCtx, perShardNames[involved[j]])
		}
	})
	return firstErr(errs)
}

// Remove validates that every named table exists (fetching the doomed
// tables in the same pass — they are the rollback material), probes, then
// applies per shard. Compensation mirrors Add: shards that already removed
// get their tables re-added if another shard fails.
func (c *Coordinator) Remove(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	doomed := make(map[string]bool, len(names))
	perShard := make([][]string, len(c.shards))
	for _, n := range names {
		if !doomed[n] {
			doomed[n] = true
			shard := c.ShardFor(n)
			perShard[shard] = append(perShard[shard], n)
		}
	}
	involved := involvedShards(perShard)
	if err := c.probeInvolved(involved); err != nil {
		return err
	}
	// Fetch the doomed tables: validates existence batch-atomically
	// (unknown names reject the whole batch, as lake.Remove does) and
	// provides the rollback payload.
	ctx, cancel := c.callCtx()
	defer cancel()
	fetched := make([]serve.LakeTablesResponse, len(involved))
	ferrs := make([]error, len(involved))
	par.For(len(involved), func(j int) {
		fetched[j], ferrs[j] = c.shards[involved[j]].getTables(ctx, perShard[involved[j]])
	})
	if err := firstErr(ferrs); err != nil {
		return fmt.Errorf("cluster: remove validation: %w", err)
	}
	for _, resp := range fetched {
		if len(resp.Missing) > 0 {
			return fmt.Errorf("lake: remove: no table %q", resp.Missing[0])
		}
	}
	c.beginMutation()
	defer c.endMutation()
	mctx, mcancel := c.callCtx()
	defer mcancel()
	errs := make([]error, len(involved))
	par.For(len(involved), func(j int) {
		errs[j] = c.shards[involved[j]].remove(mctx, perShard[involved[j]])
	})
	if firstErr(errs) == nil {
		return nil
	}
	rbCtx, rbCancel := c.callCtx()
	defer rbCancel()
	par.For(len(involved), func(j int) {
		if errs[j] == nil {
			_ = c.shards[involved[j]].add(rbCtx, fetched[j].Tables)
		}
	})
	return firstErr(errs)
}

// Compact asks every shard to fold its mutation debt. Advisory and
// answer-preserving: down shards are skipped (they compact on restart
// recovery anyway) and no epoch ticks.
func (c *Coordinator) Compact() {
	ctx, cancel := c.callCtx()
	defer cancel()
	par.For(len(c.shards), func(i int) {
		_ = c.shards[i].compact(ctx)
	})
}

// RefreshKB is a no-op in cluster mode: each shard process owns its KB
// lifecycle (it annotated its tables at build/restore time), and the
// coordinator's KB feeds only the cross-shard stages, whose annotator is
// rebuilt per construction. It reports false — nothing was stale.
func (c *Coordinator) RefreshKB() bool { return false }

// Knowledge returns the coordinator-side knowledge base.
func (c *Coordinator) Knowledge() *kb.KB { return c.knowledge }

// Annotator returns the coordinator-level KB annotation cache for the
// cross-shard stages — the exact analogue of lake.Sharded's composite
// annotator.
func (c *Coordinator) Annotator() *kb.Annotator { return c.annotator }

// Dict returns the coordinator-level value dictionary; cross-shard
// integration interns into it lazily.
func (c *Coordinator) Dict() *table.Dict { return c.dict }

// SketchEngine reports the engine the shards run (manifest-pinned or
// probed at construction).
func (c *Coordinator) SketchEngine() sketch.Engine { return c.engine }

// unboundedK is the K sent to shards when the caller asked for an
// unlimited ranking (k <= 0): shard-side core.Discover would coerce 0 to
// its default of 10, which is not "all".
const unboundedK = 1 << 30

// DiscoverShard runs one discoverer on one shard over the wire — the
// remote analogue of one (discoverer, shard) work item in the in-process
// fan-out. The shard executes the method by name against its own lake and
// returns (name, score, column) tuples; tables come back as name-only
// stubs for discovery.RunAll to materialize after the merge. Scores cross
// the wire bit-exactly (shortest-round-trip float64 JSON).
func (c *Coordinator) DiscoverShard(ctx context.Context, shard int, d discovery.Discoverer, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
	kk := k
	if kk <= 0 {
		kk = unboundedK
	}
	method := d.Name()
	resp, err := c.shards[shard].discover(ctx, serve.DiscoverRequest{
		Query:       serve.EncodeTable(q),
		QueryColumn: queryCol,
		Methods:     []string{method},
		K:           kk,
	})
	if err != nil {
		return nil, err
	}
	wire := resp.PerMethod[method]
	out := make([]discovery.Result, 0, len(wire))
	for _, r := range wire {
		out = append(out, discovery.Result{
			Table:  table.New(r.Table),
			Score:  r.Score,
			Method: method,
			Column: r.Column,
		})
	}
	return out, nil
}

// ResolveTables materializes a merged ranking: names group by their owning
// shard and fetch in one batch per shard. Shards that became unreachable
// after answering the discover calls simply drop their names from the map
// (the ranking entries keep their stubs); only malformed responses error.
func (c *Coordinator) ResolveTables(ctx context.Context, names []string) (map[string]*table.Table, error) {
	perShard := make([][]string, len(c.shards))
	for _, n := range names {
		shard := c.ShardFor(n)
		perShard[shard] = append(perShard[shard], n)
	}
	involved := involvedShards(perShard)
	resolved := make([]map[string]*table.Table, len(involved))
	errs := make([]error, len(involved))
	par.For(len(involved), func(j int) {
		i := involved[j]
		resp, err := c.shards[i].getTables(ctx, perShard[i])
		if err != nil {
			if isUnavailable(err) {
				return // stubs stay; the epoch resample decides if it matters
			}
			errs[j] = err
			return
		}
		m := make(map[string]*table.Table, len(resp.Tables))
		for _, tj := range resp.Tables {
			t, derr := tj.DecodeTable()
			if derr != nil {
				errs[j] = fmt.Errorf("cluster: shard %d: malformed table %q: %w", i, tj.Name, derr)
				return
			}
			m[t.Name] = t
		}
		resolved[j] = m
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := make(map[string]*table.Table, len(names))
	for _, m := range resolved {
		for n, t := range m {
			out[n] = t
		}
	}
	return out, nil
}

// ShardHealth probes every shard's /healthz (and epoch endpoint, for the
// size) concurrently — the coordinator /healthz aggregation.
func (c *Coordinator) ShardHealth(ctx context.Context) []serve.ShardHealth {
	out := make([]serve.ShardHealth, len(c.shards))
	par.For(len(c.shards), func(i int) {
		sh := serve.ShardHealth{Shard: i, Addr: c.shards[i].addr}
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		defer cancel()
		h, err := c.shards[i].health(pctx)
		if err != nil {
			sh.Status = "down"
			sh.Error = err.Error()
			out[i] = sh
			return
		}
		sh.Status = h.Status
		if ep, err := c.shards[i].epochs(pctx); err == nil {
			sh.Size = ep.Size
		}
		out[i] = sh
	})
	return out
}

// ShardMetrics snapshots the per-shard fan-out transport counters — the
// coordinator /metrics aggregation.
func (c *Coordinator) ShardMetrics() []serve.ShardMetrics {
	out := make([]serve.ShardMetrics, len(c.shards))
	for i, sc := range c.shards {
		p50, p99, max, sum, count := sc.lat.Quantiles()
		out[i] = serve.ShardMetrics{
			Shard:   i,
			Addr:    sc.addr,
			Calls:   sc.calls.Load(),
			Errors:  sc.errs.Load(),
			Retries: sc.retryCount.Load(),
			Count:   count,
			P50NS:   int64(p50),
			P99NS:   int64(p99),
			MaxNS:   int64(max),
			SumNS:   int64(sum),
		}
	}
	return out
}

// CloseIdleConnections drops the pooled transport's idle shard
// connections — tests and shutdown paths use it so keep-alive conns stop
// holding goroutines.
func (c *Coordinator) CloseIdleConnections() {
	if len(c.shards) > 0 {
		c.shards[0].hc.CloseIdleConnections()
	}
}

// Addrs returns the normalized shard base URLs in shard order.
func (c *Coordinator) Addrs() []string {
	out := make([]string, len(c.shards))
	for i, sc := range c.shards {
		out[i] = sc.addr
	}
	return out
}

// ProbeShards probes each address's health and size without building a
// Coordinator — shardctl's path, which must keep working when every shard
// is down and no engine is resolvable. Only malformed addresses error;
// unreachable shards report Status "down".
func ProbeShards(ctx context.Context, addrs []string, timeout time.Duration) ([]serve.ShardHealth, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	hc := &http.Client{}
	clients := make([]*shardClient, len(addrs))
	for i, addr := range addrs {
		base, err := normalizeAddr(addr)
		if err != nil {
			return nil, err
		}
		clients[i] = &shardClient{shard: i, addr: base, hc: hc, callTimeout: timeout}
	}
	out := make([]serve.ShardHealth, len(clients))
	par.For(len(clients), func(i int) {
		sh := serve.ShardHealth{Shard: i, Addr: clients[i].addr}
		pctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		h, err := clients[i].health(pctx)
		if err != nil {
			sh.Status = "down"
			sh.Error = err.Error()
			out[i] = sh
			return
		}
		sh.Status = h.Status
		if ep, err := clients[i].epochs(pctx); err == nil {
			sh.Size = ep.Size
		}
		out[i] = sh
	})
	return out, nil
}

// involvedShards lists the shard indices with non-empty slices, ascending.
func involvedShards[T any](perShard [][]T) []int {
	var out []int
	for i := range perShard {
		if len(perShard[i]) > 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// firstErr returns the first non-nil error — slot order, so deterministic.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// isUnavailable reports whether err means "shard cannot answer right now".
func isUnavailable(err error) bool {
	se, ok := err.(*ShardError)
	return ok && se.Is(discovery.ErrShardUnavailable)
}
