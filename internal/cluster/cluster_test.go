// cluster_test exercises the coordinator over real HTTP against in-process
// shard servers: routed mutations with rollback, scatter-gather discovery
// equivalence against an in-process lake.Sharded mirror, partial reads
// with per-shard error detail, fast 503 refusals for mutations touching a
// down shard, and the /healthz + /metrics aggregation surface. The
// multi-process variants live in differential_test.go.
package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/serve"
	"repro/internal/table"
)

// testCluster is an in-process cluster: n shard serve.Servers behind
// httptest listeners, a coordinator over them, and the shard handles so
// tests can kill and restart individual shards.
type testCluster struct {
	coord  *cluster.Coordinator
	shards []*httptest.Server
	addrs  []string
}

// startCluster builds n shard servers partitioning tables by
// lake.ShardIndex (the same rule the coordinator routes by) and a
// coordinator over them.
func startCluster(t testing.TB, tables []*table.Table, n int) *testCluster {
	t.Helper()
	tc := &testCluster{shards: make([]*httptest.Server, n), addrs: make([]string, n)}
	for i := 0; i < n; i++ {
		var mine []*table.Table
		for _, tbl := range tables {
			if lake.ShardIndex(tbl.Name, n) == i {
				mine = append(mine, tbl)
			}
		}
		tc.shards[i] = startShardServer(t, mine)
		tc.addrs[i] = tc.shards[i].URL
	}
	coord, err := cluster.New(cluster.Config{
		Addrs:        tc.addrs,
		Knowledge:    difftest.DiffKB(),
		CallTimeout:  10 * time.Second,
		ProbeTimeout: 2 * time.Second,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	return tc
}

// startShardServer stands one shard process surrogate up: a full
// serve.Server over its slice of the lake.
func startShardServer(t testing.TB, tables []*table.Table) *httptest.Server {
	t.Helper()
	l, err := lake.New(tables, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(core.FromLake(l), serve.Config{Timeout: 10 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// diffPool fabricates n differential-vocabulary tables.
func diffPool(seed int64, n int) []*table.Table {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*table.Table, n)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("c%02d", i))
	}
	return pool
}

// nameForShard fabricates a table name that routes to the given shard.
func nameForShard(prefix string, shard, n int) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if lake.ShardIndex(name, n) == shard {
			return name
		}
	}
}

// TestClusterDiscoveryMatchesSharded pins the transport-equivalence
// invariant at the unit level: the coordinator's discovery answers are
// byte-identical (float64 bit-exact scores included) to an in-process
// lake.Sharded over the same tables, across query tables and k values.
func TestClusterDiscoveryMatchesSharded(t *testing.T) {
	pool := diffPool(7, 10)
	const n = 3
	tc := startCluster(t, pool, n)
	mirror, err := lake.NewSharded(pool, n, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	reg := discovery.NewRegistry()
	for qi, q := range pool[:4] {
		for _, k := range []int{0, 3, 7} {
			got := difftest.DiscoverySig(reg, tc.coord, q, 0, k)
			want := difftest.DiscoverySig(reg, mirror, q, 0, k)
			if got != want {
				t.Fatalf("query %d k %d: coordinator diverged from in-process sharded\n got:\n%s\nwant:\n%s", qi, k, got, want)
			}
		}
	}
	if got, want := tc.coord.Size(), mirror.Size(); got != want {
		t.Fatalf("Size: coordinator %d, mirror %d", got, want)
	}
}

// TestClusterRoutedMutations drives Add/Remove/Compact through the
// coordinator and verifies placement (each table lands on the shard its
// name hashes to), lake-identical validation errors, and mirror
// equivalence after every mutation.
func TestClusterRoutedMutations(t *testing.T) {
	pool := diffPool(11, 8)
	const n = 3
	tc := startCluster(t, pool[:4], n)
	mirror, err := lake.NewSharded(pool[:4], n, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.coord.Add(pool[4], pool[5]); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := mirror.Add(pool[4], pool[5]); err != nil {
		t.Fatal(err)
	}
	// Placement: the added tables answer from exactly their routed shard.
	for _, tbl := range pool[4:6] {
		shard := tc.coord.ShardFor(tbl.Name)
		for i, ts := range tc.shards {
			resp, err := http.Get(ts.URL + "/v1/lake/table?name=" + tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if want := http.StatusOK; i == shard && resp.StatusCode != want {
				t.Fatalf("shard %d (owner) answered %d for %q", i, resp.StatusCode, tbl.Name)
			} else if i != shard && resp.StatusCode == http.StatusOK {
				t.Fatalf("shard %d (not owner) also holds %q", i, tbl.Name)
			}
		}
	}
	// Duplicate add and missing remove keep lake's exact error contract.
	if err := tc.coord.Add(pool[4]); err == nil || !strings.Contains(err.Error(), "duplicate") && !strings.Contains(err.Error(), "already") {
		t.Fatalf("duplicate Add error = %v", err)
	}
	if err := tc.coord.Remove("no-such-table"); err == nil || !strings.Contains(err.Error(), `no table "no-such-table"`) {
		t.Fatalf("missing Remove error = %v, want lake's no-table message", err)
	}
	if err := tc.coord.Remove(pool[0].Name, pool[5].Name); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := mirror.Remove(pool[0].Name, pool[5].Name); err != nil {
		t.Fatal(err)
	}
	tc.coord.Compact()
	mirror.Compact()
	reg := discovery.NewRegistry()
	for _, q := range pool[:3] {
		got := difftest.DiscoverySig(reg, tc.coord, q, 0, 0)
		want := difftest.DiscoverySig(reg, mirror, q, 0, 0)
		if got != want {
			t.Fatalf("post-mutation divergence for %q\n got:\n%s\nwant:\n%s", q.Name, got, want)
		}
	}
	if _, ok := tc.coord.Get(pool[5].Name); ok {
		t.Fatalf("Get(%q) found a removed table", pool[5].Name)
	}
	if tbl, ok := tc.coord.Get(pool[4].Name); !ok || tbl.NumRows() != pool[4].NumRows() {
		t.Fatalf("Get(%q) = %v, %v; want the added table back", pool[4].Name, tbl, ok)
	}
}

// TestClusterAddRollback makes one shard reject its sub-batch (duplicate
// name) in a cross-shard Add and asserts the other shard's already-applied
// sub-batch is compensated away: the failed batch leaves no trace.
func TestClusterAddRollback(t *testing.T) {
	const n = 2
	tc := startCluster(t, nil, n)
	dup := difftest.DiffTable(rand.New(rand.NewSource(3)), nameForShard("dup", 0, n))
	fresh := difftest.DiffTable(rand.New(rand.NewSource(4)), nameForShard("fresh", 1, n))
	if err := tc.coord.Add(dup); err != nil {
		t.Fatal(err)
	}
	// Shard 0 rejects dup (already present); shard 1 applies fresh, which
	// the rollback must undo.
	if err := tc.coord.Add(fresh, dup); err == nil {
		t.Fatal("cross-shard Add with a duplicate succeeded, want error")
	}
	if _, ok := tc.coord.Get(fresh.Name); ok {
		t.Fatalf("rollback failed: %q survived the failed batch", fresh.Name)
	}
	if got := tc.coord.Size(); got != 1 {
		t.Fatalf("Size after rolled-back Add = %d, want 1", got)
	}
}

// TestClusterPartialReads kills one shard and asserts the degradation
// contract: discovery still answers, marked partial with that shard's
// error; mutations routed to the dead shard refuse fast with 503; and the
// coordinator's own serve surface exposes the partial marker on the wire.
func TestClusterPartialReads(t *testing.T) {
	pool := diffPool(23, 9)
	const n = 3
	tc := startCluster(t, pool, n)
	const down = 1
	tc.shards[down].Close()

	// Catalog-level: partial tolerated, shard error identifies the shard.
	reg := discovery.NewRegistry()
	per, _, shardErrs, err := discovery.Discover(context.Background(), reg, tc.coord, pool[0], 0, 5, difftest.DiffMethods)
	if err != nil {
		t.Fatalf("Discover with a down shard: %v", err)
	}
	if len(shardErrs) == 0 {
		t.Fatal("Discover with a down shard reported no shard errors")
	}
	for _, se := range shardErrs {
		if se.Shard != down {
			t.Fatalf("shard error names shard %d, want %d: %v", se.Shard, down, se)
		}
		if !errors.Is(se, discovery.ErrShardUnavailable) {
			t.Fatalf("shard error %v does not match ErrShardUnavailable", se)
		}
	}
	if len(per) == 0 {
		t.Fatal("partial run returned no rankings at all")
	}

	// The wire surface: a coordinator serve.Server marks the response.
	cs := serve.New(core.FromCatalog(tc.coord), serve.Config{Timeout: 10 * time.Second})
	front := httptest.NewServer(cs.Handler())
	defer front.Close()
	body, _ := json.Marshal(serve.DiscoverRequest{Query: serve.EncodeTable(pool[0]), K: 5})
	resp, err := http.Post(front.URL+"/v1/discover", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire serve.DiscoverResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial discover answered %d, want 200", resp.StatusCode)
	}
	if !wire.Partial || len(wire.ShardErrors) == 0 {
		t.Fatalf("wire response partial=%v shardErrors=%v, want explicit partial marker + detail", wire.Partial, wire.ShardErrors)
	}
	if wire.ShardErrors[0].Shard != down {
		t.Fatalf("wire shard error names shard %d, want %d", wire.ShardErrors[0].Shard, down)
	}

	// Mutations touching the dead shard refuse fast with 503 — before
	// anything is applied anywhere.
	victim := difftest.DiffTable(rand.New(rand.NewSource(9)), nameForShard("x", down, n))
	sizeBefore := tc.coord.Size()
	start := time.Now()
	err = tc.coord.Add(victim)
	if err == nil {
		t.Fatal("Add to a dead shard succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Add to a dead shard took %s, want a fast refusal", elapsed)
	}
	var coded interface{ HTTPStatus() int }
	if !errors.As(err, &coded) || coded.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("Add to a dead shard returned %v, want a 503-coded error", err)
	}
	if got := tc.coord.Size(); got != sizeBefore {
		t.Fatalf("refused Add changed Size: %d -> %d", sizeBefore, got)
	}

	// Health aggregation: the coordinator is degraded, the shard is down.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health serve.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("coordinator /healthz status %q with a dead shard, want degraded", health.Status)
	}
	if len(health.Shards) != n {
		t.Fatalf("/healthz lists %d shards, want %d", len(health.Shards), n)
	}
	for _, sh := range health.Shards {
		if sh.Shard == down && sh.Status != "down" {
			t.Fatalf("shard %d reported %q, want down", sh.Shard, sh.Status)
		}
		if sh.Shard != down && sh.Status != "ok" {
			t.Fatalf("shard %d reported %q, want ok", sh.Shard, sh.Status)
		}
	}

	// Metrics aggregation: per-shard fan-out series appear in both views.
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{"dialite_shard_calls_total", "dialite_shard_errors_total", "dialite_shard_retries_total", "dialite_shard_rtt_seconds"} {
		if !strings.Contains(string(text), series) {
			t.Fatalf("/metrics lacks %s in cluster mode", series)
		}
	}
	jresp, err := http.Get(front.URL + "/metrics?format=json&scope=shards")
	if err != nil {
		t.Fatal(err)
	}
	var sm []serve.ShardMetrics
	if err := json.NewDecoder(jresp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if len(sm) != n {
		t.Fatalf("scope=shards lists %d shards, want %d", len(sm), n)
	}
	if sm[down].Errors == 0 {
		t.Fatalf("down shard %d shows zero transport errors after the failures above: %+v", down, sm[down])
	}
}

// TestClusterEpochVectorStability pins the down-shard sentinel semantics:
// a steadily-down shard yields a stable epoch vector (degraded reads
// settle instead of retry-storming), and the vector differs from the
// all-up one (the transition is observable).
func TestClusterEpochVectorStability(t *testing.T) {
	pool := diffPool(31, 6)
	const n = 3
	tc := startCluster(t, pool, n)
	up := tc.coord.Epochs()
	if len(up) != 1+n {
		t.Fatalf("all-up epoch vector has %d elements, want %d (local + one per single-lake shard)", len(up), 1+n)
	}
	tc.shards[2].Close()
	down1 := tc.coord.Epochs()
	down2 := tc.coord.Epochs()
	if len(down1) != 1+n {
		t.Fatalf("degraded epoch vector has %d elements, want %d", len(down1), 1+n)
	}
	for i := range down1 {
		if down1[i] != down2[i] {
			t.Fatalf("degraded epoch vector unstable at %d: %v vs %v — partial reads would retry-storm", i, down1, down2)
		}
		if down1[i]%2 != 0 {
			t.Fatalf("degraded epoch vector has odd element at %d: %v — reads would never settle", i, down1)
		}
	}
	if down1[1+2] == up[1+2] {
		t.Fatalf("shard 2's vector element did not change when it went down: %v vs %v", up, down1)
	}
}

// TestProbeShards covers shardctl's probing path: live shards report their
// health and size, dead ones report down, and malformed addresses error.
func TestProbeShards(t *testing.T) {
	pool := diffPool(41, 5)
	tc := startCluster(t, pool, 2)
	tc.shards[1].Close()
	health, err := cluster.ProbeShards(context.Background(), tc.addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(health) != 2 {
		t.Fatalf("probed %d shards, want 2", len(health))
	}
	if health[0].Status != "ok" || health[0].Size == 0 {
		t.Fatalf("live shard reported %+v, want ok with its size", health[0])
	}
	if health[1].Status != "down" || health[1].Error == "" {
		t.Fatalf("dead shard reported %+v, want down with detail", health[1])
	}
	if _, err := cluster.ProbeShards(context.Background(), []string{"ftp://nope"}, time.Second); err == nil {
		t.Fatal("ProbeShards accepted an ftp address")
	}
}
