// degrade_test drives the kill-one-shard-mid-traffic acceptance scenario:
// concurrent readers and writers against the coordinator while one shard
// server dies, then comes back at the same address. Reads must degrade to
// explicit partials (never hang, never silently full), mutations to the
// dead shard must refuse fast with 503, the fan-out goroutines must all
// settle (checked under -race), and the restart must restore full answers
// with no coordinator restart.
package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/testutil"
)

// killableShard is one shard server on a fixed address with an explicit
// lifecycle: stop() tears the listener and server down, start() brings a
// fresh server up on the same address over the same tables.
type killableShard struct {
	t       *testing.T
	addr    string
	tables  []*table.Table
	cancel  context.CancelFunc
	done    chan error
	stopped bool
}

func (ks *killableShard) start() {
	ks.t.Helper()
	l, err := lake.New(ks.tables, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		ks.t.Fatal(err)
	}
	s := serve.New(core.FromLake(l), serve.Config{Timeout: 10 * time.Second})
	var ln net.Listener
	// The previous incarnation's listener may take a moment to release the
	// port even after Serve returned.
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", ks.addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			ks.t.Fatalf("rebinding %s: %v", ks.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ks.addr = ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	ks.cancel = cancel
	ks.stopped = false
	ks.done = make(chan error, 1)
	go func() { ks.done <- s.Serve(ctx, ln) }()
	waitShardReady(ks.t, "http://"+ks.addr)
}

func (ks *killableShard) stop() {
	ks.t.Helper()
	if ks.stopped {
		return
	}
	ks.stopped = true
	ks.cancel()
	select {
	case err := <-ks.done:
		if err != nil {
			ks.t.Fatalf("shard %s exited: %v", ks.addr, err)
		}
	case <-time.After(10 * time.Second):
		ks.t.Fatalf("shard %s did not shut down", ks.addr)
	}
}

func waitShardReady(t testing.TB, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/lake/epoch")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("shard %s never became ready", base)
}

func TestClusterShardDeathAndRecoveryMidTraffic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	pool := diffPool(55, 9)
	const n = 3
	shards := make([]*killableShard, n)
	addrs := make([]string, n)
	for i := range shards {
		var mine []*table.Table
		for _, tbl := range pool {
			if lake.ShardIndex(tbl.Name, n) == i {
				mine = append(mine, tbl)
			}
		}
		shards[i] = &killableShard{t: t, addr: "127.0.0.1:0", tables: mine}
		shards[i].start()
		addrs[i] = "http://" + shards[i].addr
	}
	defer func() {
		for _, ks := range shards {
			ks.stop()
		}
	}()
	coord, err := cluster.New(cluster.Config{
		Addrs:        addrs,
		Knowledge:    difftest.DiffKB(),
		CallTimeout:  10 * time.Second,
		ProbeTimeout: time.Second,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := lake.NewSharded(pool, n, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	reg := discovery.NewRegistry()
	fullSig := func(q *table.Table) string { return difftest.DiscoverySig(reg, coord, q, 0, 5) }
	wantSig := difftest.DiscoverySig(reg, mirror, pool[0], 0, 5)
	if got := fullSig(pool[0]); got != wantSig {
		t.Fatalf("pre-kill answers diverge\n got:\n%s\nwant:\n%s", got, wantSig)
	}

	// Concurrent traffic: readers fan discovery out, a writer churns a
	// table on a healthy shard. All of it must keep completing (full or
	// partial, never hung) while shard 1 dies and recovers.
	const down = 1
	trafficCtx, stopTraffic := context.WithCancel(context.Background())
	var (
		wg           sync.WaitGroup
		partialSeen  atomic.Int64
		readFailures atomic.Int64
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; trafficCtx.Err() == nil; i++ {
				q := pool[(w+i)%len(pool)]
				_, _, serrs, err := discovery.Discover(trafficCtx, reg, coord, q, 0, 5, difftest.DiffMethods)
				switch {
				case err != nil && trafficCtx.Err() == nil:
					readFailures.Add(1)
				case len(serrs) > 0:
					partialSeen.Add(1)
				}
			}
		}(w)
	}
	healthy := (down + 1) % n
	churn := difftest.DiffTable(rand.New(rand.NewSource(77)), nameForShard("churn", healthy, n))
	wg.Add(1)
	go func() {
		defer wg.Done()
		for trafficCtx.Err() == nil {
			if err := coord.Add(churn); err != nil {
				continue // racing its own remove, or mid-kill probe refusal
			}
			_ = coord.Remove(churn.Name)
		}
	}()

	time.Sleep(50 * time.Millisecond) // let traffic establish
	shards[down].stop()

	// Reads degrade to explicit partials while the shard is gone.
	settle := time.Now().Add(10 * time.Second)
	for partialSeen.Load() == 0 && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}
	if partialSeen.Load() == 0 {
		t.Fatal("no partial reads observed while a shard was down")
	}
	// Mutations to the dead shard refuse fast with a 503-coded error.
	victim := difftest.DiffTable(rand.New(rand.NewSource(78)), nameForShard("victim", down, n))
	start := time.Now()
	err = coord.Add(victim)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Add routed to the dead shard succeeded")
	}
	var coded interface{ HTTPStatus() int }
	if !errors.As(err, &coded) || coded.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard Add error = %v, want 503-coded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dead-shard Add took %s, want a fast refusal", elapsed)
	}

	// Restart the shard at the same address: full answers come back with
	// no coordinator restart (the next epoch sample sees it live).
	shards[down].start()
	stopTraffic()
	wg.Wait()
	// The churn table may have been mid-toggle when traffic stopped; settle
	// the catalog back to the mirror's contents before comparing.
	if err := coord.Remove(churn.Name); err != nil && !strings.Contains(err.Error(), "no table") {
		t.Fatalf("removing churn table: %v", err)
	}
	var got string
	recovered := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if got = fullSig(pool[0]); got == wantSig {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("answers did not recover after shard restart\n got:\n%s\nwant:\n%s", got, wantSig)
	}
	if rf := readFailures.Load(); rf > 0 {
		// Reads racing the exact kill window may fail hard only if their
		// error does not match the unavailable contract; that would be a
		// degradation bug.
		t.Fatalf("%d concurrent reads failed hard instead of degrading to partial", rf)
	}
	// Everything the fan-out and the shard servers spawned must be gone
	// (run under -race in CI). Stop the shards and drop idle keep-alive
	// conns first — both legitimately hold goroutines while running.
	for _, ks := range shards {
		ks.stop()
	}
	coordClient(coord)
	testutil.WaitGoroutinesSettle(t, baseline)
}

// coordClient shuts the coordinator's pooled transport down so its idle
// connections stop holding goroutines.
func coordClient(c *cluster.Coordinator) {
	http.DefaultClient.CloseIdleConnections()
	c.CloseIdleConnections()
}

// TestClusterRestartWithoutTraffic is the minimal lifecycle check the big
// test above subsumes, kept separate for fast failure triage: kill, verify
// partial + sentinel stability, restart, verify full.
func TestClusterRestartWithoutTraffic(t *testing.T) {
	pool := diffPool(66, 6)
	const n = 2
	shards := make([]*killableShard, n)
	addrs := make([]string, n)
	for i := range shards {
		var mine []*table.Table
		for _, tbl := range pool {
			if lake.ShardIndex(tbl.Name, n) == i {
				mine = append(mine, tbl)
			}
		}
		shards[i] = &killableShard{t: t, addr: "127.0.0.1:0", tables: mine}
		shards[i].start()
		addrs[i] = "http://" + shards[i].addr
	}
	defer func() {
		for _, ks := range shards {
			ks.stop()
		}
	}()
	coord, err := cluster.New(cluster.Config{Addrs: addrs, Knowledge: difftest.DiffKB(), ProbeTimeout: time.Second, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := discovery.NewRegistry()
	want := difftest.DiscoverySig(reg, coord, pool[0], 0, 0)
	if strings.HasPrefix(want, "err:") {
		t.Fatalf("all-up signature errored: %s", want)
	}
	shards[0].stop()
	partial := difftest.DiscoverySig(reg, coord, pool[0], 0, 0)
	if !strings.Contains(partial, "partial run") {
		t.Fatalf("down-shard signature = %q, want an explicit partial marker", partial)
	}
	shards[0].start()
	deadline := time.Now().Add(10 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		if got = difftest.DiscoverySig(reg, coord, pool[0], 0, 0); got == want {
			coordClient(coord)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("restart did not restore answers\n got:\n%s\nwant:\n%s", got, want)
}
