// differential_test is the multi-process differential harness: real shard
// server processes (this test binary re-executed in helper mode, each with
// its own durable persist store), a coordinator over them, and an
// in-process lake.Sharded twin. Randomized Add/Remove/Compact schedules
// are mirrored into both; after every mutation the coordinator's discovery
// answers must be byte-identical — float64 bit-exact scores included — to
// the twin's. Midway, one shard process is killed and restarted from its
// own persist store: the WAL-recovered shard must answer identically, with
// no coordinator restart.
package cluster_test

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/persist"
	"repro/internal/serve"
	"repro/internal/table"
)

const (
	helperEnv  = "DIALITE_CLUSTER_SHARD_HELPER"
	persistEnv = "DIALITE_SHARD_PERSIST"
	addrEnv    = "DIALITE_SHARD_ADDR"
)

// TestMain turns the test binary into a shard server when re-executed with
// the helper env set: a real separate process serving a durable lake, the
// harness's stand-in for `dialite serve -persist`.
func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		runShardHelper()
		return
	}
	os.Exit(m.Run())
}

// runShardHelper is the shard process: create (empty) or recover the
// persist store, attach it to a serving pipeline, announce the bound
// address on stdout, and serve until SIGTERM — which drains and syncs the
// WAL, so a restart recovers exactly what was acknowledged.
func runShardHelper() {
	dir := os.Getenv(persistEnv)
	addr := os.Getenv(addrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "shard helper:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var st *persist.Store
	var err error
	if persist.Exists(dir, persist.Options{}) {
		st, err = persist.Open(dir, persist.Options{})
	} else {
		var l *lake.Lake
		if l, err = lake.New(nil, lake.Options{Knowledge: difftest.DiffKB()}); err == nil {
			st, err = persist.Create(dir, l, persist.Options{})
		}
	}
	if err != nil {
		fail(err)
	}
	s := serve.NewWarming(serve.Config{Timeout: 30 * time.Second})
	s.Attach(core.FromLake(st.Lake()), st)
	// A restarted shard rebinds its predecessor's exact address; the old
	// process has exited but the kernel may lag releasing the port.
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			fail(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("SHARD_ADDR=%s\n", ln.Addr().String())
	if err := s.Serve(ctx, ln); err != nil {
		fail(err)
	}
}

// shardProc is one live shard helper process.
type shardProc struct {
	cmd  *exec.Cmd
	addr string // host:port the helper bound
	dir  string // its persist store
}

// spawnShard launches a helper process over the given persist dir. addr
// pins the listen address ("" lets the helper pick); restarts pass the
// previous address so the coordinator's fixed shard list stays valid.
func spawnShard(t *testing.T, dir, addr string) *shardProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"=1", persistEnv+"="+dir, addrEnv+"="+addr)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "SHARD_ADDR="); ok {
				got <- a
				break
			}
		}
		close(got)
	}()
	select {
	case a, ok := <-got:
		if !ok {
			cmd.Process.Kill()
			t.Fatalf("shard helper for %s exited before announcing its address", dir)
		}
		sp := &shardProc{cmd: cmd, addr: a, dir: dir}
		waitShardReady(t, "http://"+a)
		return sp
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("shard helper for %s never announced its address", dir)
		return nil
	}
}

// terminate asks the shard process to shut down gracefully (drain + WAL
// sync) and waits for it.
func (sp *shardProc) terminate(t *testing.T) {
	t.Helper()
	if err := sp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM shard %s: %v", sp.addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- sp.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shard %s exited: %v", sp.addr, err)
		}
	case <-time.After(30 * time.Second):
		sp.cmd.Process.Kill()
		t.Fatalf("shard %s did not exit after SIGTERM", sp.addr)
	}
}

// TestMultiProcessDifferential runs the full acceptance harness: 200
// randomized mutation schedules (25 under -short) mirrored between the
// coordinator over real shard processes and an in-process lake.Sharded
// twin, byte-identical discovery after every mutation, with one shard
// killed and recovered from its own persist store mid-run.
func TestMultiProcessDifferential(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	const n = 3
	procs := make([]*shardProc, n)
	addrs := make([]string, n)
	for i := range procs {
		procs[i] = spawnShard(t, t.TempDir(), "")
		addrs[i] = "http://" + procs[i].addr
	}
	defer func() {
		for _, sp := range procs {
			if sp.cmd.ProcessState == nil {
				sp.cmd.Process.Signal(syscall.SIGTERM)
				sp.cmd.Wait()
			}
		}
	}()
	coord, err := cluster.New(cluster.Config{
		Addrs:        addrs,
		Knowledge:    difftest.DiffKB(),
		CallTimeout:  30 * time.Second,
		ProbeTimeout: 5 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseIdleConnections()
	mirror, err := lake.NewSharded(nil, n, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	reg := discovery.NewRegistry()

	// One shared pool across schedules: the deployment is long-lived, the
	// schedules are its mutation history.
	poolRng := rand.New(rand.NewSource(424242))
	pool := make([]*table.Table, 16)
	for i := range pool {
		pool[i] = difftest.DiffTable(poolRng, fmt.Sprintf("m%02d", i))
	}
	inLake := make([]bool, len(pool))

	verify := func(ctx string, rng *rand.Rand) {
		t.Helper()
		for q := 0; q < 2; q++ {
			query := pool[rng.Intn(len(pool))]
			k := rng.Intn(3) * 3 // 0 = all
			got := difftest.DiscoverySig(reg, coord, query, 0, k)
			want := difftest.DiscoverySig(reg, mirror, query, 0, k)
			if got != want {
				t.Fatalf("%s: query %q k %d: coordinator diverged from in-process twin\n got:\n%s\nwant:\n%s", ctx, query.Name, k, got, want)
			}
		}
		if got, want := coord.Size(), mirror.Size(); got != want {
			t.Fatalf("%s: Size: coordinator %d, twin %d", ctx, got, want)
		}
	}

	restartAt := schedules / 2
	for sched := 0; sched < schedules; sched++ {
		rng := rand.New(rand.NewSource(int64(9000 + sched)))
		if sched == restartAt {
			// Kill shard 1 and bring it back FROM ITS OWN PERSIST STORE at
			// the same address. The coordinator is not restarted; its next
			// epoch sample sees the shard live again.
			old := procs[1]
			old.terminate(t)
			procs[1] = spawnShard(t, old.dir, old.addr)
			verify(fmt.Sprintf("schedule %d post-restart", sched), rng)
		}
		ops := 1 + rng.Intn(3)
		for op := 0; op < ops; op++ {
			var in, out []int
			for i, ok := range inLake {
				if ok {
					in = append(in, i)
				} else {
					out = append(out, i)
				}
			}
			switch c := rng.Intn(7); {
			case c <= 2 && len(out) > 0: // add 1-2 tables
				cnt := 1 + rng.Intn(2)
				var batch []*table.Table
				for _, i := range out[:min(cnt, len(out))] {
					batch = append(batch, pool[i])
					inLake[i] = true
				}
				if err := coord.Add(batch...); err != nil {
					t.Fatalf("schedule %d op %d: coordinator Add: %v", sched, op, err)
				}
				if err := mirror.Add(batch...); err != nil {
					t.Fatalf("schedule %d op %d: twin Add: %v", sched, op, err)
				}
			case c <= 5 && len(in) > 0: // remove one table
				i := in[rng.Intn(len(in))]
				if err := coord.Remove(pool[i].Name); err != nil {
					t.Fatalf("schedule %d op %d: coordinator Remove: %v", sched, op, err)
				}
				if err := mirror.Remove(pool[i].Name); err != nil {
					t.Fatalf("schedule %d op %d: twin Remove: %v", sched, op, err)
				}
				inLake[i] = false
			default:
				coord.Compact()
				mirror.Compact()
			}
		}
		verify(fmt.Sprintf("schedule %d", sched), rand.New(rand.NewSource(int64(sched)*31+7)))
	}

	// Final membership cross-check through the remote catalog.
	for i, ok := range inLake {
		if _, got := coord.Get(pool[i].Name); got != ok {
			t.Errorf("coordinator Get(%s) = %v, want %v", pool[i].Name, got, ok)
		}
	}
}
