package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/sketch"
)

// manifestFile is the placement manifest's filename inside the
// coordinator's persist directory.
const manifestFile = "cluster.json"

// manifestVersion is the current manifest format version. Readers reject
// versions they do not know rather than guessing at placement semantics.
const manifestVersion = 1

// Manifest is the coordinator-side placement record: the facts that must
// not drift between runs for the shard stores to keep answering correctly.
// Placement is lake.ShardIndex(name, Shards), so Shards is load-bearing —
// restarting a cluster with a different shard count would route reads to
// shards that never held the table. Engine pins the sketch engine every
// shard must run (containment scores are not comparable across engines).
// Addrs records where the shards last lived; it is advisory (shards may
// move hosts between runs) and is overridden by -shard-addrs, but the
// address count must still match Shards.
type Manifest struct {
	Version int           `json:"version"`
	Shards  int           `json:"shards"`
	Engine  sketch.Engine `json:"engine"`
	Addrs   []string      `json:"addrs,omitempty"`
}

// Validate checks internal consistency.
func (m *Manifest) Validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("cluster: manifest version %d not supported (want %d)", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("cluster: manifest shard count %d, want >= 1", m.Shards)
	}
	if m.Engine == "" || !sketch.Known(m.Engine) {
		return fmt.Errorf("cluster: manifest pins unknown sketch engine %q", m.Engine)
	}
	if len(m.Addrs) != 0 && len(m.Addrs) != m.Shards {
		return fmt.Errorf("cluster: manifest lists %d addresses for %d shards", len(m.Addrs), m.Shards)
	}
	return nil
}

// ManifestPath is the manifest's location under a coordinator persist dir.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestFile) }

// LoadManifest reads and validates dir's placement manifest. A missing
// file returns fs.ErrNotExist (first boot); anything else malformed fails
// loudly — guessing at placement corrupts answers silently.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse manifest %s: %w", ManifestPath(dir), err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, ManifestPath(dir))
	}
	return &m, nil
}

// SaveManifest validates and atomically writes dir's placement manifest
// (temp file + rename, fsync'd), creating dir if needed. A crash mid-save
// leaves either the old manifest or the new one, never a torn file.
func SaveManifest(dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: create manifest dir: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encode manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, manifestFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, ManifestPath(dir)); err != nil {
		return fmt.Errorf("cluster: install manifest: %w", err)
	}
	return nil
}

// ReconcileManifest is the coordinator-boot handshake between a persist
// directory and the serve flags: first boot writes the manifest from the
// flags; later boots check the flags against it (shard count must match;
// engine defaults from the manifest when the flag is unset) and refresh
// the advisory address list.
func ReconcileManifest(dir string, addrs []string, engine sketch.Engine) (*Manifest, error) {
	m, err := LoadManifest(dir)
	if errors.Is(err, fs.ErrNotExist) {
		if engine == "" {
			return nil, fmt.Errorf("cluster: new cluster dir %s needs an explicit sketch engine to pin in the manifest", dir)
		}
		m = &Manifest{Version: manifestVersion, Shards: len(addrs), Engine: engine, Addrs: addrs}
		if err := SaveManifest(dir, m); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	if m.Shards != len(addrs) {
		return nil, fmt.Errorf("cluster: manifest pins %d shards but %d addresses were given — placement is name-hash mod shard count, so changing the count silently misroutes every lookup; rebuild the cluster instead", m.Shards, len(addrs))
	}
	if engine != "" && engine != m.Engine {
		return nil, fmt.Errorf("cluster: manifest pins sketch engine %q but %q was requested — shard stores were built with %q", m.Engine, engine, m.Engine)
	}
	if !equalStrings(m.Addrs, addrs) {
		m.Addrs = addrs
		if err := SaveManifest(dir, m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
