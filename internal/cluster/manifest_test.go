package cluster_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sketch"
)

func TestManifestValidate(t *testing.T) {
	good := cluster.Manifest{Version: 1, Shards: 3, Engine: sketch.MinHash, Addrs: []string{"a", "b", "c"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(m *cluster.Manifest)
		want string
	}{
		{"future version", func(m *cluster.Manifest) { m.Version = 2 }, "version 2 not supported"},
		{"zero shards", func(m *cluster.Manifest) { m.Shards = 0 }, "shard count 0"},
		{"empty engine", func(m *cluster.Manifest) { m.Engine = "" }, "unknown sketch engine"},
		{"bogus engine", func(m *cluster.Manifest) { m.Engine = "quantum" }, "unknown sketch engine"},
		{"addr count drift", func(m *cluster.Manifest) { m.Addrs = m.Addrs[:2] }, "2 addresses for 3 shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := good
			m.Addrs = append([]string(nil), good.Addrs...)
			tc.mut(&m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestManifestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := cluster.LoadManifest(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("LoadManifest on empty dir = %v, want fs.ErrNotExist", err)
	}
	m := &cluster.Manifest{Version: 1, Shards: 2, Engine: sketch.MinHash, Addrs: []string{"http://a:1", "http://b:2"}}
	if err := cluster.SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != m.Shards || got.Engine != m.Engine || len(got.Addrs) != 2 || got.Addrs[0] != m.Addrs[0] {
		t.Fatalf("round trip mangled the manifest: %+v", got)
	}
	// No temp file debris from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("persist dir holds %d entries after save, want just the manifest", len(entries))
	}
	// Corrupt file fails loudly, not silently.
	if err := os.WriteFile(cluster.ManifestPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "parse manifest") {
		t.Fatalf("LoadManifest on corrupt file = %v, want a parse error", err)
	}
}

func TestReconcileManifest(t *testing.T) {
	dir := t.TempDir()
	addrs := []string{"http://a:1", "http://b:2", "http://c:3"}

	// First boot without an engine cannot pin anything.
	if _, err := cluster.ReconcileManifest(dir, addrs, ""); err == nil || !strings.Contains(err.Error(), "explicit sketch engine") {
		t.Fatalf("first boot without engine = %v, want refusal", err)
	}
	// First boot with an engine writes the manifest.
	m, err := cluster.ReconcileManifest(dir, addrs, sketch.MinHash)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 3 || m.Engine != sketch.MinHash {
		t.Fatalf("first boot pinned %+v", m)
	}
	if _, err := os.Stat(cluster.ManifestPath(dir)); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	// Later boot, engine flag unset: manifest's pin carries.
	m, err = cluster.ReconcileManifest(dir, addrs, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine != sketch.MinHash {
		t.Fatalf("reboot lost the engine pin: %+v", m)
	}

	// Shard count drift is the fatal misroute case.
	if _, err := cluster.ReconcileManifest(dir, addrs[:2], ""); err == nil || !strings.Contains(err.Error(), "misroutes") {
		t.Fatalf("count drift = %v, want misroute refusal", err)
	}
	// Engine drift against the pin is refused.
	if _, err := cluster.ReconcileManifest(dir, addrs, sketch.KMV); err == nil || !strings.Contains(err.Error(), "pins sketch engine") {
		t.Fatalf("engine drift = %v, want pin refusal", err)
	}

	// Address moves are advisory: same count, new hosts — refreshed in place.
	moved := []string{"http://x:1", "http://y:2", "http://z:3"}
	m, err = cluster.ReconcileManifest(dir, moved, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Addrs[0] != "http://x:1" {
		t.Fatalf("address refresh not applied: %+v", m)
	}
	reloaded, err := cluster.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Addrs[2] != "http://z:3" {
		t.Fatalf("address refresh not persisted: %+v", reloaded)
	}
}

func TestSaveManifestRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := &cluster.Manifest{Version: 1, Shards: 0, Engine: sketch.MinHash}
	if err := cluster.SaveManifest(dir, bad); err == nil {
		t.Fatal("SaveManifest accepted an invalid manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, "cluster.json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("invalid save left a file behind: %v", err)
	}
}
