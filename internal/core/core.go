// Package core implements the DIALITE pipeline — the paper's primary
// contribution (Fig. 1): Discover related tables in a data lake, Align &
// Integrate them with ALITE's holistic matching and Full Disjunction, and
// Analyze the integrated table with downstream applications. Every stage
// is pluggable: discoverers and integration operators live in registries
// users can extend (paper §3.2), and intermediate results are returned so
// users can validate each step, as the demo does.
package core

import (
	"context"
	"fmt"

	"repro/internal/alite"
	"repro/internal/analyze"
	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/fd"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/schemamatch"
	"repro/internal/synth"
	"repro/internal/table"
)

// Config configures a Pipeline.
type Config struct {
	// Knowledge is the curated knowledge base (kb.Demo() in the demo);
	// nil means none.
	Knowledge *kb.KB
	// SynthesizeKB merges a lake-synthesized KB into Knowledge.
	SynthesizeKB bool
	// LakeOptions tunes index construction (LSH parameters).
	LakeOptions lake.Options
	// Shards splits the catalog across this many shard lakes (lake.Sharded):
	// private per-shard interners and indexes, hash-routed mutations,
	// scatter-gather discovery with byte-identical rankings. 0 or 1 builds
	// the usual single lake.
	Shards int
}

// Pipeline is a DIALITE instance bound to one data lake — a single
// lake.Lake or a lake.Sharded composite behind the lake.Catalog interface;
// every stage works identically against either.
type Pipeline struct {
	lake        lake.Catalog
	discoverers *discovery.Registry
	operators   *integrate.Registry
}

// New preprocesses the lake tables and returns a pipeline with the
// built-in discoverers and operators registered. cfg.Shards > 1 builds a
// sharded catalog.
func New(tables []*table.Table, cfg Config) (*Pipeline, error) {
	lopts := cfg.LakeOptions
	lopts.Knowledge = cfg.Knowledge
	lopts.SynthesizeKB = cfg.SynthesizeKB
	var (
		c   lake.Catalog
		err error
	)
	if cfg.Shards > 1 {
		c, err = lake.NewSharded(tables, cfg.Shards, lopts)
	} else {
		c, err = lake.New(tables, lopts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return FromCatalog(c), nil
}

// FromCatalog wraps an already-built catalog (a *lake.Lake or a
// *lake.Sharded) with the built-in discoverers and operators.
func FromCatalog(c lake.Catalog) *Pipeline {
	return &Pipeline{
		lake:        c,
		discoverers: discovery.NewRegistry(),
		operators:   integrate.NewRegistry(),
	}
}

// FromLake wraps an already-built lake — typically one recovered from a
// persisted snapshot + WAL — with the built-in discoverers and operators.
func FromLake(l *lake.Lake) *Pipeline { return FromCatalog(l) }

// FromDir loads a CSV directory as the lake and builds the pipeline.
// cfg.Shards > 1 shards the loaded tables.
func FromDir(dir string, cfg Config) (*Pipeline, error) {
	tables, err := table.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: lake: %w", err)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("core: lake: no CSV tables in %s", dir)
	}
	return New(tables, cfg)
}

// Lake exposes the preprocessed catalog — a *lake.Lake, or a *lake.Sharded
// when the pipeline was built with Config.Shards > 1 (type-assert for
// concrete-type APIs such as persistence). The catalog is mutable:
// AddTables and RemoveTables maintain the discovery indexes incrementally,
// and discovery queries may run concurrently with mutations.
func (p *Pipeline) Lake() lake.Catalog { return p.lake }

// AddTables incrementally indexes additional tables into the pipeline's
// lake — all three discovery indexes absorb the delta without a rebuild,
// and in-flight Discover calls keep running (lake.Lake.Add documents the
// concurrency contract and KB semantics).
func (p *Pipeline) AddTables(tables ...*table.Table) error {
	if err := p.lake.Add(tables...); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// RemoveTables drops the named tables from the pipeline's lake and its
// discovery indexes (lake.Lake.Remove documents the contract).
func (p *Pipeline) RemoveTables(names ...string) error {
	if err := p.lake.Remove(names...); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Discoverers exposes the discovery registry for user extensions (Fig. 4).
func (p *Pipeline) Discoverers() *discovery.Registry { return p.discoverers }

// Operators exposes the integration-operator registry (Fig. 6).
func (p *Pipeline) Operators() *integrate.Registry { return p.operators }

// GenerateQueryTable fabricates a query table from a prompt (Fig. 5's
// GPT-3 substitute).
func (p *Pipeline) GenerateQueryTable(prompt string, rows, cols int, seed int64) (*table.Table, error) {
	return synth.GenerateQueryTable(prompt, rows, cols, seed)
}

// DefaultMethods are the discovery methods the demo runs when the user
// does not choose: SANTOS for unionable search, LSH Ensemble for joinable
// search.
var DefaultMethods = []string{"santos-union", "lsh-join"}

// DiscoverRequest configures the discovery stage.
type DiscoverRequest struct {
	// Query is the query table Q.
	Query *table.Table
	// QueryColumn is the intent/query column index within Q.
	QueryColumn int
	// Methods names the discoverers to run; nil runs DefaultMethods.
	Methods []string
	// K bounds each method's result list; 0 means 10.
	K int
}

// DiscoverResponse is the discovery stage's output.
type DiscoverResponse struct {
	// PerMethod holds each method's ranked results.
	PerMethod map[string][]discovery.Result
	// IntegrationSet is the deduplicated union of all results with the
	// query table first — the input to Align & Integrate.
	IntegrationSet []*table.Table
	// ShardErrors is non-empty when the discovery run was partial: some
	// shards of a cluster-mode catalog were unreachable and contributed
	// nothing (discovery.RunAllPartial). PerMethod and IntegrationSet then
	// cover the reachable shards only. Always empty for in-process lakes.
	ShardErrors []discovery.ShardError
}

// Partial reports whether the discovery run covered only part of the
// catalog — see ShardErrors.
func (r *DiscoverResponse) Partial() bool { return len(r.ShardErrors) > 0 }

// Discover runs stage 1. The configured discoverers fan out concurrently
// (discovery.RunAll), so a multi-method query costs as much as its slowest
// method; the merged response is deterministic and identical to running the
// methods one by one. Cancelling ctx aborts the fan-out — workers stop at
// their next checkpoint, none leak — and Discover returns ctx.Err().
//
// The request is validated up front: a nil query, a negative K, or a
// QueryColumn outside the query table's columns is rejected with a
// descriptive error before any discoverer runs.
func (p *Pipeline) Discover(ctx context.Context, req DiscoverRequest) (*DiscoverResponse, error) {
	if req.Query == nil {
		return nil, fmt.Errorf("core: discover: nil query table")
	}
	if req.K < 0 {
		return nil, fmt.Errorf("core: discover: negative K %d (0 means the default of 10)", req.K)
	}
	if req.QueryColumn < 0 || req.QueryColumn >= req.Query.NumCols() {
		return nil, fmt.Errorf("core: discover: query column %d out of range for table %q with %d columns", req.QueryColumn, req.Query.Name, req.Query.NumCols())
	}
	methods := req.Methods
	if len(methods) == 0 {
		methods = DefaultMethods
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	perMethod, set, shardErrs, err := discovery.Discover(ctx, p.discoverers, p.lake, req.Query, req.QueryColumn, k, methods)
	if err != nil {
		return nil, fmt.Errorf("core: discover: %w", err)
	}
	return &DiscoverResponse{PerMethod: perMethod, IntegrationSet: set, ShardErrors: shardErrs}, nil
}

// IntegrateRequest configures the align-and-integrate stage.
type IntegrateRequest struct {
	// Tables is the integration set (from Discover or user-provided — the
	// traditional integration scenario of §2.2).
	Tables []*table.Table
	// Operator names the integration operator; "" means "alite-fd".
	Operator string
	// Matcher overrides the schema matcher; nil uses holistic matching
	// with the pipeline's knowledge base.
	Matcher schemamatch.Matcher
	// RowIDs names source rows for provenance; nil uses "<table>:<row>".
	RowIDs integrate.RowIDFunc
	// WithProvenance adds the TIDs column to the integrated table.
	WithProvenance bool
}

// IntegrateResponse is the integration stage's output.
type IntegrateResponse struct {
	// Table is the integrated table.
	Table *table.Table
	// Tuples are the integrated tuples with provenance.
	Tuples []fd.Tuple
	// Operator echoes the operator used.
	Operator string
}

// Integrate runs stage 2. Cancelling ctx aborts the integration operator
// mid-run (the default FD operator polls it inside the complementation
// closure) and Integrate returns ctx.Err().
func (p *Pipeline) Integrate(ctx context.Context, req IntegrateRequest) (*IntegrateResponse, error) {
	if len(req.Tables) == 0 {
		return nil, fmt.Errorf("core: integrate: empty integration set")
	}
	opName := req.Operator
	if opName == "" {
		opName = "alite-fd"
	}
	op, ok := p.operators.Get(opName)
	if !ok {
		return nil, fmt.Errorf("core: integrate: unknown operator %q (have %v)", opName, p.operators.Names())
	}
	matcher := req.Matcher
	if matcher == nil {
		matcher = schemamatch.Holistic{Knowledge: p.lake.Knowledge()}
	}
	// The default FD operator shares the lake-wide value dictionary, so
	// interning the integration set's cells is a cache hit for lake values.
	if fdOp, ok := op.(integrate.ALITEFD); ok && fdOp.Dict == nil {
		fdOp.Dict = p.lake.Dict()
		op = fdOp
	}
	out, tuples, err := integrate.Apply(ctx, op, req.Tables, matcher, req.RowIDs, req.WithProvenance)
	if err != nil {
		return nil, fmt.Errorf("core: integrate: %w", err)
	}
	return &IntegrateResponse{Table: out, Tuples: tuples, Operator: opName}, nil
}

// IntegrateALITE runs ALITE directly (matcher + FD with full intermediate
// artifacts), the default path of the demo. ctx cancellation aborts the FD
// closure, as in Integrate.
func (p *Pipeline) IntegrateALITE(ctx context.Context, tables []*table.Table, rowIDs alite.RowIDFunc, withProvenance bool) (*alite.Result, error) {
	return alite.Integrate(ctx, tables, alite.Options{
		Knowledge:      p.lake.Knowledge(),
		RowIDs:         rowIDs,
		WithProvenance: withProvenance,
		Dict:           p.lake.Dict(),
	})
}

// Correlate computes the Pearson correlation between two columns of an
// integrated table, by header name (stage 3, Example 3). The computation is
// one linear pass; ctx is checked once at entry so an already-expired
// request deadline (the serving layer's timeout) fails fast.
func (p *Pipeline) Correlate(ctx context.Context, t *table.Table, colA, colB string) (float64, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	a, ok := t.ColumnIndex(colA)
	if !ok {
		return 0, 0, fmt.Errorf("core: analyze: no column %q in %q", colA, t.Name)
	}
	b, ok := t.ColumnIndex(colB)
	if !ok {
		return 0, 0, fmt.Errorf("core: analyze: no column %q in %q", colB, t.Name)
	}
	return analyze.Pearson(t, a, b)
}

// ResolveEntities runs entity resolution over an integrated table with the
// pipeline's knowledge base (stage 3, Example 5). ctx is observed across
// the pair-comparison loop; a cancelled call returns ctx.Err() promptly.
//
// Resolution is request-scoped: when resolving with the lake's own KB the
// call runs through a kb.Annotator.ERScope of the lake-wide annotation
// cache — known lake canonicals and compiled-KB entities resolve to their
// shared codes, while strings outside both are cached (with collision-free
// top-down extended IDs) only for the duration of the call. Resolving any
// number of unrelated user-supplied tables through one long-lived pipeline
// therefore no longer grows the pipeline's memory. Pass your own
// er.Options.Annotator (or Knowledge) to override the scoping.
func (p *Pipeline) ResolveEntities(ctx context.Context, t *table.Table, opts er.Options) (*er.Resolution, error) {
	if opts.Knowledge == nil {
		opts.Knowledge = p.lake.Knowledge()
		if opts.Annotator == nil {
			// Resolving with the lake's own KB: scope the lake-wide
			// annotation cache per request — but only while the KB is
			// unchanged since the lake was built or last re-annotated
			// (kb.Annotator.UpToDate). A mutated KB falls back to a fresh
			// per-call cache over the recompiled engine, honoring the
			// mutation as the string path always did.
			if ann := p.lake.Annotator(); ann.UpToDate(opts.Knowledge) {
				opts.Annotator = ann.ERScope()
			}
		}
	}
	return er.Resolve(ctx, t, opts)
}

// RunRequest configures an end-to-end pipeline run.
type RunRequest struct {
	Query          *table.Table
	QueryColumn    int
	Methods        []string
	K              int
	Operator       string
	WithProvenance bool
}

// RunResult bundles the stage outputs of an end-to-end run.
type RunResult struct {
	Discovery   *DiscoverResponse
	Integration *IntegrateResponse
}

// Run executes discover then integrate (Fig. 1 end to end). Analysis is
// left to the caller, who picks the downstream application. ctx flows
// through both stages; cancellation aborts whichever stage is running.
func (p *Pipeline) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	disc, err := p.Discover(ctx, DiscoverRequest{
		Query:       req.Query,
		QueryColumn: req.QueryColumn,
		Methods:     req.Methods,
		K:           req.K,
	})
	if err != nil {
		return nil, err
	}
	integ, err := p.Integrate(ctx, IntegrateRequest{
		Tables:         disc.IntegrationSet,
		Operator:       req.Operator,
		WithProvenance: req.WithProvenance,
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{Discovery: disc, Integration: integ}, nil
}
