package core

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/tokenize"
)

func demoPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(paperdata.CovidLake(), Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFig1EndToEndPipeline(t *testing.T) {
	// The full paper walk-through: T1 discovers T2 (unionable) and T3
	// (joinable); ALITE integrates to Fig. 3; Example 3's correlations
	// follow.
	p := demoPipeline(t)
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	res, err := p.Run(context.Background(), RunRequest{Query: q, QueryColumn: city})
	if err != nil {
		t.Fatal(err)
	}
	// Discovery found both tables.
	names := make([]string, 0, len(res.Discovery.IntegrationSet))
	for _, tb := range res.Discovery.IntegrationSet {
		names = append(names, tb.Name)
	}
	if strings.Join(names, ",") != "T1,T2,T3" {
		t.Fatalf("integration set = %v", names)
	}
	// Integration matches Fig. 3 values.
	want := paperdata.Fig3Expected()
	got := res.Integration.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Fatalf("pipeline integration != Fig. 3:\n%s", res.Integration.Table)
	}
	// Analysis reproduces Example 3.
	r1, n1, err := p.Correlate(context.Background(), res.Integration.Table, paperdata.ColVaccRate, paperdata.ColDeathRate)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 3 || math.Abs(math.Round(r1*100)/100-0.16) > 1e-9 {
		t.Errorf("corr(vacc,death) = %v over %d pairs, want 0.16 over 3", r1, n1)
	}
	r2, _, err := p.Correlate(context.Background(), res.Integration.Table, paperdata.ColCases, paperdata.ColVaccRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Round(r2*10)/10-0.9) > 1e-9 {
		t.Errorf("corr(cases,vacc) = %v, want 0.9", r2)
	}
}

func TestDiscoverPerMethodResults(t *testing.T) {
	p := demoPipeline(t)
	q := paperdata.T1()
	resp, err := p.Discover(context.Background(), DiscoverRequest{Query: q, QueryColumn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.PerMethod["santos-union"]) == 0 || resp.PerMethod["santos-union"][0].Table.Name != "T2" {
		t.Errorf("santos results = %+v", resp.PerMethod["santos-union"])
	}
	if len(resp.PerMethod["lsh-join"]) == 0 || resp.PerMethod["lsh-join"][0].Table.Name != "T3" {
		t.Errorf("lsh results = %+v", resp.PerMethod["lsh-join"])
	}
}

func TestDiscoverValidation(t *testing.T) {
	p := demoPipeline(t)
	if _, err := p.Discover(context.Background(), DiscoverRequest{}); err == nil {
		t.Error("nil query must error")
	}
	if _, err := p.Discover(context.Background(), DiscoverRequest{Query: paperdata.T1(), Methods: []string{"nope"}}); err == nil {
		t.Error("unknown method must error")
	}
	if _, err := p.Discover(context.Background(), DiscoverRequest{Query: paperdata.T1(), K: -1}); err == nil || !strings.Contains(err.Error(), "negative K") {
		t.Errorf("negative K = %v, want descriptive error", err)
	}
	for _, col := range []int{-1, paperdata.T1().NumCols()} {
		if _, err := p.Discover(context.Background(), DiscoverRequest{Query: paperdata.T1(), QueryColumn: col}); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("query column %d = %v, want out-of-range error", col, err)
		}
	}
}

// TestResolveEntitiesRequestScoped pins the ER scoping semantics: resolving
// a foreign (non-lake) table through the pipeline must produce exactly the
// resolution a fresh per-call annotator would, while running through a
// request scope of the shared lake cache (kb.Annotator.ERScope) — same
// clusters, same pair scores, with nothing request-specific surviving the
// call in the shared annotator (pinned structurally in the kb package).
func TestResolveEntitiesRequestScoped(t *testing.T) {
	p := demoPipeline(t)
	tb := table.New("guest", "Vaccine", "Agency", "Country")
	tb.MustAddRow(table.StringValue("JnJ"), table.StringValue("FDA"), table.StringValue("USA"))
	tb.MustAddRow(table.StringValue("J&J"), table.StringValue("FDA"), table.StringValue("United States"))
	tb.MustAddRow(table.StringValue("Frobnicate Labs"), table.NullValue(), table.StringValue("Erewhon"))
	tb.MustAddRow(table.StringValue("Frobnicate  Labs"), table.NullValue(), table.StringValue("Erewhon"))
	got, err := p.ResolveEntities(context.Background(), tb, er.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := er.Resolve(context.Background(), tb, er.Options{Knowledge: p.Lake().Knowledge()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("scoped resolution: %d clusters, fresh annotator: %d", len(got.Clusters), len(want.Clusters))
	}
	for i := range got.Clusters {
		if len(got.Clusters[i]) != len(want.Clusters[i]) {
			t.Fatalf("cluster %d: scoped %v vs fresh %v", i, got.Clusters[i], want.Clusters[i])
		}
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("scoped pairs %d vs fresh %d", len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("pair %d: scoped %+v vs fresh %+v", i, got.Pairs[i], want.Pairs[i])
		}
	}
	// Repeat resolutions stay deterministic — each request gets a fresh
	// scope, never residue from the previous one.
	again, err := p.ResolveEntities(context.Background(), tb, er.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Clusters) != len(got.Clusters) {
		t.Fatalf("second scoped resolution diverged: %d vs %d clusters", len(again.Clusters), len(got.Clusters))
	}
}

func TestIntegrateUserProvidedSet(t *testing.T) {
	// §2.2: the integration set can be user-provided (traditional
	// integration) — the Fig. 7 vaccine tables without discovery.
	p := demoPipeline(t)
	resp, err := p.Integrate(context.Background(), IntegrateRequest{
		Tables: paperdata.VaccineSet(),
		RowIDs: func(name string, row int) string { return paperdata.TupleID(name, row) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8bExpected()
	got := resp.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Fatalf("integrate != Fig. 8(b):\n%s", resp.Table)
	}
	if resp.Operator != "alite-fd" {
		t.Errorf("default operator = %q", resp.Operator)
	}
}

func TestIntegrateWithAlternativeOperator(t *testing.T) {
	p := demoPipeline(t)
	resp, err := p.Integrate(context.Background(), IntegrateRequest{Tables: paperdata.VaccineSet(), Operator: "outer-join"})
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8aExpected()
	got := resp.Table.Clone()
	got.Columns = want.Columns
	if !got.EqualUnordered(want) {
		t.Fatalf("outer-join != Fig. 8(a):\n%s", resp.Table)
	}
	if _, err := p.Integrate(context.Background(), IntegrateRequest{Tables: paperdata.VaccineSet(), Operator: "nope"}); err == nil {
		t.Error("unknown operator must error")
	}
	if _, err := p.Integrate(context.Background(), IntegrateRequest{}); err == nil {
		t.Error("empty set must error")
	}
}

func TestResolveEntitiesEndToEnd(t *testing.T) {
	// Fig. 8(d) via the pipeline: integrate with FD, then ER.
	p := demoPipeline(t)
	resp, err := p.Integrate(context.Background(), IntegrateRequest{Tables: paperdata.VaccineSet()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ResolveEntities(context.Background(), resp.Table, er.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved.NumRows() != 2 {
		t.Fatalf("ER over FD = %d entities, want 2:\n%s", res.Resolved.NumRows(), res.Resolved)
	}
	foundJJ := false
	for r := 0; r < res.Resolved.NumRows(); r++ {
		if res.Resolved.Cell(r, 0).Str() == "J&J" && res.Resolved.Cell(r, 1).Str() == "FDA" {
			foundJJ = true
		}
	}
	if !foundJJ {
		t.Error("resolved table must contain (J&J, FDA, ...)")
	}
}

func TestExtensibilityUserDiscovererAndOperator(t *testing.T) {
	// §3.2: register a custom discoverer (Fig. 4) and operator (Fig. 6)
	// and run the pipeline with them.
	p := demoPipeline(t)
	err := p.Discoverers().Register(discovery.SimilarityFunc{
		FuncName: "overlap-sim",
		Sim: func(q, c *table.Table) float64 {
			best := 0
			for qc := 0; qc < q.NumCols(); qc++ {
				for cc := 0; cc < c.NumCols(); cc++ {
					ov := tokenize.Overlap(
						tokenize.ValueSet(q.DistinctStrings(qc)),
						tokenize.ValueSet(c.DistinctStrings(cc)))
					if ov > best {
						best = ov
					}
				}
			}
			return float64(best)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Operators().Register(integrate.Func{
		OpName: "user-outer-join",
		F:      integrate.FullOuterJoin{}.Run,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := paperdata.T1()
	res, err := p.Run(context.Background(), RunRequest{Query: q, QueryColumn: 1, Methods: []string{"overlap-sim"}, Operator: "user-outer-join"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discovery.IntegrationSet) < 2 {
		t.Errorf("custom discoverer found nothing: %v", res.Discovery.IntegrationSet)
	}
	if !strings.HasPrefix(res.Integration.Table.Name, "user-outer-join(") {
		t.Errorf("operator not applied: %q", res.Integration.Table.Name)
	}
}

func TestGenerateQueryTablePassthrough(t *testing.T) {
	p := demoPipeline(t)
	q, err := p.GenerateQueryTable("COVID-19 cases", 5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 5 || q.NumCols() != 5 {
		t.Error("generated table wrong shape")
	}
	// The generated covid query discovers the demo lake's tables.
	city, ok := q.ColumnIndex("City")
	if !ok {
		t.Fatal("generated table missing City")
	}
	resp, err := p.Discover(context.Background(), DiscoverRequest{Query: q, QueryColumn: city})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.PerMethod["santos-union"]) == 0 {
		t.Error("generated query should discover unionable tables")
	}
}

func TestCorrelateErrors(t *testing.T) {
	p := demoPipeline(t)
	tb := paperdata.T3()
	if _, _, err := p.Correlate(context.Background(), tb, "nope", paperdata.ColCases); err == nil {
		t.Error("unknown column must error")
	}
	if _, _, err := p.Correlate(context.Background(), tb, paperdata.ColCases, "nope"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestFromDir(t *testing.T) {
	dir := t.TempDir()
	for _, tb := range paperdata.CovidLake() {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	p, err := FromDir(dir, Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lake().Size() != 2 {
		t.Errorf("lake size = %d", p.Lake().Size())
	}
	if _, err := FromDir(filepath.Join(dir, "no"), Config{}); err == nil {
		t.Error("missing dir must error")
	}
}

// TestResolveEntitiesHonorsKBMutation pins the annotation-cache staleness
// guard: mutating the lake's KB after the build must be honored by entity
// resolution (the lake-wide cache compiled at build time is bypassed once
// the KB version moves).
func TestResolveEntitiesHonorsKBMutation(t *testing.T) {
	p, err := New(paperdata.CovidLake(), Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	tb := table.New("m", "org")
	tb.MustAddRow(table.StringValue("Globex Corp"))
	tb.MustAddRow(table.StringValue("GBX"))
	res, err := p.ResolveEntities(context.Background(), tb, er.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("before alias: %d clusters, want 2", len(res.Clusters))
	}
	p.Lake().Knowledge().AddAlias("GBX", "Globex Corp")
	res, err = p.ResolveEntities(context.Background(), tb, er.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("after alias: %d clusters, want 1 (mutation must be honored)", len(res.Clusters))
	}
}

func TestPipelineMutableLake(t *testing.T) {
	p := demoPipeline(t)
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	extra.MustAddRow(table.StringValue("Manchester"), table.IntValue(20))
	extra.MustAddRow(table.StringValue("Barcelona"), table.IntValue(30))
	if err := p.AddTables(extra); err != nil {
		t.Fatal(err)
	}
	if p.Lake().Size() != 3 {
		t.Fatalf("lake size = %d after AddTables", p.Lake().Size())
	}
	// The added table is discoverable end to end through the pipeline.
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	resp, err := p.Discover(context.Background(), DiscoverRequest{Query: q, QueryColumn: city, Methods: []string{"lsh-join"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range resp.PerMethod["lsh-join"] {
		found = found || r.Table.Name == "T9"
	}
	if !found {
		t.Error("added table not discovered")
	}
	if err := p.RemoveTables("T9"); err != nil {
		t.Fatal(err)
	}
	resp, err = p.Discover(context.Background(), DiscoverRequest{Query: q, QueryColumn: city, Methods: []string{"lsh-join"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.PerMethod["lsh-join"] {
		if r.Table.Name == "T9" {
			t.Error("removed table still discovered")
		}
	}
	if err := p.RemoveTables("T9"); err == nil || !strings.Contains(err.Error(), "T9") {
		t.Errorf("removing a removed table = %v", err)
	}
	if err := p.AddTables(table.New("")); err == nil {
		t.Error("AddTables must propagate validation errors")
	}
}
