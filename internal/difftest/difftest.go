package difftest

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/discovery"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/table"
)

// Differential-equivalence helpers shared by the lake rebuild harness
// (internal/lake/differential_test.go) and the persistence crash-recovery
// matrix (internal/persist): a fixed small vocabulary that makes joinable
// and unionable overlaps dense, table/KB generators over it, and signature
// renderers that serialize discovery answers with float64 scores at full
// bit precision — so "byte-identical" comparisons mean exactly that.

// DiffCities and DiffCountries are the differential vocabulary.
var (
	DiffCities    = []string{"berlin", "paris", "tokyo", "boston", "lyon", "madrid", "rome", "oslo", "cairo", "lima", "new york", "sydney"}
	DiffCountries = []string{"germany", "france", "japan", "usa", "spain", "italy"}
)

// DiffCountryOf maps each city to one fixed country so the city->country
// relationship annotates consistently across every generated table.
func DiffCountryOf(city string) string {
	for i, c := range DiffCities {
		if c == city {
			return DiffCountries[i%len(DiffCountries)]
		}
	}
	return DiffCountries[0]
}

// DiffKB is the curated knowledge base of the differential lake: city and
// country types under a shared root, a located-in relationship, and a few
// aliases.
func DiffKB() *kb.KB {
	k := kb.New()
	k.AddType("place", "")
	k.AddType("city", "place")
	k.AddType("country", "place")
	for _, c := range DiffCities {
		k.AddEntity(c, "city")
	}
	for _, c := range DiffCountries {
		k.AddEntity(c, "country")
	}
	for _, c := range DiffCities {
		k.AddRelation(c, "located in", DiffCountryOf(c))
	}
	k.AddAlias("nyc", "new york")
	k.AddAlias("deutschland", "germany")
	return k
}

// DiffTable fabricates one lake table: a city column, usually a country
// column (row-aligned with the cities, so SANTOS sees the located-in
// relationship), and a numeric measure column.
func DiffTable(rng *rand.Rand, name string) *table.Table {
	withCountry := rng.Intn(4) != 0
	cols := []string{"city", "metric"}
	if withCountry {
		cols = []string{"city", "country", "metric"}
	}
	t := table.New(name, cols...)
	rows := 4 + rng.Intn(7)
	for r := 0; r < rows; r++ {
		city := DiffCities[rng.Intn(len(DiffCities))]
		metric := table.IntValue(int64(rng.Intn(1000)))
		if withCountry {
			t.MustAddRow(table.StringValue(city), table.StringValue(DiffCountryOf(city)), metric)
		} else {
			t.MustAddRow(table.StringValue(city), metric)
		}
	}
	return t
}

// DiffMethods is the discovery method set the signatures cover.
var DiffMethods = []string{"santos-union", "lsh-join", "josie-join", "syntactic-union"}

// DiscoverySig renders one full discovery run — every method's ranked
// results and the merged integration set — into a byte-comparable string.
// Scores are rendered from their exact float64 bits: "identical" means
// identical, not approximately equal. The target may be a single *lake.Lake,
// a *lake.Sharded, or a cluster coordinator over remote shard processes:
// the sharded and multi-process differential harnesses compare the forms'
// signatures directly. A partial run (unreachable shards) renders as an
// error, so degraded answers can never masquerade as equivalent ones.
func DiscoverySig(reg *discovery.Registry, l discovery.Target, q *table.Table, col, k int) string {
	perMethod, set, shardErrs, err := discovery.Discover(context.Background(), reg, l, q, col, k, DiffMethods)
	if err != nil {
		return "err:" + err.Error()
	}
	if len(shardErrs) > 0 {
		return fmt.Sprintf("err: partial run, %d shard(s) down: %v", len(shardErrs), shardErrs[0])
	}
	s := ""
	for _, m := range DiffMethods {
		s += m + ":"
		for _, r := range perMethod[m] {
			s += fmt.Sprintf("%s|%016x|%d;", r.Table.Name, math.Float64bits(r.Score), r.Column)
		}
		s += "\n"
	}
	s += "set:"
	for _, t := range set {
		s += t.Name + ";"
	}
	return s
}

// IndexSig renders raw index-level answers — JOSIE exact top-k, LSH
// Ensemble containment, SANTOS union search — for one query table. Unlike
// the discovery layer, which filters results through the lake catalog (and
// so would mask an index still returning a removed table as a ghost), this
// compares what the indexes themselves answer.
func IndexSig(l *lake.Lake, q *table.Table, col int) string {
	vals := q.DistinctStrings(col)
	s := "josie:"
	for _, r := range l.Josie().TopK(vals, 5) {
		s += fmt.Sprintf("%s|%d;", r.Set.Key(), r.Overlap)
	}
	s += "\nlsh:"
	for _, r := range l.Join().Query(vals, 0.4, 0) {
		s += fmt.Sprintf("%s|%016x;", r.Domain.Key(), math.Float64bits(r.Containment))
	}
	s += "\nsantos:"
	if res, err := l.Santos().Query(q, col, 0); err != nil {
		s += "err:" + err.Error()
	} else {
		for _, r := range res {
			s += fmt.Sprintf("%s|%016x|%d;", r.Table.Name, math.Float64bits(r.Score), r.MatchedColumn)
		}
	}
	return s
}

// LakeSig renders the discovery and raw index signatures of l for a set of
// query tables — the whole-lake fingerprint the persistence tests compare
// between a recovered lake and a fresh build.
func LakeSig(l *lake.Lake, queries []*table.Table) string {
	reg := discovery.NewRegistry()
	s := ""
	for _, q := range queries {
		s += "== " + q.Name + "\n"
		s += DiscoverySig(reg, l, q, 0, 0) + "\n"
		s += IndexSig(l, q, 0) + "\n"
	}
	return s
}
