package discovery

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/testutil"
)

// blockingDiscoverer parks inside Discover until its context is cancelled —
// a stand-in for a slow index scan, making "cancel lands mid-fan-out"
// deterministic instead of timing-dependent.
type blockingDiscoverer struct {
	started chan struct{}
}

func (b blockingDiscoverer) Name() string { return "blocking" }

func (b blockingDiscoverer) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	close(b.started)
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestRunAllCancelMidFanOut(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	before := runtime.NumGoroutine()
	blocker := blockingDiscoverer{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started // the fan-out is provably mid-flight
		cancel()
	}()
	t0 := time.Now()
	out, err := RunAll(ctx, l, q, cityCol(t, q), 10, []Discoverer{blocker, SantosUnion{}, LSHJoin{}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll = (%v, %v), want ctx.Err()", out, err)
	}
	if lat := time.Since(t0); lat > time.Second {
		t.Fatalf("cancelled fan-out took %v to return", lat)
	}
	// Every worker drained before RunAll returned: nothing may leak.
	testutil.WaitGoroutinesSettle(t, before)
	cancel()
}

func TestDiscoverPreCancelled(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := Discover(ctx, NewRegistry(), l, q, cityCol(t, q), 10, []string{"santos-union", "lsh-join"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Discover err = %v", err)
	}
}

// TestBuiltinsObserveCancellation pins that each built-in discoverer
// returns ctx.Err() on an already-expired context — the checkpoint inside
// its index scan, not just the fan-out dispatcher.
func TestBuiltinsObserveCancellation(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, d := range []Discoverer{SantosUnion{}, LSHJoin{}, JosieJoin{}, SyntacticUnion{}} {
		if _, err := d.Discover(ctx, l, q, cityCol(t, q), 5); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want Canceled", d.Name(), err)
		}
	}
}
