// Package discovery implements DIALITE's first stage (paper §2.1): given a
// query table and an intent/query column, find related tables in the lake.
// The built-in discoverers are the paper's — SANTOS for unionable search
// and LSH Ensemble for joinable search — plus a JOSIE-style exact top-k
// joinable search, a syntactic-unionability baseline, and the user-defined
// similarity hook of Fig. 4. Results from multiple discoverers merge into
// one integration set ("we persist the set of tables found by all
// techniques"), which feeds the align-and-integrate stage.
package discovery

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/josie"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/table"
)

// queryColumnDomain resolves the query column's value set for the joinable
// discoverers. When the query table is the lake's own table (pointer
// identity — a renamed or modified copy never matches), the lake's cached
// domain is returned with its precomputed token IDs and MinHash
// fingerprints, skipping per-query re-extraction and re-hashing entirely;
// otherwise the domain is extracted with the same normalization the lake
// indexes use (lake.QueryDomain, which also validates the column range —
// an out-of-range column never hits the cache, so it always reaches that
// check).
func queryColumnDomain(l *lake.Lake, q *table.Table, queryCol int) (*lshensemble.Domain, []string, error) {
	if lt, ok := l.Get(q.Name); ok && lt == q {
		if d := l.DomainFor(q.Name, queryCol); d != nil {
			return d, nil, nil
		}
	}
	domain, err := lake.QueryDomain(q, queryCol)
	return nil, domain, err
}

// Result is one discovered table.
type Result struct {
	// Table is the discovered lake table.
	Table *table.Table
	// Score is method-specific (containment, overlap, semantic score,
	// user similarity) — comparable within one method, not across methods.
	Score float64
	// Method names the discoverer that produced the result.
	Method string
	// Column is the lake column that matched the query column (-1 when
	// the method is table-level).
	Column int
}

// Discoverer finds tables related to a query table. queryCol is the
// intent/query column the demo asks the user to select; k<=0 returns all
// matches. Discover observes ctx cooperatively: once the context is
// cancelled it returns (nil, ctx.Err()) promptly instead of finishing the
// scan — the contract the serving layer's per-request timeouts rely on.
// Implementations must treat an uncancelled ctx as a no-op (results
// identical to running without one).
type Discoverer interface {
	Name() string
	Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error)
}

// SantosUnion is semantic unionable search (SANTOS).
type SantosUnion struct{}

// Name implements Discoverer.
func (SantosUnion) Name() string { return "santos-union" }

// Discover implements Discoverer.
func (SantosUnion) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	res, err := l.Santos().QueryCtx(ctx, q, queryCol, k)
	if err != nil {
		return nil, fmt.Errorf("discovery: santos: %w", err)
	}
	out := make([]Result, 0, len(res))
	for _, r := range res {
		out = append(out, Result{Table: r.Table, Score: r.Score, Method: "santos-union", Column: r.MatchedColumn})
	}
	return out, nil
}

// LSHJoin is joinable search by domain containment (LSH Ensemble).
type LSHJoin struct {
	// Threshold is the minimum containment of the query column's domain in
	// the candidate column. Default 0.5.
	Threshold float64
}

// Name implements Discoverer.
func (LSHJoin) Name() string { return "lsh-join" }

// Discover implements Discoverer.
func (d LSHJoin) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	th := d.Threshold
	if th == 0 {
		th = 0.5
	}
	cached, domain, err := queryColumnDomain(l, q, queryCol)
	if err != nil {
		return nil, fmt.Errorf("discovery: lsh-join: %w", err)
	}
	var hits []lshensemble.Result
	if cached != nil {
		hits, err = l.Join().QueryDomainCtx(ctx, cached, th, 0)
	} else {
		hits, err = l.Join().QueryCtx(ctx, domain, th, 0)
	}
	if err != nil {
		return nil, err
	}
	best := make(map[string]Result)
	for _, h := range hits {
		t, ok := l.Get(h.Domain.Table)
		if !ok || t.Name == q.Name {
			continue
		}
		if cur, seen := best[t.Name]; !seen || h.Containment > cur.Score {
			best[t.Name] = Result{Table: t, Score: h.Containment, Method: "lsh-join", Column: h.Domain.Column}
		}
	}
	return rankResults(best, k), nil
}

// JosieJoin is exact top-k joinable search by overlap (JOSIE-style).
type JosieJoin struct{}

// Name implements Discoverer.
func (JosieJoin) Name() string { return "josie-join" }

// Discover implements Discoverer.
func (JosieJoin) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	cached, domain, err := queryColumnDomain(l, q, queryCol)
	if err != nil {
		return nil, fmt.Errorf("discovery: josie-join: %w", err)
	}
	var hits []josie.Result
	if cached != nil {
		hits, err = l.Josie().TopKIDsCtx(ctx, cached.IDs, 0)
	} else {
		hits, err = l.Josie().TopKCtx(ctx, domain, 0)
	}
	if err != nil {
		return nil, err
	}
	best := make(map[string]Result)
	for _, h := range hits {
		t, ok := l.Get(h.Set.Table)
		if !ok || t.Name == q.Name {
			continue
		}
		if cur, seen := best[t.Name]; !seen || float64(h.Overlap) > cur.Score {
			best[t.Name] = Result{Table: t, Score: float64(h.Overlap), Method: "josie-join", Column: h.Set.Column}
		}
	}
	return rankResults(best, k), nil
}

// SyntacticUnion is the unionability baseline (Nargesian et al. style):
// every query column is matched to its best lake column by token Jaccard,
// and the table scores the average best match. It ignores semantics — the
// X4 experiment contrasts it with SANTOS.
type SyntacticUnion struct{}

// Name implements Discoverer.
func (SyntacticUnion) Name() string { return "syntactic-union" }

// Discover implements Discoverer.
func (SyntacticUnion) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	if q.NumCols() == 0 {
		return nil, fmt.Errorf("discovery: syntactic-union: query table %q has no columns", q.Name)
	}
	qdoms := make([][]string, q.NumCols())
	for c := 0; c < q.NumCols(); c++ {
		qdoms[c], _ = lake.QueryDomain(q, c)
	}
	// Index lake domains per table.
	perTable := make(map[string][][]string)
	for _, d := range l.Domains() {
		perTable[d.Table] = append(perTable[d.Table], d.Values)
	}
	best := make(map[string]Result)
	for name, doms := range perTable {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, ok := l.Get(name)
		if !ok || name == q.Name {
			continue
		}
		total, counted := 0.0, 0
		for _, qd := range qdoms {
			if len(qd) == 0 {
				continue
			}
			counted++
			bestSim := 0.0
			for _, ld := range doms {
				if s := jaccard(qd, ld); s > bestSim {
					bestSim = s
				}
			}
			total += bestSim
		}
		if counted == 0 || total == 0 {
			continue
		}
		best[name] = Result{Table: t, Score: total / float64(counted), Method: "syntactic-union", Column: -1}
	}
	return rankResults(best, k), nil
}

// SimilarityFunc is the paper's Fig. 4 extension point: a user implements
// a similarity between two tables, and DIALITE turns it into a discoverer
// by scanning the lake.
type SimilarityFunc struct {
	// FuncName is the registry key.
	FuncName string
	// Sim scores how related candidate is to the query (higher is more
	// related); non-positive scores are dropped.
	Sim func(query, candidate *table.Table) float64
}

// Name implements Discoverer.
func (s SimilarityFunc) Name() string { return s.FuncName }

// Discover implements Discoverer.
func (s SimilarityFunc) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]Result, error) {
	if s.Sim == nil {
		return nil, fmt.Errorf("discovery: %q has no similarity function", s.FuncName)
	}
	best := make(map[string]Result)
	for _, t := range l.Tables() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t.Name == q.Name {
			continue
		}
		if score := s.Sim(q, t); score > 0 {
			best[t.Name] = Result{Table: t, Score: score, Method: s.FuncName, Column: -1}
		}
	}
	return rankResults(best, k), nil
}

// rankResults orders per-table results by score descending (name
// tie-break) and truncates to k.
func rankResults(best map[string]Result, k int) []Result {
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Table.Name < out[b].Table.Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// jaccard is tokenize.Jaccard inlined over value sets (both already
// normalized/deduplicated).
func jaccard(a, b []string) float64 {
	as := make(map[string]bool, len(a))
	for _, x := range a {
		as[x] = true
	}
	inter := 0
	bs := make(map[string]bool, len(b))
	for _, x := range b {
		if !bs[x] {
			bs[x] = true
			if as[x] {
				inter++
			}
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntegrationSet merges the query table with discovery results from any
// number of methods into the integration set fed to ALITE: the query
// first, then discovered tables deduplicated by name in rank order.
func IntegrationSet(q *table.Table, resultSets ...[]Result) []*table.Table {
	out := []*table.Table{q}
	seen := map[string]bool{q.Name: true}
	for _, rs := range resultSets {
		for _, r := range rs {
			if !seen[r.Table.Name] {
				seen[r.Table.Name] = true
				out = append(out, r.Table)
			}
		}
	}
	return out
}
