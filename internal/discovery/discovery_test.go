package discovery

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/tokenize"
)

func demoLake(t *testing.T) *lake.Lake {
	t.Helper()
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func cityCol(t *testing.T, q *table.Table) int {
	t.Helper()
	c, ok := q.ColumnIndex(paperdata.ColCity)
	if !ok {
		t.Fatal("no City column")
	}
	return c
}

func TestFig2SantosFindsT2(t *testing.T) {
	// Example 1: unionable search with intent column City returns T2 first.
	l := demoLake(t)
	q := paperdata.T1()
	got, err := SantosUnion{}.Discover(context.Background(), l, q, cityCol(t, q), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Table.Name != "T2" {
		t.Fatalf("santos top-1 = %+v, want T2", got)
	}
	if got[0].Method != "santos-union" {
		t.Errorf("method = %q", got[0].Method)
	}
}

func TestFig2LSHJoinFindsT3(t *testing.T) {
	// Example 1: joinable search on the City query column returns T3 (its
	// city column contains 2/3 of the query's cities; T2's contains none).
	l := demoLake(t)
	q := paperdata.T1()
	got, err := LSHJoin{Threshold: 0.5}.Discover(context.Background(), l, q, cityCol(t, q), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Table.Name != "T3" {
		t.Fatalf("lsh-join = %+v, want only T3", got)
	}
	if got[0].Score < 0.6 || got[0].Score > 0.7 {
		t.Errorf("containment = %v, want 2/3", got[0].Score)
	}
	if got[0].Column != 0 {
		t.Errorf("matched column = %d, want 0 (T3.City)", got[0].Column)
	}
}

func TestJosieJoinRanksByOverlap(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	got, err := JosieJoin{}.Discover(context.Background(), l, q, cityCol(t, q), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].Table.Name != "T3" || got[0].Score != 2 {
		t.Fatalf("josie = %+v, want T3 with overlap 2", got)
	}
}

func TestIntegrationSetMergesMethods(t *testing.T) {
	// The paper: "As there may be an overlap in unionable and joinable
	// search results, we persist the set of tables found by all techniques
	// to form an integration set."
	l := demoLake(t)
	q := paperdata.T1()
	u, err := SantosUnion{}.Discover(context.Background(), l, q, cityCol(t, q), 10)
	if err != nil {
		t.Fatal(err)
	}
	j, err := LSHJoin{}.Discover(context.Background(), l, q, cityCol(t, q), 10)
	if err != nil {
		t.Fatal(err)
	}
	set := IntegrationSet(q, u, j)
	names := make([]string, len(set))
	for i, tb := range set {
		names[i] = tb.Name
	}
	if names[0] != "T1" {
		t.Errorf("query must come first: %v", names)
	}
	if !reflect.DeepEqual(names, []string{"T1", "T2", "T3"}) {
		t.Errorf("integration set = %v, want [T1 T2 T3]", names)
	}
	// Duplicates across methods collapse.
	set2 := IntegrationSet(q, u, u, j, j)
	if len(set2) != 3 {
		t.Errorf("dedup failed: %d tables", len(set2))
	}
}

func TestSyntacticUnionBaseline(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	got, err := SyntacticUnion{}.Discover(context.Background(), l, q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// T1 shares values with T3 (cities) but almost nothing with T2 (its
	// rows are disjoint) — the syntactic baseline misses T2, which is
	// exactly why SANTOS exists (experiment X4's point).
	if len(got) == 0 {
		t.Fatal("baseline found nothing")
	}
	if got[0].Table.Name != "T3" {
		t.Errorf("syntactic top-1 = %s, want T3", got[0].Table.Name)
	}
}

func TestUserDefinedSimilarity(t *testing.T) {
	// Fig. 4: a user-defined discoverer based on inner-join overlap of the
	// best column pair.
	l := demoLake(t)
	q := paperdata.T1()
	innerJoinSize := SimilarityFunc{
		FuncName: "inner-join-size",
		Sim: func(query, candidate *table.Table) float64 {
			best := 0
			for qc := 0; qc < query.NumCols(); qc++ {
				qd := tokenize.ValueSet(query.DistinctStrings(qc))
				for cc := 0; cc < candidate.NumCols(); cc++ {
					cd := tokenize.ValueSet(candidate.DistinctStrings(cc))
					if ov := tokenize.Overlap(qd, cd); ov > best {
						best = ov
					}
				}
			}
			return float64(best)
		},
	}
	got, err := innerJoinSize.Discover(context.Background(), l, q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Table.Name != "T3" || got[0].Score != 2 {
		t.Fatalf("user discoverer = %+v, want T3 with score 2", got)
	}
	broken := SimilarityFunc{FuncName: "broken"}
	if _, err := broken.Discover(context.Background(), l, q, 0, 0); err == nil {
		t.Error("missing Sim must error")
	}
}

func TestDiscoverErrors(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	if _, err := (SantosUnion{}).Discover(context.Background(), l, q, 99, 1); err == nil {
		t.Error("bad intent column must error")
	}
	if _, err := (LSHJoin{}).Discover(context.Background(), l, q, 99, 1); err == nil {
		t.Error("bad query column must error")
	}
	if _, err := (JosieJoin{}).Discover(context.Background(), l, q, 99, 1); err == nil {
		t.Error("bad query column must error")
	}
	if _, err := (SyntacticUnion{}).Discover(context.Background(), l, table.New("empty"), 0, 1); err == nil {
		t.Error("no-column query must error")
	}
}

func TestQueryTableNeverDiscovered(t *testing.T) {
	tables := append(paperdata.CovidLake(), paperdata.T1())
	l, err := lake.New(tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	q := paperdata.T1()
	for _, d := range []Discoverer{LSHJoin{Threshold: 0.1}, JosieJoin{}, SyntacticUnion{}} {
		got, err := d.Discover(context.Background(), l, q, cityCol(t, q), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if r.Table.Name == "T1" {
				t.Errorf("%s returned the query table", d.Name())
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	want := []string{"josie-join", "lsh-join", "santos-union", "syntactic-union"}
	if !reflect.DeepEqual(r.Names(), want) {
		t.Errorf("names = %v", r.Names())
	}
	if _, ok := r.Get("santos-union"); !ok {
		t.Error("santos-union missing")
	}
	if err := r.Register(SantosUnion{}); err == nil {
		t.Error("duplicate must error")
	}
	if err := r.Register(SimilarityFunc{FuncName: ""}); err == nil {
		t.Error("empty name must error")
	}
	if err := r.Register(SimilarityFunc{FuncName: "mine", Sim: func(a, b *table.Table) float64 { return 0 }}); err != nil {
		t.Error(err)
	}
	if _, ok := r.Get("mine"); !ok {
		t.Error("custom discoverer missing")
	}
}
