package discovery

import (
	"context"
	"fmt"

	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/table"
)

// RunAll executes the given discoverers concurrently over one query and
// returns their result lists slot-indexed: out[i] is ds[i]'s ranked
// results, so a multi-method DIALITE query costs max(discoverer) instead of
// sum(discoverer) while the merged output stays byte-identical to running
// the methods sequentially. The lake's indexes are immutable and every
// shared interner is lock-protected, so discoverers — including
// user-defined similarity hooks (Fig. 4), which must be safe to call
// concurrently — run without coordination. If any discoverer fails, the
// first error in slot order is returned (deterministic regardless of which
// worker finished first).
//
// Cancellation propagates to every worker: ctx flows into each discoverer
// (the built-ins check it inside their index scans) and the fan-out itself
// stops dispatching once ctx is done. RunAll returns only after every
// in-flight discoverer has returned — cancelling a query never leaks a
// worker goroutine — and reports ctx.Err() when the context was cancelled.
func RunAll(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int, ds []Discoverer) ([][]Result, error) {
	out := make([][]Result, len(ds))
	errs := make([]error, len(ds))
	ferr := par.ForCtx(ctx, len(ds), func(i int) {
		// Discoverers ran on the caller's goroutine before the fan-out, where
		// a server could recover a misbehaving user hook; on a worker
		// goroutine a panic would kill the process, so contain it here and
		// surface it as that slot's error.
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("discovery: %q panicked: %v", ds[i].Name(), r)
			}
		}()
		out[i], errs[i] = ds[i].Discover(ctx, l, q, queryCol, k)
	})
	if ferr != nil {
		return nil, ferr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Resolve maps method names to registered discoverers, in input order.
// Unknown names fail with the available set, before any discoverer runs.
func (r *Registry) Resolve(names []string) ([]Discoverer, error) {
	ds := make([]Discoverer, len(names))
	for i, name := range names {
		d, ok := r.Get(name)
		if !ok {
			return nil, fmt.Errorf("discovery: unknown method %q (have %v)", name, r.Names())
		}
		ds[i] = d
	}
	return ds, nil
}

// Discover is the full discovery stage in one call: resolve the named
// methods against the registry, fan them out concurrently with RunAll, and
// merge the per-method rankings into the integration set ("we persist the
// set of tables found by all techniques"). perMethod is keyed by method
// name; the integration set lists the query table first, then discovered
// tables deduplicated in method order then rank order. Cancelling ctx
// aborts the fan-out and returns ctx.Err() (see RunAll).
func Discover(ctx context.Context, r *Registry, l *lake.Lake, q *table.Table, queryCol, k int, methods []string) (perMethod map[string][]Result, integrationSet []*table.Table, err error) {
	ds, err := r.Resolve(methods)
	if err != nil {
		return nil, nil, err
	}
	all, err := RunAll(ctx, l, q, queryCol, k, ds)
	if err != nil {
		return nil, nil, err
	}
	perMethod = make(map[string][]Result, len(methods))
	for i, m := range methods {
		perMethod[m] = all[i]
	}
	return perMethod, IntegrationSet(q, all...), nil
}
