package discovery

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/table"
)

// Target is what a discovery run executes against: one or more concrete
// shard lakes plus the seqlock epoch that guards multi-index reads. Both
// *lake.Lake (its own single shard) and *lake.Sharded satisfy it, as does
// the lake.Catalog interface the pipeline holds — discoverers themselves
// always receive one concrete *lake.Lake and never see sharding.
type Target interface {
	Shards() []*lake.Lake
	Epoch() uint64
}

// tornRetries is how many times RunAll re-executes a run whose epoch
// samples prove it may have read the lake mid-mutation. One retry is
// enough: the retry re-reads the epoch, and a steady lake settles it;
// under continuous mutation churn the retried run's results are still a
// valid answer for *some* recent lake state, which is all a concurrent
// reader was ever promised.
const tornRetries = 1

// RunAll executes the given discoverers over one query against every shard
// of the target and returns the merged result lists slot-indexed: out[i] is
// ds[i]'s ranked results over the whole catalog. Per-shard rankings
// concatenate and re-rank by (score descending, table name ascending) —
// table names are unique catalog-wide, so the comparator is total and the
// merge deterministic regardless of shard count or scheduling; against a
// single-shard target the output is byte-identical to running the methods
// sequentially. The shards' indexes are immutable and every shared interner
// is lock-protected, so discoverers — including user-defined similarity
// hooks (Fig. 4), which must be safe to call concurrently — run without
// coordination across the discoverer×shard fan-out. If any discoverer
// fails, the first error in (discoverer, shard) slot order is returned
// (deterministic regardless of which worker finished first).
//
// Torn-read protection: a discovery run concurrent with Add/Remove could
// otherwise observe the lake between per-index updates (a table visible to
// JOSIE but not yet to SANTOS). RunAll samples the target's mutation epoch
// before and after the fan-out; any mutation overlapping the run perturbs
// the samples, and RunAll re-executes once. See lake.(*Lake).Epoch.
//
// Cancellation propagates to every worker: ctx flows into each discoverer
// (the built-ins check it inside their index scans) and the fan-out itself
// stops dispatching once ctx is done. RunAll returns only after every
// in-flight discoverer has returned — cancelling a query never leaks a
// worker goroutine — and reports ctx.Err() when the context was cancelled.
func RunAll(ctx context.Context, t Target, q *table.Table, queryCol, k int, ds []Discoverer) ([][]Result, error) {
	for attempt := 0; ; attempt++ {
		e1 := t.Epoch()
		out, err := runShards(ctx, t.Shards(), q, queryCol, k, ds)
		if err != nil {
			return nil, err
		}
		// A clean run sampled the same even epoch on both sides: no
		// mutation was in flight when it started (e1 even) and none
		// started before it finished (e1 == e2).
		if e2 := t.Epoch(); (e1 == e2 && e1%2 == 0) || attempt == tornRetries {
			return out, nil
		}
	}
}

// runShards is one epoch-unguarded execution of the discoverer×shard
// fan-out. Work item j covers discoverer j/len(shards) on shard
// j%len(shards), so error precedence and result slots stay deterministic.
func runShards(ctx context.Context, shards []*lake.Lake, q *table.Table, queryCol, k int, ds []Discoverer) ([][]Result, error) {
	nd, ns := len(ds), len(shards)
	per := make([][]Result, nd*ns)
	errs := make([]error, nd*ns)
	ferr := par.ForCtx(ctx, nd*ns, func(j int) {
		// Discoverers ran on the caller's goroutine before the fan-out, where
		// a server could recover a misbehaving user hook; on a worker
		// goroutine a panic would kill the process, so contain it here and
		// surface it as that slot's error.
		defer func() {
			if r := recover(); r != nil {
				errs[j] = fmt.Errorf("discovery: %q panicked: %v", ds[j/ns].Name(), r)
			}
		}()
		per[j], errs[j] = ds[j/ns].Discover(ctx, shards[j%ns], q, queryCol, k)
	})
	if ferr != nil {
		return nil, ferr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([][]Result, nd)
	if ns == 1 {
		copy(out, per)
		return out, nil
	}
	for i := 0; i < nd; i++ {
		out[i] = mergeShardRankings(per[i*ns:(i+1)*ns], k)
	}
	return out, nil
}

// mergeShardRankings concatenates one discoverer's per-shard rankings and
// re-ranks them globally. Every discoverer reports at most one result per
// table and each table lives on exactly one shard, so the concatenation
// has no duplicates and the (score descending, name ascending) comparator
// — the same order rankResults produces — is total. Per-shard lists were
// already truncated to their local top-k, which is safe: a shard's k+1st
// result can never enter the global top k.
func mergeShardRankings(lists [][]Result, k int) []Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Result, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Table.Name < out[b].Table.Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Resolve maps method names to registered discoverers, in input order.
// Unknown names fail with the available set, before any discoverer runs.
func (r *Registry) Resolve(names []string) ([]Discoverer, error) {
	ds := make([]Discoverer, len(names))
	for i, name := range names {
		d, ok := r.Get(name)
		if !ok {
			return nil, fmt.Errorf("discovery: unknown method %q (have %v)", name, r.Names())
		}
		ds[i] = d
	}
	return ds, nil
}

// Discover is the full discovery stage in one call: resolve the named
// methods against the registry, fan them out over the target's shards with
// RunAll, and merge the per-method rankings into the integration set ("we
// persist the set of tables found by all techniques"). perMethod is keyed
// by method name; the integration set lists the query table first, then
// discovered tables deduplicated in method order then rank order.
// Cancelling ctx aborts the fan-out and returns ctx.Err() (see RunAll).
func Discover(ctx context.Context, r *Registry, t Target, q *table.Table, queryCol, k int, methods []string) (perMethod map[string][]Result, integrationSet []*table.Table, err error) {
	ds, err := r.Resolve(methods)
	if err != nil {
		return nil, nil, err
	}
	all, err := RunAll(ctx, t, q, queryCol, k, ds)
	if err != nil {
		return nil, nil, err
	}
	perMethod = make(map[string][]Result, len(methods))
	for i, m := range methods {
		perMethod[m] = all[i]
	}
	return perMethod, IntegrationSet(q, all...), nil
}
