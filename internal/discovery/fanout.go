package discovery

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/table"
)

// Target is what a discovery run executes against: a set of shards plus the
// seqlock epoch vector that guards multi-index reads. *lake.Lake (its own
// single shard), *lake.Sharded, and the lake.Catalog interface the pipeline
// holds all satisfy it, as does a cluster coordinator whose shards are
// remote processes. How the shards are reached is the target's second
// interface: in-process targets expose `Shards() []*lake.Lake` and
// discoverers run directly against each shard; remote targets implement
// Remote and the fan-out goes through its per-shard transport.
type Target interface {
	// Epochs samples the target's mutation-epoch vector — see
	// lake.Catalog.Epochs for the seqlock protocol. A clean run samples
	// the same all-even vector before and after its fan-out.
	Epochs() []uint64
}

// localTarget is the in-process shard access every pre-cluster target
// provides; discoverers receive the concrete shard lakes directly.
type localTarget interface {
	Shards() []*lake.Lake
}

// Remote extends Target for shard sets reached over a transport (the
// cluster coordinator's HTTP shards). The fan-out calls DiscoverShard once
// per discoverer×shard work item; implementations run the named method on
// the remote shard and return its ranked results, whose Table pointers may
// be name-only stubs. After the merge, RunAll materializes the surviving
// top-k through one ResolveTables batch.
type Remote interface {
	Target
	// NumShards reports the shard count (fixed for the target's lifetime).
	NumShards() int
	// DiscoverShard runs one discoverer on one shard. An error wrapping
	// ErrShardUnavailable marks the shard down/degraded — tolerated by
	// RunAllPartial; any other error is a hard failure.
	DiscoverShard(ctx context.Context, shard int, d Discoverer, q *table.Table, queryCol, k int) ([]Result, error)
	// ResolveTables fetches the named tables. Names it cannot resolve —
	// removed mid-run, or their shard became unreachable after answering
	// the discover call — are simply absent from the map; implementations
	// return an error only for malformed responses.
	ResolveTables(ctx context.Context, names []string) (map[string]*table.Table, error)
}

// ErrShardUnavailable marks a per-shard discovery failure caused by the
// shard being unreachable, shedding, or degraded — as opposed to the query
// itself being invalid. RunAllPartial tolerates slots whose errors wrap it,
// returning the surviving shards' merged rankings plus a ShardError per
// down shard; strict RunAll treats it like any other failure.
var ErrShardUnavailable = errors.New("shard unavailable")

// ShardError records that one shard contributed nothing to a partial run,
// and why. It wraps the underlying per-shard error, so errors.Is/As see
// through it (every ShardError from RunAllPartial wraps
// ErrShardUnavailable).
type ShardError struct {
	// Shard is the shard index within the target.
	Shard int
	// Err is the underlying failure, wrapping ErrShardUnavailable.
	Err error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }
func (e ShardError) Unwrap() error { return e.Err }

// tornRetries is how many times RunAll re-executes a run whose epoch
// samples prove it may have read the lake mid-mutation. One retry is
// enough: the retry re-reads the epoch, and a steady lake settles it;
// under continuous mutation churn the retried run's results are still a
// valid answer for *some* recent lake state, which is all a concurrent
// reader was ever promised.
const tornRetries = 1

// epochsClean reports whether an epoch-vector pair proves a run untorn:
// same length (a shard set that changed shape mid-run is a perturbation),
// elementwise equal, and every element even (no mutation in flight on
// either side of the run).
func epochsClean(e1, e2 []uint64) bool {
	if len(e1) != len(e2) {
		return false
	}
	for i := range e1 {
		if e1[i] != e2[i] || e1[i]%2 != 0 {
			return false
		}
	}
	return true
}

// RunAll executes the given discoverers over one query against every shard
// of the target and returns the merged result lists slot-indexed: out[i] is
// ds[i]'s ranked results over the whole catalog. Per-shard rankings
// concatenate and re-rank by (score descending, table name ascending) —
// table names are unique catalog-wide, so the comparator is total and the
// merge deterministic regardless of shard count or scheduling; against a
// single-shard target the output is byte-identical to running the methods
// sequentially. The shards' indexes are immutable and every shared interner
// is lock-protected, so discoverers — including user-defined similarity
// hooks (Fig. 4), which must be safe to call concurrently — run without
// coordination across the discoverer×shard fan-out. If any discoverer
// fails, the first error in (discoverer, shard) slot order is returned
// (deterministic regardless of which worker finished first).
//
// Torn-read protection: a discovery run concurrent with Add/Remove could
// otherwise observe the lake between per-index updates (a table visible to
// JOSIE but not yet to SANTOS) — or, on a sharded target, observe some
// shards pre-mutation and others post-mutation. RunAll samples the target's
// mutation-epoch vector before and after the fan-out; any mutation
// overlapping the run perturbs some element (a mutation applied directly to
// one shard perturbs that shard's element even when the composite counter
// never moves), and RunAll re-executes once. See lake.(*Lake).Epoch.
//
// Cancellation propagates to every worker: ctx flows into each discoverer
// (the built-ins check it inside their index scans) and the fan-out itself
// stops dispatching once ctx is done. RunAll returns only after every
// in-flight discoverer has returned — cancelling a query never leaks a
// worker goroutine — and reports ctx.Err() when the context was cancelled.
func RunAll(ctx context.Context, t Target, q *table.Table, queryCol, k int, ds []Discoverer) ([][]Result, error) {
	out, _, err := runAll(ctx, t, q, queryCol, k, ds, false)
	return out, err
}

// RunAllPartial is RunAll with graceful degradation: slots whose error
// wraps ErrShardUnavailable — a remote shard down, shedding, or degraded —
// contribute empty rankings instead of failing the run, and the down shards
// are reported as ShardErrors (deduplicated per shard, ascending shard
// order). A non-empty ShardError list is the "partial" marker the serving
// layer surfaces to clients: the rankings are complete over the reachable
// shards only. Any error not wrapping ErrShardUnavailable still fails the
// whole run, exactly as in RunAll.
func RunAllPartial(ctx context.Context, t Target, q *table.Table, queryCol, k int, ds []Discoverer) ([][]Result, []ShardError, error) {
	return runAll(ctx, t, q, queryCol, k, ds, true)
}

// runAll is the shared epoch-guarded driver: sample the epoch vector, run
// one fan-out (local or remote, tolerant or strict), resample, and retry
// once on a perturbed pair.
func runAll(ctx context.Context, t Target, q *table.Table, queryCol, k int, ds []Discoverer, tolerate bool) ([][]Result, []ShardError, error) {
	for attempt := 0; ; attempt++ {
		e1 := t.Epochs()
		var (
			out   [][]Result
			serrs []ShardError
			err   error
		)
		switch tt := t.(type) {
		case localTarget:
			out, serrs, err = runShards(ctx, tt.Shards(), q, queryCol, k, ds, tolerate)
		case Remote:
			out, serrs, err = runRemote(ctx, tt, q, queryCol, k, ds, tolerate)
		default:
			return nil, nil, fmt.Errorf("discovery: target %T exposes neither in-process shards nor a remote transport", t)
		}
		if err != nil {
			return nil, nil, err
		}
		// A clean run sampled the same all-even epoch vector on both sides:
		// no mutation was in flight anywhere when it started and none
		// started before it finished. A down shard's sentinel element is
		// even and stable while it stays down, so degraded targets do not
		// retry-storm.
		if epochsClean(e1, t.Epochs()) || attempt == tornRetries {
			return out, serrs, nil
		}
	}
}

// collectSlots applies the tolerance policy to one fan-out's slot errors:
// hard errors surface first-in-slot-order; tolerated slots (wrapping
// ErrShardUnavailable, when tolerate is set) are cleared to empty rankings
// and recorded once per shard.
func collectSlots(per [][]Result, errs []error, ns int, tolerate bool) ([][]Result, []ShardError, error) {
	var serrs []ShardError
	down := make(map[int]error, ns)
	for j, err := range errs {
		if err == nil {
			continue
		}
		if tolerate && errors.Is(err, ErrShardUnavailable) {
			if _, seen := down[j%ns]; !seen {
				down[j%ns] = err
			}
			per[j] = nil
			continue
		}
		return nil, nil, err
	}
	for shard := 0; shard < ns; shard++ {
		if err, ok := down[shard]; ok {
			serrs = append(serrs, ShardError{Shard: shard, Err: err})
		}
	}
	return per, serrs, nil
}

// runShards is one epoch-unguarded execution of the in-process
// discoverer×shard fan-out. Work item j covers discoverer j/len(shards) on
// shard j%len(shards), so error precedence and result slots stay
// deterministic.
func runShards(ctx context.Context, shards []*lake.Lake, q *table.Table, queryCol, k int, ds []Discoverer, tolerate bool) ([][]Result, []ShardError, error) {
	nd, ns := len(ds), len(shards)
	per := make([][]Result, nd*ns)
	errs := make([]error, nd*ns)
	ferr := par.ForCtx(ctx, nd*ns, func(j int) {
		// Discoverers ran on the caller's goroutine before the fan-out, where
		// a server could recover a misbehaving user hook; on a worker
		// goroutine a panic would kill the process, so contain it here and
		// surface it as that slot's error.
		defer func() {
			if r := recover(); r != nil {
				errs[j] = fmt.Errorf("discovery: %q panicked: %v", ds[j/ns].Name(), r)
			}
		}()
		per[j], errs[j] = ds[j/ns].Discover(ctx, shards[j%ns], q, queryCol, k)
	})
	if ferr != nil {
		return nil, nil, ferr
	}
	per, serrs, err := collectSlots(per, errs, ns, tolerate)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Result, nd)
	if ns == 1 && len(serrs) == 0 {
		copy(out, per)
		return out, serrs, nil
	}
	for i := 0; i < nd; i++ {
		out[i] = mergeShardRankings(per[i*ns:(i+1)*ns], k)
	}
	return out, serrs, nil
}

// runRemote is one epoch-unguarded execution of the discoverer×shard
// fan-out over a remote target: the same slot layout and error precedence
// as runShards, but each work item is one DiscoverShard transport call, and
// the merged top-k is materialized through one ResolveTables batch (remote
// results arrive as name-only stubs; fetching every shard's full candidate
// lists would defeat the truncation).
func runRemote(ctx context.Context, t Remote, q *table.Table, queryCol, k int, ds []Discoverer, tolerate bool) ([][]Result, []ShardError, error) {
	nd, ns := len(ds), t.NumShards()
	per := make([][]Result, nd*ns)
	errs := make([]error, nd*ns)
	ferr := par.ForCtx(ctx, nd*ns, func(j int) {
		defer func() {
			if r := recover(); r != nil {
				errs[j] = fmt.Errorf("discovery: %q panicked: %v", ds[j/ns].Name(), r)
			}
		}()
		per[j], errs[j] = t.DiscoverShard(ctx, j%ns, ds[j/ns], q, queryCol, k)
	})
	if ferr != nil {
		return nil, nil, ferr
	}
	per, serrs, err := collectSlots(per, errs, ns, tolerate)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Result, nd)
	for i := 0; i < nd; i++ {
		out[i] = mergeShardRankings(per[i*ns:(i+1)*ns], k)
	}
	// Materialize the survivors: one batch fetch of every distinct name in
	// the merged rankings. A name that resolves to nothing (removed mid-run,
	// or its shard died after answering) keeps its stub — the ranking entry
	// stays correct by (name, score), and Discover excludes column-less
	// stubs from the integration set.
	names := make([]string, 0, nd*k)
	seen := make(map[string]bool)
	for _, rs := range out {
		for _, r := range rs {
			if !seen[r.Table.Name] {
				seen[r.Table.Name] = true
				names = append(names, r.Table.Name)
			}
		}
	}
	if len(names) == 0 {
		return out, serrs, nil
	}
	resolved, err := t.ResolveTables(ctx, names)
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range out {
		for i := range rs {
			if tbl, ok := resolved[rs[i].Table.Name]; ok {
				rs[i].Table = tbl
			}
		}
	}
	return out, serrs, nil
}

// mergeShardRankings concatenates one discoverer's per-shard rankings and
// re-ranks them globally. Every discoverer reports at most one result per
// table and each table lives on exactly one shard, so the concatenation
// has no duplicates and the (score descending, name ascending) comparator
// — the same order rankResults produces — is total. Per-shard lists were
// already truncated to their local top-k, which is safe: a shard's k+1st
// result can never enter the global top k.
func mergeShardRankings(lists [][]Result, k int) []Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Result, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Table.Name < out[b].Table.Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Resolve maps method names to registered discoverers, in input order.
// Unknown names fail with the available set, before any discoverer runs.
func (r *Registry) Resolve(names []string) ([]Discoverer, error) {
	ds := make([]Discoverer, len(names))
	for i, name := range names {
		d, ok := r.Get(name)
		if !ok {
			return nil, fmt.Errorf("discovery: unknown method %q (have %v)", name, r.Names())
		}
		ds[i] = d
	}
	return ds, nil
}

// Discover is the full discovery stage in one call: resolve the named
// methods against the registry, fan them out over the target's shards with
// RunAllPartial, and merge the per-method rankings into the integration set
// ("we persist the set of tables found by all techniques"). perMethod is
// keyed by method name; the integration set lists the query table first,
// then discovered tables deduplicated in method order then rank order
// (excluding any result whose table could not be materialized — a
// column-less stub cannot be integrated). shardErrs is non-empty when the
// run was partial: some shards were unreachable and contributed nothing
// (see RunAllPartial) — impossible for in-process targets, which either
// answer or fail hard. Cancelling ctx aborts the fan-out and returns
// ctx.Err() (see RunAll).
func Discover(ctx context.Context, r *Registry, t Target, q *table.Table, queryCol, k int, methods []string) (perMethod map[string][]Result, integrationSet []*table.Table, shardErrs []ShardError, err error) {
	ds, err := r.Resolve(methods)
	if err != nil {
		return nil, nil, nil, err
	}
	all, shardErrs, err := RunAllPartial(ctx, t, q, queryCol, k, ds)
	if err != nil {
		return nil, nil, nil, err
	}
	perMethod = make(map[string][]Result, len(methods))
	for i, m := range methods {
		perMethod[m] = all[i]
	}
	integrable := make([][]Result, len(all))
	for i, rs := range all {
		keep := make([]Result, 0, len(rs))
		for _, r := range rs {
			if r.Table.NumCols() > 0 {
				keep = append(keep, r)
			}
		}
		integrable[i] = keep
	}
	return perMethod, IntegrationSet(q, integrable...), shardErrs, nil
}
