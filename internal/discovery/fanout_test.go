package discovery

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// TestRunAllMatchesSequential pins the fan-out's contract: slot-indexed
// results identical to running each discoverer by itself.
func TestRunAllMatchesSequential(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	col := cityCol(t, q)
	ds := []Discoverer{SantosUnion{}, LSHJoin{}, JosieJoin{}, SyntacticUnion{}}
	got, err := RunAll(context.Background(), l, q, col, 10, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("got %d result sets, want %d", len(got), len(ds))
	}
	for i, d := range ds {
		want, err := d.Discover(context.Background(), l, q, col, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("slot %d (%s): concurrent = %+v, sequential = %+v", i, d.Name(), got[i], want)
		}
	}
}

// TestRunAllFirstErrorBySlot verifies error selection is deterministic:
// the first failing slot wins regardless of scheduling.
func TestRunAllFirstErrorBySlot(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	ds := []Discoverer{
		SimilarityFunc{FuncName: "later-error"},   // slot 0: Sim == nil errors
		SimilarityFunc{FuncName: "another-error"}, // slot 1: also errors
	}
	_, err := RunAll(context.Background(), l, q, 0, 10, ds)
	if err == nil {
		t.Fatal("want error")
	}
	if want := `discovery: "later-error" has no similarity function`; err.Error() != want {
		t.Errorf("err = %q, want slot-0 error %q", err, want)
	}
}

// TestRunAllContainsPanics verifies a panicking user hook surfaces as that
// slot's error instead of killing the process from a worker goroutine.
func TestRunAllContainsPanics(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	ds := []Discoverer{
		SimilarityFunc{FuncName: "bad-hook", Sim: func(query, candidate *table.Table) float64 {
			panic("user hook exploded")
		}},
		LSHJoin{},
	}
	_, err := RunAll(context.Background(), l, q, cityCol(t, q), 10, ds)
	if err == nil {
		t.Fatal("panicking discoverer must surface as an error")
	}
	if want := `discovery: "bad-hook" panicked: user hook exploded`; err.Error() != want {
		t.Errorf("err = %q, want %q", err, want)
	}
}

func TestRegistryResolve(t *testing.T) {
	r := NewRegistry()
	ds, err := r.Resolve([]string{"lsh-join", "santos-union"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Name() != "lsh-join" || ds[1].Name() != "santos-union" {
		t.Errorf("Resolve order broken: %v", ds)
	}
	if _, err := r.Resolve([]string{"lsh-join", "nope"}); err == nil {
		t.Error("unknown method must error")
	}
}

func TestDiscoverFanOut(t *testing.T) {
	l := demoLake(t)
	q := paperdata.T1()
	per, set, _, err := Discover(context.Background(), NewRegistry(), l, q, cityCol(t, q), 10,
		[]string{"santos-union", "lsh-join"})
	if err != nil {
		t.Fatal(err)
	}
	if len(per["santos-union"]) == 0 || len(per["lsh-join"]) == 0 {
		t.Fatalf("per-method results missing: %+v", per)
	}
	names := make([]string, len(set))
	for i, tb := range set {
		names[i] = tb.Name
	}
	if !reflect.DeepEqual(names, []string{"T1", "T2", "T3"}) {
		t.Errorf("integration set = %v, want [T1 T2 T3]", names)
	}
	if _, _, _, err := Discover(context.Background(), NewRegistry(), l, q, 1, 10, []string{"nope"}); err == nil {
		t.Error("unknown method must error before any discoverer runs")
	}
}

// TestConcurrentFanOutRace exercises the fan-out under -race: many
// concurrent multi-method queries — including the user-defined-similarity
// hook of Fig. 4, which touches raw tables, and the joinable discoverers,
// which share the lake token dictionary and cached domains — against one
// lake. Run with `go test -race ./internal/discovery/...`.
func TestConcurrentFanOutRace(t *testing.T) {
	tables := append(paperdata.CovidLake(), paperdata.T1())
	l, err := lake.New(tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.Register(SimilarityFunc{
		FuncName: "user-sim",
		Sim: func(query, candidate *table.Table) float64 {
			best := 0
			for qc := 0; qc < query.NumCols(); qc++ {
				qd := tokenize.ValueSet(query.DistinctStrings(qc))
				for cc := 0; cc < candidate.NumCols(); cc++ {
					if ov := tokenize.Overlap(qd, tokenize.ValueSet(candidate.DistinctStrings(cc))); ov > best {
						best = ov
					}
				}
			}
			return float64(best)
		},
	}); err != nil {
		t.Fatal(err)
	}
	methods := []string{"santos-union", "lsh-join", "josie-join", "syntactic-union", "user-sim"}
	q := paperdata.T1()
	col := cityCol(t, q)
	want, _, _, err := Discover(context.Background(), r, l, q, col, 10, methods)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, _, _, err := Discover(context.Background(), r, l, q, col, 10, methods)
				if err != nil {
					t.Error(err)
					return
				}
				for _, m := range methods {
					for j := range got[m] {
						if got[m][j].Table.Name != want[m][j].Table.Name || got[m][j].Score != want[m][j].Score {
							t.Errorf("method %s rank %d drifted under concurrency", m, j)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
