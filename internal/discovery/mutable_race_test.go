package discovery

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
)

// churnTable fabricates a lake table over the demo KB's vocabulary so
// SANTOS annotation and the joinable indexes all see it.
func churnTable(name string) *table.Table {
	t := table.New(name, "City", "Country")
	t.MustAddRow(table.StringValue("Berlin"), table.StringValue("Germany"))
	t.MustAddRow(table.StringValue("Tokyo"), table.StringValue("Japan"))
	t.MustAddRow(table.StringValue("Boston"), table.StringValue("USA"))
	return t
}

// TestDiscoverConcurrentWithLakeMutation runs the full multi-method
// discovery fan-out while the lake churns underneath — the "query a live
// lake mid-ingest" serving scenario. Run under -race in CI. Results of a
// mid-churn query may reflect any prefix of the mutation stream; the test
// asserts race-freedom and that every returned table is a real catalog
// table, not a ghost of a removed one's index entry.
func TestDiscoverConcurrentWithLakeMutation(t *testing.T) {
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	q := paperdata.T1()
	col := cityCol(t, q)
	methods := []string{"santos-union", "lsh-join", "josie-join", "syntactic-union"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A mid-churn query may see any prefix of the mutation
				// stream; the assertions here are race-freedom (the run
				// itself), no errors, and structural sanity. Exact results
				// are checked after the churn settles.
				_, set, _, err := Discover(context.Background(), reg, l, q, col, 0, methods)
				if err != nil {
					t.Errorf("mid-churn Discover: %v", err)
					return
				}
				if len(set) == 0 || set[0] != q {
					t.Error("integration set must lead with the query table")
					return
				}
			}
		}()
	}
	for round := 0; round < 30; round++ {
		name := fmt.Sprintf("churn%02d", round)
		if err := l.Add(churnTable(name)); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if round%7 == 6 {
			l.Compact()
		}
		if err := l.Remove(name); err != nil {
			t.Fatalf("Remove: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	// After the churn settles, discovery output must match the pre-churn
	// lake exactly (all churn tables are gone).
	fresh, err := lake.New(l.Tables(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	got, gotSet, _, err := Discover(context.Background(), reg, l, q, col, 0, methods)
	if err != nil {
		t.Fatal(err)
	}
	want, wantSet, _, err := Discover(context.Background(), NewRegistry(), fresh, q, col, 0, methods)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range methods {
		if len(got[m]) != len(want[m]) {
			t.Fatalf("method %s: %d results after churn, want %d", m, len(got[m]), len(want[m]))
		}
		for i := range got[m] {
			if got[m][i].Table.Name != want[m][i].Table.Name || got[m][i].Score != want[m][i].Score {
				t.Errorf("method %s result %d: got %s/%v, want %s/%v", m, i,
					got[m][i].Table.Name, got[m][i].Score, want[m][i].Table.Name, want[m][i].Score)
			}
		}
	}
	if len(gotSet) != len(wantSet) {
		t.Errorf("integration set size %d, want %d", len(gotSet), len(wantSet))
	}
}
