package discovery

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds named discoverers; DIALITE's extensibility story (§3.2)
// is users registering their own next to the built-ins.
type Registry struct {
	mu sync.RWMutex
	ds map[string]Discoverer
}

// NewRegistry returns a registry with the built-ins registered:
// santos-union, lsh-join, josie-join, syntactic-union.
func NewRegistry() *Registry {
	r := &Registry{ds: make(map[string]Discoverer)}
	for _, d := range []Discoverer{SantosUnion{}, LSHJoin{}, JosieJoin{}, SyntacticUnion{}} {
		if err := r.Register(d); err != nil {
			panic(err) // unreachable: built-in names are distinct
		}
	}
	return r
}

// Register adds a discoverer; duplicate or empty names are errors.
func (r *Registry) Register(d Discoverer) error {
	name := d.Name()
	if name == "" {
		return fmt.Errorf("discovery: discoverer with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.ds[name]; exists {
		return fmt.Errorf("discovery: discoverer %q already registered", name)
	}
	r.ds[name] = d
	return nil
}

// Get returns the named discoverer.
func (r *Registry) Get(name string) (Discoverer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.ds[name]
	return d, ok
}

// Names lists registered discoverer names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ds))
	for n := range r.ds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
