// shard_tear_test provokes the sharded variant of the torn read: a
// mutation landing on ONE shard of a composite mid-fan-out, directly on
// the shard lake rather than through the composite (so the composite's own
// counter never moves — only that shard's element of the epoch vector
// changes). A scalar epoch sampled composite-side would miss this tear
// entirely; the per-shard vector catches it, which is exactly why RunAll's
// sampling generalized from one counter to the full vector. Run under
// -race: the mutation happens on a fan-out worker while others read.
package discovery_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/table"
)

// TestRunAllRetriesSingleShardTear removes a table from its owning shard
// directly — after the fan-out worker on that shard has computed its stale
// ranking, before another discoverer reads — and asserts the returned
// slots are mutually consistent because the vector mismatch forced exactly
// one retry.
func TestRunAllRetriesSingleShardTear(t *testing.T) {
	cities := func(name string, vals ...string) *table.Table {
		tbl := table.New(name, "city")
		for _, v := range vals {
			tbl.MustAddRow(table.StringValue(v))
		}
		return tbl
	}
	const shardN = 3
	victim := cities("victim", "berlin", "paris", "tokyo")
	other := cities("other", "berlin", "lyon")
	sh, err := lake.NewSharded([]*table.Table{victim, other}, shardN, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	victimShard := sh.Shards()[lake.ShardIndex("victim", shardN)]
	query := cities("query", "berlin", "paris", "tokyo")

	var (
		josie                   discovery.JosieJoin
		once                    sync.Once
		mutated                 = make(chan struct{})
		mu                      sync.Mutex
		firstTorn               []discovery.Result // the victim shard's stale attempt-1 answer
		firstCalls, secondCalls int
	)
	// first computes its per-shard ranking; on the victim's shard it then
	// (once) removes the victim DIRECTLY from that shard lake — not via the
	// composite — and still returns the stale ranking. Only that shard's
	// epoch element has moved.
	first := funcDiscoverer{name: "shard-mutate-after-read", fn: func(ctx context.Context, sl *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
		rs, err := josie.Discover(ctx, sl, q, queryCol, k)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		firstCalls++
		mu.Unlock()
		if sl == victimShard {
			mu.Lock()
			if firstTorn == nil {
				firstTorn = rs
			}
			mu.Unlock()
			once.Do(func() {
				if rerr := victimShard.Remove("victim"); rerr != nil {
					err = rerr
				}
				close(mutated)
			})
		}
		return rs, err
	}}
	// second only reads after the shard-local removal has landed, so its
	// torn-attempt answer comes from the post-mutation shard state.
	second := funcDiscoverer{name: "wait-then-read", fn: func(ctx context.Context, sl *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
		select {
		case <-mutated:
		case <-time.After(10 * time.Second):
			return nil, errors.New("timed out waiting for the mid-fan-out shard mutation")
		}
		mu.Lock()
		secondCalls++
		mu.Unlock()
		return josie.Discover(ctx, sl, q, queryCol, k)
	}}

	out, err := discovery.RunAll(context.Background(), sh, query, 0, 0, []discovery.Discoverer{first, second})
	if err != nil {
		t.Fatal(err)
	}

	// The provocation worked: the victim shard's attempt-1 slot was stale.
	if !hasTable(firstTorn, "victim") {
		t.Fatalf("test did not provoke a torn read: attempt 1 on the victim shard never ranked %q (results %+v)", "victim", firstTorn)
	}
	// The vector mismatch forced exactly one retry of the whole fan-out:
	// each discoverer ran once per shard per attempt.
	if firstCalls != 2*shardN || secondCalls != 2*shardN {
		t.Fatalf("fan-out ran %d/%d shard calls per discoverer, want %d/%d (one torn attempt + one retry across %d shards)",
			firstCalls, secondCalls, 2*shardN, 2*shardN, shardN)
	}
	if len(out) != 2 {
		t.Fatalf("RunAll returned %d slots, want 2", len(out))
	}
	for i, rs := range out {
		if hasTable(rs, "victim") {
			t.Errorf("slot %d still ranks the removed table: single-shard tear survived the vector retry\nresults: %+v", i, rs)
		}
		if !hasTable(rs, "other") {
			t.Errorf("slot %d lost surviving table %q: %+v", i, "other", rs)
		}
	}
}
