// torn_read_test provokes the torn multi-index read that RunAll's epoch
// sampling exists to catch: a Remove landing in the middle of a discovery
// fan-out, so one discoverer answers from the pre-mutation catalog and
// another from the post-mutation one. Before the epoch retry existed this
// deterministically produced an inconsistent result set (the removed table
// present in one method's ranking, absent from another's); with it, RunAll
// detects the perturbed epoch and re-executes once against the settled
// lake. Run under -race: the mutation happens on a fan-out worker while
// the other worker reads.
package discovery_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/table"
)

// funcDiscoverer adapts a closure to discovery.Discoverer so the test can
// wrap a real method with side effects at controlled points.
type funcDiscoverer struct {
	name string
	fn   func(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error)
}

func (d funcDiscoverer) Name() string { return d.name }
func (d funcDiscoverer) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
	return d.fn(ctx, l, q, queryCol, k)
}

func hasTable(rs []discovery.Result, name string) bool {
	for _, r := range rs {
		if r.Table.Name == name {
			return true
		}
	}
	return false
}

// TestRunAllRetriesTornRead removes a table from inside the fan-out —
// after one discoverer has computed its answer but before the other has
// started — and asserts RunAll's returned slots are nonetheless mutually
// consistent: the removed table appears in neither, because the epoch
// mismatch forced a retry against the settled catalog.
func TestRunAllRetriesTornRead(t *testing.T) {
	cities := func(name string, vals ...string) *table.Table {
		tbl := table.New(name, "city")
		for _, v := range vals {
			tbl.MustAddRow(table.StringValue(v))
		}
		return tbl
	}
	victim := cities("victim", "berlin", "paris", "tokyo")
	other := cities("other", "berlin", "lyon")
	l, err := lake.New([]*table.Table{victim, other}, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	query := cities("query", "berlin", "paris", "tokyo")

	var (
		josie       discovery.JosieJoin
		once        sync.Once
		mutated     = make(chan struct{})
		mu          sync.Mutex
		firstTorn   []discovery.Result // the stale answer attempt 1 returned
		firstCalls  int
		secondCalls int
	)
	// first computes its ranking from the pre-mutation catalog, then (once)
	// removes the victim and releases second — and still returns the stale
	// ranking, exactly what a discoverer racing a Remove would produce.
	first := funcDiscoverer{name: "mutate-after-read", fn: func(ctx context.Context, sl *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
		rs, err := josie.Discover(ctx, sl, q, queryCol, k)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		firstCalls++
		if firstCalls == 1 {
			firstTorn = rs
		}
		mu.Unlock()
		once.Do(func() {
			if rerr := l.Remove("victim"); rerr != nil {
				err = fmt.Errorf("mid-run Remove: %w", rerr)
			}
			close(mutated)
		})
		return rs, err
	}}
	// second only starts after the removal has landed, so on the torn
	// attempt it answers from the post-mutation catalog.
	second := funcDiscoverer{name: "wait-then-read", fn: func(ctx context.Context, sl *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
		select {
		case <-mutated:
		case <-time.After(10 * time.Second):
			return nil, errors.New("timed out waiting for the mid-run mutation")
		}
		mu.Lock()
		secondCalls++
		mu.Unlock()
		return josie.Discover(ctx, sl, q, queryCol, k)
	}}

	out, err := discovery.RunAll(context.Background(), l, query, 0, 0, []discovery.Discoverer{first, second})
	if err != nil {
		t.Fatal(err)
	}

	// The provocation worked: attempt 1's first slot really was stale.
	if !hasTable(firstTorn, "victim") {
		t.Fatalf("test did not provoke a torn read: attempt 1 never saw %q (results %+v)", "victim", firstTorn)
	}
	// The epoch mismatch forced exactly one retry of the whole fan-out.
	if firstCalls != 2 || secondCalls != 2 {
		t.Fatalf("fan-out ran %d/%d times per discoverer, want 2/2 (one torn attempt + one retry)", firstCalls, secondCalls)
	}
	// And the returned slots are mutually consistent: the removed table is
	// gone from both, not present in one and absent from the other.
	if len(out) != 2 {
		t.Fatalf("RunAll returned %d slots, want 2", len(out))
	}
	for i, rs := range out {
		if hasTable(rs, "victim") {
			t.Errorf("slot %d still ranks removed table %q: torn read survived the retry\nresults: %+v", i, "victim", rs)
		}
		if !hasTable(rs, "other") {
			t.Errorf("slot %d lost surviving table %q: %+v", i, "other", rs)
		}
	}
}

// TestRunAllSteadyLakeSingleAttempt pins the epoch sampling's no-op cost:
// a run with no concurrent mutation must execute each discoverer exactly
// once per shard — no spurious retries.
func TestRunAllSteadyLakeSingleAttempt(t *testing.T) {
	tbl := table.New("steady", "city")
	tbl.MustAddRow(table.StringValue("berlin"))
	l, err := lake.New([]*table.Table{tbl}, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	d := funcDiscoverer{name: "counter", fn: func(ctx context.Context, sl *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
		calls++
		return nil, nil
	}}
	if _, err := discovery.RunAll(context.Background(), l, tbl, 0, 0, []discovery.Discoverer{d}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("steady lake ran the discoverer %d times, want 1", calls)
	}
}
