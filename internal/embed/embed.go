// Package embed computes deterministic column embeddings for holistic
// schema matching. The ALITE paper embeds columns with pretrained language
// models (fastText/TURL); no such model is available to a stdlib-only Go
// build, so this package substitutes a feature-hashing embedding whose
// coordinates aggregate:
//
//   - knowledge-base semantic types of cell values (the strongest signal —
//     it plays the role distributional semantics plays for fastText);
//   - word tokens and character trigrams of textual values;
//   - magnitude/shape features of numeric values;
//   - coarse kind features (textual vs numeric vs boolean).
//
// Columns drawn from the same domain land close in cosine space, which is
// the only property the downstream constrained clustering needs. The
// embedding is deterministic, so alignment results are reproducible.
package embed

import (
	"hash/fnv"
	"math"
	"strconv"

	"repro/internal/kb"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Dim is the embedding dimensionality. 256 buckets keep hash collisions
// rare at open-data vocabulary sizes while staying cache-friendly.
const Dim = 256

// feature weights; semantic types dominate, then tokens, then trigrams.
const (
	wKBType  = 3.0
	wToken   = 2.0
	wTrigram = 1.0
	wNumeric = 2.0
	wKind    = 1.5
)

// bucket hashes a feature string into a coordinate.
func bucket(feature string) int {
	h := fnv.New32a()
	h.Write([]byte(feature))
	return int(h.Sum32() % uint32(Dim))
}

// addFeature accumulates weight into the feature's coordinate.
func addFeature(vec []float64, feature string, weight float64) {
	vec[bucket(feature)] += weight
}

// Column embeds a column's cells. knowledge may be nil, in which case no
// semantic-type features are produced (the X5 ablation measures exactly
// this). The result is L2-normalized; an all-null column embeds to the
// zero vector.
func Column(values []table.Value, knowledge *kb.KB) []float64 {
	vec := make([]float64, Dim)
	for _, v := range values {
		if v.IsNull() {
			continue
		}
		switch v.Kind() {
		case table.String:
			addFeature(vec, "kind:text", wKind)
			s := v.Str()
			if knowledge != nil {
				for _, t := range knowledge.TypesOf(s) {
					addFeature(vec, "kbtype:"+t, wKBType)
					for _, anc := range knowledge.Ancestors(t) {
						addFeature(vec, "kbtype:"+anc, wKBType/2)
					}
				}
			}
			for _, tok := range tokenize.Words(s) {
				addFeature(vec, "tok:"+tok, wToken)
				if isNumericToken(tok) {
					addFeature(vec, "tokdigits:"+strconv.Itoa(len(tok)), wNumeric)
				}
			}
			for _, g := range tokenize.QGrams(s, 3) {
				addFeature(vec, "3g:"+g, wTrigram)
			}
		case table.Int, table.Float:
			addFeature(vec, "kind:num", wKind)
			f, _ := v.AsFloat()
			addFeature(vec, "mag:"+strconv.Itoa(magnitude(f)), wNumeric)
			if f < 0 {
				addFeature(vec, "neg", wNumeric)
			}
			if v.Kind() == table.Float && f != math.Trunc(f) {
				addFeature(vec, "frac", wNumeric)
			}
		case table.Bool:
			addFeature(vec, "kind:bool", wKind)
		}
	}
	normalize(vec)
	return vec
}

// Header embeds a column header (tokens and trigrams under a separate
// namespace so header features never collide with content features by
// construction of the feature strings).
func Header(name string) []float64 {
	vec := make([]float64, Dim)
	for _, tok := range tokenize.ContentWords(name) {
		addFeature(vec, "hdr:"+tok, wToken)
	}
	for _, g := range tokenize.QGrams(name, 3) {
		addFeature(vec, "hdr3g:"+g, wTrigram)
	}
	normalize(vec)
	return vec
}

// Combine returns normalize(a + w·b) without mutating its inputs. It is
// how schema matching blends content and (down-weighted, unreliable)
// header embeddings.
func Combine(a, b []float64, w float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + w*b[i]
	}
	normalize(out)
	return out
}

// Cosine returns the cosine similarity of two vectors; zero vectors yield
// 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// magnitude buckets |f| by order of magnitude (0 for |f|<1).
func magnitude(f float64) int {
	a := math.Abs(f)
	if a < 1 {
		return 0
	}
	return int(math.Floor(math.Log10(a))) + 1
}

func isNumericToken(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func normalize(vec []float64) {
	var n float64
	for _, x := range vec {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range vec {
		vec[i] /= n
	}
}
