package embed

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/kb"
	"repro/internal/table"
)

func strCol(vals ...string) []table.Value {
	out := make([]table.Value, len(vals))
	for i, v := range vals {
		out[i] = table.StringValue(v)
	}
	return out
}

func TestColumnDeterministic(t *testing.T) {
	k := kb.Demo()
	a := Column(strCol("Berlin", "Barcelona"), k)
	b := Column(strCol("Berlin", "Barcelona"), k)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding is not deterministic")
		}
	}
}

func TestColumnNormalized(t *testing.T) {
	v := Column(strCol("Berlin", "Boston", "Toronto"), kb.Demo())
	var n float64
	for _, x := range v {
		n += x * x
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("norm² = %v, want 1", n)
	}
}

func TestAllNullColumnIsZero(t *testing.T) {
	v := Column([]table.Value{table.NullValue(), table.ProducedNull()}, nil)
	for _, x := range v {
		if x != 0 {
			t.Fatal("all-null column must embed to zero vector")
		}
	}
	if Cosine(v, v) != 0 {
		t.Error("cosine of zero vectors must be 0")
	}
}

func TestSemanticTypesDominateAcrossDisjointValues(t *testing.T) {
	// Two country columns with entirely disjoint values must still be more
	// similar than a country column and a city column — exactly the signal
	// the KB-type features substitute for fastText semantics.
	k := kb.Demo()
	countriesA := Column(strCol("Germany", "England", "Spain"), k)
	countriesB := Column(strCol("Canada", "Mexico", "USA"), k)
	cities := Column(strCol("Toronto", "Boston", "Berlin"), k)
	same := Cosine(countriesA, countriesB)
	cross := Cosine(countriesA, cities)
	if same <= cross {
		t.Errorf("country/country cosine %v must exceed country/city %v", same, cross)
	}
	if same < 0.4 {
		t.Errorf("disjoint same-type columns cosine = %v, too low", same)
	}
}

func TestWithoutKBSharedValuesStillMatch(t *testing.T) {
	a := Column(strCol("berlin", "barcelona", "boston"), nil)
	b := Column(strCol("berlin", "barcelona", "new delhi"), nil)
	c := Column(strCol("widget", "gadget", "sprocket"), nil)
	if Cosine(a, b) <= Cosine(a, c) {
		t.Error("value overlap must drive similarity when no KB is given")
	}
}

func TestNumericColumnsClusterByMagnitude(t *testing.T) {
	rates1 := Column([]table.Value{table.IntValue(63), table.IntValue(78), table.IntValue(82)}, nil)
	rates2 := Column([]table.Value{table.IntValue(83), table.IntValue(62)}, nil)
	cases := Column([]table.Value{table.IntValue(1400000), table.IntValue(2680000)}, nil)
	if Cosine(rates1, rates2) <= Cosine(rates1, cases) {
		t.Error("same-magnitude numeric columns must be closer than cross-magnitude")
	}
}

func TestMagnitude(t *testing.T) {
	cases := map[float64]int{0: 0, 0.5: 0, 1: 1, 9: 1, 10: 2, 147: 3, 1.4e6: 7, -147: 3}
	for f, want := range cases {
		if got := magnitude(f); got != want {
			t.Errorf("magnitude(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestHeaderEmbedding(t *testing.T) {
	a := Header("Vaccination Rate (1+ dose)")
	b := Header("vaccination rate")
	c := Header("Total Cases")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Error("similar headers must be closer than dissimilar ones")
	}
	z := Header("")
	for _, x := range z {
		if x != 0 {
			t.Fatal("empty header must embed to zero")
		}
	}
}

func TestCombine(t *testing.T) {
	content := Column(strCol("berlin"), nil)
	header := Header("city")
	mixed := Combine(content, header, 0.25)
	var n float64
	for _, x := range mixed {
		n += x * x
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("combined norm² = %v", n)
	}
	// Combine with weight 0 equals the (already normalized) content vector.
	same := Combine(content, header, 0)
	if c := Cosine(same, content); math.Abs(c-1) > 1e-9 {
		t.Errorf("Combine(w=0) cosine = %v, want 1", c)
	}
	// Inputs must not be mutated.
	before := Column(strCol("berlin"), nil)
	Combine(content, header, 5)
	if Cosine(before, content) < 1-1e-9 {
		t.Error("Combine mutated its input")
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(seed int64) bool {
		a := Column(strCol("x", "y", string(rune('a'+seed%26))), nil)
		b := Column(strCol("p", "q", string(rune('a'+(seed+5)%26))), nil)
		c1 := Cosine(a, b)
		c2 := Cosine(b, a)
		return math.Abs(c1-c2) < 1e-12 && c1 >= -1e-12 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if Cosine([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths must yield 0")
	}
}

func TestBooleanKindFeature(t *testing.T) {
	boolCol := Column([]table.Value{table.BoolValue(true), table.BoolValue(false)}, nil)
	numCol := Column([]table.Value{table.IntValue(1), table.IntValue(0)}, nil)
	if Cosine(boolCol, numCol) > 0.5 {
		t.Error("boolean and numeric columns must not look alike")
	}
}
