package er

// crosscheck_test pins the annotation-code resolution path (cellCodes,
// blockPairsCodes, similarityCodes, featuresCodes) to the retained string
// reference (blockPairs, Similarity, Features): on randomized tables mixing
// alias spellings, numerics whose canonical forms collide ("-5" vs "5"),
// floats, bools, both null kinds and punctuation-only strings, Resolve and
// ResolveLearned must return byte-identical resolutions — same candidate
// pairs, same bit-exact scores, same clusters, same merged table — for nil
// and non-nil knowledge bases.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kb"
	"repro/internal/table"
)

// refResolve is the pre-refactor Resolve: string-keyed blocking and
// per-comparison canonicalization through the exported reference API.
func refResolve(t *table.Table, opts Options) (*Resolution, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("er: nil or zero-column table")
	}
	opts = opts.withDefaults()
	candidates := blockPairs(t, opts.Knowledge)
	parent := make([]int, t.NumRows())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	res := &Resolution{Input: t}
	for _, p := range candidates {
		score, comparable := Similarity(t.Rows[p[0]], t.Rows[p[1]], opts)
		if !comparable {
			continue
		}
		pair := Pair{A: p[0], B: p[1], Score: score, Matched: score >= opts.Threshold}
		res.Pairs = append(res.Pairs, pair)
		if pair.Matched {
			ra, rb := find(p[0]), find(p[1])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < t.NumRows(); i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(byRoot[r])
		res.Clusters = append(res.Clusters, byRoot[r])
	}
	res.Resolved = mergeClusters(t, res.Clusters, opts.Knowledge)
	return res, nil
}

// refResolveLearned is the pre-refactor ResolveLearned over string-keyed
// blocking and reference Features.
func refResolveLearned(t *table.Table, model *LogisticModel, knowledge *kb.KB, threshold float64) (*Resolution, error) {
	if threshold <= 0 {
		threshold = 0.5
	}
	candidates := blockPairs(t, knowledge)
	parent := make([]int, t.NumRows())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	res := &Resolution{Input: t}
	for _, p := range candidates {
		x, ok := Features(t.Rows[p[0]], t.Rows[p[1]], knowledge)
		if !ok {
			continue
		}
		score := model.Predict(x)
		pair := Pair{A: p[0], B: p[1], Score: score, Matched: score >= threshold}
		res.Pairs = append(res.Pairs, pair)
		if pair.Matched {
			ra, rb := find(p[0]), find(p[1])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < t.NumRows(); i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(byRoot[r])
		res.Clusters = append(res.Clusters, byRoot[r])
	}
	res.Resolved = mergeClusters(t, res.Clusters, knowledge)
	return res, nil
}

func assertSameResolution(t *testing.T, label string, got, want *Resolution) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d\ngot:  %+v\nwant: %+v", label, len(got.Pairs), len(want.Pairs), got.Pairs, want.Pairs)
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d: got %+v, want %+v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("%s: %d clusters, want %d", label, len(got.Clusters), len(want.Clusters))
	}
	for i := range got.Clusters {
		if len(got.Clusters[i]) != len(want.Clusters[i]) {
			t.Fatalf("%s: cluster %d: got %v, want %v", label, i, got.Clusters[i], want.Clusters[i])
		}
		for j := range got.Clusters[i] {
			if got.Clusters[i][j] != want.Clusters[i][j] {
				t.Fatalf("%s: cluster %d: got %v, want %v", label, i, got.Clusters[i], want.Clusters[i])
			}
		}
	}
	if !got.Resolved.Equal(want.Resolved) {
		t.Fatalf("%s: resolved tables differ\ngot:\n%s\nwant:\n%s", label, got.Resolved, want.Resolved)
	}
}

// randomERTable builds a table whose cells stress every code path: alias
// pairs, canonical-colliding numerics, near-miss strings, and nulls.
func randomERTable(rng *rand.Rand, name string) *table.Table {
	cells := []table.Value{
		table.StringValue("JnJ"), table.StringValue("J&J"), table.StringValue("Janssen"),
		table.StringValue("Pfizer"), table.StringValue("pfizer biontech"),
		table.StringValue("USA"), table.StringValue("U.S.A."), table.StringValue("United States"),
		table.StringValue("Berlin"), table.StringValue("berlin!"), table.StringValue("Berlinn"),
		table.StringValue("FDA"), table.StringValue("EMA"),
		table.StringValue("##"), table.StringValue("stranger"),
		table.StringValue("5"), table.StringValue("-5"),
		table.IntValue(5), table.IntValue(-5), table.IntValue(100), table.IntValue(90),
		table.FloatValue(8.2), table.FloatValue(5), table.BoolValue(true),
		table.NullValue(), table.ProducedNull(),
	}
	cols := 3 + rng.Intn(3)
	headers := make([]string, cols)
	for c := range headers {
		headers[c] = fmt.Sprintf("c%d", c)
	}
	tb := table.New(name, headers...)
	rows := 6 + rng.Intn(10)
	for r := 0; r < rows; r++ {
		row := make([]table.Value, cols)
		for c := range row {
			row[c] = cells[rng.Intn(len(cells))]
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

func TestCrossCheckResolve(t *testing.T) {
	knows := map[string]*kb.KB{"demo": kb.Demo(), "nil": nil}
	for kname, know := range knows {
		for _, seed := range []int64{21, 22, 23, 24, 25} {
			rng := rand.New(rand.NewSource(seed))
			tb := randomERTable(rng, fmt.Sprintf("t%d", seed))
			opts := Options{Knowledge: know}
			got, gerr := Resolve(context.Background(), tb, opts)
			want, werr := refResolve(tb, opts)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("kb=%s seed=%d: error mismatch: %v vs %v", kname, seed, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			assertSameResolution(t, fmt.Sprintf("kb=%s seed=%d", kname, seed), got, want)
		}
	}
}

func TestCrossCheckResolveLearned(t *testing.T) {
	know := kb.Demo()
	model := &LogisticModel{Weights: []float64{3, 1, 0.5, -0.5, 2}, Bias: -2}
	for _, seed := range []int64{31, 32, 33} {
		rng := rand.New(rand.NewSource(seed))
		tb := randomERTable(rng, fmt.Sprintf("t%d", seed))
		got, gerr := ResolveLearned(context.Background(), tb, model, know, 0)
		want, werr := refResolveLearned(tb, model, know, 0)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("seed=%d: error mismatch: %v vs %v", seed, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		assertSameResolution(t, fmt.Sprintf("seed=%d", seed), got, want)
	}
}

// TestCrossCheckResolveDictAnnotator runs the same cross-check through a
// dict-backed annotation cache (the lake path): cached codes keyed by
// interned value IDs must change nothing.
func TestCrossCheckResolveDictAnnotator(t *testing.T) {
	know := kb.Demo()
	for _, seed := range []int64{41, 42} {
		rng := rand.New(rand.NewSource(seed))
		tb := randomERTable(rng, fmt.Sprintf("t%d", seed))
		dict := table.NewDict()
		var buf []uint32
		for _, row := range tb.Rows {
			buf = dict.InternRow(row, buf)
		}
		opts := Options{Knowledge: know, Annotator: kb.NewAnnotator(know.Compiled(), dict)}
		got, err := Resolve(context.Background(), tb, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refResolve(tb, Options{Knowledge: know})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResolution(t, fmt.Sprintf("seed=%d", seed), got, want)
	}
}
