// Package er implements entity resolution over integrated tables, the
// downstream application of the paper's Example 5 (where the Python
// prototype calls py_entitymatching). The same block → score → match →
// cluster → merge flow is implemented natively:
//
//   - blocking on knowledge-base-canonicalized cell values, so alias pairs
//     (J&J ≈ JnJ, USA ≈ United States) land in one block;
//   - per-column similarity features: alias-aware equality, numeric
//     closeness, Levenshtein ratio and token Jaccard;
//   - a rule matcher with a conflict veto: a pair is rejected outright when
//     any column both sides fill disagrees strongly, and otherwise matches
//     when the average similarity — counting one-sided nulls as 0, the
//     incompleteness penalty that makes ER fail on outer-join output
//     (Fig. 8(c)) and succeed on FD output (Fig. 8(d)) — clears the
//     threshold;
//   - transitive clustering of matches and canonical-tuple merging.
package er

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Options configures Resolve.
type Options struct {
	// Knowledge supplies aliases for equality features and blocking; nil
	// disables alias awareness.
	Knowledge *kb.KB
	// Annotator optionally supplies a prebuilt entity-resolution cache over
	// Knowledge's compiled form (e.g. the lake's dict-backed cache, so lake
	// values resolve without re-canonicalization). Nil builds a transient
	// cache from Knowledge.
	Annotator *kb.Annotator
	// Threshold is the minimum average similarity for a match. Default 0.6.
	Threshold float64
	// Veto rejects a pair outright when a column filled on both sides has
	// similarity below it. Default 0.25.
	Veto float64
}

// annotator returns the entity-resolution cache to resolve through: the
// supplied one, or a transient cache over the (memoized) compiled KB. With
// nil Knowledge the cache still canonicalizes by normalization alone, which
// is exactly the knowledge-free blocking and similarity semantics.
func (o Options) annotator() *kb.Annotator {
	if o.Annotator != nil {
		return o.Annotator
	}
	return kb.NewAnnotator(o.Knowledge.Compiled(), nil)
}

// cellCodes resolves every cell of t through the cache once; codes[r][c] is
// the annotation code of row r, column c (kb.CodeEmpty for nulls and
// empty-canonical values).
func cellCodes(t *table.Table, ann *kb.Annotator) [][]uint32 {
	codes := make([][]uint32, len(t.Rows))
	flat := make([]uint32, len(t.Rows)*t.NumCols())
	for r, row := range t.Rows {
		cr := flat[r*t.NumCols() : (r+1)*t.NumCols() : (r+1)*t.NumCols()]
		for c, v := range row {
			cr[c] = ann.Code(v)
		}
		codes[r] = cr
	}
	return codes
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.6
	}
	if o.Veto == 0 {
		o.Veto = 0.25
	}
	return o
}

// Pair is one scored candidate row pair (A < B).
type Pair struct {
	A, B  int
	Score float64
	// Matched reports whether the pair cleared the threshold.
	Matched bool
}

// Resolution is the output of Resolve.
type Resolution struct {
	// Input is the table that was resolved.
	Input *table.Table
	// Clusters groups row indices of resolved entities (singletons
	// included), each sorted, ordered by first member.
	Clusters [][]int
	// Pairs lists every compared candidate pair with its score.
	Pairs []Pair
	// Resolved holds one canonical merged tuple per cluster.
	Resolved *table.Table
}

// Similarity scores two aligned rows. comparable is false when the rows
// share no column filled on both sides (such rows can never be resolved —
// the fate of the outer join's f9/f10) or when a shared column triggers
// the conflict veto.
func Similarity(a, b []table.Value, opts Options) (score float64, comparable bool) {
	opts = opts.withDefaults()
	return similarityWith(a, b, opts, func(i int) float64 {
		return cellSimilarity(a[i], b[i], opts.Knowledge)
	})
}

// similarityCodes is Similarity over pre-resolved annotation codes: the
// entity-identity shortcut is an integer comparison instead of two
// canonicalizations per compared cell. opts must already have defaults.
func similarityCodes(a, b []table.Value, ca, cb []uint32, opts Options, tc *textCache) (float64, bool) {
	return similarityWith(a, b, opts, func(i int) float64 {
		return cellSimilarityCodes(a[i], b[i], ca[i], cb[i], tc)
	})
}

// similarityWith is the shared row-scoring core: sim(i) scores column i's
// two (non-null) cells.
func similarityWith(a, b []table.Value, opts Options, sim func(i int) float64) (score float64, comparable bool) {
	considered := 0
	bothFilled := 0
	total := 0.0
	for i := range a {
		an, bn := !a[i].IsNull(), !b[i].IsNull()
		switch {
		case an && bn:
			s := sim(i)
			if s < opts.Veto {
				return 0, false // conflicting values: hard reject
			}
			considered++
			bothFilled++
			total += s
		case an != bn:
			// One-sided null: the pair stays comparable but pays an
			// uncertainty penalty (a 0 contribution).
			considered++
		default:
			// Both null: the column says nothing.
		}
	}
	if bothFilled == 0 || considered == 0 {
		return 0, false
	}
	return total / float64(considered), true
}

// cellSimilarity scores two non-null cells in [0,1]. Reference
// implementation; the resolution hot path uses cellSimilarityCodes.
func cellSimilarity(a, b table.Value, knowledge *kb.KB) float64 {
	if a.Equal(b) {
		return 1
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		return numericSimilarity(af, bf)
	}
	as, bs := a.String(), b.String()
	if knowledge != nil && knowledge.SameEntity(as, bs) {
		return 1
	}
	return textSimilarity(as, bs)
}

// cellSimilarityCodes is cellSimilarity with the entity-identity check over
// annotation codes. Equal non-empty codes mean equal canonical forms, which
// scores 1 both with knowledge (SameEntity) and without (equal normalized
// strings make the Levenshtein ratio exactly 1). The numeric comparison
// stays ahead of the code check, exactly as in the reference — distinct
// numbers may share a canonical form ("-5" and "5" both normalize to "5")
// and must keep their numeric score.
func cellSimilarityCodes(a, b table.Value, ca, cb uint32, tc *textCache) float64 {
	if a.Equal(b) {
		return 1
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		return numericSimilarity(af, bf)
	}
	if kb.SameCode(ca, cb) {
		return 1
	}
	fa, fb := tc.get(ca, a.String()), tc.get(cb, b.String())
	lev := levenshteinRatio(fa.norm, fb.norm)
	jac := tokenize.Jaccard(fa.words, fb.words)
	if jac > lev {
		return jac
	}
	return lev
}

// textFeat is the memoized text-fallback view of one cell rendering: its
// normalized form (Levenshtein input) and word set (Jaccard input).
type textFeat struct {
	raw   string
	norm  string
	words []string
}

// textCache memoizes textFeat per (annotation code, raw rendering) for one
// resolution run. A cell value reaching the text fallback is re-compared
// against every blocking partner, so without the cache Normalize and Words
// re-derive the same strings once per candidate pair instead of once per
// distinct rendering. Keying by code alone would be unsound — alias
// renderings ("USA", "United States") share a code but have different word
// sets — so each code holds a small list keyed by the raw string (almost
// always length 1; aliases rarely reach the fallback at all, since equal
// codes already scored 1).
type textCache struct {
	feats map[uint32][]textFeat
}

func newTextCache() *textCache {
	return &textCache{feats: make(map[uint32][]textFeat)}
}

func (tc *textCache) get(code uint32, raw string) *textFeat {
	l := tc.feats[code]
	for i := range l {
		if l[i].raw == raw {
			return &l[i]
		}
	}
	l = append(l, textFeat{raw: raw, norm: tokenize.Normalize(raw), words: tokenize.Words(raw)})
	tc.feats[code] = l
	return &l[len(l)-1]
}

// numericSimilarity scores two numeric cells by relative closeness.
func numericSimilarity(af, bf float64) float64 {
	den := maxAbs(af, bf)
	if den == 0 {
		return 1
	}
	d := af - bf
	if d < 0 {
		d = -d
	}
	if d >= den {
		return 0
	}
	return 1 - d/den
}

// textSimilarity is the string fallback: the better of the Levenshtein
// ratio over normalized forms and the token Jaccard.
func textSimilarity(as, bs string) float64 {
	lev := levenshteinRatio(tokenize.Normalize(as), tokenize.Normalize(bs))
	jac := tokenize.Jaccard(tokenize.Words(as), tokenize.Words(bs))
	if jac > lev {
		return jac
	}
	return lev
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// levenshteinRatio returns 1 - dist/maxLen in [0,1].
func levenshteinRatio(a, b string) float64 {
	ar, br := []rune(a), []rune(b)
	if len(ar) == 0 && len(br) == 0 {
		return 1
	}
	la, lb := len(ar), len(br)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ar[i-1] == br[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if x := cur[j-1] + 1; x < m {
				m = x // insertion
			}
			if x := prev[j-1] + cost; x < m {
				m = x // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	dist := prev[lb]
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(dist)/float64(maxLen)
}

// pairCancelStride bounds how many blocking-generated candidate pairs are
// compared between two context checks in Resolve and ResolveLearned — the
// comparison loop is the quadratic-in-the-worst-case part of ER.
const pairCancelStride = 256

// Resolve performs entity resolution over the rows of t. Every cell is
// canonicalized once through the knowledge base's compiled annotation cache
// (see kb.Annotator); blocking, the alias-aware similarity shortcut, and
// clustering then run on integer annotation codes. Output is byte-identical
// to the retained string reference path (pinned by crosscheck_test.go).
//
// ctx is observed cooperatively across the blocking-pair comparison loop:
// once cancelled, Resolve returns (nil, ctx.Err()) promptly. For
// request-scoped resolution against a shared lake annotator, pass
// Options.Annotator = annotator.ERScope().
func Resolve(ctx context.Context, t *table.Table, opts Options) (*Resolution, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("er: nil or zero-column table")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	codes := cellCodes(t, opts.annotator())
	candidates := blockPairsCodes(codes)
	tc := newTextCache()
	done := ctx.Done()
	parent := make([]int, t.NumRows())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	res := &Resolution{Input: t}
	for pi, p := range candidates {
		if done != nil && pi%pairCancelStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		score, comparable := similarityCodes(t.Rows[p[0]], t.Rows[p[1]], codes[p[0]], codes[p[1]], opts, tc)
		if !comparable {
			continue
		}
		pair := Pair{A: p[0], B: p[1], Score: score, Matched: score >= opts.Threshold}
		res.Pairs = append(res.Pairs, pair)
		if pair.Matched {
			ra, rb := find(p[0]), find(p[1])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < t.NumRows(); i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(byRoot[r])
		res.Clusters = append(res.Clusters, byRoot[r])
	}
	res.Resolved = mergeClusters(t, res.Clusters, opts.Knowledge)
	return res, nil
}

// blockPairsCodes generates candidate pairs from annotation codes: rows
// sharing a non-empty code in the same column block together. Each pair is
// emitted once (a<b) and the output is sorted by (A,B) — identical to the
// string-keyed reference blockPairs, whose sorted-key iteration the final
// pair sort already canonicalizes away.
func blockPairsCodes(codes [][]uint32) [][2]int {
	blocks := make(map[uint64][]int32)
	for r, row := range codes {
		for c, code := range row {
			if code <= kb.CodeEmpty {
				continue
			}
			key := uint64(c)<<32 | uint64(code)
			blocks[key] = append(blocks[key], int32(r))
		}
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, rows := range blocks {
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				p := [2]int{int(rows[i]), int(rows[j])}
				if seen[p] {
					continue
				}
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// blockPairs generates candidate pairs: rows sharing a canonicalized cell
// value in the same column. Each pair is emitted once (a<b), ordered.
// Reference implementation retained for the cross-check suite; Resolve uses
// blockPairsCodes.
func blockPairs(t *table.Table, knowledge *kb.KB) [][2]int {
	blocks := make(map[string][]int)
	for r, row := range t.Rows {
		for c, v := range row {
			if v.IsNull() {
				continue
			}
			key := tokenize.Normalize(v.String())
			if knowledge != nil {
				key = knowledge.Canonical(v.String())
			}
			if key == "" {
				continue
			}
			blocks[fmt.Sprintf("%d\x1f%s", c, key)] = append(blocks[fmt.Sprintf("%d\x1f%s", c, key)], r)
		}
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rows := blocks[k]
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				p := [2]int{rows[i], rows[j]}
				if p[0] == p[1] || seen[p] {
					continue
				}
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// mergeClusters builds the canonical table: per cluster and column, the
// most frequent non-null value wins; ties prefer the longest rendering,
// then the lexicographically smallest (which selects "J&J" over "JnJ" and
// "United States" over "USA", as in Fig. 8(d)). All-null columns keep a
// missing null if any member had one, else a produced null.
func mergeClusters(t *table.Table, clusters [][]int, knowledge *kb.KB) *table.Table {
	out := table.New("ER("+t.Name+")", t.Columns...)
	for _, cluster := range clusters {
		row := make([]table.Value, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			row[c] = canonicalValue(t, cluster, c)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func canonicalValue(t *table.Table, cluster []int, c int) table.Value {
	counts := make(map[string]int)
	byKey := make(map[string]table.Value)
	anyMissing := false
	for _, r := range cluster {
		v := t.Rows[r][c]
		if v.IsNull() {
			if v.Kind() == table.Null {
				anyMissing = true
			}
			continue
		}
		k := v.Key()
		counts[k]++
		if _, ok := byKey[k]; !ok {
			byKey[k] = v
		}
	}
	if len(counts) == 0 {
		if anyMissing {
			return table.NullValue()
		}
		return table.ProducedNull()
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb2 := keys[a], keys[b]
		if counts[ka] != counts[kb2] {
			return counts[ka] > counts[kb2]
		}
		sa, sb := byKey[ka].String(), byKey[kb2].String()
		if len(sa) != len(sb) {
			return len(sa) > len(sb)
		}
		return sa < sb
	})
	return byKey[keys[0]]
}
