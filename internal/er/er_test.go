package er

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func demoOpts() Options { return Options{Knowledge: kb.Demo()} }

func TestFig8dEROverFD(t *testing.T) {
	// ER over the FD result (f8, f12, f13) resolves {f12, f13} and yields
	// exactly the two canonical rows of Fig. 8(d).
	res, err := Resolve(context.Background(), paperdata.Fig8bExpected(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", res.Clusters)
	}
	want := paperdata.Fig8dExpected()
	got := res.Resolved.Clone()
	got.Columns = want.Columns
	got.Name = want.Name
	if !got.EqualUnordered(want) {
		t.Fatalf("ER(FD) != Fig. 8(d):\ngot:\n%s\nwant:\n%s", res.Resolved, want)
	}
}

func TestFig8cEROverOuterJoin(t *testing.T) {
	// ER over the outer-join result (f8–f12): {f11, f12} resolve into
	// (J&J, ⊥, United States); f9 and f10 cannot be resolved, and the J&J
	// approver remains unknown — the paper's core contrast.
	res, err := Resolve(context.Background(), paperdata.Fig8aExpected(), demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("clusters = %v, want 4", res.Clusters)
	}
	got := res.Resolved
	if got.NumRows() != 4 {
		t.Fatalf("resolved rows = %d, want 4:\n%s", got.NumRows(), got)
	}
	// Build the expected Fig. 8(c) table.
	want := table.New("want", paperdata.ColVaccine, paperdata.ColApprover, paperdata.ColCountry)
	want.MustAddRow(table.StringValue("Pfizer"), table.StringValue("FDA"), table.StringValue("United States"))
	want.MustAddRow(table.StringValue("JnJ"), table.NullValue(), table.ProducedNull())
	want.MustAddRow(table.ProducedNull(), table.NullValue(), table.StringValue("USA"))
	want.MustAddRow(table.StringValue("J&J"), table.ProducedNull(), table.StringValue("United States"))
	cmp := got.Clone()
	cmp.Columns = want.Columns
	cmp.Name = want.Name
	if !cmp.EqualUnordered(want) {
		t.Fatalf("ER(outer join) != Fig. 8(c):\ngot:\n%s\nwant:\n%s", got, want)
	}
	// No row carries the J&J-approver fact.
	for r := 0; r < got.NumRows(); r++ {
		if got.Cell(r, 0).Str() == "J&J" && !got.Cell(r, 1).IsNull() {
			t.Error("outer-join ER must not know J&J's approver")
		}
	}
}

func TestIncompleteTuplesNotComparable(t *testing.T) {
	// f9 = (JnJ, ±, ⊥) and f10 = (⊥, ±, USA) share no both-filled column.
	f9 := []table.Value{table.StringValue("JnJ"), table.NullValue(), table.ProducedNull()}
	f10 := []table.Value{table.ProducedNull(), table.NullValue(), table.StringValue("USA")}
	if _, comparable := Similarity(f9, f10, demoOpts()); comparable {
		t.Error("tuples with no shared filled column must not be comparable")
	}
}

func TestConflictVeto(t *testing.T) {
	a := []table.Value{table.StringValue("Pfizer"), table.StringValue("FDA"), table.StringValue("United States")}
	b := []table.Value{table.StringValue("J&J"), table.StringValue("FDA"), table.StringValue("United States")}
	if _, comparable := Similarity(a, b, demoOpts()); comparable {
		t.Error("conflicting vaccine names must veto the pair")
	}
}

func TestOneSidedNullPenalty(t *testing.T) {
	// (JnJ, ±, ⊥) vs (JnJ, ⊥, USA): vaccine matches but the one-sided
	// country null halves the score below the threshold.
	a := []table.Value{table.StringValue("JnJ"), table.NullValue(), table.ProducedNull()}
	b := []table.Value{table.StringValue("JnJ"), table.ProducedNull(), table.StringValue("USA")}
	score, comparable := Similarity(a, b, demoOpts())
	if !comparable {
		t.Fatal("pair must be comparable")
	}
	if score >= 0.6 {
		t.Errorf("score = %v, want < 0.6 (incompleteness penalty)", score)
	}
}

func TestCellSimilarity(t *testing.T) {
	k := kb.Demo()
	if s := cellSimilarity(table.StringValue("USA"), table.StringValue("United States"), k); s != 1 {
		t.Errorf("alias similarity = %v, want 1", s)
	}
	if s := cellSimilarity(table.StringValue("USA"), table.StringValue("United States"), nil); s >= 1 {
		t.Errorf("without KB, alias pair must score < 1, got %v", s)
	}
	if s := cellSimilarity(table.IntValue(100), table.IntValue(90), nil); s != 0.9 {
		t.Errorf("numeric closeness = %v, want 0.9", s)
	}
	if s := cellSimilarity(table.IntValue(0), table.FloatValue(0), nil); s != 1 {
		t.Errorf("zero/zero = %v, want 1", s)
	}
	if s := cellSimilarity(table.StringValue("Berlin"), table.StringValue("Berlin!"), nil); s < 0.8 {
		t.Errorf("near-identical strings = %v", s)
	}
}

func TestLevenshteinRatio(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "abc", 1},
		{"abc", "abd", 1 - 1.0/3},
		{"abc", "", 0},
		{"kitten", "sitting", 1 - 3.0/7},
	}
	for _, c := range cases {
		got := levenshteinRatio(c.a, c.b)
		if diff := got - c.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("lev(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestResolveTransitiveClustering(t *testing.T) {
	tb := table.New("t", "name", "city")
	tb.MustAddRow(table.StringValue("USA"), table.StringValue("Boston"))
	tb.MustAddRow(table.StringValue("United States"), table.StringValue("Boston"))
	tb.MustAddRow(table.StringValue("U.S.A."), table.StringValue("Boston"))
	res, err := Resolve(context.Background(), tb, demoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0]) != 3 {
		t.Errorf("clusters = %v, want one cluster of 3", res.Clusters)
	}
	if res.Resolved.NumRows() != 1 {
		t.Errorf("resolved = %d rows", res.Resolved.NumRows())
	}
	if res.Resolved.Cell(0, 0).Str() != "United States" {
		t.Errorf("canonical = %q, want longest form", res.Resolved.Cell(0, 0).Str())
	}
}

func TestResolveNoMatches(t *testing.T) {
	tb := table.New("t", "v")
	tb.MustAddRow(table.StringValue("alpha"))
	tb.MustAddRow(table.StringValue("omega"))
	res, err := Resolve(context.Background(), tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Errorf("clusters = %v", res.Clusters)
	}
}

func TestResolveValidation(t *testing.T) {
	if _, err := Resolve(context.Background(), nil, Options{}); err == nil {
		t.Error("nil table must error")
	}
	if _, err := Resolve(context.Background(), table.New("x"), Options{}); err == nil {
		t.Error("zero-column table must error")
	}
}

func TestBlockingLimitsPairs(t *testing.T) {
	tb := table.New("t", "v")
	tb.MustAddRow(table.StringValue("aaa"))
	tb.MustAddRow(table.StringValue("bbb"))
	tb.MustAddRow(table.StringValue("aaa"))
	pairs := blockPairs(tb, nil)
	if !reflect.DeepEqual(pairs, [][2]int{{0, 2}}) {
		t.Errorf("blocking pairs = %v, want [[0 2]]", pairs)
	}
}

func TestCanonicalValueNullKinds(t *testing.T) {
	tb := table.New("t", "v")
	tb.MustAddRow(table.NullValue())
	tb.MustAddRow(table.ProducedNull())
	if v := canonicalValue(tb, []int{0, 1}, 0); v.Kind() != table.Null {
		t.Error("missing null must win over produced null")
	}
	if v := canonicalValue(tb, []int{1}, 0); v.Kind() != table.PNull {
		t.Error("produced-only cluster keeps produced null")
	}
}

func TestPairwiseQuality(t *testing.T) {
	clusters := [][]int{{0, 1}, {2}, {3}}
	truth := []string{"x", "x", "y", "y"}
	p, r, f1 := PairwiseQuality(clusters, truth)
	if p != 1 {
		t.Errorf("precision = %v, want 1", p)
	}
	if r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
	if f1 <= 0.6 || f1 >= 0.7 {
		t.Errorf("f1 = %v, want 2/3", f1)
	}
	// Perfect clustering.
	p, r, f1 = PairwiseQuality([][]int{{0, 1}, {2, 3}}, truth)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect = %v %v %v", p, r, f1)
	}
	// Degenerate: no true pairs.
	p, r, f1 = PairwiseQuality([][]int{{0}, {1}}, []string{"a", "b"})
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("degenerate = %v %v %v", p, r, f1)
	}
}
