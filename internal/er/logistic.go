package er

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kb"
	"repro/internal/table"
)

// FeatureNames documents the per-pair feature vector layout used by the
// learned matcher, in order.
var FeatureNames = []string{
	"mean_similarity",  // average cell similarity over considered columns
	"min_similarity",   // weakest both-filled column
	"both_filled_frac", // fraction of columns filled on both sides
	"one_sided_frac",   // fraction of columns filled on exactly one side
	"exact_match_frac", // fraction of both-filled columns matching exactly
}

// Features computes the learned matcher's feature vector for a row pair.
// The second result is false when the rows share no both-filled column
// (such pairs are never matchable, mirroring the rule matcher).
func Features(a, b []table.Value, knowledge *kb.KB) ([]float64, bool) {
	return featuresWith(a, b, func(i int) float64 {
		return cellSimilarity(a[i], b[i], knowledge)
	})
}

// featuresCodes is Features over pre-resolved annotation codes, the
// ResolveLearned hot path.
func featuresCodes(a, b []table.Value, ca, cb []uint32, tc *textCache) ([]float64, bool) {
	return featuresWith(a, b, func(i int) float64 {
		return cellSimilarityCodes(a[i], b[i], ca[i], cb[i], tc)
	})
}

// featuresWith is the shared feature-extraction core: sim(i) scores column
// i's two (non-null) cells.
func featuresWith(a, b []table.Value, sim func(i int) float64) ([]float64, bool) {
	n := len(a)
	if n == 0 {
		return nil, false
	}
	bothFilled, oneSided, considered := 0, 0, 0
	var simSum float64
	minSim := 1.0
	exact := 0
	for i := range a {
		an, bn := !a[i].IsNull(), !b[i].IsNull()
		switch {
		case an && bn:
			s := sim(i)
			bothFilled++
			considered++
			simSum += s
			if s < minSim {
				minSim = s
			}
			if a[i].Equal(b[i]) {
				exact++
			}
		case an != bn:
			oneSided++
			considered++
		}
	}
	if bothFilled == 0 {
		return nil, false
	}
	exactFrac := float64(exact) / float64(bothFilled)
	return []float64{
		simSum / float64(considered),
		minSim,
		float64(bothFilled) / float64(n),
		float64(oneSided) / float64(n),
		exactFrac,
	}, true
}

// LogisticModel is a trained pairwise match classifier: P(match) =
// sigmoid(w·x + b). It substitutes for py_entitymatching's learned
// matchers (the demo trains one on labeled pairs).
type LogisticModel struct {
	// Weights holds one weight per feature in FeatureNames order.
	Weights []float64
	// Bias is the intercept.
	Bias float64
}

// Predict returns P(match) for a feature vector.
func (m *LogisticModel) Predict(features []float64) float64 {
	z := m.Bias
	for i, w := range m.Weights {
		if i < len(features) {
			z += w * features[i]
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// TrainingPair is one labeled example for TrainLogistic.
type TrainingPair struct {
	A, B  []table.Value
	Match bool
}

// TrainOptions configures logistic-regression training.
type TrainOptions struct {
	// Knowledge feeds the feature extractor.
	Knowledge *kb.KB
	// Epochs of full-batch gradient descent. Default 500.
	Epochs int
	// LearningRate. Default 0.5.
	LearningRate float64
	// L2 regularization strength. Default 0.001.
	L2 float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 500
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	if o.L2 <= 0 {
		o.L2 = 0.001
	}
	return o
}

// TrainLogistic fits a logistic-regression matcher on labeled row pairs by
// full-batch gradient descent. Pairs whose rows share no both-filled
// column are skipped (they are never matchable at inference either).
// Training is deterministic: weights start at zero and the data order is
// the caller's.
func TrainLogistic(pairs []TrainingPair, opts TrainOptions) (*LogisticModel, error) {
	opts = opts.withDefaults()
	type example struct {
		x []float64
		y float64
	}
	var data []example
	for _, p := range pairs {
		x, ok := Features(p.A, p.B, opts.Knowledge)
		if !ok {
			continue
		}
		y := 0.0
		if p.Match {
			y = 1
		}
		data = append(data, example{x: x, y: y})
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("er: no trainable pairs (every pair lacks a both-filled column)")
	}
	nf := len(data[0].x)
	m := &LogisticModel{Weights: make([]float64, nf)}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		gw := make([]float64, nf)
		gb := 0.0
		for _, ex := range data {
			p := m.Predict(ex.x)
			diff := p - ex.y
			for i := range gw {
				gw[i] += diff * ex.x[i]
			}
			gb += diff
		}
		scale := opts.LearningRate / float64(len(data))
		for i := range m.Weights {
			m.Weights[i] -= scale*gw[i] + opts.LearningRate*opts.L2*m.Weights[i]
		}
		m.Bias -= scale * gb
	}
	return m, nil
}

// ResolveLearned runs entity resolution with a trained model instead of
// the rule matcher: candidate pairs come from the same blocking, a pair
// matches when P(match) >= threshold (0.5 when threshold <= 0), and
// clusters merge transitively as in Resolve. ctx is observed across the
// pair-scoring loop exactly as in Resolve.
func ResolveLearned(ctx context.Context, t *table.Table, model *LogisticModel, knowledge *kb.KB, threshold float64) (*Resolution, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("er: nil or zero-column table")
	}
	if model == nil {
		return nil, fmt.Errorf("er: nil model")
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	codes := cellCodes(t, Options{Knowledge: knowledge}.annotator())
	candidates := blockPairsCodes(codes)
	tc := newTextCache()
	done := ctx.Done()
	parent := make([]int, t.NumRows())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	res := &Resolution{Input: t}
	for pi, p := range candidates {
		if done != nil && pi%pairCancelStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		x, ok := featuresCodes(t.Rows[p[0]], t.Rows[p[1]], codes[p[0]], codes[p[1]], tc)
		if !ok {
			continue
		}
		score := model.Predict(x)
		pair := Pair{A: p[0], B: p[1], Score: score, Matched: score >= threshold}
		res.Pairs = append(res.Pairs, pair)
		if pair.Matched {
			ra, rb := find(p[0]), find(p[1])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < t.NumRows(); i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sortInts(roots)
	for _, r := range roots {
		sortInts(byRoot[r])
		res.Clusters = append(res.Clusters, byRoot[r])
	}
	res.Resolved = mergeClusters(t, res.Clusters, knowledge)
	return res, nil
}

// TrainingPairsFromFigures builds a small labeled training set from the
// demo KB's alias structure: positive pairs are alias respellings of one
// row; negatives pair different entities. It lets the demo train a learned
// matcher without external labels.
func TrainingPairsFromFigures(knowledge *kb.KB) []TrainingPair {
	s := func(v string) table.Value { return table.StringValue(v) }
	nul := table.NullValue()
	pn := table.ProducedNull()
	return []TrainingPair{
		// Positives: alias respellings and partial views of one entity.
		{A: []table.Value{s("JnJ"), s("FDA"), s("USA")}, B: []table.Value{s("J&J"), s("FDA"), s("United States")}, Match: true},
		{A: []table.Value{s("Pfizer"), s("FDA"), s("United States")}, B: []table.Value{s("Pfizer"), s("FDA"), s("USA")}, Match: true},
		{A: []table.Value{s("Moderna"), pn, s("USA")}, B: []table.Value{s("Moderna"), s("FDA"), s("USA")}, Match: true},
		{A: []table.Value{s("AstraZeneca"), s("EMA"), pn}, B: []table.Value{s("AstraZeneca"), s("EMA"), s("England")}, Match: true},
		{A: []table.Value{s("Sinovac"), nul, s("China")}, B: []table.Value{s("CoronaVac"), nul, s("China")}, Match: true},
		// The Fig. 8(d) pair itself: two alias agreements plus one
		// one-sided unknown is a match.
		{A: []table.Value{s("JnJ"), pn, s("USA")}, B: []table.Value{s("J&J"), s("FDA"), s("United States")}, Match: true},
		{A: []table.Value{s("Spikevax"), pn, s("USA")}, B: []table.Value{s("Moderna"), s("FDA"), s("United States")}, Match: true},
		// Negatives: different entities, even when some columns agree.
		{A: []table.Value{s("Pfizer"), s("FDA"), s("United States")}, B: []table.Value{s("J&J"), s("FDA"), s("United States")}, Match: false},
		{A: []table.Value{s("Moderna"), s("FDA"), s("USA")}, B: []table.Value{s("Novavax"), s("FDA"), s("USA")}, Match: false},
		// Negatives: a single agreeing attribute with everything else
		// unknown is insufficient evidence (Fig. 8(c): f9 is not merged
		// with f11 or f12, and f10 not with f8 or f12) — whether the
		// agreement is literal or via an alias.
		{A: []table.Value{s("JnJ"), nul, pn}, B: []table.Value{s("JnJ"), pn, s("USA")}, Match: false},
		{A: []table.Value{pn, nul, s("USA")}, B: []table.Value{s("JnJ"), pn, s("USA")}, Match: false},
		{A: []table.Value{s("JnJ"), nul, pn}, B: []table.Value{s("J&J"), pn, s("United States")}, Match: false},
		{A: []table.Value{s("Pfizer"), s("FDA"), s("United States")}, B: []table.Value{pn, nul, s("USA")}, Match: false},
		{A: []table.Value{s("Sputnik V"), pn, s("Russia")}, B: []table.Value{s("Covaxin"), pn, s("India")}, Match: false},
		{A: []table.Value{s("Pfizer"), pn, pn}, B: []table.Value{s("Moderna"), pn, pn}, Match: false},
		{A: []table.Value{s("AstraZeneca"), s("MHRA"), s("England")}, B: []table.Value{s("Sinovac"), s("WHO"), s("China")}, Match: false},
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
