package er

import (
	"context"
	"math"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func TestFeatures(t *testing.T) {
	k := kb.Demo()
	a := []table.Value{table.StringValue("JnJ"), table.ProducedNull(), table.StringValue("USA")}
	b := []table.Value{table.StringValue("J&J"), table.StringValue("FDA"), table.StringValue("United States")}
	x, ok := Features(a, b, k)
	if !ok {
		t.Fatal("pair must be featurizable")
	}
	if len(x) != len(FeatureNames) {
		t.Fatalf("feature vector length %d, want %d", len(x), len(FeatureNames))
	}
	// mean similarity = (1 + 0 + 1)/3 with the one-sided approver.
	if math.Abs(x[0]-2.0/3) > 1e-9 {
		t.Errorf("mean_similarity = %v, want 2/3", x[0])
	}
	if x[2] != 2.0/3 {
		t.Errorf("both_filled_frac = %v, want 2/3", x[2])
	}
	if x[3] != 1.0/3 {
		t.Errorf("one_sided_frac = %v, want 1/3", x[3])
	}
	// No both-filled column -> not featurizable.
	f9 := []table.Value{table.StringValue("JnJ"), table.NullValue(), table.ProducedNull()}
	f10 := []table.Value{table.ProducedNull(), table.NullValue(), table.StringValue("USA")}
	if _, ok := Features(f9, f10, k); ok {
		t.Error("no-shared-column pair must not featurize")
	}
	if _, ok := Features(nil, nil, k); ok {
		t.Error("empty rows must not featurize")
	}
}

func TestTrainLogisticSeparatesDemoPairs(t *testing.T) {
	k := kb.Demo()
	model, err := TrainLogistic(TrainingPairsFromFigures(k), TrainOptions{Knowledge: k})
	if err != nil {
		t.Fatal(err)
	}
	// The trained model must score a true alias pair above a conflicting
	// pair.
	s := func(v string) table.Value { return table.StringValue(v) }
	pos, _ := Features(
		[]table.Value{s("JnJ"), table.ProducedNull(), s("USA")},
		[]table.Value{s("J&J"), s("FDA"), s("United States")}, k)
	neg, _ := Features(
		[]table.Value{s("Pfizer"), s("FDA"), s("United States")},
		[]table.Value{s("J&J"), s("FDA"), s("United States")}, k)
	pPos := model.Predict(pos)
	pNeg := model.Predict(neg)
	if pPos <= pNeg {
		t.Errorf("P(match) alias pair %v must exceed conflicting pair %v", pPos, pNeg)
	}
	if pPos < 0.5 {
		t.Errorf("alias pair should classify as match, got %v", pPos)
	}
	if pNeg >= 0.5 {
		t.Errorf("conflicting pair should classify as non-match, got %v", pNeg)
	}
}

func TestTrainLogisticValidation(t *testing.T) {
	if _, err := TrainLogistic(nil, TrainOptions{}); err == nil {
		t.Error("empty training set must error")
	}
	// A set with only unfeaturizable pairs must error too.
	bad := []TrainingPair{{
		A: []table.Value{table.NullValue()},
		B: []table.Value{table.StringValue("x")},
	}}
	if _, err := TrainLogistic(bad, TrainOptions{}); err == nil {
		t.Error("unfeaturizable training set must error")
	}
}

func TestResolveLearnedReproducesFig8d(t *testing.T) {
	// The learned matcher, trained on the demo pairs, reproduces the
	// Fig. 8(d) resolution like the rule matcher does.
	k := kb.Demo()
	model, err := TrainLogistic(TrainingPairsFromFigures(k), TrainOptions{Knowledge: k})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResolveLearned(context.Background(), paperdata.Fig8bExpected(), model, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("learned ER clusters = %v, want 2", res.Clusters)
	}
	want := paperdata.Fig8dExpected()
	got := res.Resolved.Clone()
	got.Columns = want.Columns
	got.Name = want.Name
	if !got.EqualUnordered(want) {
		t.Errorf("learned ER != Fig. 8(d):\n%s", res.Resolved)
	}
}

func TestResolveLearnedOuterJoinStaysUnresolved(t *testing.T) {
	k := kb.Demo()
	model, err := TrainLogistic(TrainingPairsFromFigures(k), TrainOptions{Knowledge: k})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResolveLearned(context.Background(), paperdata.Fig8aExpected(), model, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// f9 and f10 share no both-filled column: no model can pair them.
	if len(res.Clusters) < 4 {
		t.Errorf("learned ER over outer join = %d clusters, want >= 4", len(res.Clusters))
	}
}

func TestResolveLearnedValidation(t *testing.T) {
	k := kb.Demo()
	model := &LogisticModel{Weights: make([]float64, len(FeatureNames))}
	if _, err := ResolveLearned(context.Background(), nil, model, k, 0); err == nil {
		t.Error("nil table must error")
	}
	if _, err := ResolveLearned(context.Background(), paperdata.Fig8bExpected(), nil, k, 0); err == nil {
		t.Error("nil model must error")
	}
}

func TestPredictRange(t *testing.T) {
	m := &LogisticModel{Weights: []float64{10, -10, 3, 1, 2}, Bias: -1}
	for _, x := range [][]float64{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}, {0.5, 0.1, 0.9, 0.2, 0.3}} {
		p := m.Predict(x)
		if p < 0 || p > 1 {
			t.Errorf("Predict out of range: %v", p)
		}
	}
	// Short feature vectors are tolerated (extra weights ignored).
	if p := m.Predict([]float64{1}); p < 0 || p > 1 {
		t.Errorf("short vector predict = %v", p)
	}
}

func TestSortInts(t *testing.T) {
	xs := []int{5, 2, 9, 1}
	sortInts(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}
