package er

// PairwiseQuality scores a clustering against ground-truth entity labels
// (one label per row; rows with equal labels belong together). It returns
// pairwise precision, recall and F1 — the standard ER quality metrics used
// by experiment X6 to quantify Fig. 8's claim that ER works better over FD
// output than over outer-join output.
func PairwiseQuality(clusters [][]int, truth []string) (precision, recall, f1 float64) {
	cluster := make(map[int]int)
	for ci, rows := range clusters {
		for _, r := range rows {
			cluster[r] = ci
		}
	}
	var tp, fp, fn float64
	for i := 0; i < len(truth); i++ {
		ci, iok := cluster[i]
		for j := i + 1; j < len(truth); j++ {
			cj, jok := cluster[j]
			pred := iok && jok && ci == cj
			tru := truth[i] == truth[j]
			switch {
			case pred && tru:
				tp++
			case pred && !tru:
				fp++
			case !pred && tru:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}
