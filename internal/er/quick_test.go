package er

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kb"
	"repro/internal/table"
)

func randRow(rng *rand.Rand, cols int) []table.Value {
	row := make([]table.Value, cols)
	vocab := []string{"jnj", "j&j", "usa", "united states", "fda", "berlin", "x", "y"}
	for i := range row {
		switch rng.Intn(4) {
		case 0:
			row[i] = table.NullValue()
		case 1:
			row[i] = table.ProducedNull()
		case 2:
			row[i] = table.IntValue(int64(rng.Intn(100)))
		default:
			row[i] = table.StringValue(vocab[rng.Intn(len(vocab))])
		}
	}
	return row
}

// TestQuickSimilaritySymmetricAndBounded: pair similarity is symmetric,
// in [0,1], and comparability is symmetric too.
func TestQuickSimilaritySymmetricAndBounded(t *testing.T) {
	k := kb.Demo()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(4)
		a := randRow(rng, cols)
		b := randRow(rng, cols)
		opts := Options{Knowledge: k}
		s1, c1 := Similarity(a, b, opts)
		s2, c2 := Similarity(b, a, opts)
		if c1 != c2 {
			return false
		}
		if s1 != s2 {
			return false
		}
		return s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelfSimilarityMatches: a row with at least one non-null cell is
// always comparable to itself with similarity 1.
func TestQuickSelfSimilarityMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		row := randRow(rng, 1+rng.Intn(4))
		hasValue := false
		for _, v := range row {
			if !v.IsNull() {
				hasValue = true
			}
		}
		s, comparable := Similarity(row, row, Options{})
		if !hasValue {
			return !comparable
		}
		return comparable && s == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickResolveClustersPartitionRows: clusters always partition the
// input rows exactly.
func TestQuickResolveClustersPartitionRows(t *testing.T) {
	k := kb.Demo()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New("t", "a", "b", "c")
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			tb.Rows = append(tb.Rows, randRow(rng, 3))
		}
		res, err := Resolve(context.Background(), tb, Options{Knowledge: k})
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, cluster := range res.Clusters {
			for _, r := range cluster {
				if r < 0 || r >= n || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == n && res.Resolved.NumRows() == len(res.Clusters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevenshteinMetricProperties: identity, symmetry and range.
func TestQuickLevenshteinMetricProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true // bound cost
		}
		r1 := levenshteinRatio(a, b)
		r2 := levenshteinRatio(b, a)
		if r1 != r2 || r1 < 0 || r1 > 1 {
			return false
		}
		return levenshteinRatio(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
