// Package experiments reproduces every figure and worked example of the
// DIALITE paper (F-rows) and the shape of the headline experiments of the
// systems DIALITE composes — ALITE, SANTOS, LSH Ensemble — on synthetic
// data with ground truth (X-rows). cmd/repro prints the rows recorded in
// EXPERIMENTS.md; the root bench_test.go exposes one testing.B benchmark
// per row.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one reproduction result.
type Row struct {
	// ID is the experiment identifier (F2, E3, X1, ...).
	ID string
	// Name describes the artifact.
	Name string
	// Paper states what the paper shows or claims.
	Paper string
	// Measured states what this repository reproduces.
	Measured string
	// Pass reports whether the reproduction criterion held.
	Pass bool
}

// String renders a row as a markdown table line.
func (r Row) String() string {
	status := "ok"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("| %s | %s | %s | %s | %s |", r.ID, r.Name, r.Paper, r.Measured, status)
}

// All runs every experiment in report order.
func All() []Row {
	return []Row{
		Fig1(), Fig2(), Fig3(), Example3(), Fig4(), Fig5(), Fig6(),
		Fig8a(), Fig8b(), Fig8c(), Fig8d(),
		X1Completeness(), X2FDScaling(), X3JoinSearch(), X4UnionSearch(),
		X5SchemaMatch(), X6ERQuality(),
	}
}

// Report renders rows as a markdown table.
func Report(rows []Row) string {
	var b strings.Builder
	b.WriteString("| ID | Artifact | Paper | Measured | Status |\n")
	b.WriteString("|----|----------|-------|----------|--------|\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
