package experiments

import (
	"strings"
	"testing"

	"repro/internal/discovery"
	"repro/internal/table"
)

// TestAllFigureRowsPass is the master golden test: every paper artifact
// must reproduce. (The X rows run in TestAllScalingRowsPass; split so a
// failure pinpoints the class.)
func TestAllFigureRowsPass(t *testing.T) {
	rows := []Row{Fig1(), Fig2(), Fig3(), Example3(), Fig4(), Fig5(), Fig6(), Fig8a(), Fig8b(), Fig8c(), Fig8d()}
	for _, r := range rows {
		if !r.Pass {
			t.Errorf("%s (%s): %s", r.ID, r.Name, r.Measured)
		}
	}
}

func TestAllScalingRowsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiments are not short")
	}
	rows := []Row{X1Completeness(), X2FDScaling(), X3JoinSearch(), X4UnionSearch(), X5SchemaMatch(), X6ERQuality()}
	for _, r := range rows {
		if !r.Pass {
			t.Errorf("%s (%s): %s", r.ID, r.Name, r.Measured)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rows := []Row{{ID: "T", Name: "n", Paper: "p", Measured: "m", Pass: true}}
	rep := Report(rows)
	if !strings.Contains(rep, "| T | n | p | m | ok |") {
		t.Errorf("report = %q", rep)
	}
	fail := Row{ID: "F", Pass: false}
	if !strings.Contains(fail.String(), "FAIL") {
		t.Error("failing row must render FAIL")
	}
}

func TestFragmentInput(t *testing.T) {
	in, err := FragmentInput(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Schema) != 3 {
		t.Errorf("fragment schema = %v", in.Schema)
	}
	if len(in.Tuples) < 5 {
		t.Errorf("fragment tuples = %d", len(in.Tuples))
	}
}

func TestPrecisionAtK(t *testing.T) {
	mk := func(names ...string) []discovery.Result {
		out := make([]discovery.Result, len(names))
		for i, n := range names {
			out[i] = discovery.Result{Table: table.New(n, "c")}
		}
		return out
	}
	// Results ranked [a b c]; truth {a, c} -> p@3 = 2/3, p@1 = 1.
	rs := mk("a", "b", "c")
	if p := precisionAtK(rs, []string{"a", "c"}, 3); p < 0.66 || p > 0.67 {
		t.Errorf("p@3 = %v, want 2/3", p)
	}
	if p := precisionAtK(rs, []string{"a", "c"}, 1); p != 1 {
		t.Errorf("p@1 = %v, want 1", p)
	}
	if p := precisionAtK(nil, []string{"a"}, 3); p != 0 {
		t.Errorf("empty results precision = %v", p)
	}
}
