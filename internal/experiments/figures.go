package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// paperRowIDs names rows with the paper's global tuple IDs t1..t16.
func paperRowIDs(tableName string, row int) string { return paperdata.TupleID(tableName, row) }

// demoPipeline builds the demo pipeline over the Fig. 2 lake {T2, T3}.
func demoPipeline() (*core.Pipeline, error) {
	return core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
}

// sameValues compares two tables modulo row order and header spelling.
func sameValues(got, want *table.Table) bool {
	g := got.Clone()
	g.Columns = want.Columns
	g.Name = want.Name
	return g.EqualUnordered(want)
}

// Fig1 runs the full pipeline of Fig. 1 end to end: discover from T1,
// integrate with ALITE, analyze with a correlation.
func Fig1() Row {
	row := Row{ID: "F1", Name: "Fig. 1 pipeline end-to-end", Paper: "discover -> align&integrate -> analyze"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	res, err := p.Run(context.Background(), core.RunRequest{Query: q, QueryColumn: city})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	r, _, err := p.Correlate(context.Background(), res.Integration.Table, paperdata.ColVaccRate, paperdata.ColDeathRate)
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	row.Measured = fmt.Sprintf("set={T1,T2,T3}, %d integrated tuples, corr=%.2f", res.Integration.Table.NumRows(), r)
	row.Pass = len(res.Discovery.IntegrationSet) == 3 && res.Integration.Table.NumRows() == 7
	return row
}

// Fig2 reproduces Example 1: SANTOS retrieves T2 as unionable and LSH
// Ensemble retrieves T3 as joinable for query T1 with intent column City.
func Fig2() Row {
	row := Row{ID: "F2", Name: "Fig. 2 discovery example", Paper: "SANTOS->T2 (unionable), LSH Ensemble->T3 (joinable)"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	resp, err := p.Discover(context.Background(), core.DiscoverRequest{Query: q, QueryColumn: city})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	u := resp.PerMethod["santos-union"]
	j := resp.PerMethod["lsh-join"]
	uTop := len(u) > 0 && u[0].Table.Name == "T2"
	jTop := len(j) > 0 && j[0].Table.Name == "T3"
	row.Measured = fmt.Sprintf("santos top-1=%s, lsh top-1=%s", nameOrNone(u), nameOrNone(j))
	row.Pass = uTop && jTop
	return row
}

func nameOrNone(rs []discovery.Result) string {
	if len(rs) == 0 {
		return "none"
	}
	return rs[0].Table.Name
}

// Fig3 reproduces the integrated table FD(T1,T2,T3) exactly, including
// provenance and null kinds.
func Fig3() Row {
	row := Row{ID: "F3", Name: "Fig. 3 FD(T1,T2,T3)", Paper: "7 tuples f1-f7 with TIDs"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	resp, err := p.Integrate(context.Background(), core.IntegrateRequest{
		Tables: []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()},
		RowIDs: paperRowIDs,
	})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	match := sameValues(resp.Table, paperdata.Fig3Expected())
	provOK := provenanceMatches(resp, 1, paperdata.Fig3Provenance())
	row.Measured = fmt.Sprintf("%d tuples, values match=%v, provenance match=%v", resp.Table.NumRows(), match, provOK)
	row.Pass = match && provOK
	return row
}

func provenanceMatches(resp *core.IntegrateResponse, keyPos int, want map[string][]string) bool {
	for _, tu := range resp.Tuples {
		key := tu.Values[keyPos].String()
		exp, ok := want[key]
		if !ok || len(exp) != len(tu.Prov) {
			return false
		}
		for i := range exp {
			if exp[i] != tu.Prov[i] {
				return false
			}
		}
	}
	return true
}

// Example3 reproduces the paper's correlations: 0.16 between vaccination
// and death rates, 0.9 between case counts and vaccination rates.
func Example3() Row {
	row := Row{ID: "E3", Name: "Example 3 analytics", Paper: "corr(vacc,death)=0.16, corr(cases,vacc)=0.9; Boston lowest, Toronto highest"}
	fig3 := paperdata.Fig3Expected()
	vacc, _ := fig3.ColumnIndex(paperdata.ColVaccRate)
	death, _ := fig3.ColumnIndex(paperdata.ColDeathRate)
	cases, _ := fig3.ColumnIndex(paperdata.ColCases)
	city, _ := fig3.ColumnIndex(paperdata.ColCity)
	r1, _, err1 := analyze.Pearson(fig3, vacc, death)
	r2, _, err2 := analyze.Pearson(fig3, cases, vacc)
	min, max, err3 := analyze.ExtremesBy(fig3, city, vacc)
	if err1 != nil || err2 != nil || err3 != nil {
		row.Measured = "error computing analytics"
		return row
	}
	row.Measured = fmt.Sprintf("corr(vacc,death)=%.2f, corr(cases,vacc)=%.1f, min=%s, max=%s", r1, r2, min.Label, max.Label)
	row.Pass = math.Abs(math.Round(r1*100)/100-0.16) < 1e-9 &&
		math.Abs(math.Round(r2*10)/10-0.9) < 1e-9 &&
		min.Label == "Boston" && max.Label == "Toronto"
	return row
}

// Fig4 registers the paper's user-defined inner-join-based discovery
// function and checks it finds the joinable table.
func Fig4() Row {
	row := Row{ID: "F4", Name: "Fig. 4 user-defined discovery", Paper: "user similarity function plugs into the pipeline"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	userSim := discovery.SimilarityFunc{
		FuncName: "inner-join-size",
		Sim: func(q, c *table.Table) float64 {
			best := 0
			for qc := 0; qc < q.NumCols(); qc++ {
				qd := tokenize.ValueSet(q.DistinctStrings(qc))
				for cc := 0; cc < c.NumCols(); cc++ {
					if ov := tokenize.Overlap(qd, tokenize.ValueSet(c.DistinctStrings(cc))); ov > best {
						best = ov
					}
				}
			}
			return float64(best)
		},
	}
	if err := p.Discoverers().Register(userSim); err != nil {
		row.Measured = err.Error()
		return row
	}
	resp, err := p.Discover(context.Background(), core.DiscoverRequest{Query: paperdata.T1(), QueryColumn: 1, Methods: []string{"inner-join-size"}})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	rs := resp.PerMethod["inner-join-size"]
	row.Measured = fmt.Sprintf("custom method returned %d tables, top=%s", len(rs), nameOrNone(rs))
	row.Pass = len(rs) == 1 && rs[0].Table.Name == "T3"
	return row
}

// Fig5 generates the paper's 5x5 COVID query table from a prompt.
func Fig5() Row {
	row := Row{ID: "F5", Name: "Fig. 5 query-table generation", Paper: "GPT-3 generates a 5x5 COVID-19 table from a prompt"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	q, err := p.GenerateQueryTable("Generate a query table about COVID-19 cases", 5, 5, 1)
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	_, hasCity := q.ColumnIndex("City")
	row.Measured = fmt.Sprintf("generated %dx%d table with City column=%v (template substitute for GPT-3)", q.NumRows(), q.NumCols(), hasCity)
	row.Pass = q.NumRows() == 5 && q.NumCols() == 5 && hasCity
	return row
}

// Fig6 registers a user-defined outer-join operator and checks it matches
// the built-in.
func Fig6() Row {
	row := Row{ID: "F6", Name: "Fig. 6 user-defined integration operator", Paper: "user implements outer join as an alternative operator"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	if err := p.Operators().Register(integrate.Func{OpName: "my-outer-join", F: integrate.FullOuterJoin{}.Run}); err != nil {
		row.Measured = err.Error()
		return row
	}
	user, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: paperdata.VaccineSet(), Operator: "my-outer-join"})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	match := sameValues(user.Table, paperdata.Fig8aExpected())
	row.Measured = fmt.Sprintf("custom operator output (%d tuples) equals built-in outer join=%v", user.Table.NumRows(), match)
	row.Pass = match
	return row
}

// Fig8a reproduces the outer join T4⟗T5⟗T6.
func Fig8a() Row {
	row := Row{ID: "F8a", Name: "Fig. 8(a) outer join of T4,T5,T6", Paper: "5 tuples f8-f12; J&J approver missing"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	resp, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: paperdata.VaccineSet(), Operator: "outer-join", RowIDs: paperRowIDs})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	match := sameValues(resp.Table, paperdata.Fig8aExpected())
	row.Measured = fmt.Sprintf("%d tuples, values match=%v", resp.Table.NumRows(), match)
	row.Pass = match
	return row
}

// Fig8b reproduces FD(T4,T5,T6) including the recovered J&J fact.
func Fig8b() Row {
	row := Row{ID: "F8b", Name: "Fig. 8(b) FD of T4,T5,T6", Paper: "3 tuples f8,f12,f13; f13 recovers (J&J, FDA, United States)"}
	p, err := demoPipeline()
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	resp, err := p.Integrate(context.Background(), core.IntegrateRequest{Tables: paperdata.VaccineSet(), RowIDs: paperRowIDs})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	match := sameValues(resp.Table, paperdata.Fig8bExpected())
	provOK := provenanceMatches(resp, 0, paperdata.Fig8bProvenance())
	row.Measured = fmt.Sprintf("%d tuples, values match=%v, provenance match=%v", resp.Table.NumRows(), match, provOK)
	row.Pass = match && provOK
	return row
}

// Fig8c runs ER over the outer-join result: f9/f10 stay unresolved.
func Fig8c() Row {
	row := Row{ID: "F8c", Name: "Fig. 8(c) ER over outer join", Paper: "4 entities; f9/f10 unresolved; J&J approver unknown"}
	res, err := er.Resolve(context.Background(), paperdata.Fig8aExpected(), er.Options{Knowledge: kb.Demo()})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	jjApproverKnown := false
	for r := 0; r < res.Resolved.NumRows(); r++ {
		if res.Resolved.Cell(r, 0).Str() == "J&J" && !res.Resolved.Cell(r, 1).IsNull() {
			jjApproverKnown = true
		}
	}
	row.Measured = fmt.Sprintf("%d entities, J&J approver known=%v", res.Resolved.NumRows(), jjApproverKnown)
	row.Pass = res.Resolved.NumRows() == 4 && !jjApproverKnown
	return row
}

// Fig8d runs ER over the FD result: two entities, J&J fully resolved.
func Fig8d() Row {
	row := Row{ID: "F8d", Name: "Fig. 8(d) ER over FD", Paper: "2 entities incl. (J&J, FDA, United States)"}
	res, err := er.Resolve(context.Background(), paperdata.Fig8bExpected(), er.Options{Knowledge: kb.Demo()})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	match := sameValues(res.Resolved, paperdata.Fig8dExpected())
	row.Measured = fmt.Sprintf("%d entities, values match=%v", res.Resolved.NumRows(), match)
	row.Pass = match
	return row
}
