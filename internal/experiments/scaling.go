package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/discovery"
	"repro/internal/er"
	"repro/internal/fd"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/schemamatch"
	"repro/internal/synth"
	"repro/internal/table"
)

// IntegrateFragments integrates a fragment set with the named operator
// using the reliable-header matcher (the X1/X6 experiments isolate
// integration, not matching).
func IntegrateFragments(fs *synth.FragmentSet, op integrate.Operator) (*table.Table, error) {
	out, _, err := integrate.Apply(context.Background(), op, fs.Tables, schemamatch.HeaderMatcher{}, nil, false)
	return out, err
}

// X1Completeness compares FD and outer join on fragmented entities: the
// ALITE paper's claim that FD maximally connects facts where outer joins
// lose them.
func X1Completeness() Row {
	row := Row{ID: "X1", Name: "FD vs outer join completeness", Paper: "FD integrates maximally; outer join loses derivable facts (ALITE Sec. 6 shape)"}
	totalFD, totalOJ, totalFDRows, totalOJRows := 0, 0, 0, 0
	for _, n := range []int{10, 20, 40} {
		fs := synth.Fragments(synth.FragmentOptions{Seed: int64(n), Entities: n})
		fdTab, err := IntegrateFragments(fs, integrate.ALITEFD{})
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		ojTab, err := IntegrateFragments(fs, integrate.FullOuterJoin{})
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		totalFD += synth.CompleteTuples(fdTab)
		totalOJ += synth.CompleteTuples(ojTab)
		totalFDRows += fdTab.NumRows()
		totalOJRows += ojTab.NumRows()
	}
	row.Measured = fmt.Sprintf("complete tuples FD=%d vs OJ=%d (rows %d vs %d) over 70 entities", totalFD, totalOJ, totalFDRows, totalOJRows)
	row.Pass = totalFD > totalOJ
	return row
}

// FragmentInput aligns a fragment set and returns the outer-union input
// for direct FD benchmarking.
func FragmentInput(entities int, seed int64) (fd.Input, error) {
	fs := synth.Fragments(synth.FragmentOptions{Seed: seed, Entities: entities})
	align, err := schemamatch.HeaderMatcher{}.Align(fs.Tables)
	if err != nil {
		return fd.Input{}, err
	}
	rels := make([]fd.Relation, len(fs.Tables))
	for ti, t := range fs.Tables {
		colPos := make([]int, t.NumCols())
		for c := range colPos {
			p, _ := align.PositionOf(ti, c)
			colPos[c] = p
		}
		rels[ti] = fd.Relation{Table: t, ColPos: colPos}
	}
	return fd.OuterUnion(align.Schema, rels)
}

// X2FDScaling times the three FD algorithms: naive enumeration explodes
// while ALITE stays fast, and the parallel variant matches ALITE's output.
func X2FDScaling() Row {
	row := Row{ID: "X2", Name: "FD algorithm scaling", Paper: "ALITE-FD beats exhaustive FD; parallel variant agrees (ALITE Sec. 6 shape)"}
	smallIn, err := FragmentInput(7, 7) // ~18 tuples: naive is feasible
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	t0 := time.Now()
	naiveOut, err := fd.Naive(smallIn)
	naiveDur := time.Since(t0)
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	t0 = time.Now()
	aliteSmall := fd.ALITE(smallIn)
	aliteSmallDur := time.Since(t0)
	agree := len(naiveOut) == len(aliteSmall)

	bigIn, err := FragmentInput(150, 11)
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	t0 = time.Now()
	aliteBig := fd.ALITE(bigIn)
	aliteBigDur := time.Since(t0)
	t0 = time.Now()
	parBig := fd.Parallel(bigIn, 0)
	parBigDur := time.Since(t0)
	parAgree := len(aliteBig) == len(parBig)

	speedup := float64(naiveDur) / float64(aliteSmallDur+1)
	row.Measured = fmt.Sprintf("n=%d: naive %v vs ALITE %v (%.0fx); n=%d tuples: ALITE %v, parallel %v; outputs agree=%v/%v",
		len(smallIn.Tuples), naiveDur.Round(time.Microsecond), aliteSmallDur.Round(time.Microsecond), speedup,
		len(bigIn.Tuples), aliteBigDur.Round(time.Millisecond), parBigDur.Round(time.Millisecond), agree, parAgree)
	row.Pass = agree && parAgree && naiveDur > aliteSmallDur
	return row
}

// JoinSearchLake builds the X3 lake: many tables so index-based search has
// something to beat.
func JoinSearchLake(seed int64) *synth.Lake {
	return synth.GenerateLake(synth.LakeOptions{
		Seed:              seed,
		Families:          40,
		TablesPerFamily:   6,
		RowsPerTable:      120,
		JoinablePerFamily: 2,
		NoiseTables:       40,
	})
}

// X3JoinSearch measures LSH Ensemble recall and query time against the
// exact containment scan.
func X3JoinSearch() Row {
	row := Row{ID: "X3", Name: "Joinable search: LSH Ensemble vs exact scan", Paper: "near-exact recall at a fraction of the scan cost (LSH Ensemble shape)"}
	sl := JoinSearchLake(17)
	l, err := lake.New(sl.Tables, lake.Options{})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	const threshold = 0.5
	queries := []string{"family0_part0", "family7_part2", "family21_part1", "family33_part4"}
	var lshDur, exactDur time.Duration
	found, truth := 0, 0
	for _, qn := range queries {
		q, ok := l.Get(qn)
		if !ok {
			row.Measured = "query table missing"
			return row
		}
		domain, err := lake.QueryDomain(q, sl.Truth.KeyColumn[qn])
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		t0 := time.Now()
		got := l.Join().Query(domain, threshold, 0)
		lshDur += time.Since(t0)
		t0 = time.Now()
		want := lshensemble.ExactQuery(l.Domains(), domain, threshold, 0)
		exactDur += time.Since(t0)
		gotSet := make(map[string]bool, len(got))
		for _, r := range got {
			gotSet[r.Domain.Key()] = true
		}
		for _, w := range want {
			truth++
			if gotSet[w.Domain.Key()] {
				found++
			}
		}
	}
	recall := 0.0
	if truth > 0 {
		recall = float64(found) / float64(truth)
	}
	speedup := float64(exactDur) / float64(lshDur+1)
	row.Measured = fmt.Sprintf("%d domains; recall=%.3f (%d/%d), lsh=%v vs exact=%v (%.1fx)",
		len(l.Domains()), recall, found, truth, lshDur.Round(time.Microsecond), exactDur.Round(time.Microsecond), speedup)
	row.Pass = recall >= 0.9 && truth > 0
	return row
}

// UnionSearchLake builds the X4 lake: the paper's Fig. 2 situation at
// scale — unionable tables with pairwise DISJOINT value sets (each covers
// different countries' cities), joinable companions, and noise. Only
// semantics reveals the unionable tables.
func UnionSearchLake(seed int64) *synth.Lake {
	return synth.SemanticLake(seed, 7, 5, 6)
}

// precisionAtK scores ranked results against a truth set.
func precisionAtK(results []discovery.Result, truth []string, k int) float64 {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	if k > len(results) {
		k = len(results)
	}
	if k == 0 {
		return 0
	}
	hit := 0
	for _, r := range results[:k] {
		if truthSet[r.Table.Name] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// X4UnionSearch compares SANTOS (with a synthesized KB) against the
// syntactic-overlap baseline on ground-truth unionable families.
func X4UnionSearch() Row {
	row := Row{ID: "X4", Name: "Union search: SANTOS vs syntactic baseline", Paper: "relationship semantics find unionable tables value overlap misses (SANTOS shape)"}
	sl := UnionSearchLake(23)
	l, err := lake.New(sl.Tables, lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		row.Measured = err.Error()
		return row
	}
	queries := []string{"sem_union0", "sem_union2", "sem_union4", "sem_union6"}
	const k = 3
	var santosP, syntacticP float64
	for _, qn := range queries {
		q, ok := l.Get(qn)
		if !ok {
			row.Measured = fmt.Sprintf("query table %s missing", qn)
			return row
		}
		truth := sl.Truth.UnionableWith[qn]
		keyCol := sl.Truth.KeyColumn[qn]
		sRes, err := (discovery.SantosUnion{}).Discover(context.Background(), l, q, keyCol, 0)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		bRes, err := (discovery.SyntacticUnion{}).Discover(context.Background(), l, q, keyCol, 0)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		santosP += precisionAtK(sRes, truth, k)
		syntacticP += precisionAtK(bRes, truth, k)
	}
	santosP /= float64(len(queries))
	syntacticP /= float64(len(queries))
	row.Measured = fmt.Sprintf("precision@%d: santos=%.2f vs syntactic=%.2f over %d disjoint-value queries", k, santosP, syntacticP, len(queries))
	row.Pass = santosP > syntacticP && santosP >= 0.8
	return row
}

// AlignmentLake builds the X5 integration set: one family's partitions
// plus a joinable companion, at a given header-corruption level.
func AlignmentLake(corruption float64, seed int64) (*synth.Lake, []*table.Table) {
	sl := synth.GenerateLake(synth.LakeOptions{
		Seed:              seed,
		Families:          1,
		TablesPerFamily:   4,
		RowsPerTable:      25,
		JoinablePerFamily: 1,
		NoiseTables:       1,
		HeaderCorruption:  corruption,
	})
	var set []*table.Table
	for _, t := range sl.Tables {
		if sl.Truth.FamilyOf[t.Name] == 0 || t.Name == "family0_join0" {
			set = append(set, t)
		}
	}
	return sl, set
}

// X5SchemaMatch sweeps header corruption and compares the holistic matcher
// against the header-equality baseline by pairwise F1 versus ground truth.
func X5SchemaMatch() Row {
	row := Row{ID: "X5", Name: "Holistic matching vs header baseline", Paper: "content-based matching robust to unreliable headers (ALITE align shape)"}
	var details []string
	pass := true
	for _, corr := range []float64{0, 0.5, 0.9} {
		sl, set := AlignmentLake(corr, 31)
		truthMatcher := schemamatch.Oracle{Label: func(name string, col int) string {
			labels := sl.Truth.AttrLabels[name]
			if col < len(labels) {
				return labels[col]
			}
			return ""
		}}
		truth, err := truthMatcher.Align(set)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		syn := kb.Synthesize(set, kb.SynthesizeOptions{})
		hol, err := schemamatch.Holistic{Knowledge: syn}.Align(set)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		hdr, err := schemamatch.HeaderMatcher{}.Align(set)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		_, _, f1Hol := schemamatch.PairwiseScores(hol, truth)
		_, _, f1Hdr := schemamatch.PairwiseScores(hdr, truth)
		details = append(details, fmt.Sprintf("corr=%.1f: holistic=%.2f header=%.2f", corr, f1Hol, f1Hdr))
		if corr >= 0.5 && f1Hol < f1Hdr {
			pass = false
		}
		if corr >= 0.9 && f1Hol < 0.6 {
			pass = false
		}
	}
	row.Measured = joinStrings(details, "; ")
	row.Pass = pass
	return row
}

// X6ERQuality integrates fragmented entities with FD and with outer join,
// resolves both, and scores pairwise F1 against entity ground truth.
func X6ERQuality() Row {
	row := Row{ID: "X6", Name: "ER quality over FD vs outer join", Paper: "ER resolves more over FD output (Fig. 8 generalized)"}
	var f1FDTotal, f1OJTotal float64
	const runs = 3
	for i := 0; i < runs; i++ {
		fs := synth.Fragments(synth.FragmentOptions{Seed: int64(41 + i), Entities: 25})
		fdTab, err := IntegrateFragments(fs, integrate.ALITEFD{})
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		ojTab, err := IntegrateFragments(fs, integrate.FullOuterJoin{})
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		f1FD, err := erF1(fs, fdTab)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		f1OJ, err := erF1(fs, ojTab)
		if err != nil {
			row.Measured = err.Error()
			return row
		}
		f1FDTotal += f1FD
		f1OJTotal += f1OJ
	}
	f1FDTotal /= runs
	f1OJTotal /= runs
	row.Measured = fmt.Sprintf("pairwise ER F1: FD=%.2f vs outer join=%.2f (avg of %d runs)", f1FDTotal, f1OJTotal, runs)
	row.Pass = f1FDTotal >= f1OJTotal
	return row
}

// erF1 resolves an integrated fragment table and scores it against the
// fragment ground truth.
func erF1(fs *synth.FragmentSet, integrated *table.Table) (float64, error) {
	res, err := er.Resolve(context.Background(), integrated, er.Options{Knowledge: fs.Knowledge})
	if err != nil {
		return 0, err
	}
	labels := fs.LabelRows(integrated)
	_, _, f1 := er.PairwiseQuality(res.Clusters, labels)
	return f1, nil
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}
