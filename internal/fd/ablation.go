package fd

// ALITEUnindexed computes the same complementation closure as ALITE but
// generates candidate pairs by scanning every existing tuple instead of
// probing the (position, value) inverted index. It exists purely as the
// ablation baseline for the index — the design choice that makes ALITE's
// closure practical — and produces identical output.
func ALITEUnindexed(in Input) []Tuple {
	tuples := dedupeTuples(in.Tuples)
	keys := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		keys[t.Key()] = true
	}
	work := make([]int, len(tuples))
	for i := range work {
		work[i] = i
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		// Ablated candidate generation: every other tuple is a candidate.
		for j := 0; j < len(tuples); j++ {
			if j == i {
				continue
			}
			a, b := tuples[i], tuples[j]
			if !Complementable(a.Values, b.Values) {
				continue
			}
			m := Merge(a, b)
			k := m.Key()
			if keys[k] {
				continue
			}
			keys[k] = true
			tuples = append(tuples, m)
			work = append(work, len(tuples)-1)
		}
	}
	return finalize(tuples)
}
