package fd

// ALITEUnindexed computes the same complementation closure as ALITE but
// generates candidate pairs by scanning every existing tuple instead of
// probing the (position, value) inverted index. It exists purely as the
// ablation baseline for the index — the design choice that makes ALITE's
// closure practical — and produces identical output. It shares the interned
// closure machinery, so the comparison isolates candidate generation alone.
func ALITEUnindexed(in Input) []Tuple {
	c := newCloser(in.Dict)
	work := c.seed(in.Tuples)
	var idbuf []uint32
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		// Ablated candidate generation: every other tuple is a candidate.
		for j := 0; j < len(c.tuples); j++ {
			if j == i {
				continue
			}
			if ni := c.tryMerge(i, j, &idbuf); ni >= 0 {
				work = append(work, ni)
			}
		}
	}
	return c.finalize()
}
