package fd

import (
	"math/rand"
	"testing"
)

func TestALITEUnindexedMatchesALITE(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		in := randomInput(rng)
		a := ALITE(in)
		u := ALITEUnindexed(in)
		if !sameValues(a, u) {
			t.Fatalf("iteration %d: unindexed closure diverges", iter)
		}
	}
}

func TestALITEUnindexedOnFixtures(t *testing.T) {
	for _, mk := range []func(*testing.T) Input{fig3Input, fig8Input} {
		in := mk(t)
		if !sameValues(ALITE(in), ALITEUnindexed(in)) {
			t.Error("unindexed closure diverges on paper fixtures")
		}
	}
}
