package fd

// ALITE computes the Full Disjunction of the input by complementation
// closure, the algorithm of the ALITE paper:
//
//  1. Deduplicate the outer-union tuples (set semantics).
//  2. Repeatedly merge complementable tuple pairs — candidate pairs are
//     generated from a (position, value) inverted index, so only tuples
//     that actually share a joinable value are ever compared — until no
//     merge produces a tuple with new values.
//  3. Remove subsumed tuples, leaving the maximal ones.
//
// The result is sorted canonically and is deterministic.
func ALITE(in Input) []Tuple {
	c := newCloser(in.Tuples)
	c.run()
	return finalize(c.tuples)
}

// finalize applies subsumption removal and canonical ordering.
func finalize(tuples []Tuple) []Tuple {
	out := RemoveSubsumed(tuples)
	sortTuples(out)
	return out
}

// closer holds the shared closure state used by ALITE and Parallel.
type closer struct {
	tuples  []Tuple
	keys    map[string]bool  // value keys present
	buckets map[string][]int // (pos,value) -> tuple indices
}

func newCloser(initial []Tuple) *closer {
	c := &closer{
		keys:    make(map[string]bool),
		buckets: make(map[string][]int),
	}
	for _, t := range dedupeTuples(initial) {
		c.add(t)
	}
	return c
}

// add registers a tuple known to have a fresh value key.
func (c *closer) add(t Tuple) int {
	idx := len(c.tuples)
	c.tuples = append(c.tuples, t)
	c.keys[t.Key()] = true
	for pos, v := range t.Values {
		if v.IsNull() {
			continue
		}
		bk := bucketKey(pos, v)
		c.buckets[bk] = append(c.buckets[bk], idx)
	}
	return idx
}

// candidates returns the indices of tuples sharing at least one non-null
// value with tuple idx, excluding idx itself, deduplicated.
func (c *closer) candidates(idx int) []int {
	seen := map[int]bool{idx: true}
	var out []int
	for pos, v := range c.tuples[idx].Values {
		if v.IsNull() {
			continue
		}
		for _, j := range c.buckets[bucketKey(pos, v)] {
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	return out
}

// tryMerge merges tuples i and j if complementable and the merge carries
// new values; it returns the new tuple index or -1.
func (c *closer) tryMerge(i, j int) int {
	a, b := c.tuples[i], c.tuples[j]
	if !Complementable(a.Values, b.Values) {
		return -1
	}
	m := Merge(a, b)
	k := m.Key()
	// A merge whose values already exist (including one of its own sides,
	// which happens exactly when one side subsumes the other) adds nothing;
	// the existing tuple keeps its (minimal) provenance.
	if c.keys[k] {
		return -1
	}
	return c.add(m)
}

// run drives the sequential closure to fixpoint with a worklist.
func (c *closer) run() {
	work := make([]int, len(c.tuples))
	for i := range work {
		work[i] = i
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		for _, j := range c.candidates(i) {
			if ni := c.tryMerge(i, j); ni >= 0 {
				work = append(work, ni)
			}
		}
	}
}

// RemoveSubsumed drops every tuple strictly subsumed by another (its
// non-null values all appear in a tuple with strictly more information).
// Value-duplicates are removed first; an all-null tuple is dropped whenever
// any other tuple exists. The survivors are exactly the maximal tuples.
func RemoveSubsumed(tuples []Tuple) []Tuple {
	ts := dedupeTuples(tuples)
	// Bucket index for candidate subsumers: a subsumer must share every
	// non-null value of the subsumed tuple, in particular its first one.
	buckets := make(map[string][]int)
	for i, t := range ts {
		for pos, v := range t.Values {
			if v.IsNull() {
				continue
			}
			bk := bucketKey(pos, v)
			buckets[bk] = append(buckets[bk], i)
		}
	}
	removed := make([]bool, len(ts))
	for i, t := range ts {
		firstNonNull := -1
		for pos, v := range t.Values {
			if !v.IsNull() {
				firstNonNull = pos
				break
			}
		}
		if firstNonNull < 0 {
			// All-null tuple: carries no information; keep only when it is
			// the entire result.
			if len(ts) > 1 {
				removed[i] = true
			}
			continue
		}
		bk := bucketKey(firstNonNull, t.Values[firstNonNull])
		for _, j := range buckets[bk] {
			if j == i || removed[j] {
				continue
			}
			if Subsumes(ts[j].Values, t.Values) {
				removed[i] = true
				break
			}
		}
	}
	out := make([]Tuple, 0, len(ts))
	for i, t := range ts {
		if !removed[i] {
			out = append(out, t)
		}
	}
	return out
}
