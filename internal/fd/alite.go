package fd

import (
	"context"
	"sort"

	"repro/internal/table"
)

// ALITE computes the Full Disjunction of the input by complementation
// closure, the algorithm of the ALITE paper:
//
//  1. Deduplicate the outer-union tuples (set semantics).
//  2. Repeatedly merge complementable tuple pairs — candidate pairs are
//     generated from a (position, value) inverted index, so only tuples
//     that actually share a joinable value are ever compared — until no
//     merge produces a tuple with new values.
//  3. Remove subsumed tuples, leaving the maximal ones.
//
// The result is sorted canonically and is deterministic.
//
// Internally the closure runs on interned value IDs (table.Dict): bucket
// keys are pos<<32|id integers, tuple dedup hashes ID slices, and value
// comparisons are integer equality. in.Dict supplies a shared (lake-wide)
// dictionary; nil interns privately.
func ALITE(in Input) []Tuple {
	out, _ := ALITECtx(context.Background(), in)
	return out
}

// ALITECtx is ALITE with cooperative cancellation: the closure checks ctx
// between candidate-generation rounds (and, amortized, inside long candidate
// scans), returning (nil, ctx.Err()) once the context is cancelled instead of
// running the closure to fixpoint. An uncancelled call is byte-identical to
// ALITE — the checkpoints only observe the context, never the closure state.
func ALITECtx(ctx context.Context, in Input) ([]Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := newCloser(in.Dict)
	if err := c.run(ctx, c.seed(in.Tuples)); err != nil {
		return nil, err
	}
	return c.finalize(), nil
}

// finalize applies subsumption removal and canonical ordering.
func finalize(tuples []Tuple) []Tuple {
	out := RemoveSubsumed(tuples)
	sortTuples(out)
	return out
}

// ctuple is a closure-internal tuple: the aligned values, their interned
// IDs (NullID for nulls of either kind), and provenance as sorted interned
// IDs into closer.provs.
type ctuple struct {
	vals []table.Value
	ids  []uint32
	prov []int32
}

// closer holds the shared closure state used by ALITE, Parallel and
// Incremental. All hot-path identity work happens on integers: values are
// interned once per tuple on entry, and every subsequent lookup, merge and
// dedup runs on IDs.
type closer struct {
	dict *table.Dict

	// Provenance interning: prov strings are interned to dense int32 IDs so
	// provenance sets merge as linear sorted-int merges. IDs are assigned in
	// first-seen order (sequential), so sorted-by-ID is a deterministic but
	// non-lexicographic order; conversion back to strings re-sorts.
	provIDs map[string]int32
	provs   []string

	tuples []ctuple
	// byHash indexes tuples by an FNV-1a hash of their ID slice; collisions
	// are resolved by comparing ID slices, so dedup is exact.
	byHash map[uint64][]int32
	// buckets is the (position, value) inverted index: pos<<32|id -> tuple
	// indices, in insertion order.
	buckets map[uint64][]int32

	// vs is the sequential paths' candidate scratch; parallel workers carry
	// their own.
	vs visitScratch
}

func newCloser(dict *table.Dict) *closer {
	if dict == nil {
		dict = table.NewDict()
	}
	return &closer{
		dict:    dict,
		provIDs: make(map[string]int32),
		byHash:  make(map[uint64][]int32),
		buckets: make(map[uint64][]int32),
	}
}

// provID interns a provenance string.
func (c *closer) provID(s string) int32 {
	if id, ok := c.provIDs[s]; ok {
		return id
	}
	id := int32(len(c.provs))
	c.provs = append(c.provs, s)
	c.provIDs[s] = id
	return id
}

// intern converts a public tuple into closure form. Values are shared, not
// copied.
func (c *closer) intern(t Tuple) ctuple {
	ids := make([]uint32, len(t.Values))
	for i, v := range t.Values {
		ids[i] = c.dict.Intern(v)
	}
	prov := make([]int32, len(t.Prov))
	for i, p := range t.Prov {
		prov[i] = c.provID(p)
	}
	sort.Slice(prov, func(i, j int) bool { return prov[i] < prov[j] })
	return ctuple{vals: t.Values, ids: ids, prov: prov}
}

// hashIDs is FNV-1a over the words of an ID slice.
func hashIDs(ids []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= prime64
	}
	return h
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns the index of the tuple with exactly these value IDs, or -1.
func (c *closer) lookup(ids []uint32) int {
	for _, idx := range c.byHash[hashIDs(ids)] {
		if equalIDs(c.tuples[idx].ids, ids) {
			return int(idx)
		}
	}
	return -1
}

// add registers a tuple known to carry fresh value IDs.
func (c *closer) add(ct ctuple) int {
	idx := len(c.tuples)
	c.tuples = append(c.tuples, ct)
	h := hashIDs(ct.ids)
	c.byHash[h] = append(c.byHash[h], int32(idx))
	for pos, id := range ct.ids {
		if id == table.NullID {
			continue
		}
		bk := uint64(pos)<<32 | uint64(id)
		c.buckets[bk] = append(c.buckets[bk], int32(idx))
	}
	return idx
}

// seed interns and adds tuples, deduplicating by value (first occurrence —
// and its provenance — wins). It returns the indices added, the initial
// worklist.
func (c *closer) seed(tuples []Tuple) []int {
	work := make([]int, 0, len(tuples))
	for _, t := range tuples {
		ct := c.intern(t)
		if c.lookup(ct.ids) >= 0 {
			continue
		}
		work = append(work, c.add(ct))
	}
	return work
}

// visitScratch is an epoch-stamped visited set reused across candidates
// calls, replacing a per-call map allocation. Each caller owns one; the
// returned slice is valid until the next call on the same scratch.
type visitScratch struct {
	stamp []uint32
	epoch uint32
	out   []int
}

// candidates returns the indices of tuples sharing at least one non-null
// value ID with tuple idx, excluding idx itself, deduplicated, in inverted-
// index order.
func (c *closer) candidates(idx int, vs *visitScratch) []int {
	if n := len(c.tuples); len(vs.stamp) < n {
		vs.stamp = append(vs.stamp, make([]uint32, n-len(vs.stamp))...)
	}
	vs.epoch++
	if vs.epoch == 0 { // wrapped: clear stale stamps once
		for i := range vs.stamp {
			vs.stamp[i] = 0
		}
		vs.epoch = 1
	}
	vs.stamp[idx] = vs.epoch
	vs.out = vs.out[:0]
	for pos, id := range c.tuples[idx].ids {
		if id == table.NullID {
			continue
		}
		for _, j := range c.buckets[uint64(pos)<<32|uint64(id)] {
			if vs.stamp[j] != vs.epoch {
				vs.stamp[j] = vs.epoch
				vs.out = append(vs.out, int(j))
			}
		}
	}
	return vs.out
}

// complementableIDs is Complementable on interned IDs: at least one shared
// non-null ID, no position where both are non-null and different.
func complementableIDs(a, b []uint32) bool {
	shares := false
	for i := range a {
		ai, bi := a[i], b[i]
		if ai == table.NullID || bi == table.NullID {
			continue
		}
		if ai != bi {
			return false
		}
		shares = true
	}
	return shares
}

// mergeIDs writes the merged ID vector of a and b into dst (the non-null
// side wins; both-null stays NullID).
func mergeIDs(a, b []uint32, dst []uint32) []uint32 {
	if cap(dst) < len(a) {
		dst = make([]uint32, len(a))
	}
	dst = dst[:len(a)]
	for i := range a {
		if a[i] != table.NullID {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
	return dst
}

// mergeProv is the linear sorted-merge of two provenance ID sets.
func mergeProv(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// materialize builds the merged ctuple for tuples i and j given their
// merged ID vector. Value semantics match Merge: the non-null side wins;
// when both sides are null, a missing null (±) survives over a produced
// null (⊥).
func (c *closer) materialize(i, j int, ids []uint32) ctuple {
	a, b := &c.tuples[i], &c.tuples[j]
	vals := make([]table.Value, len(ids))
	for p := range ids {
		switch {
		case a.ids[p] != table.NullID:
			vals[p] = a.vals[p]
		case b.ids[p] != table.NullID:
			vals[p] = b.vals[p]
		case a.vals[p].Kind() == table.Null || b.vals[p].Kind() == table.Null:
			vals[p] = table.NullValue()
		default:
			vals[p] = table.ProducedNull()
		}
	}
	return ctuple{vals: vals, ids: append([]uint32(nil), ids...), prov: mergeProv(a.prov, b.prov)}
}

// tryMerge merges tuples i and j if complementable and the merge carries
// new values; it returns the new tuple index or -1. The merged ID vector is
// computed into a scratch buffer first, so rejected merges (the common case
// in dense closures) allocate nothing.
func (c *closer) tryMerge(i, j int, idbuf *[]uint32) int {
	a, b := &c.tuples[i], &c.tuples[j]
	if !complementableIDs(a.ids, b.ids) {
		return -1
	}
	*idbuf = mergeIDs(a.ids, b.ids, *idbuf)
	// A merge whose values already exist (including one of its own sides,
	// which happens exactly when one side subsumes the other) adds nothing;
	// the existing tuple keeps its (minimal) provenance.
	if c.lookup(*idbuf) >= 0 {
		return -1
	}
	return c.add(c.materialize(i, j, *idbuf))
}

// cancelStride bounds how many candidate merges may run between two context
// checks inside one closure round, so cancellation latency stays bounded
// even when a single worklist item generates a huge candidate set.
const cancelStride = 2048

// checkCancel polls a context's done channel without blocking. A nil done
// channel (context.Background and friends) short-circuits, so uncancellable
// closures pay one predictable-branch comparison per checkpoint.
func checkCancel(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return ctx.Err()
	default:
		return nil
	}
}

// run drives the sequential closure to fixpoint with a worklist. ctx is
// checked once per worklist item (one candidate-generation round) and every
// cancelStride merge attempts within a round; on cancellation the closure
// stops where it is and ctx.Err() is returned.
func (c *closer) run(ctx context.Context, work []int) error {
	done := ctx.Done()
	var idbuf []uint32
	stride := 0
	for len(work) > 0 {
		if err := checkCancel(ctx, done); err != nil {
			return err
		}
		i := work[0]
		work = work[1:]
		for _, j := range c.candidates(i, &c.vs) {
			if stride++; stride >= cancelStride {
				stride = 0
				if err := checkCancel(ctx, done); err != nil {
					return err
				}
			}
			if ni := c.tryMerge(i, j, &idbuf); ni >= 0 {
				work = append(work, ni)
			}
		}
	}
	return nil
}

// tuple converts closure tuple idx back to public form; provenance strings
// are rendered and sorted lexicographically, as the paper's figures are.
func (c *closer) tuple(idx int) Tuple {
	ct := &c.tuples[idx]
	prov := make([]string, len(ct.prov))
	for i, p := range ct.prov {
		prov[i] = c.provs[p]
	}
	sort.Strings(prov)
	return Tuple{Values: ct.vals, Prov: prov}
}

// finalize removes subsumed closure tuples and returns the survivors in
// canonical order.
func (c *closer) finalize() []Tuple {
	keep := removeSubsumedIDs(c.tuples, c.buckets)
	out := make([]Tuple, 0, len(keep))
	for _, idx := range keep {
		out = append(out, c.tuple(idx))
	}
	sortTuples(out)
	return out
}

// removeSubsumedIDs returns the indices of subsumption-maximal tuples, in
// input order. tuples must be value-deduplicated; buckets is their
// (position, value-ID) inverted index. An all-null tuple is dropped
// whenever any other tuple exists.
func removeSubsumedIDs(tuples []ctuple, buckets map[uint64][]int32) []int {
	removed := make([]bool, len(tuples))
	for i := range tuples {
		t := &tuples[i]
		firstNonNull := -1
		for pos, id := range t.ids {
			if id != table.NullID {
				firstNonNull = pos
				break
			}
		}
		if firstNonNull < 0 {
			// All-null tuple: carries no information; keep only when it is
			// the entire result.
			if len(tuples) > 1 {
				removed[i] = true
			}
			continue
		}
		// A subsumer must share every non-null value of t, in particular
		// its first one.
		bk := uint64(firstNonNull)<<32 | uint64(t.ids[firstNonNull])
		for _, j := range buckets[bk] {
			if int(j) == i || removed[j] {
				continue
			}
			if subsumesIDs(tuples[j].ids, t.ids) {
				removed[i] = true
				break
			}
		}
	}
	keep := make([]int, 0, len(tuples))
	for i := range tuples {
		if !removed[i] {
			keep = append(keep, i)
		}
	}
	return keep
}

// subsumesIDs is Subsumes on interned IDs: everywhere sub is non-null, sup
// holds the same ID.
func subsumesIDs(sup, sub []uint32) bool {
	for i, s := range sub {
		if s == table.NullID {
			continue
		}
		if sup[i] != s {
			return false
		}
	}
	return true
}

// RemoveSubsumed drops every tuple strictly subsumed by another (its
// non-null values all appear in a tuple with strictly more information).
// Value-duplicates are removed first; an all-null tuple is dropped whenever
// any other tuple exists. The survivors are exactly the maximal tuples,
// with their original Tuple structs preserved in input order.
func RemoveSubsumed(tuples []Tuple) []Tuple {
	dict := table.NewDict()
	cts := make([]ctuple, 0, len(tuples))
	orig := make([]Tuple, 0, len(tuples))
	byHash := make(map[uint64][]int32, len(tuples))
	buckets := make(map[uint64][]int32)
	var idbuf []uint32
	for _, t := range tuples {
		idbuf = dict.InternRow(t.Values, idbuf)
		h := hashIDs(idbuf)
		dup := false
		for _, idx := range byHash[h] {
			if equalIDs(cts[idx].ids, idbuf) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		idx := int32(len(cts))
		ids := append([]uint32(nil), idbuf...)
		cts = append(cts, ctuple{vals: t.Values, ids: ids})
		orig = append(orig, t)
		byHash[h] = append(byHash[h], idx)
		for pos, id := range ids {
			if id == table.NullID {
				continue
			}
			bk := uint64(pos)<<32 | uint64(id)
			buckets[bk] = append(buckets[bk], idx)
		}
	}
	keep := removeSubsumedIDs(cts, buckets)
	out := make([]Tuple, 0, len(keep))
	for _, idx := range keep {
		out = append(out, orig[idx])
	}
	return out
}
