package fd

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/table"
	"repro/internal/testutil"
)

// denseInput builds a closure-heavy input: tuples share values across
// positions, so the complementation closure performs many rounds before
// fixpoint — enough work for a cancellation to land mid-closure.
func denseInput(tuples, cols int, seed int64) Input {
	rng := rand.New(rand.NewSource(seed))
	schema := make([]string, cols)
	for i := range schema {
		schema[i] = string(rune('a' + i))
	}
	in := Input{Schema: schema}
	for i := 0; i < tuples; i++ {
		vals := make([]table.Value, cols)
		for c := range vals {
			if rng.Intn(3) == 0 {
				vals[c] = table.ProducedNull()
			} else {
				vals[c] = table.IntValue(int64(rng.Intn(8)))
			}
		}
		in.Tuples = append(in.Tuples, Tuple{Values: vals, Prov: []string{"t" + string(rune('0'+i%10))}})
	}
	return in
}

func TestALITECtxUncancelledIdentical(t *testing.T) {
	in := denseInput(120, 5, 1)
	want := ALITE(in)
	got, err := ALITECtx(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ALITECtx diverges: %d vs %d tuples", len(got), len(want))
	}
	for i := range got {
		if table.CompareRows(got[i].Values, want[i].Values) != 0 {
			t.Fatalf("tuple %d differs", i)
		}
	}
	gp, err := ParallelCtx(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gp) != len(want) {
		t.Fatalf("ParallelCtx diverges: %d vs %d tuples", len(gp), len(want))
	}
}

func TestALITECtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := ALITECtx(ctx, denseInput(50, 4, 2)); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled ALITECtx = (%v, %v), want (nil, Canceled)", out, err)
	}
	if out, err := ParallelCtx(ctx, denseInput(50, 4, 2), 4); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled ParallelCtx = (%v, %v), want (nil, Canceled)", out, err)
	}
}

func TestParallelCtxCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i%3) * 200 * time.Microsecond)
			cancel()
		}()
		_, err := ParallelCtx(ctx, denseInput(200, 6, int64(i)), 4)
		// Depending on timing the closure may finish before the cancel bites;
		// both outcomes are legal, a third is not.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	testutil.WaitGoroutinesSettle(t, before)
}
