// Package fd implements Full Disjunction (FD), the integration operator at
// the heart of ALITE and therefore of DIALITE. FD assembles partial facts
// from many tables into maximally-connected integrated tuples
// (Galindo-Legaria 1994; Rajaraman & Ullman 1996): over tables aligned to a
// single integration schema, the FD is the set of subsumption-maximal
// tuples obtainable by merging join-consistent, connected sets of source
// tuples, where nulls never join and never conflict.
//
// Three algorithms are provided:
//
//   - ALITE: the complementation-closure algorithm of the ALITE paper
//     (Khatiwada et al., VLDB 2022) over the outer union of the inputs,
//     with a (position,value) inverted index generating candidate pairs.
//   - Parallel: a round-synchronous parallel variant of the same closure
//     (the ParaFD comparison point of the ALITE paper).
//   - Naive: exact enumeration of connected, consistent tuple subsets —
//     exponential, used as the ground truth in tests and as the baseline
//     in the X2 scaling experiment.
//
// All three agree on output values; tests assert it, including by property
// testing. Provenance follows the paper's figures: every output tuple
// carries the set of source-tuple IDs it was assembled from, and a tuple
// whose values coincide with a plain source tuple keeps that tuple's
// minimal provenance (Fig. 8(b)'s f12 is {t16}, not {t12,t16}).
package fd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Tuple is one integrated tuple: values over the integration schema plus
// the sorted set of source tuple IDs that produced it.
type Tuple struct {
	Values []table.Value
	Prov   []string
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{
		Values: append([]table.Value(nil), t.Values...),
		Prov:   append([]string(nil), t.Prov...),
	}
}

// Key returns the canonical value key of the tuple (provenance excluded;
// both null kinds collide, matching subsumption semantics).
func (t Tuple) Key() string { return table.RowKey(t.Values) }

// Input is a set of tuples aligned to one integration schema, typically
// produced by OuterUnion.
type Input struct {
	Schema []string
	Tuples []Tuple
	// Dict optionally supplies a shared value dictionary (usually the
	// lake's), so cell interning is reused across integrations. Nil means
	// each FD computation interns into a private dictionary. The FD output
	// is identical either way.
	Dict *table.Dict
}

// Relation maps one source table onto the integration schema.
type Relation struct {
	// Table is the source table.
	Table *table.Table
	// ColPos maps each source column index to its position in the
	// integration schema. len(ColPos) == Table.NumCols(). Two source
	// columns of one table must not map to the same position.
	ColPos []int
	// RowIDs optionally names each row for provenance (the paper's
	// t1..t16). When nil, IDs default to "<table>:<row>".
	RowIDs []string
}

// OuterUnion pads every source row onto the integration schema: positions
// not covered by the source table become produced nulls (⊥), and source
// cells (including missing nulls ±) are copied through. This is the outer
// union the ALITE algorithm closes over.
func OuterUnion(schema []string, rels []Relation) (Input, error) {
	in := Input{Schema: append([]string(nil), schema...)}
	for ri, rel := range rels {
		t := rel.Table
		if t == nil {
			return Input{}, fmt.Errorf("fd: relation %d has nil table", ri)
		}
		if len(rel.ColPos) != t.NumCols() {
			return Input{}, fmt.Errorf("fd: relation %q: ColPos has %d entries for %d columns", t.Name, len(rel.ColPos), t.NumCols())
		}
		seen := make(map[int]bool)
		for c, p := range rel.ColPos {
			if p < 0 || p >= len(schema) {
				return Input{}, fmt.Errorf("fd: relation %q: column %d maps to position %d outside schema of size %d", t.Name, c, p, len(schema))
			}
			if seen[p] {
				return Input{}, fmt.Errorf("fd: relation %q: two columns map to schema position %d", t.Name, p)
			}
			seen[p] = true
		}
		if rel.RowIDs != nil && len(rel.RowIDs) != t.NumRows() {
			return Input{}, fmt.Errorf("fd: relation %q: %d row IDs for %d rows", t.Name, len(rel.RowIDs), t.NumRows())
		}
		for r, row := range t.Rows {
			vals := make([]table.Value, len(schema))
			for i := range vals {
				vals[i] = table.ProducedNull()
			}
			for c, p := range rel.ColPos {
				vals[p] = row[c]
			}
			id := t.Name + ":" + strconv.Itoa(r)
			if rel.RowIDs != nil {
				id = rel.RowIDs[r]
			}
			in.Tuples = append(in.Tuples, Tuple{Values: vals, Prov: []string{id}})
		}
	}
	return in, nil
}

// Complementable reports whether two aligned tuples can merge: they share
// at least one position where both are non-null and equal, and no position
// where both are non-null and unequal. Nulls (either kind) neither join nor
// conflict.
func Complementable(a, b []table.Value) bool {
	shares := false
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			continue
		}
		if a[i].Equal(b[i]) {
			shares = true
		} else {
			return false
		}
	}
	return shares
}

// Merge combines two complementable tuples position-wise: the non-null
// side wins; when both sides are null, a missing null (±) survives over a
// produced null (⊥), since it reflects source data rather than padding.
func Merge(a, b Tuple) Tuple {
	vals := make([]table.Value, len(a.Values))
	for i := range vals {
		av, bv := a.Values[i], b.Values[i]
		switch {
		case !av.IsNull():
			vals[i] = av
		case !bv.IsNull():
			vals[i] = bv
		case av.Kind() == table.Null || bv.Kind() == table.Null:
			vals[i] = table.NullValue()
		default:
			vals[i] = table.ProducedNull()
		}
	}
	return Tuple{Values: vals, Prov: unionProv(a.Prov, b.Prov)}
}

// Subsumes reports whether sup subsumes sub: everywhere sub is non-null,
// sup holds an equal value. Value-identical tuples subsume each other;
// callers needing strictness compare keys.
func Subsumes(sup, sub []table.Value) bool {
	for i := range sub {
		if sub[i].IsNull() {
			continue
		}
		if sup[i].IsNull() || !sup[i].Equal(sub[i]) {
			return false
		}
	}
	return true
}

// unionProv merges two sorted provenance sets with a linear sorted-merge.
func unionProv(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// dedupeTuples removes value-duplicate tuples, keeping the first occurrence
// (and its provenance). Inputs are processed in order, so source tuples
// added before merged tuples always win, matching the paper's provenance.
func dedupeTuples(tuples []Tuple) []Tuple {
	seen := make(map[string]bool, len(tuples))
	out := make([]Tuple, 0, len(tuples))
	for _, t := range tuples {
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}

// sortTuples orders tuples canonically by values, then provenance.
func sortTuples(tuples []Tuple) {
	sort.SliceStable(tuples, func(i, j int) bool {
		if c := table.CompareRows(tuples[i].Values, tuples[j].Values); c != 0 {
			return c < 0
		}
		return strings.Join(tuples[i].Prov, ",") < strings.Join(tuples[j].Prov, ",")
	})
}

// ToTable renders tuples as a table over the integration schema. When
// withProvenance is true, a leading "TIDs" column carries each tuple's
// provenance set rendered as {id1, id2, ...}, like the figures in the
// paper.
func ToTable(name string, schema []string, tuples []Tuple, withProvenance bool) *table.Table {
	cols := schema
	if withProvenance {
		cols = append([]string{"TIDs"}, schema...)
	}
	out := table.New(name, cols...)
	for _, t := range tuples {
		row := make([]table.Value, 0, len(cols))
		if withProvenance {
			row = append(row, table.StringValue("{"+strings.Join(t.Prov, ", ")+"}"))
		}
		row = append(row, t.Values...)
		out.Rows = append(out.Rows, row)
	}
	return out
}
