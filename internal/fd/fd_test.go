package fd

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/table"
)

// fig3Input aligns the paper's T1,T2,T3 onto the Fig. 3 integration schema.
func fig3Input(t *testing.T) Input {
	t.Helper()
	schema := []string{paperdata.ColCountry, paperdata.ColCity, paperdata.ColVaccRate, paperdata.ColCases, paperdata.ColDeathRate}
	in, err := OuterUnion(schema, []Relation{
		{Table: paperdata.T1(), ColPos: []int{0, 1, 2}, RowIDs: []string{"t1", "t2", "t3"}},
		{Table: paperdata.T2(), ColPos: []int{0, 1, 2}, RowIDs: []string{"t4", "t5", "t6"}},
		{Table: paperdata.T3(), ColPos: []int{1, 3, 4}, RowIDs: []string{"t7", "t8", "t9", "t10"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// fig8Input aligns the paper's T4,T5,T6 onto the Fig. 8 integration schema.
func fig8Input(t *testing.T) Input {
	t.Helper()
	schema := []string{paperdata.ColVaccine, paperdata.ColApprover, paperdata.ColCountry}
	in, err := OuterUnion(schema, []Relation{
		{Table: paperdata.T4(), ColPos: []int{0, 1}, RowIDs: []string{"t11", "t12"}},
		{Table: paperdata.T5(), ColPos: []int{2, 1}, RowIDs: []string{"t13", "t14"}},
		{Table: paperdata.T6(), ColPos: []int{0, 2}, RowIDs: []string{"t15", "t16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func valuesTable(name string, schema []string, tuples []Tuple) *table.Table {
	return ToTable(name, schema, tuples, false)
}

func TestALITEReproducesFig3(t *testing.T) {
	in := fig3Input(t)
	got := ALITE(in)
	gotTable := valuesTable("got", in.Schema, got)
	want := paperdata.Fig3Expected()
	want.Columns = in.Schema // same headers by construction
	if !gotTable.EqualUnordered(want) {
		t.Fatalf("ALITE != Fig.3:\ngot:\n%s\nwant:\n%s", gotTable, want)
	}
	// Provenance per city matches the figure's TIDs column.
	cityPos := 1
	wantProv := paperdata.Fig3Provenance()
	for _, tu := range got {
		city := tu.Values[cityPos].String()
		if !reflect.DeepEqual(tu.Prov, wantProv[city]) {
			t.Errorf("city %s provenance = %v, want %v", city, tu.Prov, wantProv[city])
		}
	}
	// Null kinds: f5 keeps the source's missing null; f2's padding is ⊥.
	for _, tu := range got {
		switch tu.Values[cityPos].String() {
		case "Mexico City":
			if tu.Values[2].Kind() != table.Null {
				t.Error("f5 vaccination rate must stay a missing null (±)")
			}
		case "Manchester":
			if tu.Values[3].Kind() != table.PNull || tu.Values[4].Kind() != table.PNull {
				t.Error("f2 padding must be produced nulls (⊥)")
			}
		}
	}
}

func TestALITEReproducesFig8b(t *testing.T) {
	in := fig8Input(t)
	got := ALITE(in)
	gotTable := valuesTable("got", in.Schema, got)
	want := paperdata.Fig8bExpected()
	want.Columns = in.Schema
	if !gotTable.EqualUnordered(want) {
		t.Fatalf("ALITE != Fig.8(b):\ngot:\n%s\nwant:\n%s", gotTable, want)
	}
	wantProv := paperdata.Fig8bProvenance()
	for _, tu := range got {
		vac := tu.Values[0].String()
		if !reflect.DeepEqual(tu.Prov, wantProv[vac]) {
			t.Errorf("vaccine %s provenance = %v, want %v", vac, tu.Prov, wantProv[vac])
		}
	}
	// The recovered fact of Example 5: J&J's approver is FDA.
	found := false
	for _, tu := range got {
		if tu.Values[0].String() == "J&J" && tu.Values[1].String() == "FDA" {
			found = true
		}
	}
	if !found {
		t.Error("FD must recover (J&J, FDA, United States) — the paper's f13")
	}
}

func TestNaiveMatchesALITEOnFixtures(t *testing.T) {
	for _, mk := range []func(*testing.T) Input{fig3Input, fig8Input} {
		in := mk(t)
		a := ALITE(in)
		n, err := Naive(in)
		if err != nil {
			t.Fatal(err)
		}
		if !sameValues(a, n) {
			t.Errorf("Naive and ALITE disagree:\nALITE:\n%s\nNaive:\n%s",
				valuesTable("a", in.Schema, a), valuesTable("n", in.Schema, n))
		}
	}
}

func TestParallelMatchesALITEOnFixtures(t *testing.T) {
	for _, mk := range []func(*testing.T) Input{fig3Input, fig8Input} {
		in := mk(t)
		a := ALITE(in)
		for _, workers := range []int{1, 2, 8} {
			p := Parallel(in, workers)
			if !sameValues(a, p) {
				t.Errorf("Parallel(%d) disagrees with ALITE", workers)
			}
		}
	}
}

func sameValues(a, b []Tuple) bool {
	ka := make([]string, len(a))
	for i, t := range a {
		ka[i] = t.Key()
	}
	kb := make([]string, len(b))
	for i, t := range b {
		kb[i] = t.Key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func TestComplementable(t *testing.T) {
	s := table.StringValue
	n := table.NullValue()
	p := table.ProducedNull()
	cases := []struct {
		a, b []table.Value
		want bool
	}{
		{[]table.Value{s("a"), n}, []table.Value{s("a"), s("b")}, true},
		{[]table.Value{s("a"), s("x")}, []table.Value{s("a"), s("y")}, false}, // conflict
		{[]table.Value{s("a"), p}, []table.Value{p, s("b")}, false},           // no shared non-null
		{[]table.Value{n, n}, []table.Value{s("a"), s("b")}, false},           // all null side
		{[]table.Value{s("a"), s("b")}, []table.Value{s("a"), s("b")}, true},  // identical
	}
	for i, c := range cases {
		if got := Complementable(c.a, c.b); got != c.want {
			t.Errorf("case %d: Complementable = %v, want %v", i, got, c.want)
		}
	}
}

func TestMergeNullKinds(t *testing.T) {
	a := Tuple{Values: []table.Value{table.StringValue("x"), table.NullValue(), table.ProducedNull()}, Prov: []string{"a"}}
	b := Tuple{Values: []table.Value{table.StringValue("x"), table.ProducedNull(), table.ProducedNull()}, Prov: []string{"b"}}
	m := Merge(a, b)
	if m.Values[1].Kind() != table.Null {
		t.Error("missing null must survive over produced null in a merge")
	}
	if m.Values[2].Kind() != table.PNull {
		t.Error("two produced nulls merge to a produced null")
	}
	if !reflect.DeepEqual(m.Prov, []string{"a", "b"}) {
		t.Errorf("merged provenance = %v", m.Prov)
	}
}

func TestSubsumes(t *testing.T) {
	s := table.StringValue
	n := table.NullValue()
	if !Subsumes([]table.Value{s("a"), s("b")}, []table.Value{s("a"), n}) {
		t.Error("(a,b) must subsume (a,±)")
	}
	if Subsumes([]table.Value{s("a"), n}, []table.Value{s("a"), s("b")}) {
		t.Error("(a,±) must not subsume (a,b)")
	}
	if !Subsumes([]table.Value{s("a")}, []table.Value{n}) {
		t.Error("anything subsumes the all-null tuple")
	}
}

func TestRemoveSubsumed(t *testing.T) {
	s := table.StringValue
	n := table.NullValue()
	tuples := []Tuple{
		{Values: []table.Value{s("a"), n}, Prov: []string{"1"}},
		{Values: []table.Value{s("a"), s("b")}, Prov: []string{"2"}},
		{Values: []table.Value{n, n}, Prov: []string{"3"}},
		{Values: []table.Value{s("a"), s("b")}, Prov: []string{"4"}}, // dup
	}
	out := RemoveSubsumed(tuples)
	if len(out) != 1 || out[0].Values[1].Str() != "b" {
		t.Errorf("RemoveSubsumed = %v", out)
	}
	// The all-null tuple survives only alone.
	solo := RemoveSubsumed([]Tuple{{Values: []table.Value{n, n}, Prov: []string{"x"}}})
	if len(solo) != 1 {
		t.Error("lone all-null tuple must survive")
	}
}

func TestOuterUnionValidation(t *testing.T) {
	tb := table.New("t", "a", "b")
	tb.MustAddRow(table.IntValue(1), table.IntValue(2))
	if _, err := OuterUnion([]string{"x"}, []Relation{{Table: nil}}); err == nil {
		t.Error("nil table must error")
	}
	if _, err := OuterUnion([]string{"x"}, []Relation{{Table: tb, ColPos: []int{0}}}); err == nil {
		t.Error("short ColPos must error")
	}
	if _, err := OuterUnion([]string{"x"}, []Relation{{Table: tb, ColPos: []int{0, 5}}}); err == nil {
		t.Error("out-of-range position must error")
	}
	if _, err := OuterUnion([]string{"x", "y"}, []Relation{{Table: tb, ColPos: []int{0, 0}}}); err == nil {
		t.Error("duplicate positions must error")
	}
	if _, err := OuterUnion([]string{"x", "y"}, []Relation{{Table: tb, ColPos: []int{0, 1}, RowIDs: []string{"only-one-id-for-one-row-but-table-has-one-row"}}}); err != nil {
		t.Errorf("valid row IDs rejected: %v", err)
	}
	if _, err := OuterUnion([]string{"x", "y"}, []Relation{{Table: tb, ColPos: []int{0, 1}, RowIDs: []string{"a", "b"}}}); err == nil {
		t.Error("row ID count mismatch must error")
	}
}

func TestOuterUnionPadding(t *testing.T) {
	tb := table.New("t", "a")
	tb.MustAddRow(table.NullValue())
	in, err := OuterUnion([]string{"x", "y"}, []Relation{{Table: tb, ColPos: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Tuples[0].Values[0].Kind() != table.Null {
		t.Error("source missing null must be copied as missing")
	}
	if in.Tuples[0].Values[1].Kind() != table.PNull {
		t.Error("padding must be a produced null")
	}
	if in.Tuples[0].Prov[0] != "t:0" {
		t.Errorf("default provenance = %v", in.Tuples[0].Prov)
	}
}

func TestNaiveLimit(t *testing.T) {
	var tuples []Tuple
	for i := 0; i < NaiveLimit+1; i++ {
		tuples = append(tuples, Tuple{Values: []table.Value{table.IntValue(int64(i))}, Prov: []string{"p"}})
	}
	if _, err := Naive(Input{Schema: []string{"x"}, Tuples: tuples}); err == nil {
		t.Error("Naive must refuse oversized inputs")
	}
	if out, err := Naive(Input{Schema: []string{"x"}}); err != nil || out != nil {
		t.Error("Naive on empty input must be empty")
	}
}

// randomInput generates a small random aligned input exercising nulls,
// shared values and conflicts.
func randomInput(rng *rand.Rand) Input {
	cols := 3 + rng.Intn(2)
	n := 4 + rng.Intn(6)
	alphabet := []string{"a", "b", "c"}
	var tuples []Tuple
	for i := 0; i < n; i++ {
		vals := make([]table.Value, cols)
		for c := range vals {
			switch rng.Intn(4) {
			case 0:
				vals[c] = table.ProducedNull()
			case 1:
				vals[c] = table.NullValue()
			default:
				vals[c] = table.StringValue(alphabet[rng.Intn(len(alphabet))])
			}
		}
		tuples = append(tuples, Tuple{Values: vals, Prov: []string{"s" + string(rune('0'+i))}})
	}
	schema := make([]string, cols)
	for c := range schema {
		schema[c] = "A" + string(rune('0'+c))
	}
	return Input{Schema: schema, Tuples: tuples}
}

func TestALITEMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 120; iter++ {
		in := randomInput(rng)
		a := ALITE(in)
		n, err := Naive(in)
		if err != nil {
			t.Fatal(err)
		}
		if !sameValues(a, n) {
			t.Fatalf("iteration %d: ALITE and Naive disagree on input:\n%s\nALITE:\n%s\nNaive:\n%s",
				iter, valuesTable("in", in.Schema, in.Tuples),
				valuesTable("a", in.Schema, a), valuesTable("n", in.Schema, n))
		}
		p := Parallel(in, 4)
		if !sameValues(a, p) {
			t.Fatalf("iteration %d: Parallel disagrees with ALITE", iter)
		}
	}
}

func TestFDAxiomsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 80; iter++ {
		in := randomInput(rng)
		out := ALITE(in)
		// Antichain: no output tuple subsumed by another.
		for i := range out {
			for j := range out {
				if i != j && Subsumes(out[j].Values, out[i].Values) && out[i].Key() != out[j].Key() {
					t.Fatalf("iteration %d: output is not an antichain", iter)
				}
			}
		}
		// Coverage: every source tuple is subsumed by some output tuple.
		for _, src := range in.Tuples {
			covered := false
			for _, o := range out {
				if Subsumes(o.Values, src.Values) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iteration %d: source tuple %v lost", iter, src.Values)
			}
		}
		// Idempotence: FD of the FD result is itself.
		again := ALITE(Input{Schema: in.Schema, Tuples: out})
		if !sameValues(out, again) {
			t.Fatalf("iteration %d: FD is not idempotent", iter)
		}
		// Order invariance: permuting input tuples changes nothing.
		perm := make([]Tuple, len(in.Tuples))
		for i, p := range rng.Perm(len(in.Tuples)) {
			perm[i] = in.Tuples[p]
		}
		permOut := ALITE(Input{Schema: in.Schema, Tuples: perm})
		if !sameValues(out, permOut) {
			t.Fatalf("iteration %d: FD depends on input order", iter)
		}
	}
}

func TestToTableProvenance(t *testing.T) {
	tuples := []Tuple{{Values: []table.Value{table.StringValue("x")}, Prov: []string{"t1", "t2"}}}
	out := ToTable("o", []string{"A"}, tuples, true)
	if out.Columns[0] != "TIDs" || out.Cell(0, 0).Str() != "{t1, t2}" {
		t.Errorf("ToTable with provenance = %s", out)
	}
	plain := ToTable("o", []string{"A"}, tuples, false)
	if plain.NumCols() != 1 {
		t.Error("ToTable without provenance must not add TIDs")
	}
}
