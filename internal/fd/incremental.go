package fd

// Incremental maintains a Full Disjunction as tuples arrive (for example,
// as the user adds one more discovered table to the integration set). It
// retains the complementation *closure* — not just the maximal result —
// because subsumed tuples still matter: in Fig. 8, t13 = (⊥, FDA, United
// States) is subsumed by f8 once T4 and T5 are integrated, yet it is
// exactly the tuple that later merges with t15 to derive f13. Maintaining
// only the maximal tuples would lose that fact, which is the same
// information loss that makes outer-join chains order-dependent.
//
// Work per Add is proportional to the incoming tuples and the merges they
// trigger; already-processed pairs are never revisited.
type Incremental struct {
	schema []string
	c      *closer
}

// NewIncremental starts an incremental FD over the given integration
// schema, optionally seeded with initial aligned tuples.
func NewIncremental(schema []string, initial []Tuple) *Incremental {
	inc := &Incremental{
		schema: append([]string(nil), schema...),
		c: &closer{
			keys:    make(map[string]bool),
			buckets: make(map[string][]int),
		},
	}
	inc.Add(initial)
	return inc
}

// Add ingests aligned tuples (padded to the schema, e.g. by OuterUnion)
// and extends the closure to its new fixpoint.
func (inc *Incremental) Add(tuples []Tuple) {
	var work []int
	for _, t := range dedupeTuples(tuples) {
		if inc.c.keys[t.Key()] {
			continue
		}
		work = append(work, inc.c.add(t))
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		for _, j := range inc.c.candidates(i) {
			if ni := inc.c.tryMerge(i, j); ni >= 0 {
				work = append(work, ni)
			}
		}
	}
}

// Result returns the current Full Disjunction: the subsumption-maximal
// tuples of the closure, canonically ordered. The closure state is not
// consumed; more tuples can be added afterwards.
func (inc *Incremental) Result() []Tuple {
	snapshot := make([]Tuple, len(inc.c.tuples))
	copy(snapshot, inc.c.tuples)
	return finalize(snapshot)
}

// ClosureSize reports how many distinct tuples (source and merged) the
// closure currently holds — the state an incremental integration pays to
// keep.
func (inc *Incremental) ClosureSize() int { return len(inc.c.tuples) }

// Schema returns the integration schema.
func (inc *Incremental) Schema() []string { return inc.schema }
