package fd

import (
	"context"

	"repro/internal/table"
)

// Incremental maintains a Full Disjunction as tuples arrive (for example,
// as the user adds one more discovered table to the integration set). It
// retains the complementation *closure* — not just the maximal result —
// because subsumed tuples still matter: in Fig. 8, t13 = (⊥, FDA, United
// States) is subsumed by f8 once T4 and T5 are integrated, yet it is
// exactly the tuple that later merges with t15 to derive f13. Maintaining
// only the maximal tuples would lose that fact, which is the same
// information loss that makes outer-join chains order-dependent.
//
// Work per Add is proportional to the incoming tuples and the merges they
// trigger; already-processed pairs are never revisited.
type Incremental struct {
	schema []string
	c      *closer
}

// NewIncremental starts an incremental FD over the given integration
// schema, optionally seeded with initial aligned tuples.
func NewIncremental(schema []string, initial []Tuple) *Incremental {
	return NewIncrementalDict(schema, initial, nil)
}

// NewIncrementalDict is NewIncremental with a shared value dictionary
// (usually the lake's), so cell interning is reused across integrations.
// A nil dict interns privately.
func NewIncrementalDict(schema []string, initial []Tuple, dict *table.Dict) *Incremental {
	inc := &Incremental{
		schema: append([]string(nil), schema...),
		c:      newCloser(dict),
	}
	inc.Add(initial)
	return inc
}

// Add ingests aligned tuples (padded to the schema, e.g. by OuterUnion)
// and extends the closure to its new fixpoint.
func (inc *Incremental) Add(tuples []Tuple) {
	inc.c.run(context.Background(), inc.c.seed(tuples))
}

// Result returns the current Full Disjunction: the subsumption-maximal
// tuples of the closure, canonically ordered. The closure state is not
// consumed; more tuples can be added afterwards.
func (inc *Incremental) Result() []Tuple {
	return inc.c.finalize()
}

// ClosureSize reports how many distinct tuples (source and merged) the
// closure currently holds — the state an incremental integration pays to
// keep.
func (inc *Incremental) ClosureSize() int { return len(inc.c.tuples) }

// Schema returns the integration schema.
func (inc *Incremental) Schema() []string { return inc.schema }
