package fd

import (
	"math/rand"
	"testing"
)

func TestIncrementalMatchesRecomputation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 80; iter++ {
		in := randomInput(rng)
		if len(in.Tuples) < 2 {
			continue
		}
		split := 1 + rng.Intn(len(in.Tuples)-1)
		inc := NewIncremental(in.Schema, in.Tuples[:split])
		inc.Add(in.Tuples[split:])
		full := ALITE(in)
		if !sameValues(inc.Result(), full) {
			t.Fatalf("iteration %d: incremental diverges from recomputation\nincremental:\n%s\nfull:\n%s",
				iter, valuesTable("i", in.Schema, inc.Result()), valuesTable("f", in.Schema, full))
		}
	}
}

func TestIncrementalOneTupleAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		in := randomInput(rng)
		inc := NewIncremental(in.Schema, nil)
		for _, tu := range in.Tuples {
			inc.Add([]Tuple{tu})
		}
		if !sameValues(inc.Result(), ALITE(in)) {
			t.Fatalf("iteration %d: tuple-at-a-time diverges", iter)
		}
	}
}

func TestIncrementalOnFig8(t *testing.T) {
	// Integrate T4 and T5 first, then T6 arrives (a later discovery). The
	// closure must have kept t13 (subsumed by f8) so that f13 can form.
	in := fig8Input(t)
	inc := NewIncremental(in.Schema, in.Tuples[:4]) // t11..t14
	inc.Add(in.Tuples[4:])                          // t15, t16
	got := inc.Result()
	if !sameValues(got, ALITE(in)) {
		t.Fatalf("incremental Fig. 8 result diverges:\n%s", valuesTable("g", in.Schema, got))
	}
	found := false
	for _, tu := range got {
		if tu.Values[0].String() == "J&J" && tu.Values[1].String() == "FDA" {
			found = true
			if len(tu.Prov) != 2 || tu.Prov[0] != "t13" || tu.Prov[1] != "t15" {
				t.Errorf("f13 provenance = %v", tu.Prov)
			}
		}
	}
	if !found {
		t.Error("incremental integration lost f13 — closure state must retain subsumed tuples")
	}
}

func TestIncrementalResultDoesNotConsumeState(t *testing.T) {
	in := fig8Input(t)
	inc := NewIncremental(in.Schema, in.Tuples[:4])
	before := inc.ClosureSize()
	_ = inc.Result()
	if inc.ClosureSize() != before {
		t.Error("Result must not mutate the closure")
	}
	inc.Add(in.Tuples[4:])
	if inc.ClosureSize() <= before {
		t.Error("Add must grow the closure")
	}
	if !sameValues(inc.Result(), ALITE(in)) {
		t.Error("adding after Result must still converge")
	}
}

func TestIncrementalEmptyAndDuplicates(t *testing.T) {
	in := fig8Input(t)
	inc := NewIncremental(in.Schema, in.Tuples)
	base := inc.Result()
	inc.Add(nil)
	inc.Add(in.Tuples) // already covered
	if !sameValues(base, inc.Result()) {
		t.Error("no-op adds changed the result")
	}
	if len(inc.Schema()) != 3 {
		t.Errorf("schema = %v", inc.Schema())
	}
}
