package fd

import (
	"fmt"
	"math/bits"

	"repro/internal/table"
)

// NaiveLimit is the maximum number of (deduplicated) input tuples Naive
// accepts: subset enumeration is Θ(2^n) and exists as a ground truth, not
// a production path.
const NaiveLimit = 22

// Naive computes the Full Disjunction directly from the definition: it
// enumerates every subset of input tuples, keeps those that are
// join-consistent (no two members conflict on a non-null position) and
// connected (the graph with edges between members sharing a non-null equal
// value is connected), merges each surviving subset into one tuple, and
// finally removes subsumed tuples.
//
// When several subsets merge to the same values, the smallest subset (then
// lexicographically-smallest provenance) wins, matching the minimal-witness
// provenance of the paper's figures.
func Naive(in Input) ([]Tuple, error) {
	ts := dedupeTuples(in.Tuples)
	n := len(ts)
	if n > NaiveLimit {
		return nil, fmt.Errorf("fd: naive enumeration over %d tuples exceeds limit %d", n, NaiveLimit)
	}
	if n == 0 {
		return nil, nil
	}
	// Precompute pairwise relations.
	shares := make([][]bool, n)
	conflicts := make([][]bool, n)
	for i := 0; i < n; i++ {
		shares[i] = make([]bool, n)
		conflicts[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, c := pairRelation(ts[i].Values, ts[j].Values)
			shares[i][j], shares[j][i] = s, s
			conflicts[i][j], conflicts[j][i] = c, c
		}
	}
	type witness struct {
		tuple Tuple
		size  int
	}
	best := make(map[string]witness)
	var members []int
	for mask := 1; mask < 1<<n; mask++ {
		members = members[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, i)
			}
		}
		if !consistent(members, conflicts) || !connected(members, shares) {
			continue
		}
		merged := ts[members[0]].Clone()
		for _, m := range members[1:] {
			merged = Merge(merged, ts[m])
		}
		k := merged.Key()
		size := bits.OnesCount(uint(mask))
		if w, ok := best[k]; ok {
			if size > w.size {
				continue
			}
			if size == w.size && !provLess(merged.Prov, w.tuple.Prov) {
				continue
			}
		}
		best[k] = witness{tuple: merged, size: size}
	}
	out := make([]Tuple, 0, len(best))
	for _, w := range best {
		out = append(out, w.tuple)
	}
	return finalize(out), nil
}

// pairRelation reports whether two tuples share a non-null equal value and
// whether they conflict (both non-null, unequal) anywhere.
func pairRelation(a, b []table.Value) (shares, conflicts bool) {
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			continue
		}
		if a[i].Equal(b[i]) {
			shares = true
		} else {
			conflicts = true
		}
	}
	return
}

// consistent reports whether no two members conflict.
func consistent(members []int, conflicts [][]bool) bool {
	for x := 0; x < len(members); x++ {
		for y := x + 1; y < len(members); y++ {
			if conflicts[members[x]][members[y]] {
				return false
			}
		}
	}
	return true
}

// connected reports whether the members form one component in the
// share-graph.
func connected(members []int, shares [][]bool) bool {
	if len(members) <= 1 {
		return true
	}
	visited := map[int]bool{members[0]: true}
	queue := []int{members[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range members {
			if !visited[m] && shares[cur][m] {
				visited[m] = true
				queue = append(queue, m)
			}
		}
	}
	return len(visited) == len(members)
}

// provLess orders provenance sets lexicographically.
func provLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
