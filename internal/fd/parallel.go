package fd

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel computes the Full Disjunction with a round-synchronous parallel
// complementation closure, the comparison point the ALITE paper draws
// against ParaFD (Paganelli et al., 2019). Each round, the current frontier
// of unprocessed tuples is split across workers; every worker proposes
// merges of its frontier tuples against a read-only snapshot of the closure
// state; proposals are then integrated sequentially in a deterministic
// order, forming the next frontier. Output is identical to ALITE.
func Parallel(in Input, workers int) []Tuple {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := newCloser(in.Tuples)
	frontier := make([]int, len(c.tuples))
	for i := range frontier {
		frontier[i] = i
	}
	for len(frontier) > 0 {
		// Propose merges in parallel against a frozen snapshot.
		type proposal struct {
			tuple Tuple
			key   string
		}
		proposalsPer := make([][]proposal, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []proposal
				for fi := w; fi < len(frontier); fi += workers {
					i := frontier[fi]
					for _, j := range c.candidates(i) {
						a, b := c.tuples[i], c.tuples[j]
						if !Complementable(a.Values, b.Values) {
							continue
						}
						m := Merge(a, b)
						k := m.Key()
						if c.keys[k] {
							continue
						}
						local = append(local, proposal{tuple: m, key: k})
					}
				}
				proposalsPer[w] = local
			}(w)
		}
		wg.Wait()
		// Integrate sequentially, deterministically.
		var all []proposal
		for _, ps := range proposalsPer {
			all = append(all, ps...)
		}
		sort.Slice(all, func(x, y int) bool {
			if all[x].key != all[y].key {
				return all[x].key < all[y].key
			}
			return provLess(all[x].tuple.Prov, all[y].tuple.Prov)
		})
		frontier = frontier[:0]
		for _, p := range all {
			if c.keys[p.key] {
				continue
			}
			frontier = append(frontier, c.add(p.tuple))
		}
	}
	return finalize(c.tuples)
}
