package fd

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/table"
)

// Parallel computes the Full Disjunction with a round-synchronous parallel
// complementation closure, the comparison point the ALITE paper draws
// against ParaFD (Paganelli et al., 2019). Each round, the current frontier
// of unprocessed tuples is split across workers; every worker proposes
// merges of its frontier tuples against a read-only snapshot of the closure
// state; proposals are then integrated sequentially in a deterministic
// order, forming the next frontier. Output is identical to ALITE.
//
// Like ALITE, the closure runs on interned value IDs. Workers carry their
// own epoch-stamped candidate scratch, so proposal generation allocates
// only for genuinely new merges.
func Parallel(in Input, workers int) []Tuple {
	out, _ := ParallelCtx(context.Background(), in, workers)
	return out
}

// ParallelCtx is Parallel with cooperative cancellation: workers check ctx
// between frontier items and the round loop checks it between rounds, so a
// cancelled closure returns (nil, ctx.Err()) after at most one in-flight
// frontier item per worker — the workers drain and exit before ParallelCtx
// returns, never leaking a goroutine. Uncancelled output is byte-identical
// to Parallel (and therefore to ALITE).
func ParallelCtx(ctx context.Context, in Input, workers int) ([]Tuple, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		// A single worker cannot overlap proposal generation with anything;
		// the round machinery (per-round snapshot, proposal collection and
		// sort) would only add allocations on top of the serial closure. The
		// output is identical by construction, so fall back to ALITE.
		return ALITECtx(ctx, in)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	done := ctx.Done()
	c := newCloser(in.Dict)
	frontier := c.seed(in.Tuples)
	for len(frontier) > 0 {
		if err := checkCancel(ctx, done); err != nil {
			return nil, err
		}
		// Propose merges in parallel against a frozen snapshot.
		type proposal struct {
			tuple ctuple
			// provKey is the lexicographically sorted provenance rendering,
			// the deterministic tiebreak among equal-value proposals.
			provKey string
		}
		proposalsPer := make([][]proposal, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var vs visitScratch
				var idbuf []uint32
				var local []proposal
				for fi := w; fi < len(frontier); fi += workers {
					if checkCancel(ctx, done) != nil {
						return
					}
					i := frontier[fi]
					for _, j := range c.candidates(i, &vs) {
						a, b := &c.tuples[i], &c.tuples[j]
						if !complementableIDs(a.ids, b.ids) {
							continue
						}
						idbuf = mergeIDs(a.ids, b.ids, idbuf)
						if c.lookup(idbuf) >= 0 {
							continue
						}
						m := c.materialize(i, j, idbuf)
						local = append(local, proposal{tuple: m, provKey: c.provKey(m.prov)})
					}
				}
				proposalsPer[w] = local
			}(w)
		}
		wg.Wait()
		if err := checkCancel(ctx, done); err != nil {
			return nil, err
		}
		// Integrate sequentially, deterministically: equal-value proposals
		// are adjacent after sorting and the provenance-smallest one wins,
		// exactly as the string-keyed integration ordered them.
		var all []proposal
		for _, ps := range proposalsPer {
			all = append(all, ps...)
		}
		sort.Slice(all, func(x, y int) bool {
			if cmp := table.CompareRows(all[x].tuple.vals, all[y].tuple.vals); cmp != 0 {
				return cmp < 0
			}
			return all[x].provKey < all[y].provKey
		})
		frontier = frontier[:0]
		for _, p := range all {
			if c.lookup(p.tuple.ids) >= 0 {
				continue
			}
			frontier = append(frontier, c.add(p.tuple))
		}
	}
	return c.finalize(), nil
}

// provKey renders a provenance ID set as its sorted string form joined with
// '\x1f', a deterministic order key independent of interning order.
func (c *closer) provKey(prov []int32) string {
	ss := make([]string, len(prov))
	for i, p := range prov {
		ss[i] = c.provs[p]
	}
	sort.Strings(ss)
	return strings.Join(ss, "\x1f")
}
