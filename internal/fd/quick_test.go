package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// TestQuickClosureEqualsEnumeration drives the randomized ALITE-vs-Naive
// equivalence through testing/quick: any seed must produce agreeing
// outputs.
func TestQuickClosureEqualsEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		a := ALITE(in)
		n, err := Naive(in)
		if err != nil {
			return false
		}
		return sameValues(a, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelEqualsEnumeration: the interned round-synchronous
// parallel closure agrees with exhaustive enumeration on any seed, at
// several worker counts.
func TestQuickParallelEqualsEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		n, err := Naive(in)
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 3, 8} {
			if !sameValues(Parallel(in, workers), n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSharedDictClosure: running ALITE and Parallel over a shared,
// pre-populated lake-wide dictionary changes nothing — values, provenance,
// and ordering are identical to private-dictionary runs, and reusing the
// same dictionary across many closures is safe.
func TestQuickSharedDictClosure(t *testing.T) {
	dict := table.NewDict()
	same := func(a, b []Tuple) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Key() != b[i].Key() || !reflect.DeepEqual(a[i].Prov, b[i].Prov) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		shared := in
		shared.Dict = dict
		// Shared-dict runs must match fresh-dict runs of the same algorithm
		// exactly — values, provenance, and ordering. (ALITE and Parallel may
		// legitimately pick different minimal provenance witnesses from each
		// other; their value agreement is asserted elsewhere.)
		return same(ALITE(shared), ALITE(in)) && same(Parallel(shared, 4), Parallel(in, 4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickIncrementalEqualsBatch: feeding a random input tuple-by-tuple
// through the incremental closure converges to the batch ALITE result.
func TestQuickIncrementalEqualsBatch(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		inc := NewIncremental(in.Schema, nil)
		for _, tu := range in.Tuples {
			inc.Add([]Tuple{tu})
		}
		batch := ALITE(in)
		got := inc.Result()
		if len(got) != len(batch) {
			return false
		}
		for i := range batch {
			if got[i].Key() != batch[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRemoveSubsumedAntichain: for any random tuple set, the
// survivors of subsumption removal form an antichain that still covers
// every input tuple.
func TestQuickRemoveSubsumedAntichain(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInput(rand.New(rand.NewSource(seed)))
		out := RemoveSubsumed(in.Tuples)
		for i := range out {
			for j := range out {
				if i != j && Subsumes(out[j].Values, out[i].Values) && out[i].Key() != out[j].Key() {
					return false
				}
			}
		}
		for _, src := range in.Tuples {
			covered := false
			for _, o := range out {
				if Subsumes(o.Values, src.Values) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeProperties: merging complementable tuples is commutative
// in values and subsumes both sides.
func TestQuickMergeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		for i := 0; i < len(in.Tuples); i++ {
			for j := i + 1; j < len(in.Tuples); j++ {
				a, b := in.Tuples[i], in.Tuples[j]
				if !Complementable(a.Values, b.Values) {
					continue
				}
				m1 := Merge(a, b)
				m2 := Merge(b, a)
				if m1.Key() != m2.Key() {
					return false
				}
				if !Subsumes(m1.Values, a.Values) || !Subsumes(m1.Values, b.Values) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickComplementableSymmetric: complementability is symmetric.
func TestQuickComplementableSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		for i := 0; i < len(in.Tuples); i++ {
			for j := i + 1; j < len(in.Tuples); j++ {
				if Complementable(in.Tuples[i].Values, in.Tuples[j].Values) !=
					Complementable(in.Tuples[j].Values, in.Tuples[i].Values) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOuterUnionPreservesCells: padding never alters source cells.
func TestQuickOuterUnionPreservesCells(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New("t", "a", "b")
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			tb.MustAddRow(randValue(rng), randValue(rng))
		}
		in, err := OuterUnion([]string{"x", "y", "z"}, []Relation{{Table: tb, ColPos: []int{2, 0}}})
		if err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			tu := in.Tuples[r]
			if !tu.Values[2].Equal(tb.Rows[r][0]) || !tu.Values[0].Equal(tb.Rows[r][1]) {
				return false
			}
			if tu.Values[1].Kind() != table.PNull {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randValue(rng *rand.Rand) table.Value {
	switch rng.Intn(4) {
	case 0:
		return table.NullValue()
	case 1:
		return table.IntValue(int64(rng.Intn(5)))
	case 2:
		return table.BoolValue(rng.Intn(2) == 0)
	default:
		return table.StringValue(string(rune('a' + rng.Intn(4))))
	}
}
