// Package integrate provides DIALITE's extensible integration-operator
// framework (paper §2.2, §3.2). ALITE's Full Disjunction is the default
// operator; users can register alternatives — the demo registers the
// standard full outer join (Fig. 6) to contrast against FD (Fig. 8) — and
// every operator runs over the same aligned representation produced by
// holistic schema matching, so operators are comparable apples-to-apples.
package integrate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fd"
	"repro/internal/schemamatch"
	"repro/internal/table"
)

// RowIDFunc names source rows for provenance (the paper's t1..t16).
type RowIDFunc func(tableName string, row int) string

// AlignedSet is one source table projected onto the integration schema:
// padded tuples plus the set of schema positions the table actually covers
// (needed by join operators to determine natural-join attributes).
type AlignedSet struct {
	Name      string
	Positions []int
	Tuples    []fd.Tuple
}

// Prepare aligns an integration set with the given matcher and builds the
// per-table aligned sets all operators consume. A nil matcher uses the
// holistic matcher without a knowledge base.
func Prepare(tables []*table.Table, matcher schemamatch.Matcher, rowIDs RowIDFunc) ([]string, []AlignedSet, error) {
	if len(tables) == 0 {
		return nil, nil, fmt.Errorf("integrate: empty integration set")
	}
	if matcher == nil {
		matcher = schemamatch.Holistic{}
	}
	align, err := matcher.Align(tables)
	if err != nil {
		return nil, nil, fmt.Errorf("integrate: align: %w", err)
	}
	sets := make([]AlignedSet, 0, len(tables))
	for ti, t := range tables {
		colPos := make([]int, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			p, ok := align.PositionOf(ti, c)
			if !ok {
				return nil, nil, fmt.Errorf("integrate: alignment misses column %d of table %q", c, t.Name)
			}
			colPos[c] = p
		}
		rel := fd.Relation{Table: t, ColPos: colPos}
		if rowIDs != nil {
			ids := make([]string, t.NumRows())
			for r := range ids {
				ids[r] = rowIDs(t.Name, r)
			}
			rel.RowIDs = ids
		}
		in, err := fd.OuterUnion(align.Schema, []fd.Relation{rel})
		if err != nil {
			return nil, nil, fmt.Errorf("integrate: pad %q: %w", t.Name, err)
		}
		positions := append([]int(nil), colPos...)
		sort.Ints(positions)
		sets = append(sets, AlignedSet{Name: t.Name, Positions: positions, Tuples: in.Tuples})
	}
	return align.Schema, sets, nil
}

// Operator is a pluggable integration method over aligned sets.
type Operator interface {
	// Name is the registry key ("alite-fd", "outer-join", ...).
	Name() string
	// Run integrates the aligned sets into one tuple set over schema. Run
	// observes ctx cooperatively: once the context is cancelled it returns
	// (nil, ctx.Err()) promptly instead of finishing the integration; with
	// an uncancelled ctx the output is identical to running without one.
	Run(ctx context.Context, schema []string, sets []AlignedSet) ([]fd.Tuple, error)
}

// Apply aligns the tables, runs the operator, and renders the integrated
// table named "<op>(T1,T2,...)". It is the one-call path the CLI, the
// serving layer and the examples use; ctx cancellation aborts the operator
// mid-integration with ctx.Err().
func Apply(ctx context.Context, op Operator, tables []*table.Table, matcher schemamatch.Matcher, rowIDs RowIDFunc, withProvenance bool) (*table.Table, []fd.Tuple, error) {
	schema, sets, err := Prepare(tables, matcher, rowIDs)
	if err != nil {
		return nil, nil, err
	}
	tuples, err := op.Run(ctx, schema, sets)
	if err != nil {
		return nil, nil, fmt.Errorf("integrate: operator %q: %w", op.Name(), err)
	}
	names := make([]string, len(tables))
	for i, t := range tables {
		names[i] = t.Name
	}
	out := fd.ToTable(fmt.Sprintf("%s(%s)", op.Name(), strings.Join(names, ",")), schema, tuples, withProvenance)
	return out, tuples, nil
}

// ALITEFD is the default operator: ALITE's Full Disjunction.
type ALITEFD struct {
	// Workers > 0 selects the parallel FD algorithm.
	Workers int
	// Dict optionally shares a value dictionary (usually the lake's) with
	// the FD closure, so cell interning is reused across integrations.
	Dict *table.Dict
}

// Name implements Operator.
func (ALITEFD) Name() string { return "alite-fd" }

// Run implements Operator. Cancellation reaches the FD closure itself: the
// complementation rounds poll ctx (fd.ALITECtx / fd.ParallelCtx).
func (o ALITEFD) Run(ctx context.Context, schema []string, sets []AlignedSet) ([]fd.Tuple, error) {
	in := fd.Input{Schema: schema, Dict: o.Dict}
	for _, s := range sets {
		in.Tuples = append(in.Tuples, s.Tuples...)
	}
	if o.Workers > 0 {
		return fd.ParallelCtx(ctx, in, o.Workers)
	}
	return fd.ALITECtx(ctx, in)
}

// FullOuterJoin is the paper's comparison operator (Fig. 6): a left-deep
// chain of binary natural full outer joins over the integration IDs, in
// input order. Unlike FD it is order-dependent and misses derivable facts
// (Fig. 8(a) vs 8(b)); DIALITE includes it so users can see the
// difference.
type FullOuterJoin struct{}

// Name implements Operator.
func (FullOuterJoin) Name() string { return "outer-join" }

// Run implements Operator.
func (FullOuterJoin) Run(ctx context.Context, schema []string, sets []AlignedSet) ([]fd.Tuple, error) {
	return foldJoin(ctx, schema, sets, true)
}

// InnerJoin chains binary natural inner joins in input order; rows without
// partners are dropped. Included as the restrictive end of the operator
// spectrum (Auctus-style pairwise integration).
type InnerJoin struct{}

// Name implements Operator.
func (InnerJoin) Name() string { return "inner-join" }

// Run implements Operator.
func (InnerJoin) Run(ctx context.Context, schema []string, sets []AlignedSet) ([]fd.Tuple, error) {
	return foldJoin(ctx, schema, sets, false)
}

// Union is the plain outer union: all padded tuples, deduplicated. It is
// the weakest integration — no tuples are ever connected.
type Union struct{}

// Name implements Operator.
func (Union) Name() string { return "union" }

// Run implements Operator.
func (Union) Run(ctx context.Context, schema []string, sets []AlignedSet) ([]fd.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var all []fd.Tuple
	for _, s := range sets {
		all = append(all, s.Tuples...)
	}
	return dedupe(all), nil
}

// foldJoin implements the left-deep natural join chain. outer selects full
// outer join (unmatched rows survive padded) versus inner join.
//
// Join semantics with nulls follow SQL: the join attributes are the schema
// positions covered by both sides; a pair matches only when every join
// attribute is non-null and equal on both sides. When the sides share no
// positions, the natural join degenerates to a cross product.
func foldJoin(ctx context.Context, schema []string, sets []AlignedSet, outer bool) ([]fd.Tuple, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	done := ctx.Done()
	cur := append([]fd.Tuple(nil), sets[0].Tuples...)
	curPos := append([]int(nil), sets[0].Positions...)
	for _, next := range sets[1:] {
		shared := intersect(curPos, next.Positions)
		var out []fd.Tuple
		matchedRight := make([]bool, len(next.Tuples))
		for ai, a := range cur {
			// The pairwise scan is the quadratic part of the chain; one
			// checkpoint per left tuple bounds cancellation latency by a
			// single O(|next|) inner scan.
			if done != nil && ai%64 == 0 {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			matched := false
			for bi, b := range next.Tuples {
				if joinMatch(a.Values, b.Values, shared) {
					out = append(out, fd.Merge(a, b))
					matched = true
					matchedRight[bi] = true
				}
			}
			if !matched && outer {
				out = append(out, a)
			}
		}
		if outer {
			for bi, b := range next.Tuples {
				if !matchedRight[bi] {
					out = append(out, b)
				}
			}
		}
		cur = dedupe(out)
		curPos = union(curPos, next.Positions)
	}
	sorted := append([]fd.Tuple(nil), cur...)
	sortTuplesCanonical(sorted)
	return sorted, nil
}

// joinMatch reports whether every shared position is non-null and equal on
// both sides. An empty shared set matches everything (cross product).
func joinMatch(a, b []table.Value, shared []int) bool {
	for _, p := range shared {
		if a[p].IsNull() || b[p].IsNull() || !a[p].Equal(b[p]) {
			return false
		}
	}
	return true
}

func intersect(a, b []int) []int {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []int
	for _, y := range b {
		if in[y] {
			out = append(out, y)
		}
	}
	sort.Ints(out)
	return out
}

func union(a, b []int) []int {
	in := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, x := range append(append([]int(nil), a...), b...) {
		if !in[x] {
			in[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func dedupe(tuples []fd.Tuple) []fd.Tuple {
	seen := make(map[string]bool, len(tuples))
	out := make([]fd.Tuple, 0, len(tuples))
	for _, t := range tuples {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

func sortTuplesCanonical(tuples []fd.Tuple) {
	sort.SliceStable(tuples, func(i, j int) bool {
		return table.CompareRows(tuples[i].Values, tuples[j].Values) < 0
	})
}
