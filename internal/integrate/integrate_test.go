package integrate

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fd"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/schemamatch"
	"repro/internal/table"
)

func paperRowIDs(tableName string, row int) string {
	return paperdata.TupleID(tableName, row)
}

func vaccineMatcher() schemamatch.Matcher {
	return schemamatch.Holistic{Knowledge: kb.Demo()}
}

func TestFullOuterJoinReproducesFig8a(t *testing.T) {
	got, tuples, err := Apply(context.Background(), FullOuterJoin{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8aExpected()
	cmp := got.Clone()
	cmp.Columns = want.Columns
	if !cmp.EqualUnordered(want) {
		t.Fatalf("outer join != Fig. 8(a):\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Provenance of the joined tuple f8 = {t11, t13}.
	for _, tu := range tuples {
		if tu.Values[0].String() == "Pfizer" {
			if !reflect.DeepEqual(tu.Prov, []string{"t11", "t13"}) {
				t.Errorf("f8 provenance = %v", tu.Prov)
			}
		}
	}
	// The outer join result must NOT contain the J&J-approver fact that FD
	// recovers (the paper's key contrast).
	for _, tu := range tuples {
		if tu.Values[0].String() == "J&J" && tu.Values[1].String() == "FDA" {
			t.Error("outer join must not derive (J&J, FDA, ...)")
		}
	}
}

func TestALITEFDOperatorReproducesFig8b(t *testing.T) {
	got, _, err := Apply(context.Background(), ALITEFD{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	want := paperdata.Fig8bExpected()
	cmp := got.Clone()
	cmp.Columns = want.Columns
	if !cmp.EqualUnordered(want) {
		t.Fatalf("alite-fd operator != Fig. 8(b):\ngot:\n%s", got)
	}
	par, _, err := Apply(context.Background(), ALITEFD{Workers: 4}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !par.EqualUnordered(got) {
		t.Error("parallel operator differs")
	}
}

func TestFDSubsumesOuterJoinInformation(t *testing.T) {
	// Every outer-join tuple is subsumed by some FD tuple (FD integrates
	// maximally); the converse is false.
	_, oj, err := Apply(context.Background(), FullOuterJoin{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	_, fdt, err := Apply(context.Background(), ALITEFD{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range oj {
		covered := false
		for _, b := range fdt {
			if fd.Subsumes(b.Values, a.Values) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("outer-join tuple %v not subsumed by any FD tuple", a.Values)
		}
	}
}

func TestInnerJoin(t *testing.T) {
	_, tuples, err := Apply(context.Background(), InnerJoin{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	// Inner join keeps only fully-matching chains: T4⋈T5 on Approver gives
	// (Pfizer,FDA,United States); joining T6 on (Vaccine,Country) requires
	// Vaccine=Pfizer AND Country=United States in T6 — absent — so the
	// chain is empty.
	if len(tuples) != 0 {
		t.Errorf("inner join = %d tuples, want 0: %v", len(tuples), tuples)
	}
}

func TestUnionOperator(t *testing.T) {
	_, tuples, err := Apply(context.Background(), Union{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	// Outer union keeps every padded source tuple (6 rows, all distinct).
	if len(tuples) != 6 {
		t.Errorf("union = %d tuples, want 6", len(tuples))
	}
}

// canonicalColumns reorders a table's columns alphabetically by header so
// results from different alignment orders become comparable.
func canonicalColumns(t *testing.T, tb *table.Table) *table.Table {
	t.Helper()
	idx := make([]int, tb.NumCols())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tb.Columns[idx[a]] < tb.Columns[idx[b]] })
	out, err := tb.Project("canon", idx...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOuterJoinOrderDependence(t *testing.T) {
	// The paper motivates FD as the associative alternative: outer join
	// chains depend on table order. T5,T6,T4 vs T4,T5,T6 differ — the
	// reversed order happens to derive the J&J fact while the paper's
	// order does not.
	tablesA := paperdata.VaccineSet()
	tablesB := []*table.Table{paperdata.T5(), paperdata.T6(), paperdata.T4()}
	ta, _, err := Apply(context.Background(), FullOuterJoin{}, tablesA, vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := Apply(context.Background(), FullOuterJoin{}, tablesB, vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalColumns(t, ta).EqualUnordered(canonicalColumns(t, tb)) {
		t.Error("outer join chain should be order-dependent on the Fig. 7 tables")
	}
	// FD must be order-invariant on the same permutation.
	fa, _, err := Apply(context.Background(), ALITEFD{}, tablesA, vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	fb, _, err := Apply(context.Background(), ALITEFD{}, tablesB, vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !canonicalColumns(t, fa).EqualUnordered(canonicalColumns(t, fb)) {
		t.Errorf("FD must be order-invariant:\n%s\n%s", fa, fb)
	}
}

func TestCrossProductWhenNoSharedPositions(t *testing.T) {
	a := table.New("A", "x")
	a.MustAddRow(table.StringValue("p"))
	a.MustAddRow(table.StringValue("q"))
	b := table.New("B", "y")
	b.MustAddRow(table.IntValue(1))
	oracle := schemamatch.Oracle{Label: func(name string, col int) string { return name }}
	_, tuples, err := Apply(context.Background(), FullOuterJoin{}, []*table.Table{a, b}, oracle, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Errorf("cross product of 2x1 = %d tuples, want 2", len(tuples))
	}
}

func TestPrepareValidation(t *testing.T) {
	if _, _, err := Prepare(nil, nil, nil); err == nil {
		t.Error("empty set must error")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	want := []string{"alite-fd", "inner-join", "outer-join", "union"}
	if !reflect.DeepEqual(r.Names(), want) {
		t.Errorf("builtin names = %v", r.Names())
	}
	if _, ok := r.Get("alite-fd"); !ok {
		t.Error("alite-fd missing")
	}
	if err := r.Register(ALITEFD{}); err == nil {
		t.Error("duplicate registration must error")
	}
	if err := r.Register(Func{OpName: ""}); err == nil {
		t.Error("empty name must error")
	}
	custom := Func{OpName: "left-pad", F: func(ctx context.Context, schema []string, sets []AlignedSet) ([]Tuple, error) {
		return nil, nil
	}}
	if err := r.Register(custom); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("left-pad"); !ok {
		t.Error("custom operator not registered")
	}
}

func TestFuncOperator(t *testing.T) {
	// Fig. 6's scenario: a user-defined outer-join operator plugged in as a
	// function behaves identically to the built-in.
	user := Func{OpName: "my-outer-join", F: FullOuterJoin{}.Run}
	got, _, err := Apply(context.Background(), user, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	builtin, _, err := Apply(context.Background(), FullOuterJoin{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, false)
	if err != nil {
		t.Fatal(err)
	}
	cmp := got.Clone()
	cmp.Name = builtin.Name
	if !cmp.EqualUnordered(builtin) {
		t.Error("user-defined operator diverges from built-in")
	}
	broken := Func{OpName: "broken"}
	if _, err := broken.Run(context.Background(), nil, nil); err == nil {
		t.Error("Func without F must error")
	}
}

func TestApplyNamesResult(t *testing.T) {
	got, _, err := Apply(context.Background(), FullOuterJoin{}, paperdata.VaccineSet(), vaccineMatcher(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "outer-join(T4,T5,T6)" {
		t.Errorf("result name = %q", got.Name)
	}
	withProv, _, err := Apply(context.Background(), FullOuterJoin{}, paperdata.VaccineSet(), vaccineMatcher(), paperRowIDs, true)
	if err != nil {
		t.Fatal(err)
	}
	if withProv.Columns[0] != "TIDs" {
		t.Error("provenance column missing")
	}
}
