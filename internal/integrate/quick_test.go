package integrate

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fd"
	"repro/internal/table"
)

// randSets builds 2-3 aligned sets over a 3-position schema with random
// coverage and small value vocabularies.
func randSets(rng *rand.Rand) ([]string, []AlignedSet) {
	schema := []string{"A", "B", "C"}
	nsets := 2 + rng.Intn(2)
	sets := make([]AlignedSet, nsets)
	for s := range sets {
		// Each set covers 2 of the 3 positions.
		first := rng.Intn(3)
		second := (first + 1 + rng.Intn(2)) % 3
		positions := []int{first, second}
		if positions[0] > positions[1] {
			positions[0], positions[1] = positions[1], positions[0]
		}
		n := 1 + rng.Intn(4)
		var tuples []fd.Tuple
		for i := 0; i < n; i++ {
			vals := make([]table.Value, 3)
			for p := range vals {
				vals[p] = table.ProducedNull()
			}
			for _, p := range positions {
				if rng.Intn(5) == 0 {
					vals[p] = table.NullValue()
				} else {
					vals[p] = table.StringValue(string(rune('a' + rng.Intn(3))))
				}
			}
			tuples = append(tuples, fd.Tuple{Values: vals, Prov: []string{"s"}})
		}
		sets[s] = AlignedSet{Name: "t", Positions: positions, Tuples: tuples}
	}
	return schema, sets
}

// TestQuickUnionIdempotent: applying the union operator twice changes
// nothing (set semantics).
func TestQuickUnionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema, sets := randSets(rng)
		once, err := (Union{}).Run(context.Background(), schema, sets)
		if err != nil {
			return false
		}
		again, err := (Union{}).Run(context.Background(), schema, []AlignedSet{{Name: "u", Positions: []int{0, 1, 2}, Tuples: once}})
		if err != nil {
			return false
		}
		return len(once) == len(again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickFDSubsumesEveryOperator: the FD result subsumes every tuple any
// join operator produces from the same aligned sets — FD integrates
// maximally, the paper's core claim.
func TestQuickFDSubsumesEveryOperator(t *testing.T) {
	ops := []Operator{FullOuterJoin{}, InnerJoin{}, Union{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema, sets := randSets(rng)
		fdOut, err := (ALITEFD{}).Run(context.Background(), schema, sets)
		if err != nil {
			return false
		}
		for _, op := range ops {
			out, err := op.Run(context.Background(), schema, sets)
			if err != nil {
				return false
			}
			for _, tu := range out {
				covered := false
				for _, m := range fdOut {
					if fd.Subsumes(m.Values, tu.Values) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickInnerJoinSubsetOfOuterJoin: every inner-join tuple appears in
// the outer-join result (by value key).
func TestQuickInnerJoinSubsetOfOuterJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema, sets := randSets(rng)
		inner, err := (InnerJoin{}).Run(context.Background(), schema, sets)
		if err != nil {
			return false
		}
		outer, err := (FullOuterJoin{}).Run(context.Background(), schema, sets)
		if err != nil {
			return false
		}
		keys := make(map[string]bool, len(outer))
		for _, tu := range outer {
			keys[tu.Key()] = true
		}
		for _, tu := range inner {
			if !keys[tu.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
