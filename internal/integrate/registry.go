package integrate

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fd"
)

// Func adapts a plain function into an Operator, the hook behind the
// paper's Fig. 6: a user implements an integration method as code and
// registers it alongside the built-ins.
type Func struct {
	// OpName is the registry key.
	OpName string
	// F integrates the aligned sets; it receives the request context and
	// should poll it in long loops (built-in operators' Run methods have
	// compatible signatures, so F: integrate.FullOuterJoin{}.Run works).
	F func(ctx context.Context, schema []string, sets []AlignedSet) ([]Tuple, error)
}

// Tuple aliases fd.Tuple so user-defined operators only import this
// package.
type Tuple = fd.Tuple

// Name implements Operator.
func (f Func) Name() string { return f.OpName }

// Run implements Operator.
func (f Func) Run(ctx context.Context, schema []string, sets []AlignedSet) ([]Tuple, error) {
	if f.F == nil {
		return nil, fmt.Errorf("integrate: operator %q has no function", f.OpName)
	}
	return f.F(ctx, schema, sets)
}

// Registry holds named integration operators. The zero value is unusable;
// use NewRegistry, which pre-registers the built-ins.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]Operator
}

// NewRegistry returns a registry with the built-in operators registered:
// alite-fd (default), outer-join, inner-join, union.
func NewRegistry() *Registry {
	r := &Registry{ops: make(map[string]Operator)}
	for _, op := range []Operator{ALITEFD{}, FullOuterJoin{}, InnerJoin{}, Union{}} {
		if err := r.Register(op); err != nil {
			panic(err) // unreachable: built-in names are distinct
		}
	}
	return r
}

// Register adds an operator; a duplicate or empty name is an error.
func (r *Registry) Register(op Operator) error {
	name := op.Name()
	if name == "" {
		return fmt.Errorf("integrate: operator with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.ops[name]; exists {
		return fmt.Errorf("integrate: operator %q already registered", name)
	}
	r.ops[name] = op
	return nil
}

// Get returns the named operator.
func (r *Registry) Get(name string) (Operator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[name]
	return op, ok
}

// Names lists registered operator names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for n := range r.ops {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
