package josie

// crosscheck_test pins the token-interned index to the pre-refactor
// string-based implementation: on randomized lakes, TopK (and the TopKIDs
// fast path) must return exactly the same ranked results — same sets, same
// overlaps, same order — as the reference below, which is a faithful copy
// of the old map[string][]int32 postings walk with kthLargest admission.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/table"
	"repro/internal/tokenize"
)

// refResult is a reference answer, identified by key (the sets aren't
// shared between implementations).
type refResult struct {
	key     string
	overlap int
}

// referenceTopK is the string-based pre-refactor TopK, verbatim except for
// operating on its own postings map.
func referenceTopK(sets []Set, rawQuery []string, k int) []refResult {
	postings := make(map[string][]int32)
	for i := range sets {
		seen := make(map[string]bool, len(sets[i].Values))
		for _, v := range sets[i].Values {
			if v == "" || seen[v] {
				continue
			}
			seen[v] = true
			postings[v] = append(postings[v], int32(i))
		}
	}
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 || len(sets) == 0 {
		return nil
	}
	tokens := query[:0:0]
	for _, tok := range query {
		if len(postings[tok]) > 0 {
			tokens = append(tokens, tok)
		}
	}
	sort.SliceStable(tokens, func(a, b int) bool {
		la, lb := len(postings[tokens[a]]), len(postings[tokens[b]])
		if la != lb {
			return la < lb
		}
		return tokens[a] < tokens[b]
	})
	counts := make(map[int32]int)
	for i, tok := range tokens {
		remaining := len(tokens) - i
		admitNew := true
		if k > 0 && len(counts) >= k {
			if refKthLargest(counts, k) >= remaining {
				admitNew = false
			}
		}
		for _, si := range postings[tok] {
			if _, seen := counts[si]; seen {
				counts[si]++
			} else if admitNew {
				counts[si] = 1
			}
		}
	}
	var results []refResult
	for si, c := range counts {
		if c > 0 {
			results = append(results, refResult{key: sets[si].Key(), overlap: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].overlap != results[b].overlap {
			return results[a].overlap > results[b].overlap
		}
		return results[a].key < results[b].key
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

func refKthLargest(counts map[int32]int, k int) int {
	if len(counts) < k {
		return 0
	}
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	return vals[k-1]
}

func assertSameResults(t *testing.T, label string, got []Result, want []refResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Set.Key() != want[i].key || got[i].Overlap != want[i].overlap {
			t.Fatalf("%s: rank %d: got %s/%d, want %s/%d", label, i,
				got[i].Set.Key(), got[i].Overlap, want[i].key, want[i].overlap)
		}
	}
}

// TestCrossCheckRandomizedLakes fans hundreds of randomized queries across
// randomized lakes and asserts the ID-based index is byte-identical to the
// string-based reference for every k.
func TestCrossCheckRandomizedLakes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		nsets := 40 + rng.Intn(120)
		vocab := 200 + rng.Intn(600)
		var sets []Set
		for i := 0; i < nsets; i++ {
			n := 1 + rng.Intn(80)
			vals := make([]string, n)
			for j := range vals {
				vals[j] = fmt.Sprintf("v%05d", rng.Intn(vocab))
			}
			sets = append(sets, Set{Table: fmt.Sprintf("t%03d", i), Column: rng.Intn(3), Values: vals})
		}
		ix := Build(sets)
		for qi := 0; qi < 25; qi++ {
			qn := 1 + rng.Intn(60)
			query := make([]string, qn)
			for j := range query {
				if rng.Intn(10) == 0 {
					// ~10% tokens outside the lake vocabulary.
					query[j] = fmt.Sprintf("unknown%04d", rng.Intn(1000))
				} else {
					query[j] = fmt.Sprintf("v%05d", rng.Intn(vocab))
				}
			}
			for _, k := range []int{0, 1, 3, 10, nsets * 2} {
				label := fmt.Sprintf("seed=%d query=%d k=%d", seed, qi, k)
				assertSameResults(t, label, ix.TopK(query, k), referenceTopK(sets, query, k))
			}
		}
	}
}

// TestRebuildIgnoresForeignIDs pins the rebuild contract: Build (private
// dictionary) must re-intern sets whose cached IDs came from another
// dictionary instead of counting them against the wrong posting layout
// (out-of-range foreign IDs would panic the CSR fill; in-range ones would
// silently corrupt it).
func TestRebuildIgnoresForeignIDs(t *testing.T) {
	foreign := table.NewTokenDict()
	for i := 0; i < 50; i++ {
		foreign.Intern(fmt.Sprintf("pad%02d", i))
	}
	sets := []Set{
		{Table: "A", Values: []string{"berlin", "boston", "tokyo"}},
		{Table: "B", Values: []string{"berlin", "lyon"}},
	}
	for i := range sets {
		sets[i].IDs = foreign.InternAll(sets[i].Values, nil)
	}
	ix := Build(sets)
	got := ix.TopK([]string{"berlin", "boston"}, 0)
	assertSameResults(t, "foreign-ID rebuild", got, []refResult{
		{key: "A[0]", overlap: 2}, {key: "B[0]", overlap: 1},
	})
}

// TestCrossCheckTopKIDsFastPath verifies the lake-domain fast path — a
// query given as pre-interned token IDs — matches both the string TopK and
// the reference.
func TestCrossCheckTopKIDsFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sets []Set
	for i := 0; i < 60; i++ {
		n := 5 + rng.Intn(50)
		vals := make([]string, n)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%05d", rng.Intn(400))
		}
		sets = append(sets, Set{Table: fmt.Sprintf("t%03d", i), Values: vals})
	}
	ix := Build(sets)
	for i := 0; i < len(ix.sets); i += 7 {
		s := &ix.sets[i]
		for _, k := range []int{0, 1, 5} {
			label := fmt.Sprintf("set=%d k=%d", i, k)
			want := referenceTopK(sets, s.Values, k)
			assertSameResults(t, label+" ids", ix.TopKIDs(s.IDs, k), want)
			assertSameResults(t, label+" strings", ix.TopK(s.Values, k), want)
		}
	}
}
