// Package josie implements exact top-k overlap set-similarity search in the
// style of JOSIE (Zhu, Deng, Nargesian, Miller — SIGMOD 2019), the other
// joinable-table discovery method cited by the paper. Unlike the LSH
// Ensemble (approximate, threshold-based), JOSIE answers exact top-k
// queries: the k indexed column domains with the largest overlap |Q∩X|.
//
// The index lives entirely in an integer token universe: set members intern
// into a table.TokenDict (shared lake-wide when built through lake.New), and
// the inverted index maps dense token IDs to posting lists stored as one
// contiguous []int32 arena with per-token offsets (CSR layout) — no
// string-keyed map, no per-token slice headers. Queries process tokens in
// ascending global-frequency order with a prefix-filter early termination:
// once fewer unread query tokens remain than the current k-th best overlap,
// no unseen candidate can reach the top k, so only already-seen candidates
// are updated. Candidate counts accumulate in a flat slice indexed by set,
// and the running k-th best overlap is maintained with a count histogram
// instead of re-sorting. This mirrors JOSIE's core insight (adaptively stop
// creating new candidates) without its cost model.
//
// The index is mutable: Add appends sets to a delta segment beside the CSR
// arena (queries merge base and delta postings), Remove tombstones set
// indices (skipped by both the prefix filter's frequency accounting and the
// posting merge), and compaction — automatic past a size threshold, or
// explicit via Compact — folds the delta and drops tombstoned sets back
// into a fresh CSR arena. Mutations are exclusive and queries concurrent
// (RWMutex); query results over a mutated index are identical to a fresh
// Build over the live sets.
package josie

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/par"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Set is one indexed column domain.
type Set struct {
	Table      string
	Column     int
	ColumnName string
	Values     []string // normalized, deduplicated value set
	// IDs optionally carries Values interned into the dictionary the index
	// is built with (lake extraction precomputes it). When set it must be
	// deduplicated and parallel to the distinct members of Values; when nil,
	// Build interns Values itself.
	IDs []uint32

	key string // precomputed "table[col]", set by Build
}

// Key identifies the set as "table[col]". Sets that went through Build
// return a precomputed key; detached sets format one on the fly.
func (s *Set) Key() string {
	if s.key != "" {
		return s.key
	}
	return fmt.Sprintf("%s[%d]", s.Table, s.Column)
}

// Index is an inverted index over set members. The bulk of the postings
// live in a CSR arena built at Build (or the latest compaction): the base
// posting list of token id is posts[postStart[id]:postStart[id+1]], always
// sorted by ascending set index. Sets added since the last compaction keep
// their postings in the delta map instead; removed sets are tombstoned in
// dead (their base postings are skipped at query time, their delta postings
// pruned eagerly). Mutations take the write lock, queries the read lock.
type Index struct {
	mu       sync.RWMutex
	sets     []Set
	dict     *table.TokenDict
	trustIDs bool // precomputed Set.IDs belong to dict (caller-supplied dict)

	// Base CSR arena: covers sets[:baseSets] as of the last Build/Compact.
	numTokens int      // dict size at build time; larger IDs have no base postings
	postStart []uint32 // len numTokens+2; postStart[0] and [1] cover the unused ID 0
	posts     []int32

	// Delta segment and tombstones (see Add, Remove, Compact).
	baseSets   int                // sets[:baseSets] have their postings in the arena
	delta      map[uint32][]int32 // token id -> set indices added since compaction (ascending)
	dead       []bool             // per set index: tombstoned by Remove
	deadCount  int
	deadBase   []int32 // per base token id: tombstoned base postings (lazy)
	deltaPosts int     // total postings across delta
	deadPosts  int     // total tombstoned postings in the base arena
}

// Automatic compaction folds the delta segment and tombstones back into the
// CSR arena once they outgrow a quarter of the base (and are non-trivially
// sized in absolute terms, so small lakes don't compact on every mutation).
const (
	autoCompactMinPosts = 256
	autoCompactFraction = 4
)

// Build constructs the inverted index over a private token dictionary. Set
// values are assumed normalized (use tokenize.ValueSet when extracting from
// tables); interning deduplicates defensively so posting lists never
// double-count a set.
func Build(sets []Set) *Index { return BuildWithDict(sets, nil) }

// BuildWithDict constructs the inverted index, interning set members into
// dict (nil means a fresh private dictionary). Sharing one dictionary
// across indexes — as lake preprocessing does — makes query-side token
// lookups and cached fingerprints agree lake-wide. Precomputed Set.IDs are
// only meaningful relative to the dictionary they were interned in, so
// they are trusted exactly when the caller supplies that dictionary; under
// a private dictionary every set is re-interned from Values, which keeps
// Build(lakeDomains) safe for index rebuilds (the IDs cached by a lake
// would otherwise be read against the wrong dictionary).
//
// Interning runs one worker per set; the CSR fill afterwards is a cheap
// integer counting pass. Posting lists are filled in set order, so the
// index is identical to a sequential build regardless of scheduling.
func BuildWithDict(sets []Set, dict *table.TokenDict) *Index {
	trustIDs := dict != nil
	if dict == nil {
		dict = table.NewTokenDict()
	}
	ix := &Index{
		sets:     append([]Set(nil), sets...),
		dict:     dict,
		trustIDs: trustIDs,
		dead:     make([]bool, len(sets)),
	}
	// Phase 1 (parallel per set): intern members to token IDs and precompute
	// result keys.
	par.For(len(ix.sets), func(i int) {
		s := &ix.sets[i]
		s.key = fmt.Sprintf("%s[%d]", s.Table, s.Column)
		if s.IDs == nil || !trustIDs {
			s.IDs = internDedup(dict, s.Values)
		}
	})
	ix.fillCSR()
	return ix
}

// fillCSR rebuilds the base arena over every non-tombstoned set: count token
// frequencies, prefix-sum into offsets, and fill in set order so every
// posting list stays sorted by set index. Callers must hold the write lock
// (or own the index exclusively, as Build does) and must have cleared the
// tombstones and delta of any prior state.
func (ix *Index) fillCSR() {
	ix.numTokens = ix.dict.Len()
	counts := make([]uint32, ix.numTokens+1)
	total := 0
	for i := range ix.sets {
		for _, id := range ix.sets[i].IDs {
			counts[id]++
		}
		total += len(ix.sets[i].IDs)
	}
	// The CSR offsets are uint32; like the dictionaries' ID guards, refuse
	// to wrap rather than silently corrupt the index (tokens repeat across
	// sets, so total postings can exceed the distinct-token count).
	if uint64(total) > math.MaxUint32 {
		panic("josie: index full: more than ~4B total postings (uint32 offset space exhausted)")
	}
	ix.postStart = make([]uint32, ix.numTokens+2)
	for id := 1; id <= ix.numTokens; id++ {
		ix.postStart[id+1] = ix.postStart[id] + counts[id]
	}
	cursor := counts // reuse as fill cursors
	copy(cursor, ix.postStart[:ix.numTokens+1])
	ix.posts = make([]int32, total)
	for i := range ix.sets {
		for _, id := range ix.sets[i].IDs {
			ix.posts[cursor[id]] = int32(i)
			cursor[id]++
		}
	}
	ix.baseSets = len(ix.sets)
}

// Add appends sets to the index without rebuilding the CSR arena: each new
// set receives the next set index and its postings land in the delta
// segment, which queries merge with the base arena (delta set indices are
// all larger than base indices, so merged posting lists stay sorted).
// Precomputed Set.IDs are trusted exactly when the index was built over a
// caller-supplied dictionary, mirroring BuildWithDict. Once the delta
// outgrows the auto-compaction threshold it is folded into a fresh arena.
// Add is exclusive with queries and other mutations.
func (ix *Index) Add(sets []Set) {
	if len(sets) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, s := range sets {
		si := len(ix.sets)
		if si >= math.MaxInt32 {
			panic("josie: index full: more than ~2B sets (int32 set-index space exhausted)")
		}
		s.key = fmt.Sprintf("%s[%d]", s.Table, s.Column)
		if s.IDs == nil || !ix.trustIDs {
			s.IDs = internDedup(ix.dict, s.Values)
		}
		ix.sets = append(ix.sets, s)
		ix.dead = append(ix.dead, false)
		if ix.delta == nil {
			ix.delta = make(map[uint32][]int32)
		}
		for _, id := range s.IDs {
			ix.delta[id] = append(ix.delta[id], int32(si))
		}
		ix.deltaPosts += len(s.IDs)
	}
	ix.maybeCompactLocked()
}

// Remove tombstones every set belonging to one of the named tables and
// reports how many sets died. Base postings of a tombstoned set stay in the
// arena but are skipped by queries (and subtracted from the prefix filter's
// frequency accounting); delta postings are pruned eagerly. Removing a
// table with no indexed sets is a no-op. Remove is exclusive with queries
// and other mutations.
func (ix *Index) Remove(tables []string) int {
	if len(tables) == 0 {
		return 0
	}
	doomed := make(map[string]bool, len(tables))
	for _, t := range tables {
		doomed[t] = true
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	removed := 0
	for i := range ix.sets {
		if ix.dead[i] || !doomed[ix.sets[i].Table] {
			continue
		}
		ix.dead[i] = true
		ix.deadCount++
		removed++
		if i < ix.baseSets {
			if ix.deadBase == nil {
				ix.deadBase = make([]int32, ix.numTokens+1)
			}
			for _, id := range ix.sets[i].IDs {
				ix.deadBase[id]++
			}
			ix.deadPosts += len(ix.sets[i].IDs)
		} else {
			for _, id := range ix.sets[i].IDs {
				ix.delta[id] = dropPosting(ix.delta[id], int32(i))
				if len(ix.delta[id]) == 0 {
					delete(ix.delta, id)
				}
			}
			ix.deltaPosts -= len(ix.sets[i].IDs)
		}
	}
	if removed > 0 {
		ix.maybeCompactLocked()
	}
	return removed
}

// dropPosting removes set index si from a delta posting list in place,
// preserving order.
func dropPosting(list []int32, si int32) []int32 {
	for i, v := range list {
		if v == si {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Compact folds the delta segment and tombstones back into the CSR arena:
// live sets keep their relative order and are renumbered densely, and the
// delta and tombstone state reset to empty. Query results are unaffected —
// compaction only re-lays-out the same live postings. Compact is exclusive
// with queries and other mutations.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.compactLocked()
}

func (ix *Index) maybeCompactLocked() {
	if pending := ix.deltaPosts + ix.deadPosts; pending > autoCompactMinPosts && pending > len(ix.posts)/autoCompactFraction {
		ix.compactLocked()
	}
}

func (ix *Index) compactLocked() {
	if ix.deadCount == 0 && ix.deltaPosts == 0 && ix.baseSets == len(ix.sets) {
		return
	}
	live := make([]Set, 0, len(ix.sets)-ix.deadCount)
	for i := range ix.sets {
		if !ix.dead[i] {
			live = append(live, ix.sets[i])
		}
	}
	ix.sets = live
	ix.dead = make([]bool, len(live))
	ix.deadCount = 0
	ix.delta = nil
	ix.deadBase = nil
	ix.deltaPosts, ix.deadPosts = 0, 0
	ix.fillCSR()
}

// internDedup interns values into dict, skipping empties and duplicates
// (first occurrence wins), preserving order.
func internDedup(dict *table.TokenDict, values []string) []uint32 {
	ids := make([]uint32, 0, len(values))
	seen := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		if v == "" {
			continue
		}
		id := dict.Intern(v)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	return ids
}

// postings returns the base-arena posting list of token id (empty for
// unknown IDs and for tokens interned after the last compaction). It may
// contain tombstoned set indices; liveFreq and the query merge account for
// them.
func (ix *Index) postings(id uint32) []int32 {
	if id == 0 || int(id) > ix.numTokens {
		return nil
	}
	return ix.posts[ix.postStart[id]:ix.postStart[id+1]]
}

// liveFreq counts the live postings of token id across the base arena
// (minus tombstones) and the delta segment — exactly the frequency a fresh
// Build over the live sets would report, which keeps the query-token
// processing order (and therefore the prefix filter's admission decisions)
// identical to a from-scratch index.
func (ix *Index) liveFreq(id uint32) int {
	f := len(ix.postings(id))
	if ix.deadBase != nil && id != 0 && int(id) <= ix.numTokens {
		f -= int(ix.deadBase[id])
	}
	if ix.delta != nil {
		f += len(ix.delta[id])
	}
	return f
}

// Dict returns the token dictionary the index interns through.
func (ix *Index) Dict() *table.TokenDict { return ix.dict }

// NumSets reports how many live (non-removed) sets are indexed.
func (ix *Index) NumSets() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sets) - ix.deadCount
}

// Result is one ranked answer.
type Result struct {
	Set     *Set
	Overlap int // exact |Q∩X|
}

// queryToken is one query token with postings, carried through the
// frequency sort with its string form for deterministic tie-breaking.
type queryToken struct {
	id   uint32
	freq int
	tok  string
}

// TopK returns the k sets with the largest exact overlap with the query
// (after normalization), ranked by overlap descending with deterministic
// tie-breaking by key. Sets with zero overlap are never returned. k<=0
// returns all sets with positive overlap. Query tokens are looked up, not
// interned: transient queries never grow the dictionary.
func (ix *Index) TopK(rawQuery []string, k int) []Result {
	res, _ := ix.TopKCtx(context.Background(), rawQuery, k)
	return res
}

// TopKCtx is TopK with cooperative cancellation: the posting-list merge
// checks ctx between query tokens and returns (nil, ctx.Err()) once the
// context is cancelled. Uncancelled results are byte-identical to TopK.
func (ix *Index) TopKCtx(ctx context.Context, rawQuery []string, k int) ([]Result, error) {
	query := tokenize.ValueSet(rawQuery)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(query) == 0 || len(ix.sets) == 0 {
		return nil, ctx.Err()
	}
	tokens := make([]queryToken, 0, len(query))
	for _, tok := range query {
		id := ix.dict.Lookup(tok)
		if f := ix.liveFreq(id); f > 0 {
			tokens = append(tokens, queryToken{id: id, freq: f, tok: tok})
		}
	}
	return ix.topKTokens(ctx, tokens, k)
}

// TopKIDs answers a query given directly as deduplicated token IDs from the
// index's dictionary — the fast path for query columns that are themselves
// lake domains, whose IDs were interned at extraction.
func (ix *Index) TopKIDs(ids []uint32, k int) []Result {
	res, _ := ix.TopKIDsCtx(context.Background(), ids, k)
	return res
}

// TopKIDsCtx is TopKIDs with cooperative cancellation, mirroring TopKCtx.
func (ix *Index) TopKIDsCtx(ctx context.Context, ids []uint32, k int) ([]Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ids) == 0 || len(ix.sets) == 0 {
		return nil, ctx.Err()
	}
	tokens := make([]queryToken, 0, len(ids))
	for _, id := range ids {
		if f := ix.liveFreq(id); f > 0 {
			tok, _ := ix.dict.Token(id)
			tokens = append(tokens, queryToken{id: id, freq: f, tok: tok})
		}
	}
	return ix.topKTokens(ctx, tokens, k)
}

// topKTokens runs the frequency-ordered prefix-filtered merge. Tokens are
// processed rarest-first (ties broken by token string, keeping the merge
// order — and therefore the admitted candidate set — independent of ID
// assignment order): rare tokens discriminate candidates early, making the
// prefix filter bite sooner.
func (ix *Index) topKTokens(ctx context.Context, tokens []queryToken, k int) ([]Result, error) {
	if len(tokens) == 0 {
		return nil, ctx.Err()
	}
	done := ctx.Done()
	sort.Slice(tokens, func(a, b int) bool {
		if tokens[a].freq != tokens[b].freq {
			return tokens[a].freq < tokens[b].freq
		}
		return tokens[a].tok < tokens[b].tok
	})
	// cnt[si] is the running overlap of set si (0 = not a candidate; admitted
	// candidates always count at least 1). hist[c] counts candidates whose
	// running overlap is exactly c, so the k-th best overlap is read off the
	// histogram's suffix instead of re-sorting candidate counts.
	cnt := make([]int32, len(ix.sets))
	touched := make([]int32, 0, 64)
	hist := make([]int32, len(tokens)+1)
	maxCount := 0
	anyDead := ix.deadCount > 0
	for i, qt := range tokens {
		// One checkpoint per query token: a token's posting merge is O(sets),
		// short next to the whole query, so cancellation latency stays small
		// without a per-posting branch in the hot loop.
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		remaining := len(tokens) - i // including qt itself
		admitNew := true
		if k > 0 && len(touched) >= k {
			// A brand-new candidate can reach at most `remaining`, so skip
			// admission when it cannot displace the incumbent top k.
			if kthFromHist(hist, maxCount, k) >= remaining {
				admitNew = false
			}
		}
		// The token's live postings are the base-arena list (skipping
		// tombstoned sets) followed by the delta segment's (all live, and
		// all with larger set indices, so the merge stays ascending).
		base := ix.postings(qt.id)
		var deltaList []int32
		if ix.delta != nil {
			deltaList = ix.delta[qt.id]
		}
		for seg := 0; seg < 2; seg++ {
			list := base
			if seg == 1 {
				list = deltaList
			}
			for _, si := range list {
				if seg == 0 && anyDead && ix.dead[si] {
					continue
				}
				if c := cnt[si]; c > 0 {
					hist[c]--
					cnt[si] = c + 1
					hist[c+1]++
					if int(c+1) > maxCount {
						maxCount = int(c + 1)
					}
				} else if admitNew {
					cnt[si] = 1
					hist[1]++
					if maxCount < 1 {
						maxCount = 1
					}
					touched = append(touched, si)
				}
			}
		}
	}
	results := make([]Result, 0, len(touched))
	for _, si := range touched {
		results = append(results, Result{Set: &ix.sets[si], Overlap: int(cnt[si])})
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Overlap != results[b].Overlap {
			return results[a].Overlap > results[b].Overlap
		}
		return results[a].Set.key < results[b].Set.key
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// kthFromHist returns the k-th largest running overlap recorded in the
// count histogram (1-based); 0 when fewer than k candidates exist. The scan
// walks at most maxCount buckets — bounded by the query length.
func kthFromHist(hist []int32, maxCount, k int) int {
	cum := 0
	for c := maxCount; c >= 1; c-- {
		cum += int(hist[c])
		if cum >= k {
			return c
		}
	}
	return 0
}
