// Package josie implements exact top-k overlap set-similarity search in the
// style of JOSIE (Zhu, Deng, Nargesian, Miller — SIGMOD 2019), the other
// joinable-table discovery method cited by the paper. Unlike the LSH
// Ensemble (approximate, threshold-based), JOSIE answers exact top-k
// queries: the k indexed column domains with the largest overlap |Q∩X|.
//
// The implementation uses an inverted index from token to posting list and
// merges posting lists in ascending-frequency order with a prefix-filter
// style early termination: once fewer unread query tokens remain than the
// current k-th best overlap, no unseen candidate can reach the top k, so
// only already-seen candidates are updated. This mirrors JOSIE's core
// insight (adaptively stop creating new candidates) without its cost model.
package josie

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/par"
	"repro/internal/tokenize"
)

// Set is one indexed column domain.
type Set struct {
	Table      string
	Column     int
	ColumnName string
	Values     []string // normalized, deduplicated value set
}

// Key identifies the set as "table[col]".
func (s *Set) Key() string { return fmt.Sprintf("%s[%d]", s.Table, s.Column) }

// Index is an immutable inverted index over set members.
type Index struct {
	sets     []Set
	postings map[string][]int32
}

// Build constructs the inverted index. Set values are assumed normalized
// (use tokenize.ValueSet when extracting from tables); Build deduplicates
// defensively so posting lists never double-count a set.
//
// Posting lists are built concurrently: contiguous shards of sets each
// produce a local postings map, and the shards are merged in shard order,
// so every posting list stays sorted by ascending set index and the index
// is identical to a sequential build.
func Build(sets []Set) *Index {
	ix := &Index{
		sets:     append([]Set(nil), sets...),
		postings: make(map[string][]int32),
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > len(ix.sets) {
		shards = len(ix.sets)
	}
	if shards <= 1 {
		buildPostings(ix.sets, 0, ix.postings)
		return ix
	}
	local := make([]map[string][]int32, shards)
	par.For(shards, func(s int) {
		lo := s * len(ix.sets) / shards
		hi := (s + 1) * len(ix.sets) / shards
		m := make(map[string][]int32)
		buildPostings(ix.sets[lo:hi], int32(lo), m)
		local[s] = m
	})
	for _, m := range local {
		for tok, list := range m {
			ix.postings[tok] = append(ix.postings[tok], list...)
		}
	}
	return ix
}

// buildPostings adds the postings of sets (whose global indices start at
// base) into postings.
func buildPostings(sets []Set, base int32, postings map[string][]int32) {
	for i := range sets {
		seen := make(map[string]bool, len(sets[i].Values))
		for _, v := range sets[i].Values {
			if v == "" || seen[v] {
				continue
			}
			seen[v] = true
			postings[v] = append(postings[v], base+int32(i))
		}
	}
}

// NumSets reports how many sets are indexed.
func (ix *Index) NumSets() int { return len(ix.sets) }

// Result is one ranked answer.
type Result struct {
	Set     *Set
	Overlap int // exact |Q∩X|
}

// TopK returns the k sets with the largest exact overlap with the query
// (after normalization), ranked by overlap descending with deterministic
// tie-breaking by key. Sets with zero overlap are never returned. k<=0
// returns all sets with positive overlap.
func (ix *Index) TopK(rawQuery []string, k int) []Result {
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 || len(ix.sets) == 0 {
		return nil
	}
	// Keep only tokens with postings, processed shortest-list first: rare
	// tokens discriminate candidates early, making the prefix filter bite
	// sooner.
	tokens := query[:0:0]
	for _, tok := range query {
		if len(ix.postings[tok]) > 0 {
			tokens = append(tokens, tok)
		}
	}
	sort.SliceStable(tokens, func(a, b int) bool {
		la, lb := len(ix.postings[tokens[a]]), len(ix.postings[tokens[b]])
		if la != lb {
			return la < lb
		}
		return tokens[a] < tokens[b]
	})
	counts := make(map[int32]int)
	for i, tok := range tokens {
		remaining := len(tokens) - i // including tok itself
		admitNew := true
		if k > 0 && len(counts) >= k {
			// kth returns the k-th largest current count; a brand-new
			// candidate can reach at most `remaining`, so skip admission
			// when it cannot displace the incumbent top k.
			if kthLargest(counts, k) >= remaining {
				admitNew = false
			}
		}
		for _, si := range ix.postings[tok] {
			if _, seen := counts[si]; seen {
				counts[si]++
			} else if admitNew {
				counts[si] = 1
			}
		}
	}
	var results []Result
	for si, c := range counts {
		if c > 0 {
			results = append(results, Result{Set: &ix.sets[si], Overlap: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Overlap != results[b].Overlap {
			return results[a].Overlap > results[b].Overlap
		}
		return results[a].Set.Key() < results[b].Set.Key()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// kthLargest returns the k-th largest value in counts (1-based); if counts
// has fewer than k entries it returns 0.
func kthLargest(counts map[int32]int, k int) int {
	if len(counts) < k {
		return 0
	}
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	return vals[k-1]
}
