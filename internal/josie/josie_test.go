package josie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/tokenize"
)

func mkSet(table string, n, offset int) Set {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%05d", i+offset)
	}
	return Set{Table: table, Column: 0, Values: vals}
}

func TestSetKey(t *testing.T) {
	s := Set{Table: "x", Column: 2}
	if s.Key() != "x[2]" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestEmptyCases(t *testing.T) {
	ix := Build(nil)
	if ix.NumSets() != 0 {
		t.Error("empty index")
	}
	if ix.TopK([]string{"a"}, 5) != nil {
		t.Error("query on empty index must be nil")
	}
	ix = Build([]Set{mkSet("a", 5, 0)})
	if ix.TopK(nil, 5) != nil {
		t.Error("empty query must be nil")
	}
}

func TestExactOverlapRanking(t *testing.T) {
	sets := []Set{
		{Table: "A", Values: []string{"berlin", "barcelona", "boston"}},
		{Table: "B", Values: []string{"berlin", "boston", "tokyo"}},
		{Table: "C", Values: []string{"tokyo", "lyon"}},
	}
	ix := Build(sets)
	got := ix.TopK([]string{"Berlin", "Barcelona", "Boston", "New Delhi"}, 10)
	if len(got) != 2 {
		t.Fatalf("got %d results: %+v", len(got), got)
	}
	if got[0].Set.Table != "A" || got[0].Overlap != 3 {
		t.Errorf("first = %s/%d, want A/3", got[0].Set.Table, got[0].Overlap)
	}
	if got[1].Set.Table != "B" || got[1].Overlap != 2 {
		t.Errorf("second = %s/%d, want B/2", got[1].Set.Table, got[1].Overlap)
	}
}

func TestZeroOverlapExcluded(t *testing.T) {
	ix := Build([]Set{{Table: "C", Values: []string{"x"}}})
	if got := ix.TopK([]string{"y"}, 5); got != nil {
		t.Errorf("zero-overlap result returned: %+v", got)
	}
}

func TestDuplicateValuesNotDoubleCounted(t *testing.T) {
	ix := Build([]Set{{Table: "A", Values: []string{"a", "a", "b"}}})
	got := ix.TopK([]string{"a", "a", "b"}, 5)
	if len(got) != 1 || got[0].Overlap != 2 {
		t.Errorf("dup handling: %+v", got)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	sets := []Set{
		{Table: "B", Values: []string{"a", "b"}},
		{Table: "A", Values: []string{"a", "b"}},
	}
	got := Build(sets).TopK([]string{"a", "b"}, 0)
	if len(got) != 2 || got[0].Set.Table != "A" {
		t.Errorf("tie break: %+v", got)
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sets []Set
	for i := 0; i < 120; i++ {
		sets = append(sets, mkSet(fmt.Sprintf("t%03d", i), 10+rng.Intn(150), rng.Intn(300)))
	}
	ix := Build(sets)
	query := make([]string, 70)
	for i := range query {
		query[i] = fmt.Sprintf("v%05d", 150+i)
	}
	for _, k := range []int{1, 5, 20} {
		got := ix.TopK(query, k)
		want := bruteForce(sets, query, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Overlap != want[i].Overlap {
				t.Errorf("k=%d rank %d: overlap %d, want %d", k, i, got[i].Overlap, want[i].Overlap)
			}
		}
		// The returned set of overlaps must be exact, and when overlaps are
		// unique the identities must match too.
		for i := range got {
			if got[i].Overlap == want[i].Overlap && got[i].Set.Key() != want[i].Set.Key() {
				// same overlap, different key is fine only if a tie exists
				tie := false
				for j := range want {
					if want[j].Overlap == got[i].Overlap && want[j].Set.Key() == got[i].Set.Key() {
						tie = true
					}
				}
				if !tie {
					t.Errorf("k=%d rank %d: key %s not in brute-force ties", k, i, got[i].Set.Key())
				}
			}
		}
	}
}

func bruteForce(sets []Set, query []string, k int) []Result {
	var out []Result
	for i := range sets {
		ov := tokenize.Overlap(tokenize.ValueSet(query), sets[i].Values)
		if ov > 0 {
			out = append(out, Result{Set: &sets[i], Overlap: ov})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Overlap != out[b].Overlap {
			return out[a].Overlap > out[b].Overlap
		}
		return out[a].Set.Key() < out[b].Set.Key()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func TestKthFromHist(t *testing.T) {
	// Candidates with running overlaps {5, 3, 8} as a count histogram.
	hist := make([]int32, 10)
	hist[5], hist[3], hist[8] = 1, 1, 1
	if kthFromHist(hist, 8, 1) != 8 || kthFromHist(hist, 8, 2) != 5 || kthFromHist(hist, 8, 3) != 3 {
		t.Error("kthFromHist ordering broken")
	}
	if kthFromHist(hist, 8, 4) != 0 {
		t.Error("kth beyond candidate count must be 0")
	}
	// Multiple candidates sharing a count occupy one bucket.
	hist = make([]int32, 10)
	hist[4] = 3
	if kthFromHist(hist, 4, 2) != 4 {
		t.Error("shared counts must satisfy k within one bucket")
	}
}
