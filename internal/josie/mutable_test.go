package josie

import (
	"fmt"
	"math/rand"
	"testing"
)

// resultSig flattens ranked results into a comparable signature.
func resultSig(rs []Result) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s|%d;", r.Set.Key(), r.Overlap)
	}
	return s
}

// liveSets collects the non-tombstoned sets of a mutated index, stripped of
// build artifacts, in index order — the input a from-scratch Build over the
// surviving state would receive.
func liveSets(ix *Index) []Set {
	var out []Set
	for i := range ix.sets {
		if !ix.dead[i] {
			out = append(out, Set{Table: ix.sets[i].Table, Column: ix.sets[i].Column, Values: ix.sets[i].Values})
		}
	}
	return out
}

// randomPool fabricates n sets over a small shared vocabulary so overlaps
// are dense enough to exercise the prefix filter.
func randomPool(rng *rand.Rand, n int) []Set {
	pool := make([]Set, n)
	for i := range pool {
		size := 3 + rng.Intn(10)
		seen := map[string]bool{}
		var vals []string
		for len(vals) < size {
			v := fmt.Sprintf("tok%02d", rng.Intn(40))
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		pool[i] = Set{Table: fmt.Sprintf("t%02d", i), Column: rng.Intn(2), Values: vals}
	}
	return pool
}

// TestMutationMatchesRebuild drives randomized Add/Remove/Compact schedules
// and pins every TopK answer to a from-scratch Build over the live sets.
func TestMutationMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := randomPool(rng, 12)
		inLake := make([]bool, len(pool))
		start := 1 + rng.Intn(6)
		var initial []Set
		for i := 0; i < start; i++ {
			initial = append(initial, pool[i])
			inLake[i] = true
		}
		ix := Build(initial)
		for op := 0; op < 10; op++ {
			var out, in []int
			for i, ok := range inLake {
				if ok {
					in = append(in, i)
				} else {
					out = append(out, i)
				}
			}
			switch c := rng.Intn(4); {
			case c == 0 && len(out) > 0:
				i := out[rng.Intn(len(out))]
				ix.Add([]Set{pool[i]})
				inLake[i] = true
			case c == 1 && len(in) > 0:
				i := in[rng.Intn(len(in))]
				if got := ix.Remove([]string{pool[i].Table}); got != 1 {
					t.Fatalf("seed %d: Remove(%s) = %d sets", seed, pool[i].Table, got)
				}
				inLake[i] = false
			case c == 2:
				ix.Compact()
			}
			fresh := Build(liveSets(ix))
			for q := 0; q < 3; q++ {
				query := pool[rng.Intn(len(pool))].Values
				k := rng.Intn(4) // 0 = all
				got, want := ix.TopK(query, k), fresh.TopK(query, k)
				if resultSig(got) != resultSig(want) {
					t.Fatalf("seed %d op %d: TopK diverged from rebuild\n got %s\nwant %s", seed, op, resultSig(got), resultSig(want))
				}
			}
		}
	}
}

func TestRemoveTombstonesAndCounts(t *testing.T) {
	sets := []Set{
		{Table: "A", Values: []string{"x", "y", "z"}},
		{Table: "B", Values: []string{"x", "y"}},
		{Table: "C", Values: []string{"x"}},
	}
	ix := Build(sets)
	if n := ix.Remove([]string{"B", "nope"}); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	if ix.NumSets() != 2 {
		t.Errorf("NumSets = %d, want 2", ix.NumSets())
	}
	got := ix.TopK([]string{"x", "y"}, 0)
	if resultSig(got) != "A[0]|2;C[0]|1;" {
		t.Errorf("post-remove TopK = %s", resultSig(got))
	}
	// The tombstoned set's base postings are subtracted from frequency
	// accounting, not just skipped at merge time.
	if f := ix.liveFreq(ix.dict.Lookup("y")); f != 1 {
		t.Errorf("liveFreq(y) = %d, want 1", f)
	}
}

func TestAddRemoveReAdd(t *testing.T) {
	ix := Build([]Set{{Table: "A", Values: []string{"x", "y"}}})
	ix.Add([]Set{{Table: "B", Values: []string{"x", "q"}}})
	ix.Remove([]string{"B"})
	ix.Add([]Set{{Table: "B", Column: 0, Values: []string{"x", "r"}}})
	got := ix.TopK([]string{"x", "q", "r"}, 0)
	if resultSig(got) != "B[0]|2;A[0]|1;" {
		t.Errorf("re-added table results = %s", resultSig(got))
	}
}

func TestCompactFoldsDeltaAndTombstones(t *testing.T) {
	ix := Build([]Set{{Table: "A", Values: []string{"x", "y"}}, {Table: "B", Values: []string{"y", "z"}}})
	ix.Add([]Set{{Table: "C", Values: []string{"x", "z"}}})
	ix.Remove([]string{"A"})
	before := resultSig(ix.TopK([]string{"x", "y", "z"}, 0))
	ix.Compact()
	if ix.deltaPosts != 0 || ix.deadPosts != 0 || ix.deadCount != 0 || ix.delta != nil || ix.deadBase != nil {
		t.Errorf("compaction left residue: delta=%d dead=%d", ix.deltaPosts, ix.deadPosts)
	}
	if ix.baseSets != len(ix.sets) || len(ix.sets) != 2 {
		t.Errorf("compacted base = %d sets of %d", ix.baseSets, len(ix.sets))
	}
	if after := resultSig(ix.TopK([]string{"x", "y", "z"}, 0)); after != before {
		t.Errorf("compaction changed results: %s -> %s", before, after)
	}
}

func TestAutoCompaction(t *testing.T) {
	// Build a base big enough that the threshold math is exercised, then
	// push the delta past a quarter of the base.
	var base []Set
	for i := 0; i < 40; i++ {
		base = append(base, mkSet(fmt.Sprintf("base%02d", i), 40, i))
	}
	ix := Build(base)
	if len(ix.posts) != 40*40 {
		t.Fatalf("unexpected base size %d", len(ix.posts))
	}
	var added []Set
	for i := 0; i < 12; i++ {
		added = append(added, mkSet(fmt.Sprintf("new%02d", i), 40, i))
	}
	ix.Add(added) // 480 delta postings > 256 and > 1600/4
	if ix.deltaPosts != 0 || ix.baseSets != len(ix.sets) {
		t.Errorf("auto-compaction did not fire: deltaPosts=%d baseSets=%d sets=%d", ix.deltaPosts, ix.baseSets, len(ix.sets))
	}
}
