package kb

import (
	"sync"

	"repro/internal/table"
	"repro/internal/tokenize"
)

// Annotation codes. A code is the cached result of canonicalizing one cell
// value against a compiled KB:
//
//	codeUnset       — cache slot not computed yet (never returned);
//	CodeEmpty       — the value's canonical form is empty (or the cell is
//	                  null): skipped by every annotation consumer;
//	codeBase + id   — the canonical form's identity. id below
//	                  Compiled.NumStrings() is a compiled canonical-string
//	                  ID (deterministic); ids at or beyond it are extended
//	                  IDs the annotator assigns to canonicals outside the
//	                  KB, so entity-resolution blocking and SameEntity work
//	                  over plain integer equality for every value.
//
// Two values receive the same code exactly when their canonical forms
// (tokenize.Normalize plus one alias hop) are equal. Extended ID values are
// assignment-order-dependent; nothing may depend on code order, only code
// equality — the compiled annotation engine votes only with compiled IDs.
const (
	codeUnset uint32 = 0
	CodeEmpty uint32 = 1
	codeBase  uint32 = 2
)

// scopeBand partitions the extended-ID space between shared annotators and
// request-scoped ER annotators (ERScope): shared (root) annotators allocate
// bottom-up below scopeBandStart, ER scopes allocate top-down from the top
// of the uint32 range, so a numeric code can never denote one canonical in
// the root and a different one in a scope — the collision-freedom that lets
// a scope mix borrowed root codes with its own allocations and still compare
// every pair of codes for entity identity. Both sides panic rather than
// cross the boundary (mirroring the dictionaries' ID-space guards).
const (
	scopeBand      = 1 << 30
	scopeBandStart = (1 << 32) - scopeBand
)

// Annotator is a canonicalization cache over a compiled KB: each distinct
// value is normalized and alias-resolved once, then every later annotation
// (SANTOS column/pair votes, ER blocking and similarity) is an integer
// lookup. A lake owns one dict-backed annotator — codes are cached per
// interned value ID, so canonicalization happens once per distinct lake
// value across all index builds and queries; detached annotators (nil dict)
// cache per rendered string, which is what entity resolution over arbitrary
// integrated tables uses.
//
// An Annotator is safe for concurrent use. A nil-Compiled annotator is
// valid: every non-empty canonical receives an extended ID (canonical =
// normalized form, no aliases), which is exactly the nil-knowledge
// semantics of ER blocking.
type Annotator struct {
	ck   *Compiled   // may be nil
	dict *table.Dict // may be nil

	// parent, when set, marks this annotator as a transient query scope of
	// a shared (lake-wide) annotator: interned String values resolve
	// through (and populate) the parent's bounded per-value-ID cache, while
	// foreign strings are cached only in this scope's maps, which die with
	// it. See QueryScope.
	parent *Annotator

	// erScope, when set (parent is then the shared root), makes this
	// annotator a request-scoped entity-resolution cache: nothing is ever
	// written into the root, extended IDs allocate top-down from the top of
	// the uint32 range (nextDown), and canonical lookup is scope-first then
	// root, so codes are identity-comparable within the scope. See ERScope.
	erScope  bool
	nextDown uint32
	// rootByVal is an ER scope's read-only snapshot of the root's per-value-ID
	// code cache, taken once at ERScope() creation: lake-interned String
	// values whose codes the root had already computed resolve by one array
	// load, with no rendering, normalization or map traffic. Immutable after
	// creation, so it needs no locking and keeps scope answers independent of
	// concurrent root growth. Reusing these codes verbatim is sound because
	// computeCode publishes root.ext[n] before codeForInterned writes byVal
	// and root.ext is append-only — any rendering of the same canonical that
	// reaches the scope's slow path borrows the identical code from the root.
	rootByVal []uint32

	mu    sync.RWMutex
	byVal []uint32          // per dict value ID (index id-1): cached code
	raw   map[string]uint32 // rendered string -> cached code (non-dict path)
	ext   map[string]uint32 // canonical string -> extended code
}

// NewAnnotator returns an annotation cache over the compiled KB (nil means
// no knowledge: canonical forms are plain normalizations). When dict is
// non-nil, values interned in it are cached by integer ID.
func NewAnnotator(ck *Compiled, dict *table.Dict) *Annotator {
	a := &Annotator{
		ck:   ck,
		dict: dict,
		raw:  make(map[string]uint32),
		ext:  make(map[string]uint32),
	}
	if dict != nil {
		a.byVal = make([]uint32, dict.Len())
	}
	return a
}

// Compiled returns the compiled KB the annotator resolves against (nil for
// a knowledge-free annotator).
func (a *Annotator) Compiled() *Compiled { return a.ck }

// UpToDate reports whether the annotator still resolves against the current
// compiled form of k — the staleness guard shared by everything that caches
// an annotator beside a mutable KB (core.ResolveEntities, lake.Lake.Add).
// KB.Compiled() is memoized per mutation, so pointer equality detects any
// mutation since the annotator was created; a nil k matches only a
// knowledge-free annotator.
func (a *Annotator) UpToDate(k *KB) bool {
	if k == nil {
		return a.ck == nil
	}
	return a.ck == k.Compiled()
}

// QueryScope returns a transient annotator for resolving one foreign
// query's values: lake values (String cells interned in the shared dict)
// still resolve through the shared bounded cache, but every other string is
// cached only in the scope, so high-cardinality query traffic cannot grow
// the shared annotator's memory. Extended IDs assigned inside a scope are
// consistent within it but may numerically collide with the parent's
// extended IDs for different canonicals — callers must not compare codes
// across annotators (SANTOS annotation never does: extended codes only
// gate on CodeEmpty and never vote). Use the shared annotator itself, or a
// fresh NewAnnotator, where cross-value identity must span calls (ER).
func (a *Annotator) QueryScope() *Annotator {
	root := a
	if a.parent != nil {
		root = a.parent
	}
	return &Annotator{
		ck:     root.ck,
		dict:   root.dict,
		parent: root,
		raw:    make(map[string]uint32),
		ext:    make(map[string]uint32),
	}
}

// ERScope returns a request-scoped entity-resolution annotator over the
// same compiled KB: every cell of one request's tables resolves to a code
// through the scope, all codes are identity-comparable with each other (the
// er package's requirement — blocking and the SameCode similarity shortcut
// are integer comparisons), and the whole cache dies with the scope, so
// resolving many unrelated user tables through one long-lived pipeline no
// longer grows the shared annotator at all.
//
// Collision-free allocation against the shared namespace: codes borrowed
// from the compiled KB or the root's extended table are reused as-is, while
// canonicals unknown to both allocate top-down from the top of the uint32
// range (the band shared annotators never enter — see scopeBand), so a
// scope code and a root code are numerically equal only when they denote
// the same canonical. Lookup is scope-first, then compiled, then a one-time
// root borrow (root-first among the shared tiers): once the scope has
// answered a canonical it keeps answering it identically, even if the root
// learns the same canonical mid-request on behalf of other traffic — ER's
// intra-request code identity never depends on concurrent root growth.
//
// Unlike QueryScope, an ERScope never writes to the root (not even for lake
// values — a first-touch lake value would otherwise have to publish a code
// the scope might already have allocated differently); each distinct
// rendered value is normalized at most once per scope. Lake values the root
// has already canonicalized cost even less: the scope snapshots the root's
// per-value-ID cache at creation and serves those codes by array load (see
// rootByVal). Use it for request-bounded entity resolution; use QueryScope
// for SANTOS-style annotation where only CodeEmpty gating matters.
func (a *Annotator) ERScope() *Annotator {
	root := a
	if a.parent != nil {
		root = a.parent
	}
	s := &Annotator{
		ck:       root.ck,
		dict:     root.dict,
		parent:   root,
		erScope:  true,
		nextDown: 1<<32 - 1,
		raw:      make(map[string]uint32),
		ext:      make(map[string]uint32),
	}
	if root.dict != nil {
		root.mu.RLock()
		s.rootByVal = append([]uint32(nil), root.byVal...)
		root.mu.RUnlock()
	}
	return s
}

// scopeCode resolves a rendered value inside an ER scope. The raw-string
// cache short-circuits repeats; misses normalize once and walk the
// scope-first canonical chain under the scope lock.
func (a *Annotator) scopeCode(s string) uint32 {
	a.mu.RLock()
	c := a.raw[s]
	a.mu.RUnlock()
	if c != codeUnset {
		return c
	}
	n := tokenize.Normalize(s)
	if n == "" {
		a.mu.Lock()
		a.raw[s] = CodeEmpty
		a.mu.Unlock()
		return CodeEmpty
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.ext[n]
	if !ok {
		c = a.scopeCanonicalLocked(n)
		a.ext[n] = c
	}
	a.raw[s] = c
	return c
}

// scopeCanonicalLocked resolves a canonical the scope has not seen yet:
// compiled ID, then a root borrow, then a fresh top-down allocation. The
// scope lock must be held.
func (a *Annotator) scopeCanonicalLocked(n string) uint32 {
	if a.ck != nil {
		if id, ok := a.ck.lookup[n]; ok {
			return codeBase + id
		}
	}
	if root := a.parent; root != nil {
		root.mu.RLock()
		rc, ok := root.ext[n]
		root.mu.RUnlock()
		if ok {
			return rc
		}
	}
	c := a.nextDown
	if c < scopeBandStart {
		panic("kb: ER scope full: more than ~1B distinct canonical values in one request")
	}
	a.nextDown--
	return c
}

// numStrings returns the size of the compiled ID space (0 when knowledge-free).
func (a *Annotator) numStrings() uint32 {
	if a.ck == nil {
		return 0
	}
	return uint32(len(a.ck.strs))
}

// computeCode canonicalizes a rendered value and returns its code,
// assigning an extended ID when the canonical form is outside the KB.
func (a *Annotator) computeCode(s string) uint32 {
	n := tokenize.Normalize(s)
	if n == "" {
		return CodeEmpty
	}
	if a.ck != nil {
		if id, ok := a.ck.lookup[n]; ok {
			return codeBase + id
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if code, ok := a.ext[n]; ok {
		return code
	}
	next := uint64(codeBase) + uint64(a.numStrings()) + uint64(len(a.ext))
	if next >= scopeBandStart {
		panic("kb: annotator full: more than ~3B distinct canonical values (top band reserved for ER scopes)")
	}
	code := uint32(next)
	a.ext[n] = code
	return code
}

// codeAndID resolves a non-null value to its code; when the value is a
// String cell interned in the annotator's dict, its value ID is returned
// with interned=true (the caller can then dedupe by integer ID).
//
// The per-value-ID cache is valid only for String values: two String cells
// share an ID exactly when their renderings are equal, so one cached code
// serves both. Numeric kinds are excluded — the dict deliberately collides
// an Int with a numerically-equal integral Float (Value.Key semantics)
// even though their renderings, and therefore canonical forms, can differ
// (Int 10^15 renders "1000000000000000", Float 1e15 renders "1e+15") — so
// they resolve through the rendering-keyed cache instead.
func (a *Annotator) codeAndID(v table.Value) (code, id uint32, interned bool) {
	if a.erScope {
		if a.dict != nil && v.Kind() == table.String {
			if id, ok := a.dict.Lookup(v); ok && id != table.NullID && int(id) <= len(a.rootByVal) {
				if c := a.rootByVal[id-1]; c != codeUnset {
					return c, id, true
				}
			}
		}
		return a.scopeCode(v.String()), 0, false
	}
	if a.dict != nil && v.Kind() == table.String {
		if id, ok := a.dict.Lookup(v); ok && id != table.NullID {
			root := a
			if a.parent != nil {
				root = a.parent
			}
			return root.codeForInterned(v, id), id, true
		}
	}
	s := v.String()
	a.mu.RLock()
	c := a.raw[s]
	a.mu.RUnlock()
	if c != codeUnset {
		return c, 0, false
	}
	c = a.computeCode(s)
	a.mu.Lock()
	a.raw[s] = c
	a.mu.Unlock()
	return c, 0, false
}

// codeForInterned returns the cached code of an interned String value,
// computing and caching it on first sight.
func (a *Annotator) codeForInterned(v table.Value, id uint32) uint32 {
	a.mu.RLock()
	var c uint32
	if int(id) <= len(a.byVal) {
		c = a.byVal[id-1]
	}
	a.mu.RUnlock()
	if c != codeUnset {
		return c
	}
	c = a.computeCode(v.Str())
	a.mu.Lock()
	if int(id) > len(a.byVal) {
		n := a.dict.Len()
		if int(id) > n {
			n = int(id)
		}
		grown := make([]uint32, n)
		copy(grown, a.byVal)
		a.byVal = grown
	}
	a.byVal[id-1] = c
	a.mu.Unlock()
	return c
}

// Code returns the annotation code of a value (CodeEmpty for nulls).
func (a *Annotator) Code(v table.Value) uint32 {
	if v.IsNull() {
		return CodeEmpty
	}
	c, _, _ := a.codeAndID(v)
	return c
}

// CodeString returns the annotation code of a raw string value.
func (a *Annotator) CodeString(s string) uint32 {
	if a.erScope {
		return a.scopeCode(s)
	}
	a.mu.RLock()
	c := a.raw[s]
	a.mu.RUnlock()
	if c != codeUnset {
		return c
	}
	c = a.computeCode(s)
	a.mu.Lock()
	a.raw[s] = c
	a.mu.Unlock()
	return c
}

// CodeStrings resolves raw strings into dst (grown as needed) and returns
// it.
func (a *Annotator) CodeStrings(vals []string, dst []uint32) []uint32 {
	if cap(dst) < len(vals) {
		dst = make([]uint32, len(vals))
	}
	dst = dst[:len(vals)]
	for i, s := range vals {
		dst[i] = a.CodeString(s)
	}
	return dst
}

// SameCode reports whether two annotation codes denote the same non-empty
// canonical entity — the compiled KB.SameEntity.
func SameCode(a, b uint32) bool { return a > CodeEmpty && a == b }

// ColumnCodes is the per-column output of Annotator.ColumnCodes.
type ColumnCodes struct {
	// Rows holds one code per table row (CodeEmpty for nulls); nil when the
	// column is not mostly-textual and carries no entity semantics.
	Rows []uint32
	// Distinct holds the codes of the column's distinct rendered values in
	// first-seen order — the exact value sequence KB.AnnotateColumn sees
	// when fed Table.DistinctStrings.
	Distinct []uint32
}

// ColumnCodes resolves one table column into annotation codes: row-aligned
// codes for pair annotation and distinct-value codes for column annotation.
// Columns that are not mostly textual (MostlyTextual) return a zero
// ColumnCodes. Distinct values are deduplicated by rendered string, exactly
// as DistinctStrings dedupes: for all-string columns interned in the
// annotator's dict this is an integer-ID dedupe (equal String cells always
// share a value ID); mixed-kind columns and un-interned values fall back to
// a string set, so cross-kind rendering collisions ("82" the string vs 82
// the int) still collapse as the reference does.
func (a *Annotator) ColumnCodes(t *table.Table, c int, s *Scratch) ColumnCodes {
	nonNull, text := 0, 0
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			continue
		}
		nonNull++
		if v.Kind() == table.String {
			text++
		}
	}
	if nonNull == 0 || text*2 < nonNull {
		return ColumnCodes{}
	}
	allString := text == nonNull
	out := ColumnCodes{Rows: make([]uint32, len(t.Rows))}
	ep := bumpEpoch(&s.valSeenEpoch, s.seenVal)
	clear(s.seenStr)
	for r, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			out.Rows[r] = CodeEmpty
			continue
		}
		code, id, interned := a.codeAndID(v)
		out.Rows[r] = code
		if allString && interned {
			if int(id) > len(s.seenVal) {
				grown := make([]uint32, int(id)+int(id)/2)
				copy(grown, s.seenVal)
				s.seenVal = grown
			}
			if s.seenVal[id-1] == ep {
				continue
			}
			s.seenVal[id-1] = ep
		} else {
			str := v.String()
			if _, dup := s.seenStr[str]; dup {
				continue
			}
			s.seenStr[str] = struct{}{}
		}
		out.Distinct = append(out.Distinct, code)
	}
	return out
}
