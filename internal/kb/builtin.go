package kb

// Relationship labels used by the built-in demo KB. The synthesized KB
// (see Synthesize) generates its own "syn:*" labels.
const (
	RelLocatedIn     = "locatedIn"     // city -> country
	RelCapitalOf     = "capitalOf"     // city -> country
	RelApprovedBy    = "approvedBy"    // vaccine -> agency
	RelOriginCountry = "originCountry" // vaccine -> country
	RelRegulatorOf   = "regulatorOf"   // agency -> country
)

// Type labels used by the built-in demo KB.
const (
	TypePlace   = "place"
	TypeCity    = "city"
	TypeCountry = "country"
	TypeOrg     = "organization"
	TypeAgency  = "agency"
	TypeProduct = "product"
	TypeVaccine = "vaccine"
)

// cityCountry maps demo cities to their countries; it also seeds the
// synthetic data lake generator so that generated tables annotate
// correctly against this KB.
var cityCountry = map[string]string{
	"berlin": "germany", "munich": "germany", "hamburg": "germany", "frankfurt": "germany",
	"manchester": "england", "london": "england", "liverpool": "england", "birmingham": "england",
	"barcelona": "spain", "madrid": "spain", "valencia": "spain", "seville": "spain",
	"toronto": "canada", "vancouver": "canada", "montreal": "canada", "ottawa": "canada",
	"mexico city": "mexico", "guadalajara": "mexico", "monterrey": "mexico",
	"boston": "united states", "new york": "united states", "chicago": "united states",
	"los angeles": "united states", "seattle": "united states", "houston": "united states",
	"new delhi": "india", "mumbai": "india", "bangalore": "india", "chennai": "india",
	"paris": "france", "lyon": "france", "marseille": "france",
	"rome": "italy", "milan": "italy", "naples": "italy",
	"tokyo": "japan", "osaka": "japan", "kyoto": "japan",
	"sao paulo": "brazil", "rio de janeiro": "brazil", "brasilia": "brazil",
	"sydney": "australia", "melbourne": "australia", "canberra": "australia",
	"beijing": "china", "shanghai": "china", "shenzhen": "china",
	"moscow": "russia", "saint petersburg": "russia",
}

// capitals is the subset of demo cities that are national capitals.
var capitals = map[string]bool{
	"berlin": true, "london": true, "madrid": true, "ottawa": true,
	"mexico city": true, "new delhi": true, "paris": true, "rome": true,
	"tokyo": true, "brasilia": true, "canberra": true, "beijing": true,
	"moscow": true,
}

// vaccineFacts drives the vaccine/agency demo domain of Figures 7–8.
var vaccineFacts = []struct {
	vaccine  string
	approved []string // agencies
	origins  []string // countries
}{
	{"pfizer", []string{"fda", "ema", "mhra", "health canada"}, []string{"united states", "germany"}},
	{"jnj", []string{"fda", "ema"}, []string{"united states"}},
	{"moderna", []string{"fda", "ema", "health canada"}, []string{"united states"}},
	{"astrazeneca", []string{"ema", "mhra"}, []string{"england"}},
	{"sputnik v", []string{"cdsco"}, []string{"russia"}},
	{"sinovac", []string{"who"}, []string{"china"}},
	{"covaxin", []string{"cdsco"}, []string{"india"}},
	{"novavax", []string{"ema", "fda"}, []string{"united states"}},
}

// agencyCountry maps regulatory agencies to the country they regulate.
var agencyCountry = map[string]string{
	"fda":           "united states",
	"mhra":          "england",
	"health canada": "canada",
	"cofepris":      "mexico",
	"cdsco":         "india",
	"tga":           "australia",
	"ema":           "", // supranational: no single country
	"who":           "",
}

// Demo returns the curated knowledge base for the paper's demonstration
// domain: world cities and countries, COVID-19 vaccines, and regulatory
// agencies, with the aliases the paper's Example 5 depends on
// (J&J ≈ JnJ, USA ≈ United States).
func Demo() *KB {
	k := New()
	k.AddType(TypePlace, "")
	k.AddType(TypeCity, TypePlace)
	k.AddType(TypeCountry, TypePlace)
	k.AddType(TypeOrg, "")
	k.AddType(TypeAgency, TypeOrg)
	k.AddType(TypeProduct, "")
	k.AddType(TypeVaccine, TypeProduct)

	k.AddAlias("usa", "united states")
	k.AddAlias("u s a", "united states")
	k.AddAlias("us", "united states")
	k.AddAlias("united states of america", "united states")
	k.AddAlias("america", "united states")
	k.AddAlias("uk", "england")
	k.AddAlias("united kingdom", "england")
	k.AddAlias("great britain", "england")
	k.AddAlias("j&j", "jnj")
	k.AddAlias("j and j", "jnj")
	k.AddAlias("johnson johnson", "jnj")
	k.AddAlias("johnson and johnson", "jnj")
	k.AddAlias("janssen", "jnj")
	k.AddAlias("pfizer biontech", "pfizer")
	k.AddAlias("biontech", "pfizer")
	k.AddAlias("comirnaty", "pfizer")
	k.AddAlias("spikevax", "moderna")
	k.AddAlias("oxford astrazeneca", "astrazeneca")
	k.AddAlias("vaxzevria", "astrazeneca")
	k.AddAlias("coronavac", "sinovac")

	countries := make(map[string]bool)
	for city, country := range cityCountry {
		k.AddEntity(city, TypeCity)
		countries[country] = true
		k.AddRelation(city, RelLocatedIn, country)
		if capitals[city] {
			k.AddRelation(city, RelCapitalOf, country)
		}
	}
	for c := range countries {
		k.AddEntity(c, TypeCountry)
	}
	for _, f := range vaccineFacts {
		k.AddEntity(f.vaccine, TypeVaccine)
		for _, a := range f.approved {
			k.AddEntity(a, TypeAgency)
			k.AddRelation(f.vaccine, RelApprovedBy, a)
		}
		for _, c := range f.origins {
			k.AddEntity(c, TypeCountry)
			k.AddRelation(f.vaccine, RelOriginCountry, c)
		}
	}
	for a, c := range agencyCountry {
		k.AddEntity(a, TypeAgency)
		if c != "" {
			k.AddRelation(a, RelRegulatorOf, c)
		}
	}
	return k
}

// DemoCities returns the demo city names sorted deterministically; the
// synthetic lake generator samples from these so that generated tables are
// covered by the Demo KB.
func DemoCities() []string { return sortedKeys(cityCountry) }

// DemoCountryOf returns the country of a demo city ("" when unknown).
func DemoCountryOf(city string) string { return cityCountry[city] }

// DemoVaccines returns the demo vaccine names in declaration order.
func DemoVaccines() []string {
	out := make([]string, len(vaccineFacts))
	for i, f := range vaccineFacts {
		out[i] = f.vaccine
	}
	return out
}

// DemoAgencies returns the demo agency names sorted deterministically.
func DemoAgencies() []string { return sortedKeys(agencyCountry) }

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}
