package kb

import (
	"sort"
	"strings"
	"sync/atomic"
)

// This file compiles a KB into an immutable integer-ID engine. The string
// methods in kb.go remain the reference semantics; the compiled form is the
// hot path SANTOS index builds and entity resolution run on. Everything the
// compiled engine computes — column annotations, pair annotations, entity
// identity — is byte-identical to the string path, pinned by the randomized
// cross-check suite (crosscheck_test.go).
//
// ID spaces (all dense, deterministic — assigned in sorted-string order, so
// compiled IDs are stable across runs and safe to pack into index keys):
//
//   - canonical-string IDs: every canonical string the KB mentions (entity
//     keys, relation endpoints, alias targets);
//   - type IDs: every type name mentioned by the hierarchy or an entity;
//   - label IDs: every relationship label.
//
// Entity annotation codes (the values Annotator caches) extend the
// canonical-string ID space: see annotator.go.

// voteEntry is one step of an entity's vote program: when a value resolving
// to the entity votes, typ receives weight w. Entries are kept in the exact
// emission order of KB.AnnotateColumn (declared type, then its ancestors
// nearest-first, per declared type in order), unmerged, so the float64
// accumulation order — and therefore every vote total, bit for bit — matches
// the string reference.
type voteEntry struct {
	typ uint32
	w   float64
}

// Compiled is the frozen, integer-keyed form of a KB. It is immutable and
// safe for concurrent use.
type Compiled struct {
	strs   []string          // canonical strings; ID = index
	ids    map[string]uint32 // canonical string -> its own ID
	lookup map[string]uint32 // normalized known string (incl. alias sources) -> alias-resolved ID

	progs [][]voteEntry // per canonical-string ID; nil when not an entity

	types   []string // type names; typeID = index
	typeIDs map[string]uint32
	ancs    [][]uint32 // per typeID: ancestor chain, nearest first (cycle-guarded)

	labels   []string // relationship labels; labelID = index
	labelIDs map[string]uint32
	rels     map[uint64][]uint32 // subjID<<32|objID -> label IDs, insertion order
}

// compiledMemo pairs a compiled engine with the KB version it was built
// from, so Compiled() can invalidate on mutation.
type compiledMemo struct {
	version uint64
	c       *Compiled
}

// Compiled returns the compiled form of the KB, memoized until the next
// mutation (AddType/AddEntity/AddAlias/AddRelation bump an internal
// version). Concurrent callers may compile redundantly but always observe a
// consistent engine; mutating a KB concurrently with any use was never safe.
func (k *KB) Compiled() *Compiled {
	if k == nil {
		return nil
	}
	v := atomic.LoadUint64(&k.version)
	if m := k.compiled.Load(); m != nil && m.version == v {
		return m.c
	}
	c := Compile(k)
	k.compiled.Store(&compiledMemo{version: v, c: c})
	return c
}

// Compile freezes the KB into its integer-ID form. The KB must not be
// mutated concurrently.
func Compile(k *KB) *Compiled {
	c := &Compiled{
		ids:      make(map[string]uint32),
		typeIDs:  make(map[string]uint32),
		labelIDs: make(map[string]uint32),
		rels:     make(map[uint64][]uint32, len(k.relations)),
	}

	// Type universe: hierarchy keys and parents, plus every type an entity
	// declares (entities may reference types never declared via AddType).
	typeSet := make(map[string]bool)
	for t, p := range k.parent {
		typeSet[t] = true
		if p != "" {
			typeSet[p] = true
		}
	}
	for _, ts := range k.entityTypes {
		for _, t := range ts {
			typeSet[t] = true
		}
	}
	c.types = sortedBoolKeys(typeSet)
	for i, t := range c.types {
		c.typeIDs[t] = uint32(i)
	}
	// Ancestor chains reuse the reference walk, so the cycle guard — and
	// therefore the chain cut points — are identical by construction.
	c.ancs = make([][]uint32, len(c.types))
	for i, t := range c.types {
		for _, anc := range k.Ancestors(t) {
			c.ancs[i] = append(c.ancs[i], c.typeIDs[anc])
		}
	}

	// Label universe.
	labelSet := make(map[string]bool)
	for _, ls := range k.relations {
		for _, l := range ls {
			labelSet[l] = true
		}
	}
	c.labels = sortedBoolKeys(labelSet)
	for i, l := range c.labels {
		c.labelIDs[l] = uint32(i)
	}
	if uint64(len(c.labels)) >= 1<<31 || uint64(len(c.types)) >= 1<<31 {
		panic("kb: compile: more than 2^31 distinct labels or types")
	}

	// Canonical-string universe: entity keys, relation endpoints, alias
	// targets. All are already in canonical (normalized, alias-free at add
	// time) form; canonical strings never contain '\x1f' (Normalize maps it
	// to a space), so relation keys split unambiguously.
	strSet := make(map[string]bool, len(k.entityTypes))
	for e := range k.entityTypes {
		strSet[e] = true
	}
	for key := range k.relations {
		i := strings.IndexByte(key, '\x1f')
		strSet[key[:i]] = true
		strSet[key[i+1:]] = true
	}
	for _, target := range k.alias {
		strSet[target] = true
	}
	c.strs = sortedBoolKeys(strSet)
	if uint64(len(c.strs)) >= 1<<31 {
		panic("kb: compile: more than 2^31 distinct canonical strings")
	}
	for i, s := range c.strs {
		c.ids[s] = uint32(i)
	}

	// Resolution map: one alias hop, exactly as Canonical does — the alias
	// map applies even to strings that are themselves entities, and alias
	// chains are deliberately NOT chased (a→b with b→c resolves a to b).
	c.lookup = make(map[string]uint32, len(c.strs)+len(k.alias))
	for s, id := range c.ids {
		if t, ok := k.alias[s]; ok {
			c.lookup[s] = c.ids[t]
		} else {
			c.lookup[s] = id
		}
	}
	for a, t := range k.alias {
		if _, ok := c.lookup[a]; !ok {
			c.lookup[a] = c.ids[t]
		}
	}

	// Vote programs: flatten the per-value annotation work of
	// AnnotateColumn once per entity.
	c.progs = make([][]voteEntry, len(c.strs))
	for e, types := range k.entityTypes {
		prog := make([]voteEntry, 0, len(types)*2)
		for _, t := range types {
			ti := c.typeIDs[t]
			prog = append(prog, voteEntry{typ: ti, w: 1})
			w := 1.0
			for _, anc := range c.ancs[ti] {
				w *= ancestorDecay
				prog = append(prog, voteEntry{typ: anc, w: w})
			}
		}
		c.progs[c.ids[e]] = prog
	}

	// Relations: packed integer keys over the stored (not re-resolved)
	// canonical endpoints, mirroring the string map's keys.
	for key, ls := range k.relations {
		i := strings.IndexByte(key, '\x1f')
		pk := uint64(c.ids[key[:i]])<<32 | uint64(c.ids[key[i+1:]])
		lids := make([]uint32, len(ls))
		for j, l := range ls {
			lids[j] = c.labelIDs[l]
		}
		c.rels[pk] = lids
	}
	return c
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NumStrings reports the number of canonical strings in the compiled ID
// space (annotation codes at or beyond it are lake-local extended IDs).
func (c *Compiled) NumStrings() int { return len(c.strs) }

// NumTypes reports the number of compiled type names.
func (c *Compiled) NumTypes() int { return len(c.types) }

// NumLabels reports the number of compiled relationship labels.
func (c *Compiled) NumLabels() int { return len(c.labels) }

// TypeName returns the type name of a compiled type ID.
func (c *Compiled) TypeName(id uint32) string { return c.types[id] }

// TypeID returns the compiled ID of a type name.
func (c *Compiled) TypeID(name string) (uint32, bool) {
	id, ok := c.typeIDs[name]
	return id, ok
}

// AncestorIDs returns the compiled ancestor chain of a type ID, nearest
// first, with the same cycle guard as KB.Ancestors.
func (c *Compiled) AncestorIDs(id uint32) []uint32 { return c.ancs[id] }

// Scratch is the reusable working memory of the compiled annotation engine.
// All slices are sized to the compiled universe at creation; a Scratch is
// bound to the Compiled that created it and must not be shared between
// concurrent annotators (pool one per worker).
type Scratch struct {
	votes    []float64 // per typeID: accumulated vote weight (valid when seenType matches)
	support  []int32   // per typeID: values supporting the type
	counted  []uint32  // per typeID: valEpoch stamp (support counted for current value)
	seenType []uint32  // per typeID: colEpoch stamp (type touched this column)
	touched  []uint32  // typeIDs touched this column
	colEpoch uint32
	valEpoch uint32

	pairVotes   []int32  // per labelID<<1|inverse: vote count
	pairSeen    []uint32 // per labelID<<1|inverse: pairEpoch stamp
	pairTouched []uint32
	pairEpoch   uint32

	// Column-code dedupe state (see Annotator.ColumnCodes).
	seenStr      map[string]struct{}
	seenVal      []uint32 // per dict value ID: valSeenEpoch stamp
	valSeenEpoch uint32
}

// NewScratch allocates working memory sized to the compiled universe.
func (c *Compiled) NewScratch() *Scratch {
	nt, nl := len(c.types), len(c.labels)
	return &Scratch{
		votes:     make([]float64, nt),
		support:   make([]int32, nt),
		counted:   make([]uint32, nt),
		seenType:  make([]uint32, nt),
		pairVotes: make([]int32, 2*nl),
		pairSeen:  make([]uint32, 2*nl),
		seenStr:   make(map[string]struct{}),
	}
}

// bumpEpoch advances an epoch counter, clearing the stamp slice on the
// (astronomically rare) uint32 wrap so stale stamps can never collide.
func bumpEpoch(epoch *uint32, stamps []uint32) uint32 {
	*epoch++
	if *epoch == 0 {
		for i := range stamps {
			stamps[i] = 0
		}
		*epoch = 1
	}
	return *epoch
}

// AnnotateColumnCodes is the compiled AnnotateColumn: it assigns a semantic
// type to a column given the annotation codes of its distinct values (in
// the same first-seen order DistinctStrings produces; codes at or below
// CodeEmpty are skipped exactly as empty canonicals are). The second result
// is the winning compiled type ID (meaningless when Type is empty). The
// result is byte-identical to KB.AnnotateColumn over the same values.
func (c *Compiled) AnnotateColumnCodes(codes []uint32, s *Scratch) (ColumnAnnotation, uint32) {
	col := bumpEpoch(&s.colEpoch, s.seenType)
	touched := s.touched[:0]
	total := 0
	nstrs := uint32(len(c.strs))
	for _, code := range codes {
		if code <= CodeEmpty {
			continue
		}
		total++
		id := code - codeBase
		if id >= nstrs {
			continue // extended (non-KB) canonical: counts, never votes
		}
		prog := c.progs[id]
		if len(prog) == 0 {
			continue // known string, not an entity: counts, never votes
		}
		val := bumpEpoch(&s.valEpoch, s.counted)
		for _, e := range prog {
			if s.seenType[e.typ] != col {
				s.seenType[e.typ] = col
				s.votes[e.typ] = 0
				s.support[e.typ] = 0
				touched = append(touched, e.typ)
			}
			s.votes[e.typ] += e.w
			if s.counted[e.typ] != val {
				s.counted[e.typ] = val
				s.support[e.typ]++
			}
		}
	}
	s.touched = touched
	if total == 0 || len(touched) == 0 {
		return ColumnAnnotation{}, 0
	}
	// Max votes, ties broken by the lexicographically smallest type string —
	// the element the reference's sort puts first.
	best := touched[0]
	for _, ty := range touched[1:] {
		switch {
		case s.votes[ty] > s.votes[best]:
			best = ty
		case s.votes[ty] == s.votes[best] && c.types[ty] < c.types[best]:
			best = ty
		}
	}
	return ColumnAnnotation{
		Type:       c.types[best],
		Confidence: float64(s.support[best]) / float64(total),
	}, best
}

// AnnotatePairCodes is the compiled AnnotateColumnPair: it assigns a
// relationship label to an ordered column pair given row-aligned annotation
// codes (acodes[i] and bcodes[i] are row i's cells; rows where either code
// is CodeEmpty — null or empty-canonical — are skipped, as the reference
// skips them). The second result is the winning compiled label ID
// (meaningless when Label is empty). Byte-identical to
// KB.AnnotateColumnPair over the corresponding row pairs.
func (c *Compiled) AnnotatePairCodes(acodes, bcodes []uint32, s *Scratch) (PairAnnotation, uint32) {
	ep := bumpEpoch(&s.pairEpoch, s.pairSeen)
	touched := s.pairTouched[:0]
	total := 0
	nstrs := uint32(len(c.strs))
	vote := func(key uint32) {
		if s.pairSeen[key] != ep {
			s.pairSeen[key] = ep
			s.pairVotes[key] = 0
			touched = append(touched, key)
		}
		s.pairVotes[key]++
	}
	for i, ca := range acodes {
		cb := bcodes[i]
		if ca <= CodeEmpty || cb <= CodeEmpty {
			continue
		}
		total++
		ia, ib := ca-codeBase, cb-codeBase
		if ia >= nstrs || ib >= nstrs {
			continue // non-KB canonicals can never carry relations
		}
		for _, lid := range c.rels[uint64(ia)<<32|uint64(ib)] {
			vote(lid << 1)
		}
		for _, lid := range c.rels[uint64(ib)<<32|uint64(ia)] {
			vote(lid<<1 | 1)
		}
	}
	s.pairTouched = touched
	if total == 0 || len(touched) == 0 {
		return PairAnnotation{}, 0
	}
	// Max votes; ties by smaller label string, then forward before inverse —
	// the reference's sort order.
	best := touched[0]
	for _, k2 := range touched[1:] {
		vb, vk := s.pairVotes[best], s.pairVotes[k2]
		switch {
		case vk > vb:
			best = k2
		case vk < vb:
		case c.labels[k2>>1] < c.labels[best>>1]:
			best = k2
		case c.labels[k2>>1] > c.labels[best>>1]:
		case k2&1 == 0 && best&1 == 1:
			best = k2
		}
	}
	return PairAnnotation{
		Label:      c.labels[best>>1],
		Inverse:    best&1 == 1,
		Confidence: float64(s.pairVotes[best]) / float64(total),
	}, best >> 1
}
