package kb

// crosscheck_test pins the compiled annotation engine (compile.go,
// annotator.go) to the string reference implementations in kb.go: on
// randomized knowledge bases — including alias chains, aliases shadowing
// entities, delimiter-bearing labels and type names, undeclared types, and
// type-hierarchy cycles — AnnotateColumnCodes, AnnotatePairCodes and
// SameCode must agree byte-for-byte with AnnotateColumn, AnnotateColumnPair
// and SameEntity.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// randomKB builds a deliberately hostile knowledge base.
func randomKB(rng *rand.Rand) *KB {
	k := New()
	types := []string{"t0", "t1", "t2", "t3", "t4", "ty\x1fpe", "syn:a->b"}
	for i, t := range types {
		switch rng.Intn(3) {
		case 0:
			k.AddType(t, "")
		case 1:
			k.AddType(t, types[rng.Intn(len(types))]) // may self-parent or chain
		default:
			if i > 0 {
				k.AddType(t, types[rng.Intn(i)])
			} else {
				k.AddType(t, "")
			}
		}
	}
	// Guaranteed cycle.
	k.AddType("cycA", "cycB")
	k.AddType("cycB", "cycA")
	types = append(types, "cycA", "cycB")

	var entities []string
	for i := 0; i < 20; i++ {
		e := fmt.Sprintf("ent%02d", i)
		entities = append(entities, e)
		n := 1 + rng.Intn(3)
		ts := make([]string, n)
		for j := range ts {
			if rng.Intn(8) == 0 {
				ts[j] = "ghost" // type never declared in the hierarchy
			} else {
				ts[j] = types[rng.Intn(len(types))]
			}
		}
		k.AddEntity(e, ts...)
	}

	// Aliases: to entities, to other aliases (chains are NOT chased — one
	// hop only), to unknown strings; plus an alias shadowing an entity.
	aliases := []string{"al0", "al1", "al2", "al3", "al4"}
	for i, a := range aliases {
		switch rng.Intn(3) {
		case 0:
			k.AddAlias(a, entities[rng.Intn(len(entities))])
		case 1:
			k.AddAlias(a, aliases[(i+1+rng.Intn(len(aliases)-1))%len(aliases)])
		default:
			k.AddAlias(a, fmt.Sprintf("mystery%d", rng.Intn(4)))
		}
	}
	k.AddAlias(entities[3], entities[5])

	labels := []string{"rel0", "rel1", "r\x1fel", "syn:x->y"}
	pool := append(append([]string{}, entities...), "mystery0", "mystery1", "stranger", "al0", "al2")
	for i := 0; i < 40; i++ {
		k.AddRelation(pool[rng.Intn(len(pool))], labels[rng.Intn(len(labels))], pool[rng.Intn(len(pool))])
	}
	return k
}

// randomValues draws raw cell strings that stress every resolution path:
// entities, aliases, unknowns, punctuation-only (empty canonical), empties,
// numeric spellings that collide after normalization, and near-misses.
func randomValues(rng *rand.Rand, n int) []string {
	pool := []string{
		"ent00", "ent01", "ENT02", "Ent03", "ent05", "ent07", "ent19",
		"al0", "AL1", "al2", "al3", "al4",
		"mystery0", "mystery1", "stranger", "unheard of",
		"##", "", "  ", "-5", "5", "8.2", "8,2", "true",
		"ent00!", "ent0 0",
	}
	out := make([]string, n)
	for i := range out {
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}

func TestCrossCheckCompiledAnnotation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		rng := rand.New(rand.NewSource(seed))
		k := randomKB(rng)
		ck := k.Compiled()
		ann := NewAnnotator(ck, nil)
		s := ck.NewScratch()
		// Reuse one scratch across every call: epoch handling must keep
		// successive annotations independent.
		for round := 0; round < 30; round++ {
			vals := randomValues(rng, 1+rng.Intn(12))
			want := k.AnnotateColumn(vals)
			got, _ := ck.AnnotateColumnCodes(ann.CodeStrings(vals, nil), s)
			if got != want {
				t.Fatalf("seed=%d round=%d: AnnotateColumn mismatch\nvals: %q\ngot:  %+v\nwant: %+v", seed, round, vals, got, want)
			}

			a := randomValues(rng, 1+rng.Intn(12))
			b := randomValues(rng, len(a))
			pairs := make([][2]string, len(a))
			for i := range a {
				pairs[i] = [2]string{a[i], b[i]}
			}
			wantPair := k.AnnotateColumnPair(pairs)
			gotPair, _ := ck.AnnotatePairCodes(ann.CodeStrings(a, nil), ann.CodeStrings(b, nil), s)
			if gotPair != wantPair {
				t.Fatalf("seed=%d round=%d: AnnotateColumnPair mismatch\npairs: %q\ngot:  %+v\nwant: %+v", seed, round, pairs, gotPair, wantPair)
			}
		}
	}
}

func TestCrossCheckSameEntity(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		k := randomKB(rng)
		ann := NewAnnotator(k.Compiled(), nil)
		vals := randomValues(rng, 40)
		for i := 0; i < len(vals); i++ {
			for j := 0; j < len(vals); j++ {
				want := k.SameEntity(vals[i], vals[j])
				got := SameCode(ann.CodeString(vals[i]), ann.CodeString(vals[j]))
				if got != want {
					t.Fatalf("seed=%d: SameEntity(%q, %q) compiled=%v reference=%v",
						seed, vals[i], vals[j], got, want)
				}
			}
		}
	}
}

func TestCrossCheckDemoKB(t *testing.T) {
	k := Demo()
	ck := k.Compiled()
	ann := NewAnnotator(ck, nil)
	s := ck.NewScratch()
	cols := [][]string{
		{"Berlin", "Manchester", "Barcelona", "Nowhereville"},
		{"Berlin", "Boston", "Germany", "Spain"},
		{"USA", "U S A", "United States", "england", "##"},
		{"Pfizer", "pfizer biontech", "J&J", "Janssen", "Moderna", "Spikevax"},
	}
	for i, vals := range cols {
		want := k.AnnotateColumn(vals)
		got, _ := ck.AnnotateColumnCodes(ann.CodeStrings(vals, nil), s)
		if got != want {
			t.Errorf("col %d: got %+v, want %+v", i, got, want)
		}
	}
	a := []string{"Berlin", "Madrid", "Tokyo", "J&J"}
	b := []string{"Germany", "Spain", "Japan", "FDA"}
	pairs := make([][2]string, len(a))
	for i := range a {
		pairs[i] = [2]string{a[i], b[i]}
	}
	want := k.AnnotateColumnPair(pairs)
	got, _ := ck.AnnotatePairCodes(ann.CodeStrings(a, nil), ann.CodeStrings(b, nil), s)
	if got != want {
		t.Errorf("pair: got %+v, want %+v", got, want)
	}
	if !SameCode(ann.CodeString("J&J"), ann.CodeString("Janssen")) {
		t.Error("J&J and Janssen must share a code")
	}
	if SameCode(ann.CodeString("##"), ann.CodeString("!!")) {
		t.Error("empty canonicals must never be the same entity")
	}
}

func TestCompiledMemoInvalidation(t *testing.T) {
	k := Demo()
	c1 := k.Compiled()
	if k.Compiled() != c1 {
		t.Error("Compiled must be memoized while the KB is unchanged")
	}
	k.AddEntity("atlantis", TypeCity)
	c2 := k.Compiled()
	if c2 == c1 {
		t.Error("Compiled must recompile after a mutation")
	}
	ann := NewAnnotator(c2, nil)
	s := c2.NewScratch()
	vals := []string{"atlantis"}
	want := k.AnnotateColumn(vals)
	got, _ := c2.AnnotateColumnCodes(ann.CodeStrings(vals, nil), s)
	if got != want || got.Type != TypeCity {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

// TestAnnotatorNumericRenderings pins the dict-backed cache against the
// dict's deliberate Int/Float ID collision: an Int and a numerically-equal
// integral Float share a value ID but can render — and therefore
// canonicalize — differently, so their codes must come from the rendering,
// never from one shared ID slot.
func TestAnnotatorNumericRenderings(t *testing.T) {
	d := table.NewDict()
	iv := table.IntValue(1000000000000000)
	fv := table.FloatValue(1e15)
	if d.Intern(iv) != d.Intern(fv) {
		t.Fatal("test premise: dict must collide Int 10^15 with Float 1e15")
	}
	k := Demo()
	ann := NewAnnotator(k.Compiled(), d)
	// Resolve in both orders: neither value's cached code may leak to the
	// other.
	for _, first := range []table.Value{iv, fv} {
		a2 := NewAnnotator(k.Compiled(), d)
		a2.Code(first)
		ci, cf := a2.Code(iv), a2.Code(fv)
		want := k.SameEntity(iv.String(), fv.String())
		if SameCode(ci, cf) != want {
			t.Fatalf("first=%v: SameCode=%v, reference SameEntity(%q,%q)=%v",
				first, SameCode(ci, cf), iv.String(), fv.String(), want)
		}
	}
	// Same-rendering numerics still agree.
	if !SameCode(ann.Code(table.IntValue(82)), ann.Code(table.FloatValue(82))) {
		t.Error("Int 82 and Float 82 render identically and must share a code")
	}
}

// TestQueryScope checks that a query scope resolves interned lake values
// through the shared cache (identical codes) while keeping foreign strings
// internally consistent.
func TestQueryScope(t *testing.T) {
	d := table.NewDict()
	berlin := table.StringValue("Berlin")
	d.Intern(berlin)
	k := Demo()
	ann := NewAnnotator(k.Compiled(), d)
	scope := ann.QueryScope()
	if scope.Code(berlin) != ann.Code(berlin) {
		t.Error("scope must share codes for interned lake values")
	}
	if scope.QueryScope().parent != ann {
		t.Error("scoping a scope must re-root at the shared annotator")
	}
	// Foreign strings: consistent within the scope, reference-equivalent.
	a := scope.CodeString("utterly unknown thing")
	b := scope.CodeString("Utterly. Unknown; Thing")
	if !SameCode(a, b) {
		t.Error("scope must give equal canonicals equal codes")
	}
	if SameCode(a, scope.CodeString("different stranger")) {
		t.Error("scope must give distinct canonicals distinct codes")
	}
}
