package kb

import "sort"

// This file is the persistence surface of the KB: Dump flattens the
// knowledge base into a deterministic, order-preserving declaration list,
// and FromDump rebuilds an equivalent KB verbatim.
//
// Order preservation is load-bearing, not cosmetic. An entity's declared
// type list fixes the emission order of its compiled vote program, and vote
// emission order fixes the float64 accumulation order of every annotation
// confidence (see compile.go) — so Dump keeps each entity's types and each
// relation's labels in their original slice order, and FromDump writes them
// back untouched. The outer lists are sorted (by type, entity, alias,
// subject/object) so the same KB always dumps to the same bytes.
//
// FromDump must NOT rebuild through the public mutators: AddEntity
// normalizes and AddRelation re-canonicalizes its endpoints through the
// alias map, and a dumped KB already stores canonical keys — re-resolving
// them would chase a second alias hop (e.g. relation subject "b" with alias
// b→c would silently rewrite to "c"). FromDump therefore writes the
// internal maps directly.

// TypeDecl is one type-hierarchy declaration of a Dump.
type TypeDecl struct {
	Type   string
	Parent string // "" for a root type
}

// EntityDecl is one entity of a Dump, with its declared types in
// declaration order.
type EntityDecl struct {
	Entity string // normalized (as stored)
	Types  []string
}

// AliasDecl is one alias mapping of a Dump.
type AliasDecl struct {
	Alias     string // normalized
	Canonical string // normalized
}

// RelationDecl is one (subject, object) relationship of a Dump, with its
// labels in declaration order. Subject and object are stored canonical
// forms.
type RelationDecl struct {
	Subject string
	Object  string
	Labels  []string
}

// Dump is the flattened, deterministic form of a KB's content. Two KBs
// with equal content produce equal Dumps regardless of construction order
// (except for the order-bearing inner lists, which are part of the
// content: they fix vote accumulation order).
type Dump struct {
	Types     []TypeDecl
	Entities  []EntityDecl
	Aliases   []AliasDecl
	Relations []RelationDecl
}

// Dump flattens the KB. The KB must not be mutated concurrently.
func (k *KB) Dump() Dump {
	var d Dump
	for typ, parent := range k.parent {
		d.Types = append(d.Types, TypeDecl{Type: typ, Parent: parent})
	}
	sort.Slice(d.Types, func(a, b int) bool { return d.Types[a].Type < d.Types[b].Type })
	for e, ts := range k.entityTypes {
		d.Entities = append(d.Entities, EntityDecl{Entity: e, Types: ts})
	}
	sort.Slice(d.Entities, func(a, b int) bool { return d.Entities[a].Entity < d.Entities[b].Entity })
	for a, c := range k.alias {
		d.Aliases = append(d.Aliases, AliasDecl{Alias: a, Canonical: c})
	}
	sort.Slice(d.Aliases, func(a, b int) bool { return d.Aliases[a].Alias < d.Aliases[b].Alias })
	for key, labels := range k.relations {
		subj, obj := splitRelationKey(key)
		d.Relations = append(d.Relations, RelationDecl{Subject: subj, Object: obj, Labels: labels})
	}
	sort.Slice(d.Relations, func(a, b int) bool {
		if d.Relations[a].Subject != d.Relations[b].Subject {
			return d.Relations[a].Subject < d.Relations[b].Subject
		}
		return d.Relations[a].Object < d.Relations[b].Object
	})
	return d
}

// FromDump rebuilds a KB from a Dump, writing the stored (already
// normalized/canonicalized) strings back verbatim. The result compiles to
// an engine identical — including every dense ID assignment, which
// kb.Compile derives from sorted content — to the dumped KB's.
func FromDump(d Dump) *KB {
	k := New()
	for _, t := range d.Types {
		k.parent[t.Type] = t.Parent
	}
	for _, e := range d.Entities {
		k.entityTypes[e.Entity] = append([]string(nil), e.Types...)
	}
	for _, a := range d.Aliases {
		k.alias[a.Alias] = a.Canonical
	}
	for _, r := range d.Relations {
		k.relations[r.Subject+"\x1f"+r.Object] = append([]string(nil), r.Labels...)
	}
	return k
}

// splitRelationKey undoes the "subj\x1fobj" relation-map key encoding.
func splitRelationKey(key string) (subj, obj string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '\x1f' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
