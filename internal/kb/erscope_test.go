package kb

import (
	"testing"

	"repro/internal/table"
)

// scopeKB builds a tiny KB with an alias, for ERScope identity checks.
func scopeKB() *KB {
	k := New()
	k.AddEntity("united states", "country")
	k.AddAlias("usa", "united states")
	return k
}

func TestERScopeCodeIdentity(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()

	// Alias pairs resolve to one compiled code, exactly as in the root.
	if a, b := scope.CodeString("USA"), scope.CodeString("United States"); a != b {
		t.Fatalf("alias codes differ in scope: %d vs %d", a, b)
	}
	if got, want := scope.CodeString("USA"), root.CodeString("USA"); got != want {
		t.Fatalf("compiled code differs between scope (%d) and root (%d)", got, want)
	}

	// Foreign canonicals: same normalization shares a code, different ones
	// differ, and every scope-allocated code lives in the reserved top band.
	a, b := scope.CodeString("Zanzibar"), scope.CodeString("  zanzibar ")
	if a != b {
		t.Fatalf("equal-canonical foreign strings got distinct codes: %d vs %d", a, b)
	}
	if c := scope.CodeString("Elbonia"); c == a {
		t.Fatalf("distinct foreign canonicals share code %d", c)
	}
	if a < scopeBandStart {
		t.Fatalf("scope-allocated code %d below the scope band (%d)", a, scopeBandStart)
	}

	// Null and empty-canonical values are CodeEmpty, as everywhere.
	if got := scope.Code(table.NullValue()); got != CodeEmpty {
		t.Fatalf("null code = %d, want CodeEmpty", got)
	}
	if got := scope.CodeString("  "); got != CodeEmpty {
		t.Fatalf("blank code = %d, want CodeEmpty", got)
	}
}

func TestERScopeBorrowsRootExtendedIDs(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	rc := root.CodeString("Wakanda") // root extends bottom-up
	if rc >= scopeBandStart {
		t.Fatalf("root extended code %d inside the scope band", rc)
	}
	scope := root.ERScope()
	if got := scope.CodeString("wakanda"); got != rc {
		t.Fatalf("scope did not borrow root code: got %d, want %d", got, rc)
	}
}

func TestERScopeIdentityStableUnderRootGrowth(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()
	first := scope.CodeString("Wakanda") // unknown everywhere: scope allocates
	if first < scopeBandStart {
		t.Fatalf("expected a scope allocation, got %d", first)
	}
	// The root learns the same canonical mid-request on behalf of other
	// traffic; the scope must keep answering with its own code — one
	// canonical, one code, for the whole request.
	root.CodeString("wakanda")
	if got := scope.CodeString("  WAKANDA  "); got != first {
		t.Fatalf("scope identity drifted after root growth: got %d, want %d", got, first)
	}
}

func TestERScopeNeverWritesRoot(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()
	sc := scope.CodeString("Narnia")
	// The root has never seen the canonical, so it allocates its own
	// bottom-up extended ID — proof the scope published nothing.
	if rc := root.CodeString("Narnia"); rc == sc {
		t.Fatalf("root returned the scope's code %d — scope leaked into the shared namespace", rc)
	}
	root.mu.RLock()
	extLen := len(root.ext)
	root.mu.RUnlock()
	if extLen != 1 {
		t.Fatalf("root ext has %d entries, want exactly the root's own allocation", extLen)
	}
}

func TestERScopeDictBackedRootStaysBounded(t *testing.T) {
	dict := table.NewDict()
	v := table.StringValue("Quahog")
	dict.Intern(v)
	root := NewAnnotator(scopeKB().Compiled(), dict)
	scope := root.ERScope()
	// A lake value resolved through the scope must not populate the root's
	// per-value cache (the scope is the request's whole world)...
	c1 := scope.Code(v)
	root.mu.RLock()
	var cached uint32
	if len(root.byVal) > 0 {
		cached = root.byVal[0]
	}
	rootExt := len(root.ext)
	root.mu.RUnlock()
	if cached != codeUnset || rootExt != 0 {
		t.Fatalf("scope resolution touched the root (byVal=%d, ext=%d)", cached, rootExt)
	}
	// ...while repeats inside the scope stay cached and identical.
	if c2 := scope.Code(v); c2 != c1 {
		t.Fatalf("scope repeat changed code: %d vs %d", c2, c1)
	}
}
