package kb

import (
	"testing"

	"repro/internal/table"
)

// scopeKB builds a tiny KB with an alias, for ERScope identity checks.
func scopeKB() *KB {
	k := New()
	k.AddEntity("united states", "country")
	k.AddAlias("usa", "united states")
	return k
}

func TestERScopeCodeIdentity(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()

	// Alias pairs resolve to one compiled code, exactly as in the root.
	if a, b := scope.CodeString("USA"), scope.CodeString("United States"); a != b {
		t.Fatalf("alias codes differ in scope: %d vs %d", a, b)
	}
	if got, want := scope.CodeString("USA"), root.CodeString("USA"); got != want {
		t.Fatalf("compiled code differs between scope (%d) and root (%d)", got, want)
	}

	// Foreign canonicals: same normalization shares a code, different ones
	// differ, and every scope-allocated code lives in the reserved top band.
	a, b := scope.CodeString("Zanzibar"), scope.CodeString("  zanzibar ")
	if a != b {
		t.Fatalf("equal-canonical foreign strings got distinct codes: %d vs %d", a, b)
	}
	if c := scope.CodeString("Elbonia"); c == a {
		t.Fatalf("distinct foreign canonicals share code %d", c)
	}
	if a < scopeBandStart {
		t.Fatalf("scope-allocated code %d below the scope band (%d)", a, scopeBandStart)
	}

	// Null and empty-canonical values are CodeEmpty, as everywhere.
	if got := scope.Code(table.NullValue()); got != CodeEmpty {
		t.Fatalf("null code = %d, want CodeEmpty", got)
	}
	if got := scope.CodeString("  "); got != CodeEmpty {
		t.Fatalf("blank code = %d, want CodeEmpty", got)
	}
}

func TestERScopeBorrowsRootExtendedIDs(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	rc := root.CodeString("Wakanda") // root extends bottom-up
	if rc >= scopeBandStart {
		t.Fatalf("root extended code %d inside the scope band", rc)
	}
	scope := root.ERScope()
	if got := scope.CodeString("wakanda"); got != rc {
		t.Fatalf("scope did not borrow root code: got %d, want %d", got, rc)
	}
}

func TestERScopeIdentityStableUnderRootGrowth(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()
	first := scope.CodeString("Wakanda") // unknown everywhere: scope allocates
	if first < scopeBandStart {
		t.Fatalf("expected a scope allocation, got %d", first)
	}
	// The root learns the same canonical mid-request on behalf of other
	// traffic; the scope must keep answering with its own code — one
	// canonical, one code, for the whole request.
	root.CodeString("wakanda")
	if got := scope.CodeString("  WAKANDA  "); got != first {
		t.Fatalf("scope identity drifted after root growth: got %d, want %d", got, first)
	}
}

func TestERScopeNeverWritesRoot(t *testing.T) {
	root := NewAnnotator(scopeKB().Compiled(), nil)
	scope := root.ERScope()
	sc := scope.CodeString("Narnia")
	// The root has never seen the canonical, so it allocates its own
	// bottom-up extended ID — proof the scope published nothing.
	if rc := root.CodeString("Narnia"); rc == sc {
		t.Fatalf("root returned the scope's code %d — scope leaked into the shared namespace", rc)
	}
	root.mu.RLock()
	extLen := len(root.ext)
	root.mu.RUnlock()
	if extLen != 1 {
		t.Fatalf("root ext has %d entries, want exactly the root's own allocation", extLen)
	}
}

// TestERScopeSnapshotsRootByVal pins the creation-time snapshot of the
// root's per-value-ID cache: codes the root had already computed for lake
// values are served from the snapshot (still without writing the root), they
// agree with every other rendering of the same canonical resolved through
// the scope's slow path, and codes the root learns after the scope was
// created are invisible to it.
func TestERScopeSnapshotsRootByVal(t *testing.T) {
	dict := table.NewDict()
	known := table.StringValue("Gotham City")
	late := table.StringValue("Metropolis")
	dict.Intern(known)
	dict.Intern(late)
	root := NewAnnotator(scopeKB().Compiled(), dict)
	rc := root.Code(known) // populates root.byVal before the scope exists

	scope := root.ERScope()
	if got := scope.Code(known); got != rc {
		t.Fatalf("snapshot code = %d, want root's %d", got, rc)
	}
	// The borrowed code and the slow-path resolution of another rendering of
	// the same canonical must agree — the identity ER depends on.
	if got := scope.CodeString("  GOTHAM  city "); got != rc {
		t.Fatalf("slow-path rendering got %d, want snapshot code %d", got, rc)
	}
	// Serving from the snapshot wrote nothing into the root.
	root.mu.RLock()
	rootExt := len(root.ext)
	root.mu.RUnlock()
	if rootExt != 1 {
		t.Fatalf("root ext has %d entries after scope reads, want 1", rootExt)
	}

	// A value outside the snapshot (the root had not canonicalized it at
	// scope creation) takes the slow path and allocates in the scope band;
	// when the root learns the same canonical mid-request, the snapshot-miss
	// path must keep answering with the scope's code — a live root code never
	// displaces an identity the scope already answered.
	scopeLate := scope.Code(late)
	if scopeLate < scopeBandStart {
		t.Fatalf("snapshot-miss value got code %d, want a scope-band allocation", scopeLate)
	}
	root.Code(late)
	if again := scope.Code(late); again != scopeLate {
		t.Fatalf("scope identity drifted after root growth: %d vs %d", again, scopeLate)
	}
}

func TestERScopeDictBackedRootStaysBounded(t *testing.T) {
	dict := table.NewDict()
	v := table.StringValue("Quahog")
	dict.Intern(v)
	root := NewAnnotator(scopeKB().Compiled(), dict)
	scope := root.ERScope()
	// A lake value resolved through the scope must not populate the root's
	// per-value cache (the scope is the request's whole world)...
	c1 := scope.Code(v)
	root.mu.RLock()
	var cached uint32
	if len(root.byVal) > 0 {
		cached = root.byVal[0]
	}
	rootExt := len(root.ext)
	root.mu.RUnlock()
	if cached != codeUnset || rootExt != 0 {
		t.Fatalf("scope resolution touched the root (byVal=%d, ext=%d)", cached, rootExt)
	}
	// ...while repeats inside the scope stay cached and identical.
	if c2 := scope.Code(v); c2 != c1 {
		t.Fatalf("scope repeat changed code: %d vs %d", c2, c1)
	}
}
