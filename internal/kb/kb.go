// Package kb provides the knowledge base substrate for SANTOS-style
// semantic table discovery and for alias-aware entity resolution. The
// paper's SANTOS uses YAGO; this package implements the same consumer
// surface — entity→type lookup over a type hierarchy, entity aliases, and
// directed binary relationships — backed by (a) a curated built-in KB for
// the demo's COVID/geo/vaccine domain and (b) a KB *synthesized* from the
// data lake itself (SANTOS §4: the synthesized KB), so discovery still
// works on domains the curated KB does not cover.
package kb

import (
	"sort"
	"sync/atomic"

	"repro/internal/tokenize"
)

// KB is an in-memory knowledge base. All entity strings are stored and
// queried in normalized form (tokenize.Normalize); callers may pass raw
// cell values.
type KB struct {
	parent      map[string]string   // type -> parent type ("" when root)
	entityTypes map[string][]string // entity -> declared types
	alias       map[string]string   // alias -> canonical entity
	relations   map[string][]string // "subj\x1fobj" -> labels

	// version counts mutations; Compiled() memoizes the compiled engine per
	// version (see compile.go).
	version  uint64
	compiled atomic.Pointer[compiledMemo]
}

// New returns an empty knowledge base.
func New() *KB {
	return &KB{
		parent:      make(map[string]string),
		entityTypes: make(map[string][]string),
		alias:       make(map[string]string),
		relations:   make(map[string][]string),
	}
}

// AddType declares a type with an optional parent ("" for a root type).
func (k *KB) AddType(typ, parent string) {
	atomic.AddUint64(&k.version, 1)
	k.parent[typ] = parent
}

// AddEntity declares an entity with one or more types. Repeated calls
// accumulate types.
func (k *KB) AddEntity(entity string, types ...string) {
	atomic.AddUint64(&k.version, 1)
	e := tokenize.Normalize(entity)
	if e == "" {
		return
	}
	have := make(map[string]bool)
	for _, t := range k.entityTypes[e] {
		have[t] = true
	}
	for _, t := range types {
		if !have[t] {
			k.entityTypes[e] = append(k.entityTypes[e], t)
			have[t] = true
		}
	}
}

// AddAlias maps an alias to a canonical entity; lookups and relationship
// queries resolve aliases first. ("J&J" → "jnj", "USA" → "united states".)
func (k *KB) AddAlias(aliasName, canonical string) {
	atomic.AddUint64(&k.version, 1)
	a := tokenize.Normalize(aliasName)
	c := tokenize.Normalize(canonical)
	if a == "" || c == "" || a == c {
		return
	}
	k.alias[a] = c
}

// AddRelation records a directed relationship subject --label--> object.
func (k *KB) AddRelation(subject, label, object string) {
	atomic.AddUint64(&k.version, 1)
	s := k.Canonical(subject)
	o := k.Canonical(object)
	if s == "" || o == "" {
		return
	}
	key := s + "\x1f" + o
	for _, l := range k.relations[key] {
		if l == label {
			return
		}
	}
	k.relations[key] = append(k.relations[key], label)
}

// Canonical normalizes s and resolves one alias hop.
func (k *KB) Canonical(s string) string {
	n := tokenize.Normalize(s)
	if c, ok := k.alias[n]; ok {
		return c
	}
	return n
}

// SameEntity reports whether two raw strings resolve to the same canonical
// entity (used by alias-aware ER features).
func (k *KB) SameEntity(a, b string) bool {
	ca, cb := k.Canonical(a), k.Canonical(b)
	return ca != "" && ca == cb
}

// HasEntity reports whether the (canonicalized) string is a known entity.
func (k *KB) HasEntity(s string) bool {
	_, ok := k.entityTypes[k.Canonical(s)]
	return ok
}

// TypesOf returns the declared types of the entity (after alias
// resolution), without ancestor expansion. Nil when unknown.
func (k *KB) TypesOf(entity string) []string {
	return k.entityTypes[k.Canonical(entity)]
}

// Ancestors returns the chain of ancestor types of typ, nearest first.
func (k *KB) Ancestors(typ string) []string {
	var out []string
	seen := map[string]bool{typ: true}
	for cur := k.parent[typ]; cur != ""; cur = k.parent[cur] {
		if seen[cur] {
			break // defensive: cycle in a hand-built hierarchy
		}
		seen[cur] = true
		out = append(out, cur)
	}
	return out
}

// RelationsBetween returns the labels of relationships subject --label-->
// object, after alias resolution. Nil when none.
func (k *KB) RelationsBetween(subject, object string) []string {
	s, o := k.Canonical(subject), k.Canonical(object)
	if s == "" || o == "" {
		return nil
	}
	return k.relations[s+"\x1f"+o]
}

// ancestorDecay is the vote weight multiplier per hierarchy level when
// annotating columns: specific types win on homogeneous columns, while a
// column that genuinely mixes sibling types accumulates more weight on the
// shared supertype (with 0.75, an even two-sibling mix scores the parent
// 0.75·n against 0.5·n for either sibling).
const ancestorDecay = 0.75

// ColumnAnnotation is the semantic annotation of one column.
type ColumnAnnotation struct {
	Type       string  // winning type label ("" when nothing annotates)
	Confidence float64 // supporting fraction of non-empty values, in [0,1]
}

// AnnotateColumn assigns a semantic type to a column by majority vote over
// its values' entity types. Each value votes 1 for each declared type and a
// geometrically decayed weight for ancestors. Confidence is the fraction of
// non-empty values whose entity carries the winning type (directly or via
// ancestors).
func (k *KB) AnnotateColumn(values []string) ColumnAnnotation {
	votes := make(map[string]float64)
	support := make(map[string]int)
	total := 0
	for _, raw := range values {
		c := k.Canonical(raw)
		if c == "" {
			continue
		}
		total++
		counted := make(map[string]bool)
		for _, t := range k.entityTypes[c] {
			votes[t]++
			if !counted[t] {
				support[t]++
				counted[t] = true
			}
			w := 1.0
			for _, anc := range k.Ancestors(t) {
				w *= ancestorDecay
				votes[anc] += w
				if !counted[anc] {
					support[anc]++
					counted[anc] = true
				}
			}
		}
	}
	if total == 0 || len(votes) == 0 {
		return ColumnAnnotation{}
	}
	labels := make([]string, 0, len(votes))
	for t := range votes {
		labels = append(labels, t)
	}
	sort.Slice(labels, func(a, b int) bool {
		if votes[labels[a]] != votes[labels[b]] {
			return votes[labels[a]] > votes[labels[b]]
		}
		return labels[a] < labels[b]
	})
	best := labels[0]
	return ColumnAnnotation{Type: best, Confidence: float64(support[best]) / float64(total)}
}

// PairAnnotation is the semantic annotation of an ordered column pair.
type PairAnnotation struct {
	Label      string  // winning relationship label ("" when none)
	Inverse    bool    // true when the relationship holds object->subject
	Confidence float64 // supporting fraction of co-non-empty value pairs
}

// AnnotateColumnPair assigns a relationship label to the ordered column
// pair by majority vote over row-aligned value pairs: a pair (a,b) votes
// for every label of a--->b and (as inverse) of b--->a.
func (k *KB) AnnotateColumnPair(pairs [][2]string) PairAnnotation {
	type cand struct {
		label   string
		inverse bool
	}
	votes := make(map[cand]int)
	total := 0
	for _, p := range pairs {
		a, b := k.Canonical(p[0]), k.Canonical(p[1])
		if a == "" || b == "" {
			continue
		}
		total++
		for _, l := range k.relations[a+"\x1f"+b] {
			votes[cand{l, false}]++
		}
		for _, l := range k.relations[b+"\x1f"+a] {
			votes[cand{l, true}]++
		}
	}
	if total == 0 || len(votes) == 0 {
		return PairAnnotation{}
	}
	cands := make([]cand, 0, len(votes))
	for c := range votes {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if votes[cands[i]] != votes[cands[j]] {
			return votes[cands[i]] > votes[cands[j]]
		}
		if cands[i].label != cands[j].label {
			return cands[i].label < cands[j].label
		}
		return !cands[i].inverse && cands[j].inverse
	})
	best := cands[0]
	return PairAnnotation{
		Label:      best.label,
		Inverse:    best.inverse,
		Confidence: float64(votes[best]) / float64(total),
	}
}

// NumEntities reports the number of known entities.
func (k *KB) NumEntities() int { return len(k.entityTypes) }

// NumRelations reports the number of (subject,object) pairs with at least
// one relationship label.
func (k *KB) NumRelations() int { return len(k.relations) }
