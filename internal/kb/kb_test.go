package kb

import (
	"testing"
)

func TestAddEntityAndTypes(t *testing.T) {
	k := New()
	k.AddType("place", "")
	k.AddType("city", "place")
	k.AddEntity("Berlin", "city")
	k.AddEntity("berlin", "city") // repeated add must not duplicate
	ts := k.TypesOf("BERLIN")
	if len(ts) != 1 || ts[0] != "city" {
		t.Errorf("TypesOf = %v", ts)
	}
	if k.TypesOf("unknown") != nil {
		t.Error("unknown entity must have nil types")
	}
	if !k.HasEntity("Berlin") || k.HasEntity("Atlantis") {
		t.Error("HasEntity broken")
	}
	if k.NumEntities() != 1 {
		t.Errorf("NumEntities = %d", k.NumEntities())
	}
}

func TestAliasResolution(t *testing.T) {
	k := New()
	k.AddAlias("USA", "United States")
	if k.Canonical("usa") != "united states" {
		t.Errorf("Canonical(usa) = %q", k.Canonical("usa"))
	}
	if !k.SameEntity("USA", "United  States") {
		t.Error("SameEntity via alias broken")
	}
	if k.SameEntity("", "") {
		t.Error("empty strings must not be the same entity")
	}
	// Self-alias and empty alias are ignored.
	k.AddAlias("x", "x")
	if k.Canonical("x") != "x" {
		t.Error("self alias should be a no-op")
	}
}

func TestAncestors(t *testing.T) {
	k := New()
	k.AddType("thing", "")
	k.AddType("place", "thing")
	k.AddType("city", "place")
	anc := k.Ancestors("city")
	if len(anc) != 2 || anc[0] != "place" || anc[1] != "thing" {
		t.Errorf("Ancestors = %v", anc)
	}
	if len(k.Ancestors("thing")) != 0 {
		t.Error("root has no ancestors")
	}
	// Cycle defense.
	k.AddType("a", "b")
	k.AddType("b", "a")
	if len(k.Ancestors("a")) > 2 {
		t.Error("cycle must terminate")
	}
}

func TestRelations(t *testing.T) {
	k := New()
	k.AddAlias("j&j", "jnj")
	k.AddRelation("JnJ", "approvedBy", "FDA")
	k.AddRelation("jnj", "approvedBy", "fda") // duplicate
	rs := k.RelationsBetween("J&J", "FDA")
	if len(rs) != 1 || rs[0] != "approvedBy" {
		t.Errorf("RelationsBetween = %v", rs)
	}
	if k.RelationsBetween("FDA", "JnJ") != nil {
		t.Error("relations are directed")
	}
	if k.NumRelations() != 1 {
		t.Errorf("NumRelations = %d", k.NumRelations())
	}
}

func TestAnnotateColumn(t *testing.T) {
	k := Demo()
	ann := k.AnnotateColumn([]string{"Berlin", "Manchester", "Barcelona", "Nowhereville"})
	if ann.Type != TypeCity {
		t.Errorf("type = %q, want city", ann.Type)
	}
	if ann.Confidence != 0.75 {
		t.Errorf("confidence = %v, want 0.75", ann.Confidence)
	}
	if got := k.AnnotateColumn(nil); got.Type != "" || got.Confidence != 0 {
		t.Errorf("empty column annotation = %+v", got)
	}
	if got := k.AnnotateColumn([]string{"zzz", "qqq"}); got.Type != "" {
		t.Errorf("unknown values should not annotate, got %+v", got)
	}
}

func TestAnnotateColumnMixedPrefersSupertype(t *testing.T) {
	k := Demo()
	// Half cities, half countries: the shared supertype "place" accumulates
	// decayed votes from both and wins over either sibling.
	ann := k.AnnotateColumn([]string{"Berlin", "Boston", "Germany", "Spain"})
	if ann.Type != TypePlace {
		t.Errorf("mixed column type = %q, want place", ann.Type)
	}
	if ann.Confidence != 1 {
		t.Errorf("mixed column confidence = %v, want 1", ann.Confidence)
	}
}

func TestAnnotateColumnPair(t *testing.T) {
	k := Demo()
	pairs := [][2]string{
		{"Berlin", "Germany"},
		{"Manchester", "England"},
		{"Boston", "USA"}, // via alias
		{"Nowhereville", "Germany"},
	}
	ann := k.AnnotateColumnPair(pairs)
	if ann.Label != RelLocatedIn || ann.Inverse {
		t.Errorf("pair annotation = %+v, want locatedIn forward", ann)
	}
	if ann.Confidence != 0.75 {
		t.Errorf("pair confidence = %v, want 0.75", ann.Confidence)
	}
	// Reversed pair direction must be detected as inverse.
	rev := k.AnnotateColumnPair([][2]string{{"Germany", "Berlin"}, {"Spain", "Barcelona"}})
	if rev.Label != RelLocatedIn || !rev.Inverse {
		t.Errorf("reversed pair = %+v, want locatedIn inverse", rev)
	}
	if got := k.AnnotateColumnPair(nil); got.Label != "" {
		t.Errorf("empty pairs = %+v", got)
	}
}

func TestDemoKBFacts(t *testing.T) {
	k := Demo()
	// The Fig. 7/8 facts the demo depends on.
	if !k.SameEntity("J&J", "JnJ") {
		t.Error("J&J must alias JnJ")
	}
	if !k.SameEntity("USA", "United States") {
		t.Error("USA must alias United States")
	}
	if rs := k.RelationsBetween("jnj", "fda"); len(rs) == 0 {
		t.Error("JnJ approvedBy FDA missing")
	}
	if rs := k.RelationsBetween("pfizer", "united states"); len(rs) == 0 {
		t.Error("Pfizer originCountry United States missing")
	}
	// Cities of the Fig. 2 example.
	for _, city := range []string{"berlin", "manchester", "barcelona", "toronto", "mexico city", "boston", "new delhi"} {
		ts := k.TypesOf(city)
		found := false
		for _, tt := range ts {
			if tt == TypeCity {
				found = true
			}
		}
		if !found {
			t.Errorf("city %q missing from demo KB", city)
		}
	}
	if len(DemoCities()) < 40 {
		t.Errorf("demo KB has only %d cities", len(DemoCities()))
	}
	if DemoCountryOf("berlin") != "germany" {
		t.Error("DemoCountryOf broken")
	}
	if len(DemoVaccines()) < 5 || len(DemoAgencies()) < 5 {
		t.Error("demo vaccine/agency lists too small")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.AddType("city", "")
	a.AddEntity("berlin", "city")
	a.AddAlias("bln", "berlin")
	a.AddRelation("berlin", "in", "germany")
	b := New()
	b.AddType("syn:x", "")
	b.AddEntity("berlin", "syn:x")
	b.AddRelation("berlin", "syn:rel", "germany")
	m := a.Merge(b)
	ts := m.TypesOf("berlin")
	if len(ts) != 2 {
		t.Errorf("merged types = %v", ts)
	}
	if len(m.RelationsBetween("berlin", "germany")) != 2 {
		t.Errorf("merged relations = %v", m.RelationsBetween("berlin", "germany"))
	}
	if m.Canonical("bln") != "berlin" {
		t.Error("merge must keep aliases")
	}
}
