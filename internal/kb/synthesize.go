package kb

import (
	"fmt"
	"sort"

	"repro/internal/table"
	"repro/internal/tokenize"
)

// sortStrings sorts in place; split out so builtin.go stays import-light.
func sortStrings(xs []string) { sort.Strings(xs) }

// SynthesizeOptions configures KB synthesis from a data lake.
type SynthesizeOptions struct {
	// MinJaccard is the column-pair value-overlap threshold above which two
	// columns are considered to draw from the same synthesized type.
	// Default 0.3.
	MinJaccard float64
	// MaxPairsPerTable caps the relationship pairs recorded per column pair
	// (guards against quadratic blowup on very tall tables). Default 2000.
	MaxPairsPerTable int
}

func (o SynthesizeOptions) withDefaults() SynthesizeOptions {
	if o.MinJaccard <= 0 {
		o.MinJaccard = 0.3
	}
	if o.MaxPairsPerTable <= 0 {
		o.MaxPairsPerTable = 2000
	}
	return o
}

// Synthesize builds a knowledge base from the data lake itself, mirroring
// SANTOS's synthesized KB: when no curated KB covers a domain, the lake's
// own value co-occurrence structure supplies semantics.
//
//   - Columns that are mostly textual are clustered by value-set Jaccard
//     similarity (union-find over pairs above MinJaccard); each cluster
//     becomes a synthesized type "syn:<representative>".
//   - Every distinct value of a clustered column becomes an entity of the
//     cluster's type.
//   - For each table and each ordered pair of clustered columns, row-aligned
//     value pairs become relationships labeled
//     "syn:<typeA>-><typeB>", so two tables that relate the same kinds of
//     things in the same way share relationship labels.
func Synthesize(tables []*table.Table, opts SynthesizeOptions) *KB {
	opts = opts.withDefaults()
	type colRef struct {
		tableIdx int
		col      int
		values   []string // normalized distinct values
	}
	var cols []colRef
	for ti, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			if !MostlyTextual(t, c) {
				continue
			}
			vals := tokenize.ValueSet(t.DistinctStrings(c))
			if len(vals) == 0 {
				continue
			}
			cols = append(cols, colRef{tableIdx: ti, col: c, values: vals})
		}
	}
	// Union-find clustering of columns by value overlap.
	parent := make([]int, len(cols))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if tokenize.Jaccard(cols[i].values, cols[j].values) >= opts.MinJaccard {
				union(i, j)
			}
		}
	}
	// Name each cluster after its lexicographically-smallest member key so
	// synthesis is deterministic regardless of table order quirks.
	clusterName := make(map[int]string)
	for i := range cols {
		r := find(i)
		key := fmt.Sprintf("%s.%d", tables[cols[i].tableIdx].Name, cols[i].col)
		if cur, ok := clusterName[r]; !ok || key < cur {
			clusterName[r] = key
		}
	}
	typeOf := func(i int) string { return "syn:" + clusterName[find(i)] }

	k := New()
	colType := make(map[[2]int]string) // (tableIdx, col) -> type
	for i, cr := range cols {
		tn := typeOf(i)
		k.AddType(tn, "")
		colType[[2]int{cr.tableIdx, cr.col}] = tn
		for _, v := range cr.values {
			k.AddEntity(v, tn)
		}
	}
	// Relationship extraction from row co-occurrence.
	for ti, t := range tables {
		var clustered []int
		for c := 0; c < t.NumCols(); c++ {
			if _, ok := colType[[2]int{ti, c}]; ok {
				clustered = append(clustered, c)
			}
		}
		for ai := 0; ai < len(clustered); ai++ {
			for bi := ai + 1; bi < len(clustered); bi++ {
				a, b := clustered[ai], clustered[bi]
				label := "syn:" + colType[[2]int{ti, a}] + "->" + colType[[2]int{ti, b}]
				added := 0
				for _, row := range t.Rows {
					if added >= opts.MaxPairsPerTable {
						break
					}
					va, vb := row[a], row[b]
					if va.IsNull() || vb.IsNull() {
						continue
					}
					k.AddRelation(va.String(), label, vb.String())
					added++
				}
			}
		}
	}
	return k
}

// MostlyTextual reports whether at least half of the column's non-null
// cells are strings: numeric measure columns carry no entity semantics.
func MostlyTextual(t *table.Table, c int) bool {
	text, nonNull := 0, 0
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			continue
		}
		nonNull++
		if v.Kind() == table.String {
			text++
		}
	}
	return nonNull > 0 && text*2 >= nonNull
}

// Merge returns a KB containing everything in k plus everything in other;
// conflicting aliases keep k's entry. SANTOS runs with the curated KB
// merged with the synthesized one.
func (k *KB) Merge(other *KB) *KB {
	out := New()
	copyInto := func(src *KB) {
		for t, p := range src.parent {
			if _, ok := out.parent[t]; !ok {
				out.parent[t] = p
			}
		}
		for e, ts := range src.entityTypes {
			out.entityTypes[e] = appendUnique(out.entityTypes[e], ts...)
		}
		for a, c := range src.alias {
			if _, ok := out.alias[a]; !ok {
				out.alias[a] = c
			}
		}
		for key, ls := range src.relations {
			out.relations[key] = appendUnique(out.relations[key], ls...)
		}
	}
	copyInto(k)
	copyInto(other)
	return out
}

func appendUnique(dst []string, items ...string) []string {
	have := make(map[string]bool, len(dst))
	for _, d := range dst {
		have[d] = true
	}
	for _, it := range items {
		if !have[it] {
			dst = append(dst, it)
			have[it] = true
		}
	}
	return dst
}
