package kb

import (
	"testing"

	"repro/internal/table"
)

// lakeFixture builds two tables whose first columns share most values
// (same synthesized type) and a third unrelated table.
func lakeFixture() []*table.Table {
	a := table.New("a", "name", "team")
	a.MustAddRow(table.StringValue("alice"), table.StringValue("red"))
	a.MustAddRow(table.StringValue("bob"), table.StringValue("blue"))
	a.MustAddRow(table.StringValue("carol"), table.StringValue("red"))

	b := table.New("b", "person", "squad")
	b.MustAddRow(table.StringValue("alice"), table.StringValue("red"))
	b.MustAddRow(table.StringValue("bob"), table.StringValue("green"))
	b.MustAddRow(table.StringValue("dave"), table.StringValue("blue"))

	c := table.New("c", "product", "price")
	c.MustAddRow(table.StringValue("widget"), table.IntValue(5))
	c.MustAddRow(table.StringValue("gadget"), table.IntValue(9))
	return []*table.Table{a, b, c}
}

func TestSynthesizeClustersColumns(t *testing.T) {
	k := Synthesize(lakeFixture(), SynthesizeOptions{})
	// alice appears in both name columns; they overlap 2/4 = 0.5 >= 0.3 so
	// they share one synthesized type.
	ta := k.TypesOf("alice")
	tb := k.TypesOf("bob")
	if len(ta) != 1 || len(tb) != 1 || ta[0] != tb[0] {
		t.Errorf("alice types %v, bob types %v — expected one shared synthesized type", ta, tb)
	}
	// The product column does not overlap the name columns.
	tp := k.TypesOf("widget")
	if len(tp) != 1 || tp[0] == ta[0] {
		t.Errorf("widget types %v must differ from %v", tp, ta)
	}
}

func TestSynthesizeRelationships(t *testing.T) {
	k := Synthesize(lakeFixture(), SynthesizeOptions{})
	rs := k.RelationsBetween("alice", "red")
	if len(rs) == 0 {
		t.Fatal("expected synthesized relationship alice->red")
	}
	// Both tables relate the same synthesized types, so the labels from
	// table a and table b agree (that is the point of the synthesized KB).
	rs2 := k.RelationsBetween("bob", "green")
	if len(rs2) == 0 || rs[0] != rs2[0] {
		t.Errorf("labels differ across tables: %v vs %v", rs, rs2)
	}
}

func TestSynthesizeSkipsNumericColumns(t *testing.T) {
	k := Synthesize(lakeFixture(), SynthesizeOptions{})
	if k.HasEntity("5") || k.HasEntity("9") {
		t.Error("numeric measure column must not produce entities")
	}
}

func TestSynthesizeEmptyLake(t *testing.T) {
	k := Synthesize(nil, SynthesizeOptions{})
	if k.NumEntities() != 0 || k.NumRelations() != 0 {
		t.Error("empty lake must synthesize empty KB")
	}
}

func TestSynthesizePairCap(t *testing.T) {
	big := table.New("big", "x", "y")
	for i := 0; i < 100; i++ {
		big.MustAddRow(table.StringValue(stringN("x", i)), table.StringValue(stringN("y", i)))
	}
	k := Synthesize([]*table.Table{big}, SynthesizeOptions{MaxPairsPerTable: 10})
	if k.NumRelations() > 10 {
		t.Errorf("pair cap not applied: %d relations", k.NumRelations())
	}
}

func TestMostlyTextual(t *testing.T) {
	tb := table.New("t", "text", "num", "mixed", "empty")
	tb.MustAddRow(table.StringValue("a"), table.IntValue(1), table.StringValue("x"), table.NullValue())
	tb.MustAddRow(table.StringValue("b"), table.IntValue(2), table.IntValue(3), table.NullValue())
	if !MostlyTextual(tb, 0) {
		t.Error("text column must be textual")
	}
	if MostlyTextual(tb, 1) {
		t.Error("numeric column must not be textual")
	}
	if !MostlyTextual(tb, 2) {
		t.Error("half-text column counts as textual (>= half)")
	}
	if MostlyTextual(tb, 3) {
		t.Error("all-null column must not be textual")
	}
}

func stringN(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
