package lake

import (
	"repro/internal/kb"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Catalog is the mutable table-repository contract the pipeline and the
// serving layer consume: everything they need from a lake without naming
// its concrete shape. Both *Lake (one shard — itself) and *Sharded (N
// shards behind a routing hash) satisfy it, which is what lets
// `dialite serve -shards N` reuse every endpoint unchanged.
//
// Discovery never sees a Catalog: discoverers run against one concrete
// *Lake at a time, and discovery.RunAll scatters them over Shards() and
// merges the per-shard rankings deterministically. Epoch is the torn-read
// guard for that scatter — see Lake.Epoch for the seqlock protocol.
type Catalog interface {
	// Shards returns the concrete shard lakes discovery scatters over. A
	// plain Lake returns itself; the slice is fixed for the Catalog's
	// lifetime and must be treated as read-only — route mutations through
	// the Catalog's own Add/Remove so epoch accounting and (for Sharded)
	// catalog-order bookkeeping stay correct.
	Shards() []*Lake
	// Epoch is the seqlock-style mutation counter over the whole catalog:
	// even when settled, odd while a mutation is applying per-index deltas.
	Epoch() uint64

	// Catalog access.
	Get(name string) (*table.Table, bool)
	Tables() []*table.Table
	Size() int

	// Mutation.
	Add(tables ...*table.Table) error
	Remove(names ...string) error
	Compact()
	RefreshKB() bool

	// Shared state the integration/analysis stages read.
	Knowledge() *kb.KB
	Annotator() *kb.Annotator
	Dict() *table.Dict
	SketchEngine() sketch.Engine
}

var (
	_ Catalog = (*Lake)(nil)
	_ Catalog = (*Sharded)(nil)
)
