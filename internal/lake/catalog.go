package lake

import (
	"repro/internal/kb"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Catalog is the mutable table-repository contract the pipeline and the
// serving layer consume: everything they need from a lake without naming
// its concrete shape. *Lake (one shard — itself), *Sharded (N in-process
// shards behind a routing hash), and cluster.Coordinator (N remote
// `dialite serve` shard processes) all satisfy it, which is what lets
// `dialite serve -shards N` and `dialite serve -coordinator` reuse every
// endpoint unchanged.
//
// Discovery never sees a Catalog: discoverers run against one concrete
// *Lake at a time, and discovery.RunAll scatters them over the catalog's
// shards (in-process via an optional `Shards() []*Lake` method, remote via
// discovery.Remote) and merges the per-shard rankings deterministically.
// Epochs is the torn-read guard for that scatter — see Lake.Epoch for the
// seqlock protocol of each element.
type Catalog interface {
	// Epochs samples the catalog's mutation-epoch vector: one seqlock
	// counter per epoch domain (a plain Lake has one; Sharded has a
	// composite counter plus one per shard; a remote coordinator has a
	// local counter plus each shard process's vector). Every element is
	// even when that domain is settled and odd while a mutation is applying
	// per-index deltas. A multi-index reader that samples the vector before
	// and after a run and sees the same all-even vector (same length,
	// elementwise equal) is guaranteed the run was not torn; any other pair
	// means a retry. Implementations whose sampling can fail (a remote
	// shard down) must substitute a stable even sentinel for the
	// unreachable domain rather than erroring.
	Epochs() []uint64

	// Catalog access.
	Get(name string) (*table.Table, bool)
	Tables() []*table.Table
	Size() int

	// Mutation.
	Add(tables ...*table.Table) error
	Remove(names ...string) error
	Compact()
	RefreshKB() bool

	// Shared state the integration/analysis stages read.
	Knowledge() *kb.KB
	Annotator() *kb.Annotator
	Dict() *table.Dict
	SketchEngine() sketch.Engine
}

var (
	_ Catalog = (*Lake)(nil)
	_ Catalog = (*Sharded)(nil)
)
