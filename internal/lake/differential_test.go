// differential_test.go is the rebuild-equivalence harness pinning the
// mutable lake: randomized, metamorphic schedules of Add / Remove / Compact
// are interleaved with discovery queries, and after every mutation the
// lake must answer byte-identically — per-method ranked results (scores
// compared at full float64 precision) and the merged integration set — to
// a from-scratch lake.New over the surviving tables. This is the same
// cross-check discipline that pinned the PR 2 integer-index and PR 3
// compiled-KB refactors, applied to mutation schedules instead of layouts.
package lake_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/discovery"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/table"
)

// The differential vocabulary: enough shared values that joinable and
// unionable overlaps are dense, small enough that schedules stay fast.
var (
	diffCities    = []string{"berlin", "paris", "tokyo", "boston", "lyon", "madrid", "rome", "oslo", "cairo", "lima", "new york", "sydney"}
	diffCountries = []string{"germany", "france", "japan", "usa", "spain", "italy"}
)

// diffCountryOf maps each city to one fixed country so the city->country
// relationship annotates consistently across every generated table.
func diffCountryOf(city string) string {
	for i, c := range diffCities {
		if c == city {
			return diffCountries[i%len(diffCountries)]
		}
	}
	return diffCountries[0]
}

// diffKB is the curated knowledge base of the differential lake: city and
// country types under a shared root, a located-in relationship, and a few
// aliases. It is fixed per schedule — the harness exercises lake mutation,
// not KB mutation (TestAddAfterKBMutation covers that path).
func diffKB() *kb.KB {
	k := kb.New()
	k.AddType("place", "")
	k.AddType("city", "place")
	k.AddType("country", "place")
	for _, c := range diffCities {
		k.AddEntity(c, "city")
	}
	for _, c := range diffCountries {
		k.AddEntity(c, "country")
	}
	for _, c := range diffCities {
		k.AddRelation(c, "located in", diffCountryOf(c))
	}
	k.AddAlias("nyc", "new york")
	k.AddAlias("deutschland", "germany")
	return k
}

// diffTable fabricates one lake table: a city column, usually a country
// column (row-aligned with the cities, so SANTOS sees the located-in
// relationship), and a numeric measure column.
func diffTable(rng *rand.Rand, name string) *table.Table {
	withCountry := rng.Intn(4) != 0
	cols := []string{"city", "metric"}
	if withCountry {
		cols = []string{"city", "country", "metric"}
	}
	t := table.New(name, cols...)
	rows := 4 + rng.Intn(7)
	for r := 0; r < rows; r++ {
		city := diffCities[rng.Intn(len(diffCities))]
		metric := table.IntValue(int64(rng.Intn(1000)))
		if withCountry {
			t.MustAddRow(table.StringValue(city), table.StringValue(diffCountryOf(city)), metric)
		} else {
			t.MustAddRow(table.StringValue(city), metric)
		}
	}
	return t
}

var diffMethods = []string{"santos-union", "lsh-join", "josie-join", "syntactic-union"}

// discoverySig renders one full discovery run — every method's ranked
// results and the merged integration set — into a byte-comparable string.
// Scores are rendered from their exact float64 bits: "identical" means
// identical, not approximately equal.
func discoverySig(reg *discovery.Registry, l *lake.Lake, q *table.Table, col, k int) string {
	perMethod, set, err := discovery.Discover(context.Background(), reg, l, q, col, k, diffMethods)
	if err != nil {
		return "err:" + err.Error()
	}
	s := ""
	for _, m := range diffMethods {
		s += m + ":"
		for _, r := range perMethod[m] {
			s += fmt.Sprintf("%s|%016x|%d;", r.Table.Name, math.Float64bits(r.Score), r.Column)
		}
		s += "\n"
	}
	s += "set:"
	for _, t := range set {
		s += t.Name + ";"
	}
	return s
}

// indexSig renders raw index-level answers — JOSIE exact top-k, LSH
// Ensemble containment, SANTOS union search — for one query table. Unlike
// the discovery layer, which filters results through the lake catalog (and
// so would mask an index still returning a removed table as a ghost), this
// compares what the indexes themselves answer.
func indexSig(l *lake.Lake, q *table.Table, col int) string {
	vals := q.DistinctStrings(col)
	s := "josie:"
	for _, r := range l.Josie().TopK(vals, 5) {
		s += fmt.Sprintf("%s|%d;", r.Set.Key(), r.Overlap)
	}
	s += "\nlsh:"
	for _, r := range l.Join().Query(vals, 0.4, 0) {
		s += fmt.Sprintf("%s|%016x;", r.Domain.Key(), math.Float64bits(r.Containment))
	}
	s += "\nsantos:"
	if res, err := l.Santos().Query(q, col, 0); err != nil {
		s += "err:" + err.Error()
	} else {
		for _, r := range res {
			s += fmt.Sprintf("%s|%016x|%d;", r.Table.Name, math.Float64bits(r.Score), r.MatchedColumn)
		}
	}
	return s
}

// verifyRebuildEquivalence compares the mutated lake against a from-scratch
// lake.New over its surviving tables, across several query tables (both
// lake members, which hit the cached-domain fast paths, and foreign tables,
// which exercise per-query extraction) — at the discovery level (per-method
// rankings and the integration set) and at the raw index level.
func verifyRebuildEquivalence(t *testing.T, l *lake.Lake, opts lake.Options, pool []*table.Table, rng *rand.Rand, ctx string) {
	t.Helper()
	fresh, err := lake.New(l.Tables(), opts)
	if err != nil {
		t.Fatalf("%s: rebuild failed: %v", ctx, err)
	}
	reg := discovery.NewRegistry()
	for q := 0; q < 3; q++ {
		query := pool[rng.Intn(len(pool))]
		col := 0
		if rng.Intn(3) == 0 {
			col = rng.Intn(query.NumCols())
		}
		k := rng.Intn(3) * 3 // 0 = all
		got := discoverySig(reg, l, query, col, k)
		want := discoverySig(reg, fresh, query, col, k)
		if got != want {
			t.Fatalf("%s: query %q col %d k %d diverged from rebuild\n got:\n%s\nwant:\n%s", ctx, query.Name, col, k, got, want)
		}
		if got, want := indexSig(l, query, col), indexSig(fresh, query, col); got != want {
			t.Fatalf("%s: raw index answers for %q col %d diverged from rebuild\n got:\n%s\nwant:\n%s", ctx, query.Name, col, got, want)
		}
	}
}

// TestDifferentialRebuildEquivalence drives 200 randomized mutation
// schedules. Each schedule starts from a random subset of a 12-table pool
// and interleaves Add (including re-adding previously removed tables),
// Remove, explicit Compact, and discovery queries; after every mutation the
// lake is checked for byte-identical discovery behavior against a fresh
// build (cheap spot-check mid-schedule, full verification at the end).
func TestDifferentialRebuildEquivalence(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	knowledge := diffKB()
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			opts := lake.Options{Knowledge: knowledge}
			pool := make([]*table.Table, 12)
			for i := range pool {
				pool[i] = diffTable(rng, fmt.Sprintf("p%02d", i))
			}
			inLake := make([]bool, len(pool))
			var initial []*table.Table
			for i := 0; i < 2+rng.Intn(6); i++ {
				initial = append(initial, pool[i])
				inLake[i] = true
			}
			l, err := lake.New(initial, opts)
			if err != nil {
				t.Fatal(err)
			}
			ops := 8
			for op := 0; op < ops; op++ {
				var in, out []int
				for i, ok := range inLake {
					if ok {
						in = append(in, i)
					} else {
						out = append(out, i)
					}
				}
				switch c := rng.Intn(8); {
				case c <= 2 && len(out) > 0: // add 1-2 tables
					n := 1 + rng.Intn(2)
					var batch []*table.Table
					for _, i := range out[:min(n, len(out))] {
						batch = append(batch, pool[i])
						inLake[i] = true
					}
					if err := l.Add(batch...); err != nil {
						t.Fatalf("op %d: Add: %v", op, err)
					}
				case c <= 5 && len(in) > 0: // remove one table
					i := in[rng.Intn(len(in))]
					if err := l.Remove(pool[i].Name); err != nil {
						t.Fatalf("op %d: Remove: %v", op, err)
					}
					inLake[i] = false
				case c == 6:
					l.Compact()
				default: // mid-churn query against the mutated lake only
					reg := discovery.NewRegistry()
					q := pool[rng.Intn(len(pool))]
					_ = discoverySig(reg, l, q, 0, 5)
				}
				if op == ops/2 {
					verifyRebuildEquivalence(t, l, opts, pool, rng, fmt.Sprintf("seed %d op %d", seed, op))
				}
			}
			verifyRebuildEquivalence(t, l, opts, pool, rng, fmt.Sprintf("seed %d final", seed))
			// Catalog invariants: membership matches the schedule's view.
			for i, ok := range inLake {
				name := pool[i].Name
				if _, got := l.Get(name); got != ok {
					t.Errorf("Get(%s) = %v, want %v", name, got, ok)
				}
			}
		})
	}
}
