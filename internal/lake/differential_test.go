// differential_test.go is the rebuild-equivalence harness pinning the
// mutable lake: randomized, metamorphic schedules of Add / Remove / Compact
// are interleaved with discovery queries, and after every mutation the
// lake must answer byte-identically — per-method ranked results (scores
// compared at full float64 precision) and the merged integration set — to
// a from-scratch lake.New over the surviving tables. This is the same
// cross-check discipline that pinned the PR 2 integer-index and PR 3
// compiled-KB refactors, applied to mutation schedules instead of layouts.
//
// The vocabulary, table generator and signature renderers live in
// internal/difftest (DiffKB, DiffTable, DiscoverySig, IndexSig) so the
// persistence crash-recovery matrix can reuse them against recovered lakes.
package lake_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/table"
)

// verifyRebuildEquivalence compares the mutated lake against a from-scratch
// lake.New over its surviving tables, across several query tables (both
// lake members, which hit the cached-domain fast paths, and foreign tables,
// which exercise per-query extraction) — at the discovery level (per-method
// rankings and the integration set) and at the raw index level.
func verifyRebuildEquivalence(t *testing.T, l *lake.Lake, opts lake.Options, pool []*table.Table, rng *rand.Rand, ctx string) {
	t.Helper()
	fresh, err := lake.New(l.Tables(), opts)
	if err != nil {
		t.Fatalf("%s: rebuild failed: %v", ctx, err)
	}
	reg := discovery.NewRegistry()
	for q := 0; q < 3; q++ {
		query := pool[rng.Intn(len(pool))]
		col := 0
		if rng.Intn(3) == 0 {
			col = rng.Intn(query.NumCols())
		}
		k := rng.Intn(3) * 3 // 0 = all
		got := difftest.DiscoverySig(reg, l, query, col, k)
		want := difftest.DiscoverySig(reg, fresh, query, col, k)
		if got != want {
			t.Fatalf("%s: query %q col %d k %d diverged from rebuild\n got:\n%s\nwant:\n%s", ctx, query.Name, col, k, got, want)
		}
		if got, want := difftest.IndexSig(l, query, col), difftest.IndexSig(fresh, query, col); got != want {
			t.Fatalf("%s: raw index answers for %q col %d diverged from rebuild\n got:\n%s\nwant:\n%s", ctx, query.Name, col, got, want)
		}
	}
}

// TestDifferentialRebuildEquivalence drives 200 randomized mutation
// schedules. Each schedule starts from a random subset of a 12-table pool
// and interleaves Add (including re-adding previously removed tables),
// Remove, explicit Compact, and discovery queries; after every mutation the
// lake is checked for byte-identical discovery behavior against a fresh
// build (cheap spot-check mid-schedule, full verification at the end).
func TestDifferentialRebuildEquivalence(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	knowledge := difftest.DiffKB()
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			opts := lake.Options{Knowledge: knowledge}
			pool := make([]*table.Table, 12)
			for i := range pool {
				pool[i] = difftest.DiffTable(rng, fmt.Sprintf("p%02d", i))
			}
			inLake := make([]bool, len(pool))
			var initial []*table.Table
			for i := 0; i < 2+rng.Intn(6); i++ {
				initial = append(initial, pool[i])
				inLake[i] = true
			}
			l, err := lake.New(initial, opts)
			if err != nil {
				t.Fatal(err)
			}
			ops := 8
			for op := 0; op < ops; op++ {
				var in, out []int
				for i, ok := range inLake {
					if ok {
						in = append(in, i)
					} else {
						out = append(out, i)
					}
				}
				switch c := rng.Intn(8); {
				case c <= 2 && len(out) > 0: // add 1-2 tables
					n := 1 + rng.Intn(2)
					var batch []*table.Table
					for _, i := range out[:min(n, len(out))] {
						batch = append(batch, pool[i])
						inLake[i] = true
					}
					if err := l.Add(batch...); err != nil {
						t.Fatalf("op %d: Add: %v", op, err)
					}
				case c <= 5 && len(in) > 0: // remove one table
					i := in[rng.Intn(len(in))]
					if err := l.Remove(pool[i].Name); err != nil {
						t.Fatalf("op %d: Remove: %v", op, err)
					}
					inLake[i] = false
				case c == 6:
					l.Compact()
				default: // mid-churn query against the mutated lake only
					reg := discovery.NewRegistry()
					q := pool[rng.Intn(len(pool))]
					_ = difftest.DiscoverySig(reg, l, q, 0, 5)
				}
				if op == ops/2 {
					verifyRebuildEquivalence(t, l, opts, pool, rng, fmt.Sprintf("seed %d op %d", seed, op))
				}
			}
			verifyRebuildEquivalence(t, l, opts, pool, rng, fmt.Sprintf("seed %d final", seed))
			// Catalog invariants: membership matches the schedule's view.
			for i, ok := range inLake {
				name := pool[i].Name
				if _, got := l.Get(name); got != ok {
					t.Errorf("Get(%s) = %v, want %v", name, got, ok)
				}
			}
		})
	}
}
