// Package lake models the data lake (table repository) DIALITE discovers
// over. Mirroring the demo's setup — "the indexes used in SANTOS and LSH
// Ensemble are built offline, i.e., they are already available for the
// user" — constructing a Lake preprocesses every table once: semantic
// annotation for SANTOS, MinHash/LSH for LSH Ensemble, an inverted index
// for JOSIE-style search, and (optionally) a knowledge base synthesized
// from the lake itself merged into the curated one.
package lake

import (
	"fmt"

	"repro/internal/josie"
	"repro/internal/kb"
	"repro/internal/lshensemble"
	"repro/internal/santos"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Options configures lake preprocessing.
type Options struct {
	// Knowledge is the curated KB (kb.Demo() for the demonstration); nil
	// means none.
	Knowledge *kb.KB
	// SynthesizeKB additionally synthesizes a KB from the lake tables and
	// merges it with Knowledge, as SANTOS does for uncovered domains.
	SynthesizeKB bool
	// LSH configures the LSH Ensemble index.
	LSH lshensemble.Options
}

// Lake is an immutable preprocessed table repository.
type Lake struct {
	tables    []*table.Table
	byName    map[string]*table.Table
	knowledge *kb.KB
	santosIx  *santos.Index
	joinIx    *lshensemble.Index
	josieIx   *josie.Index
	domains   []lshensemble.Domain
}

// New preprocesses the given tables into a queryable lake. Duplicate table
// names are rejected: discovery results are reported by name.
func New(tables []*table.Table, opts Options) (*Lake, error) {
	l := &Lake{byName: make(map[string]*table.Table, len(tables))}
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("lake: nil table")
		}
		if t.Name == "" {
			return nil, fmt.Errorf("lake: table with empty name")
		}
		if _, dup := l.byName[t.Name]; dup {
			return nil, fmt.Errorf("lake: duplicate table name %q", t.Name)
		}
		l.byName[t.Name] = t
		l.tables = append(l.tables, t)
	}
	l.knowledge = opts.Knowledge
	if opts.SynthesizeKB {
		syn := kb.Synthesize(l.tables, kb.SynthesizeOptions{})
		if l.knowledge != nil {
			l.knowledge = l.knowledge.Merge(syn)
		} else {
			l.knowledge = syn
		}
	}
	if l.knowledge == nil {
		l.knowledge = kb.New()
	}
	l.santosIx = santos.Build(l.tables, l.knowledge)
	l.domains = extractDomains(l.tables)
	l.joinIx = lshensemble.Build(l.domains, opts.LSH)
	sets := make([]josie.Set, len(l.domains))
	for i, d := range l.domains {
		sets[i] = josie.Set{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values}
	}
	l.josieIx = josie.Build(sets)
	return l, nil
}

// FromDir loads every CSV in dir and preprocesses it into a lake.
func FromDir(dir string, opts Options) (*Lake, error) {
	tables, err := table.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("lake: no CSV tables in %s", dir)
	}
	return New(tables, opts)
}

// extractDomains pulls the normalized value set of every textual column.
func extractDomains(tables []*table.Table) []lshensemble.Domain {
	var out []lshensemble.Domain
	for _, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			if !kb.MostlyTextual(t, c) {
				continue
			}
			vals := tokenize.ValueSet(t.DistinctStrings(c))
			if len(vals) == 0 {
				continue
			}
			out = append(out, lshensemble.Domain{
				Table:      t.Name,
				Column:     c,
				ColumnName: t.Columns[c],
				Values:     vals,
			})
		}
	}
	return out
}

// Tables returns the lake's tables in name order.
func (l *Lake) Tables() []*table.Table { return l.tables }

// Get returns a table by name.
func (l *Lake) Get(name string) (*table.Table, bool) {
	t, ok := l.byName[name]
	return t, ok
}

// Size reports the number of tables.
func (l *Lake) Size() int { return len(l.tables) }

// Knowledge returns the (possibly merged) knowledge base the lake was
// annotated with.
func (l *Lake) Knowledge() *kb.KB { return l.knowledge }

// Santos returns the prebuilt semantic union-search index.
func (l *Lake) Santos() *santos.Index { return l.santosIx }

// Join returns the prebuilt LSH Ensemble containment index.
func (l *Lake) Join() *lshensemble.Index { return l.joinIx }

// Josie returns the prebuilt exact top-k overlap index.
func (l *Lake) Josie() *josie.Index { return l.josieIx }

// Domains returns the extracted column domains (for baselines and
// experiments).
func (l *Lake) Domains() []lshensemble.Domain { return l.domains }

// QueryDomain extracts the normalized value set of a query table column,
// using the same normalization as the lake's indexes.
func QueryDomain(q *table.Table, col int) ([]string, error) {
	if col < 0 || col >= q.NumCols() {
		return nil, fmt.Errorf("lake: query column %d out of range for table %q", col, q.Name)
	}
	return tokenize.ValueSet(q.DistinctStrings(col)), nil
}
