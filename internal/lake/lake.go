// Package lake models the data lake (table repository) DIALITE discovers
// over. Mirroring the demo's setup — "the indexes used in SANTOS and LSH
// Ensemble are built offline, i.e., they are already available for the
// user" — constructing a Lake preprocesses every table once: semantic
// annotation for SANTOS, MinHash/LSH for LSH Ensemble, an inverted index
// for JOSIE-style search, and (optionally) a knowledge base synthesized
// from the lake itself merged into the curated one.
package lake

import (
	"fmt"
	"time"

	"repro/internal/josie"
	"repro/internal/kb"
	"repro/internal/lshensemble"
	"repro/internal/par"
	"repro/internal/santos"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Options configures lake preprocessing.
type Options struct {
	// Knowledge is the curated KB (kb.Demo() for the demonstration); nil
	// means none.
	Knowledge *kb.KB
	// SynthesizeKB additionally synthesizes a KB from the lake tables and
	// merges it with Knowledge, as SANTOS does for uncovered domains.
	SynthesizeKB bool
	// LSH configures the LSH Ensemble index.
	LSH lshensemble.Options
}

// Lake is an immutable preprocessed table repository.
type Lake struct {
	tables    []*table.Table
	byName    map[string]*table.Table
	knowledge *kb.KB
	annotator *kb.Annotator
	dict      *table.Dict
	tokens    *table.TokenDict
	santosIx  *santos.Index
	joinIx    *lshensemble.Index
	josieIx   *josie.Index
	domains   []lshensemble.Domain
	domainIdx map[colRef]int // (table, column) -> index into domains
	stats     BuildStats
}

// BuildStats breaks lake preprocessing down per stage, so "which stage
// dominates the build" is a measured claim rather than a profiling session.
// The three index stages run concurrently; each duration is that stage's
// own wall time, and their sum can exceed the build's wall time on
// multi-core machines.
type BuildStats struct {
	// KBPrep covers KB synthesis/merging (when enabled) plus compiling the
	// knowledge base into its integer-ID annotation engine.
	KBPrep time.Duration
	// DomainExtraction covers cell/token interning, domain extraction, and
	// MinHash fingerprinting.
	DomainExtraction time.Duration
	// Santos, LSH and Josie cover the respective index builds.
	Santos time.Duration
	LSH    time.Duration
	Josie  time.Duration
}

// colRef addresses one column of one lake table.
type colRef struct {
	table  string
	column int
}

// New preprocesses the given tables into a queryable lake. Duplicate table
// names are rejected: discovery results are reported by name.
//
// Preprocessing runs on a worker pool: every table's cells are interned
// into the lake-wide value dictionary and its domains extracted (with
// MinHash fingerprints computed once per domain) in parallel, then the
// SANTOS annotation, LSH Ensemble, and JOSIE indexes are built
// concurrently. All results are collected in table order, so the lake is
// byte-identical to a sequential build.
func New(tables []*table.Table, opts Options) (*Lake, error) {
	l := &Lake{
		byName: make(map[string]*table.Table, len(tables)),
		dict:   table.NewDict(),
		tokens: table.NewTokenDict(),
	}
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("lake: nil table")
		}
		if t.Name == "" {
			return nil, fmt.Errorf("lake: table with empty name")
		}
		if _, dup := l.byName[t.Name]; dup {
			return nil, fmt.Errorf("lake: duplicate table name %q", t.Name)
		}
		l.byName[t.Name] = t
		l.tables = append(l.tables, t)
	}
	t0 := time.Now()
	l.knowledge = opts.Knowledge
	if opts.SynthesizeKB {
		syn := kb.Synthesize(l.tables, kb.SynthesizeOptions{})
		if l.knowledge != nil {
			l.knowledge = l.knowledge.Merge(syn)
		} else {
			l.knowledge = syn
		}
	}
	if l.knowledge == nil {
		l.knowledge = kb.New()
	}
	compiled := l.knowledge.Compiled()
	l.stats.KBPrep = time.Since(t0)
	// Phase 1 (parallel per table): intern every cell into the lake value
	// dictionary, every domain member into the lake token dictionary, and
	// extract the joinable-search domains.
	t0 = time.Now()
	l.domains = extractDomains(l.tables, l.dict, l.tokens)
	l.domainIdx = make(map[colRef]int, len(l.domains))
	for i, d := range l.domains {
		l.domainIdx[colRef{d.Table, d.Column}] = i
	}
	l.stats.DomainExtraction = time.Since(t0)
	// The lake-wide annotation cache: every KB canonicalization — SANTOS
	// build and query annotation, entity resolution over lake-derived
	// tables — resolves each distinct lake value (interned above) once.
	l.annotator = kb.NewAnnotator(compiled, l.dict)
	// Phase 2: the three indexes read disjoint inputs; build concurrently,
	// all over the shared token dictionary (complete after phase 1, so the
	// builds only read it). Each stage clocks itself for BuildStats.
	par.Do(
		func() {
			t := time.Now()
			l.santosIx = santos.BuildWithAnnotator(l.tables, l.annotator)
			l.stats.Santos = time.Since(t)
		},
		func() {
			t := time.Now()
			l.joinIx = lshensemble.BuildWithDict(l.domains, opts.LSH, l.tokens)
			l.stats.LSH = time.Since(t)
		},
		func() {
			t := time.Now()
			sets := make([]josie.Set, len(l.domains))
			for i, d := range l.domains {
				sets[i] = josie.Set{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values, IDs: d.IDs}
			}
			l.josieIx = josie.BuildWithDict(sets, l.tokens)
			l.stats.Josie = time.Since(t)
		},
	)
	return l, nil
}

// FromDir loads every CSV in dir and preprocesses it into a lake.
func FromDir(dir string, opts Options) (*Lake, error) {
	tables, err := table.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("lake: no CSV tables in %s", dir)
	}
	return New(tables, opts)
}

// extractDomains pulls the normalized value set of every textual column,
// one worker per table, interning every cell into dict and every domain
// member into tokens along the way. Per-table results land in slot order,
// so the flattened domain list — and every index built from it — is
// identical to a sequential extraction. Domain token IDs and MinHash
// fingerprints are precomputed here, once per lake: index builds (and
// rebuilds, e.g. experiments re-indexing under different LSH parameters)
// and query-side fast paths reuse them instead of re-hashing every value.
// Fingerprints come from the token dictionary's cache, so each distinct
// token in the lake is FNV-hashed exactly once.
func extractDomains(tables []*table.Table, dict *table.Dict, tokens *table.TokenDict) []lshensemble.Domain {
	perTable := make([][]lshensemble.Domain, len(tables))
	par.For(len(tables), func(i int) {
		t := tables[i]
		if dict != nil {
			var idbuf []uint32
			for _, row := range t.Rows {
				idbuf = dict.InternRow(row, idbuf)
			}
		}
		var out []lshensemble.Domain
		for c := 0; c < t.NumCols(); c++ {
			if !kb.MostlyTextual(t, c) {
				continue
			}
			vals := columnValueSet(t, c)
			if len(vals) == 0 {
				continue
			}
			ids := tokens.InternAll(vals, nil)
			out = append(out, lshensemble.Domain{
				Table:        t.Name,
				Column:       c,
				ColumnName:   t.Columns[c],
				Values:       vals,
				IDs:          ids,
				Fingerprints: tokens.Fingerprints(ids, nil),
			})
		}
		perTable[i] = out
	})
	var out []lshensemble.Domain
	for _, ds := range perTable {
		out = append(out, ds...)
	}
	return out
}

// columnValueSet extracts the normalized value set of a column in one pass:
// it is tokenize.ValueSet(t.DistinctStrings(c)) — same output, same order —
// without materializing the intermediate distinct-string slice or scanning
// the rows twice. Raw renderings dedupe first (so each distinct cell string
// normalizes once), then normalized forms dedupe, both in first-seen order.
func columnValueSet(t *table.Table, c int) []string {
	seenRaw := make(map[string]struct{})
	seenNorm := make(map[string]struct{})
	var out []string
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			continue
		}
		s := v.String()
		if _, dup := seenRaw[s]; dup {
			continue
		}
		seenRaw[s] = struct{}{}
		n := tokenize.Normalize(s)
		if n == "" {
			continue
		}
		if _, dup := seenNorm[n]; dup {
			continue
		}
		seenNorm[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// Tables returns the lake's tables in name order.
func (l *Lake) Tables() []*table.Table { return l.tables }

// Get returns a table by name.
func (l *Lake) Get(name string) (*table.Table, bool) {
	t, ok := l.byName[name]
	return t, ok
}

// Size reports the number of tables.
func (l *Lake) Size() int { return len(l.tables) }

// Knowledge returns the (possibly merged) knowledge base the lake was
// annotated with.
func (l *Lake) Knowledge() *kb.KB { return l.knowledge }

// Annotator returns the lake-wide KB annotation cache: every distinct lake
// value's canonical entity is resolved at most once, and SANTOS queries and
// entity resolution over lake-derived tables share the cached codes.
func (l *Lake) Annotator() *kb.Annotator { return l.annotator }

// Stats returns the per-stage preprocessing timing breakdown.
func (l *Lake) Stats() BuildStats { return l.stats }

// Dict returns the lake-wide value dictionary: every cell of every lake
// table is interned in it, and integration over this lake shares it so the
// FD closure's interning is a cache hit for lake values.
func (l *Lake) Dict() *table.Dict { return l.dict }

// Tokens returns the lake-wide token dictionary: every domain member of
// every lake table is interned in it, and the discovery indexes are built
// on its IDs, so query-side token lookups and cached fingerprints agree
// lake-wide.
func (l *Lake) Tokens() *table.TokenDict { return l.tokens }

// DomainFor returns the extracted domain of one lake table column — with
// its cached token IDs and MinHash fingerprints — or nil when the column
// produced no domain (non-textual or empty). Discovery uses it to skip
// re-extraction and re-hashing when the query table is itself a lake table.
func (l *Lake) DomainFor(tableName string, col int) *lshensemble.Domain {
	i, ok := l.domainIdx[colRef{tableName, col}]
	if !ok {
		return nil
	}
	return &l.domains[i]
}

// Santos returns the prebuilt semantic union-search index.
func (l *Lake) Santos() *santos.Index { return l.santosIx }

// Join returns the prebuilt LSH Ensemble containment index.
func (l *Lake) Join() *lshensemble.Index { return l.joinIx }

// Josie returns the prebuilt exact top-k overlap index.
func (l *Lake) Josie() *josie.Index { return l.josieIx }

// Domains returns the extracted column domains (for baselines and
// experiments).
func (l *Lake) Domains() []lshensemble.Domain { return l.domains }

// QueryDomain extracts the normalized value set of a query table column,
// using the same normalization as the lake's indexes.
func QueryDomain(q *table.Table, col int) ([]string, error) {
	if col < 0 || col >= q.NumCols() {
		return nil, fmt.Errorf("lake: query column %d out of range for table %q", col, q.Name)
	}
	return tokenize.ValueSet(q.DistinctStrings(col)), nil
}
