// Package lake models the data lake (table repository) DIALITE discovers
// over. Mirroring the demo's setup — "the indexes used in SANTOS and LSH
// Ensemble are built offline, i.e., they are already available for the
// user" — constructing a Lake preprocesses every table once: semantic
// annotation for SANTOS, MinHash/LSH for LSH Ensemble, an inverted index
// for JOSIE-style search, and (optionally) a knowledge base synthesized
// from the lake itself merged into the curated one.
//
// The lake is a living object: open-data portals churn daily, so Add and
// Remove maintain all three discovery indexes incrementally instead of
// rebuilding them — JOSIE grows a delta segment and tombstones beside its
// CSR arena, the LSH Ensemble moves only the domains whose equi-depth
// partition shifted, and SANTOS annotates or evicts per-table semantic
// graphs. Every mutation leaves the lake query-equivalent to a fresh New
// over the surviving tables (pinned by the differential harness in
// differential_test.go). Mutations are exclusive with each other; queries
// run concurrently with mutations — see the concurrency notes on Add.
package lake

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/josie"
	"repro/internal/kb"
	"repro/internal/lshensemble"
	"repro/internal/par"
	"repro/internal/santos"
	"repro/internal/sketch"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Options configures lake preprocessing.
type Options struct {
	// Knowledge is the curated KB (kb.Demo() for the demonstration); nil
	// means none.
	Knowledge *kb.KB
	// SynthesizeKB additionally synthesizes a KB from the lake tables and
	// merges it with Knowledge, as SANTOS does for uncovered domains.
	SynthesizeKB bool
	// LSH configures the LSH Ensemble index, including the sketch engine
	// (LSH.Engine): sketch.MinHash (default, banded probing) or sketch.KMV
	// (faster signing, linear-scan candidates). New validates the engine and
	// rejects names this build does not implement.
	LSH lshensemble.Options
}

// Lake is a preprocessed, mutable table repository. The catalog fields
// (tables, byName, domains, domainIdx, annotator, santosIx, stats) are
// guarded by mu: accessors take the read lock, Add/Remove/Compact the write
// lock. The interners (dict, tokens) and each discovery index carry their
// own synchronization, so queries against an index captured before a
// mutation stay safe.
type Lake struct {
	// epoch is a seqlock-style mutation counter: odd while an
	// answer-changing mutation (Add, Remove, KB re-annotation) is applying
	// its per-index deltas, even when the lake is settled. Multi-index
	// readers sample it before and after a run to detect a torn read — see
	// Epoch and discovery.RunAll. It is advisory: mutations never block on
	// it, and it is bumped only after validation succeeds, so failed
	// mutations leave it untouched.
	epoch     atomic.Uint64
	mu        sync.RWMutex
	tables    []*table.Table
	byName    map[string]*table.Table
	knowledge *kb.KB
	annotator *kb.Annotator
	dict      *table.Dict
	tokens    *table.TokenDict
	santosIx  *santos.Index
	joinIx    *lshensemble.Index
	josieIx   *josie.Index
	domains   []lshensemble.Domain
	domainIdx map[colRef]int // (table, column) -> index into domains
	stats     BuildStats
}

// BuildStats breaks lake preprocessing down per stage, so "which stage
// dominates the build" is a measured claim rather than a profiling session.
// The three index stages run concurrently; each duration is that stage's
// own wall time, and their sum can exceed the build's wall time on
// multi-core machines. Incremental mutations (Add, Remove) accumulate their
// per-stage work into the same fields, so the stats always cover the total
// preprocessing effort spent on the lake's current shape.
type BuildStats struct {
	// KBPrep covers KB synthesis/merging (when enabled) plus compiling the
	// knowledge base into its integer-ID annotation engine.
	KBPrep time.Duration
	// DomainExtraction covers cell/token interning, domain extraction, and
	// MinHash fingerprinting.
	DomainExtraction time.Duration
	// Santos, LSH and Josie cover the respective index builds.
	Santos time.Duration
	LSH    time.Duration
	Josie  time.Duration
}

// colRef addresses one column of one lake table.
type colRef struct {
	table  string
	column int
}

// beginMutation marks the start of an answer-changing mutation (epoch goes
// odd). Callers must hold mu and must have finished all validation: a
// rejected batch never perturbs the epoch.
func (l *Lake) beginMutation() { l.epoch.Add(1) }

// endMutation marks the end of a mutation (epoch goes even again).
func (l *Lake) endMutation() { l.epoch.Add(1) }

// Epoch returns the lake's mutation epoch: even when every discovery index
// reflects the same catalog state, odd while Add/Remove/RefreshKB is
// applying per-index deltas. A reader that samples Epoch before and after a
// multi-index run and sees the same even value is guaranteed the run was
// not torn across a mutation; any other pair means some index may have been
// read mid-mutation and the run should be retried. Compact does not bump
// the epoch — it never changes query answers, so a read spanning it is not
// torn.
func (l *Lake) Epoch() uint64 { return l.epoch.Load() }

// Epochs returns the lake's mutation-epoch vector — a single element for a
// plain Lake. The vector form is what discovery's torn-read guard samples:
// it generalizes to composites (lake.Sharded prepends a composite counter to
// its shards' epochs) and to shard-per-process deployments, where each
// remote shard contributes its own counter. A clean multi-index read samples
// the same all-even vector before and after the run.
func (l *Lake) Epochs() []uint64 { return []uint64{l.epoch.Load()} }

// Shards returns the lake's shard list. A plain Lake is its own single
// shard; the method exists so *Lake and *Sharded satisfy the same
// scatter-gather discovery contract (see Catalog and discovery.RunAll).
func (l *Lake) Shards() []*Lake { return []*Lake{l} }

// New preprocesses the given tables into a queryable lake. Duplicate table
// names are rejected: discovery results are reported by name.
//
// Preprocessing runs on a worker pool: every table's cells are interned
// into the lake-wide value dictionary and its domains extracted (with
// MinHash fingerprints computed once per domain) in parallel, then the
// SANTOS annotation, LSH Ensemble, and JOSIE indexes are built
// concurrently. All results are collected in table order, so the lake is
// byte-identical to a sequential build.
func New(tables []*table.Table, opts Options) (*Lake, error) {
	if !sketch.Known(opts.LSH.Engine) {
		return nil, fmt.Errorf("lake: unknown sketch engine %q", opts.LSH.Engine)
	}
	l := &Lake{
		byName: make(map[string]*table.Table, len(tables)),
		dict:   table.NewDict(),
		tokens: table.NewTokenDict(),
	}
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("lake: nil table")
		}
		if t.Name == "" {
			return nil, fmt.Errorf("lake: table with empty name")
		}
		if _, dup := l.byName[t.Name]; dup {
			return nil, fmt.Errorf("lake: duplicate table name %q", t.Name)
		}
		l.byName[t.Name] = t
		l.tables = append(l.tables, t)
	}
	t0 := time.Now()
	l.knowledge = opts.Knowledge
	if opts.SynthesizeKB {
		syn := kb.Synthesize(l.tables, kb.SynthesizeOptions{})
		if l.knowledge != nil {
			l.knowledge = l.knowledge.Merge(syn)
		} else {
			l.knowledge = syn
		}
	}
	if l.knowledge == nil {
		l.knowledge = kb.New()
	}
	compiled := l.knowledge.Compiled()
	l.stats.KBPrep = time.Since(t0)
	// Phase 1 (parallel per table): intern every cell into the lake value
	// dictionary, every domain member into the lake token dictionary, and
	// extract the joinable-search domains.
	t0 = time.Now()
	l.domains = extractDomains(l.tables, l.dict, l.tokens)
	l.domainIdx = make(map[colRef]int, len(l.domains))
	for i, d := range l.domains {
		l.domainIdx[colRef{d.Table, d.Column}] = i
	}
	l.stats.DomainExtraction = time.Since(t0)
	// The lake-wide annotation cache: every KB canonicalization — SANTOS
	// build and query annotation, entity resolution over lake-derived
	// tables — resolves each distinct lake value (interned above) once.
	l.annotator = kb.NewAnnotator(compiled, l.dict)
	// Phase 2: the three indexes read disjoint inputs; build concurrently,
	// all over the shared token dictionary (complete after phase 1, so the
	// builds only read it). Each stage clocks itself for BuildStats.
	par.Do(
		func() {
			t := time.Now()
			l.santosIx = santos.BuildWithAnnotator(l.tables, l.annotator)
			l.stats.Santos = time.Since(t)
		},
		func() {
			t := time.Now()
			l.joinIx = lshensemble.BuildWithDict(l.domains, opts.LSH, l.tokens)
			l.stats.LSH = time.Since(t)
		},
		func() {
			t := time.Now()
			sets := make([]josie.Set, len(l.domains))
			for i, d := range l.domains {
				sets[i] = josie.Set{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values, IDs: d.IDs}
			}
			l.josieIx = josie.BuildWithDict(sets, l.tokens)
			l.stats.Josie = time.Since(t)
		},
	)
	return l, nil
}

// FromDir loads every CSV in dir and preprocesses it into a lake.
func FromDir(dir string, opts Options) (*Lake, error) {
	tables, err := table.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("lake: no CSV tables in %s", dir)
	}
	return New(tables, opts)
}

// Add incrementally indexes additional tables into the lake, maintaining
// all three discovery indexes without a rebuild: the new tables' cells and
// domain tokens intern into the shared dictionaries and their domains are
// extracted exactly as New does (one worker per table, MinHash fingerprints
// computed once), then the SANTOS, LSH Ensemble and JOSIE indexes absorb
// the delta concurrently. After Add returns, every discovery query is
// answered identically to a fresh New over the enlarged table set.
//
// Validation is atomic: a nil table, an empty or duplicate name (against
// the lake or within the batch) rejects the whole batch before anything is
// indexed.
//
// Concurrency contract: mutations (Add, Remove, Compact) are exclusive with
// each other; discovery queries may run concurrently with a mutation. Each
// index applies its delta atomically with respect to its own queries, but a
// multi-index query running mid-mutation may observe the lake between index
// updates (e.g. a table already visible to JOSIE but not yet to SANTOS);
// queries issued after Add returns see the delta everywhere. Multi-index
// readers detect that window via the mutation epoch (see Epoch) and retry —
// discovery.RunAll does this automatically.
//
// KB semantics: the added tables are annotated against the knowledge base
// as compiled now. If the KB has been mutated since the lake was built (or
// last re-annotated), compiled type IDs are incomparable across snapshots,
// so Add refreshes the lake-wide annotator and re-annotates the SANTOS
// index in full — still without re-extracting or re-signing any domain. A
// KB synthesized at build time (Options.SynthesizeKB) is not re-synthesized
// for added tables; rebuild the lake to fold new tables into the synthesis.
func (l *Lake) Add(tables ...*table.Table) error {
	if len(tables) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	batch := make(map[string]bool, len(tables))
	for _, t := range tables {
		if t == nil {
			return fmt.Errorf("lake: add: nil table")
		}
		if t.Name == "" {
			return fmt.Errorf("lake: add: table with empty name")
		}
		if _, dup := l.byName[t.Name]; dup || batch[t.Name] {
			return fmt.Errorf("lake: add: duplicate table name %q", t.Name)
		}
		batch[t.Name] = true
	}
	l.beginMutation()
	defer l.endMutation()
	// A KB mutated since the last (re-)annotation invalidates every
	// compiled ID in the SANTOS index; refresh the annotator and re-annotate
	// the semantic graphs below (the KB-independent indexes are untouched).
	staleKB := !l.annotator.UpToDate(l.knowledge)
	if staleKB {
		t0 := time.Now()
		l.annotator = kb.NewAnnotator(l.knowledge.Compiled(), l.dict)
		l.stats.KBPrep += time.Since(t0)
	}
	t0 := time.Now()
	newDomains := extractDomains(tables, l.dict, l.tokens)
	l.stats.DomainExtraction += time.Since(t0)
	for _, t := range tables {
		l.byName[t.Name] = t
		l.tables = append(l.tables, t)
	}
	base := len(l.domains)
	l.domains = append(l.domains, newDomains...)
	for i := range newDomains {
		l.domainIdx[colRef{newDomains[i].Table, newDomains[i].Column}] = base + i
	}
	par.Do(
		func() {
			t := time.Now()
			if staleKB {
				l.santosIx = santos.BuildWithAnnotator(l.tables, l.annotator)
			} else {
				l.santosIx.Add(tables)
			}
			l.stats.Santos += time.Since(t)
		},
		func() {
			t := time.Now()
			l.joinIx.Add(newDomains)
			l.stats.LSH += time.Since(t)
		},
		func() {
			t := time.Now()
			sets := make([]josie.Set, len(newDomains))
			for i, d := range newDomains {
				sets[i] = josie.Set{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values, IDs: d.IDs}
			}
			l.josieIx.Add(sets)
			l.stats.Josie += time.Since(t)
		},
	)
	return nil
}

// Remove drops the named tables from the lake and from all three discovery
// indexes: SANTOS evicts their semantic graphs, the LSH Ensemble re-shards
// their domains out of the equi-depth partitioning, and JOSIE tombstones
// their sets (folded away by the next compaction). After Remove returns,
// every discovery query is answered identically to a fresh New over the
// surviving tables, Get reports the removed names as absent (ok=false), and
// DomainFor returns nil for their columns. Interned values and tokens stay
// in the shared dictionaries by design (interners are append-only); they
// can no longer match any indexed domain.
//
// Validation is atomic: an unknown name rejects the whole batch before
// anything is dropped (duplicate names within the batch are tolerated).
// Remove follows Add's concurrency contract.
func (l *Lake) Remove(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := l.byName[n]; !ok {
			return fmt.Errorf("lake: remove: no table %q", n)
		}
		doomed[n] = true
	}
	l.beginMutation()
	defer l.endMutation()
	// New slices rather than in-place filtering: accessors hand the old
	// backing arrays to concurrent readers, which must keep seeing the
	// pre-removal state rather than shifted elements.
	kept := make([]*table.Table, 0, len(l.tables)-len(doomed))
	for _, t := range l.tables {
		if !doomed[t.Name] {
			kept = append(kept, t)
		}
	}
	l.tables = kept
	for n := range doomed {
		delete(l.byName, n)
	}
	keptDomains := make([]lshensemble.Domain, 0, len(l.domains))
	for i := range l.domains {
		if !doomed[l.domains[i].Table] {
			keptDomains = append(keptDomains, l.domains[i])
		}
	}
	l.domains = keptDomains
	l.domainIdx = make(map[colRef]int, len(l.domains))
	for i, d := range l.domains {
		l.domainIdx[colRef{d.Table, d.Column}] = i
	}
	nameList := make([]string, 0, len(doomed))
	for n := range doomed {
		nameList = append(nameList, n)
	}
	par.Do(
		func() {
			t := time.Now()
			l.santosIx.Remove(nameList)
			l.stats.Santos += time.Since(t)
		},
		func() {
			t := time.Now()
			l.joinIx.Remove(nameList)
			l.stats.LSH += time.Since(t)
		},
		func() {
			t := time.Now()
			l.josieIx.Remove(nameList)
			l.stats.Josie += time.Since(t)
		},
	)
	return nil
}

// RefreshKB re-annotates the lake against its knowledge base as compiled
// now, and reports whether anything was stale. Add already refreshes a
// mutated KB as a side effect; RefreshKB is the explicit trigger for the
// remaining case — a KB mutation with no subsequent Add — so live-KB union
// search never has to wait for the next table churn to see new entities.
// The annotator is replaced and the SANTOS layer rebuilt in full against
// the recompiled engine (compiled type IDs are incomparable across KB
// snapshots); domain extraction, MinHash fingerprints and the
// KB-independent indexes are untouched. When the annotator is already
// current this is a cheap no-op returning false. RefreshKB follows Add's
// concurrency contract. A KB synthesized at build time is not
// re-synthesized; rebuild the lake to fold mutations into the synthesis.
func (l *Lake) RefreshKB() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.annotator.UpToDate(l.knowledge) {
		return false
	}
	l.beginMutation()
	defer l.endMutation()
	t0 := time.Now()
	l.annotator = kb.NewAnnotator(l.knowledge.Compiled(), l.dict)
	l.stats.KBPrep += time.Since(t0)
	t0 = time.Now()
	l.santosIx = santos.BuildWithAnnotator(l.tables, l.annotator)
	l.stats.Santos += time.Since(t0)
	return true
}

// Compact folds accumulated mutation debt out of the discovery indexes:
// JOSIE merges its delta segment and tombstones back into a dense CSR
// arena, and the LSH Ensemble drops dead domain slots. Both happen
// automatically past internal thresholds; Compact forces them (e.g. after a
// bulk removal, or before a latency-sensitive query burst). Query results
// are unaffected. Compact follows Add's concurrency contract.
func (l *Lake) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	par.Do(l.joinIx.Compact, l.josieIx.Compact)
}

// extractDomains pulls the normalized value set of every textual column,
// one worker per table, interning every cell into dict and every domain
// member into tokens along the way. Per-table results land in slot order,
// so the flattened domain list — and every index built from it — is
// identical to a sequential extraction. Domain token IDs and MinHash
// fingerprints are precomputed here, once per lake: index builds (and
// rebuilds, e.g. experiments re-indexing under different LSH parameters)
// and query-side fast paths reuse them instead of re-hashing every value.
// Fingerprints come from the token dictionary's cache, so each distinct
// token in the lake is FNV-hashed exactly once.
func extractDomains(tables []*table.Table, dict *table.Dict, tokens *table.TokenDict) []lshensemble.Domain {
	perTable := make([][]lshensemble.Domain, len(tables))
	par.For(len(tables), func(i int) {
		t := tables[i]
		if dict != nil {
			var idbuf []uint32
			for _, row := range t.Rows {
				idbuf = dict.InternRow(row, idbuf)
			}
		}
		var out []lshensemble.Domain
		for c := 0; c < t.NumCols(); c++ {
			if !kb.MostlyTextual(t, c) {
				continue
			}
			vals := columnValueSet(t, c)
			if len(vals) == 0 {
				continue
			}
			ids := tokens.InternAll(vals, nil)
			out = append(out, lshensemble.Domain{
				Table:        t.Name,
				Column:       c,
				ColumnName:   t.Columns[c],
				Values:       vals,
				IDs:          ids,
				Fingerprints: tokens.Fingerprints(ids, nil),
			})
		}
		perTable[i] = out
	})
	var out []lshensemble.Domain
	for _, ds := range perTable {
		out = append(out, ds...)
	}
	return out
}

// columnValueSet extracts the normalized value set of a column in one pass:
// it is tokenize.ValueSet(t.DistinctStrings(c)) — same output, same order —
// without materializing the intermediate distinct-string slice or scanning
// the rows twice. Raw renderings dedupe first (so each distinct cell string
// normalizes once), then normalized forms dedupe, both in first-seen order.
func columnValueSet(t *table.Table, c int) []string {
	seenRaw := make(map[string]struct{})
	seenNorm := make(map[string]struct{})
	var out []string
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			continue
		}
		s := v.String()
		if _, dup := seenRaw[s]; dup {
			continue
		}
		seenRaw[s] = struct{}{}
		n := tokenize.Normalize(s)
		if n == "" {
			continue
		}
		if _, dup := seenNorm[n]; dup {
			continue
		}
		seenNorm[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// Tables returns the lake's current tables: the build-time tables in input
// order minus removals, with added tables appended in Add order. The
// returned slice is a stable snapshot — later mutations never shift its
// elements.
func (l *Lake) Tables() []*table.Table {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tables
}

// Get returns a table by name. After Remove(name), ok is false: removed
// tables are absent from the catalog, not merely unreachable.
func (l *Lake) Get(name string) (*table.Table, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.byName[name]
	return t, ok
}

// Size reports the current number of tables.
func (l *Lake) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.tables)
}

// Knowledge returns the (possibly merged) knowledge base the lake was
// annotated with.
func (l *Lake) Knowledge() *kb.KB { return l.knowledge }

// Annotator returns the lake-wide KB annotation cache: every distinct lake
// value's canonical entity is resolved at most once, and SANTOS queries and
// entity resolution over lake-derived tables share the cached codes. Add
// replaces the annotator when it detects the KB was mutated, so callers
// should not cache it across lake mutations.
func (l *Lake) Annotator() *kb.Annotator {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.annotator
}

// Stats returns the per-stage preprocessing timing breakdown, including
// work accumulated by incremental mutations.
func (l *Lake) Stats() BuildStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.stats
}

// Dict returns the lake-wide value dictionary: every cell of every lake
// table is interned in it, and integration over this lake shares it so the
// FD closure's interning is a cache hit for lake values.
func (l *Lake) Dict() *table.Dict { return l.dict }

// Tokens returns the lake-wide token dictionary: every domain member of
// every lake table is interned in it, and the discovery indexes are built
// on its IDs, so query-side token lookups and cached fingerprints agree
// lake-wide.
func (l *Lake) Tokens() *table.TokenDict { return l.tokens }

// DomainFor returns the extracted domain of one lake table column — with
// its cached token IDs and MinHash fingerprints — or nil when the column
// produced no domain (non-textual or empty). Discovery uses it to skip
// re-extraction and re-hashing when the query table is itself a lake table.
// After Remove(tableName), every column of that table returns nil;
// previously returned pointers stay readable but describe the removed
// domain.
func (l *Lake) DomainFor(tableName string, col int) *lshensemble.Domain {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i, ok := l.domainIdx[colRef{tableName, col}]
	if !ok {
		return nil
	}
	return &l.domains[i]
}

// Santos returns the semantic union-search index. Add may replace the
// index (KB-mutation re-annotation), so capture it per query rather than
// caching it across mutations.
func (l *Lake) Santos() *santos.Index {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.santosIx
}

// Join returns the LSH Ensemble containment index.
func (l *Lake) Join() *lshensemble.Index { return l.joinIx }

// SketchEngine reports the sketch engine the containment index runs on
// (defaults applied) — surfaced by dialite serve's health endpoint so
// operators can tell which engine a running lake was built or restored with.
func (l *Lake) SketchEngine() sketch.Engine { return l.joinIx.Options().Engine }

// Josie returns the exact top-k overlap index.
func (l *Lake) Josie() *josie.Index { return l.josieIx }

// Domains returns the extracted column domains of the current tables (for
// baselines and experiments). The returned slice is a stable snapshot —
// later mutations never shift its elements.
func (l *Lake) Domains() []lshensemble.Domain {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.domains
}

// QueryDomain extracts the normalized value set of a query table column,
// using the same normalization as the lake's indexes.
func QueryDomain(q *table.Table, col int) ([]string, error) {
	if col < 0 || col >= q.NumCols() {
		return nil, fmt.Errorf("lake: query column %d out of range for table %q", col, q.Name)
	}
	return tokenize.ValueSet(q.DistinctStrings(col)), nil
}
