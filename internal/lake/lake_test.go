package lake

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func demoLake(t *testing.T) *Lake {
	t.Helper()
	l, err := New(paperdata.CovidLake(), Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewBuildsAllIndexes(t *testing.T) {
	l := demoLake(t)
	if l.Size() != 2 {
		t.Fatalf("size = %d", l.Size())
	}
	if l.Santos() == nil || l.Join() == nil || l.Josie() == nil {
		t.Fatal("indexes missing")
	}
	if l.Santos().NumTables() != 2 {
		t.Error("santos index incomplete")
	}
	// Domains: T2 has City+Country textual; T3 has City. Rate/cases are
	// textual strings too ("83%", "1.4M") — so expect at least 3 domains.
	if len(l.Domains()) < 3 {
		t.Errorf("domains = %d", len(l.Domains()))
	}
	if _, ok := l.Get("T3"); !ok {
		t.Error("Get(T3) failed")
	}
	if _, ok := l.Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]*table.Table{nil}, Options{}); err == nil {
		t.Error("nil table must error")
	}
	if _, err := New([]*table.Table{table.New("")}, Options{}); err == nil {
		t.Error("empty name must error")
	}
	dup := []*table.Table{table.New("x", "a"), table.New("x", "b")}
	if _, err := New(dup, Options{}); err == nil {
		t.Error("duplicate names must error")
	}
	empty, err := New(nil, Options{})
	if err != nil || empty.Size() != 0 {
		t.Error("empty lake must build")
	}
}

func TestSynthesizeKBOption(t *testing.T) {
	l, err := New(paperdata.CovidLake(), Options{SynthesizeKB: true})
	if err != nil {
		t.Fatal(err)
	}
	// The synthesized KB knows the lake's own values.
	if !l.Knowledge().HasEntity("berlin") {
		t.Error("synthesized KB should know lake values")
	}
	merged, err := New(paperdata.CovidLake(), Options{Knowledge: kb.Demo(), SynthesizeKB: true})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Knowledge().HasEntity("berlin") || !merged.Knowledge().SameEntity("USA", "United States") {
		t.Error("merged KB must keep curated aliases and synthesized entities")
	}
}

func TestFromDir(t *testing.T) {
	dir := t.TempDir()
	for _, tb := range paperdata.CovidLake() {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	l, err := FromDir(dir, Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 2 {
		t.Errorf("FromDir size = %d", l.Size())
	}
	if _, err := FromDir(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Error("missing dir must error")
	}
	emptyDir := t.TempDir()
	if _, err := FromDir(emptyDir, Options{}); err == nil {
		t.Error("dir without CSVs must error")
	}
}

func TestQueryDomain(t *testing.T) {
	q := paperdata.T1()
	d, err := QueryDomain(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 || d[0] != "berlin" {
		t.Errorf("QueryDomain = %v", d)
	}
	if _, err := QueryDomain(q, 9); err == nil {
		t.Error("out of range must error")
	}
}

// TestFromDirErrorPaths covers the loading failures FromDir must surface:
// an unreadable directory (a plain file in its place), malformed CSV
// content, and duplicate table names from files whose base names collide
// after extension stripping.
func TestFromDirErrorPaths(t *testing.T) {
	base := t.TempDir()

	notADir := filepath.Join(base, "file.txt")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromDir(notADir, Options{}); err == nil {
		t.Error("FromDir over a plain file must error")
	}

	malformed := filepath.Join(base, "malformed")
	if err := os.Mkdir(malformed, 0o755); err != nil {
		t.Fatal(err)
	}
	// An unterminated quote is a csv.Reader parse error.
	if err := os.WriteFile(filepath.Join(malformed, "bad.csv"), []byte("a,b\n\"unterminated,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromDir(malformed, Options{}); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("malformed CSV error = %v, want mention of the file", err)
	}

	empty := filepath.Join(base, "emptyfile")
	if err := os.Mkdir(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(empty, "zero.csv"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromDir(empty, Options{}); err == nil {
		t.Error("zero-byte CSV must error")
	}

	dup := filepath.Join(base, "dup")
	if err := os.Mkdir(dup, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t.csv", "t.CSV"} {
		if err := os.WriteFile(filepath.Join(dup, name), []byte("City\nBerlin\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := FromDir(dup, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate table names error = %v", err)
	}

	if os.Geteuid() != 0 {
		locked := filepath.Join(base, "locked")
		if err := os.Mkdir(locked, 0o000); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(locked, 0o755)
		if _, err := FromDir(locked, Options{}); err == nil {
			t.Error("unreadable dir must error")
		}
	}
}
