package lake

import (
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func cityTable(name string, cities ...string) *table.Table {
	t := table.New(name, "City", "Cases")
	for i, c := range cities {
		t.MustAddRow(table.StringValue(c), table.IntValue(int64(100+i)))
	}
	return t
}

func TestAddIndexesNewTable(t *testing.T) {
	l := demoLake(t)
	extra := cityTable("T9", "Berlin", "Tokyo", "Boston")
	if err := l.Add(extra); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 3 {
		t.Fatalf("Size = %d", l.Size())
	}
	if got, ok := l.Get("T9"); !ok || got != extra {
		t.Error("Get(T9) after Add")
	}
	if l.DomainFor("T9", 0) == nil {
		t.Error("DomainFor(T9, 0) = nil after Add")
	}
	if l.Santos().NumTables() != 3 {
		t.Errorf("santos tables = %d", l.Santos().NumTables())
	}
	// The new domain must be discoverable through all joinable paths.
	if res := l.Josie().TopK([]string{"Berlin", "Tokyo"}, 0); len(res) == 0 {
		t.Error("JOSIE cannot find added table")
	} else {
		found := false
		for _, r := range res {
			found = found || r.Set.Table == "T9"
		}
		if !found {
			t.Error("JOSIE results missing T9")
		}
	}
	if res := l.Join().Query([]string{"Berlin", "Tokyo", "Boston"}, 0.9, 0); len(res) == 0 {
		t.Error("LSH cannot find added table")
	}
}

func TestAddValidationIsAtomic(t *testing.T) {
	l := demoLake(t)
	good := cityTable("TNew", "Berlin")
	cases := []struct {
		batch []*table.Table
		want  string
	}{
		{[]*table.Table{good, nil}, "nil table"},
		{[]*table.Table{good, table.New("")}, "empty name"},
		{[]*table.Table{good, cityTable("T2", "Berlin")}, "duplicate"},
		{[]*table.Table{good, cityTable("TNew", "Berlin")}, "duplicate"},
	}
	for _, c := range cases {
		err := l.Add(c.batch...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Add(%v) error = %v, want %q", c.batch, err, c.want)
		}
		// The valid prefix of the batch must not have been indexed.
		if _, ok := l.Get("TNew"); ok {
			t.Fatal("failed Add left a batch table in the lake")
		}
		if l.Size() != 2 {
			t.Fatalf("failed Add changed lake size to %d", l.Size())
		}
	}
	if err := l.Add(); err != nil {
		t.Errorf("empty Add = %v", err)
	}
}

func TestRemoveContract(t *testing.T) {
	l := demoLake(t)
	if err := l.Remove("T2", "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Remove with unknown name = %v", err)
	}
	if l.Size() != 2 {
		t.Fatal("failed Remove mutated the lake")
	}
	if err := l.Remove("T2", "T2"); err != nil { // duplicates tolerated
		t.Fatal(err)
	}
	// The post-removal contract: absent from the catalog, nil domains.
	if _, ok := l.Get("T2"); ok {
		t.Error("Get(T2) ok after Remove")
	}
	for c := 0; c < 3; c++ {
		if l.DomainFor("T2", c) != nil {
			t.Errorf("DomainFor(T2, %d) != nil after Remove", c)
		}
	}
	if l.Size() != 1 || len(l.Tables()) != 1 {
		t.Errorf("Size = %d after Remove", l.Size())
	}
	for _, d := range l.Domains() {
		if d.Table == "T2" {
			t.Error("Domains() still lists removed table")
		}
	}
	if l.Santos().NumTables() != 1 {
		t.Errorf("santos tables = %d", l.Santos().NumTables())
	}
	// Remove everything: an empty lake is valid and re-addable.
	if err := l.Remove("T3"); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d", l.Size())
	}
	if err := l.Add(paperdata.CovidLake()...); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 2 || l.Santos().NumTables() != 2 {
		t.Error("re-adding into an emptied lake failed")
	}
}

// TestStatsAccumulateAcrossMutations pins the telemetry contract: mutation
// work lands in the same per-stage fields the build populated.
func TestStatsAccumulateAcrossMutations(t *testing.T) {
	l := demoLake(t)
	before := l.Stats()
	if err := l.Add(cityTable("T9", "Berlin", "Lyon")); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.DomainExtraction < before.DomainExtraction || after.Josie < before.Josie ||
		after.LSH < before.LSH || after.Santos < before.Santos {
		t.Errorf("mutation stats regressed: %+v -> %+v", before, after)
	}
}

// TestAddAfterKBMutation pins the staleness guard: mutating the KB between
// build and Add must refresh the lake annotator and re-annotate SANTOS, so
// the grown lake answers exactly like a fresh build over the current KB.
func TestAddAfterKBMutation(t *testing.T) {
	knowledge := kb.Demo()
	l, err := New(paperdata.CovidLake(), Options{Knowledge: knowledge})
	if err != nil {
		t.Fatal(err)
	}
	oldAnn := l.Annotator()
	// Teach the KB a new city; the lake's annotator snapshot predates it.
	knowledge.AddEntity("atlantis", "City")
	if oldAnn.UpToDate(knowledge) {
		t.Fatal("annotator unexpectedly current after KB mutation")
	}
	extra := cityTable("T9", "Atlantis", "Berlin")
	if err := l.Add(extra); err != nil {
		t.Fatal(err)
	}
	if l.Annotator() == oldAnn || !l.Annotator().UpToDate(knowledge) {
		t.Fatal("Add did not refresh the stale annotator")
	}
	// The grown lake must agree with a from-scratch build over the mutated
	// KB — including annotations of the pre-existing tables, which were
	// re-annotated rather than left as an incomparable old-ID snapshot.
	fresh, err := New(l.Tables(), Options{Knowledge: knowledge})
	if err != nil {
		t.Fatal(err)
	}
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	got, err1 := l.Santos().Query(q, city, 0)
	want, err2 := fresh.Santos().Query(q, city, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(got) != len(want) {
		t.Fatalf("post-mutation results: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score || got[i].MatchedColumn != want[i].MatchedColumn {
			t.Errorf("result %d: got %s/%v/%d, want %s/%v/%d", i,
				got[i].Table.Name, got[i].Score, got[i].MatchedColumn,
				want[i].Table.Name, want[i].Score, want[i].MatchedColumn)
		}
	}
}

// TestRefreshKBAfterMutation pins the explicit re-annotation trigger: a KB
// mutation with *no* subsequent Add used to leave SANTOS queries on the
// build-time snapshot until the next Add or rebuild; RefreshKB closes that
// gap on demand, mirroring TestAddAfterKBMutation without the Add.
func TestRefreshKBAfterMutation(t *testing.T) {
	knowledge := kb.Demo()
	l, err := New(paperdata.CovidLake(), Options{Knowledge: knowledge})
	if err != nil {
		t.Fatal(err)
	}
	if l.RefreshKB() {
		t.Fatal("RefreshKB reported work on an up-to-date lake")
	}
	oldAnn := l.Annotator()
	knowledge.AddEntity("atlantis", "City")
	if oldAnn.UpToDate(knowledge) {
		t.Fatal("annotator unexpectedly current after KB mutation")
	}
	if !l.RefreshKB() {
		t.Fatal("RefreshKB reported no-op on a stale lake")
	}
	if l.Annotator() == oldAnn || !l.Annotator().UpToDate(knowledge) {
		t.Fatal("RefreshKB did not replace the stale annotator")
	}
	// The refreshed lake must agree with a from-scratch build over the
	// mutated KB — annotations of every table re-ran against the recompiled
	// engine, not an incomparable old-ID snapshot.
	fresh, err := New(l.Tables(), Options{Knowledge: knowledge})
	if err != nil {
		t.Fatal(err)
	}
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	got, err1 := l.Santos().Query(q, city, 0)
	want, err2 := fresh.Santos().Query(q, city, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(got) != len(want) {
		t.Fatalf("post-refresh results: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Table.Name != want[i].Table.Name || got[i].Score != want[i].Score || got[i].MatchedColumn != want[i].MatchedColumn {
			t.Errorf("result %d: got %s/%v/%d, want %s/%v/%d", i,
				got[i].Table.Name, got[i].Score, got[i].MatchedColumn,
				want[i].Table.Name, want[i].Score, want[i].MatchedColumn)
		}
	}
	// A second refresh with no further mutation is a no-op again.
	if l.RefreshKB() {
		t.Fatal("RefreshKB reported work twice for one mutation")
	}
}
