// race_test.go exercises the mutable lake's concurrency contract under the
// race detector (CI runs this package with -race): mutations are exclusive
// with each other, while discovery queries and catalog accessors run
// concurrently with them mid-churn.
package lake_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/table"
)

func TestQueriesConcurrentWithMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := make([]*table.Table, 16)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("r%02d", i))
	}
	opts := lake.Options{Knowledge: difftest.DiffKB()}
	l, err := lake.New(pool[:8], opts)
	if err != nil {
		t.Fatal(err)
	}
	// A foreign query table: never added, so query-side extraction and
	// SANTOS query annotation run while the lake churns underneath.
	foreign := difftest.DiffTable(rng, "foreign")
	const rounds = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				vals := foreign.DistinctStrings(0)
				l.Josie().TopK(vals, 5)
				l.Join().Query(vals, 0.4, 0)
				if _, err := l.Santos().Query(foreign, 0, 0); err != nil {
					t.Errorf("worker %d: santos: %v", w, err)
					return
				}
				l.Get("r03")
				l.DomainFor("r03", 0)
				l.Tables()
				l.Domains()
				l.Size()
				l.Stats()
			}
		}(w)
	}
	// The mutator: churn the second half of the pool in and out, with
	// periodic compaction.
	for round := 0; round < rounds; round++ {
		batch := pool[8+round%8]
		if err := l.Add(batch); err != nil {
			t.Errorf("Add: %v", err)
			break
		}
		if round%5 == 4 {
			l.Compact()
		}
		if err := l.Remove(batch.Name); err != nil {
			t.Errorf("Remove: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if l.Size() != 8 {
		t.Errorf("post-churn size = %d", l.Size())
	}
}
