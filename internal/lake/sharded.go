package lake

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kb"
	"repro/internal/par"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Sharded partitions the catalog across N shard lakes, each with its own
// value/token dictionaries and discovery indexes. Tables route to shards by
// a stable hash of the table name (ShardIndex), so the placement of a table
// depends only on its name and the shard count — not on insertion order,
// process identity, or the rest of the catalog — which keeps the routing
// rule portable to shard-per-process deployments (see SHARDING.md).
//
// Sharding removes the last shared-interner contention from the build path:
// NewSharded builds the shard lakes concurrently and each shard interns
// into private dictionaries, so no lock is shared between shards at any
// point of preprocessing. The cost is that per-shard token IDs are
// incomparable across shards; discovery never compares them (rankings merge
// by score and name), and the cross-shard stages (integration, entity
// resolution) go through a composite-level dictionary instead.
//
// Discovery equivalence: a Sharded catalog answers every discovery query
// identically to an unsharded New over the same tables — same result sets,
// float64-bit-identical scores — pinned by the sharded differential
// harness. SANTOS, JOSIE and the syntactic baseline are per-candidate
// computations, exact by construction; the LSH Ensemble verifies
// exactly and its candidate generation is layout-independent at small
// partition sizes and under the KMV engine (see SHARDING.md for the
// banded-probing caveat at scale).
//
// Concurrency contract: identical to Lake — mutations are exclusive with
// each other, queries run concurrently with mutations, and the composite
// epoch (Epoch) lets multi-index readers detect and retry torn reads.
// Mutations must go through the Sharded value; mutating a shard returned by
// Shards() directly bypasses epoch accounting and catalog-order
// bookkeeping.
type Sharded struct {
	epoch atomic.Uint64
	mu    sync.RWMutex
	// shards is fixed at construction; the *Lake values are mutable, the
	// slice is not.
	shards []*Lake
	// order holds table names in catalog order (build order, then Add
	// order, minus removals) so Tables() reports the same sequence an
	// unsharded lake would.
	order     []string
	knowledge *kb.KB
	annotator *kb.Annotator
	dict      *table.Dict
}

// ShardIndex routes a table name to a shard: FNV-1a (64-bit) of the name,
// reduced mod n. The hash is fixed — never keyed, never seeded — so a
// table's placement is reproducible across processes and restarts, which a
// future shard-per-process deployment depends on.
func ShardIndex(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return int(h % uint64(n))
}

// NewSharded preprocesses tables into an n-shard lake. Validation matches
// New (nil tables, empty or duplicate names reject the whole input), with
// duplicates checked across the entire input before routing — two
// same-named tables landing on different shards must not coexist. KB
// synthesis (Options.SynthesizeKB) runs once over the full table set, so
// the knowledge base — and therefore every SANTOS annotation — is identical
// to an unsharded build; the shards then share the one compiled KB.
func NewSharded(tables []*table.Table, n int, opts Options) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("lake: sharded: shard count %d, need at least 1", n)
	}
	if !sketch.Known(opts.LSH.Engine) {
		return nil, fmt.Errorf("lake: unknown sketch engine %q", opts.LSH.Engine)
	}
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("lake: nil table")
		}
		if t.Name == "" {
			return nil, fmt.Errorf("lake: table with empty name")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("lake: duplicate table name %q", t.Name)
		}
		seen[t.Name] = true
	}
	knowledge := opts.Knowledge
	if opts.SynthesizeKB {
		syn := kb.Synthesize(tables, kb.SynthesizeOptions{})
		if knowledge != nil {
			knowledge = knowledge.Merge(syn)
		} else {
			knowledge = syn
		}
	}
	if knowledge == nil {
		knowledge = kb.New()
	}
	// Compile once before fanning out: KB.Compiled memoizes per version,
	// and seeding the memo here guarantees every shard (and the composite
	// annotator) holds the same *Compiled pointer — the identity UpToDate
	// staleness checks compare.
	compiled := knowledge.Compiled()
	shardOpts := opts
	shardOpts.Knowledge = knowledge
	shardOpts.SynthesizeKB = false // already folded into knowledge above
	parts := make([][]*table.Table, n)
	for _, t := range tables {
		i := ShardIndex(t.Name, n)
		parts[i] = append(parts[i], t)
	}
	s := &Sharded{
		shards:    make([]*Lake, n),
		knowledge: knowledge,
		dict:      table.NewDict(),
	}
	errs := make([]error, n)
	par.For(n, func(i int) {
		s.shards[i], errs[i] = New(parts[i], shardOpts)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	s.annotator = kb.NewAnnotator(compiled, s.dict)
	s.order = make([]string, 0, len(tables))
	for _, t := range tables {
		s.order = append(s.order, t.Name)
	}
	return s, nil
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardFor reports which shard the named table routes to.
func (s *Sharded) ShardFor(name string) int { return ShardIndex(name, len(s.shards)) }

// Shards returns the shard lakes in shard order. The slice is fixed for the
// Sharded's lifetime; treat it as read-only and route mutations through the
// Sharded itself.
func (s *Sharded) Shards() []*Lake { return s.shards }

// Epoch is the composite seqlock epoch — see Lake.Epoch for the protocol.
// It covers mutations routed through the Sharded (the only supported kind);
// per-shard epochs additionally tick underneath it.
func (s *Sharded) Epoch() uint64 { return s.epoch.Load() }

// Epochs returns the composite epoch followed by each shard's own epoch in
// shard order. Routed mutations perturb the composite element; a mutation
// applied to a shard behind the composite's back (unsupported, but possible)
// still perturbs that shard's element, so a discovery fan-out sampling the
// vector detects single-shard tears the scalar composite epoch cannot see.
func (s *Sharded) Epochs() []uint64 {
	out := make([]uint64, 0, 1+len(s.shards))
	out = append(out, s.epoch.Load())
	for _, sh := range s.shards {
		out = append(out, sh.Epoch())
	}
	return out
}

func (s *Sharded) beginMutation() { s.epoch.Add(1) }
func (s *Sharded) endMutation()   { s.epoch.Add(1) }

// Add routes the new tables to their shards and indexes each shard's batch
// concurrently. Validation is atomic across the whole composite: a nil
// table, an empty name, or a name duplicating any batch member or any
// table on any shard rejects the entire batch before anything is indexed.
// KB semantics match Lake.Add: a KB mutated since the last (re-)annotation
// refreshes every shard — including shards receiving no tables — so
// compiled type IDs stay comparable catalog-wide.
func (s *Sharded) Add(tables ...*table.Table) error {
	if len(tables) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := make(map[string]bool, len(tables))
	perShard := make([][]*table.Table, len(s.shards))
	for _, t := range tables {
		if t == nil {
			return fmt.Errorf("lake: add: nil table")
		}
		if t.Name == "" {
			return fmt.Errorf("lake: add: table with empty name")
		}
		shard := s.ShardFor(t.Name)
		if _, dup := s.shards[shard].Get(t.Name); dup || batch[t.Name] {
			return fmt.Errorf("lake: add: duplicate table name %q", t.Name)
		}
		batch[t.Name] = true
		perShard[shard] = append(perShard[shard], t)
	}
	stale := !s.annotator.UpToDate(s.knowledge)
	s.beginMutation()
	defer s.endMutation()
	if stale {
		s.annotator = kb.NewAnnotator(s.knowledge.Compiled(), s.dict)
	}
	errs := make([]error, len(s.shards))
	par.For(len(s.shards), func(i int) {
		if len(perShard[i]) > 0 {
			errs[i] = s.shards[i].Add(perShard[i]...)
		} else if stale {
			s.shards[i].RefreshKB()
		}
	})
	if err := errors.Join(errs...); err != nil {
		// Pre-validated batches cannot fail shard-side unless a shard was
		// mutated behind the composite's back; surface it rather than
		// recording names that may not all be indexed.
		return err
	}
	for _, t := range tables {
		s.order = append(s.order, t.Name)
	}
	return nil
}

// Remove drops the named tables from their shards concurrently. Validation
// is atomic: an unknown name rejects the whole batch (duplicates within the
// batch are tolerated, as with Lake.Remove). A shard left with zero tables
// stays live and answers discovery queries with empty rankings.
func (s *Sharded) Remove(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	doomed := make(map[string]bool, len(names))
	perShard := make([][]string, len(s.shards))
	for _, n := range names {
		shard := s.ShardFor(n)
		if _, ok := s.shards[shard].Get(n); !ok {
			return fmt.Errorf("lake: remove: no table %q", n)
		}
		if !doomed[n] {
			doomed[n] = true
			perShard[shard] = append(perShard[shard], n)
		}
	}
	s.beginMutation()
	defer s.endMutation()
	errs := make([]error, len(s.shards))
	par.For(len(s.shards), func(i int) {
		if len(perShard[i]) > 0 {
			errs[i] = s.shards[i].Remove(perShard[i]...)
		}
	})
	if err := errors.Join(errs...); err != nil {
		return err
	}
	kept := s.order[:0]
	for _, n := range s.order {
		if !doomed[n] {
			kept = append(kept, n)
		}
	}
	s.order = kept
	return nil
}

// Compact forces every shard's index compaction (concurrently). Like
// Lake.Compact it never changes query answers, so it does not tick the
// epoch.
func (s *Sharded) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	par.For(len(s.shards), func(i int) { s.shards[i].Compact() })
}

// RefreshKB re-annotates every shard (and the composite annotator) against
// the knowledge base as compiled now, reporting whether anything was stale.
// See Lake.RefreshKB.
func (s *Sharded) RefreshKB() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.annotator.UpToDate(s.knowledge) {
		return false
	}
	s.beginMutation()
	defer s.endMutation()
	s.annotator = kb.NewAnnotator(s.knowledge.Compiled(), s.dict)
	par.For(len(s.shards), func(i int) { s.shards[i].RefreshKB() })
	return true
}

// Get returns a table by name, from the shard its name routes to.
func (s *Sharded) Get(name string) (*table.Table, bool) {
	return s.shards[s.ShardFor(name)].Get(name)
}

// Size reports the current number of tables across all shards.
func (s *Sharded) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Tables returns the current tables in catalog order — build order, then
// Add order, minus removals — matching what an unsharded lake over the same
// history would report. The returned slice is a fresh snapshot.
func (s *Sharded) Tables() []*table.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*table.Table, 0, len(s.order))
	for _, n := range s.order {
		if t, ok := s.shards[ShardIndex(n, len(s.shards))].Get(n); ok {
			out = append(out, t)
		}
	}
	return out
}

// Knowledge returns the (possibly merged) knowledge base every shard was
// annotated with.
func (s *Sharded) Knowledge() *kb.KB { return s.knowledge }

// Annotator returns the composite-level KB annotation cache, used by the
// cross-shard stages (integration matching, entity resolution). It is
// backed by the composite Dict rather than any shard's dictionary, so its
// codes are consistent across tables from different shards.
func (s *Sharded) Annotator() *kb.Annotator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.annotator
}

// Dict returns the composite-level value dictionary. Shard dictionaries are
// private to their shards (that privacy is the build-path win), so
// cross-shard integration interns into this one lazily instead of hitting a
// prefilled lake dictionary; see SHARDING.md.
func (s *Sharded) Dict() *table.Dict { return s.dict }

// SketchEngine reports the sketch engine the shards' containment indexes
// run on (identical across shards — they share Options).
func (s *Sharded) SketchEngine() sketch.Engine { return s.shards[0].SketchEngine() }

// Stats returns the sum of the shards' per-stage preprocessing timings.
// Stages run concurrently across and within shards, so the sum can exceed
// build wall time by roughly the parallelism factor.
func (s *Sharded) Stats() BuildStats {
	var sum BuildStats
	for _, sh := range s.shards {
		st := sh.Stats()
		sum.KBPrep += st.KBPrep
		sum.DomainExtraction += st.DomainExtraction
		sum.Santos += st.Santos
		sum.LSH += st.LSH
		sum.Josie += st.Josie
	}
	return sum
}
