// sharded_differential_test.go extends the rebuild-equivalence harness to
// the sharded catalog: the same randomized Add / Remove / Compact schedules
// are mirrored into a lake.Sharded and an unsharded lake.New twin, and
// after every mutation the two must answer discovery byte-identically —
// per-method rankings at full float64 bit precision and the merged
// integration set. Combined with differential_test.go (mutated unsharded ≡
// fresh unsharded), this pins the PR 9 invariant: sharded ≡ unsharded,
// regardless of shard count, routing outcome, or mutation history —
// including shards emptied by removals.
package lake_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/discovery"
	"repro/internal/lake"
	"repro/internal/table"
)

// verifyShardedEquivalence compares discovery answers between the sharded
// catalog and its unsharded twin across several query tables, plus the
// catalog views (size, membership, table order) the serving layer exposes.
func verifyShardedEquivalence(t *testing.T, sh *lake.Sharded, un *lake.Lake, pool []*table.Table, rng *rand.Rand, ctx string) {
	t.Helper()
	reg := discovery.NewRegistry()
	for q := 0; q < 3; q++ {
		query := pool[rng.Intn(len(pool))]
		col := 0
		if rng.Intn(3) == 0 {
			col = rng.Intn(query.NumCols())
		}
		k := rng.Intn(3) * 3 // 0 = all
		got := difftest.DiscoverySig(reg, sh, query, col, k)
		want := difftest.DiscoverySig(reg, un, query, col, k)
		if got != want {
			t.Fatalf("%s: query %q col %d k %d: sharded diverged from unsharded\n got:\n%s\nwant:\n%s", ctx, query.Name, col, k, got, want)
		}
	}
	if got, want := sh.Size(), un.Size(); got != want {
		t.Fatalf("%s: Size: sharded %d, unsharded %d", ctx, got, want)
	}
	shTables, unTables := sh.Tables(), un.Tables()
	if len(shTables) != len(unTables) {
		t.Fatalf("%s: Tables: sharded %d, unsharded %d", ctx, len(shTables), len(unTables))
	}
	for i := range shTables {
		if shTables[i].Name != unTables[i].Name {
			t.Fatalf("%s: Tables[%d]: sharded %q, unsharded %q (catalog order must match)", ctx, i, shTables[i].Name, unTables[i].Name)
		}
	}
}

// TestShardedDifferentialEquivalence drives 200 randomized mutation
// schedules through a sharded catalog and an unsharded twin in lockstep,
// verifying byte-identical discovery after every mutation. Shard counts
// cycle 2-4; some schedules exceed the table count with shards, so empty
// shards occur both at build time and through removals.
func TestShardedDifferentialEquivalence(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	knowledge := difftest.DiffKB()
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			opts := lake.Options{Knowledge: knowledge}
			if seed%5 == 0 {
				// Some schedules synthesize the KB: NewSharded must fold the
				// full table set into one synthesis, exactly as New does.
				opts.SynthesizeKB = true
			}
			shardN := 2 + seed%3
			pool := make([]*table.Table, 12)
			for i := range pool {
				pool[i] = difftest.DiffTable(rng, fmt.Sprintf("s%02d", i))
			}
			inLake := make([]bool, len(pool))
			var initial []*table.Table
			for i := 0; i < 2+rng.Intn(6); i++ {
				initial = append(initial, pool[i])
				inLake[i] = true
			}
			sh, err := lake.NewSharded(initial, shardN, opts)
			if err != nil {
				t.Fatal(err)
			}
			un, err := lake.New(initial, opts)
			if err != nil {
				t.Fatal(err)
			}
			verifyShardedEquivalence(t, sh, un, pool, rand.New(rand.NewSource(int64(seed))), fmt.Sprintf("seed %d build", seed))
			ops := 8
			for op := 0; op < ops; op++ {
				var in, out []int
				for i, ok := range inLake {
					if ok {
						in = append(in, i)
					} else {
						out = append(out, i)
					}
				}
				mutated := false
				switch c := rng.Intn(8); {
				case c <= 2 && len(out) > 0: // add 1-2 tables
					n := 1 + rng.Intn(2)
					var batch []*table.Table
					for _, i := range out[:min(n, len(out))] {
						batch = append(batch, pool[i])
						inLake[i] = true
					}
					if err := sh.Add(batch...); err != nil {
						t.Fatalf("op %d: sharded Add: %v", op, err)
					}
					if err := un.Add(batch...); err != nil {
						t.Fatalf("op %d: unsharded Add: %v", op, err)
					}
					mutated = true
				case c <= 5 && len(in) > 0: // remove one table
					i := in[rng.Intn(len(in))]
					if err := sh.Remove(pool[i].Name); err != nil {
						t.Fatalf("op %d: sharded Remove: %v", op, err)
					}
					if err := un.Remove(pool[i].Name); err != nil {
						t.Fatalf("op %d: unsharded Remove: %v", op, err)
					}
					inLake[i] = false
					mutated = true
				case c == 6:
					sh.Compact()
					un.Compact()
					mutated = true
				default: // mid-churn query against the sharded catalog only
					reg := discovery.NewRegistry()
					q := pool[rng.Intn(len(pool))]
					_ = difftest.DiscoverySig(reg, sh, q, 0, 5)
				}
				if mutated {
					// Same per-checkpoint query draws on both sides: derive the
					// query rng deterministically from (seed, op).
					qrng := rand.New(rand.NewSource(int64(seed)*100 + int64(op)))
					verifyShardedEquivalence(t, sh, un, pool, qrng, fmt.Sprintf("seed %d op %d", seed, op))
				}
			}
			verifyShardedEquivalence(t, sh, un, pool, rand.New(rand.NewSource(int64(seed)+7777)), fmt.Sprintf("seed %d final", seed))
			// Catalog membership matches the schedule's view on both forms.
			for i, ok := range inLake {
				name := pool[i].Name
				if _, got := sh.Get(name); got != ok {
					t.Errorf("sharded Get(%s) = %v, want %v", name, got, ok)
				}
			}
		})
	}
}

// TestShardedEmptyShard pins the empty-shard cases directly: a shard left
// with zero tables by removals keeps answering (empty rankings merge away),
// equivalence with the unsharded twin holds through emptying and refilling,
// and a build with more shards than tables works.
func TestShardedEmptyShard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const shardN = 3
	// Generate tables until one shard owns at least two and every shard is
	// populated, so removing one shard's tables empties exactly that shard.
	var pool []*table.Table
	perShard := make([][]string, shardN)
	for i := 0; len(pool) < 9; i++ {
		name := fmt.Sprintf("e%02d", i)
		tbl := difftest.DiffTable(rng, name)
		pool = append(pool, tbl)
		perShard[lake.ShardIndex(name, shardN)] = append(perShard[lake.ShardIndex(name, shardN)], name)
	}
	target := 0
	for s := range perShard {
		if len(perShard[s]) >= 2 && len(perShard[target]) < 2 {
			target = s
		}
	}
	if len(perShard[target]) == 0 {
		t.Fatalf("routing never hit shard %d; per-shard counts %v", target, perShard)
	}
	opts := lake.Options{Knowledge: difftest.DiffKB()}
	sh, err := lake.NewSharded(pool, shardN, opts)
	if err != nil {
		t.Fatal(err)
	}
	un, err := lake.New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Empty the target shard via the composite.
	if err := sh.Remove(perShard[target]...); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := un.Remove(perShard[target]...); err != nil {
		t.Fatalf("unsharded Remove: %v", err)
	}
	if got := sh.Shards()[target].Size(); got != 0 {
		t.Fatalf("shard %d still holds %d tables after removing %v", target, got, perShard[target])
	}
	verifyShardedEquivalence(t, sh, un, pool, rand.New(rand.NewSource(1)), "emptied shard")
	// Refill the emptied shard and verify again.
	var refill []*table.Table
	for _, tbl := range pool {
		for _, n := range perShard[target] {
			if tbl.Name == n {
				refill = append(refill, tbl)
			}
		}
	}
	if err := sh.Add(refill...); err != nil {
		t.Fatalf("Add refill: %v", err)
	}
	if err := un.Add(refill...); err != nil {
		t.Fatalf("unsharded Add refill: %v", err)
	}
	verifyShardedEquivalence(t, sh, un, pool, rand.New(rand.NewSource(2)), "refilled shard")

	// More shards than tables: every surplus shard is empty from birth.
	few := []*table.Table{difftest.DiffTable(rng, "lonely")}
	wide, err := lake.NewSharded(few, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	unFew, err := lake.New(few, opts)
	if err != nil {
		t.Fatal(err)
	}
	verifyShardedEquivalence(t, wide, unFew, few, rand.New(rand.NewSource(3)), "more shards than tables")
}
