package lake_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/sketch"
	"repro/internal/table"
)

func shardedFixture(t *testing.T, n int) (*lake.Sharded, []*table.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	tables := make([]*table.Table, 6)
	for i := range tables {
		tables[i] = difftest.DiffTable(rng, string(rune('a'+i))+"_tbl")
	}
	s, err := lake.NewSharded(tables, n, lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		t.Fatal(err)
	}
	return s, tables
}

// TestShardIndexStable pins the routing hash: FNV-1a 64 of the name mod n.
// These values must never change — a future shard-per-process deployment
// routes by recomputing them, so an accidental hash change would strand
// every persisted placement.
func TestShardIndexStable(t *testing.T) {
	// Independent FNV-1a computation (hash/fnv semantics) as the oracle.
	fnv := func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		return h
	}
	for _, name := range []string{"", "cities", "covid_vaccines", "a", "寿司"} {
		for _, n := range []int{1, 2, 3, 8, 17} {
			want := int(fnv(name) % uint64(n))
			if got := lake.ShardIndex(name, n); got != want {
				t.Fatalf("ShardIndex(%q, %d) = %d, want %d", name, n, got, want)
			}
		}
	}
	// A few literal pins so a hash-function change fails loudly even if the
	// oracle were changed in the same commit.
	if got := lake.ShardIndex("cities", 4); got != 2 {
		t.Errorf("ShardIndex(cities, 4) = %d, want pinned 2", got)
	}
	if got := lake.ShardIndex("covid_vaccines", 3); got != 2 {
		t.Errorf("ShardIndex(covid_vaccines, 3) = %d, want pinned 2", got)
	}
}

func TestNewShardedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := difftest.DiffTable(rng, "a")
	b := difftest.DiffTable(rng, "b")
	if _, err := lake.NewSharded([]*table.Table{a}, 0, lake.Options{}); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := lake.NewSharded([]*table.Table{a, nil}, 2, lake.Options{}); err == nil || !strings.Contains(err.Error(), "nil table") {
		t.Errorf("nil table: %v", err)
	}
	dup := difftest.DiffTable(rng, "a")
	if _, err := lake.NewSharded([]*table.Table{a, b, dup}, 2, lake.Options{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate name across input: %v", err)
	}
	if _, err := lake.NewSharded([]*table.Table{a}, 2, lake.Options{LSH: lshOptionsWithEngine("bogus")}); err == nil || !strings.Contains(err.Error(), "unknown sketch engine") {
		t.Errorf("unknown engine: %v", err)
	}
	// n=1 is legal: one shard, still a Sharded.
	s, err := lake.NewSharded([]*table.Table{a, b}, 1, lake.Options{})
	if err != nil {
		t.Fatalf("n=1: %v", err)
	}
	if s.NumShards() != 1 || s.Size() != 2 {
		t.Errorf("n=1: NumShards=%d Size=%d", s.NumShards(), s.Size())
	}
}

func TestShardedAddRemoveAtomicity(t *testing.T) {
	s, tables := shardedFixture(t, 3)
	rng := rand.New(rand.NewSource(2))
	fresh := difftest.DiffTable(rng, "fresh")
	// A batch with one duplicate (against the catalog) must reject whole.
	if err := s.Add(fresh, tables[0]); err == nil {
		t.Fatal("Add with duplicate accepted")
	}
	if _, ok := s.Get("fresh"); ok {
		t.Error("failed Add left a batch member indexed")
	}
	if s.Size() != len(tables) {
		t.Errorf("Size after failed Add = %d, want %d", s.Size(), len(tables))
	}
	// A batch duplicating within itself must reject whole.
	f2 := difftest.DiffTable(rng, "fresh")
	if err := s.Add(fresh, f2); err == nil {
		t.Fatal("Add with in-batch duplicate accepted")
	}
	// Remove with one unknown name must reject whole.
	if err := s.Remove(tables[1].Name, "nope"); err == nil {
		t.Fatal("Remove with unknown name accepted")
	}
	if _, ok := s.Get(tables[1].Name); !ok {
		t.Error("failed Remove dropped a batch member")
	}
	// Epoch untouched by failed mutations, even afterwards, bumped by 2 per
	// successful one.
	e0 := s.Epoch()
	if e0%2 != 0 {
		t.Fatalf("idle epoch %d is odd", e0)
	}
	if err := s.Add(fresh); err != nil {
		t.Fatal(err)
	}
	if e := s.Epoch(); e != e0+2 {
		t.Errorf("epoch after Add = %d, want %d", e, e0+2)
	}
	if err := s.Remove("fresh"); err != nil {
		t.Fatal(err)
	}
	if e := s.Epoch(); e != e0+4 {
		t.Errorf("epoch after Remove = %d, want %d", e, e0+4)
	}
	s.Compact() // answer-preserving: no epoch tick
	if e := s.Epoch(); e != e0+4 {
		t.Errorf("epoch after Compact = %d, want %d", e, e0+4)
	}
}

func TestShardedCatalogViews(t *testing.T) {
	s, tables := shardedFixture(t, 3)
	if s.Size() != len(tables) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(tables))
	}
	for i, tbl := range s.Tables() {
		if tbl.Name != tables[i].Name {
			t.Fatalf("Tables()[%d] = %q, want %q (insertion order)", i, tbl.Name, tables[i].Name)
		}
	}
	for _, tbl := range tables {
		got, ok := s.Get(tbl.Name)
		if !ok || got != tbl {
			t.Fatalf("Get(%q) = %v, %v", tbl.Name, got, ok)
		}
		shard := s.Shards()[s.ShardFor(tbl.Name)]
		if _, ok := shard.Get(tbl.Name); !ok {
			t.Fatalf("table %q not on its routed shard %d", tbl.Name, s.ShardFor(tbl.Name))
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get(absent) reported present")
	}
	if got := s.SketchEngine(); got != sketch.MinHash {
		t.Errorf("SketchEngine = %q, want %q", got, sketch.MinHash)
	}
}

func TestShardedKMVEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tables := []*table.Table{difftest.DiffTable(rng, "k1"), difftest.DiffTable(rng, "k2"), difftest.DiffTable(rng, "k3")}
	opts := lake.Options{Knowledge: difftest.DiffKB(), LSH: lshOptionsWithEngine(string(sketch.KMV))}
	s, err := lake.NewSharded(tables, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SketchEngine(); got != sketch.KMV {
		t.Fatalf("SketchEngine = %q, want %q", got, sketch.KMV)
	}
	un, err := lake.New(tables, opts)
	if err != nil {
		t.Fatal(err)
	}
	verifyShardedEquivalence(t, s, un, tables, rand.New(rand.NewSource(4)), "kmv engine")
}

// TestShardedRefreshKB pins KB-mutation semantics across shards: after the
// shared KB is mutated, a composite Add must re-annotate every shard —
// including shards receiving no tables — exactly as the unsharded lake
// re-annotates everything.
func TestShardedRefreshKB(t *testing.T) {
	knowledge := difftest.DiffKB()
	rng := rand.New(rand.NewSource(5))
	tables := make([]*table.Table, 5)
	for i := range tables {
		tables[i] = difftest.DiffTable(rng, string(rune('r'+i))+"_kb")
	}
	opts := lake.Options{Knowledge: knowledge}
	s, err := lake.NewSharded(tables, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	un, err := lake.New(tables, opts)
	if err != nil {
		t.Fatal(err)
	}
	knowledge.AddEntity("atlantis", "city")
	if !s.RefreshKB() {
		t.Fatal("RefreshKB reported nothing stale after a KB mutation")
	}
	if s.RefreshKB() {
		t.Fatal("second RefreshKB reported stale")
	}
	if !un.RefreshKB() {
		t.Fatal("unsharded RefreshKB reported nothing stale")
	}
	verifyShardedEquivalence(t, s, un, tables, rand.New(rand.NewSource(6)), "after RefreshKB")

	// Mutate again; this time let a composite Add trigger the refresh.
	knowledge.AddEntity("el dorado", "city")
	extra := difftest.DiffTable(rng, "extra_kb")
	if err := s.Add(extra); err != nil {
		t.Fatal(err)
	}
	if err := un.Add(extra); err != nil {
		t.Fatal(err)
	}
	pool := append(append([]*table.Table(nil), tables...), extra)
	verifyShardedEquivalence(t, s, un, pool, rand.New(rand.NewSource(7)), "Add with stale KB")
}

// lshOptionsWithEngine builds lake LSH options with just the engine set.
func lshOptionsWithEngine(e string) lshensemble.Options {
	return lshensemble.Options{Engine: sketch.Engine(e)}
}
