package lake

import (
	"fmt"
	"time"

	"repro/internal/josie"
	"repro/internal/kb"
	"repro/internal/lshensemble"
	"repro/internal/par"
	"repro/internal/santos"
	"repro/internal/table"
)

// This file is the persistence surface of the lake: Export flattens
// everything preprocessing computed into a State of plain tables, strings
// and integers, and Restore rebuilds a query-identical Lake from it — no
// domain extraction, no MinHash signing, no KB annotation. What Restore
// still recomputes is exactly the cheap deterministic derivations:
// dictionary maps (the snapshot is the intern log, so a bulk one-pass
// reconstruction reproduces every ID), token
// fingerprints (cached FNV-1a per token), the JOSIE CSR layout (a counting
// pass over persisted token IDs), LSH band tables (re-banding persisted
// signatures), and the compiled KB engine (kb.Compile assigns the same
// dense IDs to equal KB content, which keeps the persisted SANTOS type IDs
// and packed edge keys meaningful).

// DomainState is one extracted column domain in snapshot form. The member
// strings are not stored: TokenIDs index into State.Tokens
// (member j is Tokens[TokenIDs[j]-1]), mirroring how the live lake keeps
// domains in the integer token universe.
type DomainState struct {
	Table      string
	Column     int
	ColumnName string
	TokenIDs   []uint32
	// Signature is the domain's cached sketch under State.LSH's engine and
	// geometry: a MinHash signature (exactly NumHashes words) or a KMV
	// bottom-k sketch (at most NumHashes words, strictly ascending).
	Signature []uint64
}

// State is the flattened, restorable form of a Lake. It references the
// live lake's tables (Export does not deep-copy rows — tables are treated
// as immutable lake-wide); everything else is detached.
type State struct {
	Tables []*table.Table
	// KB is the lake's knowledge base content (curated plus any build-time
	// synthesis, already merged).
	KB  kb.Dump
	LSH lshensemble.Options
	// DictVals is the value dictionary in ID order (vals[i] interned under
	// ID i+1); cells must round-trip exactly (kind and payload), since
	// Equal-collapsed representatives are what the dictionary stores.
	DictVals []table.Value
	// Tokens is the token dictionary in ID order.
	Tokens  []string
	Domains []DomainState
	Santos  []santos.TableState
}

// Export flattens the lake. It holds the catalog read lock, so it is
// exclusive with mutations and captures a consistent cut of all three
// indexes and both dictionaries.
func (l *Lake) Export() (State, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	st := State{
		Tables:   append([]*table.Table(nil), l.tables...),
		KB:       l.knowledge.Dump(),
		LSH:      l.joinIx.Options(),
		DictVals: l.dict.Snapshot(),
		Tokens:   l.tokens.Snapshot(),
		Santos:   l.santosIx.Export(),
	}
	sigs := l.joinIx.ExportSignatures()
	st.Domains = make([]DomainState, len(l.domains))
	for i := range l.domains {
		d := &l.domains[i]
		sig, ok := sigs[d.Key()]
		if !ok {
			return State{}, fmt.Errorf("lake: export: no cached signature for domain %s", d.Key())
		}
		st.Domains[i] = DomainState{
			Table:      d.Table,
			Column:     d.Column,
			ColumnName: d.ColumnName,
			TokenIDs:   append([]uint32(nil), d.IDs...),
			Signature:  append([]uint64(nil), sig...),
		}
	}
	return st, nil
}

// Restore rebuilds a Lake from an exported State. The result answers every
// discovery, integration and resolution query identically to the exporting
// lake (and therefore — by the differential rebuild-equivalence guarantee
// every mutation maintains — to a fresh New over the same tables).
// Restore validates the state's internal references and fails with a
// descriptive error rather than building a corrupt lake.
//
// Restore takes ownership of the state's backing slices (DictVals, Tokens):
// callers must not reuse a State after passing it in. Both persistence
// callers decode a fresh State per Restore, so the alternative — copying a
// multi-megabyte dictionary on the warm-restart critical path — would only
// ever protect dead stores.
func Restore(s State) (*Lake, error) {
	l := &Lake{
		byName: make(map[string]*table.Table, len(s.Tables)),
	}
	for _, t := range s.Tables {
		if t == nil {
			return nil, fmt.Errorf("lake: restore: nil table")
		}
		if t.Name == "" {
			return nil, fmt.Errorf("lake: restore: table with empty name")
		}
		if _, dup := l.byName[t.Name]; dup {
			return nil, fmt.Errorf("lake: restore: duplicate table name %q", t.Name)
		}
		l.byName[t.Name] = t
		l.tables = append(l.tables, t)
	}
	// The snapshots are the dictionaries' intern logs, so the bulk restore
	// constructors reproduce every ID of the exporting lake; they reject a
	// log that sequential interning would have assigned differently (e.g. a
	// duplicate value that Equal-collapses onto an earlier ID).
	//
	// Restoration runs as two concurrent dependency chains over disjoint
	// state — the value-dictionary side (KB → dict → annotator → SANTOS) and
	// the token side (tokens → domains → LSH + JOSIE) share nothing until
	// both finish, so neither waits on the other's slowest stage.
	var dictErr, tokErr, domErr, santosErr, lshErr error
	par.Do(
		func() {
			t := time.Now()
			l.knowledge = kb.FromDump(s.KB)
			compiled := l.knowledge.Compiled()
			l.stats.KBPrep = time.Since(t)
			if l.dict, dictErr = table.RestoreDict(s.DictVals); dictErr != nil {
				return
			}
			l.annotator = kb.NewAnnotator(compiled, l.dict)
			t = time.Now()
			l.santosIx, santosErr = santos.Restore(l.tables, l.annotator, s.Santos)
			l.stats.Santos = time.Since(t)
		},
		func() {
			t0 := time.Now()
			if l.tokens, tokErr = table.RestoreTokenDict(s.Tokens); tokErr != nil {
				return
			}
			l.domains = make([]lshensemble.Domain, len(s.Domains))
			sigs := make([][]uint64, len(s.Domains))
			domErrs := make([]error, len(s.Domains))
			par.For(len(s.Domains), func(i int) {
				ds := &s.Domains[i]
				vals := make([]string, len(ds.TokenIDs))
				for j, id := range ds.TokenIDs {
					if id == 0 || int64(id) > int64(len(s.Tokens)) {
						domErrs[i] = fmt.Errorf("lake: restore: domain %s[%d]: token ID %d out of range", ds.Table, ds.Column, id)
						return
					}
					vals[j] = s.Tokens[id-1]
				}
				// Restore owns the state (see the doc comment), so the token
				// IDs are adopted without a copy. Fingerprints stay nil: they
				// are only ever read to sign a domain, and restored domains
				// carry their persisted signatures — domains added later come
				// through lake extraction, which caches fingerprints itself.
				l.domains[i] = lshensemble.Domain{
					Table:      ds.Table,
					Column:     ds.Column,
					ColumnName: ds.ColumnName,
					Values:     vals,
					IDs:        ds.TokenIDs,
				}
				sigs[i] = ds.Signature
			})
			for _, err := range domErrs {
				if err != nil {
					domErr = err
					return
				}
			}
			l.domainIdx = make(map[colRef]int, len(l.domains))
			for i, d := range l.domains {
				l.domainIdx[colRef{d.Table, d.Column}] = i
			}
			l.stats.DomainExtraction = time.Since(t0)
			par.Do(
				func() {
					t := time.Now()
					l.joinIx, lshErr = lshensemble.Restore(l.domains, sigs, s.LSH, l.tokens)
					l.stats.LSH = time.Since(t)
				},
				func() {
					t := time.Now()
					sets := make([]josie.Set, len(l.domains))
					for i := range l.domains {
						d := &l.domains[i]
						sets[i] = josie.Set{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values, IDs: d.IDs}
					}
					l.josieIx = josie.BuildWithDict(sets, l.tokens)
					l.stats.Josie = time.Since(t)
				},
			)
		},
	)
	if dictErr != nil {
		return nil, fmt.Errorf("lake: restore: %w", dictErr)
	}
	if tokErr != nil {
		return nil, fmt.Errorf("lake: restore: %w", tokErr)
	}
	if domErr != nil {
		return nil, domErr
	}
	if santosErr != nil {
		return nil, fmt.Errorf("lake: restore: %w", santosErr)
	}
	if lshErr != nil {
		return nil, fmt.Errorf("lake: restore: %w", lshErr)
	}
	return l, nil
}
