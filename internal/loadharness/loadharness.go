// Package loadharness drives a live dialite server to a target load and
// measures what came back: achieved QPS, p50/p99/max latency, and the
// OK/shed/error split. It exists so serving throughput is a tracked number
// like ns/op — the benchmark publishes max sustainable QPS into
// BENCH_<PR>.json via scripts/bench_snapshot.sh, and CI runs a fixed
// low-QPS smoke asserting zero errors and a bounded p99.
//
// Two driving modes:
//
//   - Paced (Options.QPS > 0): an open-loop arrival process. A pacer emits
//     ticks at the target rate and a bounded worker pool serves them; when
//     every worker is busy the tick is dropped and counted (Missed), so a
//     saturated server shows up as achieved < target rather than as a
//     coordinated-omission-flattered latency curve.
//   - Closed-loop (Options.QPS == 0): Workers goroutines issue requests
//     back-to-back, measuring the server's ceiling under Workers
//     concurrent clients.
//
// Saturate steps a paced run upward until the server stops keeping up
// (errors, excess shedding, or achieved falling behind target) and reports
// the last healthy step as the max sustainable QPS.
package loadharness

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request is one workload element; drivers round-robin over the list.
type Request struct {
	Method string
	Path   string // joined to the target base URL
	Body   []byte // sent as application/json when non-empty
}

// Options tunes one measurement run.
type Options struct {
	// QPS is the paced arrival rate; 0 runs closed-loop instead.
	QPS float64
	// Workers is the concurrency: pool size for paced mode (default 64),
	// client count for closed-loop mode (default 8).
	Workers int
	// Duration is how long to drive (default 2s).
	Duration time.Duration
	// Requests is the workload, round-robined. Required.
	Requests []Request
}

// Result is what one run measured. OK + Shed + Errors == Sent; a paced run
// additionally reports Missed ticks the worker pool could not serve (they
// were never sent, so they appear nowhere else).
type Result struct {
	TargetQPS   float64       `json:"target_qps"` // 0 for closed-loop
	AchievedQPS float64       `json:"achieved_qps"`
	Duration    time.Duration `json:"duration_ns"`
	Sent        int64         `json:"sent"`
	OK          int64         `json:"ok"`     // 2xx
	Shed        int64         `json:"shed"`   // 429 or 503 (admission, warming, degraded)
	Errors      int64         `json:"errors"` // anything else, transport errors included
	Missed      int64         `json:"missed"` // paced ticks dropped: all workers busy
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	Max         time.Duration `json:"max_ns"`
}

// ShedRatio is the shed fraction of everything sent (0 when nothing was).
func (r Result) ShedRatio() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// Run drives baseURL with the workload for opts.Duration and reports what
// happened. client may be nil for http.DefaultClient. Latencies are
// recorded per request (including shed and error responses — a fast 429 is
// part of the server's behavior under load).
func Run(ctx context.Context, client *http.Client, baseURL string, opts Options) (Result, error) {
	if len(opts.Requests) == 0 {
		return Result{}, fmt.Errorf("loadharness: empty workload")
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if client == nil {
		client = http.DefaultClient
	}
	if opts.QPS > 0 {
		return runPaced(ctx, client, baseURL, opts)
	}
	return runClosed(ctx, client, baseURL, opts)
}

// recorder accumulates per-worker observations; merged after the run so the
// hot path never contends on a shared lock.
type recorder struct {
	ok, shed, errs int64
	lats           []time.Duration
}

func (rec *recorder) observe(status int, lat time.Duration, err error) {
	rec.lats = append(rec.lats, lat)
	switch {
	case err != nil:
		rec.errs++
	case status >= 200 && status < 300:
		rec.ok++
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		rec.shed++
	default:
		rec.errs++
	}
}

func doOne(ctx context.Context, client *http.Client, baseURL string, r Request, rec *recorder) {
	var body io.Reader
	if len(r.Body) > 0 {
		body = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, baseURL+r.Path, body)
	if err != nil {
		rec.observe(0, 0, err)
		return
	}
	if len(r.Body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		// A request cut off by the run deadline is not the server's fault;
		// don't count it at all.
		if ctx.Err() != nil {
			return
		}
		rec.observe(0, lat, err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.observe(resp.StatusCode, lat, nil)
}

func runPaced(ctx context.Context, client *http.Client, baseURL string, opts Options) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 64
	}
	interval := time.Duration(float64(time.Second) / opts.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	ticks := make(chan struct{}, workers)
	var sent, missed atomic.Int64
	recs := make([]recorder, workers)
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(rec *recorder) {
			defer wg.Done()
			idx := 0
			for range ticks {
				sent.Add(1)
				doOne(runCtx, client, baseURL, opts.Requests[idx%len(opts.Requests)], rec)
				idx++
			}
		}(&recs[i])
	}
	start := time.Now()
	ticker := time.NewTicker(interval)
pace:
	for {
		select {
		case <-runCtx.Done():
			break pace
		case <-ticker.C:
			select {
			case ticks <- struct{}{}:
			default:
				missed.Add(1) // open loop: the arrival happened, service didn't
			}
		}
	}
	ticker.Stop()
	close(ticks)
	wg.Wait()
	res := merge(recs, time.Since(start))
	res.TargetQPS = opts.QPS
	res.Sent = sent.Load()
	res.Missed = missed.Load()
	return res, ctx.Err()
}

func runClosed(ctx context.Context, client *http.Client, baseURL string, opts Options) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 8
	}
	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	var sent atomic.Int64
	recs := make([]recorder, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		wg.Add(1)
		go func(worker int, rec *recorder) {
			defer wg.Done()
			for idx := worker; runCtx.Err() == nil; idx++ {
				sent.Add(1)
				doOne(runCtx, client, baseURL, opts.Requests[idx%len(opts.Requests)], rec)
			}
		}(i, &recs[i])
	}
	wg.Wait()
	res := merge(recs, time.Since(start))
	res.Sent = sent.Load()
	return res, ctx.Err()
}

func merge(recs []recorder, elapsed time.Duration) Result {
	var res Result
	res.Duration = elapsed
	var all []time.Duration
	for i := range recs {
		res.OK += recs[i].ok
		res.Shed += recs[i].shed
		res.Errors += recs[i].errs
		all = append(all, recs[i].lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		res.P50 = all[n/2]
		res.P99 = all[min(n-1, n*99/100)]
		res.Max = all[n-1]
	}
	if elapsed > 0 {
		res.AchievedQPS = float64(len(all)) / elapsed.Seconds()
	}
	return res
}

// SaturateOptions tunes the step-load search.
type SaturateOptions struct {
	StartQPS     float64       // first step (default 50)
	Factor       float64       // per-step multiplier (default 2)
	StepDuration time.Duration // per-step drive time (default 2s)
	MaxSteps     int           // search bound (default 8)
	MaxShedRatio float64       // shed fraction a healthy step tolerates (default 0.01)
}

// SaturateResult reports the search outcome: MaxQPS is the highest
// achieved rate among healthy steps (0 when even the first step failed),
// Best is that step's full measurement, and Steps is the whole trajectory.
type SaturateResult struct {
	MaxQPS float64  `json:"max_qps"`
	Best   Result   `json:"best"`
	Steps  []Result `json:"steps"`
}

// Saturate steps the paced rate upward until a step goes unhealthy —
// any hard error, shedding past MaxShedRatio, or achieved QPS falling
// under 90% of target (the pacer is dropping ticks: the server can't keep
// up). The last healthy step is the max sustainable rate.
func Saturate(ctx context.Context, client *http.Client, baseURL string, workload []Request, opts SaturateOptions) (SaturateResult, error) {
	if opts.StartQPS <= 0 {
		opts.StartQPS = 50
	}
	if opts.Factor <= 1 {
		opts.Factor = 2
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 2 * time.Second
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 8
	}
	if opts.MaxShedRatio <= 0 {
		opts.MaxShedRatio = 0.01
	}
	var out SaturateResult
	qps := opts.StartQPS
	for step := 0; step < opts.MaxSteps; step++ {
		res, err := Run(ctx, client, baseURL, Options{QPS: qps, Duration: opts.StepDuration, Requests: workload})
		if err != nil {
			return out, err
		}
		out.Steps = append(out.Steps, res)
		healthy := res.Errors == 0 &&
			res.ShedRatio() <= opts.MaxShedRatio &&
			res.AchievedQPS >= 0.9*res.TargetQPS
		if !healthy {
			break
		}
		if res.AchievedQPS > out.MaxQPS {
			out.MaxQPS = res.AchievedQPS
			out.Best = res
		}
		qps *= opts.Factor
	}
	return out, nil
}
