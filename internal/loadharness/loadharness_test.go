package loadharness

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/serve"
)

// newHarnessServer starts a live dialite server over the demo lake and
// returns its base URL and a pooled client.
func newHarnessServer(tb testing.TB) (string, *http.Client) {
	tb.Helper()
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		tb.Fatal(err)
	}
	s := serve.New(p, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts.URL, ts.Client()
}

// workload is the standard mixed workload: mostly cheap catalog reads with
// a pipeline discovery folded in, so both admission classes see traffic.
func workload(tb testing.TB) []Request {
	tb.Helper()
	disc, err := json.Marshal(serve.DiscoverRequest{Query: serve.EncodeTable(paperdata.T1()), QueryColumn: 1})
	if err != nil {
		tb.Fatal(err)
	}
	reqs := make([]Request, 0, 8)
	for range 7 {
		reqs = append(reqs, Request{Method: http.MethodGet, Path: "/v1/lake"})
	}
	return append(reqs, Request{Method: http.MethodPost, Path: "/v1/discover", Body: disc})
}

// TestLoadSmoke is the CI load smoke: a fixed low-QPS paced run must come
// back with zero errors, zero sheds, and a bounded p99 — if light traffic
// against the demo lake trips admission control or errors, serving is
// broken in a way unit tests did not catch.
func TestLoadSmoke(t *testing.T) {
	base, client := newHarnessServer(t)
	res, err := Run(context.Background(), client, base, Options{
		QPS: 50, Duration: 600 * time.Millisecond, Requests: workload(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors under light load: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("shedding under light load: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.P99 > time.Second {
		t.Fatalf("p99 %v under light load (want <1s): %+v", res.P99, res)
	}
}

// TestClosedLoop sanity-checks the closed-loop driver: all workers drive,
// accounting adds up, latencies are populated.
func TestClosedLoop(t *testing.T) {
	base, client := newHarnessServer(t)
	res, err := Run(context.Background(), client, base, Options{
		Workers: 4, Duration: 300 * time.Millisecond,
		Requests: []Request{{Method: http.MethodGet, Path: "/v1/lake"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 || res.Errors != 0 {
		t.Fatalf("closed-loop run: %+v", res)
	}
	if got := res.OK + res.Shed + res.Errors; got > res.Sent {
		t.Fatalf("accounting: ok+shed+errors=%d > sent=%d", got, res.Sent)
	}
	if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("latency ordering: %+v", res)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	if _, err := Run(context.Background(), nil, "http://127.0.0.1:0", Options{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// BenchmarkServeSaturation steps a live server to saturation and publishes
// max sustainable QPS and p50/p99 latency as custom metrics, which
// scripts/bench_snapshot.sh captures into BENCH_<PR>.json — serving
// throughput tracked across PRs like ns/op.
func BenchmarkServeSaturation(b *testing.B) {
	base, client := newHarnessServer(b)
	wl := workload(b)
	b.ResetTimer()
	var last SaturateResult
	for range b.N {
		res, err := Saturate(context.Background(), client, base, wl, SaturateOptions{
			StartQPS: 100, Factor: 2, StepDuration: 300 * time.Millisecond, MaxSteps: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MaxQPS, "qps")
	b.ReportMetric(float64(last.Best.P50), "p50-ns")
	b.ReportMetric(float64(last.Best.P99), "p99-ns")
}
