// accuracy_test.go is the sketch-engine accuracy harness: it measures
// precision/recall/F1 of indexed discovery against the exact containment
// scan (ExactQuery, the ground truth) for every engine, on both the paper's
// X3 join-search lake and a synthesized skewed-cardinality workload. The
// floors asserted here are the acceptance criteria of the pluggable-engine
// design: candidates are always verified by exact token-ID containment, so
// precision must be exactly 1 for every engine, and the KMV engine's F1 must
// stay within 0.05 of MinHash while signing an order of magnitude faster.
package lshensemble_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/sketch"
)

// engines under test; every engine the sketch package implements must hold
// the accuracy floors, so a future engine lands by joining this list.
var accuracyEngines = []sketch.Engine{sketch.MinHash, sketch.KMV}

// accuracy is a micro-averaged confusion summary over a query workload:
// counts are summed across every (query, threshold) pair, then turned into
// precision/recall/F1 once, so large-truth queries weigh more than empty
// ones instead of each query voting equally.
type accuracy struct {
	tp, fp, fn int
}

func (a *accuracy) add(got, want map[string]bool) {
	for k := range got {
		if want[k] {
			a.tp++
		} else {
			a.fp++
		}
	}
	for k := range want {
		if !got[k] {
			a.fn++
		}
	}
}

func (a accuracy) precision() float64 {
	if a.tp+a.fp == 0 {
		return 1
	}
	return float64(a.tp) / float64(a.tp+a.fp)
}

func (a accuracy) recall() float64 {
	if a.tp+a.fn == 0 {
		return 1
	}
	return float64(a.tp) / float64(a.tp+a.fn)
}

func (a accuracy) f1() float64 {
	p, r := a.precision(), a.recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func keySet(rs []lshensemble.Result) map[string]bool {
	out := make(map[string]bool, len(rs))
	for _, r := range rs {
		out[r.Domain.Key()] = true
	}
	return out
}

// measureEngine builds an index over domains with the given engine and
// scores it against ExactQuery across the workload.
func measureEngine(domains []lshensemble.Domain, queries [][]string, thresholds []float64, eng sketch.Engine) accuracy {
	opts := lshensemble.Options{Engine: eng}
	ix := lshensemble.Build(domains, opts)
	var acc accuracy
	for _, q := range queries {
		for _, th := range thresholds {
			want := keySet(lshensemble.ExactQuery(domains, q, th, 0))
			got := keySet(ix.Query(q, th, 0))
			acc.add(got, want)
		}
	}
	return acc
}

// assertFloors applies the per-engine acceptance floors and the cross-engine
// bound, logging one row per engine so CI output quotes the measured values.
func assertFloors(t *testing.T, scores map[sketch.Engine]accuracy) {
	t.Helper()
	for _, eng := range accuracyEngines {
		acc := scores[eng]
		t.Logf("%-8s precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)",
			eng, acc.precision(), acc.recall(), acc.f1(), acc.tp, acc.fp, acc.fn)
		if acc.tp+acc.fn == 0 {
			t.Fatalf("%s: workload produced no ground-truth matches; harness is vacuous", eng)
		}
		if p := acc.precision(); p != 1 {
			t.Errorf("%s precision = %.4f, want exactly 1 (verification is exact containment)", eng, p)
		}
		if f := acc.f1(); f < 0.85 {
			t.Errorf("%s F1 = %.4f, below the 0.85 floor", eng, f)
		}
	}
	if mh, kmv := scores[sketch.MinHash].f1(), scores[sketch.KMV].f1(); kmv < mh-0.05 {
		t.Errorf("kmv F1 %.4f more than 0.05 below minhash F1 %.4f", kmv, mh)
	}
}

// skewedWorkload synthesizes the skewed-cardinality stress case: domain
// sizes log-uniform across 10..2000 over a shared vocabulary (so the
// KMV containment estimator faces q ≪ x and q ≫ x in the same index), and
// queries sampled from a base domain at a planned containment level with
// out-of-vocabulary padding.
func skewedWorkload(seed int64) (domains []lshensemble.Domain, queries [][]string) {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 6000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%05d", i)
	}
	for i := 0; i < 150; i++ {
		size := int(10 * math.Pow(200, rng.Float64()))
		picked := make(map[int]bool, size)
		vals := make([]string, 0, size)
		for len(vals) < size {
			j := rng.Intn(len(vocab))
			if !picked[j] {
				picked[j] = true
				vals = append(vals, vocab[j])
			}
		}
		domains = append(domains, lshensemble.Domain{
			Table:  fmt.Sprintf("d%03d", i),
			Column: 0,
			Values: vals,
		})
	}
	for i := 0; i < 48; i++ {
		base := domains[rng.Intn(len(domains))].Values
		qn := 20 + rng.Intn(81)
		if qn > len(base) {
			qn = len(base)
		}
		take := int((0.4 + 0.6*rng.Float64()) * float64(qn))
		q := make([]string, 0, qn)
		q = append(q, base[:take]...)
		for len(q) < qn {
			q = append(q, fmt.Sprintf("oov%02d_%03d", i, len(q)))
		}
		queries = append(queries, q)
	}
	return domains, queries
}

// TestAccuracySkewedLake holds the floors on the synthesized
// skewed-cardinality workload across thresholds.
func TestAccuracySkewedLake(t *testing.T) {
	domains, queries := skewedWorkload(101)
	thresholds := []float64{0.5, 0.7, 0.9}
	scores := make(map[sketch.Engine]accuracy, len(accuracyEngines))
	for _, eng := range accuracyEngines {
		scores[eng] = measureEngine(domains, queries, thresholds, eng)
	}
	assertFloors(t, scores)
}

// TestAccuracyPaperLake holds the floors end-to-end on the paper's X3
// join-search lake: per engine, a full lake build (extraction, interning,
// index construction) and key-column queries through the lake's own join
// index, against ExactQuery over the lake's extracted domains.
func TestAccuracyPaperLake(t *testing.T) {
	sl := experiments.JoinSearchLake(17)
	queryTables := []string{
		"family0_part0", "family7_part2", "family21_part1",
		"family33_part4", "family12_join0", "family30_join1",
	}
	thresholds := []float64{0.5, 0.7}
	scores := make(map[sketch.Engine]accuracy, len(accuracyEngines))
	for _, eng := range accuracyEngines {
		opts := lake.Options{}
		opts.LSH.Engine = eng
		l, err := lake.New(sl.Tables, opts)
		if err != nil {
			t.Fatalf("%s lake build: %v", eng, err)
		}
		domains := l.Domains()
		var acc accuracy
		for _, qn := range queryTables {
			q, ok := l.Get(qn)
			if !ok {
				t.Fatalf("query table %s missing from lake", qn)
			}
			vals, err := lake.QueryDomain(q, sl.Truth.KeyColumn[qn])
			if err != nil {
				t.Fatalf("QueryDomain(%s): %v", qn, err)
			}
			for _, th := range thresholds {
				want := keySet(lshensemble.ExactQuery(domains, vals, th, 0))
				got := keySet(l.Join().Query(vals, th, 0))
				acc.add(got, want)
			}
		}
		scores[eng] = acc
	}
	assertFloors(t, scores)
}
