package lshensemble

// crosscheck_test pins the token-interned ensemble to the pre-refactor
// string-based implementation: the inline-FNV band keys must equal the
// hash/fnv ones bit for bit, and Query (and the QueryDomain fast path) must
// return exactly the same ranked results — same domains, same containments,
// same order — as the reference below, which replays the old query
// (fnv.New64a band keys, string-set verification) against the same built
// index.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/minhash"
	"repro/internal/sketch"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// referenceBandKeys is the pre-refactor banding hash (one fnv.New64a per
// band).
func referenceBandKeys(sig minhash.Signature, r int) []uint64 {
	nb := len(sig) / r
	keys := make([]uint64, 0, nb)
	var buf [8]byte
	for b := 0; b < nb; b++ {
		h := fnv.New64a()
		buf[0] = byte(b)
		buf[1] = byte(b >> 8)
		h.Write(buf[:2])
		for i := b * r; i < (b+1)*r; i++ {
			v := sig[i]
			for j := 0; j < 8; j++ {
				buf[j] = byte(v >> (8 * j))
			}
			h.Write(buf[:8])
		}
		keys = append(keys, h.Sum64())
	}
	return keys
}

func TestBandKeysMatchFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 64, 128, 256} {
		sig := make(minhash.Signature, n)
		for i := range sig {
			sig[i] = rng.Uint64()
		}
		for _, r := range rChoices {
			if r > n {
				continue
			}
			got := bandKeys(sketch.Sketch(sig), r, nil)
			want := referenceBandKeys(sig, r)
			if len(got) != len(want) {
				t.Fatalf("n=%d r=%d: %d keys, want %d", n, r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d r=%d band %d: %#x, want %#x", n, r, i, got[i], want[i])
				}
			}
		}
	}
}

type refContainment struct {
	key         string
	containment float64
}

// referenceQuery replays the pre-refactor string-based query against the
// built index: same partitions and buckets, hash/fnv band keys, exact
// verification over string sets.
func referenceQuery(ix *Index, rawQuery []string, threshold float64, k int) []refContainment {
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 {
		return nil
	}
	candidates := make(map[int32]bool)
	// The reference signs with its own family — it shares nothing with the
	// index's sketch builder beyond the (size, seed) parameters.
	qsig := minhash.NewFamily(ix.opts.NumHashes, ix.opts.Seed).Sign(query)
	for pi := range ix.parts {
		p := &ix.parts[pi]
		if len(p.tables) == 0 {
			continue
		}
		// Mirror the production small-partition rule: partitions at or below
		// scanPartitionMax live domains are probed exhaustively, not by
		// bands. The cross-check pins ID-based vs string-based equivalence,
		// so the reference follows the same candidate-generation policy.
		live := 0
		for _, di := range p.domains {
			if ix.alive[di] {
				live++
			}
		}
		if live <= scanPartitionMax {
			for _, di := range p.domains {
				if ix.alive[di] {
					candidates[int32(di)] = true
				}
			}
			continue
		}
		j := minhash.JaccardForContainment(threshold, len(query), p.upper)
		bt := p.chooseTable(j, ix.opts.NumHashes)
		for _, key := range referenceBandKeys(qsig, bt.r) {
			for _, di := range bt.buckets[key] {
				candidates[di] = true
			}
		}
	}
	qset := make(map[string]bool, len(query))
	for _, v := range query {
		qset[v] = true
	}
	var results []refContainment
	for di := range candidates {
		d := &ix.domains[di]
		inter := 0
		for _, v := range d.Values {
			if qset[v] {
				inter++
			}
		}
		c := float64(inter) / float64(len(query))
		if c >= threshold && c > 0 {
			results = append(results, refContainment{key: d.Key(), containment: c})
		}
	}
	sortRef(results)
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

func sortRef(rs []refContainment) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if b.containment > a.containment || (b.containment == a.containment && b.key < a.key) {
				rs[j-1], rs[j] = b, a
			} else {
				break
			}
		}
	}
}

func assertSameContainments(t *testing.T, label string, got []Result, want []refContainment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Domain.Key() != want[i].key || got[i].Containment != want[i].containment {
			t.Fatalf("%s: rank %d: got %s/%v, want %s/%v", label, i,
				got[i].Domain.Key(), got[i].Containment, want[i].key, want[i].containment)
		}
	}
}

// TestCrossCheckRandomizedLakes asserts the ID-based query path is
// byte-identical to the string-based reference on randomized lakes,
// thresholds and ks, with queries mixing lake-vocabulary and unknown
// tokens.
func TestCrossCheckRandomizedLakes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		nd := 40 + rng.Intn(120)
		vocab := 300 + rng.Intn(500)
		var domains []Domain
		for i := 0; i < nd; i++ {
			n := 1 + rng.Intn(120)
			seen := make(map[string]bool, n)
			var vals []string
			for j := 0; j < n; j++ {
				v := fmt.Sprintf("val%05d", rng.Intn(vocab))
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			domains = append(domains, Domain{Table: fmt.Sprintf("t%03d", i), Column: rng.Intn(3), Values: vals})
		}
		ix := Build(domains, Options{NumHashes: 128, NumPartitions: 4})
		for qi := 0; qi < 15; qi++ {
			qn := 1 + rng.Intn(80)
			query := make([]string, qn)
			for j := range query {
				if rng.Intn(8) == 0 {
					query[j] = fmt.Sprintf("unknown%04d", rng.Intn(1000))
				} else {
					query[j] = fmt.Sprintf("val%05d", rng.Intn(vocab))
				}
			}
			for _, th := range []float64{0.25, 0.5, 0.8} {
				for _, k := range []int{0, 1, 5} {
					label := fmt.Sprintf("seed=%d query=%d th=%v k=%d", seed, qi, th, k)
					assertSameContainments(t, label, ix.Query(query, th, k), referenceQuery(ix, query, th, k))
				}
			}
		}
	}
}

// TestCrossCheckBandedPartitions is TestCrossCheckRandomizedLakes at a
// scale where every partition holds well over scanPartitionMax live
// domains, so the banded candidate path — bypassed by the small-partition
// scan above — stays cross-checked against the string-based reference too.
func TestCrossCheckBandedPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nd = 400
	vocab := 600
	var domains []Domain
	for i := 0; i < nd; i++ {
		n := 1 + rng.Intn(120)
		seen := make(map[string]bool, n)
		var vals []string
		for j := 0; j < n; j++ {
			v := fmt.Sprintf("val%05d", rng.Intn(vocab))
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		domains = append(domains, Domain{Table: fmt.Sprintf("t%03d", i), Column: rng.Intn(3), Values: vals})
	}
	ix := Build(domains, Options{NumHashes: 128, NumPartitions: 2})
	for pi := range ix.parts {
		if n := len(ix.parts[pi].domains); n > 0 && n <= scanPartitionMax {
			t.Fatalf("partition %d has %d domains — too small to exercise the banded path", pi, n)
		}
	}
	for qi := 0; qi < 10; qi++ {
		qn := 1 + rng.Intn(80)
		query := make([]string, qn)
		for j := range query {
			query[j] = fmt.Sprintf("val%05d", rng.Intn(vocab))
		}
		for _, th := range []float64{0.25, 0.5, 0.8} {
			label := fmt.Sprintf("banded query=%d th=%v", qi, th)
			assertSameContainments(t, label, ix.Query(query, th, 0), referenceQuery(ix, query, th, 0))
		}
	}
}

// TestRebuildIgnoresForeignIDs pins the rebuild contract: Build (private
// dictionary) must re-intern domains whose cached IDs came from another
// dictionary — the lake.Domains() rebuild pattern — instead of reading
// them against the wrong dictionary and silently returning nothing.
func TestRebuildIgnoresForeignIDs(t *testing.T) {
	foreign := table.NewTokenDict()
	// Offset the foreign dictionary so its IDs cannot accidentally agree
	// with a fresh one.
	for i := 0; i < 50; i++ {
		foreign.Intern(fmt.Sprintf("pad%02d", i))
	}
	domains := []Domain{
		{Table: "A", Column: 0, Values: []string{"berlin", "boston", "tokyo"}},
		{Table: "B", Column: 0, Values: []string{"berlin", "lyon"}},
	}
	for i := range domains {
		domains[i].IDs = foreign.InternAll(domains[i].Values, nil)
	}
	ix := Build(domains, Options{NumHashes: 128, NumPartitions: 2})
	got := ix.Query([]string{"berlin", "boston", "tokyo"}, 0.9, 0)
	if len(got) != 1 || got[0].Domain.Table != "A" || got[0].Containment != 1 {
		t.Fatalf("rebuild with foreign IDs broke queries: %+v", got)
	}
}

// TestCrossCheckQueryDomainFastPath verifies the cached-domain fast path —
// pre-interned IDs and cached MinHash fingerprints — matches both the
// string Query and the reference.
func TestCrossCheckQueryDomainFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var domains []Domain
	for i := 0; i < 80; i++ {
		n := 5 + rng.Intn(60)
		seen := make(map[string]bool, n)
		var vals []string
		for j := 0; j < n; j++ {
			v := fmt.Sprintf("val%05d", rng.Intn(350))
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		domains = append(domains, Domain{Table: fmt.Sprintf("t%03d", i), Values: vals})
	}
	ix := Build(domains, Options{NumHashes: 128, NumPartitions: 4})
	for i := 0; i < len(ix.domains); i += 9 {
		d := &ix.domains[i]
		if d.IDs == nil || d.Fingerprints == nil {
			t.Fatalf("domain %d missing cached IDs/fingerprints after Build", i)
		}
		for _, th := range []float64{0.3, 0.6} {
			label := fmt.Sprintf("domain=%d th=%v", i, th)
			want := referenceQuery(ix, d.Values, th, 0)
			assertSameContainments(t, label+" cached", ix.QueryDomain(d, th, 0), want)
			assertSameContainments(t, label+" strings", ix.Query(d.Values, th, 0), want)
		}
	}
}
