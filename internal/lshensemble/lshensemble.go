// Package lshensemble implements the LSH Ensemble index for
// domain-containment search (Zhu, Nargesian, Pu, Miller — VLDB 2016), the
// joinable-table discovery method DIALITE exposes. Given a query column Q
// and a containment threshold t*, the index returns the indexed column
// domains X with |Q∩X|/|Q| ≥ t*.
//
// The ensemble works around MinHash LSH being a Jaccard filter, not a
// containment filter: domains are partitioned by set size (equi-depth), and
// within each partition the containment threshold is converted to a Jaccard
// threshold using the partition's upper size bound; each partition is then
// probed with a banding configuration tuned to that converted threshold.
// Candidates are verified and ranked by exact containment, so the index has
// no false positives — only (rare) false negatives from the sketch.
//
// The index lives in an integer token universe: domain members intern into
// a table.TokenDict (shared lake-wide when built through lake.New), exact
// containment verification intersects uint32 token-ID sets instead of
// string sets, band keys are computed with an inline FNV-1a loop (no
// hash.Hash allocation per band), and query-side token fingerprints come
// from the dictionary's cache whenever the token belongs to the lake
// vocabulary.
package lshensemble

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/minhash"
	"repro/internal/par"
	"repro/internal/sketch"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Domain is one indexed column: the deduplicated normalized value set of a
// table column, plus the identifiers discovery needs to report results.
type Domain struct {
	Table      string   // owning table name
	Column     int      // column index within the table
	ColumnName string   // column header (may be empty/unreliable)
	Values     []string // normalized, deduplicated value set
	// Fingerprints optionally caches minhash.Fingerprints(Values), so each
	// value is FNV-hashed once per lake rather than once per index build.
	// Callers that index the same domains more than once (rebuilds under
	// different LSH parameters) should precompute it, as lake extraction
	// does; Build computes missing fingerprints only into its own private
	// copy of the domain slice.
	Fingerprints []uint64
	// IDs optionally carries Values interned into the token dictionary the
	// index is built with, parallel to Values (lake extraction precomputes
	// it). When nil, Build interns Values itself.
	IDs []uint32

	key string // precomputed "table[col]", set by Build
}

// Key identifies the domain as "table[col]". Domains that went through
// Build return a precomputed key; detached domains format one on the fly.
func (d *Domain) Key() string {
	if d.key != "" {
		return d.key
	}
	return fmt.Sprintf("%s[%d]", d.Table, d.Column)
}

// Options configures index construction.
type Options struct {
	// NumHashes is the sketch size: the MinHash signature length, or the KMV
	// bottom-k capacity. Default 128.
	NumHashes int
	// NumPartitions is the number of equi-depth size partitions. Default 8.
	NumPartitions int
	// Seed makes sketches deterministic. Default 1.
	Seed int64
	// Engine selects the sketch implementation (see internal/sketch):
	// sketch.MinHash (the default) bands signatures for sub-linear LSH
	// probing; sketch.KMV signs an order of magnitude faster but generates
	// candidates by a linear estimate scan. Either way candidates are
	// verified by exact token-ID containment, so the engine changes recall
	// and speed, never precision. Validate foreign values with sketch.Known
	// before building — Build panics on an engine this build does not
	// implement (Restore, the persistence path, returns an error instead).
	Engine sketch.Engine
}

func (o Options) withDefaults() Options {
	if o.NumHashes <= 0 {
		o.NumHashes = 128
	}
	if o.NumPartitions <= 0 {
		o.NumPartitions = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Engine == "" {
		o.Engine = sketch.MinHash
	}
	return o
}

// sketchParams maps defaulted options onto the sketch builder's parameters.
func (o Options) sketchParams() sketch.Params {
	return sketch.Params{Engine: o.Engine, Size: o.NumHashes, Seed: o.Seed}
}

// rChoices are the band-row counts precomputed per partition. At query time
// the configuration whose S-curve threshold is closest to the converted
// Jaccard threshold is probed.
var rChoices = []int{1, 2, 4, 8}

// partition is one size range of the ensemble.
type partition struct {
	upper   int   // maximum domain size within the partition
	domains []int // indices into Index.domains
	tables  []bandTable
}

// bandTable holds banded buckets for one value of r: bucket key -> domains.
type bandTable struct {
	r       int
	buckets map[uint64][]int32
}

// Index is an LSH Ensemble over a set of domains. Domains live in
// slot-addressed arrays (domains/signatures/alive/partOf share indexing):
// Add appends slots and Remove tombstones them, and the equi-depth
// partitioning is maintained incrementally — after a mutation only the
// slots whose partition assignment changed move between band tables, so the
// index is at all times identical in query behavior to a fresh Build over
// the live domains (partition boundaries, per-partition size bounds and
// bucket membership all match; cached per-slot sketches make the moves
// re-banding work, never re-signing work). Mutations take the write lock,
// queries the read lock.
type Index struct {
	mu         sync.RWMutex
	opts       Options
	builder    sketch.Builder
	dict       *table.TokenDict
	trustIDs   bool // precomputed Domain.IDs belong to dict (caller-supplied dict)
	domains    []Domain
	signatures []sketch.Sketch
	alive      []bool  // per slot: false once removed
	partOf     []int32 // per slot: partition index, -1 when unassigned/dead
	liveCount  int
	order      []int // live slots sorted by (domain size, key): the equi-depth order
	parts      []partition
	// partsStale is set by Restore, which defers the equi-depth partitioning
	// and band-table build to the first query or mutation: signatures are the
	// expensive part of a build and they are already cached, so a restored
	// process reaches "ready" without paying for derived structures it may
	// never probe (e.g. a snapshot-compaction run). Banding is deterministic
	// given signatures, so the deferred build is query-identical to an eager
	// one. The flag is one atomic load on warmed indexes.
	partsStale atomic.Bool
	scratch    sync.Pool // *queryScratch
}

// queryScratch is the reusable per-query working memory: the normalized
// value set (map + slice), fingerprint and signature buffers, the query
// token-ID set, and the candidate-dedup scratch. Pooled per index so the
// non-cached Query path stops paying these allocations per call; query
// results never alias scratch memory.
type queryScratch struct {
	vals    []string
	seenTok map[string]struct{}
	fps     []uint64
	qids    map[uint32]struct{}
	sig     sketch.Sketch
	seen    []uint32 // per domain index: epoch stamp
	epoch   uint32
	cands   []int32
	keys    []uint64
}

// valueSet normalizes and deduplicates raw values into the scratch buffers,
// byte-identical to tokenize.ValueSet.
func (s *queryScratch) valueSet(raw []string) []string {
	clear(s.seenTok)
	out := s.vals[:0]
	for _, v := range raw {
		n := tokenize.Normalize(v)
		if n == "" {
			continue
		}
		if _, dup := s.seenTok[n]; dup {
			continue
		}
		s.seenTok[n] = struct{}{}
		out = append(out, n)
	}
	s.vals = out
	return out
}

func (ix *Index) getScratch() *queryScratch {
	s := ix.scratch.Get().(*queryScratch)
	return s
}

// Build constructs the ensemble over a private token dictionary. Domains
// with empty value sets are indexed but can never be returned (containment
// verification removes them).
func Build(domains []Domain, opts Options) *Index {
	return BuildWithDict(domains, opts, nil)
}

// BuildWithDict constructs the ensemble, interning domain members into dict
// (nil means a fresh private dictionary). Sharing one dictionary across
// indexes — as lake preprocessing does — makes query-side token lookups and
// cached fingerprints agree lake-wide. Precomputed Domain.IDs are only
// meaningful relative to the dictionary they were interned in, so they are
// trusted exactly when the caller supplies that dictionary; under a private
// dictionary every domain is re-interned from Values, which keeps
// Build(lake.Domains(), otherOpts) rebuilds safe. Fingerprints are
// dictionary-independent (pure FNV-1a of the value) and always reusable.
func BuildWithDict(domains []Domain, opts Options, dict *table.TokenDict) *Index {
	opts = opts.withDefaults()
	trustIDs := dict != nil
	if dict == nil {
		dict = table.NewTokenDict()
	}
	builder, err := sketch.New(opts.sketchParams())
	if err != nil {
		// Foreign engine names arrive through lake options or persisted
		// snapshots, both of which validate with sketch.Known before
		// reaching here; at this point an unknown engine is a programming
		// error.
		panic("lshensemble: " + err.Error())
	}
	ix := &Index{
		opts:      opts,
		builder:   builder,
		dict:      dict,
		trustIDs:  trustIDs,
		domains:   append([]Domain(nil), domains...),
		alive:     make([]bool, len(domains)),
		partOf:    make([]int32, len(domains)),
		liveCount: len(domains),
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			seenTok: make(map[string]struct{}),
			qids:    make(map[uint32]struct{}),
		}
	}
	// Sign domains in parallel: each sketch depends only on its own
	// domain, so the result is deterministic regardless of scheduling.
	// Token IDs and fingerprints are computed once per domain and cached on
	// it; fingerprints of freshly interned domains come from the
	// dictionary's cache rather than re-hashing the strings. Sketches
	// live in one contiguous arena (workers write disjoint ranges) instead
	// of one allocation per domain; KMV sketches may fill less than their
	// slot's NumHashes capacity.
	ix.signatures = make([]sketch.Sketch, len(ix.domains))
	sigArena := make([]uint64, len(ix.domains)*opts.NumHashes)
	par.For(len(ix.domains), func(i int) {
		d := &ix.domains[i]
		d.key = fmt.Sprintf("%s[%d]", d.Table, d.Column)
		if d.IDs == nil || !trustIDs {
			d.IDs = dict.InternAll(d.Values, nil)
		}
		if d.Fingerprints == nil {
			d.Fingerprints = dict.Fingerprints(d.IDs, nil)
		}
		slot := sigArena[i*opts.NumHashes : i*opts.NumHashes : (i+1)*opts.NumHashes]
		ix.signatures[i] = ix.builder.SignInto(d.Fingerprints, slot)
		ix.alive[i] = true
		ix.partOf[i] = -1
	})
	ix.initPartitions()
	return ix
}

// banded reports whether this index probes band tables for candidates
// (MinHash engine) or scans sketches linearly (KMV engine). Partition
// structure is maintained either way — the equi-depth layout is what keeps
// mutations incremental — but only the MinHash engine materializes band
// tables inside the partitions.
func (ix *Index) banded() bool { return ix.opts.Engine == sketch.MinHash }

// ensureParts builds the deferred partitioning of a restored index on its
// first use. Queries call it before taking the read lock; mutations hold the
// write lock and use ensurePartsLocked directly.
func (ix *Index) ensureParts() {
	if !ix.partsStale.Load() {
		return
	}
	ix.mu.Lock()
	ix.ensurePartsLocked()
	ix.mu.Unlock()
}

func (ix *Index) ensurePartsLocked() {
	if ix.partsStale.Load() {
		ix.initPartitions()
		ix.partsStale.Store(false)
	}
}

// initPartitions computes the equi-depth partitioning and band tables from
// scratch over the (fully signed) domain slots — the tail of a fresh build,
// shared by BuildWithDict and the deferred warm-up of a restored index.
// Partitions band independently; they are built in parallel and collected in
// partition order, so the index layout stays deterministic.
func (ix *Index) initPartitions() {
	// Equi-depth partitioning by domain size.
	ix.order = make([]int, len(ix.domains))
	for i := range ix.order {
		ix.order[i] = i
	}
	sort.SliceStable(ix.order, func(a, b int) bool {
		return ix.orderLess(ix.order[a], ix.order[b])
	})
	nparts := ix.opts.NumPartitions
	if nparts > len(ix.order) {
		nparts = len(ix.order)
	}
	ix.parts = make([]partition, nparts)
	par.For(nparts, func(p int) {
		lo := p * len(ix.order) / nparts
		hi := (p + 1) * len(ix.order) / nparts
		part := partition{domains: make([]int, 0, hi-lo)}
		for _, di := range ix.order[lo:hi] {
			part.domains = append(part.domains, di)
			ix.partOf[di] = int32(p)
			if n := len(ix.domains[di].Values); n > part.upper {
				part.upper = n
			}
		}
		if ix.banded() {
			var flat []uint64
			for _, r := range rChoices {
				if r > ix.opts.NumHashes {
					continue
				}
				// Bulk band build: hash every domain's band keys once into a flat
				// slice, count bucket sizes, then carve all buckets out of one
				// arena. Appending per (domain, band) instead allocates a tiny
				// slice per bucket and regrows both it and the map incrementally —
				// the dominant cost of large restores.
				nb := ix.opts.NumHashes / r
				if cap(flat) < len(part.domains)*nb {
					flat = make([]uint64, 0, len(part.domains)*nb)
				}
				flat = flat[:0]
				for _, di := range part.domains {
					flat = appendBandKeys(ix.signatures[di], r, flat)
				}
				cursors := make(map[uint64]int32, len(flat))
				for _, key := range flat {
					cursors[key]++
				}
				bt := bandTable{r: r, buckets: make(map[uint64][]int32, len(cursors))}
				arena := make([]int32, len(flat))
				off := int32(0)
				for key, n := range cursors {
					bt.buckets[key] = arena[off : off+n : off+n]
					cursors[key] = off // becomes the bucket's fill cursor
					off += n
				}
				ki := 0
				for _, di := range part.domains {
					for b := 0; b < nb; b++ {
						key := flat[ki]
						ki++
						at := cursors[key]
						arena[at] = int32(di)
						cursors[key] = at + 1
					}
				}
				part.tables = append(part.tables, bt)
			}
		}
		ix.parts[p] = part
	})
}

// orderLess is the equi-depth sort order: ascending domain size, ties
// broken by key. Among live lake domains keys are unique, so this is a
// strict total order and insertion position is well-defined.
func (ix *Index) orderLess(a, b int) bool {
	if la, lb := len(ix.domains[a].Values), len(ix.domains[b].Values); la != lb {
		return la < lb
	}
	return ix.domains[a].key < ix.domains[b].key
}

// Add indexes additional domains: each one is signed from its cached
// fingerprints (computed once at lake extraction; signing is the only
// per-value work) and inserted into the equi-depth partitioning, moving the
// handful of existing slots whose partition assignment shifted. Precomputed
// Domain.IDs are trusted exactly when the index was built over a
// caller-supplied dictionary, mirroring BuildWithDict. Add is exclusive
// with queries and other mutations.
func (ix *Index) Add(domains []Domain) {
	if len(domains) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ensurePartsLocked()
	newSlots := make([]int, 0, len(domains))
	for _, d := range domains {
		slot := len(ix.domains)
		d.key = fmt.Sprintf("%s[%d]", d.Table, d.Column)
		if d.IDs == nil || !ix.trustIDs {
			d.IDs = ix.dict.InternAll(d.Values, nil)
		}
		if d.Fingerprints == nil {
			d.Fingerprints = ix.dict.Fingerprints(d.IDs, nil)
		}
		ix.domains = append(ix.domains, d)
		ix.signatures = append(ix.signatures, ix.builder.SignInto(d.Fingerprints, nil))
		ix.alive = append(ix.alive, true)
		ix.partOf = append(ix.partOf, -1)
		ix.liveCount++
		newSlots = append(newSlots, slot)
	}
	// Merge the batch into the equi-depth order in one pass (sort the m new
	// slots, then a single backward merge), instead of m copy-shifting
	// insertions.
	sort.SliceStable(newSlots, func(a, b int) bool { return ix.orderLess(newSlots[a], newSlots[b]) })
	old := ix.order
	ix.order = append(ix.order, newSlots...)
	for i, o, n := len(ix.order)-1, len(old)-1, len(newSlots)-1; n >= 0; i-- {
		if o >= 0 && ix.orderLess(newSlots[n], old[o]) {
			ix.order[i] = old[o]
			o--
		} else {
			ix.order[i] = newSlots[n]
			n--
		}
	}
	ix.reshard()
}

// Remove drops every domain belonging to one of the named tables and
// reports how many domains died. Dead slots leave their band tables
// immediately (they can never become candidates again) but their contents
// are not zeroed, so Results handed out before the removal stay readable;
// the slot arrays are compacted once dead slots outnumber live ones.
// Remove is exclusive with queries and other mutations.
func (ix *Index) Remove(tables []string) int {
	if len(tables) == 0 {
		return 0
	}
	doomed := make(map[string]bool, len(tables))
	for _, t := range tables {
		doomed[t] = true
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ensurePartsLocked()
	removed := 0
	var dying []int
	for slot := range ix.domains {
		if !ix.alive[slot] || !doomed[ix.domains[slot].Table] {
			continue
		}
		ix.alive[slot] = false
		ix.liveCount--
		removed++
		dying = append(dying, slot)
	}
	if removed == 0 {
		return 0
	}
	// Past the dead-slot threshold, compaction rebuilds the partitioning
	// from scratch anyway — skip the incremental unband/reshard entirely.
	if dead := len(ix.domains) - ix.liveCount; dead > 16 && dead > ix.liveCount {
		ix.compactLocked()
		return removed
	}
	for _, slot := range dying {
		if p := ix.partOf[slot]; p >= 0 {
			ix.unband(int(p), slot)
			ix.partOf[slot] = -1
		}
	}
	kept := ix.order[:0]
	for _, s := range ix.order {
		if ix.alive[s] {
			kept = append(kept, s)
		}
	}
	ix.order = kept
	ix.reshard()
	return removed
}

// Compact rebuilds the slot arrays densely over the live domains, dropping
// dead-slot bookkeeping (and releasing the memory retained by removed
// domains). Query behavior is unchanged. Compact is exclusive with queries
// and other mutations.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ensurePartsLocked()
	if ix.liveCount == len(ix.domains) {
		return
	}
	ix.compactLocked()
}

func (ix *Index) compactLocked() {
	n := ix.liveCount
	domains := make([]Domain, 0, n)
	sigs := make([]sketch.Sketch, 0, n)
	for slot := range ix.domains {
		if ix.alive[slot] {
			domains = append(domains, ix.domains[slot])
			sigs = append(sigs, ix.signatures[slot])
		}
	}
	ix.domains, ix.signatures = domains, sigs
	ix.alive = make([]bool, n)
	ix.partOf = make([]int32, n)
	ix.order = make([]int, n)
	for i := 0; i < n; i++ {
		ix.alive[i] = true
		ix.partOf[i] = -1
		ix.order[i] = i
	}
	sort.SliceStable(ix.order, func(a, b int) bool { return ix.orderLess(ix.order[a], ix.order[b]) })
	ix.parts = ix.parts[:0]
	ix.reshard()
}

// reshard recomputes the equi-depth partition boundaries over the current
// live order and moves exactly the slots whose assignment changed between
// band tables — adding or removing one table shifts each boundary by at
// most one position, so steady-state mutations re-band O(partitions)
// domains, not O(domains). The resulting partition layout (boundaries,
// membership, size upper bounds and bucket contents) is identical to what
// a fresh Build over the live domains would construct. Callers hold the
// write lock.
func (ix *Index) reshard() {
	n := len(ix.order)
	nparts := ix.opts.NumPartitions
	if nparts > n {
		nparts = n
	}
	for len(ix.parts) < nparts {
		part := partition{}
		if ix.banded() {
			for _, r := range rChoices {
				if r > ix.opts.NumHashes {
					continue
				}
				part.tables = append(part.tables, bandTable{r: r, buckets: make(map[uint64][]int32)})
			}
		}
		ix.parts = append(ix.parts, part)
	}
	for p := 0; p < nparts; p++ {
		lo, hi := p*n/nparts, (p+1)*n/nparts
		for _, slot := range ix.order[lo:hi] {
			if old := ix.partOf[slot]; int(old) != p {
				if old >= 0 {
					ix.unband(int(old), slot)
				}
				ix.band(p, slot)
				ix.partOf[slot] = int32(p)
			}
		}
	}
	// Partitions beyond the new count have had every live slot moved out.
	for p := nparts; p < len(ix.parts); p++ {
		ix.parts[p] = partition{}
	}
	ix.parts = ix.parts[:nparts]
	for p := 0; p < nparts; p++ {
		lo, hi := p*n/nparts, (p+1)*n/nparts
		part := &ix.parts[p]
		part.domains = append(part.domains[:0], ix.order[lo:hi]...)
		part.upper = len(ix.domains[ix.order[hi-1]].Values)
	}
}

// band inserts slot into every band table of partition p.
func (ix *Index) band(p, slot int) {
	var keys []uint64
	for ti := range ix.parts[p].tables {
		bt := &ix.parts[p].tables[ti]
		keys = bandKeys(ix.signatures[slot], bt.r, keys[:0])
		for _, key := range keys {
			bt.buckets[key] = append(bt.buckets[key], int32(slot))
		}
	}
}

// unband removes slot from every band table of partition p (all occurrences
// — two bands of one signature can, in principle, collide on a key).
func (ix *Index) unband(p, slot int) {
	var keys []uint64
	for ti := range ix.parts[p].tables {
		bt := &ix.parts[p].tables[ti]
		keys = bandKeys(ix.signatures[slot], bt.r, keys[:0])
		for _, key := range keys {
			bucket := bt.buckets[key]
			kept := bucket[:0]
			for _, di := range bucket {
				if di != int32(slot) {
					kept = append(kept, di)
				}
			}
			if len(kept) == 0 {
				delete(bt.buckets, key)
			} else {
				bt.buckets[key] = kept
			}
		}
	}
}

// bandKeys hashes a signature into bands of r rows, appending the per-band
// keys to dst; the band index is mixed into the key so buckets from
// different bands never collide by accident. The hash is a flat inline
// FNV-1a loop, byte-identical to feeding hash/fnv.New64a the band index as
// two little-endian bytes followed by each signature word as eight — but
// with no hash.Hash allocation per band.
func bandKeys(sig sketch.Sketch, r int, dst []uint64) []uint64 {
	nb := len(sig) / r
	if cap(dst) < nb {
		dst = make([]uint64, 0, nb)
	}
	return appendBandKeys(sig, r, dst[:0])
}

// appendBandKeys is bandKeys without the reset: it appends the band keys to
// dst, letting the bulk band build in initPartitions collect every domain's
// keys into one flat slice.
func appendBandKeys(sig sketch.Sketch, r int, dst []uint64) []uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	nb := len(sig) / r
	for b := 0; b < nb; b++ {
		h := uint64(offset64)
		h = (h ^ uint64(byte(b))) * prime64
		h = (h ^ uint64(byte(b>>8))) * prime64
		for i := b * r; i < (b+1)*r; i++ {
			v := sig[i]
			for j := 0; j < 64; j += 8 {
				h = (h ^ (v >> j & 0xff)) * prime64
			}
		}
		dst = append(dst, h)
	}
	return dst
}

// minRecallAtThreshold is the collision probability a banding must achieve
// for a pair sitting exactly at the converted Jaccard threshold. Choosing
// the most selective (largest r) banding that still clears this bound keeps
// candidate sets small without sacrificing recall at the threshold.
const minRecallAtThreshold = 0.95

// scanPartitionMax is the live-domain count at or below which a partition
// is probed by exhaustive scan instead of band lookups. For a partition
// this small, verifying every member costs less than hashing the query
// signature into bands and chasing buckets, and the scan's recall is exact
// rather than probabilistic. It also makes small-lake candidate generation
// independent of the equi-depth partition layout — band misses are a
// function of where partition boundaries fall, a scan admits everything —
// which is what lets the sharded differential harness demand byte-identical
// rankings between shard-local and global partitionings (see SHARDING.md).
const scanPartitionMax = 64

// chooseTable picks the most selective precomputed banding whose collision
// probability 1-(1-j^r)^b at the target Jaccard threshold j is still at
// least minRecallAtThreshold. r=1 (which collides with probability
// 1-(1-j)^K) is the fallback.
func (p *partition) chooseTable(j float64, numHashes int) *bandTable {
	bestIdx := 0
	for i := range p.tables {
		r := p.tables[i].r
		b := numHashes / r
		if b == 0 {
			continue
		}
		collide := 1 - math.Pow(1-math.Pow(j, float64(r)), float64(b))
		if collide >= minRecallAtThreshold && r >= p.tables[bestIdx].r {
			bestIdx = i
		}
	}
	return &p.tables[bestIdx]
}

// Result is one verified query answer.
type Result struct {
	Domain      *Domain
	Containment float64 // exact |Q∩X|/|Q|
}

// Query returns the indexed domains whose exact containment of the
// normalized query value set is at least threshold, ranked by containment
// descending (ties broken by domain key), truncated to k (k<=0 means all).
// rawQuery is normalized with tokenize.ValueSet, matching how domains are
// extracted from tables. Query tokens are looked up in the token
// dictionary, never interned: fingerprints of lake-vocabulary tokens come
// from the cache, and tokens outside the lake vocabulary (which can never
// intersect an indexed domain, though they still count toward |Q|) are
// hashed on the fly.
func (ix *Index) Query(rawQuery []string, threshold float64, k int) []Result {
	res, _ := ix.QueryCtx(context.Background(), rawQuery, threshold, k)
	return res
}

// QueryCtx is Query with cooperative cancellation: the candidate
// verification loop checks ctx between partitions and amortized across
// containment verifications, returning (nil, ctx.Err()) once the context is
// cancelled. Uncancelled results are byte-identical to Query.
func (ix *Index) QueryCtx(ctx context.Context, rawQuery []string, threshold float64, k int) ([]Result, error) {
	s := ix.getScratch()
	defer ix.scratch.Put(s)
	query := s.valueSet(rawQuery)
	if len(query) == 0 {
		return nil, ctx.Err()
	}
	if cap(s.fps) < len(query) {
		s.fps = make([]uint64, len(query))
	}
	fps := s.fps[:len(query)]
	s.fps = fps
	clear(s.qids)
	for i, tok := range query {
		if id := ix.dict.Lookup(tok); id != 0 {
			fps[i] = ix.dict.Fingerprint(id)
			s.qids[id] = struct{}{}
		} else {
			fps[i] = minhash.Fingerprint(tok)
		}
	}
	s.sig = ix.builder.SignInto(fps, s.sig)
	ix.ensureParts()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.query(ctx, s.sig, s.qids, len(query), threshold, k, s)
}

// QueryDomain answers a containment query for an already-extracted domain —
// the fast path for query columns that are themselves lake domains, whose
// token IDs and MinHash fingerprints were computed once at extraction. The
// domain's Values must be normalized and deduplicated (lake domains are);
// missing IDs or fingerprints are derived on the fly.
func (ix *Index) QueryDomain(d *Domain, threshold float64, k int) []Result {
	res, _ := ix.QueryDomainCtx(context.Background(), d, threshold, k)
	return res
}

// QueryDomainCtx is QueryDomain with cooperative cancellation, mirroring
// QueryCtx.
func (ix *Index) QueryDomainCtx(ctx context.Context, d *Domain, threshold float64, k int) ([]Result, error) {
	if d == nil || len(d.Values) == 0 {
		return nil, ctx.Err()
	}
	s := ix.getScratch()
	defer ix.scratch.Put(s)
	ids := d.IDs
	if ids == nil {
		ids = make([]uint32, len(d.Values))
		for i, tok := range d.Values {
			ids[i] = ix.dict.Lookup(tok)
		}
	}
	fps := d.Fingerprints
	if fps == nil {
		fps = make([]uint64, len(d.Values))
		for i, tok := range d.Values {
			if ids[i] != 0 {
				fps[i] = ix.dict.Fingerprint(ids[i])
			} else {
				fps[i] = minhash.Fingerprint(tok)
			}
		}
	}
	clear(s.qids)
	for _, id := range ids {
		if id != 0 {
			s.qids[id] = struct{}{}
		}
	}
	s.sig = ix.builder.SignInto(fps, s.sig)
	ix.ensureParts()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.query(ctx, s.sig, s.qids, len(d.Values), threshold, k, s)
}

// verifyCancelStride bounds how many candidate verifications run between two
// context checks: each verification is an O(|X|) token-ID intersection, so
// the stride keeps cancellation latency bounded without a per-candidate
// branch dominating small queries.
const verifyCancelStride = 64

// kmvSlack is the admission slack of the KMV candidate scan: two standard
// deviations of the containment estimator for a pair sitting exactly at
// containment t. With j_t the Jaccard equivalent of t (j = tq/(q+x-tq)) the
// KMV Jaccard estimate has σ_J ≈ sqrt(j_t(1-j_t)/k), and propagating through
// I = J(q+x)/(1+J), c = I/q gives σ_c ≈ σ_J·(q+x)/(q(1+j_t)²) — an error
// that grows with the size skew x/q, the regime the accuracy harness tracks.
// Admitting estimates down to t − 2σ_c keeps threshold-straddling true
// positives with ~97.7% probability; verification is exact, so the slack
// widens the candidate set, never the result set.
func kmvSlack(t float64, qsize, xsize int, k float64) float64 {
	q, x := float64(qsize), float64(xsize)
	denom := q + x - t*q
	if denom <= 0 {
		return 0
	}
	jt := t * q / denom
	if jt <= 0 || jt >= 1 {
		return 0
	}
	sigJ := math.Sqrt(jt * (1 - jt) / k)
	return 2 * sigJ * (q + x) / (q * (1 + jt) * (1 + jt))
}

// query generates candidates from the query sketch — band-table probes per
// partition under the MinHash engine, a linear containment-estimate scan
// with kmvSlack under KMV — then verifies them by exact token-ID
// intersection. qsize is |Q| (including tokens outside the lake vocabulary,
// which count toward the denominator). ctx is checked between partition
// probes and every verifyCancelStride candidate verifications.
func (ix *Index) query(ctx context.Context, qsig sketch.Sketch, qids map[uint32]struct{}, qsize int, threshold float64, k int, s *queryScratch) ([]Result, error) {
	done := ctx.Done()
	// The candidate-dedup scratch is sized for the index as of a previous
	// query; the slot arrays grow under mutation, so re-fit it here (fresh
	// entries are zero, which no live epoch ever equals).
	if len(s.seen) < len(ix.domains) {
		grown := make([]uint32, len(ix.domains))
		copy(grown, s.seen)
		s.seen = grown
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.epoch = 1
	}
	candidates := s.cands[:0]
	keys := s.keys
	if ix.banded() {
		for pi := range ix.parts {
			if done != nil {
				select {
				case <-done:
					s.cands, s.keys = candidates, keys
					return nil, ctx.Err()
				default:
				}
			}
			p := &ix.parts[pi]
			if len(p.tables) == 0 {
				continue
			}
			live := 0
			for _, di := range p.domains {
				if ix.alive[di] {
					live++
				}
			}
			if live <= scanPartitionMax {
				for _, di := range p.domains {
					if ix.alive[di] && s.seen[di] != s.epoch {
						s.seen[di] = s.epoch
						candidates = append(candidates, int32(di))
					}
				}
				continue
			}
			j := minhash.JaccardForContainment(threshold, qsize, p.upper)
			bt := p.chooseTable(j, ix.opts.NumHashes)
			keys = bandKeys(qsig, bt.r, keys[:0])
			for _, key := range keys {
				for _, di := range bt.buckets[key] {
					if s.seen[di] != s.epoch {
						s.seen[di] = s.epoch
						candidates = append(candidates, di)
					}
				}
			}
		}
	} else {
		// KMV sketches are not coordinate-aligned, so there are no band
		// tables to probe; candidates come from a containment-estimate scan
		// over the partitions' live slots instead (partitions jointly cover
		// every live domain exactly once).
		sketchK := float64(ix.opts.NumHashes)
		for pi := range ix.parts {
			if done != nil {
				select {
				case <-done:
					s.cands, s.keys = candidates, keys
					return nil, ctx.Err()
				default:
				}
			}
			for _, di := range ix.parts[pi].domains {
				if !ix.alive[di] {
					continue
				}
				admit := threshold <= 0
				if !admit {
					xsize := len(ix.domains[di].Values)
					est := ix.builder.Containment(qsig, ix.signatures[di], qsize, xsize)
					admit = est >= threshold-kmvSlack(threshold, qsize, xsize, sketchK)
				}
				if admit && s.seen[di] != s.epoch {
					s.seen[di] = s.epoch
					candidates = append(candidates, int32(di))
				}
			}
		}
	}
	s.cands = candidates
	s.keys = keys
	var results []Result
	for vi, di := range candidates {
		if done != nil && vi%verifyCancelStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		d := &ix.domains[di]
		inter := 0
		for _, id := range d.IDs {
			if _, ok := qids[id]; ok {
				inter++
			}
		}
		c := float64(inter) / float64(qsize)
		if c >= threshold && c > 0 {
			results = append(results, Result{Domain: d, Containment: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Containment != results[b].Containment {
			return results[a].Containment > results[b].Containment
		}
		return results[a].Domain.key < results[b].Domain.key
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// Dict returns the token dictionary the index interns through.
func (ix *Index) Dict() *table.TokenDict { return ix.dict }

// NumDomains reports how many live (non-removed) domains are indexed.
func (ix *Index) NumDomains() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCount
}

// ExactQuery is the brute-force baseline: it scans every domain and computes
// exact containment. It is the ground truth against which the ensemble's
// recall and speedup are measured (experiment X3). It works over raw
// strings on purpose — the baseline shares nothing with the index layout.
func ExactQuery(domains []Domain, rawQuery []string, threshold float64, k int) []Result {
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 {
		return nil
	}
	qset := make(map[string]bool, len(query))
	for _, v := range query {
		qset[v] = true
	}
	var results []Result
	for i := range domains {
		d := &domains[i]
		inter := 0
		for _, v := range d.Values {
			if qset[v] {
				inter++
			}
		}
		c := float64(inter) / float64(len(query))
		if c >= threshold && c > 0 {
			results = append(results, Result{Domain: d, Containment: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Containment != results[b].Containment {
			return results[a].Containment > results[b].Containment
		}
		return results[a].Domain.Key() < results[b].Domain.Key()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}
