// Package lshensemble implements the LSH Ensemble index for
// domain-containment search (Zhu, Nargesian, Pu, Miller — VLDB 2016), the
// joinable-table discovery method DIALITE exposes. Given a query column Q
// and a containment threshold t*, the index returns the indexed column
// domains X with |Q∩X|/|Q| ≥ t*.
//
// The ensemble works around MinHash LSH being a Jaccard filter, not a
// containment filter: domains are partitioned by set size (equi-depth), and
// within each partition the containment threshold is converted to a Jaccard
// threshold using the partition's upper size bound; each partition is then
// probed with a banding configuration tuned to that converted threshold.
// Candidates are verified and ranked by exact containment, so the index has
// no false positives — only (rare) false negatives from the sketch.
package lshensemble

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/minhash"
	"repro/internal/par"
	"repro/internal/tokenize"
)

// Domain is one indexed column: the deduplicated normalized value set of a
// table column, plus the identifiers discovery needs to report results.
type Domain struct {
	Table      string   // owning table name
	Column     int      // column index within the table
	ColumnName string   // column header (may be empty/unreliable)
	Values     []string // normalized, deduplicated value set
	// Fingerprints optionally caches minhash.Fingerprints(Values), so each
	// value is FNV-hashed once per lake rather than once per index build.
	// Callers that index the same domains more than once (rebuilds under
	// different LSH parameters) should precompute it, as lake extraction
	// does; Build computes missing fingerprints only into its own private
	// copy of the domain slice.
	Fingerprints []uint64
}

// Key identifies the domain as "table[col]".
func (d *Domain) Key() string { return fmt.Sprintf("%s[%d]", d.Table, d.Column) }

// Options configures index construction.
type Options struct {
	// NumHashes is the MinHash signature length. Default 128.
	NumHashes int
	// NumPartitions is the number of equi-depth size partitions. Default 8.
	NumPartitions int
	// Seed makes signatures deterministic. Default 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.NumHashes <= 0 {
		o.NumHashes = 128
	}
	if o.NumPartitions <= 0 {
		o.NumPartitions = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// rChoices are the band-row counts precomputed per partition. At query time
// the configuration whose S-curve threshold is closest to the converted
// Jaccard threshold is probed.
var rChoices = []int{1, 2, 4, 8}

// partition is one size range of the ensemble.
type partition struct {
	upper   int   // maximum domain size within the partition
	domains []int // indices into Index.domains
	tables  []bandTable
}

// bandTable holds banded buckets for one value of r: bucket key -> domains.
type bandTable struct {
	r       int
	buckets map[uint64][]int32
}

// Index is an immutable LSH Ensemble built over a set of domains.
type Index struct {
	opts       Options
	family     *minhash.Family
	domains    []Domain
	signatures []minhash.Signature
	parts      []partition
}

// Build constructs the ensemble. Domains with empty value sets are indexed
// but can never be returned (containment verification removes them).
func Build(domains []Domain, opts Options) *Index {
	opts = opts.withDefaults()
	ix := &Index{
		opts:    opts,
		family:  minhash.NewFamily(opts.NumHashes, opts.Seed),
		domains: append([]Domain(nil), domains...),
	}
	// Sign domains in parallel: each signature depends only on its own
	// domain, so the result is deterministic regardless of scheduling.
	// Fingerprints are computed once per domain and cached on it.
	ix.signatures = make([]minhash.Signature, len(ix.domains))
	par.For(len(ix.domains), func(i int) {
		d := &ix.domains[i]
		if d.Fingerprints == nil {
			d.Fingerprints = minhash.Fingerprints(d.Values)
		}
		ix.signatures[i] = ix.family.SignFingerprints(d.Fingerprints)
	})
	// Equi-depth partitioning by domain size.
	order := make([]int, len(ix.domains))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if la, lb := len(ix.domains[order[a]].Values), len(ix.domains[order[b]].Values); la != lb {
			return la < lb
		}
		return ix.domains[order[a]].Key() < ix.domains[order[b]].Key()
	})
	nparts := opts.NumPartitions
	if nparts > len(order) && len(order) > 0 {
		nparts = len(order)
	}
	// Partitions band independently; build them in parallel and collect in
	// partition order, so the index layout stays deterministic.
	parts := make([]partition, nparts)
	par.For(nparts, func(p int) {
		lo := p * len(order) / nparts
		hi := (p + 1) * len(order) / nparts
		if lo >= hi {
			return
		}
		part := partition{}
		for _, di := range order[lo:hi] {
			part.domains = append(part.domains, di)
			if n := len(ix.domains[di].Values); n > part.upper {
				part.upper = n
			}
		}
		for _, r := range rChoices {
			if r > opts.NumHashes {
				continue
			}
			bt := bandTable{r: r, buckets: make(map[uint64][]int32)}
			for _, di := range part.domains {
				for _, key := range bandKeys(ix.signatures[di], r) {
					bt.buckets[key] = append(bt.buckets[key], int32(di))
				}
			}
			part.tables = append(part.tables, bt)
		}
		parts[p] = part
	})
	for _, part := range parts {
		if len(part.domains) > 0 {
			ix.parts = append(ix.parts, part)
		}
	}
	return ix
}

// bandKeys hashes a signature into bands of r rows; the band index is mixed
// into the key so buckets from different bands never collide by accident.
func bandKeys(sig minhash.Signature, r int) []uint64 {
	nb := len(sig) / r
	keys := make([]uint64, 0, nb)
	var buf [8]byte
	for b := 0; b < nb; b++ {
		h := fnv.New64a()
		buf[0] = byte(b)
		buf[1] = byte(b >> 8)
		h.Write(buf[:2])
		for i := b * r; i < (b+1)*r; i++ {
			v := sig[i]
			for j := 0; j < 8; j++ {
				buf[j] = byte(v >> (8 * j))
			}
			h.Write(buf[:8])
		}
		keys = append(keys, h.Sum64())
	}
	return keys
}

// minRecallAtThreshold is the collision probability a banding must achieve
// for a pair sitting exactly at the converted Jaccard threshold. Choosing
// the most selective (largest r) banding that still clears this bound keeps
// candidate sets small without sacrificing recall at the threshold.
const minRecallAtThreshold = 0.95

// chooseTable picks the most selective precomputed banding whose collision
// probability 1-(1-j^r)^b at the target Jaccard threshold j is still at
// least minRecallAtThreshold. r=1 (which collides with probability
// 1-(1-j)^K) is the fallback.
func (p *partition) chooseTable(j float64, numHashes int) *bandTable {
	bestIdx := 0
	for i := range p.tables {
		r := p.tables[i].r
		b := numHashes / r
		if b == 0 {
			continue
		}
		collide := 1 - math.Pow(1-math.Pow(j, float64(r)), float64(b))
		if collide >= minRecallAtThreshold && r >= p.tables[bestIdx].r {
			bestIdx = i
		}
	}
	return &p.tables[bestIdx]
}

// Result is one verified query answer.
type Result struct {
	Domain      *Domain
	Containment float64 // exact |Q∩X|/|Q|
}

// Query returns the indexed domains whose exact containment of the
// normalized query value set is at least threshold, ranked by containment
// descending (ties broken by domain key), truncated to k (k<=0 means all).
// rawQuery is normalized with tokenize.ValueSet, matching how domains are
// extracted from tables.
func (ix *Index) Query(rawQuery []string, threshold float64, k int) []Result {
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 {
		return nil
	}
	candidates := make(map[int32]bool)
	qsig := ix.family.Sign(query)
	for pi := range ix.parts {
		p := &ix.parts[pi]
		if len(p.tables) == 0 {
			continue
		}
		j := minhash.JaccardForContainment(threshold, len(query), p.upper)
		bt := p.chooseTable(j, ix.opts.NumHashes)
		for _, key := range bandKeys(qsig, bt.r) {
			for _, di := range bt.buckets[key] {
				candidates[di] = true
			}
		}
	}
	qset := make(map[string]bool, len(query))
	for _, v := range query {
		qset[v] = true
	}
	var results []Result
	for di := range candidates {
		d := &ix.domains[di]
		inter := 0
		for _, v := range d.Values {
			if qset[v] {
				inter++
			}
		}
		c := float64(inter) / float64(len(query))
		if c >= threshold && c > 0 {
			results = append(results, Result{Domain: d, Containment: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Containment != results[b].Containment {
			return results[a].Containment > results[b].Containment
		}
		return results[a].Domain.Key() < results[b].Domain.Key()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// NumDomains reports how many domains are indexed.
func (ix *Index) NumDomains() int { return len(ix.domains) }

// ExactQuery is the brute-force baseline: it scans every domain and computes
// exact containment. It is the ground truth against which the ensemble's
// recall and speedup are measured (experiment X3).
func ExactQuery(domains []Domain, rawQuery []string, threshold float64, k int) []Result {
	query := tokenize.ValueSet(rawQuery)
	if len(query) == 0 {
		return nil
	}
	qset := make(map[string]bool, len(query))
	for _, v := range query {
		qset[v] = true
	}
	var results []Result
	for i := range domains {
		d := &domains[i]
		inter := 0
		for _, v := range d.Values {
			if qset[v] {
				inter++
			}
		}
		c := float64(inter) / float64(len(query))
		if c >= threshold && c > 0 {
			results = append(results, Result{Domain: d, Containment: c})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Containment != results[b].Containment {
			return results[a].Containment > results[b].Containment
		}
		return results[a].Domain.Key() < results[b].Domain.Key()
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}
