package lshensemble

import (
	"fmt"
	"math/rand"
	"testing"
)

// mkDomain builds a domain of n synthetic members starting at offset.
func mkDomain(table string, col, n, offset int) Domain {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("val%05d", i+offset)
	}
	return Domain{Table: table, Column: col, Values: vals}
}

func TestDomainKey(t *testing.T) {
	d := Domain{Table: "t", Column: 3}
	if d.Key() != "t[3]" {
		t.Errorf("Key = %q", d.Key())
	}
}

func TestBuildEmptyIndex(t *testing.T) {
	ix := Build(nil, Options{})
	if ix.NumDomains() != 0 {
		t.Error("empty build should have no domains")
	}
	if got := ix.Query([]string{"x"}, 0.5, 10); got != nil {
		t.Errorf("query on empty index = %v", got)
	}
}

func TestEmptyQuery(t *testing.T) {
	ix := Build([]Domain{mkDomain("a", 0, 10, 0)}, Options{})
	if got := ix.Query(nil, 0.5, 10); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := ix.Query([]string{"", "  "}, 0.5, 10); got != nil {
		t.Errorf("all-null query = %v", got)
	}
}

func TestExactContainmentMatch(t *testing.T) {
	// Query fully contained in domain A, half contained in B, absent from C.
	domains := []Domain{
		{Table: "A", Column: 0, Values: []string{"berlin", "barcelona", "boston", "new delhi"}},
		{Table: "B", Column: 0, Values: []string{"berlin", "boston", "tokyo", "paris"}},
		{Table: "C", Column: 0, Values: []string{"lyon", "rome"}},
	}
	ix := Build(domains, Options{NumHashes: 256, NumPartitions: 2})
	got := ix.Query([]string{"Berlin", "Barcelona", "Boston", "New Delhi"}, 0.9, 10)
	if len(got) != 1 || got[0].Domain.Table != "A" || got[0].Containment != 1 {
		t.Fatalf("threshold 0.9: got %+v", got)
	}
	got = ix.Query([]string{"Berlin", "Barcelona", "Boston", "New Delhi"}, 0.4, 10)
	if len(got) != 2 || got[0].Domain.Table != "A" || got[1].Domain.Table != "B" {
		t.Fatalf("threshold 0.4: got %+v", got)
	}
	if got[1].Containment != 0.5 {
		t.Errorf("B containment = %v, want 0.5", got[1].Containment)
	}
}

func TestNoFalsePositives(t *testing.T) {
	// Verification guarantees every result meets the threshold exactly.
	rng := rand.New(rand.NewSource(7))
	var domains []Domain
	for i := 0; i < 50; i++ {
		n := 5 + rng.Intn(200)
		domains = append(domains, mkDomain(fmt.Sprintf("t%d", i), 0, n, rng.Intn(500)))
	}
	ix := Build(domains, Options{NumHashes: 128, NumPartitions: 4})
	query := make([]string, 60)
	for i := range query {
		query[i] = fmt.Sprintf("val%05d", 100+i)
	}
	for _, th := range []float64{0.3, 0.5, 0.8} {
		for _, r := range ix.Query(query, th, 0) {
			if r.Containment < th {
				t.Errorf("threshold %v: result %s has containment %v", th, r.Domain.Key(), r.Containment)
			}
		}
	}
}

func TestRecallAgainstExact(t *testing.T) {
	// The ensemble should find nearly everything the exact scan finds.
	rng := rand.New(rand.NewSource(42))
	var domains []Domain
	for i := 0; i < 200; i++ {
		n := 20 + rng.Intn(300)
		domains = append(domains, mkDomain(fmt.Sprintf("t%d", i), 0, n, rng.Intn(400)))
	}
	ix := Build(domains, Options{NumHashes: 256, NumPartitions: 8})
	query := make([]string, 80)
	for i := range query {
		query[i] = fmt.Sprintf("val%05d", 200+i)
	}
	truth := ExactQuery(domains, query, 0.5, 0)
	got := ix.Query(query, 0.5, 0)
	gotSet := make(map[string]bool)
	for _, r := range got {
		gotSet[r.Domain.Key()] = true
	}
	found := 0
	for _, r := range truth {
		if gotSet[r.Domain.Key()] {
			found++
		}
	}
	if len(truth) == 0 {
		t.Fatal("test setup produced no true results")
	}
	recall := float64(found) / float64(len(truth))
	if recall < 0.9 {
		t.Errorf("recall = %v (%d/%d), want >= 0.9", recall, found, len(truth))
	}
}

func TestTopKTruncation(t *testing.T) {
	var domains []Domain
	for i := 0; i < 10; i++ {
		domains = append(domains, mkDomain(fmt.Sprintf("t%d", i), 0, 20, 0))
	}
	ix := Build(domains, Options{NumHashes: 128, NumPartitions: 2})
	query := make([]string, 20)
	for i := range query {
		query[i] = fmt.Sprintf("val%05d", i)
	}
	got := ix.Query(query, 0.5, 3)
	if len(got) != 3 {
		t.Errorf("top-3 returned %d results", len(got))
	}
}

func TestRankingDeterministic(t *testing.T) {
	domains := []Domain{
		{Table: "B", Column: 0, Values: []string{"x", "y"}},
		{Table: "A", Column: 0, Values: []string{"x", "y"}},
	}
	ix := Build(domains, Options{NumHashes: 64})
	got := ix.Query([]string{"x", "y"}, 0.5, 0)
	if len(got) != 2 || got[0].Domain.Table != "A" {
		t.Errorf("tie-break must be by key: %+v", got)
	}
}

func TestQueryNormalization(t *testing.T) {
	// Query values are normalized the same way domains are assumed to be.
	domains := []Domain{{Table: "A", Column: 0, Values: []string{"united states", "canada"}}}
	ix := Build(domains, Options{NumHashes: 128})
	got := ix.Query([]string{"United  States", "CANADA"}, 0.9, 0)
	if len(got) != 1 || got[0].Containment != 1 {
		t.Errorf("normalized query should fully match: %+v", got)
	}
}

func TestExactQueryBaseline(t *testing.T) {
	domains := []Domain{
		{Table: "A", Column: 0, Values: []string{"a", "b", "c"}},
		{Table: "B", Column: 0, Values: []string{"a", "z"}},
	}
	got := ExactQuery(domains, []string{"a", "b"}, 0.5, 0)
	if len(got) != 2 || got[0].Domain.Table != "A" || got[0].Containment != 1 || got[1].Containment != 0.5 {
		t.Errorf("ExactQuery = %+v", got)
	}
	if ExactQuery(domains, nil, 0.5, 0) != nil {
		t.Error("empty query must return nil")
	}
	if got := ExactQuery(domains, []string{"a", "b"}, 0.5, 1); len(got) != 1 {
		t.Error("top-k truncation broken")
	}
}

func TestPartitionUpperBounds(t *testing.T) {
	// Domains of wildly different sizes must still be found (the partition
	// conversion depends on per-partition upper bounds).
	var domains []Domain
	domains = append(domains, mkDomain("small", 0, 10, 0))
	domains = append(domains, mkDomain("large", 0, 5000, 0)) // superset of small
	for i := 0; i < 20; i++ {
		domains = append(domains, mkDomain(fmt.Sprintf("noise%d", i), 0, 100, 100000+i*500))
	}
	ix := Build(domains, Options{NumHashes: 256, NumPartitions: 4})
	query := make([]string, 10)
	for i := range query {
		query[i] = fmt.Sprintf("val%05d", i)
	}
	got := ix.Query(query, 0.9, 0)
	keys := make(map[string]bool)
	for _, r := range got {
		keys[r.Domain.Table] = true
	}
	if !keys["small"] || !keys["large"] {
		t.Errorf("expected both small and large domains, got %v", keys)
	}
}
