package lshensemble

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// mutOpts keeps mutation tests fast while exercising several partitions and
// band configurations.
var mutOpts = Options{NumHashes: 16, NumPartitions: 4, Seed: 7}

// liveDomains collects the live domains of a mutated index, stripped of
// build artifacts, in slot order.
func liveDomains(ix *Index) []Domain {
	var out []Domain
	for slot := range ix.domains {
		if ix.alive[slot] {
			d := ix.domains[slot]
			out = append(out, Domain{Table: d.Table, Column: d.Column, ColumnName: d.ColumnName, Values: d.Values})
		}
	}
	return out
}

// layoutSig renders the full partition layout — boundaries, size bounds,
// and the bucket membership of every band table — as domain keys, so two
// indexes over the same live domains compare structurally even when their
// slot numbering and dictionaries differ.
func layoutSig(ix *Index) string {
	var b strings.Builder
	for pi := range ix.parts {
		p := &ix.parts[pi]
		keys := make([]string, 0, len(p.domains))
		for _, di := range p.domains {
			keys = append(keys, ix.domains[di].key)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "part%d upper=%d members=%v\n", pi, p.upper, keys)
		for _, bt := range p.tables {
			bucketKeys := make([]uint64, 0, len(bt.buckets))
			for k := range bt.buckets {
				bucketKeys = append(bucketKeys, k)
			}
			sort.Slice(bucketKeys, func(a, c int) bool { return bucketKeys[a] < bucketKeys[c] })
			for _, k := range bucketKeys {
				members := make([]string, 0, len(bt.buckets[k]))
				for _, di := range bt.buckets[k] {
					members = append(members, ix.domains[di].key)
				}
				sort.Strings(members)
				fmt.Fprintf(&b, "  r=%d %x %v\n", bt.r, k, members)
			}
		}
	}
	return b.String()
}

func resultSig(rs []Result) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s|%.9f;", r.Domain.Key(), r.Containment)
	}
	return s
}

func randomDomainPool(rng *rand.Rand, n int) []Domain {
	pool := make([]Domain, n)
	for i := range pool {
		size := 2 + rng.Intn(14)
		seen := map[string]bool{}
		var vals []string
		for len(vals) < size {
			v := fmt.Sprintf("city%02d", rng.Intn(50))
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		pool[i] = Domain{Table: fmt.Sprintf("t%02d", i), Column: 0, Values: vals}
	}
	return pool
}

// TestMutationLayoutMatchesFreshBuild is the strongest equivalence pin: the
// incremental re-sharding must leave partition boundaries, size bounds and
// band-bucket membership identical to a from-scratch Build over the live
// domains — not merely return the same query results.
func TestMutationLayoutMatchesFreshBuild(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := randomDomainPool(rng, 12)
		inLake := make([]bool, len(pool))
		start := 1 + rng.Intn(6)
		var initial []Domain
		for i := 0; i < start; i++ {
			initial = append(initial, pool[i])
			inLake[i] = true
		}
		ix := Build(initial, mutOpts)
		for op := 0; op < 10; op++ {
			var out, in []int
			for i, ok := range inLake {
				if ok {
					in = append(in, i)
				} else {
					out = append(out, i)
				}
			}
			switch c := rng.Intn(4); {
			case c <= 1 && len(out) > 0:
				i := out[rng.Intn(len(out))]
				ix.Add([]Domain{pool[i]})
				inLake[i] = true
			case c == 2 && len(in) > 0:
				i := in[rng.Intn(len(in))]
				if got := ix.Remove([]string{pool[i].Table}); got != 1 {
					t.Fatalf("seed %d: Remove(%s) = %d", seed, pool[i].Table, got)
				}
				inLake[i] = false
			case c == 3:
				ix.Compact()
			}
			fresh := Build(liveDomains(ix), mutOpts)
			if got, want := layoutSig(ix), layoutSig(fresh); got != want {
				t.Fatalf("seed %d op %d: layout diverged from fresh build\n got:\n%s\nwant:\n%s", seed, op, got, want)
			}
			for q := 0; q < 2; q++ {
				query := pool[rng.Intn(len(pool))].Values
				th := 0.3 + 0.4*rng.Float64()
				got, want := ix.Query(query, th, 0), fresh.Query(query, th, 0)
				if resultSig(got) != resultSig(want) {
					t.Fatalf("seed %d op %d: query diverged\n got %s\nwant %s", seed, op, resultSig(got), resultSig(want))
				}
			}
		}
	}
}

func TestRemoveExcludesDomain(t *testing.T) {
	domains := []Domain{
		{Table: "A", Column: 0, Values: []string{"berlin", "boston", "tokyo"}},
		{Table: "B", Column: 0, Values: []string{"berlin", "boston", "paris"}},
	}
	ix := Build(domains, mutOpts)
	if got := ix.Query([]string{"berlin", "boston"}, 0.5, 0); len(got) != 2 {
		t.Fatalf("pre-remove results = %v", got)
	}
	if n := ix.Remove([]string{"A"}); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	got := ix.Query([]string{"berlin", "boston"}, 0.5, 0)
	if len(got) != 1 || got[0].Domain.Table != "B" {
		t.Errorf("post-remove results = %v", got)
	}
	if ix.NumDomains() != 1 {
		t.Errorf("NumDomains = %d", ix.NumDomains())
	}
}

// TestScratchGrowsWithIndex pins the pooled query scratch against index
// growth: a scratch sized by an early query must not index out of range
// after Add more than doubles the slot count.
func TestScratchGrowsWithIndex(t *testing.T) {
	ix := Build([]Domain{{Table: "A", Column: 0, Values: []string{"x", "y"}}}, mutOpts)
	ix.Query([]string{"x"}, 0.1, 0) // size the pooled scratch at 1 slot
	var add []Domain
	for i := 0; i < 30; i++ {
		add = append(add, Domain{Table: fmt.Sprintf("g%02d", i), Column: 0, Values: []string{"x", "y", fmt.Sprintf("z%d", i)}})
	}
	ix.Add(add)
	if got := ix.Query([]string{"x", "y"}, 0.5, 0); len(got) != 31 {
		t.Errorf("post-growth query found %d domains, want 31", len(got))
	}
}

// TestCompactReleasesDeadSlots verifies explicit and automatic compaction
// drop tombstoned slots without changing answers.
func TestCompactReleasesDeadSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := randomDomainPool(rng, 40)
	ix := Build(pool, mutOpts)
	var names []string
	for i := 0; i < 30; i++ {
		names = append(names, pool[i].Table)
	}
	ix.Remove(names) // 30 dead > 16 and > 10 live: auto-compaction fires
	if len(ix.domains) != 10 || ix.liveCount != 10 {
		t.Errorf("auto-compaction left %d slots / %d live", len(ix.domains), ix.liveCount)
	}
	fresh := Build(liveDomains(ix), mutOpts)
	if layoutSig(ix) != layoutSig(fresh) {
		t.Error("compacted layout diverged from fresh build")
	}
}
