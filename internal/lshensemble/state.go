package lshensemble

import (
	"fmt"

	"repro/internal/minhash"
	"repro/internal/table"
)

// This file is the persistence surface of the LSH Ensemble. MinHash signing
// dominates a build (NumHashes permutation mixes per fingerprint); the
// signatures are small, deterministic (fixed family seed) and immutable per
// slot, so Export hands them out and Restore rebuilds the whole index from
// cached signatures without signing a single domain — the equi-depth
// partitioning and band tables are derived from those signatures lazily, on
// the first query or mutation. Banding is deterministic given signatures and
// options, so a restored index is query-identical to the exporting one.

// Options returns the index's construction options (defaults applied).
func (ix *Index) Options() Options { return ix.opts }

// ExportSignatures returns the cached MinHash signature of every live
// domain, keyed by domain key ("table[col]"). The signatures are the
// index's own immutable per-slot arrays; callers must not modify them.
func (ix *Index) ExportSignatures() map[string][]uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string][]uint64, ix.liveCount)
	for slot := range ix.domains {
		if ix.alive[slot] {
			out[ix.domains[slot].key] = ix.signatures[slot]
		}
	}
	return out
}

// Restore constructs the ensemble over domains whose MinHash signatures are
// already known, skipping the signing pass. signatures is parallel to
// domains and every signature must have exactly opts.NumHashes words
// (after defaulting) — the restored index probes and re-signs queries with
// a fresh family from opts.Seed, which only agrees with foreign signatures
// of matching geometry. dict follows the BuildWithDict contract: when
// non-nil, precomputed Domain.IDs are trusted as interned in it.
//
// The partition layout, band tables and query behavior of the result are
// identical to BuildWithDict over the same domains and options.
func Restore(domains []Domain, signatures [][]uint64, opts Options, dict *table.TokenDict) (*Index, error) {
	if len(signatures) != len(domains) {
		return nil, fmt.Errorf("lshensemble: restore: %d signatures for %d domains", len(signatures), len(domains))
	}
	opts = opts.withDefaults()
	trustIDs := dict != nil
	if dict == nil {
		dict = table.NewTokenDict()
	}
	ix := &Index{
		opts:      opts,
		family:    minhash.NewFamily(opts.NumHashes, opts.Seed),
		dict:      dict,
		trustIDs:  trustIDs,
		domains:   append([]Domain(nil), domains...),
		alive:     make([]bool, len(domains)),
		partOf:    make([]int32, len(domains)),
		liveCount: len(domains),
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			seenTok: make(map[string]struct{}),
			qids:    make(map[uint32]struct{}),
		}
	}
	ix.signatures = make([]minhash.Signature, len(ix.domains))
	sigArena := make([]uint64, len(ix.domains)*opts.NumHashes)
	for i := range ix.domains {
		if len(signatures[i]) != opts.NumHashes {
			return nil, fmt.Errorf("lshensemble: restore: signature %d has %d words, want %d", i, len(signatures[i]), opts.NumHashes)
		}
		d := &ix.domains[i]
		d.key = fmt.Sprintf("%s[%d]", d.Table, d.Column)
		if d.IDs == nil || !trustIDs {
			d.IDs = dict.InternAll(d.Values, nil)
		}
		// Fingerprints are deliberately left as given (usually nil): they
		// are only read to sign a domain, and every restored domain carries
		// its persisted signature. Domains added after restore arrive with
		// their own cached fingerprints from lake extraction.
		slot := sigArena[i*opts.NumHashes : (i+1)*opts.NumHashes : (i+1)*opts.NumHashes]
		copy(slot, signatures[i])
		ix.signatures[i] = slot
		ix.alive[i] = true
		ix.partOf[i] = -1
	}
	// The partitioning and band tables are derived purely from the
	// signatures above; defer them to the first query or mutation so restore
	// itself stays proportional to the persisted bytes.
	ix.partsStale.Store(true)
	return ix, nil
}
