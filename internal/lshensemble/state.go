package lshensemble

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/table"
)

// This file is the persistence surface of the LSH Ensemble. Sketch signing
// dominates a build (for MinHash, NumHashes permutation mixes per
// fingerprint); the sketches are small, deterministic (fixed engine seed)
// and immutable per slot, so Export hands them out and Restore rebuilds the
// whole index from cached sketches without signing a single domain — the
// equi-depth partitioning and band tables are derived from those sketches
// lazily, on the first query or mutation. Banding is deterministic given
// sketches and options, so a restored index is query-identical to the
// exporting one.

// Options returns the index's construction options (defaults applied).
func (ix *Index) Options() Options { return ix.opts }

// ExportSignatures returns the cached sketch of every live domain, keyed by
// domain key ("table[col]"). The sketches are the index's own immutable
// per-slot arrays; callers must not modify them.
func (ix *Index) ExportSignatures() map[string][]uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string][]uint64, ix.liveCount)
	for slot := range ix.domains {
		if ix.alive[slot] {
			out[ix.domains[slot].key] = ix.signatures[slot]
		}
	}
	return out
}

// Restore constructs the ensemble over domains whose sketches are already
// known, skipping the signing pass. signatures is parallel to domains and
// every sketch must be structurally valid for the configured engine (after
// defaulting: exactly NumHashes words for MinHash, at most NumHashes
// strictly ascending words for KMV) — the restored index signs queries with
// a fresh builder from opts, which only agrees with foreign sketches of
// matching engine, size and seed. Unknown engines are an error here, never
// a panic: this is the path persisted foreign values arrive through. dict
// follows the BuildWithDict contract: when non-nil, precomputed Domain.IDs
// are trusted as interned in it.
//
// The partition layout, band tables and query behavior of the result are
// identical to BuildWithDict over the same domains and options.
func Restore(domains []Domain, signatures [][]uint64, opts Options, dict *table.TokenDict) (*Index, error) {
	if len(signatures) != len(domains) {
		return nil, fmt.Errorf("lshensemble: restore: %d signatures for %d domains", len(signatures), len(domains))
	}
	opts = opts.withDefaults()
	builder, err := sketch.New(opts.sketchParams())
	if err != nil {
		return nil, fmt.Errorf("lshensemble: restore: %w", err)
	}
	trustIDs := dict != nil
	if dict == nil {
		dict = table.NewTokenDict()
	}
	ix := &Index{
		opts:      opts,
		builder:   builder,
		dict:      dict,
		trustIDs:  trustIDs,
		domains:   append([]Domain(nil), domains...),
		alive:     make([]bool, len(domains)),
		partOf:    make([]int32, len(domains)),
		liveCount: len(domains),
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			seenTok: make(map[string]struct{}),
			qids:    make(map[uint32]struct{}),
		}
	}
	ix.signatures = make([]sketch.Sketch, len(ix.domains))
	sigArena := make([]uint64, len(ix.domains)*opts.NumHashes)
	for i := range ix.domains {
		if err := builder.Validate(signatures[i]); err != nil {
			return nil, fmt.Errorf("lshensemble: restore: signature %d: %w", i, err)
		}
		d := &ix.domains[i]
		d.key = fmt.Sprintf("%s[%d]", d.Table, d.Column)
		if d.IDs == nil || !trustIDs {
			d.IDs = dict.InternAll(d.Values, nil)
		}
		// Fingerprints are deliberately left as given (usually nil): they
		// are only read to sign a domain, and every restored domain carries
		// its persisted sketch. Domains added after restore arrive with
		// their own cached fingerprints from lake extraction.
		slot := sigArena[i*opts.NumHashes : i*opts.NumHashes : (i+1)*opts.NumHashes]
		ix.signatures[i] = append(slot, signatures[i]...)
		ix.alive[i] = true
		ix.partOf[i] = -1
	}
	// The partitioning and band tables are derived purely from the sketches
	// above; defer them to the first query or mutation so restore itself
	// stays proportional to the persisted bytes.
	ix.partsStale.Store(true)
	return ix, nil
}
