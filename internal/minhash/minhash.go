// Package minhash implements MinHash signatures for Jaccard-similarity
// estimation, the sketch underlying the LSH Ensemble joinable-table index
// (Zhu et al., VLDB 2016). Signatures are deterministic for a given family
// seed, which keeps discovery results and tests reproducible.
package minhash

import (
	"math/bits"
	"math/rand"
)

// mersennePrime is 2^61-1, the modulus of the multiply-add hash family.
const mersennePrime = (uint64(1) << 61) - 1

// Signature is a MinHash sketch: one minimum per hash function.
type Signature []uint64

// Family is a set of k pairwise-independent hash functions
// h_i(x) = (a_i*x + b_i) mod (2^61-1), applied to 64-bit FNV fingerprints
// of set members.
type Family struct {
	k int
	a []uint64
	b []uint64
}

// NewFamily creates a family of k hash functions seeded deterministically.
func NewFamily(k int, seed int64) *Family {
	if k <= 0 {
		panic("minhash: family size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Family{k: k, a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		// a must be nonzero for the family to be pairwise independent.
		f.a[i] = uint64(rng.Int63n(int64(mersennePrime-1))) + 1
		f.b[i] = uint64(rng.Int63n(int64(mersennePrime)))
	}
	return f
}

// K reports the number of hash functions (the signature length).
func (f *Family) K() int { return f.k }

// Fingerprint hashes a set member to 64 bits with FNV-1a, byte-identical
// to hash/fnv.New64a over the same bytes but without the hash.Hash
// allocation. Every discovery-side token hash (MinHash signatures, the
// TokenDict fingerprint cache) goes through this one function, so cached
// and freshly computed fingerprints always agree.
func Fingerprint(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mulmod computes (a*x + b) mod 2^61-1 using 128-bit intermediate math.
func mulmod(a, x, b uint64) uint64 {
	hi, lo := bits.Mul64(a, x%mersennePrime)
	// Fold the 128-bit product modulo 2^61-1: since 2^61 ≡ 1 (mod p),
	// value = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod p), applied
	// iteratively to keep within range.
	v := (hi<<3 | lo>>61) + (lo & mersennePrime)
	for v >= mersennePrime {
		v -= mersennePrime
	}
	v += b % mersennePrime
	if v >= mersennePrime {
		v -= mersennePrime
	}
	return v
}

// Fingerprints hashes every set member to its 64-bit FNV fingerprint. The
// result is family-independent, so callers that sign the same set under
// several families — or rebuild an index with different parameters — can
// compute fingerprints once per lake and reuse them via SignFingerprints.
func Fingerprints(set []string) []uint64 {
	out := make([]uint64, len(set))
	for i, s := range set {
		out[i] = Fingerprint(s)
	}
	return out
}

// Sign computes the MinHash signature of a string set. Duplicates are
// harmless (min is idempotent). An empty set yields a signature of all
// MaxUint64, which estimates Jaccard 1 only against another empty set
// signed by the same family.
func (f *Family) Sign(set []string) Signature {
	return f.SignFingerprints(Fingerprints(set))
}

// SignFingerprints computes the MinHash signature from precomputed member
// fingerprints, skipping the per-member FNV pass. Sign(set) is exactly
// SignFingerprints(Fingerprints(set)).
func (f *Family) SignFingerprints(fps []uint64) Signature {
	return f.SignFingerprintsInto(fps, nil)
}

// signBlock is the number of fingerprints each permutation pass evaluates.
// Eight gives the superscalar core eight independent multiply chains per
// (a_i, b_i) load while the block of reduced fingerprints still lives in
// registers.
const signBlock = 8

// mix61 evaluates one hash: (a*x + b) mod 2^61-1 for x and b already below
// the modulus. The 128-bit product folds via 2^61 ≡ 1 (mod p); the folded
// value is < 2^62 ≤ 2p+1, so at most two conditional subtractions replace
// mulmod's reduction loop — same values at every step, so results are
// bit-identical to mulmod.
func mix61(a, x, b uint64) uint64 {
	hi, lo := bits.Mul64(a, x)
	v := (hi<<3 | lo>>61) + (lo & mersennePrime)
	if v >= mersennePrime {
		v -= mersennePrime
	}
	if v >= mersennePrime {
		v -= mersennePrime
	}
	v += b
	if v >= mersennePrime {
		v -= mersennePrime
	}
	return v
}

// SignFingerprintsInto is SignFingerprints writing into dst (reused when it
// has capacity, discarding its previous contents), the allocation-free form
// query-scratch pools and index builds use.
//
// The kernel is batched: fingerprints are reduced modulo 2^61-1 once and
// processed signBlock at a time with the hash-function loop outermost, so
// each a_i/b_i (and the running minimum sig[i]) is loaded once per block
// instead of once per member, and the eight hash evaluations per iteration
// are independent multiply chains the CPU can overlap. min is commutative
// and each (a_i, x, b_i) evaluation is exactly mulmod, so the signature is
// bit-identical to the scalar reference — pinned by TestSignMatchesMulmod
// and the randomized batched-vs-scalar cross-check.
func (f *Family) SignFingerprintsInto(fps []uint64, dst Signature) Signature {
	sig := dst
	if cap(sig) < f.k {
		sig = make(Signature, f.k)
	}
	sig = sig[:f.k]
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	a, b := f.a, f.b
	var xs [signBlock]uint64
	n := len(fps)
	base := 0
	for ; n-base >= signBlock; base += signBlock {
		for j := range xs {
			xs[j] = fps[base+j] % mersennePrime
		}
		x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
		x4, x5, x6, x7 := xs[4], xs[5], xs[6], xs[7]
		for i := 0; i < f.k; i++ {
			ai, bi := a[i], b[i]
			m := sig[i]
			if v := mix61(ai, x0, bi); v < m {
				m = v
			}
			if v := mix61(ai, x1, bi); v < m {
				m = v
			}
			if v := mix61(ai, x2, bi); v < m {
				m = v
			}
			if v := mix61(ai, x3, bi); v < m {
				m = v
			}
			if v := mix61(ai, x4, bi); v < m {
				m = v
			}
			if v := mix61(ai, x5, bi); v < m {
				m = v
			}
			if v := mix61(ai, x6, bi); v < m {
				m = v
			}
			if v := mix61(ai, x7, bi); v < m {
				m = v
			}
			sig[i] = m
		}
	}
	if base < n {
		blk := n - base
		for j := 0; j < blk; j++ {
			xs[j] = fps[base+j] % mersennePrime
		}
		for i := 0; i < f.k; i++ {
			ai, bi := a[i], b[i]
			m := sig[i]
			for j := 0; j < blk; j++ {
				if v := mix61(ai, xs[j], bi); v < m {
					m = v
				}
			}
			sig[i] = m
		}
	}
	return sig
}

// SignScalarInto is the retained pre-batching signing kernel: one fingerprint
// per permutation pass, mulmod with the loop-invariant reductions hoisted. It
// exists as the reference the batched SignFingerprintsInto is cross-checked
// and benchmarked against (BenchmarkSignKernel); production paths use the
// batched kernel.
func (f *Family) SignScalarInto(fps []uint64, dst Signature) Signature {
	sig := dst
	if cap(sig) < f.k {
		sig = make(Signature, f.k)
	}
	sig = sig[:f.k]
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	a, b := f.a, f.b
	for _, fp := range fps {
		x := fp % mersennePrime
		for i := 0; i < f.k; i++ {
			hi, lo := bits.Mul64(a[i], x)
			v := (hi<<3 | lo>>61) + (lo & mersennePrime)
			for v >= mersennePrime {
				v -= mersennePrime
			}
			v += b[i]
			if v >= mersennePrime {
				v -= mersennePrime
			}
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// EstimateJaccard estimates the Jaccard similarity of the sets behind two
// signatures from the same family: the fraction of agreeing components.
func EstimateJaccard(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// JaccardForContainment converts a containment threshold t = |Q∩X|/|Q| into
// the equivalent Jaccard threshold j = t / (1 + x/q - t) for a domain of
// size x and query of size q, the inclusion LSH Ensemble uses to query
// Jaccard-based LSH for containment search. The conversion uses the
// partition's upper bound on x, making it a lower bound on the true Jaccard
// (no false negatives from the conversion itself).
func JaccardForContainment(t float64, querySize, domainUpper int) float64 {
	if querySize <= 0 {
		return 0
	}
	den := 1 + float64(domainUpper)/float64(querySize) - t
	if den <= 0 {
		return 1
	}
	j := t / den
	if j > 1 {
		return 1
	}
	if j < 0 {
		return 0
	}
	return j
}
