package minhash

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tokenize"
)

func setOf(n, offset int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("member-%d", i+offset)
	}
	return out
}

func TestNewFamilyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(0) must panic")
		}
	}()
	NewFamily(0, 1)
}

func TestSignDeterministic(t *testing.T) {
	f := NewFamily(64, 42)
	a := f.Sign([]string{"x", "y", "z"})
	b := f.Sign([]string{"z", "y", "x", "x"}) // order and dups irrelevant
	if len(a) != 64 {
		t.Fatalf("signature length = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signatures differ at %d", i)
		}
	}
	g := NewFamily(64, 43)
	c := g.Sign([]string{"x", "y", "z"})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different signatures")
	}
}

func TestIdenticalSetsEstimateOne(t *testing.T) {
	f := NewFamily(128, 1)
	s := f.Sign(setOf(100, 0))
	if got := EstimateJaccard(s, s); got != 1 {
		t.Errorf("self similarity = %v, want 1", got)
	}
}

func TestDisjointSetsEstimateNearZero(t *testing.T) {
	f := NewFamily(256, 7)
	a := f.Sign(setOf(200, 0))
	b := f.Sign(setOf(200, 10000))
	if got := EstimateJaccard(a, b); got > 0.05 {
		t.Errorf("disjoint estimate = %v, want near 0", got)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// True Jaccard of [0,150) vs [50,200) is 100/200 = 0.5.
	f := NewFamily(512, 11)
	a := setOf(150, 0)
	b := setOf(150, 50)
	truth := tokenize.Jaccard(a, b)
	est := EstimateJaccard(f.Sign(a), f.Sign(b))
	if math.Abs(est-truth) > 0.08 {
		t.Errorf("estimate %v too far from truth %v", est, truth)
	}
}

func TestEstimateMismatchedLengths(t *testing.T) {
	f := NewFamily(16, 3)
	g := NewFamily(32, 3)
	if EstimateJaccard(f.Sign([]string{"a"}), g.Sign([]string{"a"})) != 0 {
		t.Error("mismatched signature lengths must estimate 0")
	}
	if EstimateJaccard(nil, nil) != 0 {
		t.Error("empty signatures must estimate 0")
	}
}

func TestEstimateRangeProperty(t *testing.T) {
	f := NewFamily(64, 99)
	fn := func(a, b []string) bool {
		e := EstimateJaccard(f.Sign(a), f.Sign(b))
		return e >= 0 && e <= 1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubsetEstimateMonotone(t *testing.T) {
	// A bigger intersection should estimate at least roughly higher.
	f := NewFamily(512, 5)
	base := setOf(100, 0)
	near := f.Sign(setOf(100, 10)) // 90% overlap
	far := f.Sign(setOf(100, 80))  // 20% overlap
	qb := f.Sign(base)
	if EstimateJaccard(qb, near) <= EstimateJaccard(qb, far) {
		t.Error("estimates should order by true similarity")
	}
}

func TestJaccardForContainment(t *testing.T) {
	// Equal sizes, containment 1 -> jaccard 1.
	if j := JaccardForContainment(1, 100, 100); j != 1 {
		t.Errorf("J(1,100,100) = %v, want 1", j)
	}
	// Domain twice the query, containment 1 -> jaccard 1/2.
	if j := JaccardForContainment(1, 100, 200); math.Abs(j-0.5) > 1e-12 {
		t.Errorf("J(1,100,200) = %v, want 0.5", j)
	}
	// t=0.5, x=q: j = 0.5/(1+1-0.5) = 1/3.
	if j := JaccardForContainment(0.5, 100, 100); math.Abs(j-1.0/3) > 1e-12 {
		t.Errorf("J(0.5,100,100) = %v, want 1/3", j)
	}
	if JaccardForContainment(0.5, 0, 10) != 0 {
		t.Error("empty query must convert to 0")
	}
	// Result is clamped to [0,1].
	if j := JaccardForContainment(1.5, 10, 1); j < 0 || j > 1 {
		t.Errorf("clamping broken: %v", j)
	}
}

func TestJaccardForContainmentMonotoneInThreshold(t *testing.T) {
	prev := -1.0
	for _, tt := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		j := JaccardForContainment(tt, 50, 150)
		if j < prev {
			t.Errorf("conversion must be monotone in t: J(%v)=%v < %v", tt, j, prev)
		}
		prev = j
	}
}

func TestSignFingerprintsMatchesSign(t *testing.T) {
	f := NewFamily(64, 7)
	set := []string{"boston", "chicago", "austin", "miami", ""}
	fps := Fingerprints(set)
	a, b := f.Sign(set), f.SignFingerprints(fps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("component %d: Sign=%d SignFingerprints=%d", i, a[i], b[i])
		}
	}
	// Fingerprints are family-independent: a second family signs the same
	// fingerprints to the same result as signing the raw set.
	g := NewFamily(64, 99)
	c, d := g.Sign(set), g.SignFingerprints(fps)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("family 2 component %d: Sign=%d SignFingerprints=%d", i, c[i], d[i])
		}
	}
}

func TestMulmodInRange(t *testing.T) {
	f := func(a, x, b uint64) bool {
		return mulmod(a, x, b) < mersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestSignMatchesMulmod pins the hoisted-reduction signing loop to the
// generic mulmod definition: signatures must be bit-identical to the naive
// per-(member, hash) mulmod evaluation.
func TestSignMatchesMulmod(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := NewFamily(96, 7)
	fps := make([]uint64, 300)
	for i := range fps {
		fps[i] = rng.Uint64() // includes values at and above the modulus
	}
	fps = append(fps, 0, mersennePrime-1, mersennePrime, mersennePrime+1, ^uint64(0))
	got := f.SignFingerprints(fps)
	want := make(Signature, f.k)
	for i := range want {
		want[i] = ^uint64(0)
	}
	for _, fp := range fps {
		for i := 0; i < f.k; i++ {
			if h := mulmod(f.a[i], fp, f.b[i]); h < want[i] {
				want[i] = h
			}
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestSignBatchedMatchesScalar cross-checks the batched kernel against the
// retained scalar reference across fingerprint-count edge cases: empty, a
// single member, counts around the block size (so both the full-block body
// and every tail length run), and a set far larger than any block. Random
// fingerprints cover values at and above the modulus.
func TestSignBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	families := []*Family{NewFamily(1, 3), NewFamily(96, 7), NewFamily(128, 1)}
	counts := []int{0, 1, 2, signBlock - 1, signBlock, signBlock + 1,
		3*signBlock - 2, 8 * signBlock, 1000, 4097}
	for _, f := range families {
		for _, n := range counts {
			fps := make([]uint64, 0, n+5)
			for i := 0; i < n; i++ {
				fps = append(fps, rng.Uint64())
			}
			if n > 0 {
				// Pin the modulus edge values into every non-empty case.
				fps[0] = 0
				fps = append(fps[:n-1], mersennePrime-1, mersennePrime, mersennePrime+1, ^uint64(0))
			}
			got := f.SignFingerprintsInto(fps, nil)
			want := f.SignScalarInto(fps, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d n=%d component %d: batched %d != scalar %d",
						f.k, len(fps), i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkSignKernel compares the batched signing kernel against the
// retained scalar reference over a lake-typical domain (the root-package
// BenchmarkSignKernel feeds the same comparison into BENCH_<PR>.json).
func BenchmarkSignKernel(b *testing.B) {
	f := NewFamily(128, 1)
	rng := rand.New(rand.NewSource(9))
	fps := make([]uint64, 512)
	for i := range fps {
		fps[i] = rng.Uint64()
	}
	var sink Signature
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.SignFingerprintsInto(fps, sink)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.SignScalarInto(fps, sink)
		}
	})
	_ = sink
}
