// Package paperdata holds the worked-example tables of the DIALITE paper
// (Figures 2, 3, 7 and 8) as fixtures, along with the paper's expected
// outputs. Golden tests across the repository assert that discovery,
// integration, analytics and entity resolution reproduce these figures
// exactly; the cmd/repro harness prints them side by side.
//
// Tuple identifiers follow the paper: rows t1–t10 for the COVID-cases
// example (Fig. 2) and t11–t16 for the vaccine example (Fig. 7). The
// fixtures attach these as provenance IDs so integrated outputs can be
// compared against the figures' TIDs column.
package paperdata

import "repro/internal/table"

// Column headers of the Fig. 2 tables. Headers are "presented for
// simplicity" in the paper and not used by discovery; they are used by the
// oracle schema matcher in tests.
const (
	ColCountry   = "Country"
	ColCity      = "City"
	ColVaccRate  = "Vaccination Rate (1+ dose)"
	ColCases     = "Total Cases"
	ColDeathRate = "Death Rate (per 100k residents)"
	ColVaccine   = "Vaccine"
	ColApprover  = "Approver"
)

// T1 returns the paper's query table T1 (rows t1–t3).
func T1() *table.Table {
	t := table.New("T1", ColCountry, ColCity, ColVaccRate)
	t.MustAddRow(table.StringValue("Germany"), table.StringValue("Berlin"), table.StringValue("63%"))
	t.MustAddRow(table.StringValue("England"), table.StringValue("Manchester"), table.StringValue("78%"))
	t.MustAddRow(table.StringValue("Spain"), table.StringValue("Barcelona"), table.StringValue("82%"))
	return t
}

// T2 returns the retrieved unionable table T2 (rows t4–t6). Row t5 has a
// missing null (±) for the vaccination rate.
func T2() *table.Table {
	t := table.New("T2", ColCountry, ColCity, ColVaccRate)
	t.MustAddRow(table.StringValue("Canada"), table.StringValue("Toronto"), table.StringValue("83%"))
	t.MustAddRow(table.StringValue("Mexico"), table.StringValue("Mexico City"), table.NullValue())
	t.MustAddRow(table.StringValue("USA"), table.StringValue("Boston"), table.StringValue("62%"))
	return t
}

// T3 returns the retrieved joinable table T3 (rows t7–t10).
func T3() *table.Table {
	t := table.New("T3", ColCity, ColCases, ColDeathRate)
	t.MustAddRow(table.StringValue("Berlin"), table.StringValue("1.4M"), table.IntValue(147))
	t.MustAddRow(table.StringValue("Barcelona"), table.StringValue("2.68M"), table.IntValue(275))
	t.MustAddRow(table.StringValue("Boston"), table.StringValue("263k"), table.IntValue(335))
	t.MustAddRow(table.StringValue("New Delhi"), table.StringValue("2M"), table.IntValue(158))
	return t
}

// T4 returns the vaccine/approver table T4 of Fig. 7 (rows t11–t12).
func T4() *table.Table {
	t := table.New("T4", ColVaccine, ColApprover)
	t.MustAddRow(table.StringValue("Pfizer"), table.StringValue("FDA"))
	t.MustAddRow(table.StringValue("JnJ"), table.NullValue())
	return t
}

// T5 returns the country/approver table T5 of Fig. 7 (rows t13–t14).
func T5() *table.Table {
	t := table.New("T5", ColCountry, ColApprover)
	t.MustAddRow(table.StringValue("United States"), table.StringValue("FDA"))
	t.MustAddRow(table.StringValue("USA"), table.NullValue())
	return t
}

// T6 returns the vaccine/country table T6 of Fig. 7 (rows t15–t16).
func T6() *table.Table {
	t := table.New("T6", ColVaccine, ColCountry)
	t.MustAddRow(table.StringValue("J&J"), table.StringValue("United States"))
	t.MustAddRow(table.StringValue("JnJ"), table.StringValue("USA"))
	return t
}

// TupleID returns the paper's tuple identifier for row r of the named
// fixture table ("T1" row 0 -> "t1", "T5" row 1 -> "t14").
func TupleID(tableName string, r int) string {
	base := map[string]int{"T1": 1, "T2": 4, "T3": 7, "T4": 11, "T5": 13, "T6": 15}
	b, ok := base[tableName]
	if !ok {
		return ""
	}
	return "t" + itoa(b+r)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Fig3Expected returns the paper's Fig. 3 integrated table
// FD(T1,T2,T3) — tuples f1–f7 — over the integration schema
// (Country, City, Vaccination Rate, Total Cases, Death Rate), without the
// provenance column. Row order follows the figure.
func Fig3Expected() *table.Table {
	t := table.New("FD(T1,T2,T3)", ColCountry, ColCity, ColVaccRate, ColCases, ColDeathRate)
	t.MustAddRow(table.StringValue("Germany"), table.StringValue("Berlin"), table.StringValue("63%"), table.StringValue("1.4M"), table.IntValue(147))
	t.MustAddRow(table.StringValue("England"), table.StringValue("Manchester"), table.StringValue("78%"), table.ProducedNull(), table.ProducedNull())
	t.MustAddRow(table.StringValue("Spain"), table.StringValue("Barcelona"), table.StringValue("82%"), table.StringValue("2.68M"), table.IntValue(275))
	t.MustAddRow(table.StringValue("Canada"), table.StringValue("Toronto"), table.StringValue("83%"), table.ProducedNull(), table.ProducedNull())
	t.MustAddRow(table.StringValue("Mexico"), table.StringValue("Mexico City"), table.NullValue(), table.ProducedNull(), table.ProducedNull())
	t.MustAddRow(table.StringValue("USA"), table.StringValue("Boston"), table.StringValue("62%"), table.StringValue("263k"), table.IntValue(335))
	t.MustAddRow(table.ProducedNull(), table.StringValue("New Delhi"), table.ProducedNull(), table.StringValue("2M"), table.IntValue(158))
	return t
}

// Fig3Provenance returns the expected provenance sets of Fig. 3, keyed by
// the City value of each output tuple (every Fig. 3 tuple has a distinct
// city, which makes the mapping unambiguous).
func Fig3Provenance() map[string][]string {
	return map[string][]string{
		"Berlin":      {"t1", "t7"},
		"Manchester":  {"t2"},
		"Barcelona":   {"t3", "t8"},
		"Toronto":     {"t4"},
		"Mexico City": {"t5"},
		"Boston":      {"t6", "t9"},
		"New Delhi":   {"t10"},
	}
}

// Fig8aExpected returns the paper's Fig. 8(a): the full outer join
// T4 ⟗ T5 ⟗ T6 — tuples f8–f12 — over (Vaccine, Approver, Country).
func Fig8aExpected() *table.Table {
	t := table.New("T4⟗T5⟗T6", ColVaccine, ColApprover, ColCountry)
	t.MustAddRow(table.StringValue("Pfizer"), table.StringValue("FDA"), table.StringValue("United States"))
	t.MustAddRow(table.StringValue("JnJ"), table.NullValue(), table.ProducedNull())
	t.MustAddRow(table.ProducedNull(), table.NullValue(), table.StringValue("USA"))
	t.MustAddRow(table.StringValue("J&J"), table.ProducedNull(), table.StringValue("United States"))
	t.MustAddRow(table.StringValue("JnJ"), table.ProducedNull(), table.StringValue("USA"))
	return t
}

// Fig8bExpected returns the paper's Fig. 8(b): FD(T4,T5,T6) — tuples f8,
// f12, f13 — over (Vaccine, Approver, Country).
func Fig8bExpected() *table.Table {
	t := table.New("FD(T4,T5,T6)", ColVaccine, ColApprover, ColCountry)
	t.MustAddRow(table.StringValue("Pfizer"), table.StringValue("FDA"), table.StringValue("United States"))
	t.MustAddRow(table.StringValue("JnJ"), table.ProducedNull(), table.StringValue("USA"))
	t.MustAddRow(table.StringValue("J&J"), table.StringValue("FDA"), table.StringValue("United States"))
	return t
}

// Fig8bProvenance returns the expected provenance sets of Fig. 8(b), keyed
// by Vaccine value (distinct per output tuple).
func Fig8bProvenance() map[string][]string {
	return map[string][]string{
		"Pfizer": {"t11", "t13"},
		"JnJ":    {"t16"},
		"J&J":    {"t13", "t15"},
	}
}

// Fig8dExpected returns the paper's Fig. 8(d): entity resolution over the
// FD result — two resolved entities, with the J&J/JnJ pair merged into
// (J&J, FDA, United States).
func Fig8dExpected() *table.Table {
	t := table.New("ER(FD)", ColVaccine, ColApprover, ColCountry)
	t.MustAddRow(table.StringValue("Pfizer"), table.StringValue("FDA"), table.StringValue("United States"))
	t.MustAddRow(table.StringValue("J&J"), table.StringValue("FDA"), table.StringValue("United States"))
	return t
}

// CovidLake returns the demo data lake for the Fig. 2 walk-through: the
// repository tables T2 and T3 (T1 is the query and not part of the lake).
func CovidLake() []*table.Table {
	return []*table.Table{T2(), T3()}
}

// VaccineSet returns the Fig. 7 integration set {T4, T5, T6}.
func VaccineSet() []*table.Table {
	return []*table.Table{T4(), T5(), T6()}
}
