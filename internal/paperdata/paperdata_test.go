package paperdata

import (
	"testing"

	"repro/internal/table"
)

func TestFixtureShapes(t *testing.T) {
	cases := []struct {
		tab        *table.Table
		rows, cols int
	}{
		{T1(), 3, 3}, {T2(), 3, 3}, {T3(), 4, 3},
		{T4(), 2, 2}, {T5(), 2, 2}, {T6(), 2, 2},
		{Fig3Expected(), 7, 5}, {Fig8aExpected(), 5, 3}, {Fig8bExpected(), 3, 3},
		{Fig8dExpected(), 2, 3},
	}
	for _, c := range cases {
		if c.tab.NumRows() != c.rows || c.tab.NumCols() != c.cols {
			t.Errorf("%s: %dx%d, want %dx%d", c.tab.Name, c.tab.NumRows(), c.tab.NumCols(), c.rows, c.cols)
		}
	}
}

func TestTupleIDs(t *testing.T) {
	cases := map[[2]interface{}]string{
		{"T1", 0}: "t1", {"T1", 2}: "t3", {"T2", 0}: "t4", {"T3", 3}: "t10",
		{"T4", 1}: "t12", {"T5", 0}: "t13", {"T6", 1}: "t16", {"ZZ", 0}: "",
	}
	for k, want := range cases {
		if got := TupleID(k[0].(string), k[1].(int)); got != want {
			t.Errorf("TupleID(%v) = %q, want %q", k, got, want)
		}
	}
}

func TestNullKindsMatchFigures(t *testing.T) {
	// t5's vaccination rate is a missing null (±).
	if v := T2().Cell(1, 2); v.Kind() != table.Null {
		t.Errorf("t5 rate kind = %v, want missing null", v.Kind())
	}
	// Fig. 3 f2 has produced nulls (⊥) for cases/death rate.
	f3 := Fig3Expected()
	if v := f3.Cell(1, 3); v.Kind() != table.PNull {
		t.Errorf("f2 cases kind = %v, want produced null", v.Kind())
	}
	// Fig. 3 f5 keeps the missing null from t5.
	if v := f3.Cell(4, 2); v.Kind() != table.Null {
		t.Errorf("f5 rate kind = %v, want missing null", v.Kind())
	}
	// Fig. 8(a) f9 has a missing null approver and produced null country.
	f8a := Fig8aExpected()
	if f8a.Cell(1, 1).Kind() != table.Null || f8a.Cell(1, 2).Kind() != table.PNull {
		t.Error("f9 null kinds wrong")
	}
}

func TestProvenanceMapsCoverAllRows(t *testing.T) {
	if len(Fig3Provenance()) != Fig3Expected().NumRows() {
		t.Error("Fig3Provenance incomplete")
	}
	if len(Fig8bProvenance()) != Fig8bExpected().NumRows() {
		t.Error("Fig8bProvenance incomplete")
	}
}

func TestLakeHelpers(t *testing.T) {
	if got := CovidLake(); len(got) != 2 || got[0].Name != "T2" || got[1].Name != "T3" {
		t.Errorf("CovidLake = %v", got)
	}
	if got := VaccineSet(); len(got) != 3 || got[2].Name != "T6" {
		t.Errorf("VaccineSet = %v", got)
	}
}

func TestFixturesAreFresh(t *testing.T) {
	// Each call returns an independent copy; mutating one must not leak.
	a := T1()
	a.Rows[0][0] = table.StringValue("MUTATED")
	if T1().Cell(0, 0).Str() == "MUTATED" {
		t.Error("fixtures must be freshly built per call")
	}
}
