// Package par holds the small parallel-execution helpers the lake
// preprocessing pipeline is built from. Every helper preserves determinism
// by construction: work item i always writes result slot i, so output order
// is independent of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) across up to GOMAXPROCS workers and returns when all
// calls have finished. fn must be safe to call concurrently; calls are
// distributed dynamically, so uneven item costs still balance. It is
// ForCtx under an uncancellable context (the nil done channel makes every
// cancellation poll a predictable branch).
func For(n int, fn func(i int)) {
	_ = ForCtx(context.Background(), n, fn)
}

// ForCtx is For with cooperative cancellation: workers stop claiming new
// work items once ctx is done, and ForCtx returns ctx.Err() (nil when every
// item ran). Items already started always run to completion and every
// worker goroutine has exited before ForCtx returns — cancellation can
// leave trailing items unprocessed, never a leaked goroutine. fn is
// responsible for its own intra-item cancellation checks when single items
// are long-running.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Do runs the given functions concurrently and returns when all have
// finished. On a single-CPU machine (GOMAXPROCS=1) concurrency cannot help
// independent CPU-bound work, so the functions run sequentially instead of
// paying goroutine and scheduling overhead; callers must not rely on the
// functions making progress concurrently.
func Do(fns ...func()) {
	if len(fns) <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
