// Package par holds the small parallel-execution helpers the lake
// preprocessing pipeline is built from. Every helper preserves determinism
// by construction: work item i always writes result slot i, so output order
// is independent of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) across up to GOMAXPROCS workers and returns when all
// calls have finished. fn must be safe to call concurrently; calls are
// distributed dynamically, so uneven item costs still balance.
func For(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions concurrently and returns when all have
// finished. On a single-CPU machine (GOMAXPROCS=1) concurrency cannot help
// independent CPU-bound work, so the functions run sequentially instead of
// paying goroutine and scheduling overhead; callers must not rely on the
// functions making progress concurrently.
func Do(fns ...func()) {
	if len(fns) <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
