package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/santos"
	"repro/internal/table"
)

// The codec: little-endian fixed-width integers for structure (lengths,
// checksums, bit patterns) and uvarints for counts and IDs. Decoding is
// sticky-error — after the first failure every read returns zeros and the
// error survives — so decode paths read straight through and check once.

// enc is an append-only encode buffer.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte)        { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)     { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec is a sticky-error decode cursor over a byte slice.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: decode: "+format, args...)
	}
}

// take returns the next n bytes, or nil after setting the sticky error.
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() byte {
	if p := d.take(1); p != nil {
		return p[0]
	}
	return 0
}

func (d *dec) u16() uint16 {
	if p := d.take(2); p != nil {
		return binary.LittleEndian.Uint16(p)
	}
	return 0
}

func (d *dec) u32() uint32 {
	if p := d.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (d *dec) u64() uint64 {
	if p := d.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) uvarint() uint64 {
	// One- to three-byte forms cover counts, kinds, token IDs and cell
	// indexes (the value dictionary holds tens of thousands of entries);
	// inlining them keeps the per-cell decode loops out of binary.Uvarint's
	// generic path.
	if b := d.b; d.err == nil && d.off < len(b) {
		if c := b[d.off]; c < 0x80 {
			d.off++
			return uint64(c)
		} else if d.off+1 < len(b) && b[d.off+1] < 0x80 {
			v := uint64(c&0x7f) | uint64(b[d.off+1])<<7
			d.off += 2
			return v
		} else if d.off+2 < len(b) && b[d.off+2] < 0x80 {
			v := uint64(c&0x7f) | uint64(b[d.off+1]&0x7f)<<7 | uint64(b[d.off+2])<<14
			d.off += 3
			return v
		}
	}
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint element count and sanity-bounds it against the
// remaining input (each element needs at least min bytes), so corrupt
// counts fail decoding instead of driving a huge allocation.
func (d *dec) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)-d.off)/uint64(min)+1 {
		d.fail("implausible count %d at offset %d (%d bytes left)", n, d.off, len(d.b)-d.off)
		return 0
	}
	return int(n)
}

// str decodes a string WITHOUT copying: the result aliases the decode
// buffer. Decode inputs are private, immutable images (file reads hand out
// fresh buffers, see FS.ReadFile), so aliasing is safe and turns the ~10^5
// per-string copies of a large snapshot into one retained image.
func (d *dec) str() string {
	n := d.count(1)
	if p := d.take(n); len(p) > 0 {
		return unsafe.String(&p[0], len(p))
	}
	return ""
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("persist: decode: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// --- Value codec -----------------------------------------------------------
//
// Cells round-trip exactly: kind plus the kind's own payload. This matters
// because the value dictionary Equal-collapses distinct spellings (Int 82
// and Float 82.0 share an ID, both null kinds share NullID) — an ID-based
// encoding would lose the spelling, and a restored lake would render and
// integrate tables differently from a fresh build over the same CSVs.

func (e *enc) value(v table.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case table.Null, table.PNull:
	case table.String:
		e.str(v.Str())
	case table.Int:
		e.varint(v.IntVal())
	case table.Float:
		e.f64(v.FloatVal())
	case table.Bool:
		if v.BoolVal() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
}

func (d *dec) value() table.Value {
	switch k := table.Kind(d.u8()); k {
	case table.Null:
		return table.NullValue()
	case table.PNull:
		return table.ProducedNull()
	case table.String:
		return table.StringValue(d.str())
	case table.Int:
		return table.IntValue(d.varint())
	case table.Float:
		return table.FloatValue(d.f64())
	case table.Bool:
		return table.BoolValue(d.u8() != 0)
	default:
		d.fail("unknown value kind %d", k)
		return table.Value{}
	}
}

// --- Table codec -----------------------------------------------------------
//
// A table batch (the snapshot catalog, or one WAL Add record) encodes a
// batch-local exact-value pool followed by rows as pool indexes: open-data
// tables repeat cells heavily, and unlike dictionary IDs the pool preserves
// exact spellings (it is keyed by kind and raw payload bits, so NaN — which
// cannot key a map — and 82 vs 82.0 all get distinct entries).
//
// When the batch travels next to a value-dictionary snapshot (the catalog
// section does; WAL records do not), pool entries whose exact spelling is a
// dictionary representative are encoded as references into that dictionary
// instead of re-encoded values — in practice nearly the whole pool — so the
// decoded dictionary doubles as the decoded pool. Callers without a
// dictionary pass nil and get the self-contained form.

// cellKey identifies an exact cell value in the pool map.
type cellKey struct {
	kind table.Kind
	s    string
	bits uint64
}

func keyOf(v table.Value) cellKey {
	k := cellKey{kind: v.Kind()}
	switch v.Kind() {
	case table.String:
		k.s = v.Str()
	case table.Int:
		k.bits = uint64(v.IntVal())
	case table.Float:
		k.bits = math.Float64bits(v.FloatVal())
	case table.Bool:
		if v.BoolVal() {
			k.bits = 1
		}
	}
	return k
}

func (e *enc) tables(ts []*table.Table, dictVals []table.Value) {
	// Cells encode as uvarint indexes into a combined value space: index i
	// below len(dictVals) is dictionary ID i+1's value verbatim; extras —
	// cells whose exact spelling is not a dictionary representative — are
	// numbered past the dictionary in first-seen order and carried in full
	// ahead of the table bodies. A snapshot's catalog therefore stores
	// almost no cell payloads (the lake dictionary interns every distinct
	// cell), and the decoder resolves cells straight off the already-decoded
	// dictionary section, materializing no per-catalog pool. A WAL record
	// passes nil dictVals and is self-contained: every cell is an extra.
	var dictIdx map[cellKey]uint64
	if dictVals != nil {
		dictIdx = make(map[cellKey]uint64, len(dictVals))
		for i, v := range dictVals {
			dictIdx[keyOf(v)] = uint64(i)
		}
	}
	nd := uint64(len(dictVals))
	var extras []table.Value
	extraIdx := make(map[cellKey]uint64)
	cellAt := func(v table.Value) uint64 {
		k := keyOf(v)
		if di, ok := dictIdx[k]; ok {
			return di
		}
		ei, ok := extraIdx[k]
		if !ok {
			ei = uint64(len(extras))
			extraIdx[k] = ei
			extras = append(extras, v)
		}
		return nd + ei
	}
	// Pre-pass to collect the extras: they must be written before any body
	// that references them.
	for _, t := range ts {
		for _, row := range t.Rows {
			for _, v := range row {
				cellAt(v)
			}
		}
	}
	e.uvarint(uint64(len(extras)))
	for _, v := range extras {
		e.value(v)
	}
	e.uvarint(uint64(len(ts)))
	for _, t := range ts {
		// Fixed-width byte-length prefix, patched once the body is encoded:
		// the decoder slices per-table extents up front and decodes the
		// bodies in parallel (the catalog is the largest snapshot section).
		lenAt := len(e.b)
		e.u64(0)
		e.str(t.Name)
		e.uvarint(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			e.str(c)
		}
		e.uvarint(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			if len(row) != len(t.Columns) {
				panic(fmt.Sprintf("persist: table %q: row width %d != %d columns", t.Name, len(row), len(t.Columns)))
			}
			for _, v := range row {
				e.uvarint(cellAt(v))
			}
		}
		binary.LittleEndian.PutUint64(e.b[lenAt:], uint64(len(e.b)-lenAt-8))
	}
}

func (d *dec) tables(dictVals []table.Value) []*table.Table {
	nex := d.count(1)
	var extras []table.Value
	if nex > 0 {
		extras = make([]table.Value, 0, nex)
	}
	for i := 0; i < nex && d.err == nil; i++ {
		extras = append(extras, d.value())
	}
	nt := d.count(2)
	// Slice out each table's framed body first, then decode the bodies in
	// parallel: tables only share the (read-only) dictionary and extras,
	// and the catalog is the bulk of a snapshot.
	bodies := make([][]byte, 0, nt)
	for i := 0; i < nt && d.err == nil; i++ {
		blen := d.u64()
		bodies = append(bodies, d.take(int(blen)))
	}
	if d.err != nil {
		return nil
	}
	out := make([]*table.Table, len(bodies))
	errs := make([]error, len(bodies))
	par.For(len(bodies), func(i int) {
		td := &dec{b: bodies[i]}
		out[i] = td.tableBody(dictVals, extras)
		if td.err == nil && td.off != len(td.b) {
			td.fail("table %d: %d trailing bytes", i, len(td.b)-td.off)
		}
		errs[i] = td.err
	})
	for _, err := range errs {
		if err != nil && d.err == nil {
			d.err = err
		}
	}
	return out
}

// tableBody decodes one framed table. Cell indexes resolve against the
// shared value dictionary first, then the catalog's extras (see
// enc.tables for the combined index space).
func (d *dec) tableBody(dict, extras []table.Value) *table.Table {
	t := &table.Table{Name: d.str()}
	ncols := d.count(1)
	t.Columns = make([]string, ncols)
	for c := range t.Columns {
		t.Columns[c] = d.str()
	}
	nrows := d.count(1)
	// Every cell costs at least one encoded byte, so an arena bigger than
	// the remaining input is a fabricated size, not a real table — the
	// same over-allocation bound count() enforces per dimension.
	if d.err == nil && uint64(nrows)*uint64(ncols) > uint64(len(d.b)-d.off) {
		d.fail("table %q: %d x %d cells overrun the remaining %d bytes", t.Name, nrows, ncols, len(d.b)-d.off)
	}
	if d.err != nil {
		return t
	}
	nd := uint64(len(dict))
	// One allocation for all rows instead of one per row: cell copying out
	// of the dictionary is the decode hot loop.
	arena := make([]table.Value, nrows*ncols)
	t.Rows = make([][]table.Value, 0, nrows)
	for r := 0; r < nrows && d.err == nil; r++ {
		row := arena[r*ncols : (r+1)*ncols : (r+1)*ncols]
		for c := range row {
			pi := d.uvarint()
			switch {
			case pi < nd:
				row[c] = dict[pi]
			case pi-nd < uint64(len(extras)):
				row[c] = extras[pi-nd]
			case d.err == nil:
				d.fail("table %q: cell index %d out of %d dictionary + %d extra values", t.Name, pi, nd, len(extras))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// --- KB codec --------------------------------------------------------------

func (e *enc) kbDump(k kb.Dump) {
	e.uvarint(uint64(len(k.Types)))
	for _, t := range k.Types {
		e.str(t.Type)
		e.str(t.Parent)
	}
	e.uvarint(uint64(len(k.Entities)))
	for _, en := range k.Entities {
		e.str(en.Entity)
		e.uvarint(uint64(len(en.Types)))
		for _, t := range en.Types {
			e.str(t)
		}
	}
	e.uvarint(uint64(len(k.Aliases)))
	for _, a := range k.Aliases {
		e.str(a.Alias)
		e.str(a.Canonical)
	}
	e.uvarint(uint64(len(k.Relations)))
	for _, r := range k.Relations {
		e.str(r.Subject)
		e.str(r.Object)
		e.uvarint(uint64(len(r.Labels)))
		for _, l := range r.Labels {
			e.str(l)
		}
	}
}

func (d *dec) kbDump() kb.Dump {
	var k kb.Dump
	for i, n := 0, d.count(2); i < n && d.err == nil; i++ {
		k.Types = append(k.Types, kb.TypeDecl{Type: d.str(), Parent: d.str()})
	}
	for i, n := 0, d.count(2); i < n && d.err == nil; i++ {
		en := kb.EntityDecl{Entity: d.str()}
		for j, m := 0, d.count(1); j < m && d.err == nil; j++ {
			en.Types = append(en.Types, d.str())
		}
		k.Entities = append(k.Entities, en)
	}
	for i, n := 0, d.count(2); i < n && d.err == nil; i++ {
		k.Aliases = append(k.Aliases, kb.AliasDecl{Alias: d.str(), Canonical: d.str()})
	}
	for i, n := 0, d.count(3); i < n && d.err == nil; i++ {
		r := kb.RelationDecl{Subject: d.str(), Object: d.str()}
		for j, m := 0, d.count(1); j < m && d.err == nil; j++ {
			r.Labels = append(r.Labels, d.str())
		}
		k.Relations = append(k.Relations, r)
	}
	return k
}

// --- Domain and SANTOS codecs ----------------------------------------------

func (e *enc) domains(ds []lake.DomainState) {
	e.uvarint(uint64(len(ds)))
	for i := range ds {
		d := &ds[i]
		e.str(d.Table)
		e.uvarint(uint64(d.Column))
		e.str(d.ColumnName)
		e.uvarint(uint64(len(d.TokenIDs)))
		for _, id := range d.TokenIDs {
			e.uvarint(uint64(id))
		}
		e.uvarint(uint64(len(d.Signature)))
		for _, w := range d.Signature {
			e.u64(w)
		}
	}
}

func (d *dec) domains() []lake.DomainState {
	n := d.count(4)
	out := make([]lake.DomainState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ds := lake.DomainState{Table: d.str(), Column: int(d.uvarint()), ColumnName: d.str()}
		nids := d.count(1)
		ds.TokenIDs = make([]uint32, nids)
		for j := range ds.TokenIDs {
			ds.TokenIDs[j] = uint32(d.uvarint())
		}
		nsig := d.count(8)
		ds.Signature = make([]uint64, nsig)
		for j := range ds.Signature {
			ds.Signature[j] = d.u64()
		}
		out = append(out, ds)
	}
	return out
}

func (e *enc) santosStates(ss []santos.TableState) {
	e.uvarint(uint64(len(ss)))
	for i := range ss {
		s := &ss[i]
		e.str(s.Table)
		e.uvarint(uint64(len(s.Cols)))
		for _, c := range s.Cols {
			e.uvarint(uint64(c.Col))
			e.str(c.Type)
			e.f64(c.Confidence)
			e.u32(c.TypeID)
			e.uvarint(uint64(len(c.Edges)))
			for _, edge := range c.Edges {
				e.u64(edge)
			}
		}
	}
}

func (d *dec) santosStates() []santos.TableState {
	n := d.count(2)
	out := make([]santos.TableState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		s := santos.TableState{Table: d.str()}
		ncols := d.count(1)
		for j := 0; j < ncols && d.err == nil; j++ {
			c := santos.ColumnState{Col: int(d.uvarint()), Type: d.str(), Confidence: d.f64(), TypeID: d.u32()}
			nedges := d.count(8)
			c.Edges = make([]uint64, nedges)
			for k := range c.Edges {
				c.Edges[k] = d.u64()
			}
			s.Cols = append(s.Cols, c)
		}
		out = append(out, s)
	}
	return out
}
