package persist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/sketch"
	"repro/internal/table"
)

// The crash matrix: one deterministic schedule of durable mutations and
// snapshots is first run crash-free to count every mutating filesystem
// operation it performs (writes, fsyncs, renames, removes, directory
// syncs), then re-run once per operation with a power failure injected at
// exactly that point — under three writeback models (keep = 0: nothing
// unsynced survives; 0.5: torn tails; 1: everything in flight lands).
// After each crash the directory is power-cycled and reopened, and the
// recovered lake must be byte-identical in discovery behavior to a fresh
// lake.New over the tables of some acknowledged-consistent prefix of the
// schedule:
//
//   - at least every acknowledged mutation survived (the WAL-before-ack
//     durability contract), and
//   - at most the one in-flight mutation beyond them was added (its log
//     record may have reached the disk before the failure).
//
// The recovered sequence number identifies the prefix exactly, so the
// comparison is against one specific expected state, not a disjunction.

// crashStep is one schedule entry: an add batch or a remove batch,
// optionally followed by an explicit snapshot (exercising snapshot
// writing, generation retirement and WAL pruning inside the matrix).
type crashStep struct {
	add    []*table.Table
	remove []string
	snap   bool
}

// crashSchedule builds the fixed pool, initial lake membership and
// mutation steps of the matrix. The step mix is chosen so the write path
// under test covers: plain WAL appends, a snapshot folding a non-empty log
// (retiring nothing), a second snapshot retiring generation 0, re-adding a
// previously removed table, and trailing unfolded records.
func crashSchedule() (pool []*table.Table, initial int, steps []crashStep) {
	rng := rand.New(rand.NewSource(77))
	pool = make([]*table.Table, 8)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("c%02d", i))
	}
	steps = []crashStep{
		{add: []*table.Table{pool[3], pool[4]}},
		{remove: []string{pool[1].Name}},
		{add: []*table.Table{pool[5]}, snap: true},
		{remove: []string{pool[3].Name}},
		{add: []*table.Table{pool[6]}, snap: true},
		{add: []*table.Table{pool[1]}},
		{remove: []string{pool[0].Name}},
	}
	return pool, 3, steps
}

// crashStates returns the expected surviving table set after each prefix
// of the schedule: states[k] is the membership once k mutations applied.
func crashStates(pool []*table.Table, initial int, steps []crashStep) [][]*table.Table {
	current := append([]*table.Table(nil), pool[:initial]...)
	states := [][]*table.Table{append([]*table.Table(nil), current...)}
	for _, s := range steps {
		if len(s.add) > 0 {
			current = append(current, s.add...)
		}
		for _, name := range s.remove {
			for i, t := range current {
				if t.Name == name {
					current = append(append([]*table.Table(nil), current[:i]...), current[i+1:]...)
					break
				}
			}
		}
		states = append(states, append([]*table.Table(nil), current...))
	}
	return states
}

// runCrashSchedule drives the schedule against fsys until the first
// failure (the injected crash) or completion. It reports how many
// mutations were acknowledged (-1 when Create itself failed) and how many
// were issued — acknowledged plus the in-flight one the crash interrupted.
func runCrashSchedule(fsys FS, pool []*table.Table, initial int, steps []crashStep, lopts lake.Options) (acked, issued int) {
	l, err := lake.New(pool[:initial], lopts)
	if err != nil {
		panic(err) // in-memory build, no injected faults
	}
	s, err := Create(testDir, l, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		return -1, 0
	}
	for _, step := range steps {
		issued++
		if len(step.add) > 0 {
			err = s.Add(step.add...)
		} else {
			err = s.Remove(step.remove...)
		}
		if err != nil {
			return acked, issued
		}
		acked++
		if step.snap {
			if err := s.Snapshot(); err != nil {
				return acked, issued
			}
		}
	}
	s.Close()
	return acked, issued
}

// TestCrashMatrix is the fault-injection matrix described above, run once
// per sketch engine: the 1.1 engine record rides in every snapshot the
// matrix writes, so both engines' sketches cross crash/recovery under every
// injected fault.
func TestCrashMatrix(t *testing.T) {
	for _, eng := range []sketch.Engine{sketch.MinHash, sketch.KMV} {
		t.Run(string(eng), func(t *testing.T) {
			lopts := lake.Options{Knowledge: difftest.DiffKB()}
			lopts.LSH.Engine = eng
			runCrashMatrix(t, lopts)
		})
	}
}

func runCrashMatrix(t *testing.T, lopts lake.Options) {
	pool, initial, steps := crashSchedule()
	states := crashStates(pool, initial, steps)
	queries := []*table.Table{pool[0], pool[4], pool[7]}

	// Golden run: no crash; counts the mutating filesystem operations.
	golden := NewMemFS()
	if acked, _ := runCrashSchedule(golden, pool, initial, steps, lopts); acked != len(steps) {
		t.Fatalf("golden run acknowledged %d/%d mutations", acked, len(steps))
	}
	totalOps := golden.Ops()
	if totalOps < 20 {
		t.Fatalf("golden run used only %d mutating ops; schedule too small for a meaningful matrix", totalOps)
	}
	t.Logf("crash matrix: %d crash points x 3 writeback models", totalOps)

	keeps := []float64{0, 0.5, 1}
	stride := 1
	if testing.Short() {
		keeps = []float64{0, 1}
		stride = 3
	}
	for _, keep := range keeps {
		for crashOp := 0; crashOp < totalOps; crashOp += stride {
			ctx := fmt.Sprintf("crash at op %d/%d keep %.1f", crashOp, totalOps, keep)
			fsys := NewMemFS()
			fsys.SetCrash(crashOp, keep)
			acked, issued := runCrashSchedule(fsys, pool, initial, steps, lopts)
			if !fsys.Crashed() {
				t.Fatalf("%s: schedule finished without hitting the crash point", ctx)
			}
			fsys.PowerCycle()
			s, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
			if err != nil {
				// The only legitimate unrecoverable window is a crash before
				// Create finished its initial snapshot + log: nothing was
				// acknowledged yet, so there is nothing to recover.
				if acked >= 0 {
					t.Fatalf("%s: Open failed after %d acknowledged mutations: %v", ctx, acked, err)
				}
				continue
			}
			k := int(s.Status().Seq)
			if k < max(acked, 0) || k > issued {
				t.Fatalf("%s: recovered to %d mutations, want between %d acknowledged and %d issued", ctx, k, acked, issued)
			}
			expectLake(t, ctx, s.Lake(), states[k], lopts, queries)
			// The recovered store must accept further durable mutations: add
			// a probe table, reopen once more, and find it.
			if err := s.Add(pool[7]); err != nil {
				t.Fatalf("%s: post-recovery Add: %v", ctx, err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("%s: post-recovery Close: %v", ctx, err)
			}
			s2, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
			if err != nil {
				t.Fatalf("%s: reopen after recovery: %v", ctx, err)
			}
			if _, ok := s2.Lake().Get(pool[7].Name); !ok {
				t.Fatalf("%s: post-recovery mutation lost on reopen", ctx)
			}
			if got := int(s2.Status().Seq); got != k+1 {
				t.Fatalf("%s: sequence after probe = %d, want %d", ctx, got, k+1)
			}
		}
	}
}
