package persist

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// diskFullFS wraps an FS and, while armed, fails every file write and sync
// with errDiskFull — the disk-full / I/O-error injection for the degraded
// read-only mode. Reads, directory listings and (for simplicity) creates
// pass through; it is the Write/Sync failure that must trip the degrade.
type diskFullFS struct {
	FS
	full atomic.Bool
}

var errDiskFull = errors.New("injected: no space left on device")

func (d *diskFullFS) Create(name string) (File, error) { return d.wrap(d.FS.Create(name)) }
func (d *diskFullFS) Append(name string) (File, error) { return d.wrap(d.FS.Append(name)) }

func (d *diskFullFS) wrap(f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &diskFullFile{File: f, fs: d}, nil
}

type diskFullFile struct {
	File
	fs *diskFullFS
}

func (f *diskFullFile) Write(p []byte) (int, error) {
	if f.fs.full.Load() {
		return 0, errDiskFull
	}
	return f.File.Write(p)
}

func (f *diskFullFile) Sync() error {
	if f.fs.full.Load() {
		return errDiskFull
	}
	return f.File.Sync()
}

// TestWriteFailureDegradesToReadOnly pins the degraded mode: the first WAL
// write failure flips the store read-only; the failed mutation took no
// effect, later mutations are refused fast with ErrReadOnly, queries stay
// served, and the mode is sticky even after the disk recovers.
func TestWriteFailureDegradesToReadOnly(t *testing.T) {
	pool, lopts := newStorePool(77, 6)
	fsys := &diskFullFS{FS: NewMemFS()}
	st := mustCreate(t, fsys, pool[:4], lopts, Options{SnapshotEvery: -1})

	if got := st.Status(); got.ReadOnly {
		t.Fatalf("fresh store already read-only: %+v", got)
	}
	fsys.full.Store(true)
	err := st.Add(pool[4])
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Add under full disk = %v, want ErrReadOnly", err)
	}
	if !strings.Contains(err.Error(), "no space left") {
		t.Errorf("degrade error hides the cause: %v", err)
	}
	if _, ok := st.Lake().Get(pool[4].Name); ok {
		t.Error("failed add still applied in memory")
	}

	// Sticky: the disk recovering does not clear the mode (the WAL tail is
	// in an unknown state; only a restart re-truncates it).
	fsys.full.Store(false)
	if err := st.Remove(pool[0].Name); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Remove after degrade = %v, want ErrReadOnly", err)
	}
	if err := st.Snapshot(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Snapshot after degrade = %v, want ErrReadOnly", err)
	}
	status := st.Status()
	if !status.ReadOnly || !strings.Contains(status.ReadOnlyReason, "wal") {
		t.Fatalf("status after degrade = %+v", status)
	}
	if st.ReadOnly() == nil {
		t.Fatal("ReadOnly() = nil after degrade")
	}

	// Queries keep answering from the pre-failure state.
	if st.Lake().Size() != 4 {
		t.Fatalf("lake size after degrade = %d, want 4", st.Lake().Size())
	}
	st.Close()

	// A restart recovers cleanly: everything acknowledged before the
	// failure is durable, the failed mutation is gone, and the reopened
	// store accepts writes again.
	st2, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open after degraded shutdown: %v", err)
	}
	defer st2.Close()
	if st2.Status().ReadOnly {
		t.Fatal("reopened store inherited read-only mode")
	}
	if st2.Lake().Size() != 4 {
		t.Fatalf("recovered size = %d, want 4", st2.Lake().Size())
	}
	if err := st2.Add(pool[5]); err != nil {
		t.Fatalf("Add after recovery: %v", err)
	}
}

// TestSnapshotWriteFailureDegrades pins the snapshot write path: a failed
// explicit Snapshot degrades the store, but the mutations acknowledged
// before it stay durable and recoverable.
func TestSnapshotWriteFailureDegrades(t *testing.T) {
	pool, lopts := newStorePool(78, 6)
	fsys := &diskFullFS{FS: NewMemFS()}
	st := mustCreate(t, fsys, pool[:4], lopts, Options{SnapshotEvery: -1})
	if err := st.Add(pool[4]); err != nil {
		t.Fatal(err)
	}
	fsys.full.Store(true)
	if err := st.Snapshot(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Snapshot under full disk = %v, want ErrReadOnly", err)
	}
	if got := st.Status(); !got.ReadOnly || !strings.Contains(got.ReadOnlyReason, "snapshot") {
		t.Fatalf("status = %+v", got)
	}
	fsys.full.Store(false)
	st.Close()
	st2, err := Open(testDir, Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open after degraded snapshot: %v", err)
	}
	defer st2.Close()
	if _, ok := st2.Lake().Get(pool[4].Name); !ok {
		t.Fatal("acknowledged add lost after degraded snapshot")
	}
}
