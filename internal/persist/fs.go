// Package persist makes a lake durable: a versioned, section-checksummed
// binary snapshot of everything preprocessing computed, plus a write-ahead
// log of Add/Remove batches that is fsynced before the in-memory mutation
// is acknowledged. Recovery loads the newest readable snapshot and replays
// the log over it, truncating at the first torn or corrupt record, so a
// crash at any instant loses at most the mutation that was never
// acknowledged.
//
// Every byte that reaches disk goes through the FS interface below. The
// production implementation is a thin veneer over the os package; the
// fault-injection implementation (MemFS) simulates power loss at every
// write/fsync/rename point and byte corruption in place, which is what the
// crash-matrix suite drives.
package persist

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle. Write buffers in the OS like an ordinary
// file; nothing is durable until Sync returns.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem slice the store needs. Durability semantics mirror
// POSIX: file writes are volatile until the file is synced, and directory
// entries (created, renamed or removed names) are volatile until the
// directory is synced. Rename is atomic: after a crash the name refers to
// either the old or the new file, never a mix.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when missing.
	Append(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir (and parents) if missing.
	MkdirAll(dir string) error
	// SyncDir makes dir's current entries durable.
	SyncDir(dir string) error
}

// OSFS is the production FS: the real filesystem.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
