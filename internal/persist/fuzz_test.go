package persist

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/table"
)

// The fuzz targets attack the two parsers that consume bytes straight off
// disk after a crash: whatever the input, they must fail with a typed
// error (ErrCorrupt or VersionError) — never panic, never over-allocate on
// a fabricated count, never accept garbage. CI runs both in its fuzz
// smoke; longer local runs grow the corpus.

// fuzzWALImage renders a small valid WAL (header plus an add and a remove
// record) as seed material.
func fuzzWALImage() []byte {
	rng := rand.New(rand.NewSource(5))
	img := walHeader()
	img = append(img, encodeAddRecord(1, []*table.Table{difftest.DiffTable(rng, "w0"), difftest.DiffTable(rng, "w1")})...)
	img = append(img, encodeRemoveRecord(2, []string{"w0"})...)
	return img
}

// FuzzWALDecode pins decodeWAL's contract on arbitrary bytes: no panics,
// validLen always a parseable prefix (re-decoding it reproduces the same
// records), sequence numbers strictly monotonic, and the only error ever
// surfaced a version refusal.
func FuzzWALDecode(f *testing.F) {
	img := fuzzWALImage()
	f.Add([]byte{})
	f.Add(walHeader())
	f.Add(img)
	f.Add(img[:len(img)-3])          // torn tail
	f.Add(append(img, img[16:]...))  // duplicated records: seq regression
	f.Add([]byte(walMagic + "tail")) // magic without a full header
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, validLen, err := decodeWAL(b)
		if err != nil {
			var ve *VersionError
			if !errors.As(err, &ve) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if validLen < 0 || validLen > len(b) {
			t.Fatalf("validLen %d out of range for %d input bytes", validLen, len(b))
		}
		if validLen > 0 && validLen < walHeaderLen {
			t.Fatalf("validLen %d shorter than the header", validLen)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].seq <= recs[i-1].seq {
				t.Fatalf("sequence regression %d -> %d accepted", recs[i-1].seq, recs[i].seq)
			}
		}
		// The valid prefix must be stable: decoding it again yields the same
		// records and consumes all of it. This is what recovery relies on
		// when it truncates the log at validLen.
		recs2, validLen2, err2 := decodeWAL(b[:validLen])
		if err2 != nil || validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("prefix not stable: %d recs/%d bytes re-decoded to %d recs/%d bytes (err %v)",
				len(recs), validLen, len(recs2), validLen2, err2)
		}
	})
}

// FuzzSnapshotHeader pins decodeSnapshot on arbitrary bytes: every failure
// is a typed refusal, and anything that passes all checksums must survive
// lake.Restore's own validation or fail it cleanly — not panic.
func FuzzSnapshotHeader(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	l, err := lake.New([]*table.Table{difftest.DiffTable(rng, "s0"), difftest.DiffTable(rng, "s1")},
		lake.Options{Knowledge: difftest.DiffKB()})
	if err != nil {
		f.Fatal(err)
	}
	st, err := l.Export()
	if err != nil {
		f.Fatal(err)
	}
	img := encodeSnapshot(st, 3)
	f.Add([]byte{})
	f.Add(img)
	f.Add(img[:snapHeaderLen])
	f.Add(img[:len(img)-5])
	f.Add([]byte(snapMagic + "short"))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, _, err := decodeSnapshot("fuzz", b)
		if err != nil {
			var ve *VersionError
			if !errors.Is(err, ErrCorrupt) && !errors.As(err, &ve) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if _, err := lake.Restore(st); err != nil {
			// A checksum-valid snapshot that fails restore validation is
			// acceptable for the fuzzer (it fabricated the checksums too);
			// panics and hangs are what this target exists to rule out.
			t.Logf("restore rejected decoded state: %v", err)
		}
	})
}
