package persist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every MemFS operation at and after the injected
// power-failure point: the process under test is "dead" and must abort.
var ErrCrashed = errors.New("persist: simulated power failure")

// MemFS is the fault-injection FS: an in-memory filesystem that tracks,
// for every file, which prefix of its content is durable (synced) and
// which directory entries are durable (dir-synced). SetCrash schedules a
// power failure at the Nth mutating operation; once it fires, every
// operation fails with ErrCrashed until PowerCycle applies the volatile
// loss — unsynced tails dropped (except a configurable kept fraction,
// modeling background writeback racing the failure), unsynced
// creates/renames/removes reverted — and "reboots" the filesystem for the
// recovery run.
//
// The namespace is flat: paths are opaque names living in one directory,
// which is all the store uses. MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memInode // current (volatile) directory view
	durable map[string]*memInode // dir-synced directory view
	ops     int
	crashOp int     // mutating-op index the failure fires at; -1 = never
	keep    float64 // fraction of each unsynced tail that survives the crash
	crashed bool
}

// memInode is one file's content. data is the current content; the first
// syncedLen bytes of it are durable.
type memInode struct {
	data      []byte
	syncedLen int
}

// NewMemFS returns an empty in-memory filesystem with no crash scheduled.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*memInode),
		durable: make(map[string]*memInode),
		crashOp: -1,
	}
}

// SetCrash schedules a power failure at mutating operation index op
// (0-based, counted from now across Create/Append/Write/Sync/Rename/
// Remove/SyncDir calls): that operation and every one after it fail with
// ErrCrashed. keep is the fraction (0..1) of each file's unsynced tail
// that PowerCycle will declare durable anyway — 0 models a strict
// nothing-unsynced-survives failure, intermediate values model torn tails.
func (m *MemFS) SetCrash(op int, keep float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashOp = op
	m.keep = keep
}

// Ops reports how many mutating operations have run since the last
// SetCrash (or since creation). A golden run with no crash scheduled uses
// it to size the crash matrix.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the scheduled power failure has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// PowerCycle applies the volatile loss of the crash and reboots: every
// file keeps its durable prefix plus the kept fraction of its unsynced
// tail, the directory reverts to its dir-synced entries, and operations
// succeed again (no crash scheduled until the next SetCrash). It may also
// be called without a crash to simulate a clean-shutdown-free reboot.
func (m *MemFS) PowerCycle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[*memInode]bool)
	m.files = make(map[string]*memInode, len(m.durable))
	for name, ino := range m.durable {
		if !seen[ino] {
			seen[ino] = true
			keep := ino.syncedLen + int(m.keep*float64(len(ino.data)-ino.syncedLen))
			ino.data = ino.data[:keep]
			ino.syncedLen = keep
		}
		m.files[name] = ino
	}
	m.crashed = false
	m.crashOp = -1
}

// Corrupt XORs the byte at off of name's current content with xor (xor=0
// flips nothing; pass e.g. 0xff to damage it) and reports whether the
// offset existed. It is the corruption-pass hook: checksums must catch
// whatever it does.
func (m *MemFS) Corrupt(name string, off int, xor byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[name]
	if !ok || off < 0 || off >= len(ino.data) {
		return false
	}
	ino.data[off] ^= xor
	return true
}

// Len reports the current content length of name (0 when absent).
func (m *MemFS) Len(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ino, ok := m.files[name]; ok {
		return len(ino.data)
	}
	return 0
}

// step gates one mutating operation, firing the scheduled crash.
// m.mu must be held.
func (m *MemFS) step() error {
	if m.crashed {
		return ErrCrashed
	}
	if m.crashOp >= 0 && m.ops >= m.crashOp {
		m.crashed = true
		return ErrCrashed
	}
	m.ops++
	return nil
}

// memFile is a writable handle onto a MemFS inode.
type memFile struct {
	fs  *MemFS
	ino *memInode
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.step(); err != nil {
		return 0, err
	}
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.step(); err != nil {
		return err
	}
	f.ino.syncedLen = len(f.ino.data)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	ino := &memInode{}
	m.files[name] = ino
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	ino, ok := m.files[name]
	if !ok {
		ino = &memInode{}
		m.files[name] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	ino, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: file does not exist", name)
	}
	return append([]byte(nil), ino.data...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	ino, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: file does not exist", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = ino
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	return nil
}

// ReadDir lists the files under dir, returned as base names (matching
// OSFS): a stored name "lake/wal" is listed by ReadDir("lake") as "wal".
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	m.durable = make(map[string]*memInode, len(m.files))
	for name, ino := range m.files {
		m.durable[name] = ino
	}
	return nil
}
