package persist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
)

// roundTrip pushes a lake through the full snapshot codec — Export,
// encodeSnapshot, decodeSnapshot, lake.Restore — and returns the recovered
// lake.
func roundTrip(t *testing.T, l *lake.Lake) *lake.Lake {
	t.Helper()
	st, err := l.Export()
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	img := encodeSnapshot(st, 7)
	st2, seq, err := decodeSnapshot("snap", img)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if seq != 7 {
		t.Fatalf("decoded seq = %d, want 7", seq)
	}
	r, err := lake.Restore(st2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return r
}

// TestSnapshotRoundTripPaperData snapshots a lake over every paper dataset
// (the running-example tables T1-T6, the COVID-19 lake, the vaccine
// integration set) plus the differential pool, restores it, and requires
// byte-identical discovery behavior — per-method rankings, integration
// sets and raw index answers — against the original lake.
func TestSnapshotRoundTripPaperData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	diffPool := make([]*table.Table, 12)
	for i := range diffPool {
		diffPool[i] = difftest.DiffTable(rng, fmt.Sprintf("p%02d", i))
	}
	cases := []struct {
		name   string
		tables []*table.Table
		opts   lake.Options
	}{
		{"paper-tables", []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3(), paperdata.T4(), paperdata.T5(), paperdata.T6()}, lake.Options{Knowledge: kb.Demo()}},
		{"covid", paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()}},
		{"covid-synth-kb", paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo(), SynthesizeKB: true}},
		{"vaccine", paperdata.VaccineSet(), lake.Options{Knowledge: kb.Demo()}},
		{"differential-pool", diffPool, lake.Options{Knowledge: difftest.DiffKB()}},
		{"no-kb", diffPool[:6], lake.Options{}},
		{"empty", nil, lake.Options{Knowledge: difftest.DiffKB()}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l, err := lake.New(tc.tables, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			r := roundTrip(t, l)
			// Query with the lake's own tables (cached-domain fast paths) and
			// one foreign table (per-query extraction + annotation).
			queries := tc.tables
			if len(queries) > 4 {
				queries = queries[:4]
			}
			queries = append(append([]*table.Table(nil), queries...), difftest.DiffTable(rng, "foreign"))
			if got, want := difftest.LakeSig(r, queries), difftest.LakeSig(l, queries); got != want {
				t.Fatalf("restored lake diverged from original\n got:\n%s\nwant:\n%s", got, want)
			}
			if got, want := r.Size(), l.Size(); got != want {
				t.Fatalf("restored size = %d, want %d", got, want)
			}
		})
	}
}

// TestRestoredLakeStaysMutable pins that a restored lake is not a frozen
// replica: Add/Remove after restore behave identically to the same
// mutations on the original lake.
func TestRestoredLakeStaysMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pool := make([]*table.Table, 8)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("m%02d", i))
	}
	opts := lake.Options{Knowledge: difftest.DiffKB()}
	l, err := lake.New(pool[:5], opts)
	if err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l)
	for _, target := range []*lake.Lake{l, r} {
		if err := target.Add(pool[5], pool[6]); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := target.Remove(pool[1].Name); err != nil {
			t.Fatalf("Remove: %v", err)
		}
	}
	queries := []*table.Table{pool[0], pool[6], pool[7]}
	if got, want := difftest.LakeSig(r, queries), difftest.LakeSig(l, queries); got != want {
		t.Fatalf("mutated restored lake diverged from mutated original\n got:\n%s\nwant:\n%s", got, want)
	}
}
