package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/sketch"
	"repro/internal/table"
)

// These tests pin the 1.1 sketch-engine evolution of the snapshot format:
// the domains section opens with an (engine, size, seed) record, 1.0 files
// legacy-decode as MinHash, minors newer than this build are refused, and
// engine-record inconsistencies are refusals — intact-checksum errors that
// must NOT be tagged ErrCorrupt, so recovery never "fixes" them by falling
// back to an older snapshot generation.

// engineTestImage builds a small lake under the given engine and returns
// its encoded snapshot plus the source lake.
func engineTestImage(t *testing.T, eng sketch.Engine) ([]byte, *lake.Lake) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	pool := make([]*table.Table, 6)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("e%02d", i))
	}
	opts := lake.Options{Knowledge: difftest.DiffKB()}
	opts.LSH.Engine = eng
	l, err := lake.New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := l.Export()
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	return encodeSnapshot(st, 3), l
}

// patchHeader mutates the snapshot header in place (first 28 bytes) and
// re-seals its checksum.
func patchHeader(img []byte, mutate func(h []byte)) {
	mutate(img[:snapHeaderLen-4])
	crc := crc32.Checksum(img[:snapHeaderLen-4], castagnoli)
	for i := 0; i < 4; i++ {
		img[snapHeaderLen-4+i] = byte(crc >> (8 * i))
	}
}

// rewriteSection rebuilds the image with section id's payload replaced by
// rewrite(old payload), re-framing lengths and checksums.
func rewriteSection(t *testing.T, img []byte, id uint32, rewrite func([]byte) []byte) []byte {
	t.Helper()
	out := append([]byte(nil), img[:snapHeaderLen]...)
	rest := img[snapHeaderLen:]
	found := false
	for len(rest) > 0 {
		sd := &dec{b: rest}
		sid := sd.u32()
		plen := sd.u64()
		payload := rest[12 : 12+plen]
		if sid == id {
			payload = rewrite(append([]byte(nil), payload...))
			found = true
		}
		var e enc
		e.u32(sid)
		e.u64(uint64(len(payload)))
		e.b = append(e.b, payload...)
		e.u32(crc32.Checksum(e.b, castagnoli))
		out = append(out, e.b...)
		rest = rest[12+plen+4:]
	}
	if !found {
		t.Fatalf("section id %d not found in image", id)
	}
	return out
}

// engineRecord splits a 1.1 domains payload into its engine record fields
// and the remainder of the payload.
func engineRecord(t *testing.T, payload []byte) (eng string, size uint64, seed int64, rest []byte) {
	t.Helper()
	d := &dec{b: payload}
	eng = d.str()
	size = d.uvarint()
	seed = d.varint()
	if err := d.err; err != nil {
		t.Fatalf("domains payload prefix: %v", err)
	}
	return eng, size, seed, payload[d.off:]
}

func TestSnapshotRoundTripKMVEngine(t *testing.T) {
	img, l := engineTestImage(t, sketch.KMV)
	st, _, err := decodeSnapshot("snap", img)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if st.LSH.Engine != sketch.KMV {
		t.Fatalf("decoded engine %q, want kmv", st.LSH.Engine)
	}
	r, err := lake.Restore(st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.SketchEngine() != sketch.KMV {
		t.Fatalf("restored engine %q, want kmv", r.SketchEngine())
	}
	queries := l.Tables()[:3]
	if got, want := difftest.LakeSig(r, queries), difftest.LakeSig(l, queries); got != want {
		t.Fatalf("restored KMV lake diverged from original\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotNewerMinorRefused: a minor version beyond this build's is a
// VersionError refusal — additive evolution is never guessed at backward.
func TestSnapshotNewerMinorRefused(t *testing.T) {
	img, _ := engineTestImage(t, sketch.MinHash)
	patchHeader(img, func(h []byte) {
		h[10] = FormatMinor + 1
		h[11] = 0
	})
	_, _, err := decodeSnapshot("snap", img)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("decode = %v, want VersionError", err)
	}
	if ve.Major != FormatMajor || ve.Minor != FormatMinor+1 {
		t.Fatalf("VersionError = %+v", ve)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version refusal must not be tagged ErrCorrupt")
	}
}

// TestSnapshotLegacyMinorZero: a 1.0 file — no engine record in the domains
// section — decodes as the MinHash engine and restores normally.
func TestSnapshotLegacyMinorZero(t *testing.T) {
	img, l := engineTestImage(t, sketch.MinHash)
	legacy := rewriteSection(t, img, secDomains, func(payload []byte) []byte {
		_, _, _, rest := engineRecord(t, payload)
		return rest
	})
	patchHeader(legacy, func(h []byte) { h[10], h[11] = 0, 0 })
	st, _, err := decodeSnapshot("snap", legacy)
	if err != nil {
		t.Fatalf("decode 1.0 image: %v", err)
	}
	if st.LSH.Engine != sketch.MinHash {
		t.Fatalf("legacy engine %q, want minhash", st.LSH.Engine)
	}
	r, err := lake.Restore(st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	queries := l.Tables()[:3]
	if got, want := difftest.LakeSig(r, queries), difftest.LakeSig(l, queries); got != want {
		t.Fatalf("legacy-decoded lake diverged from original\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotUnknownEngineRefused: an engine name this build does not
// implement is a refusal distinct from corruption — checksums are intact, so
// generation fallback must not engage.
func TestSnapshotUnknownEngineRefused(t *testing.T) {
	img, _ := engineTestImage(t, sketch.KMV)
	bad := rewriteSection(t, img, secDomains, func(payload []byte) []byte {
		_, size, seed, rest := engineRecord(t, payload)
		var e enc
		e.str("hll")
		e.uvarint(size)
		e.varint(seed)
		return append(e.b, rest...)
	})
	_, _, err := decodeSnapshot("snap", bad)
	if err == nil {
		t.Fatal("unknown engine must be refused")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown-engine refusal tagged ErrCorrupt: %v", err)
	}
	var ve *VersionError
	if errors.As(err, &ve) {
		t.Fatalf("unknown-engine refusal reported as VersionError: %v", err)
	}
}

// TestSnapshotEngineParamMismatchRefused: the domains-section size/seed must
// agree with the meta section; disagreement is a refusal, not a corruption.
func TestSnapshotEngineParamMismatchRefused(t *testing.T) {
	img, _ := engineTestImage(t, sketch.MinHash)
	bad := rewriteSection(t, img, secDomains, func(payload []byte) []byte {
		eng, size, seed, rest := engineRecord(t, payload)
		var e enc
		e.str(eng)
		e.uvarint(size + 1)
		e.varint(seed)
		return append(e.b, rest...)
	})
	_, _, err := decodeSnapshot("snap", bad)
	if err == nil {
		t.Fatal("size mismatch between sections must be refused")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("param-mismatch refusal tagged ErrCorrupt: %v", err)
	}
}

// TestStoreKMVEndToEnd drives a durable KMV lake through mutations, a
// snapshot and a reopen: the recovered lake must stay on the KMV engine and
// answer discovery byte-identically to a fresh KMV build over the surviving
// tables.
func TestStoreKMVEndToEnd(t *testing.T) {
	pool, lopts := newStorePool(67, 8)
	lopts.LSH.Engine = sketch.KMV
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:5], lopts, Options{SnapshotEvery: -1})
	if err := s.Add(pool[5], pool[6]); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Remove(pool[1].Name); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if got := r.Lake().SketchEngine(); got != sketch.KMV {
		t.Fatalf("reopened engine %q, want kmv", got)
	}
	surviving := []*table.Table{pool[0], pool[2], pool[3], pool[4], pool[5], pool[6]}
	expectLake(t, "kmv reopen", r.Lake(), surviving, lopts, []*table.Table{pool[0], pool[6], pool[7]})
}
