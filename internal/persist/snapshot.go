package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"repro/internal/lake"
	"repro/internal/par"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Snapshot file format (all integers little-endian; see PERSISTENCE.md):
//
//	header (32 bytes):
//	  [ 0: 8) magic "DLSNAP\x00\x01"
//	  [ 8:10) format major version
//	  [10:12) format minor version
//	  [12:16) section count
//	  [16:24) sequence number: the last WAL record folded into this state
//	  [24:28) reserved (zero)
//	  [28:32) CRC32C of bytes [0:28)
//	sections, back to back:
//	  [0: 4) section ID
//	  [4:12) payload length
//	  [12: +len) payload
//	  [+len: +len+4) CRC32C of the section ID, length and payload bytes
//
// Every section is independently checksummed so the corruption pass can
// name what it damaged; the header checksum rejects torn or foreign files
// before any section is trusted. Unknown section IDs are skipped (minor
// versions may add sections); a major version bump means the layout is not
// decodable and readSnapshot refuses with a VersionError, as does a minor
// version newer than this build writes — additive evolution is readable
// forward (old files under new builds), never guessed at backward.
//
// Format history:
//
//	1.0  initial durable format; domains carry MinHash signatures.
//	1.1  the domains section opens with a sketch-engine record
//	     (engine name, sketch size, seed); 1.0 files decode as the
//	     "minhash" engine.

const (
	snapMagic = "DLSNAP\x00\x01"
	walMagic  = "DLWAL\x00\x00\x01"

	// FormatMajor changes when the layout becomes incompatible; readers
	// refuse other majors. FormatMinor changes on additive evolution;
	// readers accept older minors and refuse newer ones.
	FormatMajor = 1
	FormatMinor = 1

	snapHeaderLen = 32
)

// Section IDs of the snapshot payload.
const (
	secMeta    = 1 // LSH options
	secKB      = 2 // knowledge-base dump
	secDict    = 3 // value dictionary, ID order
	secTokens  = 4 // token dictionary, ID order
	secCatalog = 5 // tables (exact cells via the batch value pool)
	secDomains = 6 // sketch-engine record (since 1.1) + domains: token IDs + sketches
	secSantos  = 7 // SANTOS semantic graphs over compiled KB IDs
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags decode failures caused by damaged or truncated bytes.
// Recovery falls back to the previous snapshot generation on it; anything
// else (I/O errors, version refusals) aborts.
var ErrCorrupt = errors.New("corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("persist: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// VersionError reports a snapshot or WAL written by an incompatible format
// version: a different major, or a minor newer than this build writes. It
// is a refusal, not a corruption: the bytes are intact but this build
// cannot (or will not guess how to) interpret them.
type VersionError struct {
	File         string
	Major, Minor uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("persist: %s: format version %d.%d not supported (this build reads %d.0 through %d.%d); upgrade or rebuild the lake directory",
		e.File, e.Major, e.Minor, FormatMajor, FormatMajor, FormatMinor)
}

// snapName formats the snapshot file name for a sequence number. The fixed
// %016x form sorts lexically in seq order, which listSnapshots relies on.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.dialite", seq) }

// snapSeq parses a snapshot file name; ok is false for other files.
func snapSeq(name string) (uint64, bool) {
	var seq uint64
	var tail string
	if n, err := fmt.Sscanf(name, "snap-%16x%s", &seq, &tail); err != nil || n != 2 || tail != ".dialite" {
		return 0, false
	}
	return seq, true
}

// encodeSnapshot renders a full snapshot file image for a lake state whose
// last folded WAL record is seq.
func encodeSnapshot(st lake.State, seq uint64) []byte {
	sections := make([][]byte, 0, 7)
	section := func(id uint32, fill func(*enc)) {
		var e enc
		e.u32(id)
		e.u64(0) // length, patched below
		fill(&e)
		plen := uint64(len(e.b) - 12)
		for i := 0; i < 8; i++ {
			e.b[4+i] = byte(plen >> (8 * i))
		}
		e.u32(crc32.Checksum(e.b, castagnoli))
		sections = append(sections, e.b)
	}
	section(secMeta, func(e *enc) {
		e.uvarint(uint64(st.LSH.NumHashes))
		e.uvarint(uint64(st.LSH.NumPartitions))
		e.varint(st.LSH.Seed)
	})
	section(secKB, func(e *enc) { e.kbDump(st.KB) })
	section(secDict, func(e *enc) {
		e.uvarint(uint64(len(st.DictVals)))
		for _, v := range st.DictVals {
			e.value(v)
		}
	})
	section(secTokens, func(e *enc) {
		e.uvarint(uint64(len(st.Tokens)))
		for _, t := range st.Tokens {
			e.str(t)
		}
	})
	section(secCatalog, func(e *enc) { e.tables(st.Tables, st.DictVals) })
	section(secDomains, func(e *enc) {
		// Since 1.1 the domains section opens with the sketch-engine record:
		// the engine the persisted sketches were signed under plus the size
		// and seed they are only meaningful with. Size and seed repeat the
		// meta section on purpose — the decoder cross-checks them, so a
		// snapshot whose sections disagree is refused rather than restored
		// into an index that would silently mis-estimate.
		eng := st.LSH.Engine
		if eng == "" {
			eng = sketch.MinHash
		}
		e.str(string(eng))
		e.uvarint(uint64(st.LSH.NumHashes))
		e.varint(st.LSH.Seed)
		e.domains(st.Domains)
	})
	section(secSantos, func(e *enc) { e.santosStates(st.Santos) })

	var h enc
	h.b = append(h.b, snapMagic...)
	h.u16(FormatMajor)
	h.u16(FormatMinor)
	h.u32(uint32(len(sections)))
	h.u64(seq)
	h.u32(0) // reserved
	h.u32(crc32.Checksum(h.b, castagnoli))
	out := h.b
	for _, s := range sections {
		out = append(out, s...)
	}
	return out
}

// decodeSnapshot parses a snapshot file image. file is only used in error
// messages.
func decodeSnapshot(file string, b []byte) (lake.State, uint64, error) {
	var st lake.State
	if len(b) < snapHeaderLen {
		return st, 0, corruptf("%s: %d bytes is shorter than the %d-byte header", file, len(b), snapHeaderLen)
	}
	h := &dec{b: b[:snapHeaderLen]}
	if string(h.take(8)) != snapMagic {
		return st, 0, corruptf("%s: bad magic", file)
	}
	major, minor := h.u16(), h.u16()
	nsec := h.u32()
	seq := h.u64()
	h.u32() // reserved
	if crc := h.u32(); h.err == nil && crc != crc32.Checksum(b[:snapHeaderLen-4], castagnoli) {
		return st, 0, corruptf("%s: header checksum mismatch", file)
	}
	if h.err != nil {
		return st, 0, fmt.Errorf("%w (%s)", ErrCorrupt, h.err)
	}
	if major != FormatMajor || minor > FormatMinor {
		return st, 0, &VersionError{File: file, Major: major, Minor: minor}
	}
	// Frame pass: verify every section frame and checksum sequentially (CRC
	// over the whole file is cheap), collecting the payloads. The payload
	// decodes are then independent per section, so they run concurrently —
	// the catalog is several times the size of everything else, and the
	// small sections hide entirely behind it.
	seen := make(map[uint32]bool, nsec)
	bodies := make(map[uint32][]byte, nsec)
	rest := b[snapHeaderLen:]
	for i := uint32(0); i < nsec; i++ {
		if len(rest) < 12 {
			return st, 0, corruptf("%s: truncated at section %d header", file, i)
		}
		sd := &dec{b: rest[:12]}
		id := sd.u32()
		plen := sd.u64()
		if uint64(len(rest)) < 16 || plen > uint64(len(rest))-16 {
			return st, 0, corruptf("%s: section %d (id %d): length %d overruns file", file, i, id, plen)
		}
		body := rest[12 : 12+plen]
		want := uint32(rest[12+plen]) | uint32(rest[12+plen+1])<<8 | uint32(rest[12+plen+2])<<16 | uint32(rest[12+plen+3])<<24
		if got := crc32.Checksum(rest[:12+plen], castagnoli); got != want {
			return st, 0, corruptf("%s: section id %d: checksum mismatch", file, id)
		}
		rest = rest[12+plen+4:]
		if seen[id] {
			return st, 0, corruptf("%s: duplicate section id %d", file, id)
		}
		seen[id] = true
		bodies[id] = body // unknown IDs stay checksummed but undecoded
	}
	if len(rest) != 0 {
		return st, 0, corruptf("%s: %d trailing bytes after %d sections", file, len(rest), nsec)
	}
	type section struct {
		id     uint32
		decode func(d *dec)
	}
	var (
		domEngine sketch.Engine
		domSize   int
		domSeed   int64
	)
	decodeOne := func(s section) error {
		body, ok := bodies[s.id]
		if !ok {
			return nil // reported as a missing section below
		}
		d := &dec{b: body}
		s.decode(d)
		if err := d.done(); err != nil {
			return fmt.Errorf("%w: %s: section id %d: %s", ErrCorrupt, file, s.id, err)
		}
		return nil
	}
	// The dictionary decodes first: the catalog's cell pool references it
	// (see the table codec), so it is an input to the remaining sections.
	if err := decodeOne(section{secDict, func(d *dec) {
		n := d.count(1)
		st.DictVals = make([]table.Value, 0, n)
		for j := 0; j < n && d.err == nil; j++ {
			st.DictVals = append(st.DictVals, d.value())
		}
	}}); err != nil {
		return st, 0, err
	}
	sections := []section{
		{secMeta, func(d *dec) {
			st.LSH.NumHashes = int(d.uvarint())
			st.LSH.NumPartitions = int(d.uvarint())
			st.LSH.Seed = d.varint()
		}},
		{secKB, func(d *dec) { st.KB = d.kbDump() }},
		{secTokens, func(d *dec) {
			n := d.count(1)
			st.Tokens = make([]string, 0, n)
			for j := 0; j < n && d.err == nil; j++ {
				st.Tokens = append(st.Tokens, d.str())
			}
		}},
		{secCatalog, func(d *dec) { st.Tables = d.tables(st.DictVals) }},
		{secDomains, func(d *dec) {
			if minor >= 1 {
				domEngine = sketch.Engine(d.str())
				domSize = int(d.uvarint())
				domSeed = d.varint()
			} else {
				// 1.0 files predate the engine record; their sketches are
				// MinHash signatures by definition.
				domEngine = sketch.MinHash
			}
			st.Domains = d.domains()
		}},
		{secSantos, func(d *dec) { st.Santos = d.santosStates() }},
	}
	secErrs := make([]error, len(sections))
	par.For(len(sections), func(i int) {
		secErrs[i] = decodeOne(sections[i])
	})
	for _, err := range secErrs {
		if err != nil {
			return st, 0, err
		}
	}
	for _, id := range [...]uint32{secMeta, secKB, secDict, secTokens, secCatalog, secDomains, secSantos} {
		if !seen[id] {
			return st, 0, corruptf("%s: missing section id %d", file, id)
		}
	}
	// Sketch-engine refusals, cross-checked after both sections decoded (meta
	// and domains run concurrently above). These are deliberately NOT tagged
	// ErrCorrupt: the bytes are intact and every checksum passed, so falling
	// back to an older snapshot generation would not help — the file is
	// refused, never guessed at.
	if !sketch.Known(domEngine) {
		return st, 0, fmt.Errorf("persist: %s: snapshot sketch engine %q is not implemented by this build; upgrade or rebuild the lake directory", file, domEngine)
	}
	st.LSH.Engine = domEngine
	if minor >= 1 && (domSize != st.LSH.NumHashes || domSeed != st.LSH.Seed) {
		return st, 0, fmt.Errorf("persist: %s: domains section sketch params (size %d, seed %d) disagree with meta section (size %d, seed %d)",
			file, domSize, domSeed, st.LSH.NumHashes, st.LSH.Seed)
	}
	return st, seq, nil
}

// writeSnapshot atomically writes the snapshot for (st, seq) into dir:
// temp file, file sync, rename into place, directory sync. A crash at any
// of those points leaves either no new snapshot or a complete one — never
// a half-written file under the final name.
func writeSnapshot(fsys FS, dir string, st lake.State, seq uint64) error {
	img := encodeSnapshot(st, seq)
	final := filepath.Join(dir, snapName(seq))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads and decodes one snapshot file.
func readSnapshot(fsys FS, dir, name string) (lake.State, uint64, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return lake.State{}, 0, fmt.Errorf("persist: snapshot: %w", err)
	}
	return decodeSnapshot(name, b)
}

// listSnapshots returns the snapshot sequence numbers present in dir,
// ascending. Temp files and foreign names are ignored.
func listSnapshots(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, n := range names {
		if seq, ok := snapSeq(n); ok {
			seqs = append(seqs, seq)
		}
	}
	return seqs, nil
}
