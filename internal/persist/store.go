package persist

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/lake"
	"repro/internal/table"
)

// Options configures a Store.
type Options struct {
	// FS is the filesystem to persist through; nil means the real one.
	// Tests inject MemFS here.
	FS FS
	// SnapshotEvery automatically folds the WAL into a fresh snapshot once
	// this many records have accumulated past the newest snapshot. 0 means
	// the default (256); negative disables automatic snapshots.
	SnapshotEvery int
}

const defaultSnapshotEvery = 256

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = defaultSnapshotEvery
	}
	return o
}

// Status is a point-in-time view of the store's durability state, surfaced
// through the serve health endpoint.
type Status struct {
	FormatMajor int       `json:"format_major"`
	FormatMinor int       `json:"format_minor"`
	SnapshotSeq uint64    `json:"snapshot_seq"` // last sequence folded into the newest snapshot
	Snapshots   int       `json:"snapshots"`    // snapshot generations on disk
	Seq         uint64    `json:"seq"`          // last acknowledged mutation
	WALRecords  int       `json:"wal_records"`
	WALBytes    int64     `json:"wal_bytes"`
	LastSync    time.Time `json:"last_sync"` // completion of the newest WAL or snapshot fsync
	// ReadOnly reports degraded mode: a WAL or snapshot write failed (disk
	// full, I/O error), so the store refuses further mutations while queries
	// keep working. See ErrReadOnly.
	ReadOnly       bool   `json:"read_only,omitempty"`
	ReadOnlyReason string `json:"read_only_reason,omitempty"`
}

// ErrReadOnly is wrapped by every mutation refused in degraded mode. A
// store degrades the moment a WAL append/sync or snapshot write fails:
// after a failed append the tail of the log is in an unknown state, so
// appending more records could land them after garbage and lose them to
// the recovery-time torn-tail truncation. Reads stay fully served; the
// state acknowledged before the failure is durable. The mode is sticky for
// the life of the process — recover by restarting (Open truncates the torn
// tail) once the underlying condition (disk space, permissions) is fixed.
var ErrReadOnly = errors.New("persist: store degraded to read-only")

// Store binds a lake to a directory: every Add/Remove is appended to the
// write-ahead log and fsynced before it is applied in memory and
// acknowledged, and Snapshot folds the accumulated log into a fresh
// checksummed snapshot. Create starts a directory from a built lake; Open
// recovers one — newest readable snapshot, WAL replayed over it, torn tail
// truncated.
//
// Two snapshot generations are retained: after a snapshot at sequence N
// the previous newest (P) survives and the WAL is pruned only to records
// past P, so if snap-N is later found damaged, recovery falls back to
// snap-P and replays forward to the same state. Only when every generation
// is unreadable does Open refuse.
//
// Mutations through the store are serialized; queries against Lake() run
// concurrently, exactly as with a bare lake.
type Store struct {
	opts Options
	fsys FS
	dir  string

	mu         sync.Mutex
	l          *lake.Lake
	wal        File
	walRecords int
	walBytes   int64
	seq        uint64   // last acknowledged mutation sequence
	snapSeq    uint64   // sequence covered by the newest snapshot
	snaps      []uint64 // snapshot generations on disk, ascending
	lastSync   time.Time
	broken     error
	readOnly   error // non-nil once a disk write failed; wraps ErrReadOnly
}

// Exists reports whether dir already holds a persisted lake — at least one
// snapshot generation. A missing or empty directory is simply "no", not an
// error; callers use this to pick between Create and Open.
func Exists(dir string, opts Options) bool {
	opts = opts.withDefaults()
	seqs, err := listSnapshots(opts.FS, dir)
	return err == nil && len(seqs) > 0
}

// Create initializes dir as the durable home of l: an initial snapshot of
// the lake's current state plus an empty WAL. It refuses a directory that
// already holds a snapshot (Open that instead).
func Create(dir string, l *lake.Lake, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create: %w", err)
	}
	if seqs, err := listSnapshots(fsys, dir); err == nil && len(seqs) > 0 {
		return nil, fmt.Errorf("persist: create: %s already holds %d snapshot(s); open it instead", dir, len(seqs))
	}
	st, err := l.Export()
	if err != nil {
		return nil, fmt.Errorf("persist: create: %w", err)
	}
	if err := writeSnapshot(fsys, dir, st, 0); err != nil {
		return nil, err
	}
	wal, walBytes, err := rewriteWAL(fsys, dir, nil)
	if err != nil {
		return nil, err
	}
	return &Store{
		opts:     opts,
		fsys:     fsys,
		dir:      dir,
		l:        l,
		wal:      wal,
		walBytes: walBytes,
		snaps:    []uint64{0},
		lastSync: time.Now(),
	}, nil
}

// Open recovers the lake persisted in dir: it loads the newest snapshot
// generation that decodes cleanly (falling back past checksum failures,
// removing the damaged files), replays every WAL record not yet folded
// into it, truncates the log at the first torn or corrupt record, and
// reopens the log for appending. Snapshots or logs written by a different
// format major version are refused with a VersionError, never guessed at.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	seqs, err := listSnapshots(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("persist: open: %w", err)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("persist: open: no snapshot in %s", dir)
	}
	walPath := filepath.Join(dir, walFile)
	walImg, err := fsys.ReadFile(walPath)
	if err != nil {
		walImg = nil // no WAL file: nothing was ever logged past the snapshot
	}
	recs, validLen, err := decodeWAL(walImg)
	if err != nil {
		return nil, err
	}

	// Newest generation first; each failed generation is recorded and its
	// file removed so it cannot shadow the good one we settle on.
	var l *lake.Lake
	var genErrs []error
	chosen := -1
	for i := len(seqs) - 1; i >= 0; i-- {
		st, snapSeq, rerr := readSnapshot(fsys, dir, snapName(seqs[i]))
		if rerr == nil && snapSeq != seqs[i] {
			rerr = corruptf("%s: header sequence %d does not match file name", snapName(seqs[i]), snapSeq)
		}
		if rerr == nil {
			l, rerr = lake.Restore(st)
			if rerr != nil {
				rerr = fmt.Errorf("%w: %s: %s", ErrCorrupt, snapName(seqs[i]), rerr)
			}
		}
		if rerr == nil {
			chosen = i
			break
		}
		if !errors.Is(rerr, ErrCorrupt) {
			return nil, rerr // I/O failure or version refusal: do not guess
		}
		genErrs = append(genErrs, rerr)
	}
	if chosen < 0 {
		return nil, fmt.Errorf("persist: open: every snapshot generation in %s is unreadable: %w", dir, errors.Join(genErrs...))
	}
	for i := chosen + 1; i < len(seqs); i++ {
		if err := fsys.Remove(filepath.Join(dir, snapName(seqs[i]))); err != nil {
			return nil, fmt.Errorf("persist: open: removing damaged snapshot: %w", err)
		}
	}
	if len(genErrs) > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("persist: open: %w", err)
		}
	}
	s := &Store{
		opts:    opts,
		fsys:    fsys,
		dir:     dir,
		l:       l,
		seq:     seqs[chosen],
		snapSeq: seqs[chosen],
		snaps:   seqs[:chosen+1],
	}
	// Replay the records past the snapshot, in order. These all carry
	// intact checksums, and the WAL-before-apply protocol only logs batches
	// that passed validation — so replay failure means the directory's
	// snapshot and log disagree, which is refusal territory, not fallback.
	for _, r := range recs {
		if r.seq <= s.seq {
			continue
		}
		var aerr error
		switch r.op {
		case walOpAdd:
			aerr = l.Add(r.tables...)
		case walOpRemove:
			aerr = l.Remove(r.names...)
		}
		if aerr != nil {
			return nil, fmt.Errorf("persist: open: replaying WAL record %d: %w", r.seq, aerr)
		}
		s.seq = r.seq
	}
	// Reopen the log for appending. A torn tail (or a missing log file) is
	// rewritten to exactly the valid records first, so new appends never
	// land after garbage.
	if validLen == len(walImg) && len(walImg) >= walHeaderLen {
		wal, werr := fsys.Append(walPath)
		if werr != nil {
			return nil, fmt.Errorf("persist: open: %w", werr)
		}
		s.wal = wal
		s.walBytes = int64(validLen)
		s.walRecords = len(recs)
	} else {
		frames := make([][]byte, len(recs))
		for i, r := range recs {
			frames[i] = r.raw
		}
		wal, walBytes, werr := rewriteWAL(fsys, dir, frames)
		if werr != nil {
			return nil, werr
		}
		s.wal = wal
		s.walBytes = walBytes
		s.walRecords = len(recs)
	}
	s.lastSync = time.Now()
	return s, nil
}

// rewriteWAL atomically replaces the WAL with header+frames (temp file,
// sync, rename, dir sync) and reopens it for appending.
func rewriteWAL(fsys FS, dir string, frames [][]byte) (File, int64, error) {
	final := filepath.Join(dir, walFile)
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	n := int64(0)
	write := func(b []byte) error {
		if err != nil {
			return err
		}
		if _, err = f.Write(b); err == nil {
			n += int64(len(b))
		}
		return err
	}
	_ = write(walHeader())
	for _, fr := range frames {
		_ = write(fr)
	}
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	h, err := fsys.Append(final)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: wal: %w", err)
	}
	return h, n, nil
}

// Lake returns the lake this store persists. Queries go straight to it;
// mutations must go through the store's Add/Remove to be durable.
func (s *Store) Lake() *lake.Lake {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l
}

// degradeLocked flips the store read-only after a disk write failure and
// returns the sticky refusal error. s.mu must be held. First failure wins:
// the recorded reason is the root cause operators see on /healthz.
func (s *Store) degradeLocked(op string, cause error) error {
	if s.readOnly == nil {
		s.readOnly = fmt.Errorf("%w: %s failed: %v", ErrReadOnly, op, cause)
	}
	return s.readOnly
}

// appendWAL appends one framed record and fsyncs it. s.mu must be held.
// Any failure degrades the store to read-only: the log tail is in an
// unknown state afterwards, and appending past it could corrupt records
// that a later recovery would otherwise replay.
func (s *Store) appendWAL(frame []byte) error {
	if _, err := s.wal.Write(frame); err != nil {
		return s.degradeLocked("wal append", err)
	}
	if err := s.wal.Sync(); err != nil {
		return s.degradeLocked("wal sync", err)
	}
	s.walRecords++
	s.walBytes += int64(len(frame))
	s.lastSync = time.Now()
	return nil
}

// Add durably indexes tables into the lake: the batch is validated, logged
// and fsynced, and only then applied in memory — an Add that returned nil
// survives any crash from that point on. An error before the log sync
// means the batch took no effect at all; an error from the automatic
// snapshot trigger (the rare tail case) still leaves the mutation durable
// and applied.
func (s *Store) Add(tables ...*table.Table) error {
	if len(tables) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if s.readOnly != nil {
		return s.readOnly
	}
	// Pre-validate so the log only ever records batches that apply cleanly
	// (replay depends on it). These are lake.Add's own atomic checks.
	batch := make(map[string]bool, len(tables))
	for _, t := range tables {
		if t == nil {
			return fmt.Errorf("persist: add: nil table")
		}
		if t.Name == "" {
			return fmt.Errorf("persist: add: table with empty name")
		}
		if _, dup := s.l.Get(t.Name); dup || batch[t.Name] {
			return fmt.Errorf("persist: add: duplicate table name %q", t.Name)
		}
		batch[t.Name] = true
	}
	if err := s.appendWAL(encodeAddRecord(s.seq+1, tables)); err != nil {
		return err
	}
	if err := s.l.Add(tables...); err != nil {
		s.broken = fmt.Errorf("persist: store inconsistent: logged add failed to apply: %w", err)
		return s.broken
	}
	s.seq++
	return s.maybeSnapshotLocked()
}

// Remove durably drops the named tables, with the same logging contract as
// Add.
func (s *Store) Remove(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if s.readOnly != nil {
		return s.readOnly
	}
	for _, n := range names {
		if _, ok := s.l.Get(n); !ok {
			return fmt.Errorf("persist: remove: no table %q", n)
		}
	}
	if err := s.appendWAL(encodeRemoveRecord(s.seq+1, names)); err != nil {
		return err
	}
	if err := s.l.Remove(names...); err != nil {
		s.broken = fmt.Errorf("persist: store inconsistent: logged remove failed to apply: %w", err)
		return s.broken
	}
	s.seq++
	return s.maybeSnapshotLocked()
}

// maybeSnapshotLocked fires the automatic snapshot trigger once enough log
// records have accumulated past the newest snapshot.
func (s *Store) maybeSnapshotLocked() error {
	if s.opts.SnapshotEvery <= 0 || s.seq-s.snapSeq < uint64(s.opts.SnapshotEvery) {
		return nil
	}
	return s.snapshotLocked()
}

// Snapshot folds the current lake state into a fresh snapshot generation,
// retires all but the previous one, and prunes the WAL to the records the
// previous generation might still need (so one damaged snapshot never
// costs any acknowledged state). It is a no-op when no mutation happened
// since the newest snapshot.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if s.readOnly != nil {
		return s.readOnly
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if len(s.snaps) > 0 && s.snapSeq == s.seq {
		return nil
	}
	st, err := s.l.Export()
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if err := writeSnapshot(s.fsys, s.dir, st, s.seq); err != nil {
		// A snapshot that failed to write is a disk-side fault (full disk,
		// I/O error): degrade rather than keep retrying writes. When the
		// automatic trigger fired this error from inside Add/Remove, the
		// mutation itself is already logged, applied and durable.
		return s.degradeLocked("snapshot write", err)
	}
	s.lastSync = time.Now()
	prev := s.snapSeq
	s.snaps = append(s.snaps, s.seq)
	s.snapSeq = s.seq
	removed := false
	for len(s.snaps) > 2 {
		if err := s.fsys.Remove(filepath.Join(s.dir, snapName(s.snaps[0]))); err != nil {
			return s.degradeLocked("snapshot retire", err)
		}
		s.snaps = s.snaps[1:]
		removed = true
	}
	if removed {
		if err := s.fsys.SyncDir(s.dir); err != nil {
			return s.degradeLocked("snapshot dir sync", err)
		}
	}
	return s.pruneWALLocked(prev)
}

// pruneWALLocked rewrites the WAL keeping only records past prev — the
// generation the store can still fall back to.
func (s *Store) pruneWALLocked(prev uint64) error {
	b, err := s.fsys.ReadFile(filepath.Join(s.dir, walFile))
	if err != nil {
		return fmt.Errorf("persist: wal prune: %w", err)
	}
	recs, _, derr := decodeWAL(b)
	if derr != nil {
		return derr
	}
	var frames [][]byte
	for _, r := range recs {
		if r.seq > prev {
			frames = append(frames, r.raw)
		}
	}
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	wal, walBytes, err := rewriteWAL(s.fsys, s.dir, frames)
	if err != nil {
		return s.degradeLocked("wal prune", err)
	}
	s.wal = wal
	s.walBytes = walBytes
	s.walRecords = len(frames)
	s.lastSync = time.Now()
	return nil
}

// Status reports the store's durability state.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		FormatMajor: FormatMajor,
		FormatMinor: FormatMinor,
		SnapshotSeq: s.snapSeq,
		Snapshots:   len(s.snaps),
		Seq:         s.seq,
		WALRecords:  s.walRecords,
		WALBytes:    s.walBytes,
		LastSync:    s.lastSync,
	}
	if s.readOnly != nil {
		st.ReadOnly = true
		st.ReadOnlyReason = s.readOnly.Error()
	}
	return st
}

// ReadOnly reports the degraded-mode state: nil when the store accepts
// mutations, the sticky ErrReadOnly-wrapping cause otherwise.
func (s *Store) ReadOnly() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// Close syncs and closes the log. The store must not be used afterwards;
// acknowledged mutations are already durable, so Close loses nothing even
// when skipped — it exists so shutdown releases the file handle promptly.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	syncErr := s.wal.Sync()
	closeErr := s.wal.Close()
	s.wal = nil
	return errors.Join(syncErr, closeErr)
}
