package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/lake"
	"repro/internal/table"
)

const testDir = "lake"

// newStorePool builds a deterministic table pool and the lake options the
// store tests share.
func newStorePool(seed int64, n int) ([]*table.Table, lake.Options) {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*table.Table, n)
	for i := range pool {
		pool[i] = difftest.DiffTable(rng, fmt.Sprintf("s%02d", i))
	}
	return pool, lake.Options{Knowledge: difftest.DiffKB()}
}

// mustCreate builds a lake over tables and creates a store for it on fsys.
func mustCreate(t *testing.T, fsys FS, tables []*table.Table, lopts lake.Options, sopts Options) *Store {
	t.Helper()
	l, err := lake.New(tables, lopts)
	if err != nil {
		t.Fatal(err)
	}
	sopts.FS = fsys
	s, err := Create(testDir, l, sopts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s
}

// expectLake asserts that l answers discovery byte-identically to a fresh
// lake.New over tables.
func expectLake(t *testing.T, ctx string, l *lake.Lake, tables []*table.Table, lopts lake.Options, queries []*table.Table) {
	t.Helper()
	fresh, err := lake.New(tables, lopts)
	if err != nil {
		t.Fatalf("%s: fresh build: %v", ctx, err)
	}
	if got, want := difftest.LakeSig(l, queries), difftest.LakeSig(fresh, queries); got != want {
		t.Fatalf("%s: recovered lake diverged from fresh build\n got:\n%s\nwant:\n%s", ctx, got, want)
	}
}

// TestStoreChurnReopenEquivalence drives 200 randomized schedules of
// durable Add/Remove/Snapshot against a MemFS-backed store, closing and
// reopening the directory mid-schedule and at the end; every reopened lake
// must answer discovery byte-identically to a fresh lake.New over the
// surviving tables. This is the persistence counterpart of the lake's
// differential rebuild-equivalence harness.
func TestStoreChurnReopenEquivalence(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			pool, lopts := newStorePool(int64(seed), 10)
			fsys := NewMemFS()
			inLake := make([]bool, len(pool))
			var initial []*table.Table
			for i := 0; i < 2+rng.Intn(4); i++ {
				initial = append(initial, pool[i])
				inLake[i] = true
			}
			// A small SnapshotEvery so schedules cross the automatic snapshot
			// trigger (and its generation retirement + WAL pruning) often.
			s := mustCreate(t, fsys, initial, lopts, Options{SnapshotEvery: 3})
			survivors := func() []*table.Table {
				var out []*table.Table
				for i, ok := range inLake {
					if ok {
						out = append(out, pool[i])
					}
				}
				return out
			}
			reopen := func(ctx string) {
				t.Helper()
				if err := s.Close(); err != nil {
					t.Fatalf("%s: Close: %v", ctx, err)
				}
				var err error
				s, err = Open(testDir, Options{FS: fsys, SnapshotEvery: 3})
				if err != nil {
					t.Fatalf("%s: Open: %v", ctx, err)
				}
				queries := []*table.Table{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]}
				expectLake(t, ctx, s.Lake(), survivors(), lopts, queries)
			}
			ops := 8
			for op := 0; op < ops; op++ {
				var in, out []int
				for i, ok := range inLake {
					if ok {
						in = append(in, i)
					} else {
						out = append(out, i)
					}
				}
				switch c := rng.Intn(8); {
				case c <= 2 && len(out) > 0: // durable add of 1-2 tables
					n := 1 + rng.Intn(2)
					var batch []*table.Table
					for _, i := range out[:min(n, len(out))] {
						batch = append(batch, pool[i])
						inLake[i] = true
					}
					if err := s.Add(batch...); err != nil {
						t.Fatalf("op %d: Add: %v", op, err)
					}
				case c <= 5 && len(in) > 0: // durable remove
					i := in[rng.Intn(len(in))]
					if err := s.Remove(pool[i].Name); err != nil {
						t.Fatalf("op %d: Remove: %v", op, err)
					}
					inLake[i] = false
				case c == 6:
					if err := s.Snapshot(); err != nil {
						t.Fatalf("op %d: Snapshot: %v", op, err)
					}
				default:
					reopen(fmt.Sprintf("seed %d op %d", seed, op))
				}
			}
			reopen(fmt.Sprintf("seed %d final", seed))
		})
	}
}

// TestStoreStatusAndRetention pins the snapshot lifecycle: the automatic
// trigger fires at SnapshotEvery records past the newest snapshot, exactly
// two generations are retained, and the WAL is pruned only to the records
// the previous generation no longer needs.
func TestStoreStatusAndRetention(t *testing.T) {
	pool, lopts := newStorePool(7, 10)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:2], lopts, Options{SnapshotEvery: 2})
	st := s.Status()
	if st.Seq != 0 || st.SnapshotSeq != 0 || st.Snapshots != 1 || st.WALRecords != 0 {
		t.Fatalf("fresh status = %+v", st)
	}
	if st.FormatMajor != FormatMajor || st.FormatMinor != FormatMinor {
		t.Fatalf("status version = %d.%d", st.FormatMajor, st.FormatMinor)
	}
	if st.LastSync.IsZero() {
		t.Fatal("fresh status has zero LastSync")
	}
	if err := s.Add(pool[2]); err != nil {
		t.Fatal(err)
	}
	if st = s.Status(); st.Seq != 1 || st.SnapshotSeq != 0 || st.WALRecords != 1 || st.WALBytes <= walHeaderLen {
		t.Fatalf("after 1 add: %+v", st)
	}
	// Second mutation crosses SnapshotEvery=2: snapshot at seq 2, retention
	// keeps generations {0, 2}, WAL pruned to records past generation 0 —
	// i.e. both records stay, so a damaged snap-2 still recovers.
	if err := s.Add(pool[3]); err != nil {
		t.Fatal(err)
	}
	if st = s.Status(); st.Seq != 2 || st.SnapshotSeq != 2 || st.Snapshots != 2 || st.WALRecords != 2 {
		t.Fatalf("after auto snapshot: %+v", st)
	}
	// Two more mutations: snapshot at seq 4, generation 0 retired, WAL
	// pruned to records past generation 2 (records 3 and 4).
	if err := s.Remove(pool[2].Name); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(pool[4]); err != nil {
		t.Fatal(err)
	}
	if st = s.Status(); st.Seq != 4 || st.SnapshotSeq != 4 || st.Snapshots != 2 || st.WALRecords != 2 {
		t.Fatalf("after second auto snapshot: %+v", st)
	}
	names, err := fsys.ReadDir(testDir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, n := range names {
		if _, ok := snapSeq(n); ok {
			snaps = append(snaps, n)
		}
	}
	if want := []string{snapName(2), snapName(4)}; fmt.Sprint(snaps) != fmt.Sprint(want) {
		t.Fatalf("snapshots on disk = %v, want %v", snaps, want)
	}
	// An explicit Snapshot with nothing new is a no-op.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.Status(); got.SnapshotSeq != 4 || got.Snapshots != 2 {
		t.Fatalf("no-op snapshot changed state: %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreValidation pins the mutation pre-checks: invalid batches are
// rejected before anything reaches the log, so the WAL only ever holds
// cleanly replayable records.
func TestStoreValidation(t *testing.T) {
	pool, lopts := newStorePool(9, 6)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:2], lopts, Options{SnapshotEvery: -1})
	before := s.Status()
	for name, err := range map[string]error{
		"nil table":        s.Add(nil),
		"empty name":       s.Add(table.New("", "c")),
		"duplicate":        s.Add(pool[0]),
		"dup in batch":     s.Add(pool[3], pool[3]),
		"remove missing":   s.Remove("nope"),
		"remove not added": s.Remove(pool[4].Name),
	} {
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if after := s.Status(); after.Seq != before.Seq || after.WALRecords != before.WALRecords {
		t.Fatalf("rejected mutations reached the log: %+v -> %+v", before, after)
	}
	if err := s.Add(); err != nil { // empty batch is a no-op, not an error
		t.Fatal(err)
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateRefusesExistingDirectory pins that Create never clobbers a
// directory that already holds snapshots.
func TestCreateRefusesExistingDirectory(t *testing.T) {
	pool, lopts := newStorePool(3, 4)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:2], lopts, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := lake.New(pool[2:], lopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(testDir, l, Options{FS: fsys}); err == nil || !strings.Contains(err.Error(), "open it instead") {
		t.Fatalf("Create over existing directory: %v", err)
	}
}

// corruptScenario builds a two-generation store directory: snap-0 from
// Create, two logged adds folded into snap-2, then one more logged remove —
// so recovery from the newest snapshot replays record 3, and fallback to
// generation 0 replays records 1..3.
func corruptScenario(t *testing.T) (*MemFS, []*table.Table, lake.Options, []*table.Table) {
	t.Helper()
	pool, lopts := newStorePool(31, 8)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:4], lopts, Options{SnapshotEvery: -1})
	if err := s.Add(pool[4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(pool[5]); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(pool[0].Name); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	survivors := []*table.Table{pool[1], pool[2], pool[3], pool[4], pool[5]}
	return fsys, pool, lopts, survivors
}

// TestSnapshotCorruptionFallsBack damages the newest snapshot generation at
// several offsets (header, section payloads, final checksum byte); Open
// must detect each via checksums, fall back to the previous generation,
// replay the full WAL, remove the damaged file, and answer identically to
// a fresh build.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	probe, _, _, _ := corruptScenario(t)
	newest := filepath.Join(testDir, snapName(2))
	size := probe.Len(newest)
	if size == 0 {
		t.Fatalf("scenario did not produce %s", newest)
	}
	for _, off := range []int{0, 9, snapHeaderLen, snapHeaderLen + 13, size / 2, size - 1} {
		off := off
		t.Run(fmt.Sprintf("offset%d", off), func(t *testing.T) {
			fsys, pool, lopts, survivors := corruptScenario(t)
			if !fsys.Corrupt(newest, off, 0xff) {
				t.Fatalf("offset %d out of range", off)
			}
			s, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
			if err != nil {
				t.Fatalf("Open after corrupting offset %d: %v", off, err)
			}
			if st := s.Status(); st.Seq != 3 || st.SnapshotSeq != 0 || st.Snapshots != 1 {
				t.Fatalf("recovered status = %+v", st)
			}
			expectLake(t, "fallback", s.Lake(), survivors, lopts, []*table.Table{pool[1], pool[5], pool[7]})
			if fsys.Len(newest) != 0 {
				t.Fatalf("damaged snapshot %s still on disk", newest)
			}
			// The recovered store must stay writable and durable.
			if err := s.Add(pool[6]); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			expectLake(t, "post-fallback reopen", s2.Lake(), append(survivors, pool[6]), lopts, []*table.Table{pool[6], pool[0]})
		})
	}
}

// TestAllGenerationsCorruptRefuses damages every snapshot generation; Open
// must refuse with a corruption error naming the directory rather than
// serve a guessed state.
func TestAllGenerationsCorruptRefuses(t *testing.T) {
	fsys, _, _, _ := corruptScenario(t)
	for _, name := range []string{snapName(0), snapName(2)} {
		if !fsys.Corrupt(filepath.Join(testDir, name), snapHeaderLen+5, 0xff) {
			t.Fatalf("could not corrupt %s", name)
		}
	}
	_, err := Open(testDir, Options{FS: fsys})
	if err == nil {
		t.Fatal("Open succeeded with every generation corrupt")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error not tagged ErrCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "every snapshot generation") {
		t.Fatalf("unexpected refusal message: %v", err)
	}
}

// TestWALTailCorruption flips a byte in the last WAL record; recovery must
// truncate at the damaged record, keep every record before it, and append
// cleanly afterwards.
func TestWALTailCorruption(t *testing.T) {
	pool, lopts := newStorePool(17, 8)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:3], lopts, Options{SnapshotEvery: -1})
	if err := s.Add(pool[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(pool[4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(testDir, walFile)
	if !fsys.Corrupt(walPath, fsys.Len(walPath)-1, 0x55) {
		t.Fatal("could not corrupt WAL tail")
	}
	s, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Record 2 is gone (never acknowledged durable by this history — the
	// corruption models a torn tail), record 1 survives.
	if st := s.Status(); st.Seq != 1 || st.WALRecords != 1 {
		t.Fatalf("recovered status = %+v", st)
	}
	expectLake(t, "truncated", s.Lake(), pool[:4], lopts, []*table.Table{pool[0], pool[4]})
	// New appends land after the rewritten valid prefix, not after garbage.
	if err := s.Add(pool[5]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.Seq != 2 || st.WALRecords != 2 {
		t.Fatalf("status after reopen = %+v", st)
	}
	expectLake(t, "after repair", s.Lake(), append(append([]*table.Table(nil), pool[:4]...), pool[5]), lopts, []*table.Table{pool[5], pool[1]})
}

// TestWALHeaderCorruption damages the WAL header itself: the whole log is
// discarded (nothing past a broken header was ever acknowledged against a
// valid one) and the lake recovers to the snapshot state.
func TestWALHeaderCorruption(t *testing.T) {
	pool, lopts := newStorePool(19, 6)
	fsys := NewMemFS()
	s := mustCreate(t, fsys, pool[:3], lopts, Options{SnapshotEvery: -1})
	if err := s.Add(pool[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !fsys.Corrupt(filepath.Join(testDir, walFile), 3, 0xff) {
		t.Fatal("could not corrupt WAL header")
	}
	s, err := Open(testDir, Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st := s.Status(); st.Seq != 0 || st.WALRecords != 0 {
		t.Fatalf("recovered status = %+v", st)
	}
	expectLake(t, "header loss", s.Lake(), pool[:3], lopts, []*table.Table{pool[0], pool[3]})
}

// rewriteFile replaces a MemFS file's content in full (no crash scheduled,
// so the writes cannot fail).
func rewriteFile(t *testing.T, fsys *MemFS, name string, b []byte) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionRefusal pins the compatibility policy: snapshots and logs
// stamped with an unknown format major version are refused with a typed
// VersionError — intact checksums make them distinguishable from
// corruption, and refusing beats guessing at an undecodable layout.
func TestVersionRefusal(t *testing.T) {
	t.Run("wal", func(t *testing.T) {
		fsys, _, _, _ := corruptScenario(t)
		walPath := filepath.Join(testDir, walFile)
		img, err := fsys.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Stamp major version 99 and re-seal the header checksum, so the
		// file reads as intact bytes from a future format.
		img[8], img[9] = 99, 0
		crc := crc32.Checksum(img[:12], castagnoli)
		for i := 0; i < 4; i++ {
			img[12+i] = byte(crc >> (8 * i))
		}
		rewriteFile(t, fsys, walPath, img)
		_, err = Open(testDir, Options{FS: fsys})
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("Open = %v, want VersionError", err)
		}
		if ve.Major != 99 || ve.File != walFile {
			t.Fatalf("VersionError = %+v", ve)
		}
	})
	t.Run("snapshot", func(t *testing.T) {
		fsys, _, _, _ := corruptScenario(t)
		name := filepath.Join(testDir, snapName(2))
		img, err := fsys.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		img[8], img[9] = 99, 0
		crc := crc32.Checksum(img[:snapHeaderLen-4], castagnoli)
		for i := 0; i < 4; i++ {
			img[snapHeaderLen-4+i] = byte(crc >> (8 * i))
		}
		rewriteFile(t, fsys, name, img)
		// A version refusal is not corruption: Open must refuse outright,
		// not silently fall back to the older generation.
		_, err = Open(testDir, Options{FS: fsys})
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("Open = %v, want VersionError", err)
		}
		if ve.Major != 99 {
			t.Fatalf("VersionError = %+v", ve)
		}
	})
}
