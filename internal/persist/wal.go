package persist

import (
	"hash/crc32"

	"repro/internal/table"
)

// WAL file format (see PERSISTENCE.md):
//
//	header (16 bytes):
//	  [ 0: 8) magic "DLWAL\x00\x00\x01"
//	  [ 8:10) format major version
//	  [10:12) format minor version
//	  [12:16) CRC32C of bytes [0:12)
//	records, back to back:
//	  [0:4) payload length
//	  [4:8) CRC32C of the payload
//	  [8: +len) payload
//	payload:
//	  [0:8) sequence number (monotonic, 1-based; snapshots record the last
//	        sequence folded into them)
//	  [8:9) op: 1 = add tables, 2 = remove tables
//	  [9: ) body: the table batch codec (add) or a name list (remove)
//
// Each record is appended in a single write and fsynced before the
// mutation it describes is applied in memory or acknowledged — so an
// acknowledged mutation is always replayable. A crash can tear at most the
// tail record, which then fails its length or CRC check; recovery keeps
// the valid prefix and discards the tail.

const (
	walFile = "wal.dialite"

	walHeaderLen = 16

	walOpAdd    = 1
	walOpRemove = 2
)

// walRecord is one decoded WAL record, with the raw frame bytes it was
// parsed from (header excluded) so rewrites re-emit records verbatim.
type walRecord struct {
	seq    uint64
	op     byte
	tables []*table.Table // walOpAdd
	names  []string       // walOpRemove
	raw    []byte
}

// walHeader renders the 16-byte WAL file header.
func walHeader() []byte {
	var e enc
	e.b = append(e.b, walMagic...)
	e.u16(FormatMajor)
	e.u16(FormatMinor)
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// frameRecord wraps a record payload in its length+CRC frame.
func frameRecord(payload []byte) []byte {
	var e enc
	e.u32(uint32(len(payload)))
	e.u32(crc32.Checksum(payload, castagnoli))
	e.b = append(e.b, payload...)
	return e.b
}

// encodeAddRecord renders the framed WAL record for an Add batch.
func encodeAddRecord(seq uint64, tables []*table.Table) []byte {
	var e enc
	e.u64(seq)
	e.u8(walOpAdd)
	e.tables(tables, nil)
	return frameRecord(e.b)
}

// encodeRemoveRecord renders the framed WAL record for a Remove batch.
func encodeRemoveRecord(seq uint64, names []string) []byte {
	var e enc
	e.u64(seq)
	e.u8(walOpRemove)
	e.uvarint(uint64(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return frameRecord(e.b)
}

// decodeWALPayload parses one record payload (the bytes inside the frame).
func decodeWALPayload(p []byte) (walRecord, error) {
	d := &dec{b: p}
	r := walRecord{seq: d.u64(), op: d.u8()}
	switch r.op {
	case walOpAdd:
		r.tables = d.tables(nil)
	case walOpRemove:
		n := d.count(1)
		for i := 0; i < n && d.err == nil; i++ {
			r.names = append(r.names, d.str())
		}
	default:
		if d.err == nil {
			d.fail("unknown WAL op %d", r.op)
		}
	}
	if err := d.done(); err != nil {
		return walRecord{}, err
	}
	return r, nil
}

// decodeWAL parses a WAL file image into its valid record prefix.
// validLen is the byte length of that prefix (header included): everything
// past it is a torn or corrupt tail that recovery must discard. The error
// is non-nil only for refusals (an incompatible major version) — torn and
// corrupt tails are an expected crash outcome, reported via validLen, not
// an error.
//
// A header that is missing, short or damaged invalidates the whole file
// (validLen 0): the header is written and synced before any record is
// acknowledged, so no acknowledged mutation can live past it.
func decodeWAL(b []byte) (recs []walRecord, validLen int, err error) {
	if len(b) < walHeaderLen {
		return nil, 0, nil
	}
	h := &dec{b: b[:walHeaderLen]}
	magicOK := string(h.take(8)) == walMagic
	major, minor := h.u16(), h.u16()
	crcOK := h.u32() == crc32.Checksum(b[:walHeaderLen-4], castagnoli)
	if !magicOK || !crcOK {
		return nil, 0, nil
	}
	if major != FormatMajor || minor > FormatMinor {
		return nil, 0, &VersionError{File: walFile, Major: major, Minor: minor}
	}
	off := walHeaderLen
	for {
		rest := b[off:]
		if len(rest) < 8 {
			return recs, off, nil
		}
		plen := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
		want := uint32(rest[4]) | uint32(rest[5])<<8 | uint32(rest[6])<<16 | uint32(rest[7])<<24
		if plen < 9 || plen > len(rest)-8 {
			return recs, off, nil
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, off, nil
		}
		r, derr := decodeWALPayload(payload)
		if derr != nil {
			// The CRC matched but the payload does not parse: treat it like
			// any other corrupt tail and stop here.
			return recs, off, nil
		}
		if len(recs) > 0 && r.seq <= recs[len(recs)-1].seq {
			// Sequence numbers are strictly monotonic within a file; a
			// regression means the tail is stale bytes, not a valid record.
			return recs, off, nil
		}
		r.raw = rest[:8+plen]
		recs = append(recs, r)
		off += 8 + plen
	}
}
