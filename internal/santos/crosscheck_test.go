package santos

// crosscheck_test pins the packed-edge-key index to the pre-refactor
// string-keyed implementation: on the demo lake and randomized synthesized
// lakes, Query must return exactly the same ranked results — same tables,
// same scores, same matched columns, same order — as the reference below,
// which re-derives the semantic graphs with "out:<label>:<type>" string
// edges via the KB's exported API.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

// refColumn is the string-keyed column annotation of the old
// implementation.
type refColumn struct {
	col   int
	ann   kb.ColumnAnnotation
	edges []string
}

// refAnnotate is the pre-refactor annotate with fmt.Sprintf edge keys.
func refAnnotate(t *table.Table, knowledge *kb.KB) []refColumn {
	anns := make([]kb.ColumnAnnotation, t.NumCols())
	textual := make([]bool, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		if !kb.MostlyTextual(t, c) {
			continue
		}
		textual[c] = true
		anns[c] = knowledge.AnnotateColumn(t.DistinctStrings(c))
	}
	edgesByCol := make(map[int][]string)
	for a := 0; a < t.NumCols(); a++ {
		if !textual[a] || anns[a].Type == "" {
			continue
		}
		for b := a + 1; b < t.NumCols(); b++ {
			if !textual[b] || anns[b].Type == "" {
				continue
			}
			pa := knowledge.AnnotateColumnPair(rowPairs(t, a, b))
			if pa.Label == "" {
				continue
			}
			from, to := a, b
			if pa.Inverse {
				from, to = b, a
			}
			edgesByCol[from] = append(edgesByCol[from], fmt.Sprintf("out:%s:%s", pa.Label, anns[to].Type))
			edgesByCol[to] = append(edgesByCol[to], fmt.Sprintf("in:%s:%s", pa.Label, anns[from].Type))
		}
	}
	var cols []refColumn
	for c := 0; c < t.NumCols(); c++ {
		if anns[c].Type == "" {
			continue
		}
		cols = append(cols, refColumn{col: c, ann: anns[c], edges: edgesByCol[c]})
	}
	return cols
}

// refEdgeJaccard is the old map-based Jaccard over string edge keys.
func refEdgeJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	as := make(map[string]bool, len(a))
	for _, e := range a {
		as[e] = true
	}
	bs := make(map[string]bool, len(b))
	for _, e := range b {
		bs[e] = true
	}
	inter := 0
	for k := range as {
		if bs[k] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

type refResult struct {
	name    string
	score   float64
	matched int
}

// refQuery is the pre-refactor Query over string-keyed semantic graphs.
func refQuery(lakeTables []*table.Table, knowledge *kb.KB, q *table.Table, intentCol, k int) ([]refResult, error) {
	qcols := refAnnotate(q, knowledge)
	var qcs *refColumn
	for i := range qcols {
		if qcols[i].col == intentCol {
			qcs = &qcols[i]
		}
	}
	if qcs == nil {
		return nil, fmt.Errorf("no annotation for intent column %d", intentCol)
	}
	var results []refResult
	for _, cand := range lakeTables {
		if cand.Name == q.Name {
			continue
		}
		best := 0.0
		bestCol := -1
		for _, cc := range refAnnotate(cand, knowledge) {
			tm := typeMatchScore(knowledge, qcs.ann.Type, cc.ann.Type)
			if tm == 0 {
				continue
			}
			score := qcs.ann.Confidence * cc.ann.Confidence * tm * (1 + refEdgeJaccard(qcs.edges, cc.edges))
			if score > best {
				best = score
				bestCol = cc.col
			}
		}
		if best > 0 {
			results = append(results, refResult{name: cand.Name, score: best, matched: bestCol})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].score != results[b].score {
			return results[a].score > results[b].score
		}
		return results[a].name < results[b].name
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}

func assertSameRanking(t *testing.T, label string, got []Result, want []refResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Table.Name != want[i].name || got[i].Score != want[i].score || got[i].MatchedColumn != want[i].matched {
			t.Fatalf("%s: rank %d: got %s/%v/col%d, want %s/%v/col%d", label, i,
				got[i].Table.Name, got[i].Score, got[i].MatchedColumn,
				want[i].name, want[i].score, want[i].matched)
		}
	}
}

func TestCrossCheckDemoLake(t *testing.T) {
	know := kb.Demo()
	lakeTables := append(paperdata.CovidLake(), paperdata.T3())
	ix := Build(lakeTables, know)
	q := paperdata.T1()
	for col := 0; col < q.NumCols(); col++ {
		for _, k := range []int{0, 1, 10} {
			got, gerr := ix.Query(q, col, k)
			want, werr := refQuery(lakeTables, know, q, col, k)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("col=%d k=%d: error mismatch: %v vs %v", col, k, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			assertSameRanking(t, fmt.Sprintf("col=%d k=%d", col, k), got, want)
		}
	}
}

// TestCrossCheckMixedKindLakes builds randomized lakes whose textual
// columns carry a minority of numeric/bool cells — exercising the compiled
// path's rendered-string dedupe (cross-kind collisions like the string "12"
// versus the int 12 must collapse exactly as DistinctStrings collapses
// them) — plus demo-KB alias spellings, whose distinct raw forms must keep
// voting separately. Both the detached annotator (santos.Build) and a
// dict-backed annotator mimicking the lake cache are checked.
func TestCrossCheckMixedKindLakes(t *testing.T) {
	know := kb.Demo()
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		cities := []string{"Berlin", "berlin", "Boston", "Tokyo", "Lyon", "Madrid"}
		countries := []string{"Germany", "USA", "U.S.A.", "United States", "Japan", "France", "Spain"}
		mixed := []table.Value{
			table.IntValue(12), table.StringValue("12"), table.FloatValue(3.5),
			table.BoolValue(true), table.NullValue(), table.ProducedNull(),
		}
		mk := func(name string, rows int) *table.Table {
			tb := table.New(name, "city", "country", "noise")
			for r := 0; r < rows; r++ {
				city := table.Value(table.StringValue(cities[rng.Intn(len(cities))]))
				country := table.Value(table.StringValue(countries[rng.Intn(len(countries))]))
				// A minority of non-string cells keeps columns mostly
				// textual while forcing the string-dedupe fallback.
				if rng.Intn(4) == 0 {
					city = mixed[rng.Intn(len(mixed))]
				}
				if rng.Intn(4) == 0 {
					country = mixed[rng.Intn(len(mixed))]
				}
				tb.MustAddRow(city, country, mixed[rng.Intn(len(mixed))])
			}
			return tb
		}
		var lakeTables []*table.Table
		for i := 0; i < 5+rng.Intn(5); i++ {
			lakeTables = append(lakeTables, mk(fmt.Sprintf("m%02d", i), 6+rng.Intn(10)))
		}
		q := mk("query", 8)

		dict := table.NewDict()
		var buf []uint32
		for _, tb := range lakeTables {
			for _, row := range tb.Rows {
				buf = dict.InternRow(row, buf)
			}
		}
		indexes := map[string]*Index{
			"detached": Build(lakeTables, know),
			"dict":     BuildWithAnnotator(lakeTables, kb.NewAnnotator(know.Compiled(), dict)),
		}
		for variant, ix := range indexes {
			for col := 0; col < q.NumCols(); col++ {
				got, gerr := ix.Query(q, col, 0)
				want, werr := refQuery(lakeTables, know, q, col, 0)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s seed=%d col=%d: error mismatch: %v vs %v", variant, seed, col, gerr, werr)
				}
				if gerr != nil {
					continue
				}
				assertSameRanking(t, fmt.Sprintf("%s seed=%d col=%d", variant, seed, col), got, want)
			}
		}
	}
}

// TestCrossCheckRandomizedLakes builds randomized two-column entity lakes,
// synthesizes a KB from each (the SANTOS fallback), and asserts the
// packed-edge index ranks identically to the string-keyed reference.
func TestCrossCheckRandomizedLakes(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		rng := rand.New(rand.NewSource(seed))
		people := make([]string, 20)
		for i := range people {
			people[i] = fmt.Sprintf("person%02d", i)
		}
		teams := []string{"red", "blue", "green", "gold"}
		cities := []string{"berlin", "boston", "tokyo", "lyon", "oslo"}
		mk := func(name string, rows int) *table.Table {
			tb := table.New(name, "who", "team", "city")
			for r := 0; r < rows; r++ {
				tb.MustAddRow(
					table.StringValue(people[rng.Intn(len(people))]),
					table.StringValue(teams[rng.Intn(len(teams))]),
					table.StringValue(cities[rng.Intn(len(cities))]),
				)
			}
			return tb
		}
		var lakeTables []*table.Table
		for i := 0; i < 6+rng.Intn(6); i++ {
			lakeTables = append(lakeTables, mk(fmt.Sprintf("t%02d", i), 4+rng.Intn(10)))
		}
		know := kb.Synthesize(lakeTables, kb.SynthesizeOptions{})
		ix := Build(lakeTables, know)
		q := mk("query", 6)
		for col := 0; col < q.NumCols(); col++ {
			got, gerr := ix.Query(q, col, 0)
			want, werr := refQuery(lakeTables, know, q, col, 0)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("seed=%d col=%d: error mismatch: %v vs %v", seed, col, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			assertSameRanking(t, fmt.Sprintf("seed=%d col=%d", seed, col), got, want)
		}
	}
}
